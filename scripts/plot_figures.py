#!/usr/bin/env python3
"""Plot the paper's Figure 1 from the CSVs written by bench_figure1.

Usage:
    ./build/bench/bench_figure1          # writes /tmp/figure1_*.csv
    python3 scripts/plot_figures.py [--dir /tmp] [--out figure1.png]

Requires matplotlib (optional dependency; the bench itself renders an
ASCII version so the reproduction does not depend on Python).
"""

import argparse
import csv
import os
import sys


def read_rows(path):
    rows = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            rows.append([float(x) for x in line.split(",")])
    return rows


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--dir", default=os.environ.get("TMPDIR", "/tmp"))
    parser.add_argument("--out", default="figure1.png")
    args = parser.parse_args()

    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib not available; the ASCII plot from "
              "bench_figure1 is the fallback", file=sys.stderr)
        return 1

    data = read_rows(os.path.join(args.dir, "figure1_data.csv"))
    segments = read_rows(os.path.join(args.dir, "figure1_segments.csv"))
    results = read_rows(os.path.join(args.dir, "figure1_result.csv"))

    fig, axes = plt.subplots(3, 1, figsize=(10, 9), sharex=True)
    ts = [r[0] / 3600.0 for r in data]
    vs = [r[1] for r in data]

    axes[0].plot(ts, vs, ".", markersize=2, color="#1f77b4")
    axes[0].set_title("(a) data")
    axes[0].set_ylabel("temperature (C)")

    axes[1].plot(ts, vs, ".", markersize=1, color="#cccccc")
    for t0, v0, t1, v1 in segments:
        axes[1].plot([t0 / 3600.0, t1 / 3600.0], [v0, v1], "-",
                     color="#d62728", linewidth=1)
    axes[1].set_title("(b) segments: piecewise linear approximation")
    axes[1].set_ylabel("temperature (C)")

    axes[2].plot(ts, vs, ".", markersize=2, color="#1f77b4")
    if results:
        t_d, t_c, t_b, t_a = results[0]
        for t in (t_d, t_c, t_b, t_a):
            axes[2].axvline(t / 3600.0, color="#2ca02c", linewidth=1)
    axes[2].set_title("(c) a search result overlaid (four time stamps)")
    axes[2].set_xlabel("hour of day")
    axes[2].set_ylabel("temperature (C)")

    fig.tight_layout()
    fig.savefig(args.out, dpi=150)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
