#!/usr/bin/env bash
# Tier-1 verification in one command:
#   1. configure + build + full ctest suite (the CI gate from ROADMAP.md),
#      then a --quick smoke of the scan/parallel/micro benches (proves
#      the bench binaries still run end to end; no perf assertions)
#   2. a governance smoke: N concurrent pathological corner queries with
#      a 50 ms deadline through segdiff_cli — every one must reach a
#      terminal status (deadline-exceeded or success), proving a slow
#      query cannot wedge the store
#   3. a WAL recovery smoke: kill -9 a CLI ingest mid-append, then prove
#      the store reopens with everything it had acknowledged before the
#      crash and passes a full checksum + log scrub; plus a fixed-seed
#      chaos smoke (25 fault cycles, SEGDIFF_FAULT_SEED=20080325), an
#      ENOSPC smoke (full disk => read-only degraded mode, searches
#      still served), and a fixed-seed transect chaos smoke (crash
#      mid-rebalance, bitrot isolation + repair, eviction-error
#      surfacing)
#   4. an AddressSanitizer build running the streaming-ingest and storage
#      suites (the subsystems that serialize/restore raw state blobs)
#      plus the `faults` and `governance` ctest groups (crash-recovery,
#      fault injection, and cancellation — the error paths that exercise
#      partially-initialized and partially-released state)
#   5. a ThreadSanitizer build running the `concurrency` ctest group
#      (snapshot reads racing WAL-backed ingest, admission control,
#      cooperative cancellation, sharded scatter-gather fan-out racing
#      LRU store eviction)
#
# Usage: scripts/check_tier1.sh [--no-asan]   (skips both sanitizer runs)
# Exits non-zero on the first failing step.
#
# SEGDIFF_FAULT_SEED varies the crash-matrix and chaos fault schedules
# (see tests/fault_injection_test.cc, tests/chaos_test.cc);
# SEGDIFF_CHAOS_CYCLES scales the chaos sweep. Unset keeps the
# deterministic defaults.

set -euo pipefail
cd "$(dirname "$0")/.."

RUN_ASAN=1
if [[ "${1:-}" == "--no-asan" ]]; then
  RUN_ASAN=0
fi

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== tier-1: configure + build =="
cmake -B build -S . >/dev/null
cmake --build build -j "${JOBS}"

echo "== tier-1: ctest =="
(cd build && ctest --output-on-failure -j "${JOBS}")

echo "== tier-1: bench smoke (--quick) =="
(cd build && ./bench/bench_scan --quick && \
 ./bench/bench_parallel --quick && \
 ./bench/bench_governance --quick && \
 ./bench/bench_checksum --quick && \
 ./bench/bench_shard --quick && \
 ./bench/bench_micro --quick \
   --benchmark_filter='BM_ScanKernelBatch|BM_PredicateMatch|BM_DecodeFOR|BM_DecodeXor')

echo "== tier-1: chaos smoke (fixed-seed fault cycles + ENOSPC) =="
# A reduced fixed-seed slice of the chaos sweep (the full 200-cycle run
# rides in ctest above): every injected fault must end in resume, loud
# refusal, or repair — never silent data loss. Then the ENOSPC smoke:
# a full disk must flip the store into read-only degraded mode that
# still serves searches.
(cd build && \
 SEGDIFF_FAULT_SEED=20080325 SEGDIFF_CHAOS_CYCLES=25 ./tests/chaos_test \
   --gtest_filter='ChaosTest.SeededFaultCycleSweep' && \
 ./tests/chaos_test \
   --gtest_filter='ChaosTest.DiskFullFlipsDegradedReadOnlyMode')

echo "== tier-1: transect chaos smoke (crash-mid-rebalance + bitrot) =="
# A reduced fixed-seed slice of the transect-level sweeps (the full run
# rides in ctest above): every crashed rebalance must recover to exactly
# one authoritative layout with all acknowledged data searchable, and
# bit-flipped sensor stores must be isolated, reported, and repaired.
(cd build && \
 SEGDIFF_FAULT_SEED=20080325 SEGDIFF_CHAOS_CYCLES=10 \
   ./tests/transect_chaos_test)

echo "== tier-1: compression smoke (compact to columnar, ratio + scrub) =="
CMP_WORK="build/compression_smoke"
rm -rf "${CMP_WORK}"; mkdir -p "${CMP_WORK}"
./build/tools/segdiff_cli generate --out "${CMP_WORK}/data.csv" --days 20
./build/tools/segdiff_cli build --csv "${CMP_WORK}/data.csv" \
  --db "${CMP_WORK}/row.db" --eps 0.05
./build/tools/segdiff_cli compact --db "${CMP_WORK}/row.db" \
  --out "${CMP_WORK}/col.db"
CMP_STATS="$(./build/tools/segdiff_cli stats --db "${CMP_WORK}/col.db")"
echo "${CMP_STATS}"
# Every feature table must land in columnar segments at >= 2x
# compression (sensor-shaped features sit on a decimal grid, so FOR /
# delta packing must beat raw doubles by at least this much).
BEST_RATIO="$(echo "${CMP_STATS}" | sed -n 's/.*(\([0-9.]*\)x)$/\1/p' \
  | sort -g | tail -1)"
if [[ -z "${BEST_RATIO}" ]]; then
  echo "compression smoke: compacted store reports no columnar segments"
  exit 1
fi
if ! awk -v r="${BEST_RATIO}" 'BEGIN { exit (r + 0 >= 2.0) ? 0 : 1 }'; then
  echo "compression smoke: best table ratio ${BEST_RATIO}x < 2.0x floor"
  exit 1
fi
# The compacted store must also pass a full checksum scrub: compressed
# payloads ride the same per-page CRC32C trailers as row pages.
./build/tools/segdiff_cli verify --db "${CMP_WORK}/col.db" --scrub
echo "compression smoke: columnar ratio ${BEST_RATIO}x, scrub clean"
rm -rf "${CMP_WORK}"

echo "== tier-1: governance smoke (concurrent 50ms-deadline searches) =="
GOV_WORK="build/governance_smoke"
rm -rf "${GOV_WORK}"; mkdir -p "${GOV_WORK}"
./build/tools/segdiff_cli generate --out "${GOV_WORK}/data.csv" --days 20
./build/tools/segdiff_cli build --csv "${GOV_WORK}/data.csv" \
  --db "${GOV_WORK}/store.db" --eps 0.05
# 8 concurrent pathological corner queries (max T, near-zero |V| => the
# widest parallelogram overlap) under a 50 ms deadline. Each must reach
# a terminal state: exit 0 (finished in time) or exit 1 with
# DEADLINE_EXCEEDED. Anything else — a hang (caught by timeout) or a
# crash — fails the gate.
GOV_PIDS=()
for i in $(seq 1 8); do
  timeout 30 ./build/tools/segdiff_cli search --db "${GOV_WORK}/store.db" \
    --t-hours 8 --v -0.01 --timeout-ms 50 --stats \
    > "${GOV_WORK}/q${i}.out" 2>&1 &
  GOV_PIDS+=("$!")
done
GOV_FAIL=0
for pid in "${GOV_PIDS[@]}"; do
  rc=0; wait "${pid}" || rc=$?
  if [[ "${rc}" != 0 && "${rc}" != 1 ]]; then
    echo "governance smoke: query exited ${rc} (hang or crash)"
    GOV_FAIL=1
  fi
done
if [[ "${GOV_FAIL}" != 0 ]]; then
  cat "${GOV_WORK}"/q*.out
  exit 1
fi
echo "governance smoke: all 8 concurrent deadline queries terminal"
rm -rf "${GOV_WORK}"

echo "== tier-1: WAL recovery smoke (kill -9 mid-ingest, reopen, scrub) =="
WAL_WORK="build/wal_smoke"
rm -rf "${WAL_WORK}"; mkdir -p "${WAL_WORK}"
./build/tools/segdiff_cli generate --out "${WAL_WORK}/base.csv" --days 10
./build/tools/segdiff_cli generate --out "${WAL_WORK}/tail.csv" --days 20 \
  --start-day 11
./build/tools/segdiff_cli build --csv "${WAL_WORK}/base.csv" \
  --db "${WAL_WORK}/store.db" --eps 0.05 --wal-window-ms 1
BASE_SEGMENTS="$(./build/tools/segdiff_cli stats --db "${WAL_WORK}/store.db" \
  | awk '/segments:/ {print $2}')"
# Pull the power mid-append. Wherever the kill lands — before the open,
# mid-group-commit, or after completion — the store must reopen, keep
# every observation it held at build time, and scrub clean.
./build/tools/segdiff_cli append --csv "${WAL_WORK}/tail.csv" \
  --db "${WAL_WORK}/store.db" --wal-window-ms 1 \
  > "${WAL_WORK}/append.out" 2>&1 &
WAL_PID="$!"
sleep 2
kill -9 "${WAL_PID}" 2>/dev/null || true
wait "${WAL_PID}" 2>/dev/null || true
# stats reopens the store, which replays the log tail (recovery).
WAL_STATS="$(./build/tools/segdiff_cli stats --db "${WAL_WORK}/store.db")"
echo "${WAL_STATS}"
AFTER_SEGMENTS="$(echo "${WAL_STATS}" | awk '/segments:/ {print $2}')"
if [[ -z "${AFTER_SEGMENTS}" || "${AFTER_SEGMENTS}" -lt "${BASE_SEGMENTS}" ]]
then
  echo "wal smoke: segments dropped from ${BASE_SEGMENTS} to" \
       "${AFTER_SEGMENTS:-none} across the crash"
  exit 1
fi
./build/tools/segdiff_cli verify --db "${WAL_WORK}/store.db" --scrub
echo "wal smoke: recovered (${BASE_SEGMENTS} -> ${AFTER_SEGMENTS} segments)," \
     "scrub clean"
rm -rf "${WAL_WORK}"

if [[ "${RUN_ASAN}" == "1" ]]; then
  echo "== asan: configure + build (streaming + storage + fault suites) =="
  cmake -B build-asan -S . -DSEGDIFF_SANITIZE=address >/dev/null
  cmake --build build-asan -j "${JOBS}" --target \
    streaming_ingest_test storage_test segdiff_index_test \
    fault_injection_test chaos_test transect_chaos_test governance_test
  echo "== asan: run =="
  (cd build-asan && ctest --output-on-failure -j "${JOBS}" \
    -R 'StreamingIngestTest|ExhStreamingTest|StorageTest|SegDiffIndexTest')
  echo "== asan: fault + governance groups (ctest -L) =="
  (cd build-asan && ctest --output-on-failure -j "${JOBS}" \
    -L 'faults|governance')

  echo "== tsan: configure + build (concurrency + faults + governance) =="
  cmake -B build-tsan -S . -DSEGDIFF_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "${JOBS}" --target \
    thread_pool_test buffer_pool_concurrency_test parallel_query_test \
    transect_shard_test fault_injection_test chaos_test \
    transect_chaos_test governance_test
  echo "== tsan: run =="
  # -L takes a regex: one pass over the threading suites plus the
  # fault-injection and governance groups (snapshot reads racing
  # WAL-backed ingest, admission control, cooperative cancellation).
  (cd build-tsan && ctest --output-on-failure -j "${JOBS}" \
    -L 'concurrency|faults|governance')
fi

echo "== check_tier1: all green =="
