#!/usr/bin/env bash
# Tier-1 verification in one command:
#   1. configure + build + full ctest suite (the CI gate from ROADMAP.md),
#      then a --quick smoke of the scan/parallel/micro benches (proves
#      the bench binaries still run end to end; no perf assertions)
#   2. an AddressSanitizer build running the streaming-ingest and storage
#      suites (the subsystems that serialize/restore raw state blobs)
#      plus the `faults` ctest group (crash-recovery + fault injection,
#      whose error paths exercise partially-initialized state)
#
# Usage: scripts/check_tier1.sh [--no-asan]
# Exits non-zero on the first failing step.
#
# SEGDIFF_FAULT_SEED varies the crash-matrix fault schedule (see
# tests/fault_injection_test.cc); unset keeps the deterministic default.

set -euo pipefail
cd "$(dirname "$0")/.."

RUN_ASAN=1
if [[ "${1:-}" == "--no-asan" ]]; then
  RUN_ASAN=0
fi

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== tier-1: configure + build =="
cmake -B build -S . >/dev/null
cmake --build build -j "${JOBS}"

echo "== tier-1: ctest =="
(cd build && ctest --output-on-failure -j "${JOBS}")

echo "== tier-1: bench smoke (--quick) =="
(cd build && ./bench/bench_scan --quick && \
 ./bench/bench_parallel --quick && \
 ./bench/bench_micro --quick --benchmark_filter='BM_ScanKernelBatch|BM_PredicateMatch')

if [[ "${RUN_ASAN}" == "1" ]]; then
  echo "== asan: configure + build (streaming + storage + fault suites) =="
  cmake -B build-asan -S . -DSEGDIFF_SANITIZE=address >/dev/null
  cmake --build build-asan -j "${JOBS}" --target \
    streaming_ingest_test storage_test segdiff_index_test \
    fault_injection_test
  echo "== asan: run =="
  (cd build-asan && ctest --output-on-failure -j "${JOBS}" \
    -R 'StreamingIngestTest|ExhStreamingTest|StorageTest|SegDiffIndexTest')
  echo "== asan: fault-injection group (ctest -L faults) =="
  (cd build-asan && ctest --output-on-failure -j "${JOBS}" -L faults)
fi

echo "== check_tier1: all green =="
