// Model-based randomized test of minidb: a random interleaving of
// CREATE TABLE / CREATE INDEX / INSERT / DeleteWhere / DropCaches /
// Checkpoint+reopen is mirrored against an in-memory model; after every
// phase the real database must agree with the model exactly, and every
// index must satisfy its structural invariants.

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "query/predicate.h"
#include "storage/db.h"

namespace segdiff {
namespace {

struct ModelTable {
  size_t columns = 1;
  std::vector<std::vector<double>> rows;
  size_t indexes = 0;
};

class DbModelTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    path_ = testing::TempDir() + "/segdiff_db_model_" +
            std::to_string(GetParam()) + ".db";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_P(DbModelTest, RandomOpsMatchModel) {
  Rng rng(GetParam());
  DatabaseOptions options;
  options.buffer_pool_pages = 64;  // small pool: force evictions
  auto db_or = Database::Open(path_, options);
  ASSERT_TRUE(db_or.ok());
  std::unique_ptr<Database> db = std::move(db_or).value();
  std::map<std::string, ModelTable> model;

  auto verify = [&]() {
    for (const auto& [name, expected] : model) {
      auto table = db->GetTable(name);
      ASSERT_TRUE(table.ok()) << name;
      ASSERT_EQ((*table)->row_count(), expected.rows.size()) << name;
      std::vector<std::vector<double>> actual;
      ASSERT_TRUE((*table)
                      ->Scan([&](const char* record, RecordId, bool* keep) {
                        *keep = true;
                        std::vector<double> row(expected.columns);
                        for (size_t c = 0; c < expected.columns; ++c) {
                          row[c] = DecodeDoubleColumn(record, c);
                        }
                        actual.push_back(std::move(row));
                        return Status::OK();
                      })
                      .ok());
      // Heap order can change across DeleteWhere rewrites; compare as
      // multisets.
      auto expected_sorted = expected.rows;
      std::sort(expected_sorted.begin(), expected_sorted.end());
      std::sort(actual.begin(), actual.end());
      ASSERT_EQ(actual, expected_sorted) << name;
      for (const TableIndex& index : (*table)->indexes()) {
        ASSERT_TRUE(index.tree->CheckInvariants().ok()) << index.name;
        ASSERT_EQ(index.tree->entry_count(), expected.rows.size());
      }
      ASSERT_EQ((*table)->indexes().size(), expected.indexes);
    }
  };

  for (int step = 0; step < 220; ++step) {
    const int op = static_cast<int>(rng.UniformInt(0, 99));
    if (op < 6 && model.size() < 4) {
      // CREATE TABLE with 1..3 double columns.
      const std::string name = "t" + std::to_string(model.size());
      const size_t columns = static_cast<size_t>(rng.UniformInt(1, 3));
      std::vector<std::string> names;
      for (size_t c = 0; c < columns; ++c) {
        names.push_back("c" + std::to_string(c));
      }
      auto schema = DoubleSchema(names);
      ASSERT_TRUE(schema.ok());
      ASSERT_TRUE(db->CreateTable(name, *schema).ok());
      model[name] = ModelTable{columns, {}, 0};
    } else if (op < 12 && !model.empty()) {
      // CREATE INDEX on a random prefix of columns.
      auto it = model.begin();
      std::advance(it, rng.UniformInt(0, static_cast<int64_t>(
                                             model.size() - 1)));
      ModelTable& m = it->second;
      if (m.indexes < 2) {
        auto table = db->GetTable(it->first);
        ASSERT_TRUE(table.ok());
        std::vector<std::string> key;
        const size_t arity = 1 + rng.UniformU64(m.columns);
        for (size_t c = 0; c < arity; ++c) {
          key.push_back("c" + std::to_string(c));
        }
        auto created = (*table)->CreateIndex(
            "i" + std::to_string(m.indexes), key);
        ASSERT_TRUE(created.ok()) << created.status().ToString();
        ++m.indexes;
      }
    } else if (op < 70 && !model.empty()) {
      // INSERT a burst of rows.
      auto it = model.begin();
      std::advance(it, rng.UniformInt(0, static_cast<int64_t>(
                                             model.size() - 1)));
      ModelTable& m = it->second;
      auto table = db->GetTable(it->first);
      ASSERT_TRUE(table.ok());
      const int burst = static_cast<int>(rng.UniformInt(1, 40));
      for (int i = 0; i < burst; ++i) {
        std::vector<double> row;
        for (size_t c = 0; c < m.columns; ++c) {
          row.push_back(rng.Uniform(-100, 100));
        }
        ASSERT_TRUE((*table)->InsertDoubles(row).ok());
        m.rows.push_back(std::move(row));
      }
    } else if (op < 80 && !model.empty()) {
      // DeleteWhere c0 < threshold.
      auto it = model.begin();
      std::advance(it, rng.UniformInt(0, static_cast<int64_t>(
                                             model.size() - 1)));
      ModelTable& m = it->second;
      auto table = db->GetTable(it->first);
      ASSERT_TRUE(table.ok());
      const double threshold = rng.Uniform(-120, 120);
      Predicate predicate;
      predicate.And(0, CmpOp::kLt, threshold);
      auto removed = (*table)->DeleteWhere(predicate);
      ASSERT_TRUE(removed.ok());
      const size_t before = m.rows.size();
      m.rows.erase(std::remove_if(m.rows.begin(), m.rows.end(),
                                  [threshold](const std::vector<double>& r) {
                                    return r[0] < threshold;
                                  }),
                   m.rows.end());
      ASSERT_EQ(*removed, before - m.rows.size());
    } else if (op < 88) {
      ASSERT_TRUE(db->DropCaches().ok());
    } else if (op < 94) {
      verify();
    } else {
      // Checkpoint + full reopen.
      ASSERT_TRUE(db->Checkpoint().ok());
      db.reset();
      auto reopened = Database::Open(path_, options);
      ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
      db = std::move(reopened).value();
      verify();
    }
  }
  verify();
}

INSTANTIATE_TEST_SUITE_P(Seeds, DbModelTest,
                         ::testing::Values(11u, 22u, 33u, 44u));

}  // namespace
}  // namespace segdiff
