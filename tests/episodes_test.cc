// Tests for episode coalescing and event refinement, including an
// end-to-end drill-down over a search result.

#include <gtest/gtest.h>

#include "test_paths.h"

#include "segdiff/episodes.h"
#include "segdiff/segdiff_index.h"
#include "segdiff/verify.h"
#include "ts/generator.h"

namespace segdiff {
namespace {

TEST(EpisodesTest, EmptyInput) {
  EXPECT_TRUE(CoalesceEpisodes({}).empty());
}

TEST(EpisodesTest, MergesOverlapsKeepsGaps) {
  std::vector<PairId> pairs = {
      {0, 10, 20, 30},     // span [0, 30]
      {25, 28, 35, 40},    // overlaps -> extends to 40
      {100, 110, 115, 120} // separate episode
  };
  auto episodes = CoalesceEpisodes(pairs);
  ASSERT_EQ(episodes.size(), 2u);
  EXPECT_DOUBLE_EQ(episodes[0].t_begin, 0);
  EXPECT_DOUBLE_EQ(episodes[0].t_end, 40);
  EXPECT_EQ(episodes[0].pair_count, 2u);
  EXPECT_DOUBLE_EQ(episodes[1].t_begin, 100);
  EXPECT_EQ(episodes[1].pair_count, 1u);
}

TEST(EpisodesTest, GapParameterBridges) {
  std::vector<PairId> pairs = {{0, 5, 8, 10}, {15, 18, 20, 25}};
  EXPECT_EQ(CoalesceEpisodes(pairs, 0.0).size(), 2u);
  EXPECT_EQ(CoalesceEpisodes(pairs, 5.0).size(), 1u);
}

TEST(EpisodesTest, UnsortedInputHandled) {
  std::vector<PairId> pairs = {{100, 110, 115, 120}, {0, 10, 20, 30}};
  auto episodes = CoalesceEpisodes(pairs);
  ASSERT_EQ(episodes.size(), 2u);
  EXPECT_LT(episodes[0].t_begin, episodes[1].t_begin);
}

TEST(EpisodesTest, ContainedPairDoesNotShrinkEpisode) {
  std::vector<PairId> pairs = {
      {0, 10, 90, 100},  // long span
      {20, 25, 30, 35},  // contained
      {50, 55, 60, 65},  // contained
  };
  auto episodes = CoalesceEpisodes(pairs);
  ASSERT_EQ(episodes.size(), 1u);
  EXPECT_DOUBLE_EQ(episodes[0].t_end, 100);
  EXPECT_EQ(episodes[0].pair_count, 3u);
}

TEST(RefineTest, FindsSteepestDropArg) {
  // Fall of slope -1 over [10, 20], flat elsewhere.
  Series series;
  ASSERT_TRUE(series.Append({0, 10}).ok());
  ASSERT_TRUE(series.Append({10, 10}).ok());
  ASSERT_TRUE(series.Append({20, 0}).ok());
  ASSERT_TRUE(series.Append({30, 0}).ok());
  PairId pair{0, 30, 0, 30};
  auto refined = RefineDrop(series, pair, 30.0);
  ASSERT_TRUE(refined.ok());
  ASSERT_TRUE(refined->feasible);
  EXPECT_NEAR(refined->dv, -10.0, 1e-9);
  // The steepest drop spans the falling ramp.
  EXPECT_LE(refined->t_start, 10.0);
  EXPECT_GE(refined->t_end, 20.0);
  EXPECT_LE(refined->t_end - refined->t_start, 30.0);

  // Constrained T picks a sub-ramp of exactly T.
  auto tight = RefineDrop(series, pair, 5.0);
  ASSERT_TRUE(tight.ok());
  EXPECT_NEAR(tight->dv, -5.0, 1e-9);
  EXPECT_NEAR(tight->t_end - tight->t_start, 5.0, 1e-9);
}

TEST(RefineTest, JumpMirrors) {
  Series series;
  ASSERT_TRUE(series.Append({0, 0}).ok());
  ASSERT_TRUE(series.Append({10, 7}).ok());
  PairId pair{0, 10, 0, 10};
  auto refined = RefineJump(series, pair, 10.0);
  ASSERT_TRUE(refined.ok());
  ASSERT_TRUE(refined->feasible);
  EXPECT_NEAR(refined->dv, 7.0, 1e-9);
}

TEST(RefineTest, InfeasibleReported) {
  Series series;
  ASSERT_TRUE(series.Append({0, 0}).ok());
  ASSERT_TRUE(series.Append({100, 5}).ok());
  PairId pair{0, 10, 90, 100};
  auto refined = RefineDrop(series, pair, 5.0);  // 80s gap > T
  ASSERT_TRUE(refined.ok());
  EXPECT_FALSE(refined->feasible);
}

TEST(RefineTest, EndToEndDrillDown) {
  CadGeneratorOptions gen;
  gen.num_days = 3;
  gen.cad_events_per_day = 1.0;
  auto data = GenerateCadSeries(gen);
  ASSERT_TRUE(data.ok());
  const std::string path = UniqueTestPath("segdiff_episodes_e2e");
  std::remove(path.c_str());
  SegDiffOptions options;
  options.window_s = 4 * 3600.0;
  auto index = SegDiffIndex::Open(path, options);
  ASSERT_TRUE(index.ok());
  ASSERT_TRUE((*index)->IngestSeries(data->series).ok());
  auto pairs = (*index)->SearchDrops(3600.0, -3.0);
  ASSERT_TRUE(pairs.ok());
  ASSERT_FALSE(pairs->empty());

  // Coalescing drastically reduces the result count and episode count
  // is at most the injected event count plus a small margin.
  auto episodes = CoalesceEpisodes(*pairs, 1800.0);
  EXPECT_LT(episodes.size(), pairs->size());
  EXPECT_LE(episodes.size(), data->drops.size() + 3);

  // Refinement inside every returned pair confirms Lemma 5 numerically:
  // the best event is within 2 eps of the threshold.
  for (const PairId& pair : *pairs) {
    auto refined = RefineDrop(data->series, pair, 3600.0);
    ASSERT_TRUE(refined.ok());
    ASSERT_TRUE(refined->feasible);
    EXPECT_LE(refined->dv, -3.0 + 2 * options.eps + 1e-9);
    EXPECT_GE(refined->t_start, pair.t_d - 1e-9);
    EXPECT_LE(refined->t_end, pair.t_a + 1e-9);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace segdiff
