// Tests for the bench harness substrate: workload configuration,
// smoothed-series calibration, disk-sim env parsing, and the table
// printer.

#include <cstdlib>
#include <sstream>

#include <gtest/gtest.h>

#include "benchutil/report.h"
#include "benchutil/workload.h"
#include "segment/sliding_window.h"

namespace segdiff {
namespace {

class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    ::setenv(name, value, 1);
  }
  ~EnvGuard() { ::unsetenv(name_); }

 private:
  const char* name_;
};

TEST(WorkloadTest, DefaultsAndEnvOverrides) {
  const WorkloadConfig defaults = WorkloadConfig::FromEnv();
  EXPECT_EQ(defaults.num_days, 14);
  EXPECT_EQ(defaults.sensor_count, 1);
  {
    EnvGuard days("SEGDIFF_BENCH_DAYS", "10");
    EnvGuard scale("SEGDIFF_BENCH_SCALE", "2.0");
    EnvGuard sensors("SEGDIFF_BENCH_SENSORS", "3");
    const WorkloadConfig config = WorkloadConfig::FromEnv();
    EXPECT_EQ(config.num_days, 20);  // days * scale
    EXPECT_EQ(config.sensor_count, 3);
  }
}

TEST(WorkloadTest, DiskSimEnvOverrides) {
  const DiskSim defaults = DiskSim::FromEnv();
  EXPECT_EQ(defaults.seq_ns, 20000u);
  EXPECT_EQ(defaults.random_ns, 400000u);
  {
    EnvGuard seq("SEGDIFF_SIM_SEQ_US", "0");
    EnvGuard random("SEGDIFF_SIM_RANDOM_US", "1000");
    const DiskSim sim = DiskSim::FromEnv();
    EXPECT_EQ(sim.seq_ns, 0u);
    EXPECT_EQ(sim.random_ns, 1000000u);
  }
}

TEST(WorkloadTest, SmoothedSeriesReproducesPaperCompressionBand) {
  WorkloadConfig config;
  config.num_days = 10;
  auto series = MakeSmoothedBenchSeries(config);
  ASSERT_TRUE(series.ok()) << series.status().ToString();
  auto pla = SegmentSeriesWithTolerance(*series, 0.2);
  ASSERT_TRUE(pla.ok());
  const double r = pla->CompressionRate(series->size());
  // Paper Table 3 reports r = 7.03 at eps = 0.2; the synthetic workload
  // is calibrated to land in the same band.
  EXPECT_GT(r, 4.0);
  EXPECT_LT(r, 11.0);
}

TEST(WorkloadTest, BenchDbPathIsWritable) {
  const std::string path = BenchDbPath("unit_test");
  FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  RemoveBenchDb(path);
  f = std::fopen(path.c_str(), "r");
  EXPECT_EQ(f, nullptr);
}

TEST(ReportTest, TableAlignment) {
  TablePrinter table({"name", "v"});
  table.AddRow({"a", "1.00"});
  table.AddRow({"longer", "2"});
  std::ostringstream out;
  table.Print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("| name   | v    |"), std::string::npos);
  EXPECT_NE(text.find("| a      | 1.00 |"), std::string::npos);
  EXPECT_NE(text.find("| longer | 2    |"), std::string::npos);
}

TEST(ReportTest, ShortRowsPad) {
  TablePrinter table({"a", "b", "c"});
  table.AddRow({"only"});
  std::ostringstream out;
  table.Print(out);
  EXPECT_NE(out.str().find("| only |"), std::string::npos);
}

TEST(ReportTest, Formatting) {
  EXPECT_EQ(Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Fmt(3.0, 0), "3");
  EXPECT_EQ(HumanBytes(512), "512.00 B");
  EXPECT_EQ(HumanBytes(2048), "2.00 KiB");
  EXPECT_EQ(HumanBytes(3 * 1024ull * 1024), "3.00 MiB");
  EXPECT_EQ(HumanBytes(5ull * 1024 * 1024 * 1024), "5.00 GiB");
  std::ostringstream out;
  PrintBanner(out, "Title");
  EXPECT_EQ(out.str(), "\n== Title ==\n");
}

}  // namespace
}  // namespace segdiff
