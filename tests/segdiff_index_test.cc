// Facade-level tests for SegDiffIndex: ingest, search modes, reopen,
// sizes, option validation.

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "test_paths.h"

#include "segdiff/segdiff_index.h"
#include "ts/generator.h"

namespace segdiff {
namespace {

class SegDiffIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = UniqueTestPath("segdiff_index");
    std::remove(path_.c_str());
    CadGeneratorOptions gen;
    gen.num_days = 5;
    gen.cad_events_per_day = 1.0;
    auto data = GenerateCadSeries(gen);
    ASSERT_TRUE(data.ok());
    series_ = std::move(data->series);
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::unique_ptr<SegDiffIndex> Build(const SegDiffOptions& options) {
    auto index = SegDiffIndex::Open(path_, options);
    EXPECT_TRUE(index.ok()) << index.status().ToString();
    Status ingest = (*index)->IngestSeries(series_);
    EXPECT_TRUE(ingest.ok()) << ingest.ToString();
    return std::move(index).value();
  }

  std::string path_;
  Series series_;
};

TEST_F(SegDiffIndexTest, OptionValidation) {
  SegDiffOptions options;
  options.eps = -0.1;
  EXPECT_TRUE(SegDiffIndex::Open(path_, options).status().IsInvalidArgument());
  options = {};
  options.window_s = 0.0;
  EXPECT_TRUE(SegDiffIndex::Open(path_, options).status().IsInvalidArgument());
}

TEST_F(SegDiffIndexTest, SearchValidation) {
  SegDiffOptions options;
  options.window_s = 4 * 3600.0;
  auto index = Build(options);
  EXPECT_TRUE(index->SearchDrops(3600, 3.0).status().IsInvalidArgument());
  EXPECT_TRUE(index->SearchDrops(-1, -3.0).status().IsInvalidArgument());
  EXPECT_TRUE(index->SearchDrops(0, -3.0).status().IsInvalidArgument());
  EXPECT_TRUE(
      index->SearchDrops(5 * 3600.0, -3.0).status().IsInvalidArgument());
  EXPECT_TRUE(index->SearchJumps(3600, -3.0).status().IsInvalidArgument());
  // Index scan on an index-less store is rejected.
  std::remove(path_.c_str());
  SegDiffOptions no_index;
  no_index.build_indexes = false;
  auto bare = Build(no_index);
  SearchOptions search;
  search.mode = QueryMode::kIndexScan;
  EXPECT_TRUE(
      bare->SearchDrops(3600, -3.0, search).status().IsInvalidArgument());
}

TEST_F(SegDiffIndexTest, AllQueryModesAgree) {
  auto index = Build(SegDiffOptions{});
  for (double T : {900.0, 3600.0, 4 * 3600.0}) {
    for (double V : {-1.0, -3.0, -8.0}) {
      SearchOptions seq;
      seq.mode = QueryMode::kSeqScan;
      auto seq_result = index->SearchDrops(T, V, seq);
      ASSERT_TRUE(seq_result.ok());

      SearchOptions fused = seq;
      fused.fused_scan = true;
      auto fused_result = index->SearchDrops(T, V, fused);
      ASSERT_TRUE(fused_result.ok());

      SearchOptions idx;
      idx.mode = QueryMode::kIndexScan;
      auto idx_result = index->SearchDrops(T, V, idx);
      ASSERT_TRUE(idx_result.ok());

      SearchOptions automatic;
      automatic.mode = QueryMode::kAuto;
      auto auto_result = index->SearchDrops(T, V, automatic);
      ASSERT_TRUE(auto_result.ok());

      ASSERT_EQ(seq_result->size(), idx_result->size())
          << "T=" << T << " V=" << V;
      ASSERT_EQ(seq_result->size(), fused_result->size());
      ASSERT_EQ(seq_result->size(), auto_result->size());
      for (size_t i = 0; i < seq_result->size(); ++i) {
        EXPECT_EQ((*seq_result)[i], (*idx_result)[i]);
        EXPECT_EQ((*seq_result)[i], (*fused_result)[i]);
        EXPECT_EQ((*seq_result)[i], (*auto_result)[i]);
      }
    }
  }
}

TEST_F(SegDiffIndexTest, JumpModesAgree) {
  auto index = Build(SegDiffOptions{});
  for (double V : {1.0, 3.0}) {
    SearchOptions seq;
    auto seq_result = index->SearchJumps(3600, V, seq);
    ASSERT_TRUE(seq_result.ok());
    SearchOptions idx;
    idx.mode = QueryMode::kIndexScan;
    auto idx_result = index->SearchJumps(3600, V, idx);
    ASSERT_TRUE(idx_result.ok());
    ASSERT_EQ(seq_result->size(), idx_result->size());
    for (size_t i = 0; i < seq_result->size(); ++i) {
      EXPECT_EQ((*seq_result)[i], (*idx_result)[i]);
    }
  }
}

TEST_F(SegDiffIndexTest, ResultsAreDedupedSortedAndResolved) {
  auto index = Build(SegDiffOptions{});
  auto results = index->SearchDrops(3600, -3.0);
  ASSERT_TRUE(results.ok());
  ASSERT_FALSE(results->empty());
  for (size_t i = 0; i < results->size(); ++i) {
    const PairId& pair = (*results)[i];
    EXPECT_LE(pair.t_d, pair.t_c);
    EXPECT_LE(pair.t_b, pair.t_a);
    EXPECT_LT(pair.t_b, pair.t_a);  // t_a resolved (nonzero span)
    EXPECT_LE(pair.t_c, pair.t_a);
    if (i > 0) {
      const PairId& prev = (*results)[i - 1];
      EXPECT_TRUE(prev.t_d < pair.t_d ||
                  (prev.t_d == pair.t_d &&
                   (prev.t_c < pair.t_c ||
                    (prev.t_c == pair.t_c && prev.t_b < pair.t_b))))
          << "not strictly sorted/deduped at " << i;
    }
  }
}

TEST_F(SegDiffIndexTest, StatsArePopulated) {
  auto index = Build(SegDiffOptions{});
  SearchStats stats;
  auto results = index->SearchDrops(3600, -3.0, {}, &stats);
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(stats.pairs_returned, results->size());
  EXPECT_GT(stats.queries_issued, 0u);
  EXPECT_GT(stats.scan.rows_scanned, 0u);
  EXPECT_GT(stats.seconds, 0.0);

  SearchOptions idx;
  idx.mode = QueryMode::kIndexScan;
  SearchStats idx_stats;
  ASSERT_TRUE(index->SearchDrops(3600, -3.0, idx, &idx_stats).ok());
  EXPECT_GT(idx_stats.scan.index_entries_scanned, 0u);
  EXPECT_EQ(idx_stats.scan.rows_scanned, 0u);
}

TEST_F(SegDiffIndexTest, SizesAccounting) {
  auto index = Build(SegDiffOptions{});
  const SegDiffSizes sizes = index->GetSizes();
  EXPECT_GT(sizes.feature_rows, 0u);
  EXPECT_GT(sizes.feature_bytes, 0u);
  EXPECT_GT(sizes.index_bytes, 0u);
  EXPECT_GT(sizes.segment_dir_bytes, 0u);
  EXPECT_GE(sizes.file_bytes,
            sizes.feature_bytes + sizes.index_bytes + sizes.segment_dir_bytes);
  EXPECT_GT(index->num_segments(), 0u);
  EXPECT_EQ(index->num_observations(), series_.size());
  // Extractor stats flowed through.
  EXPECT_EQ(index->extractor_stats().segments_in, index->num_segments());
}

TEST_F(SegDiffIndexTest, NoIndexStoreIsSmaller) {
  auto with_index = Build(SegDiffOptions{});
  const uint64_t with_bytes = with_index->GetSizes().file_bytes;
  with_index.reset();
  std::remove(path_.c_str());
  SegDiffOptions options;
  options.build_indexes = false;
  auto without_index = Build(options);
  const SegDiffSizes sizes = without_index->GetSizes();
  EXPECT_EQ(sizes.index_bytes, 0u);
  EXPECT_LT(sizes.file_bytes, with_bytes);
}

TEST_F(SegDiffIndexTest, DropCachesPreservesResults) {
  auto index = Build(SegDiffOptions{});
  auto warm = index->SearchDrops(3600, -3.0);
  ASSERT_TRUE(warm.ok());
  ASSERT_TRUE(index->DropCaches().ok());
  auto cold = index->SearchDrops(3600, -3.0);
  ASSERT_TRUE(cold.ok());
  ASSERT_EQ(warm->size(), cold->size());
  for (size_t i = 0; i < warm->size(); ++i) {
    EXPECT_EQ((*warm)[i], (*cold)[i]);
  }
}

TEST_F(SegDiffIndexTest, ReopenedStoreAnswersQueries) {
  std::vector<PairId> expected;
  {
    auto index = Build(SegDiffOptions{});
    auto results = index->SearchDrops(3600, -3.0);
    ASSERT_TRUE(results.ok());
    expected = *results;
    ASSERT_TRUE(index->Checkpoint().ok());
  }
  auto reopened = SegDiffIndex::Open(path_, SegDiffOptions{});
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto results = (*reopened)->SearchDrops(3600, -3.0);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ((*results)[i], expected[i]);
  }
  // Index path also works after reopen.
  SearchOptions idx;
  idx.mode = QueryMode::kIndexScan;
  auto idx_results = (*reopened)->SearchDrops(3600, -3.0, idx);
  ASSERT_TRUE(idx_results.ok());
  EXPECT_EQ(idx_results->size(), expected.size());
}

TEST_F(SegDiffIndexTest, LineQueryAloneDetectsMidEdgeIntersection) {
  // One long falling segment: samples (0, 0) and (100, -10) only. The
  // self pair's stored frontier is (0, -eps) -> (100, -10 - eps). For
  // T = 50, V = -3 NEITHER corner passes the point query (corner 1 has
  // dv = -eps > V; corner 2 has dt = 100 > T), so only the line query
  // (edge value at T is about -5.2 <= V) can return the pair.
  std::remove(path_.c_str());
  Series ramp;
  ASSERT_TRUE(ramp.Append({0, 0}).ok());
  ASSERT_TRUE(ramp.Append({100, -10}).ok());
  SegDiffOptions options;
  options.eps = 0.2;
  options.window_s = 200.0;
  auto index = SegDiffIndex::Open(path_, options);
  ASSERT_TRUE(index.ok());
  ASSERT_TRUE((*index)->IngestSeries(ramp).ok());
  for (QueryMode mode : {QueryMode::kSeqScan, QueryMode::kIndexScan}) {
    SearchOptions search;
    search.mode = mode;
    auto results = (*index)->SearchDrops(50.0, -3.0, search);
    ASSERT_TRUE(results.ok());
    ASSERT_EQ(results->size(), 1u) << "mode " << static_cast<int>(mode);
    EXPECT_DOUBLE_EQ((*results)[0].t_d, 0.0);
    EXPECT_DOUBLE_EQ((*results)[0].t_a, 100.0);
  }
  // Sanity: with V = -11 nothing (not even the line query) fires.
  auto none = (*index)->SearchDrops(50.0, -11.0);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
}

TEST_F(SegDiffIndexTest, IncrementalIngestMatchesSearchability) {
  // Ingest in two chunks; later chunk's events are still found.
  auto index = SegDiffIndex::Open(path_, SegDiffOptions{});
  ASSERT_TRUE(index.ok());
  const size_t half = series_.size() / 2;
  Series first;
  Series second;
  for (size_t i = 0; i < series_.size(); ++i) {
    ASSERT_TRUE((i < half ? first : second).Append(series_[i]).ok());
  }
  ASSERT_TRUE((*index)->IngestSeries(first).ok());
  const uint64_t rows_after_first = (*index)->GetSizes().feature_rows;
  ASSERT_TRUE((*index)->IngestSeries(second).ok());
  EXPECT_GT((*index)->GetSizes().feature_rows, rows_after_first);
  auto results = (*index)->SearchDrops(3600, -3.0);
  ASSERT_TRUE(results.ok());
  // Events exist in both halves (one CAD event per day).
  bool in_first = false;
  bool in_second = false;
  const double split_t = series_[half].t;
  for (const PairId& pair : *results) {
    if (pair.t_a < split_t) in_first = true;
    if (pair.t_b > split_t) in_second = true;
  }
  EXPECT_TRUE(in_first);
  EXPECT_TRUE(in_second);
}

}  // namespace
}  // namespace segdiff
