// End-to-end integration: the full production workflow on a realistic
// feed — packet loss and spike anomalies, outage splitting, robust
// smoothing, one store fed chunk by chunk, searches on every access
// path, Theorem-1 verification against the oracle, episode drill-down,
// checkpoint + reopen, compaction, and SQL introspection of the store.

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "test_paths.h"

#include "query/predicate.h"
#include "segdiff/episodes.h"
#include "segdiff/naive.h"
#include "segdiff/segdiff_index.h"
#include "segdiff/verify.h"
#include "sql/engine.h"
#include "ts/generator.h"
#include "ts/resample.h"
#include "ts/smoothing.h"

namespace segdiff {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = UniqueTestPath("segdiff_integration");
    compact_path_ = UniqueTestPath("segdiff_integration_compact");
    std::remove(path_.c_str());
    std::remove(compact_path_.c_str());
  }
  void TearDown() override {
    std::remove(path_.c_str());
    std::remove(compact_path_.c_str());
  }
  std::string path_;
  std::string compact_path_;
};

TEST_F(IntegrationTest, FullWorkflow) {
  // 1. A dirty feed: 8 days, 2% packet loss, occasional spikes.
  CadGeneratorOptions gen;
  gen.num_days = 8;
  gen.cad_events_per_day = 0.8;
  gen.missing_probability = 0.02;
  gen.spike_probability = 0.002;
  auto data = GenerateCadSeries(gen);
  ASSERT_TRUE(data.ok());

  // 2. Split at outages, de-spike and smooth each chunk.
  const auto chunks = SplitAtGaps(data->series, 1800.0);
  ASSERT_FALSE(chunks.empty());
  std::vector<Series> cleaned;
  Series indexed_concat;  // what the store actually saw, for the oracle
  for (const Series& chunk : chunks) {
    if (chunk.size() < 10) {
      continue;  // too short to smooth/segment meaningfully
    }
    auto filtered = HampelFilter(chunk, HampelOptions{});
    ASSERT_TRUE(filtered.ok());
    LoessOptions loess;
    loess.bandwidth_s = 1500.0;
    auto smoothed = RobustLoess(*filtered, loess);
    ASSERT_TRUE(smoothed.ok());
    for (const Sample& sample : *smoothed) {
      ASSERT_TRUE(indexed_concat.Append(sample).ok());
    }
    cleaned.push_back(std::move(smoothed).value());
  }
  ASSERT_GE(indexed_concat.size(), 8u * 250u);

  // 3. One store, fed chunk by chunk (streaming, online).
  SegDiffOptions options;
  options.eps = 0.2;
  options.window_s = 6 * 3600.0;
  auto store = SegDiffIndex::Open(path_, options);
  ASSERT_TRUE(store.ok());
  for (const Series& chunk : cleaned) {
    ASSERT_TRUE((*store)->IngestSeries(chunk).ok());
  }
  EXPECT_EQ((*store)->num_observations(), indexed_concat.size());

  // 4. Search on every access path; results agree and uphold Theorem 1
  //    against the oracle over exactly what was indexed.
  const double T = 3600.0;
  const double V = -3.0;
  SearchOptions seq;
  SearchOptions idx;
  idx.mode = QueryMode::kIndexScan;
  auto drops_seq = (*store)->SearchDrops(T, V, seq);
  auto drops_idx = (*store)->SearchDrops(T, V, idx);
  ASSERT_TRUE(drops_seq.ok());
  ASSERT_TRUE(drops_idx.ok());
  ASSERT_EQ(drops_seq->size(), drops_idx->size());
  ASSERT_FALSE(drops_seq->empty());

  NaiveSearcher oracle(indexed_concat);
  const auto true_events = oracle.SearchDrops(T, V);
  EXPECT_TRUE(CheckCoverage(true_events, *drops_seq).AllCovered());
  auto violations = FindToleranceViolations(indexed_concat, *drops_seq, T, V,
                                            options.eps, SearchKind::kDrop);
  ASSERT_TRUE(violations.ok());
  EXPECT_TRUE(violations->empty());

  // 5. Drill down: coalesce into episodes and refine the steepest event
  //    of the strongest episode.
  const auto episodes = CoalesceEpisodes(*drops_seq, 1800.0);
  ASSERT_FALSE(episodes.empty());
  EXPECT_LT(episodes.size(), drops_seq->size());
  auto refined = RefineDrop(
      indexed_concat,
      PairId{episodes[0].t_begin, episodes[0].t_end, episodes[0].t_begin,
             episodes[0].t_end},
      T);
  ASSERT_TRUE(refined.ok());
  ASSERT_TRUE(refined->feasible);
  EXPECT_LE(refined->dv, V + 2 * options.eps + 1e-9);

  // 6. Durability: checkpoint, reopen, identical answers.
  ASSERT_TRUE((*store)->Checkpoint().ok());
  const uint64_t rows_before = (*store)->GetSizes().feature_rows;
  store->reset();
  auto reopened = SegDiffIndex::Open(path_, options);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->GetSizes().feature_rows, rows_before);
  auto drops_reopened = (*reopened)->SearchDrops(T, V, seq);
  ASSERT_TRUE(drops_reopened.ok());
  ASSERT_EQ(drops_reopened->size(), drops_seq->size());
  for (size_t i = 0; i < drops_seq->size(); ++i) {
    EXPECT_EQ((*drops_reopened)[i], (*drops_seq)[i]);
  }

  // 7. Compaction shrinks the file (extent slack) and preserves answers.
  ASSERT_TRUE((*reopened)->Compact(compact_path_).ok());
  auto compacted = SegDiffIndex::Open(compact_path_, options);
  ASSERT_TRUE(compacted.ok());
  EXPECT_LE((*compacted)->GetSizes().file_bytes,
            (*reopened)->GetSizes().file_bytes);
  auto drops_compacted = (*compacted)->SearchDrops(T, V, idx);
  ASSERT_TRUE(drops_compacted.ok());
  EXPECT_EQ(drops_compacted->size(), drops_seq->size());

  // 8. SQL introspection agrees with the library's own accounting.
  sql::Engine engine((*compacted)->db());
  auto counts = engine.Execute(
      "SELECT COUNT(*) FROM segments");
  ASSERT_TRUE(counts.ok());
  EXPECT_EQ(static_cast<uint64_t>(counts->rows[0][0].i),
            (*compacted)->num_segments());
  uint64_t feature_rows = 0;
  for (const char* table :
       {"drop1", "drop2", "drop3", "jump1", "jump2", "jump3"}) {
    auto one = engine.Execute(std::string("SELECT COUNT(*) FROM ") + table);
    ASSERT_TRUE(one.ok()) << table;
    feature_rows += static_cast<uint64_t>(one->rows[0][0].i);
  }
  EXPECT_EQ(feature_rows, (*compacted)->GetSizes().feature_rows);
  // The paper's point query, written as SQL against the store.
  auto sql_drops = engine.Execute(
      "SELECT COUNT(*) FROM drop1 WHERE dt1 <= 3600 AND dv1 <= -3");
  ASSERT_TRUE(sql_drops.ok());
  EXPECT_NE(sql_drops->access_path.find("index_scan"), std::string::npos);
}

TEST_F(IntegrationTest, JumpWorkflowAndWindowBounds) {
  CadGeneratorOptions gen;
  gen.num_days = 4;
  auto data = GenerateCadSeries(gen);
  ASSERT_TRUE(data.ok());
  SegDiffOptions options;
  options.eps = 0.3;
  options.window_s = 3 * 3600.0;
  auto store = SegDiffIndex::Open(path_, options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->IngestSeries(data->series).ok());

  // Morning warm-up produces jumps; verify against the oracle.
  NaiveSearcher oracle(data->series);
  for (double T : {1800.0, 2.5 * 3600.0}) {
    auto jumps = (*store)->SearchJumps(T, 2.0);
    ASSERT_TRUE(jumps.ok());
    EXPECT_TRUE(
        CheckCoverage(oracle.SearchJumps(T, 2.0), *jumps).AllCovered());
  }
  // T beyond w is rejected, exactly at w accepted.
  EXPECT_TRUE((*store)
                  ->SearchJumps(3 * 3600.0 + 1, 2.0)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE((*store)->SearchJumps(3 * 3600.0, 2.0).ok());
}

}  // namespace
}  // namespace segdiff
