// Tests for the verification helpers themselves (the test oracle must be
// trustworthy before guarantees_test leans on it).

#include <cmath>

#include <gtest/gtest.h>

#include "segdiff/verify.h"

namespace segdiff {
namespace {

Series MakeSeries(std::vector<Sample> samples) {
  auto result = Series::FromSamples(std::move(samples));
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

TEST(VerifyTest, MinDeltaVSimpleRamp) {
  // v falls linearly from 10 to 0 over [0, 10].
  Series series = MakeSeries({{0, 10}, {10, 0}});
  PairId pair{0, 10, 0, 10};  // self pair over the whole segment
  // Within T=4 the steepest drop is 4 units (slope -1).
  auto min_dv = MinDeltaVInPair(series, pair, 4.0);
  ASSERT_TRUE(min_dv.ok());
  EXPECT_NEAR(*min_dv, -4.0, 1e-9);
  // With T=20 the whole 10-unit drop is available.
  EXPECT_NEAR(*MinDeltaVInPair(series, pair, 20.0), -10.0, 1e-9);
  // Max is 0 (dt -> 0 limit; the series only falls).
  EXPECT_NEAR(*MaxDeltaVInPair(series, pair, 4.0), 0.0, 1e-9);
}

TEST(VerifyTest, MinDeltaVAcrossTwoPeriods) {
  // Rise then plateau then fall: v = /\_ shape.
  Series series = MakeSeries({{0, 0}, {10, 8}, {20, 8}, {30, 1}});
  // Start period on the rise, end period on the fall.
  PairId pair{0, 10, 20, 30};
  // T = 30 allows (10, 30): 1 - 8 = -7.
  EXPECT_NEAR(*MinDeltaVInPair(series, pair, 30.0), -7.0, 1e-9);
  // T = 12 allows t'=10 (v=8) to t''=22 (v=8-1.4=6.6): dv=-1.4; but the
  // best is anchored at dt = T: t'' = t' + 12; sweeping t' in [0,10],
  // best at t'=10: v(22)-v(10) = 6.6-8 = -1.4.
  EXPECT_NEAR(*MinDeltaVInPair(series, pair, 12.0), -1.4, 1e-9);
  // Jump direction: best is v(20)-v(t'): t' small on the rise, dt <= T.
  // T=30: t'=0 to t''=20: +8.
  EXPECT_NEAR(*MaxDeltaVInPair(series, pair, 30.0), 8.0, 1e-9);
}

TEST(VerifyTest, InfeasiblePairReturnsInfinity) {
  Series series = MakeSeries({{0, 0}, {10, 5}});
  // End period is 100s after the start period; T=5 makes it infeasible.
  PairId pair{0, 2, 8, 10};
  auto min_dv = MinDeltaVInPair(series, pair, 5.0);
  ASSERT_TRUE(min_dv.ok());
  EXPECT_TRUE(std::isinf(*min_dv));
  EXPECT_GT(*min_dv, 0);
  auto max_dv = MaxDeltaVInPair(series, pair, 5.0);
  EXPECT_TRUE(std::isinf(*max_dv));
  EXPECT_LT(*max_dv, 0);
}

TEST(VerifyTest, DtZeroTreatedAsLimit) {
  Series series = MakeSeries({{0, 0}, {10, 5}});
  // Touching periods: [0,5] and [5,10].
  PairId pair{0, 5, 5, 10};
  // T tiny: only events near the junction; dv -> 0.
  auto min_dv = MinDeltaVInPair(series, pair, 1e-9);
  ASSERT_TRUE(min_dv.ok());
  EXPECT_NEAR(*min_dv, 0.0, 1e-6);
}

TEST(VerifyTest, PairCoversEvent) {
  PairId pair{0, 10, 20, 30};
  EXPECT_TRUE(PairCoversEvent(pair, {5, 25, -3}));
  EXPECT_TRUE(PairCoversEvent(pair, {0, 30, -3}));   // boundary inclusive
  EXPECT_FALSE(PairCoversEvent(pair, {11, 25, -3}));  // start outside
  EXPECT_FALSE(PairCoversEvent(pair, {5, 31, -3}));   // end outside
}

TEST(VerifyTest, CheckCoverageReportsMissing) {
  std::vector<NaiveEvent> events = {{5, 25, -3}, {100, 110, -4}};
  std::vector<PairId> pairs = {{0, 10, 20, 30}};
  CoverageReport report = CheckCoverage(events, pairs);
  EXPECT_EQ(report.events, 2u);
  EXPECT_EQ(report.covered, 1u);
  ASSERT_EQ(report.missing.size(), 1u);
  EXPECT_DOUBLE_EQ(report.missing[0].t_start, 100);
  EXPECT_FALSE(report.AllCovered());
}

TEST(VerifyTest, CheckCoverageEmptyCases) {
  EXPECT_TRUE(CheckCoverage({}, {}).AllCovered());
  EXPECT_TRUE(CheckCoverage({}, {{0, 1, 2, 3}}).AllCovered());
  EXPECT_FALSE(CheckCoverage({{0, 1, -5}}, {}).AllCovered());
}

TEST(VerifyTest, ToleranceViolationsDetected) {
  // Flat series: no drops at all.
  std::vector<Sample> samples;
  for (int i = 0; i <= 100; ++i) {
    samples.push_back({i * 1.0, 5.0});
  }
  Series series = MakeSeries(samples);
  // A claimed pair over flat data must violate V=-3, eps=0.2 (needs a
  // drop <= -2.6 somewhere, impossible).
  std::vector<PairId> pairs = {{0, 20, 30, 50}};
  auto violations = FindToleranceViolations(series, pairs, 10.0, -3.0, 0.2,
                                            SearchKind::kDrop);
  ASSERT_TRUE(violations.ok());
  EXPECT_EQ(violations->size(), 1u);
  // With a huge eps the tolerance absorbs it.
  violations =
      FindToleranceViolations(series, pairs, 10.0, -3.0, 2.0, SearchKind::kDrop);
  ASSERT_TRUE(violations.ok());
  EXPECT_TRUE(violations->empty());
}

}  // namespace
}  // namespace segdiff
