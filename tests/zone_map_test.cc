// Zone-map unit tests: incremental maintenance (NaN semantics included),
// serialization, pruning decisions (ZoneCanMatch), and persistence
// through checkpoint/reopen/compaction — plus the legacy-store rebuild.

#include <cmath>
#include <cstdio>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "test_paths.h"

#include "common/coding.h"
#include "common/random.h"
#include "query/executor.h"
#include "query/predicate.h"
#include "query/scan_kernel.h"
#include "storage/db.h"
#include "storage/zone_map.h"

namespace segdiff {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// Encodes one two-column record.
void Encode2(char* buf, double a, double b) {
  EncodeDouble(buf, a);
  EncodeDouble(buf + 8, b);
}

TEST(ZoneMapTest, OnAppendTracksBoundsPerPage) {
  ZoneMap map(2);
  char rec[16];
  Encode2(rec, 1.0, -5.0);
  map.OnAppend(RecordId{3, 0}, rec);
  Encode2(rec, 4.0, 2.0);
  map.OnAppend(RecordId{3, 1}, rec);
  Encode2(rec, 100.0, 0.0);
  map.OnAppend(RecordId{7, 0}, rec);  // next heap page

  ASSERT_EQ(map.zone_count(), 2u);
  EXPECT_EQ(map.total_rows(), 3u);
  const size_t z0 = map.FindZone(3);
  const size_t z1 = map.FindZone(7);
  ASSERT_NE(z0, ZoneMap::kNoZone);
  ASSERT_NE(z1, ZoneMap::kNoZone);
  EXPECT_EQ(map.FindZone(99), ZoneMap::kNoZone);
  EXPECT_EQ(map.zone(z0).rows, 2u);
  EXPECT_EQ(map.zone(z1).rows, 1u);
  EXPECT_DOUBLE_EQ(map.Min(z0, 0), 1.0);
  EXPECT_DOUBLE_EQ(map.Max(z0, 0), 4.0);
  EXPECT_DOUBLE_EQ(map.Min(z0, 1), -5.0);
  EXPECT_DOUBLE_EQ(map.Max(z0, 1), 2.0);
  EXPECT_DOUBLE_EQ(map.Min(z1, 0), 100.0);
  EXPECT_DOUBLE_EQ(map.Max(z1, 0), 100.0);

  const ZoneMap::ColumnRange range = map.GlobalRange(0);
  EXPECT_DOUBLE_EQ(range.lo, 1.0);
  EXPECT_DOUBLE_EQ(range.hi, 100.0);
  EXPECT_FALSE(range.has_nan);
}

TEST(ZoneMapTest, NanCellsAreExcludedFromBoundsButFlagged) {
  ZoneMap map(2);
  char rec[16];
  Encode2(rec, 1.0, kNaN);
  map.OnAppend(RecordId{1, 0}, rec);
  Encode2(rec, 2.0, kNaN);
  map.OnAppend(RecordId{1, 1}, rec);

  const size_t z = map.FindZone(1);
  ASSERT_NE(z, ZoneMap::kNoZone);
  // Column 0: clean bounds, no flag.
  EXPECT_FALSE(map.HasNan(z, 0));
  EXPECT_DOUBLE_EQ(map.Min(z, 0), 1.0);
  EXPECT_DOUBLE_EQ(map.Max(z, 0), 2.0);
  // Column 1: every cell NaN -> empty (inverted) bounds + the flag.
  EXPECT_TRUE(map.HasNan(z, 1));
  EXPECT_GT(map.Min(z, 1), map.Max(z, 1));
  const ZoneMap::ColumnRange range = map.GlobalRange(1);
  EXPECT_TRUE(range.has_nan);
  EXPECT_GT(range.lo, range.hi);
}

TEST(ZoneMapTest, SerializeRoundTrip) {
  ZoneMap map(3);
  char rec[24];
  Rng rng(11);
  for (uint64_t page = 2; page < 6; ++page) {
    for (uint16_t slot = 0; slot < 17; ++slot) {
      EncodeDouble(rec, rng.Uniform(-1e6, 1e6));
      EncodeDouble(rec + 8, slot == 3 ? kNaN : rng.Uniform(-10, 10));
      EncodeDouble(rec + 16, static_cast<double>(page));
      map.OnAppend(RecordId{page, slot}, rec);
    }
  }
  const std::string blob = map.Serialize();
  auto restored = ZoneMap::Deserialize(blob);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->Serialize(), blob);
  EXPECT_EQ(restored->zone_count(), map.zone_count());
  EXPECT_EQ(restored->total_rows(), map.total_rows());
  for (size_t z = 0; z < map.zone_count(); ++z) {
    EXPECT_EQ(restored->zone(z).page, map.zone(z).page);
    EXPECT_EQ(restored->zone(z).rows, map.zone(z).rows);
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(restored->Min(z, c), map.Min(z, c));
      EXPECT_DOUBLE_EQ(restored->Max(z, c), map.Max(z, c));
      EXPECT_EQ(restored->HasNan(z, c), map.HasNan(z, c));
    }
  }
}

TEST(ZoneMapTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(ZoneMap::Deserialize("").ok());
  EXPECT_FALSE(ZoneMap::Deserialize("not a zone map").ok());
  ZoneMap map(2);
  char rec[16];
  Encode2(rec, 1.0, 2.0);
  map.OnAppend(RecordId{1, 0}, rec);
  std::string blob = map.Serialize();
  EXPECT_TRUE(ZoneMap::Deserialize(blob).ok());
  // Truncation and magic damage are both detected.
  EXPECT_FALSE(ZoneMap::Deserialize(blob.substr(0, blob.size() - 3)).ok());
  std::string bad_magic = blob;
  bad_magic[0] = static_cast<char>(bad_magic[0] + 1);
  EXPECT_FALSE(ZoneMap::Deserialize(bad_magic).ok());
}

TEST(ZoneMapTest, SupportsSchema) {
  auto doubles = DoubleSchema({"a", "b"});
  ASSERT_TRUE(doubles.ok());
  EXPECT_TRUE(ZoneMap::SupportsSchema(*doubles));
  auto mixed = TableSchema::Create(
      {Column{"a", ColumnType::kDouble}, Column{"n", ColumnType::kInt64}});
  ASSERT_TRUE(mixed.ok());
  EXPECT_FALSE(ZoneMap::SupportsSchema(*mixed));
}

class ZoneCanMatchTest : public ::testing::Test {
 protected:
  /// One zone on page 1 with column 0 in [10, 20] and column 1 all-NaN,
  /// plus a second clean zone well away from the first.
  void SetUp() override {
    map_ = std::make_unique<ZoneMap>(2);
    char rec[16];
    Encode2(rec, 10.0, kNaN);
    map_->OnAppend(RecordId{1, 0}, rec);
    Encode2(rec, 20.0, kNaN);
    map_->OnAppend(RecordId{1, 1}, rec);
    Encode2(rec, 100.0, 5.0);
    map_->OnAppend(RecordId{2, 0}, rec);
    zone_ = map_->FindZone(1);
    clean_zone_ = map_->FindZone(2);
  }

  bool CanMatch(size_t zone, CmpOp op, double value, size_t col = 0) {
    return ZoneCanMatch(*map_, zone, {{col, op, value}});
  }

  std::unique_ptr<ZoneMap> map_;
  size_t zone_ = ZoneMap::kNoZone;
  size_t clean_zone_ = ZoneMap::kNoZone;
};

TEST_F(ZoneCanMatchTest, RangeDecisions) {
  // Column 0 spans [10, 20].
  EXPECT_TRUE(CanMatch(zone_, CmpOp::kLe, 10.0));
  EXPECT_FALSE(CanMatch(zone_, CmpOp::kLt, 10.0));
  EXPECT_FALSE(CanMatch(zone_, CmpOp::kLe, 9.0));
  EXPECT_TRUE(CanMatch(zone_, CmpOp::kGe, 20.0));
  EXPECT_FALSE(CanMatch(zone_, CmpOp::kGt, 20.0));
  EXPECT_TRUE(CanMatch(zone_, CmpOp::kEq, 15.0));
  EXPECT_FALSE(CanMatch(zone_, CmpOp::kEq, 25.0));
  // Conjunction: each condition must be satisfiable.
  EXPECT_FALSE(ZoneCanMatch(
      *map_, zone_,
      {{0, CmpOp::kGe, 15.0}, {0, CmpOp::kLe, 5.0}}));
}

TEST_F(ZoneCanMatchTest, AllNanColumnIsPrunable) {
  // Column 1 of zone_ holds only NaN cells: no comparison can match,
  // and the inverted bounds + nan bit prove it.
  EXPECT_FALSE(CanMatch(zone_, CmpOp::kLe, 1e30, /*col=*/1));
  EXPECT_FALSE(CanMatch(zone_, CmpOp::kGe, -1e30, /*col=*/1));
  // The clean zone's column 1 is a real value.
  EXPECT_TRUE(CanMatch(clean_zone_, CmpOp::kEq, 5.0, /*col=*/1));
}

TEST_F(ZoneCanMatchTest, NanQueryValueMatchesNothing) {
  // EvalCondition's ordered comparisons reject NaN query values, so
  // pruning every page is exact, not an approximation.
  EXPECT_FALSE(CanMatch(zone_, CmpOp::kLe, kNaN));
  EXPECT_FALSE(CanMatch(clean_zone_, CmpOp::kGe, kNaN));
}

TEST_F(ZoneCanMatchTest, SurveyCountsSurvivors) {
  const ZoneSurvey all = SurveyZones(*map_, {});
  EXPECT_EQ(all.zones_total, 2u);
  EXPECT_EQ(all.zones_surviving, 2u);
  EXPECT_EQ(all.rows_total, 3u);
  EXPECT_EQ(all.rows_surviving, 3u);
  const ZoneSurvey some =
      SurveyZones(*map_, {{0, CmpOp::kLe, 50.0}});
  EXPECT_EQ(some.zones_surviving, 1u);
  EXPECT_EQ(some.rows_surviving, 2u);
}

class ZoneMapStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = UniqueTestPath("segdiff_zone_store");
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::unique_ptr<Database> OpenDb() {
    auto db = Database::Open(path_, DatabaseOptions{});
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    return std::move(db).value();
  }

  /// 3000 rows over several pages; a handful carry NaN cells.
  void Fill(Table* table) {
    Rng rng(17);
    for (int i = 0; i < 3000; ++i) {
      const double dv = i % 701 == 0 ? kNaN : rng.Uniform(-10, 10);
      ASSERT_TRUE(
          table->InsertDoubles({rng.Uniform(0, 100), dv, double(i)}).ok());
    }
  }

  std::set<double> Query(Table* table) {
    Predicate predicate;
    predicate.And(0, CmpOp::kLe, 20.0).And(1, CmpOp::kLe, -6.0);
    std::set<double> tags;
    ScanStats stats;
    Status status = SeqScan(*table, predicate,
                            [&](const char* record, RecordId) {
                              tags.insert(DecodeDoubleColumn(record, 2));
                              return Status::OK();
                            },
                            &stats);
    EXPECT_TRUE(status.ok()) << status.ToString();
    EXPECT_EQ(stats.rows_scanned + stats.rows_pruned, table->row_count());
    return tags;
  }

  std::string path_;
};

TEST_F(ZoneMapStoreTest, SurvivesReopenByteIdentical) {
  std::string serialized;
  std::set<double> expect;
  {
    auto db = OpenDb();
    auto schema = DoubleSchema({"dt", "dv", "tag"});
    auto table = db->CreateTable("f", *schema);
    ASSERT_TRUE(table.ok());
    Fill(*table);
    ASSERT_NE((*table)->zone_map(), nullptr);
    serialized = (*table)->zone_map()->Serialize();
    expect = Query(*table);
    ASSERT_TRUE(db->Checkpoint().ok());
  }
  auto db = OpenDb();
  auto table = db->GetTable("f");
  ASSERT_TRUE(table.ok());
  ASSERT_NE((*table)->zone_map(), nullptr) << "blob not restored";
  EXPECT_EQ((*table)->zone_map()->Serialize(), serialized);
  EXPECT_EQ(Query(*table), expect);
}

TEST_F(ZoneMapStoreTest, LegacyStoreRebuildsOnDemand) {
  auto db = OpenDb();
  auto schema = DoubleSchema({"dt", "dv", "tag"});
  auto table_or = db->CreateTable("f", *schema);
  ASSERT_TRUE(table_or.ok());
  Table* table = *table_or;
  Fill(table);
  const std::string incremental = table->zone_map()->Serialize();
  const std::set<double> expect = Query(table);

  // A store written before zone maps existed opens with none: scans
  // still answer correctly (pruning off), and EnsureZoneMap rebuilds a
  // map identical to the incrementally-maintained one.
  table->DetachZoneMap();
  ASSERT_EQ(table->zone_map(), nullptr);
  EXPECT_EQ(Query(table), expect);
  ASSERT_TRUE(table->EnsureZoneMap().ok());
  ASSERT_NE(table->zone_map(), nullptr);
  EXPECT_EQ(table->zone_map()->Serialize(), incremental);
  EXPECT_EQ(Query(table), expect);
}

TEST_F(ZoneMapStoreTest, AttachRejectsInconsistentMaps) {
  auto db = OpenDb();
  auto schema = DoubleSchema({"dt", "dv", "tag"});
  auto table_or = db->CreateTable("f", *schema);
  ASSERT_TRUE(table_or.ok());
  Table* table = *table_or;
  Fill(table);
  // Wrong arity.
  EXPECT_FALSE(table->AttachZoneMap(ZoneMap(2)));
  // Right arity, wrong row count (stale snapshot).
  ZoneMap stale(3);
  char rec[24];
  EncodeDouble(rec, 1.0);
  EncodeDouble(rec + 8, 1.0);
  EncodeDouble(rec + 16, 1.0);
  stale.OnAppend(RecordId{2, 0}, rec);
  EXPECT_FALSE(table->AttachZoneMap(std::move(stale)));
  // The rejected attaches left the good incremental map in place.
  ASSERT_NE(table->zone_map(), nullptr);
  EXPECT_EQ(table->zone_map()->total_rows(), table->row_count());
}

TEST_F(ZoneMapStoreTest, SurvivesCompaction) {
  const std::string compact_path = path_ + ".compact";
  std::remove(compact_path.c_str());
  std::set<double> expect;
  {
    auto db = OpenDb();
    auto schema = DoubleSchema({"dt", "dv", "tag"});
    auto table = db->CreateTable("f", *schema);
    ASSERT_TRUE(table.ok());
    Fill(*table);
    expect = Query(*table);
    ASSERT_TRUE(db->CompactInto(compact_path).ok());
  }
  auto compacted = Database::Open(compact_path, DatabaseOptions{});
  ASSERT_TRUE(compacted.ok());
  auto table = (*compacted)->GetTable("f");
  ASSERT_TRUE(table.ok());
  // Compaction converts the rows to columnar segments: the zone map
  // covers only the (now empty) row-format heap tail, and the segment
  // directory carries equivalent zone statistics for pruning.
  ASSERT_NE((*table)->columnar(), nullptr);
  EXPECT_EQ((*table)->columnar()->row_count(), (*table)->row_count());
  ASSERT_NE((*table)->zone_map(), nullptr);
  EXPECT_EQ((*table)->zone_map()->total_rows(),
            (*table)->heap_meta().record_count);
  const ColumnarSurvey all = SurveyColumnarSegments(
      *(*table)->columnar(), std::vector<ColumnCondition>{});
  EXPECT_EQ(all.rows_total, (*table)->row_count());
  EXPECT_EQ(all.segments_surviving, all.segments_total);
  // A predicate outside every segment's range prunes everything.
  std::vector<ColumnCondition> impossible{{0, CmpOp::kGt, 1e18}};
  const ColumnarSurvey none =
      SurveyColumnarSegments(*(*table)->columnar(), impossible);
  EXPECT_EQ(none.segments_surviving, 0u);
  EXPECT_EQ(Query(*table), expect);
  compacted->reset();
  std::remove(compact_path.c_str());
}

TEST_F(ZoneMapStoreTest, DeleteWhereRebuildsTheMap) {
  auto db = OpenDb();
  auto schema = DoubleSchema({"dt", "dv", "tag"});
  auto table_or = db->CreateTable("f", *schema);
  ASSERT_TRUE(table_or.ok());
  Table* table = *table_or;
  Fill(table);
  Predicate doomed;
  doomed.And(0, CmpOp::kGt, 50.0);
  auto removed = table->DeleteWhere(doomed);
  ASSERT_TRUE(removed.ok());
  ASSERT_GT(*removed, 0u);
  ASSERT_NE(table->zone_map(), nullptr);
  EXPECT_EQ(table->zone_map()->total_rows(), table->row_count());
  // The survivor map agrees with a from-scratch rebuild.
  const std::string after_delete = table->zone_map()->Serialize();
  table->DetachZoneMap();
  ASSERT_TRUE(table->EnsureZoneMap().ok());
  EXPECT_EQ(table->zone_map()->Serialize(), after_delete);
}

}  // namespace
}  // namespace segdiff
