// Unit tests for the common substrate: Status, Result, env, random.

#include <cstdlib>

#include <gtest/gtest.h>

#include "common/env.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"

namespace segdiff {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
  EXPECT_TRUE(status.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("bad eps");
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(status.IsInvalidArgument());
  EXPECT_EQ(status.message(), "bad eps");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad eps");
}

TEST(StatusTest, AllConstructorsMapToCodes) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, CopyAndMovePreserveState) {
  Status original = Status::Corruption("bits flipped");
  Status copy = original;
  EXPECT_TRUE(copy.IsCorruption());
  EXPECT_EQ(copy.message(), "bits flipped");
  Status moved = std::move(original);
  EXPECT_TRUE(moved.IsCorruption());

  Status ok;
  copy = ok;
  EXPECT_TRUE(copy.ok());
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = []() -> Status { return Status::NotFound("gone"); };
  auto wrapper = [&]() -> Status {
    SEGDIFF_RETURN_IF_ERROR(fails());
    return Status::Internal("unreachable");
  };
  EXPECT_TRUE(wrapper().IsNotFound());
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(result.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::NotFound("missing"));
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotFound());
  EXPECT_EQ(result.value_or(7), 7);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::IOError("disk");
    return 5;
  };
  auto outer = [&](bool fail) -> Result<int> {
    SEGDIFF_ASSIGN_OR_RETURN(int v, inner(fail));
    return v * 2;
  };
  ASSERT_TRUE(outer(false).ok());
  EXPECT_EQ(*outer(false), 10);
  EXPECT_TRUE(outer(true).status().IsIOError());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> result(std::make_unique<int>(3));
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> owned = std::move(result).value();
  EXPECT_EQ(*owned, 3);
}

TEST(EnvTest, ParsesIntegers) {
  ::setenv("SEGDIFF_TEST_INT", "123", 1);
  EXPECT_EQ(GetEnvInt64("SEGDIFF_TEST_INT", 7), 123);
  ::setenv("SEGDIFF_TEST_INT", "not a number", 1);
  EXPECT_EQ(GetEnvInt64("SEGDIFF_TEST_INT", 7), 7);
  ::unsetenv("SEGDIFF_TEST_INT");
  EXPECT_EQ(GetEnvInt64("SEGDIFF_TEST_INT", 7), 7);
}

TEST(EnvTest, ParsesDoubles) {
  ::setenv("SEGDIFF_TEST_DBL", "2.5", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("SEGDIFF_TEST_DBL", 1.0), 2.5);
  ::setenv("SEGDIFF_TEST_DBL", "2.5x", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("SEGDIFF_TEST_DBL", 1.0), 1.0);
  ::unsetenv("SEGDIFF_TEST_DBL");
}

TEST(EnvTest, ReadsStrings) {
  ::setenv("SEGDIFF_TEST_STR", "hello", 1);
  EXPECT_EQ(GetEnvString("SEGDIFF_TEST_STR", "d"), "hello");
  ::unsetenv("SEGDIFF_TEST_STR");
  EXPECT_EQ(GetEnvString("SEGDIFF_TEST_STR", "d"), "d");
}

TEST(RngTest, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, UniformIntInclusive) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(0, 4);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 4);
    saw_lo |= v == 0;
    saw_hi |= v == 4;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  const int n = 50000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Gaussian();
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    hits += rng.Bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

}  // namespace
}  // namespace segdiff
