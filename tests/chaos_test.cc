// Deterministic chaos harness (DESIGN.md §14).
//
// Hundreds of seeded ingest -> fault -> reopen -> scrub -> repair ->
// differential-query cycles against a golden oracle. Each cycle draws a
// fault mode (none, seeded transient I/O, disk-full, device death +
// crash, silent bitrot) from a SEGDIFF_FAULT_SEED-derived RNG and
// asserts the graceful-degradation contract end to end:
//
//   - no acknowledged write is ever lost (kill the device whenever the
//     schedule says; the WAL's group commits are the durability line),
//   - nothing aborts, hangs, or silently returns wrong data — every
//     failure is a classified Status,
//   - a store that scrubs dirty repairs into a fresh scrub-clean store
//     that still answers searches,
//   - a store that scrubs clean resumes ingest and reproduces the
//     golden tables and search answers byte for byte.
//
// The default 200 cycles keep CI deterministic; SEGDIFF_CHAOS_CYCLES
// shrinks the sweep for smoke runs and SEGDIFF_FAULT_SEED explores a
// different schedule.

#include <array>
#include <atomic>
#include <cstdio>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "test_paths.h"

#include "common/env.h"
#include "common/vfs.h"
#include "segdiff/segdiff_index.h"
#include "storage/db.h"
#include "storage/fault_vfs.h"
#include "storage/pager.h"
#include "storage/wal.h"
#include "ts/generator.h"

namespace segdiff {
namespace {

Series MakeSeries(int num_days, uint64_t seed = 20080325) {
  CadGeneratorOptions gen;
  gen.num_days = num_days;
  gen.cad_events_per_day = 1.0;
  gen.seed = seed;
  auto data = GenerateCadSeries(gen);
  EXPECT_TRUE(data.ok()) << data.status().ToString();
  return std::move(data->series);
}

/// Raw records of one table, in heap (= insertion) order.
std::vector<std::string> TableRecords(Database* db, const std::string& name) {
  std::vector<std::string> records;
  auto table = db->GetTable(name);
  EXPECT_TRUE(table.ok()) << table.status().ToString();
  const size_t bytes = (*table)->schema().num_columns() * 8;
  Status scan = (*table)->Scan(
      [&](const char* record, RecordId, bool* keep_going) -> Status {
        *keep_going = true;
        records.emplace_back(record, bytes);
        return Status::OK();
      });
  EXPECT_TRUE(scan.ok()) << scan.ToString();
  return records;
}

const char* const kSegDiffTables[] = {"segments", "drop1", "drop2", "drop3",
                                      "jump1",    "jump2", "jump3"};

void ExpectSameTables(SegDiffIndex* actual, SegDiffIndex* expected) {
  for (const char* name : kSegDiffTables) {
    const std::vector<std::string> a = TableRecords(actual->db(), name);
    const std::vector<std::string> e = TableRecords(expected->db(), name);
    ASSERT_EQ(a.size(), e.size()) << "row count mismatch in " << name;
    for (size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i], e[i]) << "record " << i << " differs in " << name;
    }
  }
}

/// Flips one bit of the byte at `offset` in `path` (silent media error).
void FlipByte(const std::string& path, uint64_t offset) {
  auto file = Vfs::Default()->OpenFile(path, /*create=*/false);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  char b = 0;
  ASSERT_TRUE((*file)->Read(offset, 1, &b).ok());
  b ^= 0x40;
  ASSERT_TRUE((*file)->Write(offset, &b, 1).ok());
  ASSERT_TRUE((*file)->Sync().ok());
}

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = UniqueTestPath("chaos");
    golden_path_ = UniqueTestPath("chaos", "_golden.db");
    repaired_path_ = UniqueTestPath("chaos", "_repaired.db");
    RemoveStores();
    series_ = MakeSeries(1);
    ASSERT_GE(series_.size(), kChunk);
  }
  void TearDown() override { RemoveStores(); }

  void RemoveStores() {
    for (const std::string& p : {path_, golden_path_, repaired_path_}) {
      std::remove(p.c_str());
      std::remove(Wal::PathFor(p).c_str());
    }
  }

  /// WAL on with a zero group-commit window: once FlushPending() returns
  /// OK the appended prefix is acknowledged durable.
  SegDiffOptions Options(Vfs* vfs) const {
    SegDiffOptions options;
    options.build_indexes = false;  // heap-only keeps 200 cycles fast
    options.vfs = vfs;
    options.wal_group_commit_ms = 0;
    return options;
  }

  /// Ingests series_[start, end) with a group commit every kFlushEvery
  /// observations, stopping at the first injected fault. Returns the
  /// number of observations acknowledged by the last OK FlushPending().
  static uint64_t IngestWithGroupCommits(SegDiffIndex* store,
                                         const Series& series, size_t start,
                                         size_t end) {
    uint64_t acked = start;
    for (size_t i = start; i < end; ++i) {
      if (!store->AppendObservation(series[i].t, series[i].v).ok()) {
        return acked;
      }
      if ((i + 1) % kFlushEvery == 0) {
        if (!store->FlushPending().ok()) {
          return acked;
        }
        acked = i + 1;
      }
    }
    if (store->FlushPending().ok()) {
      acked = end;
    }
    return acked;
  }

  static constexpr uint64_t kFlushEvery = 20;
  static constexpr size_t kChunk = 120;  ///< observations per cycle

  std::string path_;
  std::string golden_path_;
  std::string repaired_path_;
  Series series_;
};

// The sweep itself. Every cycle must land in one of three terminal
// states — resumed-and-identical, scrubbed-dirty-then-repaired-clean,
// or corrupt-and-refused-with-nothing-acked — and nothing may abort.
TEST_F(ChaosTest, SeededFaultCycleSweep) {
  const uint64_t seed =
      static_cast<uint64_t>(GetEnvInt64("SEGDIFF_FAULT_SEED", 20080325));
  const int64_t cycles = GetEnvInt64("SEGDIFF_CHAOS_CYCLES", 200);
  std::mt19937_64 rng(seed);

  // Golden oracle: the chunk ingested faultlessly with the same cadence.
  auto golden = SegDiffIndex::Open(golden_path_, Options(nullptr));
  ASSERT_TRUE(golden.ok()) << golden.status().ToString();
  ASSERT_EQ(IngestWithGroupCommits(golden->get(), series_, 0, kChunk),
            kChunk);
  auto expected = (*golden)->SearchDrops(3600.0, -1.0);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  FaultInjectionVfs vfs;
  uint64_t repairs = 0, refused = 0, resumed = 0;
  for (int64_t cycle = 0; cycle < cycles; ++cycle) {
    // Mode 0: no fault. 1: seeded transient I/O errors (the retry layer
    // must absorb most of them). 2: the disk fills. 3: the device dies
    // after a random write, then the power cuts. 4: a clean close
    // followed by silent bitrot in one page.
    const int mode = static_cast<int>(rng() % 5);
    SCOPED_TRACE("cycle " + std::to_string(cycle) + " mode " +
                 std::to_string(mode) + " (seed " + std::to_string(seed) +
                 ")");
    std::remove(path_.c_str());
    std::remove(Wal::PathFor(path_).c_str());
    std::remove(repaired_path_.c_str());
    std::remove(Wal::PathFor(repaired_path_).c_str());
    vfs.Reset();

    uint64_t acked = 0;
    {
      auto store = SegDiffIndex::Open(path_, Options(&vfs));
      ASSERT_TRUE(store.ok()) << store.status().ToString();
      switch (mode) {
        case 1:
          vfs.SetTransientFaultRate(rng(), 1 + rng() % 25);
          break;
        case 2:
          vfs.SetDiskBudgetBytes(static_cast<int64_t>(rng() % (96 * 1024)));
          break;
        case 3:
          vfs.FailAfterWrites(static_cast<int64_t>(rng() % 400));
          break;
        default:
          break;
      }
      acked = IngestWithGroupCommits(store->get(), series_, 0, kChunk);
      if (mode == 3) {
        ASSERT_TRUE(vfs.Crash().ok());
      }
      // Close runs with the fault schedule still armed: a failing
      // close-time checkpoint must degrade, never abort.
    }
    vfs.Reset();  // the device heals

    if (mode == 4 && vfs.FileExists(path_)) {
      ASSERT_EQ(acked, kChunk);  // mode 4 ingested faultlessly
      auto file = Vfs::Default()->OpenFile(path_, /*create=*/false);
      ASSERT_TRUE(file.ok());
      auto size = (*file)->Size();
      ASSERT_TRUE(size.ok());
      const uint64_t pages = *size / kPageSize;
      if (pages > 1) {
        const uint64_t victim = 1 + rng() % (pages - 1);
        FlipByte(path_, victim * kPageSize + 64 + rng() % 1024);
      }
    }

    if (!vfs.FileExists(path_)) {
      // Only a store no commit ever acknowledged may vanish in a crash.
      EXPECT_EQ(acked, 0u) << "acknowledged store vanished";
      continue;
    }

    auto reopened = SegDiffIndex::Open(path_, Options(&vfs));
    if (!reopened.ok()) {
      ++refused;
      EXPECT_TRUE(reopened.status().IsCorruption())
          << "reopen must resume or report Corruption, got: "
          << reopened.status().ToString();
      if (mode != 4) {
        // Bitrot may hit any page; for every other mode the WAL keeps
        // acknowledged commits recoverable.
        EXPECT_EQ(acked, 0u)
            << "store with acknowledged commits refused to reopen: "
            << reopened.status().ToString();
      }
      // Salvage what the database layer can still read; the repaired
      // copy must come back scrub-clean.
      DatabaseOptions raw;
      raw.vfs = &vfs;
      raw.create_if_missing = false;
      auto damaged = Database::Open(path_, raw);
      if (!damaged.ok()) {
        raw.replay_wal = false;
        damaged = Database::Open(path_, raw);
      }
      if (!damaged.ok()) {
        continue;  // headers/catalog gone: nothing left to salvage
      }
      (*damaged)->Abandon();
      RepairReport report;
      ASSERT_TRUE((*damaged)->Repair(repaired_path_, &report).ok());
      DatabaseOptions check;
      check.vfs = &vfs;
      check.create_if_missing = false;
      auto fixed = Database::Open(repaired_path_, check);
      ASSERT_TRUE(fixed.ok()) << fixed.status().ToString();
      auto scrub = (*fixed)->Scrub();
      ASSERT_TRUE(scrub.ok()) << scrub.status().ToString();
      EXPECT_TRUE(scrub->clean()) << "repair left a dirty store";
      (*fixed)->Abandon();
      continue;
    }

    SegDiffIndex* store = reopened->get();
    EXPECT_GE(store->num_observations(), acked)
        << "observations acknowledged by FlushPending were lost";

    auto scrub = store->db()->Scrub();
    ASSERT_TRUE(scrub.ok()) << scrub.status().ToString();
    if (!scrub->clean()) {
      ++repairs;
      // Damaged but open: searches must degrade (flagged partial, with
      // stats), and repair must produce a scrub-clean store that still
      // answers.
      SearchStats stats;
      auto partial = store->SearchDrops(3600.0, -1.0, {}, &stats);
      EXPECT_TRUE(partial.ok() || partial.status().IsCorruption())
          << partial.status().ToString();
      RepairReport report;
      ASSERT_TRUE(store->Repair(repaired_path_, &report).ok());
      auto fixed = SegDiffIndex::Open(repaired_path_, Options(&vfs));
      ASSERT_TRUE(fixed.ok()) << fixed.status().ToString();
      auto fixed_scrub = (*fixed)->db()->Scrub();
      ASSERT_TRUE(fixed_scrub.ok()) << fixed_scrub.status().ToString();
      EXPECT_TRUE(fixed_scrub->clean()) << "repair left a dirty store";
      SearchStats fixed_stats;
      auto answers = (*fixed)->SearchDrops(3600.0, -1.0, {}, &fixed_stats);
      if (answers.ok()) {
        EXPECT_FALSE(fixed_stats.partial);
      } else {
        // Bitrot can eat a `segments`-table page, leaving feature rows
        // whose segment id no longer resolves. The salvaged store is
        // physically clean but logically lossy; the search must say so
        // loudly, never invent an answer.
        EXPECT_TRUE(answers.status().IsCorruption())
            << answers.status().ToString();
      }
      continue;
    }

    // Scrub-clean: finishing the tail must reproduce the golden store
    // and its search answers exactly.
    ++resumed;
    const uint64_t resumed_at = store->num_observations();
    ASSERT_LE(resumed_at, kChunk);
    ASSERT_EQ(IngestWithGroupCommits(store, series_, resumed_at, kChunk),
              kChunk);
    ExpectSameTables(store, golden->get());
    auto result = store->SearchDrops(3600.0, -1.0);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_EQ(result->size(), expected->size());
    for (size_t i = 0; i < result->size(); ++i) {
      EXPECT_TRUE((*result)[i] == (*expected)[i]) << "pair " << i;
    }
  }
  // The sweep is only meaningful if it actually exercised recovery.
  EXPECT_GT(resumed, 0u);
  std::printf("chaos: %lld cycles — %llu resumed clean, %llu repaired, "
              "%llu refused (seed %llu)\n",
              static_cast<long long>(cycles),
              static_cast<unsigned long long>(resumed),
              static_cast<unsigned long long>(repairs),
              static_cast<unsigned long long>(refused),
              static_cast<unsigned long long>(seed));
}

// Disk-full smoke: ENOSPC flips the store into read-only degraded mode.
// Acknowledged writes survive, searches keep answering, further writes
// fail fast with a NoSpace status, and close never aborts.
TEST_F(ChaosTest, DiskFullFlipsDegradedReadOnlyMode) {
  FaultInjectionVfs vfs;
  uint64_t acked = 0;
  size_t result_count = 0;
  {
    auto store = SegDiffIndex::Open(path_, Options(&vfs));
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    acked = IngestWithGroupCommits(store->get(), series_, 0, 60);
    ASSERT_EQ(acked, 60u);
    auto healthy = (*store)->SearchDrops(3600.0, -1.0);
    ASSERT_TRUE(healthy.ok()) << healthy.status().ToString();
    result_count = healthy->size();

    vfs.SetDiskBudgetBytes(0);  // the disk is full: zero growth left
    Status failed;
    for (size_t i = 60; i < kChunk; ++i) {
      failed = (*store)->AppendObservation(series_[i].t, series_[i].v);
      if (failed.ok() && (i + 1) % kFlushEvery == 0) {
        failed = (*store)->FlushPending();
      }
      if (!failed.ok()) break;
    }
    ASSERT_FALSE(failed.ok()) << "a full disk accepted every write";
    EXPECT_TRUE(failed.IsNoSpace()) << failed.ToString();

    ASSERT_TRUE((*store)->db()->degraded());
    const StoreHealth health = (*store)->db()->GetHealth();
    EXPECT_TRUE(health.degraded);
    EXPECT_NE(health.degraded_reason.find("no-space"), std::string::npos)
        << health.degraded_reason;

    // Degraded mode is read-only, not down: searches keep answering from
    // the acknowledged state...
    SearchStats stats;
    auto degraded = (*store)->SearchDrops(3600.0, -1.0, {}, &stats);
    ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
    EXPECT_GE(degraded->size(), result_count);
    // ...writes fail fast without burning retries against the full disk...
    Status fast = (*store)->AppendObservation(series_[kChunk - 1].t + 1.0,
                                              0.0);
    ASSERT_TRUE(fast.IsNoSpace()) << fast.ToString();
    EXPECT_NE(std::string(fast.message()).find("degraded"),
              std::string::npos)
        << fast.ToString();
    EXPECT_TRUE((*store)->Checkpoint().IsNoSpace());
    // ...and close is clean (no checkpoint against the full device).
  }
  vfs.Reset();  // space freed

  // Nothing acknowledged was lost: the WAL replays the group commits.
  auto reopened = SegDiffIndex::Open(path_, Options(&vfs));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_GE((*reopened)->num_observations(), acked);
  EXPECT_FALSE((*reopened)->db()->degraded());  // degradation is per-open
  auto scrub = (*reopened)->db()->Scrub();
  ASSERT_TRUE(scrub.ok());
  EXPECT_TRUE(scrub->clean());
  auto recovered = (*reopened)->SearchDrops(3600.0, -1.0);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_GE(recovered->size(), result_count);
}

// Degraded mode under concurrency: while one thread keeps (failing to)
// write against a full disk, parallel searchers must stream answers the
// whole time. Run under TSan to verify the health-state locking.
TEST_F(ChaosTest, DegradedModeServesConcurrentSearches) {
  FaultInjectionVfs vfs;
  auto opened = SegDiffIndex::Open(path_, Options(&vfs));
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  SegDiffIndex* store = opened->get();
  ASSERT_EQ(IngestWithGroupCommits(store, series_, 0, 60), 60u);
  auto healthy = store->SearchDrops(3600.0, -1.0);
  ASSERT_TRUE(healthy.ok()) << healthy.status().ToString();
  const size_t result_count = healthy->size();

  vfs.SetDiskBudgetBytes(0);

  // Drive the store into degraded mode first: the full disk rejects the
  // next group commit with a no-space error.
  bool degraded_seen = false;
  for (size_t i = 60; i < kChunk && !degraded_seen; ++i) {
    Status status = store->AppendObservation(series_[i].t, series_[i].v);
    if (status.ok() && (i + 1) % kFlushEvery == 0) {
      status = store->FlushPending();
    }
    if (!status.ok()) {
      EXPECT_TRUE(status.IsNoSpace()) << status.ToString();
      degraded_seen = store->db()->degraded();
    }
  }
  ASSERT_TRUE(degraded_seen) << "the full disk never degraded the store";

  // Readers stream a fixed number of searches while the writer keeps
  // hammering the (fast-failing) append path.
  std::atomic<uint64_t> searches{0};
  std::atomic<int> violations{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      for (int iter = 0; iter < 15; ++iter) {
        SearchStats stats;
        auto result = store->SearchDrops(3600.0, -1.0, {}, &stats);
        if (!result.ok() || result->size() < result_count) {
          ++violations;
          break;
        }
        ++searches;
      }
    });
  }
  for (int i = 0; i < 200; ++i) {
    if (!store->AppendObservation(series_[kChunk - 1].t + 1.0 + i, 0.0)
             .IsNoSpace()) {
      ++violations;
    }
  }
  EXPECT_TRUE(store->Checkpoint().IsNoSpace());
  for (std::thread& t : readers) {
    t.join();
  }
  EXPECT_EQ(violations.load(), 0)
      << "a search failed or shrank, or a write got through, while the "
         "store was degraded";
  EXPECT_EQ(searches.load(), 30u);
}

// A corrupt feature page quarantines: searches that pass a stats
// out-param keep answering with an explicit partial flag, and repair
// rebuilds a scrub-clean store whose searches are whole again.
TEST_F(ChaosTest, PartialSearchOnQuarantinedPageAndRepair) {
  PageId victim = kInvalidPageId;
  {
    auto store = SegDiffIndex::Open(path_, Options(nullptr));
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    ASSERT_EQ(IngestWithGroupCommits(store->get(), series_, 0,
                                     series_.size()),
              series_.size());
    auto table = (*store)->db()->GetTable("drop1");
    ASSERT_TRUE(table.ok());
    ASSERT_TRUE((*table)
                    ->Scan([&](const char*, RecordId id,
                               bool* keep_going) -> Status {
                      victim = id.page;
                      *keep_going = false;
                      return Status::OK();
                    })
                    .ok());
  }
  ASSERT_NE(victim, kInvalidPageId) << "series produced no drop1 rows";
  FlipByte(path_, victim * kPageSize + 64);

  auto store = SegDiffIndex::Open(path_, Options(nullptr));
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  // With a stats out-param the search degrades instead of failing: the
  // damaged page is quarantined and the result flagged partial.
  SearchStats stats;
  auto partial = (*store)->SearchDrops(3600.0, -3.0, {}, &stats);
  ASSERT_TRUE(partial.ok()) << partial.status().ToString();
  EXPECT_TRUE(stats.partial);
  EXPECT_GT(stats.scan.pages_quarantined + stats.scan.rows_quarantined, 0u);
  const StoreHealth health = (*store)->db()->GetHealth();
  EXPECT_GE(health.quarantined_pages, 1u);

  // The stats-less form keeps the hard error: callers that cannot see
  // the partial flag must not silently get a subset.
  auto strict = (*store)->SearchDrops(3600.0, -3.0);
  ASSERT_FALSE(strict.ok());
  EXPECT_TRUE(strict.status().IsCorruption());

  // Repair salvages everything readable into a scrub-clean store.
  RepairReport report;
  ASSERT_TRUE((*store)->Repair(repaired_path_, &report).ok());
  EXPECT_GT(report.tables, 0u);
  EXPECT_GT(report.pages_skipped + report.segments_skipped, 0u);

  SegDiffOptions repaired_options = Options(nullptr);
  repaired_options.create_if_missing = false;
  auto fixed = SegDiffIndex::Open(repaired_path_, repaired_options);
  ASSERT_TRUE(fixed.ok()) << fixed.status().ToString();
  auto scrub = (*fixed)->db()->Scrub();
  ASSERT_TRUE(scrub.ok());
  EXPECT_TRUE(scrub->clean());
  SearchStats fixed_stats;
  auto whole = (*fixed)->SearchDrops(3600.0, -3.0, {}, &fixed_stats);
  ASSERT_TRUE(whole.ok()) << whole.status().ToString();
  EXPECT_FALSE(fixed_stats.partial);
  // Every surviving answer is one the damaged store also produced.
  std::set<std::array<double, 4>> degraded_answers;
  for (const PairId& id : *partial) {
    degraded_answers.insert({id.t_d, id.t_c, id.t_b, id.t_a});
  }
  for (const PairId& id : *whole) {
    EXPECT_TRUE(degraded_answers.count({id.t_d, id.t_c, id.t_b, id.t_a}) >
                0u)
        << "repair invented a pair";
  }
}

}  // namespace
}  // namespace segdiff
