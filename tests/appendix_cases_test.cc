// Literal verification of the paper's Section 4.3.1 + appendix
// "features to be collected" rules, case by case. For each of the six
// slope cases we build a concrete segment pair, compute the paper's
// corner features by hand from the definitions, and check that
// ComputeFrontier + CollectStoredCorners store exactly those features
// under each conditional sub-case.

#include <gtest/gtest.h>

#include "feature/cases.h"
#include "feature/frontier.h"
#include "feature/parallelogram.h"

namespace segdiff {
namespace {

struct PairSetup {
  DataSegment cd;
  DataSegment ab;
};

Parallelogram Make(const PairSetup& setup) {
  auto result = Parallelogram::FromSegments(setup.cd, setup.ab);
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

StoredCorners Collect(const Parallelogram& p, double eps, SearchKind kind) {
  return CollectStoredCorners(ComputeFrontier(p, kind), eps, kind);
}

// ---------------------------------------------------------------------
// Case 1: k_CD >= 0, k_AB <= 0. Drop corners BC, AC; jump corners BC, BD.
// Paper: if dv_AC - eps <= 0 collect (dt_BC, dv_BC - eps), (dt_AC,
// dv_AC - eps); if dv_BD + eps > 0 collect (dt_BC, dv_BC + eps),
// (dt_BD, dv_BD + eps).
TEST(AppendixCasesTest, Case1DropAndJump) {
  // CD rises (0,0)->(10,4); AB falls (20,5)->(30,2).
  PairSetup setup{{{0, 0}, {10, 4}}, {{20, 5}, {30, 2}}};
  Parallelogram p = Make(setup);
  ASSERT_EQ(ClassifySlopeCase(p.k_cd(), p.k_ab()), SlopeCase::kCase1);
  // Corners: BC = (10, 1), BD = (20, 5), AC = (20, -2), AD = (30, 2).
  ASSERT_EQ(p.bc(), (FeaturePoint{10, 1}));
  ASSERT_EQ(p.ac(), (FeaturePoint{20, -2}));
  ASSERT_EQ(p.bd(), (FeaturePoint{20, 5}));

  const double eps = 0.5;
  // Drop: dv_AC - eps = -2.5 <= 0 -> collect BC and AC, shifted down.
  StoredCorners drop = Collect(p, eps, SearchKind::kDrop);
  ASSERT_EQ(drop.count, 2);
  EXPECT_EQ(drop.pts[0], (FeaturePoint{10, 0.5}));
  EXPECT_EQ(drop.pts[1], (FeaturePoint{20, -2.5}));
  // Jump: dv_BD + eps = 5.5 > 0 -> collect BC and BD, shifted up.
  StoredCorners jump = Collect(p, eps, SearchKind::kJump);
  ASSERT_EQ(jump.count, 2);
  EXPECT_EQ(jump.pts[0], (FeaturePoint{10, 1.5}));
  EXPECT_EQ(jump.pts[1], (FeaturePoint{20, 5.5}));
}

TEST(AppendixCasesTest, Case1DropImpossibleStoresNothing) {
  // Both segments high-and-rising enough that AC is positive: CD
  // (0,0)->(10,1); AB flat-down tiny (20,5)->(30,4.9): AC = (20, 3.9).
  PairSetup setup{{{0, 0}, {10, 1}}, {{20, 5}, {30, 4.9}}};
  Parallelogram p = Make(setup);
  ASSERT_EQ(ClassifySlopeCase(p.k_cd(), p.k_ab()), SlopeCase::kCase1);
  StoredCorners drop = Collect(p, 0.5, SearchKind::kDrop);
  EXPECT_EQ(drop.count, 0);  // dv_AC - eps = 3.4 > 0: no drop possible
}

// ---------------------------------------------------------------------
// Case 2: k_CD >= 0, k_AB >= k_CD. Drop corner BC; jump corners BC, AC,
// AD (sub-case I) or AC, AD (sub-case II).
TEST(AppendixCasesTest, Case2DropSingleCorner) {
  // CD (0,0)->(10,2) slope .2; AB (20,-9)->(30,-4) slope .5.
  PairSetup setup{{{0, 0}, {10, 2}}, {{20, -9}, {30, -4}}};
  Parallelogram p = Make(setup);
  ASSERT_EQ(ClassifySlopeCase(p.k_cd(), p.k_ab()), SlopeCase::kCase2);
  // BC = (10, -11): dv_BC - eps <= 0 -> store just BC shifted.
  StoredCorners drop = Collect(p, 0.5, SearchKind::kDrop);
  ASSERT_EQ(drop.count, 1);
  EXPECT_EQ(drop.pts[0], (FeaturePoint{10, -11.5}));
}

TEST(AppendixCasesTest, Case2JumpSubcases) {
  const double eps = 0.5;
  // Sub-case I: dv_AC + eps >= 0 with BC also relevant. CD
  // (0,0)->(10,2); AB (20,1)->(30,9): BC=(10,-1), AC=(20,7), AD=(30,9).
  {
    PairSetup setup{{{0, 0}, {10, 2}}, {{20, 1}, {30, 9}}};
    Parallelogram p = Make(setup);
    ASSERT_EQ(ClassifySlopeCase(p.k_cd(), p.k_ab()), SlopeCase::kCase2);
    StoredCorners jump = Collect(p, eps, SearchKind::kJump);
    ASSERT_EQ(jump.count, 3);
    EXPECT_EQ(jump.pts[0], (FeaturePoint{10, -0.5}));
    EXPECT_EQ(jump.pts[1], (FeaturePoint{20, 7.5}));
    EXPECT_EQ(jump.pts[2], (FeaturePoint{30, 9.5}));
  }
  // Sub-case II: dv_AC + eps < 0 but dv_AD + eps > 0: drop BC, keep
  // (AC, AD). CD (0,0)->(10,2); AB (20,-11)->(30,1):
  // BC=(10,-13), AC=(20,-1), AD=(30,1).
  {
    PairSetup setup{{{0, 0}, {10, 2}}, {{20, -11}, {30, 1}}};
    Parallelogram p = Make(setup);
    ASSERT_EQ(ClassifySlopeCase(p.k_cd(), p.k_ab()), SlopeCase::kCase2);
    StoredCorners jump = Collect(p, eps, SearchKind::kJump);
    ASSERT_EQ(jump.count, 2);
    EXPECT_EQ(jump.pts[0], (FeaturePoint{20, -0.5}));
    EXPECT_EQ(jump.pts[1], (FeaturePoint{30, 1.5}));
  }
  // No jump possible: dv_AD + eps <= 0.
  {
    PairSetup setup{{{0, 0}, {10, 2}}, {{20, -30}, {30, -20}}};
    Parallelogram p = Make(setup);
    ASSERT_EQ(ClassifySlopeCase(p.k_cd(), p.k_ab()), SlopeCase::kCase2);
    EXPECT_EQ(Collect(p, eps, SearchKind::kJump).count, 0);
  }
}

// ---------------------------------------------------------------------
// Case 3: k_CD >= 0, 0 < k_AB < k_CD. Same as case 2 with BD in place
// of AC.
TEST(AppendixCasesTest, Case3JumpUsesBd) {
  // CD (0,0)->(10,9) slope .9; AB (20,1)->(30,3) slope .2.
  // BC = (10, -8), BD = (20, 1), AD = (30, 3).
  PairSetup setup{{{0, 0}, {10, 9}}, {{20, 1}, {30, 3}}};
  Parallelogram p = Make(setup);
  ASSERT_EQ(ClassifySlopeCase(p.k_cd(), p.k_ab()), SlopeCase::kCase3);
  StoredCorners jump = Collect(p, 0.5, SearchKind::kJump);
  ASSERT_EQ(jump.count, 3);
  EXPECT_EQ(jump.pts[0], (FeaturePoint{10, -7.5}));
  EXPECT_EQ(jump.pts[1], (FeaturePoint{20, 1.5}));  // BD, not AC
  EXPECT_EQ(jump.pts[2], (FeaturePoint{30, 3.5}));
  // Drop: single corner BC.
  StoredCorners drop = Collect(p, 0.5, SearchKind::kDrop);
  ASSERT_EQ(drop.count, 1);
  EXPECT_EQ(drop.pts[0], (FeaturePoint{10, -8.5}));
}

// ---------------------------------------------------------------------
// Case 4: k_CD < 0, k_AB >= 0. Drop corners BC, BD; jump corners BC, AC.
TEST(AppendixCasesTest, Case4BothKinds) {
  // CD (0,4)->(10,0) slope -.4; AB (20,-1)->(30,3) slope .4.
  // BC=(10,-1), BD=(20,-5), AC=(20,3), AD=(30,-1).
  PairSetup setup{{{0, 4}, {10, 0}}, {{20, -1}, {30, 3}}};
  Parallelogram p = Make(setup);
  ASSERT_EQ(ClassifySlopeCase(p.k_cd(), p.k_ab()), SlopeCase::kCase4);
  const double eps = 0.5;
  // Drop: dv_BD - eps = -5.5 <= 0 -> (BC, BD) shifted down.
  StoredCorners drop = Collect(p, eps, SearchKind::kDrop);
  ASSERT_EQ(drop.count, 2);
  EXPECT_EQ(drop.pts[0], (FeaturePoint{10, -1.5}));
  EXPECT_EQ(drop.pts[1], (FeaturePoint{20, -5.5}));
  // Jump: dv_AC + eps = 3.5 > 0 -> (BC, AC) shifted up.
  StoredCorners jump = Collect(p, eps, SearchKind::kJump);
  ASSERT_EQ(jump.count, 2);
  EXPECT_EQ(jump.pts[0], (FeaturePoint{10, -0.5}));
  EXPECT_EQ(jump.pts[1], (FeaturePoint{20, 3.5}));
}

// ---------------------------------------------------------------------
// Case 5: k_CD < 0, k_AB <= k_CD. Drop: (BC, AC, AD) / (AC, AD); jump:
// BC only. (Table 2 prints case 5's slope condition with a typo; the
// appendix geometry is authoritative — see cases.h.)
TEST(AppendixCasesTest, Case5DropSubcasesAndJump) {
  const double eps = 0.5;
  // k_CD = -0.2, k_AB = -0.8. CD (0,2)->(10,0); AB (20,5)->(30,-3).
  // Corners: BC = (10, 5), AC = (20, -3), AD = (30, -5).
  {
    PairSetup setup{{{0, 2}, {10, 0}}, {{20, 5}, {30, -3}}};
    Parallelogram p = Make(setup);
    ASSERT_EQ(ClassifySlopeCase(p.k_cd(), p.k_ab()), SlopeCase::kCase5);
    // Sub-case I: dv_AC - eps = -3.5 <= 0 -> all three corners.
    StoredCorners drop = Collect(p, eps, SearchKind::kDrop);
    ASSERT_EQ(drop.count, 3);
    EXPECT_EQ(drop.pts[0], (FeaturePoint{10, 4.5}));   // BC
    EXPECT_EQ(drop.pts[1], (FeaturePoint{20, -3.5}));  // AC
    EXPECT_EQ(drop.pts[2], (FeaturePoint{30, -5.5}));  // AD
    // Jump: dv_BC + eps = 5.5 > 0 -> single corner BC.
    StoredCorners jump = Collect(p, eps, SearchKind::kJump);
    ASSERT_EQ(jump.count, 1);
    EXPECT_EQ(jump.pts[0], (FeaturePoint{10, 5.5}));
  }
  // Sub-case II: dv_AC - eps > 0 and dv_AD - eps <= 0 -> (AC, AD) only.
  // Raise AB so AC stays positive: CD (0,2)->(10,0); AB (20,9)->(30,0.8):
  // AC = (20, 0.8), AD = (30, -1.2), BC = (10, 9).
  {
    PairSetup setup{{{0, 2}, {10, 0}}, {{20, 9}, {30, 0.8}}};
    Parallelogram p = Make(setup);
    ASSERT_EQ(ClassifySlopeCase(p.k_cd(), p.k_ab()), SlopeCase::kCase5);
    StoredCorners drop = Collect(p, eps, SearchKind::kDrop);
    ASSERT_EQ(drop.count, 2);
    EXPECT_EQ(drop.pts[0].dt, 20);
    EXPECT_NEAR(drop.pts[0].dv, 0.8 - eps, 1e-12);  // AC shifted
    EXPECT_EQ(drop.pts[1].dt, 30);
    EXPECT_NEAR(drop.pts[1].dv, -1.2 - eps, 1e-12);  // AD shifted
  }
}

// ---------------------------------------------------------------------
// Case 6: k_CD < 0, k_CD < k_AB < 0. Case 5 with BD in place of AC.
TEST(AppendixCasesTest, Case6DropUsesBd) {
  // k_CD = -0.8, k_AB = -0.2. CD (0,8)->(10,0); AB (20,1)->(30,-1).
  // BC = (10, 1), BD = (20, -7), AD = (30, -9).
  PairSetup setup{{{0, 8}, {10, 0}}, {{20, 1}, {30, -1}}};
  Parallelogram p = Make(setup);
  ASSERT_EQ(ClassifySlopeCase(p.k_cd(), p.k_ab()), SlopeCase::kCase6);
  StoredCorners drop = Collect(p, 0.5, SearchKind::kDrop);
  ASSERT_EQ(drop.count, 3);
  EXPECT_EQ(drop.pts[0], (FeaturePoint{10, 0.5}));    // BC
  EXPECT_EQ(drop.pts[1], (FeaturePoint{20, -7.5}));   // BD, not AC
  EXPECT_EQ(drop.pts[2], (FeaturePoint{30, -9.5}));   // AD
  // Jump: BC only (dv_BC + eps = 1.5 > 0).
  StoredCorners jump = Collect(p, 0.5, SearchKind::kJump);
  ASSERT_EQ(jump.count, 1);
  EXPECT_EQ(jump.pts[0], (FeaturePoint{10, 1.5}));
}

}  // namespace
}  // namespace segdiff
