// Transect-level chaos (DESIGN.md §16).
//
// Three sweeps over the self-healing contract:
//
//   1. Crash-mid-rebalance: seeded cycles arm a countdown fault on one
//      of the rebalance's write paths (write, fsync, mkdir, rename),
//      kill the file system at the failure point, heal, and reopen.
//      Every cycle must end with exactly one authoritative layout — the
//      MIGRATION manifest resolved, no orphan shard directories, the
//      catalog either fully the old or fully the new sensors_per_shard
//      — and every previously acknowledged observation searchable with
//      the exact pre-fault answers.
//
//   2. Bitrot: flip bytes in a random sensor store. The stats search
//      must stay OK and degrade honestly (partial, with the per-sensor
//      failure ledger populated when the store refuses to open or
//      answer), the stats-less search must fail loudly, and RepairAll
//      must salvage every repairable store back to a scrub-clean sweep.
//
//   3. Eviction-error surfacing: an LRU eviction whose checkpoint fails
//      must not vanish — the sticky error reaches the next Acquire of
//      the victim and the next FlushAllPending, and the retry succeeds
//      with all acknowledged data intact (the WAL replays it).
//
// SEGDIFF_CHAOS_CYCLES shrinks the sweeps for smoke runs;
// SEGDIFF_FAULT_SEED explores a different schedule.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <random>
#include <string>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "test_paths.h"

#include "common/env.h"
#include "common/vfs.h"
#include "segdiff/transect_index.h"
#include "storage/fault_vfs.h"
#include "storage/pager.h"
#include "ts/generator.h"

namespace segdiff {
namespace {

constexpr int kSensors = 6;
constexpr int kInitialSps = 2;  // 3 shards
constexpr int kNewSps = 3;      // rebalance target: 2 shards
constexpr double kT = 3600.0;
constexpr double kV = -1.0;

/// Flips one bit of the byte at `offset` in `path` (silent media error).
void FlipByte(const std::string& path, uint64_t offset) {
  auto file = Vfs::Default()->OpenFile(path, /*create=*/false);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  char b = 0;
  ASSERT_TRUE((*file)->Read(offset, 1, &b).ok());
  b ^= 0x40;
  ASSERT_TRUE((*file)->Write(offset, &b, 1).ok());
  ASSERT_TRUE((*file)->Sync().ok());
}

class TransectChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = UniqueTestPath("transect_chaos", "");
    Cleanup();
    CadGeneratorOptions gen;
    gen.num_days = 1;
    gen.cad_events_per_day = 1.0;
    auto data = GenerateCadTransect(gen, kSensors);
    ASSERT_TRUE(data.ok()) << data.status().ToString();
    for (auto& sensor : *data) {
      all_series_.push_back(std::move(sensor.series));
    }
  }
  void TearDown() override { Cleanup(); }
  void Cleanup() {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  /// WAL on with a zero group-commit window (FlushAllPending == acked
  /// durable), heap-only stores to keep hundreds of cycles fast.
  TransectOptions Options(Vfs* vfs) const {
    TransectOptions options;
    options.store.build_indexes = false;
    options.store.vfs = vfs;
    options.store.wal_group_commit_ms = 0;
    options.store.buffer_pool_pages = 64;
    options.sensors_per_shard = kInitialSps;
    return options;
  }

  /// Asserts the root holds exactly the live layout: the CATALOG plus
  /// the live catalog's shard directories — no MIGRATION manifest, no
  /// orphan generation, no stray temp files.
  void ExpectSingleLayout(TransectIndex* transect) {
    EXPECT_FALSE(Vfs::Default()->FileExists(
        dir_ + "/" + MigrationManifest::kFileName))
        << "migration intent survived recovery";
    const ShardCatalog& catalog = transect->catalog();
    std::unordered_set<std::string> live;
    const int sps = catalog.sensors_per_shard();
    const size_t num_shards =
        static_cast<size_t>((catalog.sensor_count() + sps - 1) / sps);
    for (size_t s = 0; s < num_shards; ++s) {
      const std::string path = catalog.ShardDirPath(dir_, s);
      live.insert(path.substr(dir_.size() + 1));
    }
    auto entries = Vfs::Default()->ListDir(dir_);
    ASSERT_TRUE(entries.ok()) << entries.status().ToString();
    for (const std::string& name : *entries) {
      EXPECT_TRUE(name == ShardCatalog::kManifestName ||
                  live.count(name) > 0)
          << "orphan entry after recovery: " << name;
    }
  }

  std::string dir_;
  std::vector<Series> all_series_;
  /// Pre-fault golden answers, carried across the crash boundary.
  std::vector<TransectHit> hits_expected_;
};

// Sweep 1: kill the file system at a seeded point inside Rebalance().
// The next Open must roll the migration forward or back — never leave
// two layouts, never lose an acknowledged observation.
TEST_F(TransectChaosTest, CrashMidRebalanceLeavesOneLayout) {
  const uint64_t seed = static_cast<uint64_t>(
      GetEnvInt64("SEGDIFF_FAULT_SEED", 20080325));
  const int64_t cycles = GetEnvInt64("SEGDIFF_CHAOS_CYCLES", 60);
  std::mt19937_64 rng(seed);

  uint64_t committed = 0, rolled_back = 0, survived_fault = 0;
  for (int64_t cycle = 0; cycle < cycles; ++cycle) {
    const int mode = static_cast<int>(rng() % 5);
    SCOPED_TRACE("cycle " + std::to_string(cycle) + " mode " +
                 std::to_string(mode) + " (seed " + std::to_string(seed) +
                 ")");
    Cleanup();
    FaultInjectionVfs vfs;

    {
      auto transect = TransectIndex::Open(dir_, kSensors, Options(&vfs));
      ASSERT_TRUE(transect.ok()) << transect.status().ToString();
      ASSERT_TRUE((*transect)->IngestAllSensors(all_series_).ok());
      // Everything below is acknowledged durable from here on.
      ASSERT_TRUE((*transect)->Checkpoint().ok());

      auto expected = (*transect)->SearchDrops(kT, kV);
      ASSERT_TRUE(expected.ok()) << expected.status().ToString();

      switch (mode) {
        case 0:
          vfs.FailAfterWrites(static_cast<int64_t>(rng() % 400));
          break;
        case 1:
          vfs.FailAfterSyncs(static_cast<int64_t>(rng() % 40));
          break;
        case 2:
          vfs.FailAfterMkdirs(static_cast<int64_t>(rng() % 2));
          break;
        case 3:
          vfs.FailAfterRenames(static_cast<int64_t>(rng() % 3));
          break;
        default:
          break;  // no fault: the rebalance must simply succeed
      }

      Status rebalanced = (*transect)->Rebalance(kNewSps);
      if (mode == 4) {
        ASSERT_TRUE(rebalanced.ok()) << rebalanced.ToString();
      }
      if (!rebalanced.ok()) {
        // The schedule fired mid-migration: power-cut right here. The
        // close below runs against a dead device and must stay graceful.
        (void)vfs.Crash();
      } else if (mode != 4) {
        ++survived_fault;  // countdown outlived the rebalance
      }

      // Re-check the answers only when the device is still alive.
      if (rebalanced.ok()) {
        TransectSearchStats stats;
        auto after = (*transect)->SearchDrops(kT, kV, {}, &stats);
        ASSERT_TRUE(after.ok()) << after.status().ToString();
        EXPECT_FALSE(stats.partial);
        ASSERT_EQ(after->size(), expected->size());
        for (size_t i = 0; i < after->size(); ++i) {
          EXPECT_TRUE((*after)[i] == (*expected)[i]) << "hit " << i;
        }
      }
      hits_expected_ = std::move(*expected);
    }  // close (possibly against the crashed device)

    vfs.Reset();  // the machine comes back

    auto reopened = TransectIndex::Open(dir_, kSensors, Options(&vfs));
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    ExpectSingleLayout(reopened->get());

    const int sps = (*reopened)->catalog().sensors_per_shard();
    ASSERT_TRUE(sps == kInitialSps || sps == kNewSps) << sps;
    if (sps == kNewSps) {
      ++committed;
    } else {
      ++rolled_back;
    }

    // Every acknowledged observation answers, with no partiality.
    TransectSearchStats stats;
    auto hits = (*reopened)->SearchDrops(kT, kV, {}, &stats);
    ASSERT_TRUE(hits.ok()) << hits.status().ToString();
    EXPECT_FALSE(stats.partial);
    EXPECT_EQ(stats.sensors_failed, 0u);
    EXPECT_EQ(stats.sensors_skipped, 0u);
    ASSERT_EQ(hits->size(), hits_expected_.size());
    for (size_t i = 0; i < hits->size(); ++i) {
      EXPECT_TRUE((*hits)[i] == hits_expected_[i]) << "hit " << i;
    }

    // And the recovered transect scrubs clean end to end.
    auto health = (*reopened)->Verify();
    ASSERT_TRUE(health.ok()) << health.status().ToString();
    EXPECT_TRUE(health->clean())
        << health->sensors_corrupt << " corrupt / "
        << health->sensors_unavailable << " unavailable after recovery";
    EXPECT_EQ(health->sensors_scanned, kSensors);
  }

  // The sweep must have exercised both recovery directions.
  EXPECT_GT(committed, 0u);
  EXPECT_GT(rolled_back, 0u);
  std::printf(
      "transect chaos: %lld rebalance cycles — %llu committed, "
      "%llu rolled back, %llu survived an armed fault (seed %llu)\n",
      static_cast<long long>(cycles),
      static_cast<unsigned long long>(committed),
      static_cast<unsigned long long>(rolled_back),
      static_cast<unsigned long long>(survived_fault),
      static_cast<unsigned long long>(seed));
}

// Sweep 2: silent bitrot in one sensor store. Stats searches isolate
// the victim and say so; stats-less searches fail loudly; RepairAll
// salvages every store that still has a readable skeleton.
TEST_F(TransectChaosTest, BitrotIsIsolatedAndRepaired) {
  const uint64_t seed = static_cast<uint64_t>(
      GetEnvInt64("SEGDIFF_FAULT_SEED", 20080325));
  const int64_t cycles = GetEnvInt64("SEGDIFF_CHAOS_CYCLES", 40);
  std::mt19937_64 rng(seed ^ 0x62697472);  // decorrelate from sweep 1

  uint64_t damaged_cycles = 0;   // a search saw the damage
  uint64_t ledger_cycles = 0;    // ...as a per-sensor failure/skip
  uint64_t repaired_clean = 0;   // RepairAll restored a clean sweep
  uint64_t lossy_salvage = 0;    // scrub-clean but logically lossy
  uint64_t unsalvageable = 0;    // headers/catalog gone; repair refused
  for (int64_t cycle = 0; cycle < cycles; ++cycle) {
    SCOPED_TRACE("cycle " + std::to_string(cycle) + " (seed " +
                 std::to_string(seed) + ")");
    Cleanup();

    std::vector<TransectHit> expected;
    std::string victim_path;
    const int victim = static_cast<int>(rng() % kSensors);
    {
      auto transect =
          TransectIndex::Open(dir_, kSensors, Options(nullptr));
      ASSERT_TRUE(transect.ok()) << transect.status().ToString();
      ASSERT_TRUE((*transect)->IngestAllSensors(all_series_).ok());
      auto hits = (*transect)->SearchDrops(kT, kV);
      ASSERT_TRUE(hits.ok()) << hits.status().ToString();
      expected = std::move(*hits);
      victim_path = (*transect)->catalog().StorePath(dir_, victim);
    }  // clean close: WAL checkpointed, pages on disk

    // Flip a bit in two distinct data pages (never the header page —
    // chaos_test covers the headers-gone refusal; here the store must
    // keep a readable skeleton so repair has something to salvage).
    {
      auto file = Vfs::Default()->OpenFile(victim_path, /*create=*/false);
      ASSERT_TRUE(file.ok()) << file.status().ToString();
      auto size = (*file)->Size();
      ASSERT_TRUE(size.ok());
      const uint64_t pages = *size / kPageSize;
      ASSERT_GT(pages, 2u);
      const uint64_t first = 1 + rng() % (pages - 1);
      uint64_t second = 1 + rng() % (pages - 1);
      if (second == first) second = 1 + (first % (pages - 1));
      FlipByte(victim_path, first * kPageSize + 64 + rng() % 1024);
      FlipByte(victim_path, second * kPageSize + 64 + rng() % 1024);
    }

    auto reopened = TransectIndex::Open(dir_, kSensors, Options(nullptr));
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();

    // The stats search never aborts: the victim is isolated (skip,
    // failure, or page quarantine) and everyone else answers.
    TransectSearchStats stats;
    auto partial = (*reopened)->SearchDrops(kT, kV, {}, &stats);
    ASSERT_TRUE(partial.ok()) << partial.status().ToString();
    const bool saw_damage =
        stats.partial || stats.sensors_failed > 0 || stats.sensors_skipped > 0;
    if (saw_damage) {
      ++damaged_cycles;
      EXPECT_TRUE(stats.partial);
      // Non-victim sensors answer in full, byte for byte.
      std::vector<TransectHit> got, want;
      for (const TransectHit& h : *partial) {
        if (h.sensor != victim) got.push_back(h);
      }
      for (const TransectHit& h : expected) {
        if (h.sensor != victim) want.push_back(h);
      }
      ASSERT_EQ(got.size(), want.size());
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_TRUE(got[i] == want[i]) << "hit " << i;
      }
      if (stats.sensors_failed > 0 || stats.sensors_skipped > 0) {
        ++ledger_cycles;
        ASSERT_FALSE(stats.failures.empty());
        EXPECT_EQ(stats.failures.front().sensor, victim);
        // The strict stats-less contract: first damaged sensor aborts.
        auto strict = (*reopened)->SearchDrops(kT, kV);
        ASSERT_FALSE(strict.ok())
            << "stats-less search hid a damaged sensor";
        EXPECT_TRUE(strict.status().IsCorruption())
            << strict.status().ToString();
      }
    }

    // Repair salvages whatever still has a skeleton; a clean repair
    // sweep must leave a clean verify sweep and a full search.
    auto repair = (*reopened)->RepairAll();
    ASSERT_TRUE(repair.ok()) << repair.status().ToString();
    EXPECT_EQ(repair->sensors_checked, kSensors);
    if (repair->sensors_failed > 0) {
      ++unsalvageable;
      continue;
    }
    auto health = (*reopened)->Verify();
    ASSERT_TRUE(health.ok()) << health.status().ToString();
    EXPECT_TRUE(health->clean())
        << "repair left " << health->sensors_corrupt << " corrupt / "
        << health->sensors_unavailable << " unavailable sensor(s)";
    TransectSearchStats fixed_stats;
    auto fixed = (*reopened)->SearchDrops(kT, kV, {}, &fixed_stats);
    ASSERT_TRUE(fixed.ok()) << fixed.status().ToString();
    if (!fixed_stats.partial) {
      EXPECT_EQ(fixed_stats.sensors_failed, 0u);
      EXPECT_EQ(fixed_stats.sensors_skipped, 0u);
      if (repair->sensors_repaired > 0 || saw_damage) {
        ++repaired_clean;
      }
    } else {
      // Salvage can be logically lossy even when physically clean:
      // bitrot that ate a `segments`-table page leaves feature rows
      // whose segment id no longer resolves, and the search must say
      // so rather than invent an answer. The victim lands in the
      // failure ledger; everyone else still answers.
      EXPECT_GE(fixed_stats.sensors_failed + fixed_stats.sensors_skipped, 1u);
      ASSERT_FALSE(fixed_stats.failures.empty());
      EXPECT_EQ(fixed_stats.failures.front().sensor, victim);
      ++lossy_salvage;
    }
  }

  // The sweep must have seen real damage, recorded it in the failure
  // ledger at least once, and repaired its way back to clean.
  EXPECT_GT(damaged_cycles, 0u);
  EXPECT_GT(ledger_cycles, 0u);
  EXPECT_GT(repaired_clean, 0u);
  std::printf(
      "transect chaos: %lld bitrot cycles — %llu damaged, %llu in the "
      "failure ledger, %llu repaired clean, %llu lossy salvages, %llu "
      "unsalvageable (seed %llu)\n",
      static_cast<long long>(cycles),
      static_cast<unsigned long long>(damaged_cycles),
      static_cast<unsigned long long>(ledger_cycles),
      static_cast<unsigned long long>(repaired_clean),
      static_cast<unsigned long long>(lossy_salvage),
      static_cast<unsigned long long>(unsalvageable),
      static_cast<unsigned long long>(seed));
}

// Sweep 3: an eviction whose checkpoint fails must surface the error —
// once — to the next Acquire of the victim and to FlushAllPending, and
// the retry must come back with every acknowledged observation.
TEST_F(TransectChaosTest, EvictionCheckpointFailureSurfaces) {
  FaultInjectionVfs vfs;
  TransectOptions options = Options(&vfs);
  options.max_open_stores = 1;  // every cold touch evicts

  auto transect = TransectIndex::Open(dir_, kSensors, options);
  ASSERT_TRUE(transect.ok()) << transect.status().ToString();

  // Materialize sensor 1's store while the device is healthy, so the
  // armed fault below can only land on the eviction checkpoint.
  { auto handle = (*transect)->sensor(1); ASSERT_TRUE(handle.ok()); }

  const Series& series = all_series_[0];
  ASSERT_GE(series.size(), 80u);
  uint64_t acked = 0;
  for (size_t i = 0; i < 40; ++i) {
    ASSERT_TRUE(
        (*transect)->AppendSensorObservation(0, series[i].t, series[i].v)
            .ok());
  }
  ASSERT_TRUE((*transect)->FlushAllPending().ok());
  acked = 40;

  // Sensor 0 is resident and behind on its checkpoint (the WAL holds
  // the acked rows). Touching sensor 1 evicts it into a dead device.
  vfs.FailAfterSyncs(0);
  { auto handle = (*transect)->sensor(1); (void)handle; }
  vfs.Reset();

  EXPECT_GE((*transect)->store_stats().eviction_failures, 1u);

  // The sticky error reaches the next Acquire of the victim, once.
  auto sticky = (*transect)->sensor(0);
  ASSERT_FALSE(sticky.ok()) << "eviction checkpoint failure vanished";
  EXPECT_NE(std::string(sticky.status().message())
                .find("eviction checkpoint failed"),
            std::string::npos)
      << sticky.status().ToString();

  // The retry reopens and replays the WAL: nothing acknowledged lost.
  auto retry = (*transect)->sensor(0);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_GE((*retry)->num_observations(), acked);
  retry->Reset();  // drop the pin before the next eviction round

  // Round two: the same failure must also surface via FlushAllPending.
  for (size_t i = 40; i < 80; ++i) {
    ASSERT_TRUE(
        (*transect)->AppendSensorObservation(0, series[i].t, series[i].v)
            .ok());
  }
  ASSERT_TRUE((*transect)->FlushAllPending().ok());
  acked = 80;

  vfs.FailAfterSyncs(0);
  { auto handle = (*transect)->sensor(1); (void)handle; }
  vfs.Reset();
  EXPECT_GE((*transect)->store_stats().eviction_failures, 2u);

  Status flushed = (*transect)->FlushAllPending();
  ASSERT_FALSE(flushed.ok()) << "FlushAllPending hid an eviction failure";
  EXPECT_NE(std::string(flushed.message()).find("eviction checkpoint failed"),
            std::string::npos)
      << flushed.ToString();

  // Delivered once: the victim acquires cleanly now, data intact.
  auto healed = (*transect)->sensor(0);
  ASSERT_TRUE(healed.ok()) << healed.status().ToString();
  EXPECT_GE((*healed)->num_observations(), acked);
}

}  // namespace
}  // namespace segdiff
