// Row-vs-columnar differential suite.
//
// The columnar format's contract (DESIGN.md §12): every decode
// reproduces the exact bit pattern that was encoded, so a query over a
// compacted (columnar) store returns byte-identical records — in the
// same order — as the same query over the original row store, with
// ScanStats that account for every row either scanned or pruned.
// Corruption detection survives compression: a damaged chain page fails
// the scan even when segment-level pruning would skip its rows.
//
// Layers under test, bottom-up: the encoders (bit-exact roundtrip over
// adversarial doubles), ColumnStore append/reopen/point reads (catalog
// v3), and the executor's columnar path (serial, parallel, count-only,
// and SQL end-to-end) against the row format as the oracle.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "test_paths.h"

#include "common/random.h"
#include "common/thread_pool.h"
#include "common/vfs.h"
#include "query/executor.h"
#include "query/scan_kernel.h"
#include "sql/engine.h"
#include "storage/column_page.h"
#include "storage/db.h"
#include "storage/record.h"

namespace segdiff {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

// ---------------------------------------------------------------------------
// Encoder roundtrip: bit-exact over every value class.

/// Encodes `cols` column vectors as one segment and decodes every column
/// back, comparing bit patterns (so NaN payloads and -0.0 count).
void ExpectRoundTrip(const std::vector<std::vector<double>>& cols) {
  const size_t num_columns = cols.size();
  const size_t rows = cols[0].size();
  std::vector<char> records(rows * num_columns * 8);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < num_columns; ++c) {
      std::memcpy(&records[(r * num_columns + c) * 8], &cols[c][r], 8);
    }
  }
  const std::string blob =
      EncodeColumnSegment(records.data(), num_columns, rows);
  ASSERT_FALSE(blob.empty());

  // Parse the blob the way ColumnSegmentHandle does: 16-byte header,
  // then 32-byte directory entries, then payloads.
  ASSERT_GE(blob.size(), 16 + 32 * num_columns);
  for (size_t c = 0; c < num_columns; ++c) {
    const char* e = blob.data() + 16 + 32 * c;
    ColumnDirEntry dir;
    dir.encoding = static_cast<ColumnEncoding>(e[0]);
    dir.scale_log10 = static_cast<uint8_t>(e[1]);
    std::memcpy(&dir.bit_width, e + 2, 2);
    std::memcpy(&dir.payload_bytes, e + 4, 4);
    std::memcpy(&dir.base, e + 8, 8);
    std::memcpy(&dir.min, e + 16, 8);
    std::memcpy(&dir.max, e + 24, 8);
    // Payload offset: sum of the previous columns' payloads.
    uint64_t offset = 16 + 32 * num_columns;
    for (size_t p = 0; p < c; ++p) {
      uint32_t bytes = 0;
      std::memcpy(&bytes, blob.data() + 16 + 32 * p + 4, 4);
      offset += bytes;
    }
    ColumnCursor cursor(&dir, blob.data() + offset, rows);
    std::vector<double> decoded(rows);
    cursor.Decode(rows, decoded.data());
    for (size_t r = 0; r < rows; ++r) {
      uint64_t want = 0, got = 0;
      std::memcpy(&want, &cols[c][r], 8);
      std::memcpy(&got, &decoded[r], 8);
      ASSERT_EQ(got, want)
          << "column " << c << " row " << r << " ("
          << ColumnEncodingName(dir.encoding) << "): " << cols[c][r]
          << " decoded as " << decoded[r];
    }
    // Skip/Decode interleaving must land on the same values.
    if (rows >= 8) {
      ColumnCursor skipper(&dir, blob.data() + offset, rows);
      skipper.Skip(3);
      double v[4];
      skipper.Decode(4, v);
      for (int i = 0; i < 4; ++i) {
        uint64_t want = 0, got = 0;
        std::memcpy(&want, &cols[c][3 + i], 8);
        std::memcpy(&got, &v[i], 8);
        EXPECT_EQ(got, want) << "skip-decode column " << c << " row " << 3 + i;
      }
    }
  }
}

TEST(ColumnEncodingTest, DecimalGridColumnsRoundTripExactly) {
  std::vector<double> seconds, centi;
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    seconds.push_back(std::round(rng.Uniform(0.0, 1e6)));
    centi.push_back(std::round(rng.Uniform(-500.0, 500.0) * 100.0) / 100.0);
  }
  ExpectRoundTrip({seconds, centi});
}

TEST(ColumnEncodingTest, MonotoneTimesRoundTripExactly) {
  std::vector<double> t;
  double base = 1.2e9;
  Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    base += std::round(rng.Uniform(1.0, 120.0));
    t.push_back(base);
  }
  ExpectRoundTrip({t});
}

TEST(ColumnEncodingTest, AdversarialDoublesRoundTripExactly) {
  // NaN (two payloads), infinities, -0.0, denormals, random mantissas:
  // nothing on a decimal grid, so the encoder must fall back to
  // xor/raw — and still be bit-exact.
  std::vector<double> values = {0.0,  -0.0, kNaN, -kNaN, kInf, -kInf,
                                5e-324, -5e-324, 1.0 + 1e-15};
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    values.push_back(rng.Uniform(-1.0, 1.0) * 1e300);
  }
  ExpectRoundTrip({values});
}

TEST(ColumnEncodingTest, SingleRowAndConstantColumns) {
  ExpectRoundTrip({{42.0}, {kNaN}, {-0.0}});
  ExpectRoundTrip({std::vector<double>(300, 7.5),
                   std::vector<double>(300, kNaN)});
}

TEST(ColumnEncodingTest, CompressesSensorShapedData) {
  const size_t rows = 4096;
  std::vector<char> records(rows * 2 * 8);
  Rng rng(4);
  double t = 0.0;
  for (size_t r = 0; r < rows; ++r) {
    t += std::round(rng.Uniform(30.0, 90.0));
    double dv = std::round(rng.Uniform(-8.0, 8.0) * 100.0) / 100.0;
    if (dv == 0.0) dv = 0.0;  // -0.0 is off the decimal grid by design
    std::memcpy(&records[r * 16], &t, 8);
    std::memcpy(&records[r * 16 + 8], &dv, 8);
  }
  const std::string blob = EncodeColumnSegment(records.data(), 2, rows);
  EXPECT_LT(blob.size(), records.size() / 2)
      << "sensor-shaped data must compress at least 2x";
}

// ---------------------------------------------------------------------------
// Differential fixture: the same rows in a row store and its compacted
// (columnar) twin; every query must agree byte for byte.

class ColumnarDifferentialTest : public ::testing::Test {
 protected:
  void SetUp() override {
    row_path_ = UniqueTestPath("columnar", "_row.db");
    col_path_ = UniqueTestPath("columnar", "_col.db");
    std::remove(row_path_.c_str());
    std::remove(col_path_.c_str());
  }
  void TearDown() override {
    row_db_.reset();
    col_db_.reset();
    std::remove(row_path_.c_str());
    std::remove(col_path_.c_str());
  }

  /// Builds the row store from `rows`, compacts it into the columnar
  /// twin, and opens both. The row store keeps its original row format
  /// (CompactOptions{.columnar = false}) so it stays the oracle.
  void Build(const std::vector<std::vector<double>>& rows,
             const std::vector<std::string>& columns = {"dt", "dv"}) {
    auto db = Database::Open(row_path_, DatabaseOptions{});
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    auto schema = DoubleSchema(columns);
    ASSERT_TRUE(schema.ok());
    auto table = (*db)->CreateTable("f", *schema);
    ASSERT_TRUE(table.ok());
    for (const std::vector<double>& row : rows) {
      ASSERT_TRUE((*table)->InsertDoubles(row).ok());
    }
    ASSERT_TRUE((*table)->EnsureZoneMap().ok());
    ASSERT_TRUE((*db)->Checkpoint().ok());
    ASSERT_TRUE((*db)->CompactInto(col_path_).ok());
    row_db_ = std::move(db).value();

    DatabaseOptions reopen;
    reopen.create_if_missing = false;
    auto col = Database::Open(col_path_, reopen);
    ASSERT_TRUE(col.ok()) << col.status().ToString();
    col_db_ = std::move(col).value();

    auto row_table = row_db_->GetTable("f");
    auto col_table = col_db_->GetTable("f");
    ASSERT_TRUE(row_table.ok());
    ASSERT_TRUE(col_table.ok());
    row_table_ = *row_table;
    col_table_ = *col_table;
    if (!rows.empty()) {
      ASSERT_NE(col_table_->columnar(), nullptr)
          << "compaction did not convert to columnar";
      EXPECT_EQ(col_table_->columnar()->row_count(), rows.size());
      EXPECT_EQ(col_table_->heap_meta().record_count, 0u);
    }
    ASSERT_TRUE(col_table_->EnsureZoneMap().ok());
  }

  /// All matching records (raw bytes, scan order) plus stats.
  static std::vector<std::string> Matches(const Table& table,
                                          const Predicate& predicate,
                                          const SeqScanOptions& options,
                                          ScanStats* stats) {
    std::vector<std::string> out;
    const size_t bytes = table.schema().num_columns() * 8;
    Status status = SeqScan(
        table, predicate,
        [&](const char* record, RecordId) {
          out.emplace_back(record, bytes);
          return Status::OK();
        },
        stats, options);
    EXPECT_TRUE(status.ok()) << status.ToString();
    return out;
  }

  /// Differential check of one predicate across both stores and every
  /// execution strategy (row-at-a-time, batch, batch+prune, parallel,
  /// count-only). The row store's plain batch scan is the oracle.
  void ExpectSameResults(const Predicate& predicate) {
    const SeqScanOptions kStrategies[] = {
        SeqScanOptions{/*batch=*/false, /*prune=*/false},
        SeqScanOptions{/*batch=*/true, /*prune=*/false},
        SeqScanOptions{/*batch=*/true, /*prune=*/true},
    };
    ScanStats oracle_stats;
    const std::vector<std::string> oracle =
        Matches(*row_table_, predicate, kStrategies[1], &oracle_stats);

    for (const SeqScanOptions& options : kStrategies) {
      for (Table* table : {row_table_, col_table_}) {
        const char* label = table == row_table_ ? "row" : "columnar";
        ScanStats stats;
        const std::vector<std::string> got =
            Matches(*table, predicate, options, &stats);
        ASSERT_EQ(got.size(), oracle.size())
            << label << " batch=" << options.batch
            << " prune=" << options.prune;
        for (size_t i = 0; i < got.size(); ++i) {
          ASSERT_EQ(got[i], oracle[i])
              << label << " record " << i << " differs (batch="
              << options.batch << " prune=" << options.prune << ")";
        }
        EXPECT_EQ(stats.rows_matched, oracle_stats.rows_matched) << label;
        // Every row is accounted for: scanned or pruned, never dropped.
        EXPECT_EQ(stats.rows_scanned + stats.rows_pruned,
                  row_table_->row_count())
            << label << " prune=" << options.prune;

        // A count-only scan (null callback) of the same strategy agrees
        // with the materializing scan's stats exactly.
        ScanStats count_stats;
        ASSERT_TRUE(
            SeqScan(*table, predicate, nullptr, &count_stats, options).ok());
        EXPECT_EQ(count_stats.rows_matched, stats.rows_matched) << label;
        EXPECT_EQ(count_stats.rows_scanned, stats.rows_scanned) << label;
        EXPECT_EQ(count_stats.rows_pruned, stats.rows_pruned) << label;
        EXPECT_EQ(count_stats.pages_scanned, stats.pages_scanned) << label;
        EXPECT_EQ(count_stats.pages_pruned, stats.pages_pruned) << label;
      }
    }

    // Parallel == serial on the columnar store, for every partitioning.
    ThreadPool pool(3);
    const size_t bytes = col_table_->schema().num_columns() * 8;
    for (const size_t partitions : {2u, 4u, 7u}) {
      std::vector<std::vector<std::string>> outs(partitions);
      ScanStats parallel_stats;
      ASSERT_TRUE(ParallelSeqScan(
                      *col_table_, predicate, &pool, partitions,
                      [&outs, bytes](size_t p) -> RowCallback {
                        auto* sink = &outs[p];
                        return [sink, bytes](const char* record, RecordId) {
                          sink->emplace_back(record, bytes);
                          return Status::OK();
                        };
                      },
                      &parallel_stats)
                      .ok());
      std::vector<std::string> merged;
      for (const auto& part : outs) {
        merged.insert(merged.end(), part.begin(), part.end());
      }
      ASSERT_EQ(merged, oracle) << partitions << " partitions";
      EXPECT_EQ(parallel_stats.rows_matched, oracle_stats.rows_matched);
    }
  }

  std::string row_path_, col_path_;
  std::unique_ptr<Database> row_db_, col_db_;
  Table* row_table_ = nullptr;
  Table* col_table_ = nullptr;
};

std::vector<std::vector<double>> SensorRows(size_t n, uint64_t seed = 11) {
  std::vector<std::vector<double>> rows;
  Rng rng(seed);
  double t = 0.0;
  for (size_t i = 0; i < n; ++i) {
    t += std::round(rng.Uniform(30.0, 90.0));
    rows.push_back(
        {t, std::round(rng.Uniform(-8.0, 8.0) * 100.0) / 100.0});
  }
  return rows;
}

TEST_F(ColumnarDifferentialTest, IdenticalResultsAcrossFormats) {
  Build(SensorRows(10000));
  for (const double bound : {-7.9, -3.0, 0.0, 3.0, 1e9}) {
    Predicate predicate;
    predicate.And(1, CmpOp::kLe, bound);
    ExpectSameResults(predicate);
  }
  Predicate conjunction;
  conjunction.And(0, CmpOp::kLe, 200000.0).And(1, CmpOp::kGe, 2.0);
  ExpectSameResults(conjunction);
  Predicate nothing;  // empty predicate: full scan
  ExpectSameResults(nothing);
}

TEST_F(ColumnarDifferentialTest, NanColumnsNeverMatchInEitherFormat) {
  // Every 7th dv is NaN; NaN fails every ordered comparison, in the
  // bitmap kernels and in the columnar decode path alike.
  std::vector<std::vector<double>> rows = SensorRows(5000, 13);
  for (size_t i = 0; i < rows.size(); i += 7) {
    rows[i][1] = kNaN;
  }
  Build(rows);
  ASSERT_NE(col_table_->columnar(), nullptr);
  EXPECT_NE(col_table_->columnar()->meta().segments[0].nan_mask & 2u, 0u)
      << "segment directory lost the NaN mask";
  for (const double bound : {-3.0, 0.0, 1e18}) {
    Predicate predicate;
    predicate.And(1, CmpOp::kLe, bound);
    ExpectSameResults(predicate);
    Predicate ge;
    ge.And(1, CmpOp::kGe, -bound);
    ExpectSameResults(ge);
  }
}

TEST_F(ColumnarDifferentialTest, SegmentBoundaryRowCounts) {
  // Exactly one full segment, a multiple, and one-past: the final short
  // (or single-row) segment must decode like any other.
  for (const size_t n :
       {ColumnStore::kMaxSegmentRows, 2 * ColumnStore::kMaxSegmentRows,
        ColumnStore::kMaxSegmentRows + 1, size_t{1}, size_t{1023}}) {
    SetUp();  // fresh paths per size
    Build(SensorRows(n, 17 + n));
    Predicate all;
    Predicate half;
    half.And(1, CmpOp::kLe, 0.0);
    ExpectSameResults(all);
    ExpectSameResults(half);
    TearDown();
  }
}

TEST_F(ColumnarDifferentialTest, EmptyTableCompactsAndScansClean) {
  Build({});
  Predicate predicate;
  predicate.And(0, CmpOp::kLe, 1.0);
  ScanStats stats;
  ASSERT_TRUE(SeqScan(*col_table_, predicate, nullptr, &stats).ok());
  EXPECT_EQ(stats.rows_scanned, 0u);
  EXPECT_EQ(stats.rows_matched, 0u);
  const Table::FormatBreakdown breakdown = col_table_->GetFormatBreakdown();
  EXPECT_EQ(breakdown.columnar_segments, 0u);
  EXPECT_EQ(breakdown.row_pages, 0u) << "empty table must own no heap pages";
}

TEST_F(ColumnarDifferentialTest, PrunedSegmentsAccountAllRows) {
  Build(SensorRows(12000, 19));
  Predicate impossible;
  impossible.And(0, CmpOp::kGt, 1e18);
  ScanStats stats;
  ASSERT_TRUE(SeqScan(*col_table_, impossible, nullptr, &stats).ok());
  const ColumnStore* store = col_table_->columnar();
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(stats.pages_pruned, store->page_count());
  EXPECT_EQ(stats.rows_pruned, store->row_count());
  EXPECT_EQ(stats.pages_scanned, 0u);
  EXPECT_EQ(stats.rows_matched, 0u);

  // And the planner's survey agrees with what the scan just did.
  const ColumnarSurvey survey =
      SurveyColumnarSegments(*store, impossible.conditions());
  EXPECT_EQ(survey.segments_surviving, 0u);
  EXPECT_EQ(survey.pages_total, store->page_count());
  EXPECT_EQ(survey.rows_total, store->row_count());
}

TEST_F(ColumnarDifferentialTest, PointReadsMatchAcrossFormats) {
  Build(SensorRows(9000, 23));
  const size_t bytes = row_table_->schema().num_columns() * 8;
  // Collect (record, id) pairs from both stores in scan order; the ids
  // differ (heap slots vs segment offsets) but the payloads must not.
  std::vector<std::pair<std::string, RecordId>> row_ids, col_ids;
  auto collect = [bytes](std::vector<std::pair<std::string, RecordId>>* out) {
    return [out, bytes](const char* record, RecordId id, bool* keep_going) {
      *keep_going = true;
      out->emplace_back(std::string(record, bytes), id);
      return Status::OK();
    };
  };
  ASSERT_TRUE(row_table_->Scan(collect(&row_ids)).ok());
  ASSERT_TRUE(col_table_->Scan(collect(&col_ids)).ok());
  ASSERT_EQ(row_ids.size(), col_ids.size());
  std::vector<char> buf(bytes);
  for (size_t i = 0; i < col_ids.size(); i += 97) {
    ASSERT_EQ(row_ids[i].first, col_ids[i].first) << "scan order diverged";
    // ReadRecord through the columnar RecordId returns the same bytes.
    ASSERT_TRUE(col_table_->ReadRecord(col_ids[i].second, buf.data()).ok());
    EXPECT_EQ(std::string(buf.data(), bytes), col_ids[i].first)
        << "point read " << i;
  }
}

TEST_F(ColumnarDifferentialTest, SqlEndToEndAgreesAcrossFormats) {
  Build(SensorRows(8000, 29));
  sql::Engine row_engine(row_db_.get());
  sql::Engine col_engine(col_db_.get());
  const char* kQueries[] = {
      "SELECT count(*) FROM f",
      "SELECT count(*) FROM f WHERE dv <= -3",
      "SELECT min(dv) FROM f WHERE dt <= 100000",
      "SELECT sum(dv) FROM f WHERE dv >= 2 AND dt <= 300000",
      "SELECT * FROM f WHERE dv <= -7.5 ORDER BY dt LIMIT 17",
  };
  // The stats comment line reports physical page counts, which
  // legitimately differ across formats; everything else must match.
  auto strip_stats = [](std::string text) {
    std::string out;
    size_t pos = 0;
    while (pos < text.size()) {
      const size_t eol = text.find('\n', pos);
      const size_t end = eol == std::string::npos ? text.size() : eol + 1;
      if (text.compare(pos, 9, "-- pages ") != 0) {
        out.append(text, pos, end - pos);
      }
      pos = end;
    }
    return out;
  };
  for (const char* query : kQueries) {
    auto row_result = row_engine.Execute(query);
    auto col_result = col_engine.Execute(query);
    ASSERT_TRUE(row_result.ok()) << query;
    ASSERT_TRUE(col_result.ok()) << query;
    EXPECT_EQ(strip_stats(sql::FormatResult(*row_result)),
              strip_stats(sql::FormatResult(*col_result)))
        << query;
  }
}

TEST_F(ColumnarDifferentialTest, ReopenRestoresSegmentDirectory) {
  Build(SensorRows(6000, 31));
  const ColumnStoreMeta before = col_table_->columnar()->meta();
  ASSERT_TRUE(col_db_->Checkpoint().ok());
  col_db_.reset();

  DatabaseOptions options;
  options.create_if_missing = false;
  auto reopened = Database::Open(col_path_, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto table = (*reopened)->GetTable("f");
  ASSERT_TRUE(table.ok());
  const ColumnStore* store = (*table)->columnar();
  ASSERT_NE(store, nullptr) << "catalog v3 lost the segment directory";
  const ColumnStoreMeta& after = store->meta();
  ASSERT_EQ(after.segments.size(), before.segments.size());
  EXPECT_EQ(after.row_count, before.row_count);
  EXPECT_EQ(after.page_count, before.page_count);
  EXPECT_EQ(after.encoded_bytes, before.encoded_bytes);
  for (size_t s = 0; s < after.segments.size(); ++s) {
    EXPECT_EQ(after.segments[s].first_page, before.segments[s].first_page);
    EXPECT_EQ(after.segments[s].rows, before.segments[s].rows);
    EXPECT_EQ(after.segments[s].nan_mask, before.segments[s].nan_mask);
    EXPECT_EQ(after.segments[s].min, before.segments[s].min);
    EXPECT_EQ(after.segments[s].max, before.segments[s].max);
  }
  ASSERT_TRUE((*table)->EnsureZoneMap().ok());
  ScanStats stats;
  ASSERT_TRUE(SeqScan(**table, Predicate{}, nullptr, &stats).ok());
  EXPECT_EQ(stats.rows_matched, before.row_count);
  col_db_ = std::move(reopened).value();
  col_table_ = *table;
}

// The PR 4 contract, re-proved on columnar pages: segment pruning must
// not mask corruption. A pruned segment's pages are still fetched — and
// checksum-verified — before the prune decision; only the decode is
// skipped. A flipped byte therefore fails the scan even under a
// predicate no row could ever match.
TEST_F(ColumnarDifferentialTest, PrunedCorruptColumnarPageStillDetected) {
  Build(SensorRows(10000, 37));
  const ColumnStore* store = col_table_->columnar();
  ASSERT_NE(store, nullptr);
  ASSERT_GE(store->segment_count(), 2u);
  const PageId victim = store->meta().segments[1].first_page;
  ASSERT_TRUE(col_db_->Checkpoint().ok());
  col_db_.reset();

  // Flip one byte inside the victim page's payload.
  {
    auto file = Vfs::Default()->OpenFile(col_path_, /*create=*/false);
    ASSERT_TRUE(file.ok());
    char b = 0;
    ASSERT_TRUE((*file)->Read(victim * kPageSize + 300, 1, &b).ok());
    b ^= 0x20;
    ASSERT_TRUE((*file)->Write(victim * kPageSize + 300, &b, 1).ok());
    ASSERT_TRUE((*file)->Sync().ok());
  }

  DatabaseOptions options;
  options.create_if_missing = false;
  auto db = Database::Open(col_path_, options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  (*db)->Abandon();  // keep the evidence on disk
  auto table = (*db)->GetTable("f");
  ASSERT_TRUE(table.ok());

  Predicate impossible;
  impossible.And(0, CmpOp::kGt, 1e18);  // every segment prunes
  Status status = SeqScan(**table, impossible, nullptr, nullptr);
  ASSERT_TRUE(status.IsCorruption())
      << "pruned columnar scan masked a corrupt page: " << status.ToString();
  EXPECT_NE(
      std::string(status.message()).find("page " + std::to_string(victim)),
      std::string::npos)
      << status.ToString();
  col_db_ = std::move(db).value();
}

}  // namespace
}  // namespace segdiff
