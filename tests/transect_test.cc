// Tests for TransectIndex (multi-sensor SegDiff) plus extent-allocation
// and simulated-latency behaviour of the storage layer.

#include <cstdio>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "test_paths.h"

#include "common/stopwatch.h"
#include "segdiff/transect_index.h"
#include "storage/extent.h"
#include "storage/pager.h"
#include "ts/generator.h"

namespace segdiff {
namespace {

class TransectTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = UniqueTestPath("segdiff_transect", "");
    Cleanup();
  }
  void TearDown() override { Cleanup(); }
  void Cleanup() {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);  // catalog + shard dirs + stores
  }
  std::string dir_;
};

TEST_F(TransectTest, BuildsAndSearchesAllSensors) {
  CadGeneratorOptions gen;
  gen.num_days = 3;
  gen.cad_events_per_day = 1.0;
  auto transect_data = GenerateCadTransect(gen, 3);
  ASSERT_TRUE(transect_data.ok());

  SegDiffOptions options;
  options.window_s = 4 * 3600.0;
  auto transect = TransectIndex::Open(dir_, 3, options);
  ASSERT_TRUE(transect.ok()) << transect.status().ToString();
  for (int s = 0; s < 3; ++s) {
    ASSERT_TRUE((*transect)
                    ->IngestSensorSeries(
                        s, (*transect_data)[static_cast<size_t>(s)].series)
                    .ok());
  }

  TransectSearchStats stats;
  auto hits = (*transect)->SearchDrops(3600.0, -3.0, {}, &stats);
  ASSERT_TRUE(hits.ok());
  ASSERT_FALSE(hits->empty());
  EXPECT_EQ(stats.pairs_returned, hits->size());
  // Hits ordered by sensor, and every sensor with events contributes.
  bool sensors_seen[3] = {false, false, false};
  int last_sensor = -1;
  for (const TransectHit& hit : *hits) {
    EXPECT_GE(hit.sensor, last_sensor);
    last_sensor = hit.sensor;
    ASSERT_LT(hit.sensor, 3);
    sensors_seen[hit.sensor] = true;
  }
  EXPECT_TRUE(sensors_seen[0]);
  EXPECT_TRUE(sensors_seen[1]);
  EXPECT_TRUE(sensors_seen[2]);

  // Per-sensor results match drilling down directly.
  auto sensor0 = (*transect)->sensor(0);
  ASSERT_TRUE(sensor0.ok());
  auto direct = (*sensor0)->SearchDrops(3600.0, -3.0);
  ASSERT_TRUE(direct.ok());
  size_t from_transect = 0;
  for (const TransectHit& hit : *hits) {
    if (hit.sensor == 0) ++from_transect;
  }
  EXPECT_EQ(from_transect, direct->size());

  auto sizes = (*transect)->GetSizes();
  ASSERT_TRUE(sizes.ok());
  EXPECT_GT(sizes->feature_rows, 0u);
  EXPECT_GT(sizes->feature_bytes, 0u);
  ASSERT_TRUE((*transect)->Checkpoint().ok());
  ASSERT_TRUE((*transect)->DropCaches().ok());
  auto again = (*transect)->SearchDrops(3600.0, -3.0);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->size(), hits->size());
}

TEST_F(TransectTest, JumpSearchFansOut) {
  CadGeneratorOptions gen;
  gen.num_days = 2;
  auto transect_data = GenerateCadTransect(gen, 2);
  ASSERT_TRUE(transect_data.ok());
  SegDiffOptions options;
  options.window_s = 4 * 3600.0;
  auto transect = TransectIndex::Open(dir_, 2, options);
  ASSERT_TRUE(transect.ok());
  for (int s = 0; s < 2; ++s) {
    ASSERT_TRUE((*transect)
                    ->IngestSensorSeries(
                        s, (*transect_data)[static_cast<size_t>(s)].series)
                    .ok());
  }
  auto jumps = (*transect)->SearchJumps(2 * 3600.0, 2.0);
  ASSERT_TRUE(jumps.ok());
  EXPECT_FALSE(jumps->empty());  // diurnal warming produces jumps
}

TEST_F(TransectTest, Validation) {
  EXPECT_TRUE(
      TransectIndex::Open(dir_, 0, SegDiffOptions{}).status()
          .IsInvalidArgument());
  auto transect = TransectIndex::Open(dir_, 2, SegDiffOptions{});
  ASSERT_TRUE(transect.ok());
  Series empty;
  EXPECT_TRUE((*transect)->IngestSensorSeries(-1, empty).IsInvalidArgument());
  EXPECT_TRUE((*transect)->IngestSensorSeries(2, empty).IsInvalidArgument());
  EXPECT_TRUE((*transect)->sensor(-1).status().IsInvalidArgument());
  EXPECT_TRUE((*transect)->sensor(2).status().IsInvalidArgument());
  EXPECT_TRUE((*transect)->sensor(1).ok());
}

class ExtentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = UniqueTestPath("segdiff_extent");
    std::remove(path_.c_str());
    auto pager = Pager::Open(path_, true);
    ASSERT_TRUE(pager.ok());
    pager_ = std::move(pager).value();
  }
  void TearDown() override {
    pager_.reset();
    std::remove(path_.c_str());
  }
  std::string path_;
  std::unique_ptr<Pager> pager_;
};

TEST_F(ExtentTest, PagesWithinExtentAreContiguous) {
  ExtentAllocator allocator(pager_.get());
  PageId prev = allocator.Allocate().value();
  int contiguous = 0;
  int total = 0;
  for (int i = 0; i < 200; ++i) {
    const PageId page = allocator.Allocate().value();
    contiguous += (page == prev + 1) ? 1 : 0;
    ++total;
    prev = page;
  }
  // With geometric extents up to 64 pages, jumps are rare.
  EXPECT_GT(contiguous, total - 8);
}

TEST_F(ExtentTest, TwoAllocatorsDoNotInterleaveWithinExtents) {
  ExtentAllocator a(pager_.get());
  ExtentAllocator b(pager_.get());
  // Alternate allocations; each allocator's pages must stay ordered and
  // never collide.
  std::vector<PageId> pages_a;
  std::vector<PageId> pages_b;
  for (int i = 0; i < 100; ++i) {
    pages_a.push_back(a.Allocate().value());
    pages_b.push_back(b.Allocate().value());
  }
  for (size_t i = 1; i < pages_a.size(); ++i) {
    EXPECT_GT(pages_a[i], pages_a[i - 1]);
    EXPECT_GT(pages_b[i], pages_b[i - 1]);
  }
  for (PageId page : pages_a) {
    for (PageId other : pages_b) {
      EXPECT_NE(page, other);
    }
  }
}

TEST_F(ExtentTest, SimulatedLatencyDistinguishesAccessPatterns) {
  // Allocate 64 pages, then time sequential vs strided cold reads.
  ExtentAllocator allocator(pager_.get(), /*max_extent_pages=*/64);
  std::vector<PageId> pages;
  for (int i = 0; i < 64; ++i) {
    pages.push_back(allocator.Allocate().value());
  }
  pager_->SetSimulatedReadLatency(/*seq_ns=*/1000, /*random_ns=*/200000);
  char buf[kPageSize];

  Stopwatch seq_watch;
  for (PageId page : pages) {
    ASSERT_TRUE(pager_->ReadPage(page, buf).ok());
  }
  const double seq_seconds = seq_watch.ElapsedSeconds();

  Stopwatch random_watch;
  for (size_t i = 0; i < pages.size(); i += 2) {
    ASSERT_TRUE(pager_->ReadPage(pages[i], buf).ok());
  }
  for (size_t i = 1; i < pages.size(); i += 2) {
    ASSERT_TRUE(pager_->ReadPage(pages[i], buf).ok());
  }
  const double random_seconds = random_watch.ElapsedSeconds();
  // 64 mostly-sequential reads ~ 64us + one seek; 64 strided reads pay
  // the 200us penalty every time.
  EXPECT_GT(random_seconds, 5 * seq_seconds);
}

}  // namespace
}  // namespace segdiff
