// Query governance end to end: deadline/cancellation primitives, the
// admission controller's FIFO semaphore semantics, cooperative
// cancellation inside the raw executors, the SegDiff/Exh governance
// shells (truncation contract, admission rejection, post-cancel store
// usability), the SQL statement timeout, and the cancel x fault matrix
// (a governed query racing injected IO failures must terminate cleanly
// and leave the store reusable).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>

#include <unistd.h>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "test_paths.h"

#include "common/admission.h"
#include "common/governance.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "query/executor.h"
#include "query/predicate.h"
#include "segdiff/exh_index.h"
#include "segdiff/segdiff_index.h"
#include "segdiff/transect_index.h"
#include "sql/engine.h"
#include "storage/db.h"
#include "storage/fault_vfs.h"
#include "storage/record.h"
#include "ts/generator.h"

namespace segdiff {
namespace {

// ---------------------------------------------------------------------
// Primitives

TEST(DeadlineTest, DefaultIsInfinite) {
  Deadline d;
  EXPECT_TRUE(d.infinite());
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_millis(), 1e12);
}

TEST(DeadlineTest, ZeroMillisecondsIsExpired) {
  Deadline d = Deadline::AfterMillis(0);
  EXPECT_FALSE(d.infinite());
  EXPECT_TRUE(d.expired());
  EXPECT_LE(d.remaining_millis(), 0.0);
}

TEST(DeadlineTest, EarlierPicksTheTighterDeadline) {
  Deadline loose = Deadline::AfterMillis(60000);
  Deadline tight = Deadline::AfterMillis(1);
  EXPECT_EQ(Deadline::Earlier(loose, tight).time_point(),
            tight.time_point());
  EXPECT_EQ(Deadline::Earlier(tight, loose).time_point(),
            tight.time_point());
  // Infinite is the identity.
  EXPECT_EQ(Deadline::Earlier(Deadline::Infinite(), tight).time_point(),
            tight.time_point());
}

TEST(CancellationTest, DefaultTokenNeverCancels) {
  CancellationToken token;
  EXPECT_FALSE(token.cancelled());
}

TEST(CancellationTest, SourceCancelIsVisibleThroughEveryToken) {
  CancellationSource source;
  CancellationToken a = source.token();
  CancellationToken b = source.token();
  EXPECT_FALSE(a.cancelled());
  source.Cancel();
  EXPECT_TRUE(a.cancelled());
  EXPECT_TRUE(b.cancelled());
  EXPECT_TRUE(source.cancelled());
}

TEST(MemoryBudgetTest, ChargesWithinLimitAndTracksPeak) {
  MemoryBudget budget(100);
  EXPECT_TRUE(budget.Charge(60));
  EXPECT_TRUE(budget.Charge(40));
  EXPECT_EQ(budget.used(), 100u);
  EXPECT_EQ(budget.peak(), 100u);
  EXPECT_FALSE(budget.breached());
  budget.Release(50);
  EXPECT_EQ(budget.used(), 50u);
  EXPECT_EQ(budget.peak(), 100u);  // peak is a high-water mark
}

TEST(MemoryBudgetTest, BreachRollsBackAndLatches) {
  MemoryBudget budget(100);
  EXPECT_TRUE(budget.Charge(90));
  EXPECT_FALSE(budget.Charge(20));  // would exceed: not applied
  EXPECT_EQ(budget.used(), 90u);
  EXPECT_TRUE(budget.breached());
  EXPECT_TRUE(budget.Exceeded().IsResourceExhausted());
}

TEST(MemoryBudgetTest, UnlimitedStillTracksUsage) {
  MemoryBudget budget;
  EXPECT_TRUE(budget.unlimited());
  EXPECT_TRUE(budget.Charge(1u << 30));
  EXPECT_FALSE(budget.breached());
  EXPECT_EQ(budget.peak(), uint64_t{1} << 30);
}

TEST(QueryContextTest, CheckMapsStateToStatus) {
  QueryContext ok_ctx;
  EXPECT_TRUE(ok_ctx.Check().ok());

  CancellationSource source;
  QueryContext cancel_ctx;
  cancel_ctx.cancel = source.token();
  EXPECT_TRUE(cancel_ctx.Check().ok());
  source.Cancel();
  EXPECT_TRUE(cancel_ctx.Check().IsCancelled());

  QueryContext deadline_ctx;
  deadline_ctx.deadline = Deadline::AfterMillis(0);
  EXPECT_TRUE(deadline_ctx.Check().IsDeadlineExceeded());
}

TEST(FirstErrorCollectorTest, KeepsTheFirstError) {
  FirstErrorCollector errors;
  EXPECT_FALSE(errors.failed());
  errors.Record(Status::OK());
  EXPECT_FALSE(errors.failed());
  errors.Record(Status::IOError("first"));
  errors.Record(Status::Internal("second"));
  EXPECT_TRUE(errors.failed());
  EXPECT_TRUE(errors.status().IsIOError());
}

TEST(FirstErrorCollectorTest, SafeUnderConcurrentRecords) {
  FirstErrorCollector errors;
  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&errors, i] {
      for (int j = 0; j < 100; ++j) {
        errors.Record(j % 2 == 0
                          ? Status::OK()
                          : Status::IOError("thread " + std::to_string(i)));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_TRUE(errors.failed());
  EXPECT_TRUE(errors.status().IsIOError());
}

// ---------------------------------------------------------------------
// AdmissionController

TEST(AdmissionControllerTest, UncontendedAdmitIsImmediate) {
  AdmissionOptions opts;
  opts.max_concurrent = 2;
  opts.max_queue = 2;
  AdmissionController controller(opts);
  QueryContext ctx;
  auto t1 = controller.Admit(ctx);
  auto t2 = controller.Admit(ctx);
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  EXPECT_TRUE(t1->admitted());
  EXPECT_EQ(controller.active(), 2u);
  t1->Release();
  EXPECT_EQ(controller.active(), 1u);
  const GovernanceCounters counters = controller.counters();
  EXPECT_EQ(counters.admitted, 2u);
  EXPECT_EQ(counters.queued, 0u);
}

TEST(AdmissionControllerTest, QueueFullRejectsFastWithRetryHint) {
  AdmissionOptions opts;
  opts.max_concurrent = 1;
  opts.max_queue = 1;
  AdmissionController controller(opts);
  QueryContext ctx;
  auto held = controller.Admit(ctx);
  ASSERT_TRUE(held.ok());

  // One waiter is allowed to queue...
  std::atomic<bool> waiter_admitted{false};
  std::thread waiter([&] {
    auto ticket = controller.Admit(ctx);
    EXPECT_TRUE(ticket.ok());
    waiter_admitted.store(true);
  });
  while (controller.waiting() == 0) {
    std::this_thread::yield();
  }

  // ...the next query is refused immediately, with a retry hint.
  auto rejected = controller.Admit(ctx);
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsResourceExhausted());
  EXPECT_NE(rejected.status().ToString().find("retry"), std::string::npos);

  held->Release();  // frees the slot; the queued waiter gets it
  waiter.join();
  EXPECT_TRUE(waiter_admitted.load());
  const GovernanceCounters counters = controller.counters();
  EXPECT_EQ(counters.admitted, 2u);
  EXPECT_EQ(counters.queued, 1u);
  EXPECT_EQ(counters.rejected, 1u);
}

TEST(AdmissionControllerTest, QueuedWaiterHonoursCancellation) {
  AdmissionOptions opts;
  opts.max_concurrent = 1;
  opts.max_queue = 4;
  AdmissionController controller(opts);
  QueryContext ctx;
  auto held = controller.Admit(ctx);
  ASSERT_TRUE(held.ok());

  CancellationSource source;
  QueryContext cancellable;
  cancellable.cancel = source.token();
  Status seen;
  std::thread waiter([&] {
    auto ticket = controller.Admit(cancellable);
    seen = ticket.status();
  });
  while (controller.waiting() == 0) {
    std::this_thread::yield();
  }
  source.Cancel();
  waiter.join();
  EXPECT_TRUE(seen.IsCancelled());
  EXPECT_EQ(controller.waiting(), 0u);  // the abandoned seq left the queue
}

TEST(AdmissionControllerTest, QueuedWaiterHonoursDeadline) {
  AdmissionOptions opts;
  opts.max_concurrent = 1;
  opts.max_queue = 4;
  AdmissionController controller(opts);
  QueryContext ctx;
  auto held = controller.Admit(ctx);
  ASSERT_TRUE(held.ok());

  QueryContext deadline_ctx;
  deadline_ctx.deadline = Deadline::AfterMillis(30);
  auto ticket = controller.Admit(deadline_ctx);
  ASSERT_FALSE(ticket.ok());
  EXPECT_TRUE(ticket.status().IsDeadlineExceeded());
  EXPECT_EQ(controller.waiting(), 0u);
}

TEST(AdmissionControllerTest, HighPriorityGetsDeeperQueue) {
  AdmissionOptions opts;
  opts.max_concurrent = 1;
  opts.max_queue = 1;
  AdmissionController controller(opts);
  QueryContext ctx;
  auto held = controller.Admit(ctx);
  ASSERT_TRUE(held.ok());

  CancellationSource source;
  QueryContext cancellable;
  cancellable.cancel = source.token();
  std::vector<std::thread> waiters;
  std::atomic<int> cancelled_count{0};
  waiters.emplace_back([&] {
    auto t = controller.Admit(cancellable);
    if (!t.ok() && t.status().IsCancelled()) ++cancelled_count;
  });
  while (controller.waiting() < 1) {
    std::this_thread::yield();
  }
  // Normal priority: queue (depth 1) is full.
  EXPECT_TRUE(controller.Admit(ctx).status().IsResourceExhausted());
  // High priority: allowed to wait at twice the depth.
  waiters.emplace_back([&] {
    auto t = controller.Admit(cancellable, QueryPriority::kHigh);
    if (!t.ok() && t.status().IsCancelled()) ++cancelled_count;
  });
  while (controller.waiting() < 2) {
    std::this_thread::yield();
  }
  source.Cancel();
  for (std::thread& t : waiters) t.join();
  EXPECT_EQ(cancelled_count.load(), 2);
}

TEST(AdmissionControllerTest, ClampThreadsRespectsPerQueryCap) {
  AdmissionOptions opts;
  opts.max_concurrent = 4;
  opts.max_queue = 4;
  opts.max_threads_per_query = 3;
  AdmissionController controller(opts);
  EXPECT_EQ(controller.ClampThreads(8), 3u);
  EXPECT_EQ(controller.ClampThreads(2), 2u);
  EXPECT_EQ(controller.ClampThreads(0), 3u);  // 0 = as many as allowed
}

TEST(AdmissionControllerTest, UnlimitedModeNeverBlocksOrRejects) {
  AdmissionOptions opts;
  opts.unlimited = true;
  AdmissionController controller(opts);
  QueryContext ctx;
  std::vector<AdmissionController::Ticket> tickets;
  for (int i = 0; i < 64; ++i) {
    auto ticket = controller.Admit(ctx);
    ASSERT_TRUE(ticket.ok());
    tickets.push_back(std::move(*ticket));
  }
  EXPECT_EQ(controller.counters().admitted, 64u);
  EXPECT_EQ(controller.counters().rejected, 0u);
}

// ---------------------------------------------------------------------
// Raw executor cancellation

class ScanGovernanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = UniqueTestPath("segdiff_scan_governance");
    std::remove(path_.c_str());
    auto db = Database::Open(path_, DatabaseOptions{});
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    auto schema = DoubleSchema({"dt", "dv"});
    ASSERT_TRUE(schema.ok());
    auto table = db_->CreateTable("f", *schema);
    ASSERT_TRUE(table.ok());
    table_ = *table;
    ASSERT_TRUE(table_->CreateIndex("ptdv", {"dt", "dv"}).ok());
    Rng rng(7);
    for (int i = 0; i < 4000; ++i) {
      ASSERT_TRUE(
          table_->InsertDoubles({rng.Uniform(0, 100), rng.Uniform(-10, 10)})
              .ok());
    }
  }
  void TearDown() override {
    db_.reset();
    std::remove(path_.c_str());
  }

  std::string path_;
  std::unique_ptr<Database> db_;
  Table* table_ = nullptr;
};

TEST_F(ScanGovernanceTest, SeqScanStopsWhenPreCancelled) {
  CancellationSource source;
  source.Cancel();
  QueryContext ctx;
  ctx.cancel = source.token();
  SeqScanOptions options;
  options.context = &ctx;
  uint64_t rows = 0;
  Status status = SeqScan(
      *table_, Predicate::True(),
      [&rows](const char*, RecordId) {
        ++rows;
        return Status::OK();
      },
      nullptr, options);
  EXPECT_TRUE(status.IsCancelled());
  EXPECT_EQ(rows, 0u);  // cancelled before the first page
}

TEST_F(ScanGovernanceTest, SeqScanStopsWithinOnePageOfMidScanCancel) {
  CancellationSource source;
  QueryContext ctx;
  ctx.cancel = source.token();
  SeqScanOptions options;
  options.context = &ctx;
  uint64_t rows = 0;
  Status status = SeqScan(
      *table_, Predicate::True(),
      [&](const char*, RecordId) {
        if (++rows == 100) {
          source.Cancel();
        }
        return Status::OK();
      },
      nullptr, options);
  EXPECT_TRUE(status.IsCancelled());
  EXPECT_LT(rows, 4000u);  // stopped long before the table ended
}

TEST_F(ScanGovernanceTest, SeqScanHonoursExpiredDeadline) {
  QueryContext ctx;
  ctx.deadline = Deadline::AfterMillis(0);
  SeqScanOptions options;
  options.context = &ctx;
  Status status = SeqScan(
      *table_, Predicate::True(),
      [](const char*, RecordId) { return Status::OK(); }, nullptr, options);
  EXPECT_TRUE(status.IsDeadlineExceeded());
}

TEST_F(ScanGovernanceTest, IndexScanHonoursCancellation) {
  CancellationSource source;
  source.Cancel();
  QueryContext ctx;
  ctx.cancel = source.token();
  IndexScanSpec spec;
  spec.context = &ctx;
  spec.index = table_->indexes().front().tree.get();
  IndexKey lower;
  for (int i = 0; i < kMaxIndexArity; ++i) {
    lower.vals[i] = -1e30;
  }
  lower.rid = 0;
  spec.lower = lower;
  spec.key_continue = [](const IndexKey&) { return true; };
  Status status = IndexScan(
      *table_, spec, Predicate::True(),
      [](const char*, RecordId) { return Status::OK(); }, nullptr);
  EXPECT_TRUE(status.IsCancelled());
}

TEST_F(ScanGovernanceTest, ParallelSeqScanPropagatesCancellation) {
  ThreadPool pool(3);
  CancellationSource source;
  source.Cancel();
  QueryContext ctx;
  ctx.cancel = source.token();
  SeqScanOptions options;
  options.context = &ctx;
  Status status = ParallelSeqScan(
      *table_, Predicate::True(), &pool, 8,
      [](size_t) {
        return [](const char*, RecordId) { return Status::OK(); };
      },
      nullptr, options);
  EXPECT_TRUE(status.IsCancelled());
}

TEST_F(ScanGovernanceTest, GovernedParallelForReportsFirstError) {
  ThreadPool pool(3);
  Status status =
      pool.ParallelFor(64, nullptr, [](size_t i) -> Status {
        if (i == 13) {
          return Status::IOError("injected");
        }
        return Status::OK();
      });
  EXPECT_TRUE(status.IsIOError());
}

// ---------------------------------------------------------------------
// SegDiff / Exh governance shells

class SegDiffGovernanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = UniqueTestPath("segdiff_governance");
    std::remove(path_.c_str());
    CadGeneratorOptions gen;
    gen.num_days = 4;
    gen.cad_events_per_day = 2.0;
    auto data = GenerateCadSeries(gen);
    ASSERT_TRUE(data.ok());
    series_ = std::move(data->series);
  }
  void TearDown() override { std::remove(path_.c_str()); }

  Result<std::unique_ptr<SegDiffIndex>> OpenStore(
      const SegDiffOptions& options) {
    return SegDiffIndex::Open(path_, options);
  }

  std::string path_;
  Series series_;
};

TEST_F(SegDiffGovernanceTest, ExpiredDeadlineFailsAndStoreStaysUsable) {
  SegDiffOptions options;
  options.eps = 0.2;
  options.window_s = 4 * 3600.0;
  auto store = OpenStore(options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ASSERT_TRUE((*store)->IngestSeries(series_).ok());

  SearchOptions governed;
  governed.deadline = Deadline::AfterMillis(0);
  auto failed = (*store)->SearchDrops(3600.0, -1.0, governed);
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE(failed.status().IsDeadlineExceeded());
  EXPECT_GE((*store)->admission_controller()->counters().deadline_exceeded,
            1u);

  // The failed query released everything: an ungoverned search succeeds.
  auto baseline = (*store)->SearchDrops(3600.0, -1.0);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
}

TEST_F(SegDiffGovernanceTest, PreCancelledSearchReturnsCancelled) {
  SegDiffOptions options;
  options.window_s = 4 * 3600.0;
  auto store = OpenStore(options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->IngestSeries(series_).ok());

  CancellationSource source;
  source.Cancel();
  SearchOptions governed;
  governed.cancel = source.token();
  for (QueryMode mode :
       {QueryMode::kSeqScan, QueryMode::kIndexScan, QueryMode::kAuto}) {
    governed.mode = mode;
    auto result = (*store)->SearchDrops(3600.0, -1.0, governed);
    ASSERT_FALSE(result.ok());
    EXPECT_TRUE(result.status().IsCancelled());
  }
  EXPECT_GE((*store)->admission_controller()->counters().cancelled, 3u);
  auto baseline = (*store)->SearchDrops(3600.0, -1.0);
  EXPECT_TRUE(baseline.ok());
}

TEST_F(SegDiffGovernanceTest, GovernedSearchMatchesUngovernedResults) {
  SegDiffOptions options;
  options.window_s = 4 * 3600.0;
  auto store = OpenStore(options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->IngestSeries(series_).ok());

  auto baseline = (*store)->SearchDrops(3600.0, -1.0);
  ASSERT_TRUE(baseline.ok());

  SearchOptions governed;
  governed.deadline_ms = 60000;
  governed.max_result_bytes = 64u << 20;
  SearchStats stats;
  auto result = (*store)->SearchDrops(3600.0, -1.0, governed, &stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(*result, *baseline);
  EXPECT_FALSE(stats.truncated);
  EXPECT_GT(stats.result_bytes_peak, 0u);
}

TEST_F(SegDiffGovernanceTest, BudgetBreachTruncatesExplicitly) {
  SegDiffOptions options;
  options.window_s = 4 * 3600.0;
  auto store = OpenStore(options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->IngestSeries(series_).ok());

  // A permissive drop query returns plenty of pairs ungoverned...
  auto baseline = (*store)->SearchDrops(4 * 3600.0, -0.5);
  ASSERT_TRUE(baseline.ok());
  ASSERT_GT(baseline->size(), 4u);

  // ...so a two-pair budget must breach. With a stats out-param the
  // search keeps the partial results and flags them.
  SearchOptions governed;
  governed.max_result_bytes = 2 * sizeof(PairId);
  SearchStats stats;
  auto truncated = (*store)->SearchDrops(4 * 3600.0, -0.5, governed, &stats);
  ASSERT_TRUE(truncated.ok()) << truncated.status().ToString();
  EXPECT_TRUE(stats.truncated);
  EXPECT_LT(truncated->size(), baseline->size());
  EXPECT_GE((*store)->admission_controller()->counters().truncated, 1u);

  // Without one there is nowhere to surface the flag: explicit failure,
  // never a silently shortened result.
  auto failed = (*store)->SearchDrops(4 * 3600.0, -0.5, governed);
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE(failed.status().IsResourceExhausted());
}

TEST_F(SegDiffGovernanceTest, SaturatedAdmissionRejectsFast) {
  SegDiffOptions options;
  options.window_s = 4 * 3600.0;
  options.admission.max_concurrent = 1;
  options.admission.max_queue = 1;
  auto store = OpenStore(options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->IngestSeries(series_).ok());

  AdmissionController* controller = (*store)->admission_controller();
  QueryContext ctx;
  auto slot = controller->Admit(ctx);  // occupy the only slot
  ASSERT_TRUE(slot.ok());

  std::thread queued([&] {
    // Queues behind the held slot, then runs once the slot frees.
    auto result = (*store)->SearchDrops(3600.0, -1.0);
    EXPECT_TRUE(result.ok());
  });
  while (controller->waiting() == 0) {
    std::this_thread::yield();
  }

  auto rejected = (*store)->SearchDrops(3600.0, -1.0);
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsResourceExhausted());
  EXPECT_GE(controller->counters().rejected, 1u);

  slot->Release();
  queued.join();
}

TEST_F(SegDiffGovernanceTest, ConcurrentGovernedSearchesAgree) {
  SegDiffOptions options;
  options.window_s = 4 * 3600.0;
  auto store = OpenStore(options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->IngestSeries(series_).ok());

  auto baseline = (*store)->SearchDrops(3600.0, -1.0);
  ASSERT_TRUE(baseline.ok());

  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<int> ok_count{0};
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&store, &baseline, &ok_count, i] {
      SearchOptions governed;
      governed.deadline_ms = 60000;
      governed.num_threads = (i % 2 == 0) ? 2 : 0;
      auto result = (*store)->SearchDrops(3600.0, -1.0, governed);
      if (result.ok() && *result == *baseline) {
        ++ok_count;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(ok_count.load(), kThreads);
}

TEST_F(SegDiffGovernanceTest, TransectSharesOneDeadlineAcrossSensors) {
  const std::string dir = UniqueTestPath("segdiff_transect_governance");
  // A transect store is a directory; scrub any leftovers from a previous
  // (possibly crashed) run so ingest starts from an empty store.
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  SegDiffOptions options;
  options.window_s = 4 * 3600.0;
  auto transect = TransectIndex::Open(dir, 3, options);
  ASSERT_TRUE(transect.ok()) << transect.status().ToString();
  for (int s = 0; s < 3; ++s) {
    ASSERT_TRUE((*transect)->IngestSensorSeries(s, series_).ok());
  }

  SearchOptions governed;
  governed.deadline = Deadline::AfterMillis(0);
  auto failed = (*transect)->SearchDrops(3600.0, -1.0, governed);
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE(failed.status().IsDeadlineExceeded());

  auto baseline = (*transect)->SearchDrops(3600.0, -1.0);
  EXPECT_TRUE(baseline.ok());
}

TEST(ExhGovernanceTest, ShellAppliesDeadlineAndTruncationContract) {
  const std::string path = UniqueTestPath("segdiff_exh_governance");
  std::remove(path.c_str());
  CadGeneratorOptions gen;
  gen.num_days = 1;
  auto data = GenerateCadSeries(gen);
  ASSERT_TRUE(data.ok());

  ExhOptions options;
  options.window_s = 2 * 3600.0;
  auto store = ExhIndex::Open(path, options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ASSERT_TRUE((*store)->IngestSeries(data->series).ok());

  SearchOptions expired;
  expired.deadline = Deadline::AfterMillis(0);
  auto failed = (*store)->SearchDrops(3600.0, -1.0, expired);
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE(failed.status().IsDeadlineExceeded());

  auto baseline = (*store)->SearchDrops(3600.0, -0.1);
  ASSERT_TRUE(baseline.ok());
  ASSERT_GT(baseline->size(), 2u);

  SearchOptions budgeted;
  budgeted.max_result_bytes = sizeof(ExhEvent);
  SearchStats stats;
  auto truncated = (*store)->SearchDrops(3600.0, -0.1, budgeted, &stats);
  ASSERT_TRUE(truncated.ok()) << truncated.status().ToString();
  EXPECT_TRUE(stats.truncated);
  EXPECT_LT(truncated->size(), baseline->size());

  auto no_stats = (*store)->SearchDrops(3600.0, -0.1, budgeted);
  ASSERT_FALSE(no_stats.ok());
  EXPECT_TRUE(no_stats.status().IsResourceExhausted());

  std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// SQL statement timeout

TEST(SqlGovernanceTest, SetStatementTimeoutIsParsedAndApplied) {
  const std::string path = UniqueTestPath("segdiff_sql_governance");
  std::remove(path.c_str());
  auto db = Database::Open(path, DatabaseOptions{});
  ASSERT_TRUE(db.ok());
  sql::Engine engine(db->get());

  ASSERT_TRUE((*db)->CreateTable("f", *DoubleSchema({"dt", "dv"})).ok());
  ASSERT_TRUE(engine.Execute("INSERT INTO f VALUES (1, -2)").ok());

  EXPECT_TRUE(engine.Execute("SET statement_timeout_ms = 250;").ok());
  EXPECT_EQ(engine.statement_timeout_ms(), 250u);
  EXPECT_TRUE(engine.Execute("set STATEMENT_TIMEOUT_MS = 0").ok());
  EXPECT_EQ(engine.statement_timeout_ms(), 0u);
  // Malformed variants fall through to the SQL parser and fail there.
  EXPECT_FALSE(engine.Execute("SET statement_timeout_ms = abc").ok());

  // A generous timeout leaves results unchanged.
  engine.set_statement_timeout_ms(60000);
  auto result = engine.Execute("SELECT * FROM f WHERE dv <= 0");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.size(), 1u);

  db->reset();
  std::remove(path.c_str());
}

TEST(SqlGovernanceTest, InjectedContextCancelsStatements) {
  const std::string path = UniqueTestPath("segdiff_sql_cancel");
  std::remove(path.c_str());
  auto db = Database::Open(path, DatabaseOptions{});
  ASSERT_TRUE(db.ok());
  sql::Engine engine(db->get());
  ASSERT_TRUE((*db)->CreateTable("f", *DoubleSchema({"dt", "dv"})).ok());
  ASSERT_TRUE(engine.Execute("INSERT INTO f VALUES (1, -2)").ok());

  CancellationSource source;
  QueryContext ctx;
  ctx.cancel = source.token();
  engine.set_query_context(ctx);
  source.Cancel();
  auto cancelled = engine.Execute("SELECT * FROM f WHERE dv <= 0");
  ASSERT_FALSE(cancelled.ok());
  EXPECT_TRUE(cancelled.status().IsCancelled());

  // Deterministic deadline expiry through the injected context.
  QueryContext expired;
  expired.deadline = Deadline::AfterMillis(0);
  engine.set_query_context(expired);
  auto timed_out = engine.Execute("SELECT * FROM f WHERE dv <= 0");
  ASSERT_FALSE(timed_out.ok());
  EXPECT_TRUE(timed_out.status().IsDeadlineExceeded());

  engine.set_query_context(QueryContext{});
  EXPECT_TRUE(engine.Execute("SELECT * FROM f WHERE dv <= 0").ok());

  db->reset();
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Cancel x fault-injection matrix

class CancelFaultMatrixTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = UniqueTestPath("segdiff_cancel_fault");
    std::remove(path_.c_str());
    CadGeneratorOptions gen;
    gen.num_days = 2;
    gen.cad_events_per_day = 2.0;
    auto data = GenerateCadSeries(gen);
    ASSERT_TRUE(data.ok());
    series_ = std::move(data->series);
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
  Series series_;
};

TEST_F(CancelFaultMatrixTest, GovernedSearchSurvivesInjectedReadFailures) {
  FaultInjectionVfs fault_vfs;
  SegDiffOptions options;
  options.window_s = 4 * 3600.0;
  options.vfs = &fault_vfs;
  auto store = SegDiffIndex::Open(path_, options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ASSERT_TRUE((*store)->IngestSeries(series_).ok());
  ASSERT_TRUE((*store)->Checkpoint().ok());

  auto reference = (*store)->SearchDrops(3600.0, -1.0);
  ASSERT_TRUE(reference.ok());

  // Matrix: {pre-cancelled, not cancelled} x {reads fail immediately,
  // after 5, after 50}. Every combination must terminate with a clean
  // terminal status and leave the store reusable after Reset().
  for (const bool pre_cancel : {true, false}) {
    for (const int64_t fail_after : {int64_t{0}, int64_t{5}, int64_t{50}}) {
      SCOPED_TRACE("pre_cancel=" + std::to_string(pre_cancel) +
                   " fail_after=" + std::to_string(fail_after));
      ASSERT_TRUE((*store)->DropCaches().ok());  // force real page reads
      fault_vfs.FailAfterReads(fail_after);

      CancellationSource source;
      if (pre_cancel) {
        source.Cancel();
      }
      SearchOptions governed;
      governed.cancel = source.token();
      governed.deadline_ms = 30000;
      auto result = (*store)->SearchDrops(3600.0, -1.0, governed);
      if (pre_cancel) {
        // Cancellation is checked before any scan touches storage.
        ASSERT_FALSE(result.ok());
        EXPECT_TRUE(result.status().IsCancelled());
      } else if (!result.ok()) {
        // The injected fault won the race: it must surface as the
        // injected IOError (possibly quarantine-wrapped), nothing else.
        EXPECT_TRUE(result.status().IsIOError() ||
                    result.status().IsCorruption())
            << result.status().ToString();
      }

      // The failure left no pinned pages or poisoned state behind: with
      // faults cleared, the same query returns the reference results.
      fault_vfs.FailAfterReads(-1);
      auto healed = (*store)->SearchDrops(3600.0, -1.0);
      ASSERT_TRUE(healed.ok()) << healed.status().ToString();
      EXPECT_EQ(*healed, *reference);
    }
  }
}

TEST_F(CancelFaultMatrixTest, ParallelGovernedSearchUnderFaults) {
  FaultInjectionVfs fault_vfs;
  SegDiffOptions options;
  options.window_s = 4 * 3600.0;
  options.vfs = &fault_vfs;
  auto store = SegDiffIndex::Open(path_, options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->IngestSeries(series_).ok());
  auto reference = (*store)->SearchDrops(3600.0, -1.0);
  ASSERT_TRUE(reference.ok());

  ASSERT_TRUE((*store)->DropCaches().ok());
  fault_vfs.FailAfterReads(10);
  SearchOptions governed;
  governed.num_threads = 4;
  governed.fused_scan = true;
  auto result = (*store)->SearchDrops(3600.0, -1.0, governed);
  if (!result.ok()) {
    EXPECT_TRUE(result.status().IsIOError() ||
                result.status().IsCorruption())
        << result.status().ToString();
  }

  fault_vfs.FailAfterReads(-1);
  auto healed = (*store)->SearchDrops(3600.0, -1.0);
  ASSERT_TRUE(healed.ok()) << healed.status().ToString();
  EXPECT_EQ(*healed, *reference);
}

TEST(FaultVfsConcurrencyTest, CountdownIsExactUnderContention) {
  FaultInjectionVfs fault_vfs;
  const std::string path = UniqueTestPath("segdiff_fault_concurrency");
  std::remove(path.c_str());
  auto file = fault_vfs.OpenFile(path, /*create=*/true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Write(0, "0123456789abcdef", 16).ok());

  // 8 threads race 400 reads through a countdown of 100: exactly 100
  // succeed no matter the interleaving (the CAS loop hands out slots).
  fault_vfs.FailAfterReads(100);
  std::atomic<int> successes{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      char buf[1];
      for (int i = 0; i < 50; ++i) {
        if ((*file)->Read(0, 1, buf).ok()) {
          ++successes;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(successes.load(), 100);
  const FaultInjectionVfs::Counters counters = fault_vfs.counters();
  EXPECT_EQ(counters.reads, 100u);
  EXPECT_EQ(counters.injected_failures, 300u);

  file->reset();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace segdiff
