// Parallel == serial, bit for bit: SearchDrops/SearchJumps with
// num_threads = 4 must return byte-identical (sorted, deduplicated)
// results AND identical SearchStats across every query mode, for both
// the SegDiff index and the Exh baseline. Also covers the raw
// ParallelSeqScan executor against its serial counterpart.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "test_paths.h"

#include "common/random.h"
#include "common/thread_pool.h"
#include "query/executor.h"
#include "query/predicate.h"
#include "segdiff/exh_index.h"
#include "segdiff/segdiff_index.h"
#include "segdiff/transect_index.h"
#include "storage/db.h"
#include "storage/record.h"
#include "ts/generator.h"

namespace segdiff {
namespace {

void ExpectSameStats(const SearchStats& serial, const SearchStats& parallel) {
  EXPECT_EQ(serial.scan.rows_scanned, parallel.scan.rows_scanned);
  EXPECT_EQ(serial.scan.index_entries_scanned,
            parallel.scan.index_entries_scanned);
  EXPECT_EQ(serial.queries_issued, parallel.queries_issued);
  EXPECT_EQ(serial.pairs_returned, parallel.pairs_returned);
}

class ParallelQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = UniqueTestPath("segdiff_parallel_query");
    std::remove(path_.c_str());
    CadGeneratorOptions gen;
    gen.num_days = 4;
    gen.cad_events_per_day = 2.0;
    auto data = GenerateCadSeries(gen);
    ASSERT_TRUE(data.ok());
    series_ = std::move(data->series);
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
  Series series_;
};

TEST_F(ParallelQueryTest, SegDiffParallelMatchesSerialAcrossModes) {
  SegDiffOptions options;
  options.eps = 0.2;
  options.window_s = 4 * 3600.0;
  auto index = SegDiffIndex::Open(path_, options);
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  ASSERT_TRUE((*index)->IngestSeries(series_).ok());

  struct ModeCase {
    const char* name;
    QueryMode mode;
    bool fused;
  };
  const ModeCase cases[] = {
      {"seq", QueryMode::kSeqScan, false},
      {"fused", QueryMode::kSeqScan, true},
      {"index", QueryMode::kIndexScan, false},
      {"auto", QueryMode::kAuto, false},
  };
  const double T = 3600.0;
  for (const ModeCase& c : cases) {
    SCOPED_TRACE(c.name);
    SearchOptions serial;
    serial.mode = c.mode;
    serial.fused_scan = c.fused;
    serial.num_threads = 0;
    SearchOptions parallel = serial;
    parallel.num_threads = 4;

    for (const double V : {-1.0, -3.0}) {
      SearchStats serial_stats, parallel_stats;
      auto a = (*index)->SearchDrops(T, V, serial, &serial_stats);
      auto b = (*index)->SearchDrops(T, V, parallel, &parallel_stats);
      ASSERT_TRUE(a.ok()) << a.status().ToString();
      ASSERT_TRUE(b.ok()) << b.status().ToString();
      EXPECT_FALSE(a->empty());  // the workload must exercise the path
      EXPECT_EQ(*a, *b);
      ExpectSameStats(serial_stats, parallel_stats);
    }
    {
      SearchStats serial_stats, parallel_stats;
      auto a = (*index)->SearchJumps(T, 1.0, serial, &serial_stats);
      auto b = (*index)->SearchJumps(T, 1.0, parallel, &parallel_stats);
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      EXPECT_EQ(*a, *b);
      ExpectSameStats(serial_stats, parallel_stats);
    }
  }
}

TEST_F(ParallelQueryTest, SegDiffThreadCountsAgree) {
  // 2, 4, and 8 threads all reduce to the same answer, repeatedly (the
  // repetition shakes out scheduling-dependent merges).
  SegDiffOptions options;
  options.window_s = 4 * 3600.0;
  auto index = SegDiffIndex::Open(path_, options);
  ASSERT_TRUE(index.ok());
  ASSERT_TRUE((*index)->IngestSeries(series_).ok());
  SearchOptions serial;
  serial.mode = QueryMode::kSeqScan;
  auto expected = (*index)->SearchDrops(3600.0, -2.0, serial);
  ASSERT_TRUE(expected.ok());
  for (const size_t threads : {2u, 4u, 8u}) {
    for (int rep = 0; rep < 3; ++rep) {
      SearchOptions parallel;
      parallel.mode = QueryMode::kSeqScan;
      parallel.num_threads = threads;
      auto got = (*index)->SearchDrops(3600.0, -2.0, parallel);
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(*expected, *got) << threads << " threads, rep " << rep;
    }
  }
}

TEST_F(ParallelQueryTest, ExhParallelMatchesSerial) {
  ExhOptions options;
  options.window_s = 2 * 3600.0;
  auto exh = ExhIndex::Open(path_, options);
  ASSERT_TRUE(exh.ok());
  ASSERT_TRUE((*exh)->IngestSeries(series_).ok());
  SearchOptions serial;
  serial.mode = QueryMode::kSeqScan;
  SearchOptions parallel = serial;
  parallel.num_threads = 4;
  SearchStats serial_stats, parallel_stats;
  auto a = (*exh)->SearchDrops(3600.0, -2.0, serial, &serial_stats);
  auto b = (*exh)->SearchDrops(3600.0, -2.0, parallel, &parallel_stats);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(a->empty());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_DOUBLE_EQ((*a)[i].t_start, (*b)[i].t_start);
    EXPECT_DOUBLE_EQ((*a)[i].t_end, (*b)[i].t_end);
    EXPECT_DOUBLE_EQ((*a)[i].dv, (*b)[i].dv);
  }
  ExpectSameStats(serial_stats, parallel_stats);
}

TEST(TransectConcurrentIngestTest, MatchesSerialIngest) {
  // Concurrent per-sensor ingest touches disjoint stores, so it must be
  // indistinguishable from the serial loop — same segments, same feature
  // rows, same search hits.
  const int kSensors = 5;
  const std::string serial_dir =
      UniqueTestPath("transect_ingest", "_serial");
  const std::string parallel_dir =
      UniqueTestPath("transect_ingest", "_parallel");
  std::vector<Series> all_series;
  for (int s = 0; s < kSensors; ++s) {
    CadGeneratorOptions gen;
    gen.num_days = 2;
    gen.cad_events_per_day = 2.0;
    gen.sensor_index = s;
    gen.seed = 20080325 + static_cast<uint64_t>(s);
    auto data = GenerateCadSeries(gen);
    ASSERT_TRUE(data.ok());
    all_series.push_back(std::move(data->series));
  }

  SegDiffOptions options;
  options.window_s = 4 * 3600.0;
  auto serial = TransectIndex::Open(serial_dir, kSensors, options);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_TRUE((*serial)->IngestAllSensors(all_series, /*num_threads=*/0).ok());
  auto parallel = TransectIndex::Open(parallel_dir, kSensors, options);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  ASSERT_TRUE(
      (*parallel)->IngestAllSensors(all_series, /*num_threads=*/4).ok());

  for (int s = 0; s < kSensors; ++s) {
    auto a = (*serial)->sensor(s);
    auto b = (*parallel)->sensor(s);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ((*a)->num_segments(), (*b)->num_segments()) << "sensor " << s;
    EXPECT_EQ((*a)->num_observations(), (*b)->num_observations());
    EXPECT_EQ((*a)->GetSizes().feature_rows, (*b)->GetSizes().feature_rows);
  }
  auto serial_hits = (*serial)->SearchDrops(3600.0, -3.0);
  auto parallel_hits = (*parallel)->SearchDrops(3600.0, -3.0);
  ASSERT_TRUE(serial_hits.ok());
  ASSERT_TRUE(parallel_hits.ok());
  EXPECT_EQ(*serial_hits, *parallel_hits);

  serial->reset();
  parallel->reset();
  std::error_code ec;
  std::filesystem::remove_all(serial_dir, ec);
  std::filesystem::remove_all(parallel_dir, ec);
}

TEST(ParallelSeqScanTest, MatchesSerialSeqScan) {
  const std::string path =
      UniqueTestPath("segdiff_parallel_scan");
  std::remove(path.c_str());
  auto db = Database::Open(path, DatabaseOptions{});
  ASSERT_TRUE(db.ok());
  auto schema = DoubleSchema({"dt", "dv"});
  ASSERT_TRUE(schema.ok());
  auto table = (*db)->CreateTable("f", *schema);
  ASSERT_TRUE(table.ok());
  Rng rng(7);
  for (int i = 0; i < 20000; ++i) {
    ASSERT_TRUE(
        (*table)
            ->InsertDoubles({rng.Uniform(0, 100), rng.Uniform(-10, 10)})
            .ok());
  }
  Predicate predicate;
  predicate.And(0, CmpOp::kLe, 50.0);
  predicate.And(1, CmpOp::kLe, 0.0);

  std::vector<std::pair<double, double>> serial_rows;
  ScanStats serial_stats;
  ASSERT_TRUE(SeqScan(**table, predicate,
                      [&](const char* record, RecordId) {
                        serial_rows.emplace_back(DecodeDoubleColumn(record, 0),
                                                 DecodeDoubleColumn(record, 1));
                        return Status::OK();
                      },
                      &serial_stats)
                  .ok());
  ASSERT_FALSE(serial_rows.empty());

  ThreadPool pool(3);
  for (const size_t partitions : {1u, 2u, 4u, 7u}) {
    std::vector<std::vector<std::pair<double, double>>> outs(partitions);
    ScanStats parallel_stats;
    ASSERT_TRUE(ParallelSeqScan(
                    **table, predicate, &pool, partitions,
                    [&outs](size_t p) -> RowCallback {
                      auto* sink = &outs[p];
                      return [sink](const char* record, RecordId) {
                        sink->emplace_back(DecodeDoubleColumn(record, 0),
                                           DecodeDoubleColumn(record, 1));
                        return Status::OK();
                      };
                    },
                    &parallel_stats)
                    .ok());
    std::vector<std::pair<double, double>> merged;
    for (const auto& part : outs) {
      merged.insert(merged.end(), part.begin(), part.end());
    }
    // Partitions preserve heap order within themselves and are merged
    // in page order, so the concatenation equals the serial scan.
    EXPECT_EQ(merged, serial_rows) << partitions << " partitions";
    EXPECT_EQ(parallel_stats.rows_scanned, serial_stats.rows_scanned);
  }
  db->reset();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace segdiff
