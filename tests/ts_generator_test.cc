// Tests for the synthetic CAD generator and the robust smoothing
// preprocessors.

#include <cmath>

#include <gtest/gtest.h>

#include "ts/generator.h"
#include "ts/smoothing.h"

namespace segdiff {
namespace {

TEST(CadGeneratorTest, Deterministic) {
  CadGeneratorOptions options;
  options.num_days = 3;
  auto a = GenerateCadSeries(options);
  auto b = GenerateCadSeries(options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->series.size(), b->series.size());
  for (size_t i = 0; i < a->series.size(); ++i) {
    EXPECT_EQ(a->series[i].t, b->series[i].t);
    EXPECT_EQ(a->series[i].v, b->series[i].v);
  }
  ASSERT_EQ(a->drops.size(), b->drops.size());
}

TEST(CadGeneratorTest, SampleRateAndHorizon) {
  CadGeneratorOptions options;
  options.num_days = 2;
  options.missing_probability = 0.0;
  auto data = GenerateCadSeries(options);
  ASSERT_TRUE(data.ok());
  // 2 days at 5-minute sampling: 2*288 + 1 samples.
  EXPECT_EQ(data->series.size(), 2u * 288u + 1u);
  EXPECT_DOUBLE_EQ(data->series.Stats().min_dt, 300.0);
}

TEST(CadGeneratorTest, MissingSamplesLeaveGaps) {
  CadGeneratorOptions options;
  options.num_days = 10;
  options.missing_probability = 0.05;
  auto data = GenerateCadSeries(options);
  ASSERT_TRUE(data.ok());
  EXPECT_LT(data->series.size(), 10u * 288u + 1u);
  EXPECT_GT(data->series.Stats().max_dt, 300.0);
}

TEST(CadGeneratorTest, InjectedDropsAreVisible) {
  CadGeneratorOptions options;
  options.num_days = 20;
  options.cad_events_per_day = 1.0;  // guarantee events
  options.ar1_sigma_c = 0.02;        // quiet noise to measure cleanly
  options.missing_probability = 0.0;
  auto data = GenerateCadSeries(options);
  ASSERT_TRUE(data.ok());
  ASSERT_GT(data->drops.size(), 0u);
  // Around each injected event the series must fall by roughly the
  // event magnitude (diurnal drift over <=70 min stays small).
  for (const InjectedDrop& drop : data->drops) {
    Series window = data->series.Slice(drop.t_start - 300, drop.t_bottom + 300);
    ASSERT_GE(window.size(), 2u);
    const double observed = window.front().v - window.Stats().min_v;
    EXPECT_GT(observed, drop.magnitude_c * 0.7)
        << "event at t=" << drop.t_start;
  }
}

TEST(CadGeneratorTest, EventsInsideMorningWindow) {
  CadGeneratorOptions options;
  options.num_days = 40;
  options.cad_events_per_day = 1.0;
  options.sensor_index = 0;
  auto data = GenerateCadSeries(options);
  ASSERT_TRUE(data.ok());
  for (const InjectedDrop& drop : data->drops) {
    const double hour = std::fmod(drop.t_start, 86400.0) / 3600.0;
    EXPECT_GE(hour, options.cad_window_start_h);
    EXPECT_LE(hour, options.cad_window_end_h + 0.1);
    EXPECT_LT(drop.t_start, drop.t_bottom);
    EXPECT_LT(drop.t_bottom, drop.t_recovered);
    EXPECT_GE(drop.magnitude_c, options.cad_min_magnitude_c);
  }
}

TEST(CadGeneratorTest, TransectSensorsDiffer) {
  CadGeneratorOptions options;
  options.num_days = 2;
  auto transect = GenerateCadTransect(options, 3);
  ASSERT_TRUE(transect.ok());
  ASSERT_EQ(transect->size(), 3u);
  // Lower-canyon sensors are offset colder on average.
  const double mean0 = (*transect)[0].series.Stats().mean_v;
  const double mean2 = (*transect)[2].series.Stats().mean_v;
  EXPECT_GT(mean0, mean2);
}

TEST(CadGeneratorTest, RejectsBadOptions) {
  CadGeneratorOptions options;
  options.num_days = 0;
  EXPECT_TRUE(GenerateCadSeries(options).status().IsInvalidArgument());
  options = {};
  options.sample_interval_s = -1;
  EXPECT_TRUE(GenerateCadSeries(options).status().IsInvalidArgument());
  options = {};
  options.cad_min_magnitude_c = 5;
  options.cad_max_magnitude_c = 3;
  EXPECT_TRUE(GenerateCadSeries(options).status().IsInvalidArgument());
  options = {};
  options.cad_window_start_h = 7;
  options.cad_window_end_h = 6;
  EXPECT_TRUE(GenerateCadSeries(options).status().IsInvalidArgument());
  options = {};
  options.missing_probability = 1.5;
  EXPECT_TRUE(GenerateCadSeries(options).status().IsInvalidArgument());
  EXPECT_TRUE(GenerateCadTransect({}, 0).status().IsInvalidArgument());
}

TEST(FinanceGeneratorTest, ProducesPositivePrices) {
  FinanceGeneratorOptions options;
  options.num_points = 5000;
  auto series = GenerateFinanceSeries(options);
  ASSERT_TRUE(series.ok());
  EXPECT_EQ(series->size(), 5000u);
  EXPECT_GT(series->Stats().min_v, 0.0);
}

TEST(RandomWalkTest, Basics) {
  auto series = GenerateRandomWalk(3, 100, 1.0, 0.5);
  ASSERT_TRUE(series.ok());
  EXPECT_EQ(series->size(), 100u);
  EXPECT_TRUE(GenerateRandomWalk(3, 0, 1.0, 0.5).status().IsInvalidArgument());
}

TEST(HampelTest, RemovesSpikes) {
  // Smooth ramp with two large spikes.
  std::vector<Sample> samples;
  for (int i = 0; i < 100; ++i) {
    double v = i * 0.1;
    if (i == 30 || i == 71) v += 50.0;
    samples.push_back({static_cast<double>(i), v});
  }
  auto series = Series::FromSamples(samples);
  ASSERT_TRUE(series.ok());
  size_t replaced = 0;
  auto filtered = HampelFilter(*series, HampelOptions{}, &replaced);
  ASSERT_TRUE(filtered.ok());
  EXPECT_EQ(replaced, 2u);
  EXPECT_NEAR((*filtered)[30].v, 3.0, 0.5);
  EXPECT_NEAR((*filtered)[71].v, 7.1, 0.5);
}

TEST(HampelTest, LeavesCleanDataAlone) {
  std::vector<Sample> samples;
  for (int i = 0; i < 50; ++i) {
    samples.push_back({static_cast<double>(i), std::sin(i * 0.2)});
  }
  auto series = Series::FromSamples(samples);
  size_t replaced = 99;
  auto filtered = HampelFilter(*series, HampelOptions{}, &replaced);
  ASSERT_TRUE(filtered.ok());
  EXPECT_EQ(replaced, 0u);
}

TEST(HampelTest, RejectsBadOptions) {
  Series series;
  ASSERT_TRUE(series.Append({0, 0}).ok());
  HampelOptions options;
  options.window_radius = 0;
  EXPECT_TRUE(HampelFilter(series, options).status().IsInvalidArgument());
  options = {};
  options.n_sigmas = 0;
  EXPECT_TRUE(HampelFilter(series, options).status().IsInvalidArgument());
}

TEST(MovingAverageTest, FlattensNoise) {
  std::vector<Sample> samples;
  for (int i = 0; i < 200; ++i) {
    samples.push_back({static_cast<double>(i), (i % 2 == 0) ? 1.0 : -1.0});
  }
  auto series = Series::FromSamples(samples);
  auto smoothed = MovingAverage(*series, 5);
  ASSERT_TRUE(smoothed.ok());
  for (size_t i = 10; i < 190; ++i) {
    EXPECT_NEAR((*smoothed)[i].v, 0.0, 0.12);
  }
}

TEST(LoessTest, RecoversLinearTrendExactly) {
  std::vector<Sample> samples;
  for (int i = 0; i < 100; ++i) {
    samples.push_back({static_cast<double>(i), 2.0 + 0.5 * i});
  }
  auto series = Series::FromSamples(samples);
  LoessOptions options;
  options.bandwidth_s = 10.0;
  auto smoothed = RobustLoess(*series, options);
  ASSERT_TRUE(smoothed.ok());
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_NEAR((*smoothed)[i].v, 2.0 + 0.5 * i, 1e-9);
  }
}

TEST(LoessTest, RobustToOutliers) {
  std::vector<Sample> samples;
  for (int i = 0; i < 100; ++i) {
    double v = 0.1 * i;
    if (i == 50) v += 100.0;  // gross outlier
    samples.push_back({static_cast<double>(i), v});
  }
  auto series = Series::FromSamples(samples);
  LoessOptions options;
  options.bandwidth_s = 8.0;
  options.robust_iterations = 3;
  auto smoothed = RobustLoess(*series, options);
  ASSERT_TRUE(smoothed.ok());
  // Neighbours of the outlier must stay near the trend.
  EXPECT_NEAR((*smoothed)[48].v, 4.8, 0.3);
  EXPECT_NEAR((*smoothed)[52].v, 5.2, 0.3);
  // Plain LOESS (no robustness) smears the outlier much more.
  options.robust_iterations = 0;
  auto plain = RobustLoess(*series, options);
  ASSERT_TRUE(plain.ok());
  EXPECT_GT(std::abs((*plain)[48].v - 4.8),
            std::abs((*smoothed)[48].v - 4.8));
}

TEST(LoessTest, RejectsBadOptions) {
  Series series;
  ASSERT_TRUE(series.Append({0, 0}).ok());
  LoessOptions options;
  options.bandwidth_s = 0;
  EXPECT_TRUE(RobustLoess(series, options).status().IsInvalidArgument());
  options = {};
  options.robust_iterations = -1;
  EXPECT_TRUE(RobustLoess(series, options).status().IsInvalidArgument());
}

TEST(LoessTest, ShortSeriesPassThrough) {
  Series series;
  ASSERT_TRUE(series.Append({0, 5}).ok());
  ASSERT_TRUE(series.Append({1, 6}).ok());
  auto smoothed = RobustLoess(series, LoessOptions{});
  ASSERT_TRUE(smoothed.ok());
  EXPECT_EQ((*smoothed)[0].v, 5);
  EXPECT_EQ((*smoothed)[1].v, 6);
}

}  // namespace
}  // namespace segdiff
