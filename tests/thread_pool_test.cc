// Tests for the worker pool behind parallel query execution: every
// index visited exactly once, error short-circuiting, Submit/Wait
// accounting, deterministic shutdown, and nesting.

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"

namespace segdiff {
namespace {

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> visits(kN);
  Status status = pool.ParallelFor(kN, [&](size_t i) {
    visits[i].fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  });
  ASSERT_TRUE(status.ok()) << status.ToString();
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForDegenerateSizes) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  EXPECT_TRUE(pool.ParallelFor(0, [&](size_t) {
                    ++count;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(count.load(), 0);
  EXPECT_TRUE(pool.ParallelFor(1, [&](size_t) {
                    ++count;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, ParallelForPropagatesError) {
  ThreadPool pool(4);
  std::atomic<int> executed{0};
  Status status = pool.ParallelFor(1000, [&](size_t i) -> Status {
    ++executed;
    if (i == 17) {
      return Status::InvalidArgument("iteration 17 failed");
    }
    return Status::OK();
  });
  EXPECT_TRUE(status.IsInvalidArgument());
  // Cancellation skips the tail; it must never run anything twice.
  EXPECT_LE(executed.load(), 1000);
  // The pool stays usable after a failed loop.
  EXPECT_TRUE(pool.ParallelFor(8, [](size_t) { return Status::OK(); }).ok());
}

TEST(ThreadPoolTest, ParallelForRunsOnCallerWhenWorkersAreBusy) {
  // Occupy the single worker, then ParallelFor from this thread: it must
  // complete via caller participation even with no free worker.
  ThreadPool pool(1);
  std::atomic<bool> release{false};
  pool.Submit([&] {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::atomic<int> count{0};
  Status status = pool.ParallelFor(64, [&](size_t) {
    ++count;
    return Status::OK();
  });
  release = true;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(count.load(), 64);
  pool.Wait();
}

TEST(ThreadPoolTest, NestedParallelFor) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  Status status = pool.ParallelFor(4, [&](size_t) {
    return pool.ParallelFor(5, [&](size_t) {
      ++count;
      return Status::OK();
    });
  });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPoolTest, SubmitAndWait) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 500; ++i) {
    pool.Submit([&] { ++count; });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 500);
  // Wait with nothing outstanding returns immediately.
  pool.Wait();
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  auto count = std::make_shared<std::atomic<int>>(0);
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([count] {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        ++*count;
      });
    }
  }  // destructor joins after draining
  EXPECT_EQ(count->load(), 100);
}

}  // namespace
}  // namespace segdiff
