// Scan-kernel correctness: every kernel variant against the scalar
// predicate evaluator (NaN included), plus a differential fuzz harness
// proving that the batched + zone-map-pruned scan — serial and
// partitioned across a thread pool — returns byte-identical results and
// consistent statistics versus the row-at-a-time baseline on randomized
// workloads (random schemas, row counts, NaN densities, and conjunctive
// predicates, including all-pruned and empty-table cases).

#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "test_paths.h"

#include "common/coding.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "query/executor.h"
#include "query/predicate.h"
#include "query/scan_kernel.h"
#include "storage/db.h"

namespace segdiff {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

bool CpuHasAvx2() {
#if defined(__x86_64__) || defined(_M_X64)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

CmpOp RandomOp(Rng& rng) {
  static const CmpOp kOps[] = {CmpOp::kLt, CmpOp::kLe, CmpOp::kGt,
                               CmpOp::kGe, CmpOp::kEq};
  return kOps[rng.UniformU64(5)];
}

TEST(ScanKernelTest, VariantsMatchEvalConditionIncludingNaN) {
  struct Variant {
    const char* name;
    ScanKernelFn fn;
  };
  std::vector<Variant> variants = {{"scalar", ScalarScanKernel()}};
  if (Sse2ScanKernel() != nullptr) {
    variants.push_back({"sse2", Sse2ScanKernel()});
  }
  if (Avx2ScanKernel() != nullptr && CpuHasAvx2()) {
    variants.push_back({"avx2", Avx2ScanKernel()});
  }
  ASSERT_NE(variants[0].fn, nullptr);

  Rng rng(2008);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t num_columns = 1 + rng.UniformU64(6);
    const size_t record_bytes = num_columns * 8;
    const size_t count = 1 + rng.UniformU64(kMaxBatchRows);
    std::vector<char> records(count * record_bytes);
    for (size_t i = 0; i < count; ++i) {
      for (size_t c = 0; c < num_columns; ++c) {
        const double v =
            rng.Bernoulli(0.05) ? kNaN : rng.Uniform(-100.0, 100.0);
        EncodeDouble(records.data() + i * record_bytes + c * 8, v);
      }
    }
    std::vector<ColumnCondition> conditions;
    const size_t num_conditions = 1 + rng.UniformU64(3);
    for (size_t k = 0; k < num_conditions; ++k) {
      const double value =
          rng.Bernoulli(0.05) ? kNaN : rng.Uniform(-100.0, 100.0);
      conditions.push_back(
          {rng.UniformU64(num_columns), RandomOp(rng), value});
    }

    for (const Variant& variant : variants) {
      uint64_t bitmap[kBatchBitmapWords];
      variant.fn(records.data(), record_bytes, count, conditions.data(),
                 conditions.size(), bitmap);
      for (size_t i = 0; i < count; ++i) {
        bool expect = true;
        for (const ColumnCondition& condition : conditions) {
          expect =
              expect &&
              EvalCondition(condition, records.data() + i * record_bytes);
        }
        const bool got = (bitmap[i / 64] >> (i % 64)) & 1u;
        ASSERT_EQ(got, expect)
            << variant.name << " trial " << trial << " row " << i;
      }
      // Bits at and above `count` stay zero within the written words
      // (callers iterate whole words).
      const size_t written_bits = (count + 63) / 64 * 64;
      for (size_t i = count; i < written_bits; ++i) {
        ASSERT_FALSE((bitmap[i / 64] >> (i % 64)) & 1u)
            << variant.name << " ghost bit " << i;
      }
    }
  }
}

TEST(ScanKernelTest, EmptyConditionListSelectsEverything) {
  char records[64];
  for (int c = 0; c < 8; ++c) {
    EncodeDouble(records + c * 8, c == 3 ? kNaN : 1.0);
  }
  uint64_t bitmap[kBatchBitmapWords];
  ScalarScanKernel()(records, 8, 8, nullptr, 0, bitmap);
  EXPECT_EQ(bitmap[0], 0xFFu);
}

/// One differential trial: a randomized table + predicate, executed by
/// the row-at-a-time baseline, the batched kernel (with and without
/// pruning), and the partitioned parallel scan. Results must be
/// byte-identical in heap order and the statistics must be exact
/// partitions of the table.
class ScanDifferentialTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = UniqueTestPath("segdiff_scan_fuzz");
    std::remove(path_.c_str());
    auto db = Database::Open(path_, DatabaseOptions{});
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
  }
  void TearDown() override {
    db_.reset();
    std::remove(path_.c_str());
  }

  /// Byte-identical capture: RecordId plus the raw record bytes.
  struct Hit {
    uint64_t page;
    uint32_t slot;
    std::string bytes;
    bool operator==(const Hit& other) const {
      return page == other.page && slot == other.slot &&
             bytes == other.bytes;
    }
  };

  static RowCallback Capture(std::vector<Hit>* out, size_t record_bytes) {
    return [out, record_bytes](const char* record, RecordId id) {
      out->push_back(Hit{id.page, id.slot,
                         std::string(record, record_bytes)});
      return Status::OK();
    };
  }

  void CheckStats(const ScanStats& stats, const Table& table,
                  const char* what) {
    EXPECT_EQ(stats.rows_scanned + stats.rows_pruned, table.row_count())
        << what;
    EXPECT_EQ(stats.pages_scanned + stats.pages_pruned,
              table.heap_meta().page_count)
        << what;
  }

  void RunTrial(uint64_t seed, ThreadPool* pool) {
    Rng rng(seed);
    const size_t num_columns = 1 + rng.UniformU64(6);
    std::vector<std::string> names;
    for (size_t c = 0; c < num_columns; ++c) {
      names.push_back("c" + std::to_string(c));
    }
    auto schema = DoubleSchema(names);
    ASSERT_TRUE(schema.ok());
    const std::string table_name = "t" + std::to_string(seed);
    auto table_or = db_->CreateTable(table_name, *schema);
    ASSERT_TRUE(table_or.ok());
    Table* table = *table_or;
    const size_t record_bytes = num_columns * 8;

    // Rows arrive in value clusters so zone maps actually prune some
    // pages (uniformly random data defeats pruning by construction).
    const uint64_t rows = rng.UniformU64(5000);  // 0 = empty table
    const double nan_p = rng.Bernoulli(0.3) ? 0.05 : 0.0;
    double center = rng.Uniform(-50.0, 50.0);
    std::vector<double> row(num_columns);
    for (uint64_t i = 0; i < rows; ++i) {
      if (i % 512 == 0) {
        center = rng.Uniform(-50.0, 50.0);  // new cluster
      }
      for (size_t c = 0; c < num_columns; ++c) {
        row[c] = rng.Bernoulli(nan_p) ? kNaN
                                      : center + rng.Uniform(-5.0, 5.0);
      }
      ASSERT_TRUE(table->InsertDoubles(row).ok());
    }

    Predicate predicate;
    const size_t num_conditions = rng.UniformU64(4);  // 0 = scan all
    for (size_t k = 0; k < num_conditions; ++k) {
      // Cluster-scale bounds: selective but regularly non-empty. An
      // occasional far-out bound makes the all-pruned case common too.
      const double value = rng.Bernoulli(0.15)
                               ? rng.Uniform(500.0, 1000.0)
                               : rng.Uniform(-60.0, 60.0);
      predicate.And(rng.UniformU64(num_columns), RandomOp(rng), value);
    }
    const bool with_residual = rng.Bernoulli(0.3);
    if (with_residual) {
      predicate.AndResidual([](const char* record) {
        const double v = DecodeDoubleColumn(record, 0);
        return v == v && std::fmod(std::fabs(v), 2.0) < 1.0;
      });
    }

    // Baseline: row-at-a-time, no pruning — the pre-PR semantics.
    std::vector<Hit> baseline;
    ScanStats baseline_stats;
    ASSERT_TRUE(SeqScan(*table, predicate,
                        Capture(&baseline, record_bytes), &baseline_stats,
                        SeqScanOptions{/*batch=*/false, /*prune=*/false})
                    .ok());
    EXPECT_EQ(baseline_stats.rows_scanned, table->row_count());
    EXPECT_EQ(baseline_stats.pages_pruned, 0u);
    CheckStats(baseline_stats, *table, "baseline");

    // Batched kernel without pruning: same rows, same page walk.
    std::vector<Hit> batched;
    ScanStats batched_stats;
    ASSERT_TRUE(SeqScan(*table, predicate, Capture(&batched, record_bytes),
                        &batched_stats,
                        SeqScanOptions{/*batch=*/true, /*prune=*/false})
                    .ok());
    EXPECT_EQ(batched, baseline) << "seed " << seed;
    EXPECT_EQ(batched_stats.rows_scanned, baseline_stats.rows_scanned);

    // Full fast path: batched + pruned.
    std::vector<Hit> pruned;
    ScanStats pruned_stats;
    ASSERT_TRUE(
        SeqScan(*table, predicate, Capture(&pruned, record_bytes),
                &pruned_stats, SeqScanOptions{})
            .ok());
    EXPECT_EQ(pruned, baseline) << "seed " << seed;
    EXPECT_EQ(pruned_stats.rows_matched, baseline_stats.rows_matched);
    CheckStats(pruned_stats, *table, "pruned");

    // Partitioned parallel scan with the default (pruned) options.
    const size_t partitions = 1 + rng.UniformU64(5);
    std::vector<std::vector<Hit>> parts(partitions);
    ScanStats parallel_stats;
    ASSERT_TRUE(ParallelSeqScan(
                    *table, predicate, pool, partitions,
                    [&parts, record_bytes](size_t p) {
                      return Capture(&parts[p], record_bytes);
                    },
                    &parallel_stats)
                    .ok());
    std::vector<Hit> merged;
    for (const auto& part : parts) {
      merged.insert(merged.end(), part.begin(), part.end());
    }
    EXPECT_EQ(merged, baseline) << "seed " << seed;
    // Parallel statistics are identical to the serial pruned scan's —
    // same pages pruned, same rows examined, merged in page order.
    EXPECT_EQ(parallel_stats.rows_scanned, pruned_stats.rows_scanned);
    EXPECT_EQ(parallel_stats.rows_pruned, pruned_stats.rows_pruned);
    EXPECT_EQ(parallel_stats.pages_scanned, pruned_stats.pages_scanned);
    EXPECT_EQ(parallel_stats.pages_pruned, pruned_stats.pages_pruned);
    EXPECT_EQ(parallel_stats.rows_matched, pruned_stats.rows_matched);
  }

  std::string path_;
  std::unique_ptr<Database> db_;
};

TEST_F(ScanDifferentialTest, RandomWorkloadsAgreeAcrossAllScanModes) {
  ThreadPool pool(3);
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    RunTrial(seed, &pool);
    if (HasFatalFailure()) {
      return;
    }
  }
}

TEST_F(ScanDifferentialTest, AllPrunedTableReturnsNothingButCountsEverything) {
  auto schema = DoubleSchema({"dt", "dv"});
  auto table_or = db_->CreateTable("t", *schema);
  ASSERT_TRUE(table_or.ok());
  Table* table = *table_or;
  Rng rng(5);
  for (int i = 0; i < 4000; ++i) {
    ASSERT_TRUE(
        table->InsertDoubles({rng.Uniform(0, 100), rng.Uniform(-10, 10)})
            .ok());
  }
  Predicate predicate;
  predicate.And(0, CmpOp::kGt, 1000.0);  // beyond every zone
  uint64_t matched = 0;
  ScanStats stats;
  ASSERT_TRUE(SeqScan(*table, predicate,
                      [&](const char*, RecordId) {
                        ++matched;
                        return Status::OK();
                      },
                      &stats)
                  .ok());
  EXPECT_EQ(matched, 0u);
  EXPECT_EQ(stats.pages_scanned, 0u);
  EXPECT_EQ(stats.pages_pruned, table->heap_meta().page_count);
  EXPECT_EQ(stats.rows_pruned, 4000u);
  EXPECT_EQ(stats.rows_scanned, 0u);
}

TEST_F(ScanDifferentialTest, EmptyTableScansCleanly) {
  auto schema = DoubleSchema({"a"});
  auto table_or = db_->CreateTable("t", *schema);
  ASSERT_TRUE(table_or.ok());
  Predicate predicate;
  predicate.And(0, CmpOp::kLe, 0.0);
  ScanStats stats;
  ASSERT_TRUE(SeqScan(**table_or, predicate,
                      [](const char*, RecordId) { return Status::OK(); },
                      &stats)
                  .ok());
  EXPECT_EQ(stats.rows_scanned + stats.rows_pruned, 0u);
  EXPECT_EQ(stats.rows_matched, 0u);
}

TEST_F(ScanDifferentialTest, ResidualOnlyPredicateDisablesPruning) {
  auto schema = DoubleSchema({"a"});
  auto table_or = db_->CreateTable("t", *schema);
  ASSERT_TRUE(table_or.ok());
  Table* table = *table_or;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(table->InsertDoubles({static_cast<double>(i)}).ok());
  }
  Predicate predicate;
  predicate.AndResidual([](const char* record) {
    return DecodeDoubleColumn(record, 0) >= 95.0;
  });
  uint64_t matched = 0;
  ScanStats stats;
  ASSERT_TRUE(SeqScan(*table, predicate,
                      [&](const char*, RecordId) {
                        ++matched;
                        return Status::OK();
                      },
                      &stats)
                  .ok());
  // A residual carries no column bounds, so nothing may be pruned.
  EXPECT_EQ(matched, 5u);
  EXPECT_EQ(stats.pages_pruned, 0u);
  EXPECT_EQ(stats.rows_scanned, 100u);
}

}  // namespace
}  // namespace segdiff
