// End-to-end property tests of the paper's Theorem 1 over the full
// pipeline (segmentation -> extraction -> storage -> queries):
//
//   1. NO MISS: every true event (witnessed by the naive oracle) is
//      covered by some returned segment pair.
//   2. TOLERANCE: every returned pair contains an event with
//      dv <= V + 2*eps (drop) / dv >= V - 2*eps (jump) within (0, T].
//
// Swept over eps x (T, V) x data seeds, for both search kinds, with
// missing samples and anomalies in some datasets.

#include <cstdio>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "segdiff/naive.h"
#include "segdiff/segdiff_index.h"
#include "segdiff/verify.h"
#include "ts/generator.h"

namespace segdiff {
namespace {

struct GuaranteeCase {
  uint64_t seed;
  double eps;
  double missing_probability;
};

class GuaranteesTest : public ::testing::TestWithParam<GuaranteeCase> {
 protected:
  void SetUp() override {
    path_ = testing::TempDir() + "/segdiff_guarantees_" +
            std::to_string(GetParam().seed) + "_" +
            std::to_string(GetParam().eps) + ".db";
    std::remove(path_.c_str());
    CadGeneratorOptions gen;
    gen.seed = GetParam().seed;
    gen.num_days = 3;
    gen.cad_events_per_day = 1.0;
    gen.missing_probability = GetParam().missing_probability;
    auto data = GenerateCadSeries(gen);
    ASSERT_TRUE(data.ok());
    series_ = std::move(data->series);

    SegDiffOptions options;
    options.eps = GetParam().eps;
    options.window_s = 4 * 3600.0;
    auto index = SegDiffIndex::Open(path_, options);
    ASSERT_TRUE(index.ok());
    index_ = std::move(index).value();
    ASSERT_TRUE(index_->IngestSeries(series_).ok());
  }
  void TearDown() override {
    index_.reset();
    std::remove(path_.c_str());
  }

  std::string path_;
  Series series_;
  std::unique_ptr<SegDiffIndex> index_;
};

TEST_P(GuaranteesTest, DropSearchNoMissAndTolerance) {
  NaiveSearcher naive(series_);
  const double eps = GetParam().eps;
  for (double T : {1800.0, 3600.0}) {
    for (double V : {-1.5, -3.0, -6.0}) {
      auto results = index_->SearchDrops(T, V);
      ASSERT_TRUE(results.ok()) << results.status().ToString();

      // Property 1: no true event missed.
      const auto events = naive.SearchDrops(T, V);
      const CoverageReport coverage = CheckCoverage(events, *results);
      EXPECT_TRUE(coverage.AllCovered())
          << "T=" << T << " V=" << V << ": " << coverage.missing.size()
          << " of " << coverage.events << " events uncovered; first at t="
          << (coverage.missing.empty() ? 0.0 : coverage.missing[0].t_start);

      // Property 2: returned pairs within 2*eps tolerance.
      auto violations = FindToleranceViolations(series_, *results, T, V, eps,
                                                SearchKind::kDrop);
      ASSERT_TRUE(violations.ok());
      EXPECT_TRUE(violations->empty())
          << "T=" << T << " V=" << V << ": " << violations->size() << " of "
          << results->size() << " pairs violate the 2eps bound; first t_d="
          << (violations->empty() ? 0.0 : (*violations)[0].t_d);
    }
  }
}

TEST_P(GuaranteesTest, JumpSearchNoMissAndTolerance) {
  NaiveSearcher naive(series_);
  const double eps = GetParam().eps;
  for (double T : {1800.0, 3600.0}) {
    for (double V : {1.5, 3.0}) {
      auto results = index_->SearchJumps(T, V);
      ASSERT_TRUE(results.ok());
      const auto events = naive.SearchJumps(T, V);
      const CoverageReport coverage = CheckCoverage(events, *results);
      EXPECT_TRUE(coverage.AllCovered())
          << "T=" << T << " V=" << V << ": " << coverage.missing.size()
          << " uncovered of " << coverage.events;
      auto violations = FindToleranceViolations(series_, *results, T, V, eps,
                                                SearchKind::kJump);
      ASSERT_TRUE(violations.ok());
      EXPECT_TRUE(violations->empty()) << "T=" << T << " V=" << V;
    }
  }
}

TEST_P(GuaranteesTest, IndexScanUpholdsTheSameGuarantees) {
  NaiveSearcher naive(series_);
  SearchOptions idx;
  idx.mode = QueryMode::kIndexScan;
  const double T = 3600.0;
  const double V = -3.0;
  auto results = index_->SearchDrops(T, V, idx);
  ASSERT_TRUE(results.ok());
  const auto events = naive.SearchDrops(T, V);
  EXPECT_TRUE(CheckCoverage(events, *results).AllCovered());
}

// The guarantees are distribution-free: re-verify on pure random walks
// (no diurnal structure, different sampling rate) across seeds.
class RandomWalkGuaranteesTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomWalkGuaranteesTest, NoMissAndToleranceBothKinds) {
  auto walk = GenerateRandomWalk(GetParam(), 600, 60.0, 0.5);
  ASSERT_TRUE(walk.ok());
  const std::string path = testing::TempDir() + "/segdiff_walk_" +
                           std::to_string(GetParam()) + ".db";
  std::remove(path.c_str());
  SegDiffOptions options;
  options.eps = 0.3;
  options.window_s = 3600.0;
  auto index = SegDiffIndex::Open(path, options);
  ASSERT_TRUE(index.ok());
  ASSERT_TRUE((*index)->IngestSeries(*walk).ok());
  NaiveSearcher naive(*walk);
  for (double T : {600.0, 3000.0}) {
    for (double magnitude : {1.0, 2.5}) {
      auto drops = (*index)->SearchDrops(T, -magnitude);
      ASSERT_TRUE(drops.ok());
      EXPECT_TRUE(
          CheckCoverage(naive.SearchDrops(T, -magnitude), *drops).AllCovered())
          << "drop T=" << T << " V=" << -magnitude;
      auto drop_violations = FindToleranceViolations(
          *walk, *drops, T, -magnitude, options.eps, SearchKind::kDrop);
      ASSERT_TRUE(drop_violations.ok());
      EXPECT_TRUE(drop_violations->empty());

      auto jumps = (*index)->SearchJumps(T, magnitude);
      ASSERT_TRUE(jumps.ok());
      EXPECT_TRUE(
          CheckCoverage(naive.SearchJumps(T, magnitude), *jumps).AllCovered())
          << "jump T=" << T << " V=" << magnitude;
      auto jump_violations = FindToleranceViolations(
          *walk, *jumps, T, magnitude, options.eps, SearchKind::kJump);
      ASSERT_TRUE(jump_violations.ok());
      EXPECT_TRUE(jump_violations->empty());
    }
  }
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(WalkSeeds, RandomWalkGuaranteesTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

INSTANTIATE_TEST_SUITE_P(
    Sweep, GuaranteesTest,
    ::testing::Values(GuaranteeCase{101, 0.1, 0.0},
                      GuaranteeCase{102, 0.2, 0.0},
                      GuaranteeCase{103, 0.4, 0.0},
                      GuaranteeCase{104, 0.8, 0.0},
                      GuaranteeCase{105, 1.0, 0.0},
                      GuaranteeCase{106, 0.2, 0.02},
                      GuaranteeCase{107, 0.4, 0.05},
                      GuaranteeCase{108, 0.0, 0.0}),
    [](const ::testing::TestParamInfo<GuaranteeCase>& info) {
      char name[64];
      std::snprintf(name, sizeof(name), "seed%llu_eps%d_miss%d",
                    static_cast<unsigned long long>(info.param.seed),
                    static_cast<int>(info.param.eps * 100),
                    static_cast<int>(info.param.missing_probability * 100));
      return std::string(name);
    });

}  // namespace
}  // namespace segdiff
