// Streaming-ingest contract tests: observation-at-a-time ingest is
// byte-identical to one-shot batch ingest (any chunking, one final
// flush), and ingest state survives close/reopen so appending resumes
// exactly where it left off — including on legacy stores that predate
// state persistence.

#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "test_paths.h"

#include "common/coding.h"
#include "segdiff/exh_index.h"
#include "segdiff/segdiff_index.h"
#include "storage/db.h"
#include "ts/generator.h"

namespace segdiff {
namespace {

Series MakeSeries(int num_days, uint64_t seed = 20080325) {
  CadGeneratorOptions gen;
  gen.num_days = num_days;
  gen.cad_events_per_day = 1.0;
  gen.seed = seed;
  auto data = GenerateCadSeries(gen);
  EXPECT_TRUE(data.ok()) << data.status().ToString();
  return std::move(data->series);
}

/// Raw records of one table, in heap (= insertion) order.
std::vector<std::string> TableRecords(Database* db, const std::string& name) {
  std::vector<std::string> records;
  auto table = db->GetTable(name);
  EXPECT_TRUE(table.ok()) << table.status().ToString();
  const size_t bytes = (*table)->schema().num_columns() * 8;
  Status scan = (*table)->Scan(
      [&](const char* record, RecordId, bool* keep_going) -> Status {
        *keep_going = true;
        records.emplace_back(record, bytes);
        return Status::OK();
      });
  EXPECT_TRUE(scan.ok()) << scan.ToString();
  return records;
}

const char* const kSegDiffTables[] = {"segments", "drop1", "drop2", "drop3",
                                      "jump1",    "jump2", "jump3"};

/// Every SegDiff table of `actual` byte-identical to `expected`.
/// `check_counters` is off for legacy-store resume, whose lifetime
/// observation counter legitimately restarts at zero.
void ExpectSameTables(SegDiffIndex* actual, SegDiffIndex* expected,
                      bool check_counters = true) {
  for (const char* name : kSegDiffTables) {
    const std::vector<std::string> a = TableRecords(actual->db(), name);
    const std::vector<std::string> e = TableRecords(expected->db(), name);
    ASSERT_EQ(a.size(), e.size()) << "row count mismatch in " << name;
    for (size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i], e[i]) << "record " << i << " differs in " << name;
    }
  }
  if (check_counters) {
    EXPECT_EQ(actual->num_observations(), expected->num_observations());
  }
  EXPECT_EQ(actual->num_segments(), expected->num_segments());
  const SegDiffSizes sa = actual->GetSizes();
  const SegDiffSizes se = expected->GetSizes();
  EXPECT_EQ(sa.feature_rows, se.feature_rows);
  EXPECT_EQ(sa.feature_bytes, se.feature_bytes);
}

void ExpectSameSearches(SegDiffIndex* actual, SegDiffIndex* expected) {
  for (const double T : {1800.0, 3600.0, 2 * 3600.0}) {
    auto a = actual->SearchDrops(T, -3.0);
    auto e = expected->SearchDrops(T, -3.0);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(e.ok()) << e.status().ToString();
    EXPECT_EQ(*a, *e) << "drop results differ at T=" << T;
  }
}

class StreamingIngestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    batch_path_ = UniqueTestPath("streaming", "_batch.db");
    stream_path_ = UniqueTestPath("streaming", "_stream.db");
    std::remove(batch_path_.c_str());
    std::remove(stream_path_.c_str());
    series_ = MakeSeries(4);
  }
  void TearDown() override {
    std::remove(batch_path_.c_str());
    std::remove(stream_path_.c_str());
  }

  std::unique_ptr<SegDiffIndex> OpenStore(const std::string& path,
                                          const SegDiffOptions& options) {
    auto store = SegDiffIndex::Open(path, options);
    EXPECT_TRUE(store.ok()) << store.status().ToString();
    return std::move(store).value();
  }

  /// The oracle: one-shot batch ingest of the whole series.
  std::unique_ptr<SegDiffIndex> BuildBatch(const SegDiffOptions& options) {
    auto store = OpenStore(batch_path_, options);
    Status ingest = store->IngestSeries(series_);
    EXPECT_TRUE(ingest.ok()) << ingest.ToString();
    return store;
  }

  std::string batch_path_;
  std::string stream_path_;
  Series series_;
};

TEST_F(StreamingIngestTest, ObservationAtATimeMatchesBatch) {
  SegDiffOptions options;
  auto batch = BuildBatch(options);
  auto stream = OpenStore(stream_path_, options);
  for (const Sample& sample : series_) {
    ASSERT_TRUE(stream->AppendObservation(sample.t, sample.v).ok());
  }
  ASSERT_TRUE(stream->FlushPending().ok());
  ExpectSameTables(stream.get(), batch.get());
  ExpectSameSearches(stream.get(), batch.get());
}

TEST_F(StreamingIngestTest, SearchableMidStreamWithoutFlush) {
  SegDiffOptions options;
  auto stream = OpenStore(stream_path_, options);
  // Append without ever flushing: everything but the open trailing
  // segment is already searchable, and no error surfaces mid-stream.
  for (size_t i = 0; i < series_.size() / 2; ++i) {
    ASSERT_TRUE(stream->AppendObservation(series_[i].t, series_[i].v).ok());
  }
  auto hits = stream->SearchDrops(3600.0, -3.0);
  ASSERT_TRUE(hits.ok()) << hits.status().ToString();
  EXPECT_GT(stream->num_segments(), 0u);
}

TEST_F(StreamingIngestTest, RandomChunksMatchBatch) {
  SegDiffOptions options;
  auto batch = BuildBatch(options);
  // Property: ANY chunking with one final flush is byte-identical to the
  // one-shot batch. Deterministic seed so failures reproduce.
  std::mt19937 rng(20080325);
  std::uniform_int_distribution<size_t> chunk_len(1, 97);
  auto stream = OpenStore(stream_path_, options);
  size_t pos = 0;
  while (pos < series_.size()) {
    const size_t len = std::min(chunk_len(rng), series_.size() - pos);
    if (len == 1) {
      ASSERT_TRUE(
          stream->AppendObservation(series_[pos].t, series_[pos].v).ok());
    } else {
      Series chunk;
      for (size_t i = pos; i < pos + len; ++i) {
        ASSERT_TRUE(chunk.Append(series_[i]).ok());
      }
      // AppendSeries (unlike IngestSeries) does not flush, so chunk
      // boundaries leave no trace in the segmentation.
      ASSERT_TRUE(stream->AppendSeries(chunk).ok());
    }
    pos += len;
  }
  ASSERT_TRUE(stream->FlushPending().ok());
  ExpectSameTables(stream.get(), batch.get());
  ExpectSameSearches(stream.get(), batch.get());
}

TEST_F(StreamingIngestTest, ChunkedIngestSeriesKeepsApproximationTight) {
  // IngestSeries flushes per call; the flushed boundary must still chain
  // segments contiguously (anchor = previous endpoint), keeping the
  // piecewise approximation gap-free across chunks.
  SegDiffOptions options;
  auto stream = OpenStore(stream_path_, options);
  const size_t half = series_.size() / 2;
  Series first, second;
  for (size_t i = 0; i < series_.size(); ++i) {
    ASSERT_TRUE((i < half ? first : second).Append(series_[i]).ok());
  }
  ASSERT_TRUE(stream->IngestSeries(first).ok());
  ASSERT_TRUE(stream->IngestSeries(second).ok());
  const std::vector<std::string> segments =
      TableRecords(stream->db(), "segments");
  ASSERT_GT(segments.size(), 1u);
  for (size_t i = 1; i < segments.size(); ++i) {
    const double prev_end_t = DecodeDouble(segments[i - 1].data() + 16);
    const double start_t = DecodeDouble(segments[i].data());
    EXPECT_EQ(prev_end_t, start_t) << "gap before segment " << i;
  }
}

TEST_F(StreamingIngestTest, ReopenResumesAppending) {
  SegDiffOptions options;
  auto batch = BuildBatch(options);
  const size_t half = series_.size() / 2;
  {
    auto stream = OpenStore(stream_path_, options);
    for (size_t i = 0; i < half; ++i) {
      ASSERT_TRUE(stream->AppendObservation(series_[i].t, series_[i].v).ok());
    }
    ASSERT_TRUE(stream->Checkpoint().ok());
  }
  // Reopen with DEFAULT options: eps/window/collect flags come from the
  // store, and the open segment + pair window resume mid-flight.
  SegDiffOptions reopen;
  reopen.create_if_missing = false;
  auto stream = OpenStore(stream_path_, reopen);
  EXPECT_EQ(stream->num_observations(), half);
  for (size_t i = half; i < series_.size(); ++i) {
    ASSERT_TRUE(stream->AppendObservation(series_[i].t, series_[i].v).ok());
  }
  ASSERT_TRUE(stream->FlushPending().ok());
  ExpectSameTables(stream.get(), batch.get());
  ExpectSameSearches(stream.get(), batch.get());
}

TEST_F(StreamingIngestTest, DestructorPersistsIngestState) {
  SegDiffOptions options;
  auto batch = BuildBatch(options);
  const size_t half = series_.size() / 2;
  {
    auto stream = OpenStore(stream_path_, options);
    for (size_t i = 0; i < half; ++i) {
      ASSERT_TRUE(stream->AppendObservation(series_[i].t, series_[i].v).ok());
    }
    // No explicit Checkpoint: destruction alone must persist the state.
  }
  SegDiffOptions reopen;
  reopen.create_if_missing = false;
  auto stream = OpenStore(stream_path_, reopen);
  EXPECT_EQ(stream->num_observations(), half);
  for (size_t i = half; i < series_.size(); ++i) {
    ASSERT_TRUE(stream->AppendObservation(series_[i].t, series_[i].v).ok());
  }
  ASSERT_TRUE(stream->FlushPending().ok());
  ExpectSameTables(stream.get(), batch.get());
}

TEST_F(StreamingIngestTest, ReopenAdoptsPersistedBuildParameters) {
  SegDiffOptions build;
  build.eps = 0.5;
  build.window_s = 4 * 3600.0;
  build.collect_jumps = false;
  build.build_indexes = false;
  {
    auto stream = OpenStore(stream_path_, build);
    ASSERT_TRUE(stream->IngestSeries(series_).ok());
  }
  SegDiffOptions reopen;  // defaults everywhere
  reopen.create_if_missing = false;
  auto stream = OpenStore(stream_path_, reopen);
  EXPECT_DOUBLE_EQ(stream->options().eps, 0.5);
  EXPECT_DOUBLE_EQ(stream->options().window_s, 4 * 3600.0);
  EXPECT_FALSE(stream->options().collect_jumps);
  EXPECT_TRUE(stream->options().collect_drops);
  EXPECT_FALSE(stream->options().build_indexes);
  // An index scan must be rejected, proving the adopted build_indexes
  // (not the passed default true) governs the search path.
  SearchOptions search;
  search.mode = QueryMode::kIndexScan;
  EXPECT_TRUE(
      stream->SearchDrops(3600.0, -3.0, search).status().IsInvalidArgument());
}

TEST_F(StreamingIngestTest, LegacyStoreResumesFromSegmentDirectory) {
  SegDiffOptions options;
  const size_t half = series_.size() / 2;
  {
    auto stream = OpenStore(stream_path_, options);
    Series first;
    for (size_t i = 0; i < half; ++i) {
      ASSERT_TRUE(first.Append(series_[i]).ok());
    }
    ASSERT_TRUE(stream->IngestSeries(first).ok());
    // The store handle persists its state on destruction, so strip the
    // blob afterwards through a raw database handle — simulating a store
    // written before ingest-state persistence existed (tables + catalog
    // only).
  }
  {
    DatabaseOptions raw_options;
    raw_options.create_if_missing = false;
    auto raw = Database::Open(stream_path_, raw_options);
    ASSERT_TRUE(raw.ok()) << raw.status().ToString();
    EXPECT_TRUE((*raw)->EraseMeta("segdiff.ingest").value_or(false));
    ASSERT_TRUE((*raw)->Checkpoint().ok());
  }
  SegDiffOptions reopen;
  reopen.create_if_missing = false;
  auto stream = OpenStore(stream_path_, reopen);
  // Lifetime observation counters are unknowable for legacy stores...
  EXPECT_EQ(stream->num_observations(), 0u);
  // ...but the pair window and segment anchor are reconstructed, so
  // appending the rest produces the exact batch feature tables. (The
  // first-half IngestSeries already flushed at `half`, matching the
  // flush the batch oracle only performs at the end — so give the oracle
  // the same mid-point flush for a fair byte-level comparison.)
  const std::string oracle_path = UniqueTestPath("streaming", "_oracle.db");
  std::remove(oracle_path.c_str());
  auto oracle = OpenStore(oracle_path, options);
  Series first, second;
  for (size_t i = 0; i < series_.size(); ++i) {
    ASSERT_TRUE((i < half ? first : second).Append(series_[i]).ok());
  }
  Status st = oracle->IngestSeries(first);
  ASSERT_TRUE(st.ok()) << st.ToString();
  st = oracle->IngestSeries(second);
  ASSERT_TRUE(st.ok()) << st.ToString();
  st = stream->IngestSeries(second);
  ASSERT_TRUE(st.ok()) << st.ToString();
  std::remove(oracle_path.c_str());
  ExpectSameTables(stream.get(), oracle.get(), /*check_counters=*/false);
  // Searches compare against the equally-chunked oracle, not the batch
  // store: the extra flush at `half` is a real (legitimate) segment
  // boundary, so one-shot segmentation can differ slightly.
  ExpectSameSearches(stream.get(), oracle.get());
}

TEST_F(StreamingIngestTest, StaleTimestampRejected) {
  SegDiffOptions options;
  auto stream = OpenStore(stream_path_, options);
  ASSERT_TRUE(stream->AppendObservation(1000.0, 12.0).ok());
  ASSERT_TRUE(stream->AppendObservation(1300.0, 12.1).ok());
  EXPECT_TRUE(stream->AppendObservation(1300.0, 12.2).IsInvalidArgument());
  EXPECT_TRUE(stream->AppendObservation(900.0, 12.2).IsInvalidArgument());
}

TEST_F(StreamingIngestTest, IngestStateSurvivesCompaction) {
  SegDiffOptions options;
  const size_t half = series_.size() / 2;
  {
    auto stream = OpenStore(stream_path_, options);
    for (size_t i = 0; i < half; ++i) {
      ASSERT_TRUE(stream->AppendObservation(series_[i].t, series_[i].v).ok());
    }
    // Deliberately no Checkpoint first: Compact() itself must save the
    // ingest state, so the compacted store is a consistent resume point
    // even when compaction races ahead of any explicit checkpoint.
    ASSERT_TRUE(stream->Compact(batch_path_ + ".compact").ok());
  }
  SegDiffOptions reopen;
  reopen.create_if_missing = false;
  auto compacted = OpenStore(batch_path_ + ".compact", reopen);
  EXPECT_EQ(compacted->num_observations(), half);
  ASSERT_TRUE(
      compacted->AppendObservation(series_[half].t, series_[half].v).ok());
  std::remove((batch_path_ + ".compact").c_str());
}

TEST_F(StreamingIngestTest, CorruptIngestStateFailsOpenCleanly) {
  SegDiffOptions options;
  {
    auto stream = OpenStore(stream_path_, options);
    for (size_t i = 0; i < series_.size() / 2; ++i) {
      ASSERT_TRUE(stream->AppendObservation(series_[i].t, series_[i].v).ok());
    }
  }
  const std::string garbage = "garbage";
  {
    DatabaseOptions raw_options;
    raw_options.create_if_missing = false;
    auto raw = Database::Open(stream_path_, raw_options);
    ASSERT_TRUE(raw.ok()) << raw.status().ToString();
    (*raw)->PutMeta("segdiff.ingest", garbage);
    ASSERT_TRUE((*raw)->Checkpoint().ok());
  }
  SegDiffOptions reopen;
  reopen.create_if_missing = false;
  // The corruption surfaces as a clean error — no crash in the
  // partially-built index's destructor...
  auto failed = SegDiffIndex::Open(stream_path_, reopen);
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE(failed.status().IsCorruption()) << failed.status().ToString();
  // ...and the failed open left the store byte-for-byte alone: the bad
  // blob is still there to diagnose, not silently replaced by a default
  // state that would mask the corruption on the next open.
  DatabaseOptions raw_options;
  raw_options.create_if_missing = false;
  auto raw = Database::Open(stream_path_, raw_options);
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  auto blob = (*raw)->GetMeta("segdiff.ingest");
  ASSERT_TRUE(blob.ok()) << blob.status().ToString();
  EXPECT_EQ(*blob, garbage);
}

TEST_F(StreamingIngestTest, OutOfOrderSegmentDirectoryRejected) {
  SegDiffOptions options;
  {
    auto stream = OpenStore(stream_path_, options);
    Series first;
    for (size_t i = 0; i < series_.size() / 2; ++i) {
      ASSERT_TRUE(first.Append(series_[i]).ok());
    }
    ASSERT_TRUE(stream->IngestSeries(first).ok());
  }
  {
    // Simulate a corrupted legacy store: no ingest blob, and a segment
    // appended out of temporal order at the end of the directory.
    DatabaseOptions raw_options;
    raw_options.create_if_missing = false;
    auto raw = Database::Open(stream_path_, raw_options);
    ASSERT_TRUE(raw.ok()) << raw.status().ToString();
    EXPECT_TRUE((*raw)->EraseMeta("segdiff.ingest").value_or(false));
    auto segments = (*raw)->GetTable("segments");
    ASSERT_TRUE(segments.ok());
    ASSERT_TRUE((*segments)->InsertDoubles({1.0, 0.0, 2.0, 0.0}).ok());
    ASSERT_TRUE((*raw)->Checkpoint().ok());
  }
  SegDiffOptions reopen;
  reopen.create_if_missing = false;
  auto failed = SegDiffIndex::Open(stream_path_, reopen);
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE(failed.status().IsCorruption()) << failed.status().ToString();
}

// ---------------------------------------------------------------------
// Exh baseline: same streaming + resume contract, one table.

class ExhStreamingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    batch_path_ = UniqueTestPath("exh_streaming", "_batch.db");
    stream_path_ = UniqueTestPath("exh_streaming", "_stream.db");
    std::remove(batch_path_.c_str());
    std::remove(stream_path_.c_str());
    series_ = MakeSeries(2);
  }
  void TearDown() override {
    std::remove(batch_path_.c_str());
    std::remove(stream_path_.c_str());
  }

  std::unique_ptr<ExhIndex> OpenStore(const std::string& path,
                                      const ExhOptions& options) {
    auto store = ExhIndex::Open(path, options);
    EXPECT_TRUE(store.ok()) << store.status().ToString();
    return std::move(store).value();
  }

  void ExpectSameExhTables(ExhIndex* actual, ExhIndex* expected) {
    const std::vector<std::string> a = TableRecords(actual->db(), "exh");
    const std::vector<std::string> e = TableRecords(expected->db(), "exh");
    ASSERT_EQ(a.size(), e.size());
    for (size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i], e[i]) << "exh record " << i << " differs";
    }
    EXPECT_EQ(actual->num_observations(), expected->num_observations());
  }

  std::string batch_path_;
  std::string stream_path_;
  Series series_;
};

TEST_F(ExhStreamingTest, ObservationAtATimeMatchesBatch) {
  ExhOptions options;
  options.window_s = 3600.0;  // keep the O(n * n_w) table small
  auto batch = OpenStore(batch_path_, options);
  ASSERT_TRUE(batch->IngestSeries(series_).ok());
  auto stream = OpenStore(stream_path_, options);
  for (const Sample& sample : series_) {
    ASSERT_TRUE(stream->AppendObservation(sample.t, sample.v).ok());
  }
  ASSERT_TRUE(stream->FlushPending().ok());  // no-op, but part of the API
  ExpectSameExhTables(stream.get(), batch.get());
}

TEST_F(ExhStreamingTest, ReopenResumesAppending) {
  ExhOptions options;
  options.window_s = 3600.0;
  auto batch = OpenStore(batch_path_, options);
  ASSERT_TRUE(batch->IngestSeries(series_).ok());
  const size_t half = series_.size() / 2;
  {
    auto stream = OpenStore(stream_path_, options);
    for (size_t i = 0; i < half; ++i) {
      ASSERT_TRUE(stream->AppendObservation(series_[i].t, series_[i].v).ok());
    }
    // Destructor persists the window.
  }
  ExhOptions reopen;  // window_s adopted from the store
  auto stream = OpenStore(stream_path_, reopen);
  EXPECT_EQ(stream->num_observations(), half);
  EXPECT_DOUBLE_EQ(stream->options().window_s, 3600.0);
  for (size_t i = half; i < series_.size(); ++i) {
    ASSERT_TRUE(stream->AppendObservation(series_[i].t, series_[i].v).ok());
  }
  ExpectSameExhTables(stream.get(), batch.get());
}

TEST_F(ExhStreamingTest, CorruptIngestStateFailsOpenCleanly) {
  ExhOptions options;
  options.window_s = 3600.0;
  {
    auto stream = OpenStore(stream_path_, options);
    for (size_t i = 0; i < series_.size() / 2; ++i) {
      ASSERT_TRUE(stream->AppendObservation(series_[i].t, series_[i].v).ok());
    }
  }
  const std::string garbage = "garbage";
  {
    DatabaseOptions raw_options;
    raw_options.create_if_missing = false;
    auto raw = Database::Open(stream_path_, raw_options);
    ASSERT_TRUE(raw.ok()) << raw.status().ToString();
    (*raw)->PutMeta("exh.ingest", garbage);
    ASSERT_TRUE((*raw)->Checkpoint().ok());
  }
  auto failed = ExhIndex::Open(stream_path_, options);
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE(failed.status().IsCorruption()) << failed.status().ToString();
  // The failed open neither crashed nor replaced the bad blob with a
  // default (empty-window) state.
  DatabaseOptions raw_options;
  raw_options.create_if_missing = false;
  auto raw = Database::Open(stream_path_, raw_options);
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  auto blob = (*raw)->GetMeta("exh.ingest");
  ASSERT_TRUE(blob.ok()) << blob.status().ToString();
  EXPECT_EQ(*blob, garbage);
}

}  // namespace
}  // namespace segdiff
