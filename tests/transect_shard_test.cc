// Sharded TransectIndex: the scatter-gather fan-out must be
// indistinguishable from the serial loop (byte-identical hits and
// deterministic SearchStats), the StoreLru must bound how many stores
// are open at once — including under concurrent searches on a tiny
// cache (TSan exercises the pin/evict races) — a corrupt shard catalog
// must fail loudly, one shared deadline must stop the whole fan-out
// promptly, and directory creation must flow through the Vfs so fault
// injection covers it.

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "test_paths.h"

#include "common/stopwatch.h"
#include "segdiff/transect_index.h"
#include "storage/fault_vfs.h"
#include "ts/generator.h"

namespace segdiff {
namespace {

constexpr int kSensors = 12;

/// Deterministic fields only: seconds and admission_wait_ms are
/// wall-clock and legitimately vary run to run.
void ExpectSameStats(const SearchStats& a, const SearchStats& b) {
  EXPECT_EQ(a.scan.rows_scanned, b.scan.rows_scanned);
  EXPECT_EQ(a.scan.rows_pruned, b.scan.rows_pruned);
  EXPECT_EQ(a.scan.pages_scanned, b.scan.pages_scanned);
  EXPECT_EQ(a.scan.pages_pruned, b.scan.pages_pruned);
  EXPECT_EQ(a.scan.index_entries_scanned, b.scan.index_entries_scanned);
  EXPECT_EQ(a.scan.heap_fetches, b.scan.heap_fetches);
  EXPECT_EQ(a.scan.rows_matched, b.scan.rows_matched);
  EXPECT_EQ(a.scan.pages_quarantined, b.scan.pages_quarantined);
  EXPECT_EQ(a.scan.rows_quarantined, b.scan.rows_quarantined);
  EXPECT_EQ(a.queries_issued, b.queries_issued);
  EXPECT_EQ(a.pairs_returned, b.pairs_returned);
  EXPECT_EQ(a.snapshot_observations, b.snapshot_observations);
  EXPECT_EQ(a.truncated, b.truncated);
  EXPECT_EQ(a.partial, b.partial);
  EXPECT_EQ(a.result_bytes_peak, b.result_bytes_peak);
}

class TransectShardTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = UniqueTestPath("transect_shard", "");
    Cleanup();
    CadGeneratorOptions gen;
    gen.num_days = 2;
    gen.cad_events_per_day = 1.0;
    auto data = GenerateCadTransect(gen, kSensors);
    ASSERT_TRUE(data.ok());
    for (auto& sensor : *data) {
      all_series_.push_back(std::move(sensor.series));
    }
  }
  void TearDown() override { Cleanup(); }
  void Cleanup() {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  TransectOptions SmallStores() const {
    TransectOptions options;
    options.store.window_s = 4 * 3600.0;
    options.store.buffer_pool_pages = 64;
    options.sensors_per_shard = 3;  // kSensors/3 = 4 shards
    return options;
  }

  Result<std::unique_ptr<TransectIndex>> BuildTransect(
      const TransectOptions& options) {
    auto transect = TransectIndex::Open(dir_, kSensors, options);
    if (!transect.ok()) {
      return transect.status();
    }
    Status status = (*transect)->IngestAllSensors(all_series_, 4);
    if (!status.ok()) {
      return status;
    }
    return transect;
  }

  std::string dir_;
  std::vector<Series> all_series_;
};

TEST_F(TransectShardTest, ParallelSearchMatchesSerialByteForByte) {
  auto transect = BuildTransect(SmallStores());
  ASSERT_TRUE(transect.ok()) << transect.status().ToString();

  SearchOptions serial;
  serial.num_threads = 0;
  TransectSearchStats serial_stats;
  auto serial_hits =
      (*transect)->SearchDrops(3600.0, -3.0, serial, &serial_stats);
  ASSERT_TRUE(serial_hits.ok()) << serial_hits.status().ToString();
  ASSERT_FALSE(serial_hits->empty());

  for (const size_t threads : {2u, 4u, 8u}) {
    SearchOptions parallel;
    parallel.num_threads = threads;
    TransectSearchStats parallel_stats;
    auto parallel_hits =
        (*transect)->SearchDrops(3600.0, -3.0, parallel, &parallel_stats);
    ASSERT_TRUE(parallel_hits.ok()) << parallel_hits.status().ToString();
    EXPECT_EQ(*serial_hits, *parallel_hits) << threads << " threads";
    ExpectSameStats(serial_stats, parallel_stats);
  }

  TransectSearchStats serial_jump_stats;
  auto serial_jumps =
      (*transect)->SearchJumps(2 * 3600.0, 2.0, serial, &serial_jump_stats);
  ASSERT_TRUE(serial_jumps.ok());
  SearchOptions parallel;
  parallel.num_threads = 4;
  TransectSearchStats parallel_jump_stats;
  auto parallel_jumps = (*transect)->SearchJumps(2 * 3600.0, 2.0, parallel,
                                                 &parallel_jump_stats);
  ASSERT_TRUE(parallel_jumps.ok());
  EXPECT_EQ(*serial_jumps, *parallel_jumps);
  ExpectSameStats(serial_jump_stats, parallel_jump_stats);
}

TEST_F(TransectShardTest, LruBoundsOpenStoresAndReopensTransparently) {
  TransectOptions options = SmallStores();
  options.max_open_stores = 2;
  auto transect = BuildTransect(options);
  ASSERT_TRUE(transect.ok()) << transect.status().ToString();

  StoreLruStats cache = (*transect)->store_stats();
  EXPECT_LE(cache.peak_open, 2u);
  EXPECT_GT(cache.evictions, 0u);  // 12 stores through 2 slots

  // Evicted stores were checkpointed and reopen on demand with the same
  // contents: the bounded transect returns exactly what an unbounded
  // one sees.
  SearchOptions fan_out;
  fan_out.num_threads = 4;  // clamped to max_open_stores internally
  TransectSearchStats bounded_stats;
  auto bounded =
      (*transect)->SearchDrops(3600.0, -3.0, fan_out, &bounded_stats);
  ASSERT_TRUE(bounded.ok()) << bounded.status().ToString();
  ASSERT_FALSE(bounded->empty());
  EXPECT_LE((*transect)->store_stats().peak_open, 2u);

  transect->reset();
  TransectOptions unbounded = SmallStores();
  auto reopened = TransectIndex::Open(dir_, kSensors, unbounded);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  TransectSearchStats unbounded_stats;
  auto all_open =
      (*reopened)->SearchDrops(3600.0, -3.0, {}, &unbounded_stats);
  ASSERT_TRUE(all_open.ok());
  EXPECT_EQ(*bounded, *all_open);
  ExpectSameStats(bounded_stats, unbounded_stats);
}

TEST_F(TransectShardTest, StreamingAppendsSurviveEviction) {
  TransectOptions options = SmallStores();
  options.max_open_stores = 2;
  auto transect = TransectIndex::Open(dir_, kSensors, options);
  ASSERT_TRUE(transect.ok()) << transect.status().ToString();

  // Interleave appends across every sensor so each store is repeatedly
  // evicted (checkpoint + close) with an open trailing segment, then
  // reopened to continue it.
  const Series& series = all_series_[0];
  const size_t count = std::min<size_t>(series.size(), 150);
  for (size_t i = 0; i < count; ++i) {
    for (int s = 0; s < kSensors; ++s) {
      ASSERT_TRUE(
          (*transect)
              ->AppendSensorObservation(s, series[i].t, series[i].v)
              .ok());
    }
  }
  ASSERT_TRUE((*transect)->FlushAllPending().ok());
  EXPECT_LE((*transect)->store_stats().peak_open, 2u);

  // Every sensor saw the same observations, so every sensor must hold
  // the same number of them — eviction lost nothing.
  for (int s = 0; s < kSensors; ++s) {
    auto store = (*transect)->sensor(s);
    ASSERT_TRUE(store.ok());
    EXPECT_EQ((*store)->num_observations(), count) << "sensor " << s;
  }
}

TEST_F(TransectShardTest, ConcurrentSearchesOnTinyCacheStayCorrect) {
  TransectOptions options = SmallStores();
  options.max_open_stores = 2;
  auto transect = BuildTransect(options);
  ASSERT_TRUE(transect.ok()) << transect.status().ToString();

  auto baseline = (*transect)->SearchDrops(3600.0, -3.0);
  ASSERT_TRUE(baseline.ok());
  ASSERT_FALSE(baseline->empty());

  // Searchers force constant evict/reopen churn through the 2-slot
  // cache while a maintenance thread checkpoints — the races TSan is
  // here to catch: pin vs evict, concurrent open of one sensor, LRU
  // list surgery.
  constexpr int kSearchers = 3;
  constexpr int kRounds = 3;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kSearchers; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < kRounds; ++round) {
        SearchOptions fan_out;
        fan_out.num_threads = 2;
        auto hits = (*transect)->SearchDrops(3600.0, -3.0, fan_out);
        if (!hits.ok() || *hits != *baseline) {
          failures.fetch_add(1);
        }
      }
    });
  }
  threads.emplace_back([&] {
    for (int round = 0; round < kRounds; ++round) {
      if (!(*transect)->Checkpoint().ok()) {
        failures.fetch_add(1);
      }
    }
  });
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_LE((*transect)->store_stats().peak_open, 2u);
}

TEST_F(TransectShardTest, CorruptCatalogFailsLoudly) {
  {
    auto transect = TransectIndex::Open(dir_, kSensors, SmallStores());
    ASSERT_TRUE(transect.ok()) << transect.status().ToString();
  }
  const std::string manifest =
      dir_ + "/" + ShardCatalog::kManifestName;

  // Flip one byte mid-file: the CRC must catch it.
  {
    FILE* f = std::fopen(manifest.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 10, SEEK_SET), 0);
    const int original = std::fgetc(f);
    ASSERT_NE(original, EOF);
    ASSERT_EQ(std::fseek(f, 10, SEEK_SET), 0);
    std::fputc(original ^ 0x40, f);
    std::fclose(f);
  }
  auto corrupt = TransectIndex::Open(dir_, kSensors, SmallStores());
  ASSERT_FALSE(corrupt.ok());
  EXPECT_TRUE(corrupt.status().IsCorruption())
      << corrupt.status().ToString();

  // Truncation (a torn manifest write) is corruption too, not NotFound.
  {
    FILE* f = std::fopen(manifest.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(::ftruncate(::fileno(f), 7), 0);
    std::fclose(f);
  }
  auto torn = TransectIndex::Open(dir_, kSensors, SmallStores());
  ASSERT_FALSE(torn.ok());
  EXPECT_TRUE(torn.status().IsCorruption()) << torn.status().ToString();
}

TEST_F(TransectShardTest, ReopenValidatesSensorCountAgainstCatalog) {
  {
    auto transect = TransectIndex::Open(dir_, kSensors, SmallStores());
    ASSERT_TRUE(transect.ok());
  }
  auto mismatch =
      TransectIndex::Open(dir_, kSensors + 1, SmallStores());
  ASSERT_FALSE(mismatch.ok());
  EXPECT_TRUE(mismatch.status().IsInvalidArgument());

  // <= 0 on reopen adopts the persisted count (CLI convenience).
  auto adopted = TransectIndex::Open(dir_, 0, SmallStores());
  ASSERT_TRUE(adopted.ok()) << adopted.status().ToString();
  EXPECT_EQ((*adopted)->sensor_count(), kSensors);
}

TEST_F(TransectShardTest, LegacyFlatLayoutIsAdoptedInPlace) {
  // A pre-sharding transect: sensor<k>.db directly under the root, no
  // catalog.
  TransectOptions options = SmallStores();
  ASSERT_TRUE(Vfs::Default()->MakeDir(dir_).ok());
  for (int s = 0; s < kSensors; ++s) {
    auto store = SegDiffIndex::Open(
        dir_ + "/sensor" + std::to_string(s) + ".db", options.store);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    ASSERT_TRUE(
        (*store)->IngestSeries(all_series_[static_cast<size_t>(s)]).ok());
  }

  auto transect = TransectIndex::Open(dir_, kSensors, options);
  ASSERT_TRUE(transect.ok()) << transect.status().ToString();
  for (size_t i = 0; i < (*transect)->catalog().shard_count(); ++i) {
    EXPECT_EQ((*transect)->catalog().shard(i).dir, "");  // adopted flat
  }
  auto hits = (*transect)->SearchDrops(3600.0, -3.0);
  ASSERT_TRUE(hits.ok()) << hits.status().ToString();
  EXPECT_FALSE(hits->empty());  // found the pre-existing data
}

TEST_F(TransectShardTest, SharedDeadlineStopsTheWholeFanOutPromptly) {
  auto transect = BuildTransect(SmallStores());
  ASSERT_TRUE(transect.ok()) << transect.status().ToString();

  SearchOptions governed;
  governed.num_threads = 4;
  governed.deadline = Deadline::AfterMillis(0);
  Stopwatch watch;
  auto expired = (*transect)->SearchDrops(3600.0, -3.0, governed);
  ASSERT_FALSE(expired.ok());
  EXPECT_TRUE(expired.status().IsDeadlineExceeded())
      << expired.status().ToString();
  // Promptly: nowhere near the time a full 12-sensor scan takes.
  EXPECT_LT(watch.ElapsedSeconds(), 5.0);

  // The expired search left no pins behind; the transect still works.
  auto after = (*transect)->SearchDrops(3600.0, -3.0, {});
  EXPECT_TRUE(after.ok());
}

TEST_F(TransectShardTest, DirectoryCreationGoesThroughTheVfs) {
  FaultInjectionVfs vfs;
  TransectOptions options = SmallStores();
  options.store.vfs = &vfs;
  options.store.wal = false;  // keep the store simple under the wrapper

  // Root + 4 shard directories, all through the Vfs.
  {
    auto transect = TransectIndex::Open(dir_, kSensors, options);
    ASSERT_TRUE(transect.ok()) << transect.status().ToString();
    EXPECT_GE(vfs.counters().mkdirs, 5u);
  }

  Cleanup();
  vfs.Reset();
  vfs.FailAfterMkdirs(1);  // root succeeds, first shard dir fails
  auto failed = TransectIndex::Open(dir_, kSensors, options);
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE(failed.status().IsIOError()) << failed.status().ToString();
}

}  // namespace
}  // namespace segdiff
