// Tests for ts/series, ts/interpolate (Model G), and ts/io.

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "test_paths.h"

#include "ts/interpolate.h"
#include "ts/io.h"
#include "ts/series.h"

namespace segdiff {
namespace {

Series MakeSeries(std::vector<Sample> samples) {
  auto result = Series::FromSamples(std::move(samples));
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

TEST(SeriesTest, FromSamplesValid) {
  Series series = MakeSeries({{0, 1}, {1, 2}, {2, 0}});
  EXPECT_EQ(series.size(), 3u);
  EXPECT_EQ(series.front().v, 1);
  EXPECT_EQ(series.back().v, 0);
  EXPECT_DOUBLE_EQ(series.Duration(), 2.0);
}

TEST(SeriesTest, RejectsNonIncreasingTime) {
  auto result = Series::FromSamples({{0, 1}, {0, 2}});
  EXPECT_TRUE(result.status().IsInvalidArgument());
  result = Series::FromSamples({{1, 1}, {0, 2}});
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(SeriesTest, RejectsNonFinite) {
  auto result =
      Series::FromSamples({{0, std::numeric_limits<double>::quiet_NaN()}});
  EXPECT_TRUE(result.status().IsInvalidArgument());
  result = Series::FromSamples(
      {{std::numeric_limits<double>::infinity(), 1.0}});
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(SeriesTest, AppendMaintainsOrder) {
  Series series;
  EXPECT_TRUE(series.Append({1, 5}).ok());
  EXPECT_TRUE(series.Append({2, 6}).ok());
  EXPECT_TRUE(series.Append({2, 7}).IsInvalidArgument());
  EXPECT_EQ(series.size(), 2u);
}

TEST(SeriesTest, SliceInclusive) {
  Series series = MakeSeries({{0, 0}, {1, 1}, {2, 2}, {3, 3}, {4, 4}});
  Series slice = series.Slice(1.0, 3.0);
  ASSERT_EQ(slice.size(), 3u);
  EXPECT_EQ(slice[0].t, 1.0);
  EXPECT_EQ(slice[2].t, 3.0);
  EXPECT_TRUE(series.Slice(10, 20).empty());
  EXPECT_TRUE(series.Slice(3, 1).empty());
}

TEST(SeriesTest, Stats) {
  Series series = MakeSeries({{0, 2}, {1, -1}, {3, 5}});
  SeriesStats stats = series.Stats();
  EXPECT_EQ(stats.count, 3u);
  EXPECT_DOUBLE_EQ(stats.min_v, -1);
  EXPECT_DOUBLE_EQ(stats.max_v, 5);
  EXPECT_DOUBLE_EQ(stats.mean_v, 2.0);
  EXPECT_DOUBLE_EQ(stats.min_dt, 1.0);
  EXPECT_DOUBLE_EQ(stats.max_dt, 2.0);
}

TEST(SeriesTest, EmptyStats) {
  Series series;
  EXPECT_EQ(series.Stats().count, 0u);
  EXPECT_DOUBLE_EQ(series.Duration(), 0.0);
}

TEST(ModelGTest, InterpolatesBetweenSamples) {
  Series series = MakeSeries({{0, 0}, {10, 10}, {20, 0}});
  ModelGEvaluator eval(series);
  EXPECT_DOUBLE_EQ(eval.ValueAt(0).value(), 0.0);
  EXPECT_DOUBLE_EQ(eval.ValueAt(5).value(), 5.0);
  EXPECT_DOUBLE_EQ(eval.ValueAt(10).value(), 10.0);
  EXPECT_DOUBLE_EQ(eval.ValueAt(15).value(), 5.0);
  EXPECT_DOUBLE_EQ(eval.ValueAt(20).value(), 0.0);
}

TEST(ModelGTest, OutOfRange) {
  Series series = MakeSeries({{0, 0}, {10, 10}});
  ModelGEvaluator eval(series);
  EXPECT_TRUE(eval.ValueAt(-1).status().IsOutOfRange());
  EXPECT_TRUE(eval.ValueAt(11).status().IsOutOfRange());
}

TEST(ModelGTest, RandomAccessMatchesSequential) {
  std::vector<Sample> samples;
  for (int i = 0; i <= 100; ++i) {
    samples.push_back({static_cast<double>(i), std::sin(i * 0.3) * 10});
  }
  Series series = MakeSeries(samples);
  ModelGEvaluator seq(series);
  ModelGEvaluator rnd(series);
  // Sequential pass.
  std::vector<double> ts;
  std::vector<double> seq_values;
  for (double t = 0.0; t <= 100.0; t += 0.37) {
    ts.push_back(t);
    seq_values.push_back(seq.ValueAt(t).value());
  }
  // Reverse pass stresses the hint logic (non-sequential access).
  for (size_t i = ts.size(); i-- > 0;) {
    EXPECT_DOUBLE_EQ(rnd.ValueAt(ts[i]).value(), seq_values[i]) << ts[i];
  }
}

TEST(ModelGTest, LerpEndpoints) {
  Sample a{0, 3};
  Sample b{4, 11};
  EXPECT_DOUBLE_EQ(Lerp(a, b, 0), 3);
  EXPECT_DOUBLE_EQ(Lerp(a, b, 4), 11);
  EXPECT_DOUBLE_EQ(Lerp(a, b, 2), 7);
  EXPECT_DOUBLE_EQ(Lerp(a, a, 0), 3);  // degenerate guard
}

class IoTest : public ::testing::Test {
 protected:
  void TearDown() override {
    std::remove(csv_path_.c_str());
    std::remove(bin_path_.c_str());
  }
  std::string csv_path_ = UniqueTestPath("segdiff_io", ".csv");
  std::string bin_path_ = UniqueTestPath("segdiff_io", ".bin");
};

TEST_F(IoTest, CsvRoundTrip) {
  Series series = MakeSeries({{0.5, -3.25}, {1.75, 2.0}, {3.0, 1e-9}});
  ASSERT_TRUE(WriteSeriesCsv(series, csv_path_).ok());
  auto loaded = ReadSeriesCsv(csv_path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), series.size());
  for (size_t i = 0; i < series.size(); ++i) {
    EXPECT_DOUBLE_EQ((*loaded)[i].t, series[i].t);
    EXPECT_DOUBLE_EQ((*loaded)[i].v, series[i].v);
  }
}

TEST_F(IoTest, CsvRejectsMalformed) {
  FILE* f = std::fopen(csv_path_.c_str(), "w");
  std::fprintf(f, "# comment\n1.0,2.0\nnot,numbers,here\n");
  std::fclose(f);
  auto loaded = ReadSeriesCsv(csv_path_);
  EXPECT_TRUE(loaded.status().IsCorruption());
}

TEST_F(IoTest, CsvMissingFile) {
  auto loaded = ReadSeriesCsv(testing::TempDir() + "/does_not_exist.csv");
  EXPECT_TRUE(loaded.status().IsIOError());
}

TEST_F(IoTest, BinaryRoundTrip) {
  std::vector<Sample> samples;
  for (int i = 0; i < 1000; ++i) {
    samples.push_back({i * 0.1, std::cos(i * 0.01) * 100});
  }
  Series series = MakeSeries(samples);
  ASSERT_TRUE(WriteSeriesBinary(series, bin_path_).ok());
  auto loaded = ReadSeriesBinary(bin_path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), series.size());
  for (size_t i = 0; i < series.size(); ++i) {
    EXPECT_EQ((*loaded)[i].t, series[i].t);  // bit-exact
    EXPECT_EQ((*loaded)[i].v, series[i].v);
  }
}

TEST_F(IoTest, BinaryDetectsBadMagic) {
  FILE* f = std::fopen(bin_path_.c_str(), "wb");
  const char garbage[32] = {1, 2, 3};
  std::fwrite(garbage, 1, sizeof(garbage), f);
  std::fclose(f);
  auto loaded = ReadSeriesBinary(bin_path_);
  EXPECT_TRUE(loaded.status().IsCorruption());
}

TEST_F(IoTest, BinaryDetectsTruncation) {
  Series series = MakeSeries({{0, 1}, {1, 2}, {2, 3}});
  ASSERT_TRUE(WriteSeriesBinary(series, bin_path_).ok());
  ASSERT_EQ(::truncate(bin_path_.c_str(), 24), 0);
  auto loaded = ReadSeriesBinary(bin_path_);
  EXPECT_TRUE(loaded.status().IsCorruption());
}

TEST_F(IoTest, EmptySeriesRoundTrips) {
  Series series;
  ASSERT_TRUE(WriteSeriesBinary(series, bin_path_).ok());
  auto loaded = ReadSeriesBinary(bin_path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->empty());
  ASSERT_TRUE(WriteSeriesCsv(series, csv_path_).ok());
  auto csv = ReadSeriesCsv(csv_path_);
  ASSERT_TRUE(csv.ok());
  EXPECT_TRUE(csv->empty());
}

}  // namespace
}  // namespace segdiff
