// Tests for the minidb substrate: pager, buffer pool, records, heap
// files, tables, catalog, and database reopen.

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "test_paths.h"

#include "common/random.h"
#include "storage/buffer_pool.h"
#include "storage/db.h"
#include "storage/heap_file.h"
#include "storage/pager.h"
#include "storage/record.h"

namespace segdiff {
namespace {

class StorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = UniqueTestPath("segdiff_storage");
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(StorageTest, PagerCreatesAndReopens) {
  {
    auto pager = Pager::Open(path_, /*create=*/true);
    ASSERT_TRUE(pager.ok()) << pager.status().ToString();
    EXPECT_EQ((*pager)->page_count(), 1u);  // header only
    auto page = (*pager)->AllocatePage();
    ASSERT_TRUE(page.ok());
    EXPECT_EQ(*page, 1u);
    char buf[kPageSize] = {};
    buf[0] = 'x';
    ASSERT_TRUE((*pager)->WritePage(*page, buf).ok());
    ASSERT_TRUE((*pager)->Sync().ok());
  }
  {
    auto pager = Pager::Open(path_, /*create=*/false);
    ASSERT_TRUE(pager.ok());
    EXPECT_EQ((*pager)->page_count(), 2u);
    char buf[kPageSize];
    ASSERT_TRUE((*pager)->ReadPage(1, buf).ok());
    EXPECT_EQ(buf[0], 'x');
    EXPECT_EQ((*pager)->FileSizeBytes(), 2 * kPageSize);
  }
}

TEST_F(StorageTest, PagerRejectsOutOfBounds) {
  auto pager = Pager::Open(path_, true);
  ASSERT_TRUE(pager.ok());
  char buf[kPageSize];
  EXPECT_TRUE((*pager)->ReadPage(5, buf).IsInvalidArgument());
  EXPECT_TRUE((*pager)->WritePage(5, buf).IsInvalidArgument());
}

TEST_F(StorageTest, PagerMissingFileFails) {
  auto pager = Pager::Open(path_, /*create=*/false);
  EXPECT_TRUE(pager.status().IsIOError());
}

TEST_F(StorageTest, PagerDetectsCorruptHeader) {
  {
    FILE* f = std::fopen(path_.c_str(), "wb");
    std::string garbage(kPageSize, 'z');
    std::fwrite(garbage.data(), 1, garbage.size(), f);
    std::fclose(f);
  }
  auto pager = Pager::Open(path_, false);
  EXPECT_TRUE(pager.status().IsCorruption());
}

TEST_F(StorageTest, RecordIdPackRoundTrip) {
  RecordId id{123456, 789};
  RecordId back = RecordId::Unpack(id.Pack());
  EXPECT_EQ(back, id);
}

TEST_F(StorageTest, BufferPoolCachesAndEvicts) {
  auto pager = Pager::Open(path_, true);
  ASSERT_TRUE(pager.ok());
  BufferPool pool(pager->get(), /*capacity_pages=*/4);
  std::vector<PageId> pages;
  for (int i = 0; i < 8; ++i) {
    auto handle = pool.AllocatePinned();
    ASSERT_TRUE(handle.ok());
    handle->data()[0] = static_cast<char>('a' + i);
    handle->MarkDirty();
    pages.push_back(handle->page_id());
  }
  // All 8 pages readable even though only 4 fit (evictions wrote back).
  for (int i = 0; i < 8; ++i) {
    auto handle = pool.Fetch(pages[i]);
    ASSERT_TRUE(handle.ok());
    EXPECT_EQ(handle->data()[0], static_cast<char>('a' + i));
  }
  EXPECT_GT(pool.stats().evictions, 0u);
  EXPECT_GT(pool.stats().dirty_writebacks, 0u);
}

TEST_F(StorageTest, BufferPoolHitMissAccounting) {
  auto pager = Pager::Open(path_, true);
  BufferPool pool(pager->get(), 8);
  auto handle = pool.AllocatePinned();
  ASSERT_TRUE(handle.ok());
  const PageId id = handle->page_id();
  handle->Release();
  const uint64_t misses_before = pool.stats().misses;
  for (int i = 0; i < 5; ++i) {
    auto again = pool.Fetch(id);
    ASSERT_TRUE(again.ok());
  }
  EXPECT_EQ(pool.stats().misses, misses_before);
  EXPECT_GE(pool.stats().hits, 5u);
}

TEST_F(StorageTest, BufferPoolDropAllForcesColdReads) {
  auto pager = Pager::Open(path_, true);
  BufferPool pool(pager->get(), 8);
  PageId id;
  {
    auto handle = pool.AllocatePinned();
    ASSERT_TRUE(handle.ok());
    handle->data()[7] = 42;
    handle->MarkDirty();
    id = handle->page_id();
  }
  ASSERT_TRUE(pool.DropAll().ok());
  EXPECT_EQ(pool.cached_pages(), 0u);
  const uint64_t misses_before = pool.stats().misses;
  auto handle = pool.Fetch(id);
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ(handle->data()[7], 42);  // survived the flush
  EXPECT_EQ(pool.stats().misses, misses_before + 1);
}

TEST_F(StorageTest, BufferPoolRefusesDropWithPins) {
  auto pager = Pager::Open(path_, true);
  BufferPool pool(pager->get(), 8);
  auto handle = pool.AllocatePinned();
  ASSERT_TRUE(handle.ok());
  EXPECT_TRUE(pool.DropAll().IsInternal());
  handle->Release();
  EXPECT_TRUE(pool.DropAll().ok());
}

TEST_F(StorageTest, BufferPoolExhaustsWhenAllPinned) {
  auto pager = Pager::Open(path_, true);
  BufferPool pool(pager->get(), 2);
  auto h1 = pool.AllocatePinned();
  auto h2 = pool.AllocatePinned();
  ASSERT_TRUE(h1.ok());
  ASSERT_TRUE(h2.ok());
  auto h3 = pool.AllocatePinned();
  EXPECT_TRUE(h3.status().IsInternal());
}

TEST_F(StorageTest, SchemaValidation) {
  EXPECT_TRUE(DoubleSchema({}).status().IsInvalidArgument());
  EXPECT_TRUE(DoubleSchema({"a", "a"}).status().IsInvalidArgument());
  EXPECT_TRUE(
      TableSchema::Create({Column{"", ColumnType::kDouble}})
          .status()
          .IsInvalidArgument());
  auto schema = DoubleSchema({"x", "y"});
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->RowBytes(), 16u);
  EXPECT_EQ(schema->ColumnIndex("y").value(), 1u);
  EXPECT_TRUE(schema->ColumnIndex("z").status().IsNotFound());
}

TEST_F(StorageTest, RowEncodeDecodeRoundTrip) {
  auto schema = TableSchema::Create({Column{"d", ColumnType::kDouble},
                                     Column{"i", ColumnType::kInt64}});
  ASSERT_TRUE(schema.ok());
  Row row = {Value::Double(-3.25), Value::Int64(-42)};
  char buf[16];
  ASSERT_TRUE(EncodeRow(*schema, row, buf).ok());
  Row back = DecodeRow(*schema, buf);
  EXPECT_DOUBLE_EQ(back[0].d, -3.25);
  EXPECT_EQ(back[1].i, -42);
  EXPECT_DOUBLE_EQ(DecodeDoubleColumn(buf, 0), -3.25);

  // Arity and type mismatches rejected.
  Row short_row = {Value::Double(1)};
  EXPECT_TRUE(EncodeRow(*schema, short_row, buf).IsInvalidArgument());
  Row wrong_type = {Value::Int64(1), Value::Int64(2)};
  EXPECT_TRUE(EncodeRow(*schema, wrong_type, buf).IsInvalidArgument());
}

TEST_F(StorageTest, HeapFileAppendScanAcrossPages) {
  auto pager = Pager::Open(path_, true);
  BufferPool pool(pager->get(), 16);
  auto heap = HeapFile::Create(&pool, /*record_bytes=*/64);
  ASSERT_TRUE(heap.ok());
  const int n = 1000;  // ~8 pages at 127 records/page
  for (int i = 0; i < n; ++i) {
    char record[64] = {};
    std::snprintf(record, sizeof(record), "rec-%d", i);
    ASSERT_TRUE(heap->Append(record).ok());
  }
  EXPECT_EQ(heap->meta().record_count, static_cast<uint64_t>(n));
  EXPECT_GT(heap->meta().page_count, 4u);
  int seen = 0;
  ASSERT_TRUE(heap->Scan([&](const char* record, RecordId, bool* keep) {
                    *keep = true;
                    char expect[64];
                    std::snprintf(expect, sizeof(expect), "rec-%d", seen);
                    EXPECT_STREQ(record, expect);
                    ++seen;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(seen, n);
}

TEST_F(StorageTest, HeapFileReadRecordById) {
  auto pager = Pager::Open(path_, true);
  BufferPool pool(pager->get(), 16);
  auto heap = HeapFile::Create(&pool, 16);
  ASSERT_TRUE(heap.ok());
  std::vector<RecordId> ids;
  for (int i = 0; i < 2000; ++i) {
    char record[16];
    std::snprintf(record, sizeof(record), "%d", i);
    auto id = heap->Append(record);
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }
  char buf[16];
  ASSERT_TRUE(heap->ReadRecord(ids[1537], buf).ok());
  EXPECT_STREQ(buf, "1537");
  // Slot out of range.
  EXPECT_TRUE(
      heap->ReadRecord(RecordId{ids[0].page, 60000}, buf).IsNotFound());
}

TEST_F(StorageTest, HeapFileScanEarlyStop) {
  auto pager = Pager::Open(path_, true);
  BufferPool pool(pager->get(), 16);
  auto heap = HeapFile::Create(&pool, 8);
  for (int i = 0; i < 100; ++i) {
    char record[8] = {};
    ASSERT_TRUE(heap->Append(record).ok());
  }
  int visits = 0;
  ASSERT_TRUE(heap->Scan([&](const char*, RecordId, bool* keep) {
                    *keep = ++visits < 10;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(visits, 10);
}

TEST_F(StorageTest, HeapFileRejectsOversizeRecord) {
  auto pager = Pager::Open(path_, true);
  BufferPool pool(pager->get(), 4);
  EXPECT_TRUE(
      HeapFile::Create(&pool, kPageSize).status().IsInvalidArgument());
  EXPECT_TRUE(HeapFile::Create(&pool, 0).status().IsInvalidArgument());
}

TEST_F(StorageTest, TableInsertScanAndIndexes) {
  DatabaseOptions options;
  auto db = Database::Open(path_, options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  auto schema = DoubleSchema({"a", "b", "c"});
  ASSERT_TRUE(schema.ok());
  auto table = (*db)->CreateTable("t", *schema);
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE((*table)->CreateIndex("ab", {"a", "b"}).ok());

  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE((*table)
                    ->InsertDoubles({rng.Uniform(0, 10), rng.Uniform(-5, 5),
                                     static_cast<double>(i)})
                    .ok());
  }
  EXPECT_EQ((*table)->row_count(), 500u);
  EXPECT_GT((*table)->DataSizeBytes(), 0u);
  EXPECT_GT((*table)->IndexSizeBytes(), 0u);
  auto index = (*table)->GetIndex("ab");
  ASSERT_TRUE(index.ok());
  EXPECT_EQ((*index)->entry_count(), 500u);
  EXPECT_TRUE((*index)->CheckInvariants().ok());
  EXPECT_TRUE((*table)->GetIndex("zz").status().IsNotFound());
  EXPECT_TRUE((*table)->CreateIndex("ab", {"a"}).status().IsAlreadyExists());
  EXPECT_TRUE(
      (*table)->CreateIndex("bad", {"nope"}).status().IsNotFound());
  EXPECT_TRUE((*table)->CreateIndex("none", {}).status().IsInvalidArgument());
}

TEST_F(StorageTest, IndexBackfillOnLateCreation) {
  DatabaseOptions options;
  auto db = Database::Open(path_, options);
  auto schema = DoubleSchema({"x"});
  auto table = (*db)->CreateTable("t", *schema);
  ASSERT_TRUE(table.ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE((*table)->InsertDoubles({static_cast<double>(i)}).ok());
  }
  auto index = (*table)->CreateIndex("x", {"x"});
  ASSERT_TRUE(index.ok());
  EXPECT_EQ((*index)->entry_count(), 100u);
  EXPECT_TRUE((*index)->CheckInvariants().ok());
}

TEST_F(StorageTest, DatabaseReopenRestoresEverything) {
  {
    auto db = Database::Open(path_, DatabaseOptions{});
    ASSERT_TRUE(db.ok());
    auto schema = DoubleSchema({"k", "v"});
    auto table = (*db)->CreateTable("kv", *schema);
    ASSERT_TRUE(table.ok());
    ASSERT_TRUE((*table)->CreateIndex("k", {"k"}).ok());
    for (int i = 0; i < 300; ++i) {
      ASSERT_TRUE(
          (*table)->InsertDoubles({static_cast<double>(i), i * 2.0}).ok());
    }
    ASSERT_TRUE((*db)->Checkpoint().ok());
  }
  {
    DatabaseOptions options;
    options.create_if_missing = false;
    auto db = Database::Open(path_, options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    auto table = (*db)->GetTable("kv");
    ASSERT_TRUE(table.ok());
    EXPECT_EQ((*table)->row_count(), 300u);
    EXPECT_EQ((*table)->schema().num_columns(), 2u);
    auto index = (*table)->GetIndex("k");
    ASSERT_TRUE(index.ok());
    EXPECT_EQ((*index)->entry_count(), 300u);
    EXPECT_TRUE((*index)->CheckInvariants().ok());
    // Contents survived.
    int count = 0;
    ASSERT_TRUE((*table)
                    ->Scan([&](const char* record, RecordId, bool* keep) {
                      *keep = true;
                      EXPECT_DOUBLE_EQ(DecodeDoubleColumn(record, 1),
                                       DecodeDoubleColumn(record, 0) * 2.0);
                      ++count;
                      return Status::OK();
                    })
                    .ok());
    EXPECT_EQ(count, 300);
    // Appending after reopen also works at the table level.
    ASSERT_TRUE((*table)->InsertDoubles({1000.0, 2000.0}).ok());
    EXPECT_EQ((*table)->row_count(), 301u);
  }
}

TEST_F(StorageTest, MetaBlobsPersistAcrossReopen) {
  {
    auto db = Database::Open(path_, DatabaseOptions{});
    ASSERT_TRUE(db.ok());
    EXPECT_TRUE((*db)->GetMeta("absent").status().IsNotFound());
    (*db)->PutMeta("engine.state", std::string("\x01\x00\x7f""abc", 6));
    (*db)->PutMeta("other", "tiny");
    (*db)->PutMeta("other", "overwritten");  // last write wins
    ASSERT_TRUE((*db)->Checkpoint().ok());
  }
  {
    DatabaseOptions options;
    options.create_if_missing = false;
    auto db = Database::Open(path_, options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    auto blob = (*db)->GetMeta("engine.state");
    ASSERT_TRUE(blob.ok());
    EXPECT_EQ(*blob, std::string("\x01\x00\x7f""abc", 6));
    auto other = (*db)->GetMeta("other");
    ASSERT_TRUE(other.ok());
    EXPECT_EQ(*other, "overwritten");
    EXPECT_TRUE((*db)->EraseMeta("other").value_or(false));
    // Already gone: erase reports "did not exist" (value_or(true) would
    // also catch an unexpected WAL error).
    EXPECT_FALSE((*db)->EraseMeta("other").value_or(true));
    ASSERT_TRUE((*db)->Checkpoint().ok());
  }
  {
    DatabaseOptions options;
    options.create_if_missing = false;
    auto db = Database::Open(path_, options);
    ASSERT_TRUE(db.ok());
    EXPECT_TRUE((*db)->GetMeta("other").status().IsNotFound());
    EXPECT_TRUE((*db)->GetMeta("engine.state").ok());
  }
}

TEST_F(StorageTest, MetaBlobSpillsAcrossCatalogPages) {
  // A blob much larger than one page forces the catalog chain to spill;
  // it must round-trip bit-exactly alongside table metadata.
  std::string big(3 * kPageSize + 123, '\0');
  Rng rng(42);
  for (char& c : big) {
    c = static_cast<char>(rng.NextU64() & 0xff);
  }
  {
    auto db = Database::Open(path_, DatabaseOptions{});
    ASSERT_TRUE(db.ok());
    auto schema = DoubleSchema({"x"});
    ASSERT_TRUE((*db)->CreateTable("t", *schema).ok());
    (*db)->PutMeta("big", big);
    ASSERT_TRUE((*db)->Checkpoint().ok());
  }
  {
    DatabaseOptions options;
    options.create_if_missing = false;
    auto db = Database::Open(path_, options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    auto blob = (*db)->GetMeta("big");
    ASSERT_TRUE(blob.ok());
    EXPECT_EQ(*blob, big);
    EXPECT_TRUE((*db)->GetTable("t").ok());
  }
}

TEST_F(StorageTest, MetaBlobsSurviveCompaction) {
  const std::string compact_path = path_ + ".compact";
  std::remove(compact_path.c_str());
  {
    auto db = Database::Open(path_, DatabaseOptions{});
    ASSERT_TRUE(db.ok());
    auto schema = DoubleSchema({"x"});
    auto table = (*db)->CreateTable("t", *schema);
    ASSERT_TRUE(table.ok());
    ASSERT_TRUE((*table)->InsertDoubles({1.0}).ok());
    (*db)->PutMeta("engine.state", "resume-here");
    ASSERT_TRUE((*db)->CompactInto(compact_path).ok());
  }
  {
    DatabaseOptions options;
    options.create_if_missing = false;
    auto db = Database::Open(compact_path, options);
    ASSERT_TRUE(db.ok());
    auto blob = (*db)->GetMeta("engine.state");
    ASSERT_TRUE(blob.ok());
    EXPECT_EQ(*blob, "resume-here");
  }
  std::remove(compact_path.c_str());
}

TEST_F(StorageTest, DatabaseDuplicateTableRejected) {
  auto db = Database::Open(path_, DatabaseOptions{});
  auto schema = DoubleSchema({"x"});
  ASSERT_TRUE((*db)->CreateTable("t", *schema).ok());
  EXPECT_TRUE((*db)->CreateTable("t", *schema).status().IsAlreadyExists());
  EXPECT_TRUE((*db)->GetTable("missing").status().IsNotFound());
}

TEST_F(StorageTest, DatabaseDropCachesKeepsData) {
  auto db = Database::Open(path_, DatabaseOptions{});
  auto schema = DoubleSchema({"x"});
  auto table = (*db)->CreateTable("t", *schema);
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE((*table)->InsertDoubles({static_cast<double>(i)}).ok());
  }
  ASSERT_TRUE((*db)->DropCaches().ok());
  EXPECT_EQ((*db)->buffer_pool()->cached_pages(), 0u);
  double sum = 0;
  ASSERT_TRUE((*table)
                  ->Scan([&](const char* record, RecordId, bool* keep) {
                    *keep = true;
                    sum += DecodeDoubleColumn(record, 0);
                    return Status::OK();
                  })
                  .ok());
  EXPECT_DOUBLE_EQ(sum, 4999.0 * 5000.0 / 2.0);
}

TEST_F(StorageTest, DeleteWhereRewritesHeapAndIndexes) {
  auto db = Database::Open(path_, DatabaseOptions{});
  auto schema = DoubleSchema({"k", "v"});
  auto table = (*db)->CreateTable("t", *schema);
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE((*table)->CreateIndex("k", {"k"}).ok());
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(
        (*table)->InsertDoubles({static_cast<double>(i % 10), i * 1.0}).ok());
  }
  // Delete every row with k < 3 (300 rows).
  Predicate predicate;
  predicate.And(0, CmpOp::kLt, 3.0);
  auto removed = (*table)->DeleteWhere(predicate);
  ASSERT_TRUE(removed.ok()) << removed.status().ToString();
  EXPECT_EQ(*removed, 300u);
  EXPECT_EQ((*table)->row_count(), 700u);
  // Survivors all have k >= 3; index rebuilt consistently.
  auto index = (*table)->GetIndex("k");
  ASSERT_TRUE(index.ok());
  EXPECT_EQ((*index)->entry_count(), 700u);
  EXPECT_TRUE((*index)->CheckInvariants().ok());
  ASSERT_TRUE((*table)
                  ->Scan([&](const char* record, RecordId, bool* keep) {
                    *keep = true;
                    EXPECT_GE(DecodeDoubleColumn(record, 0), 3.0);
                    return Status::OK();
                  })
                  .ok());
  // Deletions survive checkpoint + reopen.
  ASSERT_TRUE((*db)->Checkpoint().ok());
  db->reset();
  auto reopened = Database::Open(path_, DatabaseOptions{});
  ASSERT_TRUE(reopened.ok());
  auto again = (*reopened)->GetTable("t");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*again)->row_count(), 700u);
  auto reopened_index = (*again)->GetIndex("k");
  ASSERT_TRUE(reopened_index.ok());
  EXPECT_EQ((*reopened_index)->entry_count(), 700u);
}

TEST_F(StorageTest, DeleteWhereMatchingNothingOrEverything) {
  auto db = Database::Open(path_, DatabaseOptions{});
  auto schema = DoubleSchema({"x"});
  auto table = (*db)->CreateTable("t", *schema);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE((*table)->InsertDoubles({static_cast<double>(i)}).ok());
  }
  Predicate none;
  none.And(0, CmpOp::kLt, -1.0);
  EXPECT_EQ(*(*table)->DeleteWhere(none), 0u);
  EXPECT_EQ((*table)->row_count(), 50u);
  EXPECT_EQ(*(*table)->DeleteWhere(Predicate::True()), 50u);
  EXPECT_EQ((*table)->row_count(), 0u);
  // Table keeps working after full truncation.
  ASSERT_TRUE((*table)->InsertDoubles({7.0}).ok());
  EXPECT_EQ((*table)->row_count(), 1u);
}

TEST_F(StorageTest, InMemoryDatabase) {
  auto db = Database::Open(":memory:", DatabaseOptions{});
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  auto schema = DoubleSchema({"x"});
  auto table = (*db)->CreateTable("t", *schema);
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE((*table)->CreateIndex("x", {"x"}).ok());
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE((*table)->InsertDoubles({static_cast<double>(i)}).ok());
  }
  EXPECT_EQ((*table)->row_count(), 2000u);
  ASSERT_TRUE((*db)->DropCaches().ok());  // survives pool eviction
  double sum = 0;
  ASSERT_TRUE((*table)
                  ->Scan([&](const char* record, RecordId, bool* keep) {
                    *keep = true;
                    sum += DecodeDoubleColumn(record, 0);
                    return Status::OK();
                  })
                  .ok());
  EXPECT_DOUBLE_EQ(sum, 1999.0 * 2000.0 / 2.0);
  // :memory: cannot be opened without create.
  DatabaseOptions no_create;
  no_create.create_if_missing = false;
  EXPECT_TRUE(
      Database::Open(":memory:", no_create).status().IsInvalidArgument());
}

TEST_F(StorageTest, CompactReclaimsDeleteGarbage) {
  const std::string compact_path =
      UniqueTestPath("segdiff_storage_compact");
  std::remove(compact_path.c_str());
  {
    auto db = Database::Open(path_, DatabaseOptions{});
    auto schema = DoubleSchema({"k", "v"});
    auto table = (*db)->CreateTable("t", *schema);
    ASSERT_TRUE((*table)->CreateIndex("k", {"k"}).ok());
    for (int i = 0; i < 2000; ++i) {
      ASSERT_TRUE((*table)
                      ->InsertDoubles({static_cast<double>(i % 7), i * 1.0})
                      .ok());
    }
    // Churn: two delete rewrites leave dead pages behind.
    Predicate p1;
    p1.And(0, CmpOp::kLt, 2.0);
    ASSERT_TRUE((*table)->DeleteWhere(p1).ok());
    Predicate p2;
    p2.And(0, CmpOp::kGe, 6.0);
    ASSERT_TRUE((*table)->DeleteWhere(p2).ok());
    const uint64_t live_rows = (*table)->row_count();
    ASSERT_TRUE((*db)->Checkpoint().ok());
    const uint64_t bloated = (*db)->pager()->FileSizeBytes();

    ASSERT_TRUE((*db)->CompactInto(compact_path).ok());
    auto compacted = Database::Open(compact_path, DatabaseOptions{});
    ASSERT_TRUE(compacted.ok());
    EXPECT_LT((*compacted)->pager()->FileSizeBytes(), bloated);
    auto copy = (*compacted)->GetTable("t");
    ASSERT_TRUE(copy.ok());
    EXPECT_EQ((*copy)->row_count(), live_rows);
    auto index = (*copy)->GetIndex("k");
    ASSERT_TRUE(index.ok());
    EXPECT_EQ((*index)->entry_count(), live_rows);
    EXPECT_TRUE((*index)->CheckInvariants().ok());
    // Source is untouched.
    auto original = (*db)->GetTable("t");
    EXPECT_EQ((*original)->row_count(), live_rows);
    // Compacting onto a non-empty target is rejected.
    EXPECT_TRUE((*db)->CompactInto(compact_path).IsInvalidArgument());
  }
  std::remove(compact_path.c_str());
}

TEST_F(StorageTest, SizeStatsSeparateDataAndIndex) {
  auto db = Database::Open(path_, DatabaseOptions{});
  auto schema = DoubleSchema({"x"});
  auto table = (*db)->CreateTable("t", *schema);
  ASSERT_TRUE((*table)->CreateIndex("x", {"x"}).ok());
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE((*table)->InsertDoubles({static_cast<double>(i)}).ok());
  }
  const DatabaseSizeStats stats = (*db)->SizeStats();
  EXPECT_GT(stats.data_bytes, 0u);
  EXPECT_GT(stats.index_bytes, 0u);
  EXPECT_GE(stats.file_bytes, stats.data_bytes + stats.index_bytes);
}

}  // namespace
}  // namespace segdiff
