// Property tests for the paper's core geometry: parallelogram
// construction (Lemma 3), Table 2 case classification, frontier
// reduction, and the eps-shift collection rule.

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "feature/cases.h"
#include "feature/frontier.h"
#include "feature/parallelogram.h"

namespace segdiff {
namespace {

Parallelogram MakeParallelogram(const DataSegment& cd, const DataSegment& ab) {
  auto result = Parallelogram::FromSegments(cd, ab);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

/// Exact minimum of dv over the parallelogram restricted to dt <= T
/// (+inf when the restriction is empty). The minimum is attained at a
/// corner with dt <= T or where an edge crosses dt == T.
double MinDvRestricted(const Parallelogram& p, double T) {
  const FeaturePoint corners[4] = {p.bc(), p.bd(), p.ac(), p.ad()};
  const int edges[4][2] = {{0, 1}, {2, 3}, {0, 2}, {1, 3}};
  double best = std::numeric_limits<double>::infinity();
  for (const FeaturePoint& corner : corners) {
    if (corner.dt <= T) {
      best = std::min(best, corner.dv);
    }
  }
  for (const auto& edge : edges) {
    const FeaturePoint& a = corners[edge[0]];
    const FeaturePoint& b = corners[edge[1]];
    const double lo = std::min(a.dt, b.dt);
    const double hi = std::max(a.dt, b.dt);
    if (lo <= T && T < hi) {
      const double dv = a.dv + (b.dv - a.dv) / (b.dt - a.dt) * (T - a.dt);
      best = std::min(best, dv);
    }
  }
  return best;
}

/// Mirror for jumps: exact maximum of dv over the restriction.
double MaxDvRestricted(const Parallelogram& p, double T) {
  const FeaturePoint corners[4] = {p.bc(), p.bd(), p.ac(), p.ad()};
  const int edges[4][2] = {{0, 1}, {2, 3}, {0, 2}, {1, 3}};
  double best = -std::numeric_limits<double>::infinity();
  for (const FeaturePoint& corner : corners) {
    if (corner.dt <= T) {
      best = std::max(best, corner.dv);
    }
  }
  for (const auto& edge : edges) {
    const FeaturePoint& a = corners[edge[0]];
    const FeaturePoint& b = corners[edge[1]];
    const double lo = std::min(a.dt, b.dt);
    const double hi = std::max(a.dt, b.dt);
    if (lo <= T && T < hi) {
      const double dv = a.dv + (b.dv - a.dv) / (b.dt - a.dt) * (T - a.dt);
      best = std::max(best, dv);
    }
  }
  return best;
}

/// The paper's Section 4.4 queries over an (unshifted) frontier: does any
/// point query or line query fire for region (T, V)?
bool QueriesFire(const Frontier& frontier, double T, double V, bool drop) {
  for (int i = 0; i < frontier.count; ++i) {
    const FeaturePoint& pt = frontier.pts[i];
    if (pt.dt <= T && (drop ? pt.dv <= V : pt.dv >= V)) {
      return true;
    }
  }
  for (int i = 0; i + 1 < frontier.count; ++i) {
    const FeaturePoint& a = frontier.pts[i];
    const FeaturePoint& b = frontier.pts[i + 1];
    const bool ends_outside =
        drop ? (a.dv > V && b.dv < V) : (a.dv < V && b.dv > V);
    if (a.dt <= T && b.dt > T && ends_outside && b.dt > a.dt) {
      const double at_T = a.dv + (b.dv - a.dv) / (b.dt - a.dt) * (T - a.dt);
      if (drop ? at_T <= V : at_T >= V) {
        return true;
      }
    }
  }
  return false;
}

DataSegment RandomSegment(Rng* rng, double t_start) {
  const double duration = rng->Uniform(1.0, 50.0);
  return DataSegment{{t_start, rng->Uniform(-10, 10)},
                     {t_start + duration, rng->Uniform(-10, 10)}};
}

TEST(ParallelogramTest, CornersMatchDefinition) {
  DataSegment cd{{0, 1}, {10, 5}};   // D=(0,1), C=(10,5)
  DataSegment ab{{20, 4}, {25, 2}};  // B=(20,4), A=(25,2)
  Parallelogram p = MakeParallelogram(cd, ab);
  EXPECT_EQ(p.bc(), (FeaturePoint{10, -1}));
  EXPECT_EQ(p.bd(), (FeaturePoint{20, 3}));
  EXPECT_EQ(p.ac(), (FeaturePoint{15, -3}));
  EXPECT_EQ(p.ad(), (FeaturePoint{25, 1}));
  EXPECT_DOUBLE_EQ(p.k_cd(), 0.4);
  EXPECT_DOUBLE_EQ(p.k_ab(), -0.4);
  EXPECT_FALSE(p.is_self());
}

TEST(ParallelogramTest, EdgesHaveSegmentSlopes) {
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    DataSegment cd = RandomSegment(&rng, 0.0);
    DataSegment ab = RandomSegment(&rng, cd.end.t + rng.Uniform(0.0, 30.0));
    Parallelogram p = MakeParallelogram(cd, ab);
    // (BC, BD) and (AC, AD) have slope k_CD.
    EXPECT_NEAR((p.bd().dv - p.bc().dv) / (p.bd().dt - p.bc().dt), p.k_cd(),
                1e-9);
    EXPECT_NEAR((p.ad().dv - p.ac().dv) / (p.ad().dt - p.ac().dt), p.k_cd(),
                1e-9);
    // (BC, AC) and (BD, AD) have slope k_AB.
    EXPECT_NEAR((p.ac().dv - p.bc().dv) / (p.ac().dt - p.bc().dt), p.k_ab(),
                1e-9);
    EXPECT_NEAR((p.ad().dv - p.bd().dv) / (p.ad().dt - p.bd().dt), p.k_ab(),
                1e-9);
  }
}

TEST(ParallelogramTest, RejectsOverlapAndDegenerate) {
  DataSegment cd{{0, 0}, {10, 1}};
  DataSegment overlapping{{5, 0}, {15, 1}};
  EXPECT_TRUE(Parallelogram::FromSegments(cd, overlapping)
                  .status()
                  .IsInvalidArgument());
}

TEST(ParallelogramTest, AdjacentSegmentsShareEndpoint) {
  DataSegment cd{{0, 0}, {10, 1}};
  DataSegment ab{{10, 1}, {20, 3}};
  Parallelogram p = MakeParallelogram(cd, ab);
  EXPECT_EQ(p.bc(), (FeaturePoint{0, 0}));
}

// Lemma 3: every event with one end on each segment maps inside the
// parallelogram.
TEST(ParallelogramTest, Lemma3ContainsAllCrossEvents) {
  Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    DataSegment cd = RandomSegment(&rng, 0.0);
    DataSegment ab = RandomSegment(&rng, cd.end.t + rng.Uniform(0.0, 20.0));
    Parallelogram p = MakeParallelogram(cd, ab);
    for (int k = 0; k < 50; ++k) {
      const double tc = rng.Uniform(cd.start.t, cd.end.t);
      const double ta = rng.Uniform(ab.start.t, ab.end.t);
      const FeaturePoint event{ta - tc, ab.ValueAt(ta) - cd.ValueAt(tc)};
      EXPECT_TRUE(p.Contains(event, 1e-6))
          << "trial " << trial << " event (" << event.dt << ", " << event.dv
          << ")";
    }
  }
}

TEST(ParallelogramTest, ContainsRejectsOutsidePoints) {
  DataSegment cd{{0, 0}, {10, 5}};
  DataSegment ab{{20, 1}, {30, 2}};
  Parallelogram p = MakeParallelogram(cd, ab);
  // Far outside any corner.
  EXPECT_FALSE(p.Contains({100, 0}, 1e-9));
  EXPECT_FALSE(p.Contains({0, 100}, 1e-9));
  EXPECT_FALSE(p.Contains({-5, 0}, 1e-9));
}

TEST(ParallelogramTest, SelfPairIsDegenerateSegment) {
  DataSegment seg{{0, 10}, {20, 4}};
  Parallelogram p = Parallelogram::FromSelf(seg);
  EXPECT_TRUE(p.is_self());
  EXPECT_EQ(p.bc(), (FeaturePoint{0, 0}));
  EXPECT_EQ(p.ad(), (FeaturePoint{20, -6}));
  // Within-segment events lie on the degenerate feature segment.
  Rng rng(3);
  for (int k = 0; k < 50; ++k) {
    double t1 = rng.Uniform(0, 20);
    double t2 = rng.Uniform(0, 20);
    if (t1 > t2) std::swap(t1, t2);
    const FeaturePoint event{t2 - t1, seg.ValueAt(t2) - seg.ValueAt(t1)};
    EXPECT_TRUE(p.Contains(event, 1e-6));
  }
  EXPECT_FALSE(p.Contains({10, 5}, 1e-6));
}

TEST(CasesTest, ClassificationTable) {
  // k_cd >= 0 rows.
  EXPECT_EQ(ClassifySlopeCase(1.0, -1.0), SlopeCase::kCase1);
  EXPECT_EQ(ClassifySlopeCase(1.0, 0.0), SlopeCase::kCase1);
  EXPECT_EQ(ClassifySlopeCase(1.0, 2.0), SlopeCase::kCase2);
  EXPECT_EQ(ClassifySlopeCase(1.0, 1.0), SlopeCase::kCase2);
  EXPECT_EQ(ClassifySlopeCase(0.0, 0.0), SlopeCase::kCase2);
  EXPECT_EQ(ClassifySlopeCase(1.0, 0.5), SlopeCase::kCase3);
  // k_cd < 0 rows.
  EXPECT_EQ(ClassifySlopeCase(-1.0, 0.0), SlopeCase::kCase4);
  EXPECT_EQ(ClassifySlopeCase(-1.0, 2.0), SlopeCase::kCase4);
  EXPECT_EQ(ClassifySlopeCase(-1.0, -2.0), SlopeCase::kCase5);
  EXPECT_EQ(ClassifySlopeCase(-1.0, -1.0), SlopeCase::kCase5);
  EXPECT_EQ(ClassifySlopeCase(-1.0, -0.5), SlopeCase::kCase6);
}

TEST(CasesTest, CornerCountsMatchTableTwo) {
  EXPECT_EQ(TableTwoCornerCount(SlopeCase::kCase1, SearchKind::kDrop), 2);
  EXPECT_EQ(TableTwoCornerCount(SlopeCase::kCase1, SearchKind::kJump), 2);
  EXPECT_EQ(TableTwoCornerCount(SlopeCase::kCase2, SearchKind::kDrop), 1);
  EXPECT_EQ(TableTwoCornerCount(SlopeCase::kCase2, SearchKind::kJump), 3);
  EXPECT_EQ(TableTwoCornerCount(SlopeCase::kCase3, SearchKind::kDrop), 1);
  EXPECT_EQ(TableTwoCornerCount(SlopeCase::kCase3, SearchKind::kJump), 3);
  EXPECT_EQ(TableTwoCornerCount(SlopeCase::kCase4, SearchKind::kDrop), 2);
  EXPECT_EQ(TableTwoCornerCount(SlopeCase::kCase4, SearchKind::kJump), 2);
  EXPECT_EQ(TableTwoCornerCount(SlopeCase::kCase5, SearchKind::kDrop), 3);
  EXPECT_EQ(TableTwoCornerCount(SlopeCase::kCase5, SearchKind::kJump), 1);
  EXPECT_EQ(TableTwoCornerCount(SlopeCase::kCase6, SearchKind::kDrop), 3);
  EXPECT_EQ(TableTwoCornerCount(SlopeCase::kCase6, SearchKind::kJump), 1);
}

TEST(CasesTest, Names) {
  EXPECT_EQ(SlopeCaseName(SlopeCase::kCase1), "case1");
  EXPECT_EQ(SlopeCaseName(SlopeCase::kCase6), "case6");
  EXPECT_EQ(SearchKindName(SearchKind::kDrop), "drop");
  EXPECT_EQ(SearchKindName(SearchKind::kJump), "jump");
}

// Frontier size equals the Table 2 corner count whenever slopes are
// nonzero and distinct (boundaries can legitimately collapse corners).
TEST(FrontierTest, SizeMatchesTableTwo) {
  Rng rng(17);
  for (int trial = 0; trial < 500; ++trial) {
    DataSegment cd = RandomSegment(&rng, 0.0);
    DataSegment ab = RandomSegment(&rng, cd.end.t + rng.Uniform(0.1, 20.0));
    Parallelogram p = MakeParallelogram(cd, ab);
    if (p.k_cd() == 0.0 || p.k_ab() == 0.0 || p.k_cd() == p.k_ab()) {
      continue;
    }
    const SlopeCase slope_case = ClassifySlopeCase(p.k_cd(), p.k_ab());
    for (SearchKind kind : {SearchKind::kDrop, SearchKind::kJump}) {
      const Frontier frontier = ComputeFrontier(p, kind);
      EXPECT_EQ(frontier.count, TableTwoCornerCount(slope_case, kind))
          << SlopeCaseName(slope_case) << "/" << SearchKindName(kind);
    }
  }
}

TEST(FrontierTest, PointsAreOrderedAndMonotone) {
  Rng rng(23);
  for (int trial = 0; trial < 500; ++trial) {
    DataSegment cd = RandomSegment(&rng, 0.0);
    DataSegment ab = RandomSegment(&rng, cd.end.t + rng.Uniform(0.0, 20.0));
    Parallelogram p = MakeParallelogram(cd, ab);
    for (SearchKind kind : {SearchKind::kDrop, SearchKind::kJump}) {
      const Frontier frontier = ComputeFrontier(p, kind);
      ASSERT_GE(frontier.count, 1);
      ASSERT_LE(frontier.count, 3);
      EXPECT_EQ(frontier.pts[0], p.bc());
      for (int i = 0; i + 1 < frontier.count; ++i) {
        EXPECT_LT(frontier.pts[i].dt, frontier.pts[i + 1].dt);
        if (kind == SearchKind::kDrop) {
          EXPECT_GT(frontier.pts[i].dv, frontier.pts[i + 1].dv);
        } else {
          EXPECT_LT(frontier.pts[i].dv, frontier.pts[i + 1].dv);
        }
      }
    }
  }
}

// THE key reduction property: the frontier point/line queries fire iff
// the query region intersects the parallelogram (checked exactly).
TEST(FrontierTest, QueriesDetectIntersectionExactly) {
  Rng rng(31);
  int checked = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    DataSegment cd = RandomSegment(&rng, 0.0);
    DataSegment ab = RandomSegment(&rng, cd.end.t + rng.Uniform(0.1, 20.0));
    Parallelogram p = MakeParallelogram(cd, ab);
    const double T = rng.Uniform(0.5, 120.0);
    // Drop region: dv <= V < 0.
    {
      const double V = -rng.Uniform(0.01, 12.0);
      const double min_dv = MinDvRestricted(p, T);
      const bool intersects = min_dv <= V && p.bc().dt <= T;
      // Skip knife-edge ties where floating point decides arbitrarily.
      if (std::abs(min_dv - V) > 1e-9) {
        const Frontier frontier = ComputeFrontier(p, SearchKind::kDrop);
        EXPECT_EQ(QueriesFire(frontier, T, V, true), intersects)
            << "drop trial " << trial << " T=" << T << " V=" << V;
        ++checked;
      }
    }
    // Jump region: dv >= V > 0.
    {
      const double V = rng.Uniform(0.01, 12.0);
      const double max_dv = MaxDvRestricted(p, T);
      const bool intersects = max_dv >= V && p.bc().dt <= T;
      if (std::abs(max_dv - V) > 1e-9) {
        const Frontier frontier = ComputeFrontier(p, SearchKind::kJump);
        EXPECT_EQ(QueriesFire(frontier, T, V, false), intersects)
            << "jump trial " << trial << " T=" << T << " V=" << V;
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 3000);
}

TEST(CollectTest, ShiftAppliedAndSuffixRule) {
  // Case-1 style frontier: BC=(2, 1), AC=(8, -4).
  Frontier frontier;
  frontier.count = 2;
  frontier.pts[0] = {2, 1};
  frontier.pts[1] = {8, -4};
  const double eps = 0.5;
  StoredCorners stored = CollectStoredCorners(frontier, eps, SearchKind::kDrop);
  ASSERT_EQ(stored.count, 2);  // BC' = 0.5 > 0 anchors the crossing edge
  EXPECT_EQ(stored.pts[0], (FeaturePoint{2, 0.5}));
  EXPECT_EQ(stored.pts[1], (FeaturePoint{8, -4.5}));
}

TEST(CollectTest, NothingStoredWhenNoEventPossible) {
  Frontier frontier;
  frontier.count = 2;
  frontier.pts[0] = {2, 6};
  frontier.pts[1] = {8, 1};
  // Shift by eps=0.5: final corner dv = 0.5 > 0, no drop indicated.
  StoredCorners stored =
      CollectStoredCorners(frontier, 0.5, SearchKind::kDrop);
  EXPECT_EQ(stored.count, 0);
}

TEST(CollectTest, SuffixDropsLeadingPositiveCorners) {
  // Case-5 style frontier: BC=(1, 5), AC=(4, 2), AD=(9, -3).
  Frontier frontier;
  frontier.count = 3;
  frontier.pts[0] = {1, 5};
  frontier.pts[1] = {4, 2};
  frontier.pts[2] = {9, -3};
  // eps = 0.5: shifted AC = 1.5 > 0 -> store suffix (AC, AD): the paper's
  // case 5 "Drop II" sub-case.
  StoredCorners stored =
      CollectStoredCorners(frontier, 0.5, SearchKind::kDrop);
  ASSERT_EQ(stored.count, 2);
  EXPECT_EQ(stored.pts[0], (FeaturePoint{4, 1.5}));
  EXPECT_EQ(stored.pts[1], (FeaturePoint{9, -3.5}));
  // eps = 2.5: shifted AC = -0.5 <= 0 -> all three stored ("Drop I").
  stored = CollectStoredCorners(frontier, 2.5, SearchKind::kDrop);
  ASSERT_EQ(stored.count, 3);
  EXPECT_EQ(stored.pts[0], (FeaturePoint{1, 2.5}));
}

TEST(CollectTest, JumpMirrorsDrop) {
  Frontier frontier;
  frontier.count = 2;
  frontier.pts[0] = {2, -1};
  frontier.pts[1] = {8, 4};
  StoredCorners stored =
      CollectStoredCorners(frontier, 0.5, SearchKind::kJump);
  ASSERT_EQ(stored.count, 2);
  EXPECT_EQ(stored.pts[0], (FeaturePoint{2, -0.5}));
  EXPECT_EQ(stored.pts[1], (FeaturePoint{8, 4.5}));
  // Final corner shifted dv < 0: nothing indicates a jump.
  frontier.pts[1] = {8, -1};
  stored = CollectStoredCorners(frontier, 0.5, SearchKind::kJump);
  EXPECT_EQ(stored.count, 0);
}

TEST(CollectTest, EmptyFrontier) {
  Frontier frontier;
  EXPECT_EQ(CollectStoredCorners(frontier, 0.1, SearchKind::kDrop).count, 0);
}

TEST(FrontierTest, SelfPairFrontiers) {
  DataSegment falling{{0, 10}, {20, 4}};
  Parallelogram p = Parallelogram::FromSelf(falling);
  Frontier drop = ComputeFrontier(p, SearchKind::kDrop);
  ASSERT_EQ(drop.count, 2);
  EXPECT_EQ(drop.pts[0], (FeaturePoint{0, 0}));
  EXPECT_EQ(drop.pts[1], (FeaturePoint{20, -6}));
  Frontier jump = ComputeFrontier(p, SearchKind::kJump);
  EXPECT_EQ(jump.count, 1);
  EXPECT_EQ(jump.pts[0], (FeaturePoint{0, 0}));

  DataSegment rising{{0, 4}, {20, 10}};
  Parallelogram q = Parallelogram::FromSelf(rising);
  EXPECT_EQ(ComputeFrontier(q, SearchKind::kDrop).count, 1);
  EXPECT_EQ(ComputeFrontier(q, SearchKind::kJump).count, 2);
}

}  // namespace
}  // namespace segdiff
