// Tests for the SQL layer: lexer, parser, and engine semantics
// (including index-scan vs seq-scan equivalence through SQL).

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "test_paths.h"

#include "common/random.h"
#include "sql/engine.h"
#include "sql/lexer.h"
#include "sql/parser.h"

namespace segdiff {
namespace sql {
namespace {

TEST(LexerTest, TokenKinds) {
  auto tokens = Tokenize("SELECT a, b2 FROM t WHERE a <= -3.5 AND b2 <> 1;");
  ASSERT_TRUE(tokens.ok()) << tokens.status().ToString();
  ASSERT_GE(tokens->size(), 10u);
  EXPECT_EQ((*tokens)[0].type, TokenType::kKeyword);
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  EXPECT_EQ((*tokens)[1].type, TokenType::kIdentifier);
  EXPECT_EQ((*tokens)[1].text, "a");
  EXPECT_EQ((*tokens)[2].text, ",");
  // Number with sign folds into one token.
  bool saw_number = false;
  for (const Token& token : *tokens) {
    if (token.type == TokenType::kNumber) {
      EXPECT_DOUBLE_EQ(token.number, -3.5);  // first number literal
      saw_number = true;
      break;
    }
  }
  EXPECT_TRUE(saw_number);
  EXPECT_EQ(tokens->back().type, TokenType::kEnd);
}

TEST(LexerTest, CaseInsensitiveKeywords) {
  auto tokens = Tokenize("select From wHeRe");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  EXPECT_EQ((*tokens)[1].text, "FROM");
  EXPECT_EQ((*tokens)[2].text, "WHERE");
}

TEST(LexerTest, Strings) {
  auto tokens = Tokenize("'hello world'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kString);
  EXPECT_EQ((*tokens)[0].text, "hello world");
  EXPECT_TRUE(Tokenize("'unterminated").status().IsInvalidArgument());
}

TEST(LexerTest, RejectsGarbage) {
  EXPECT_TRUE(Tokenize("SELECT @ FROM t").status().IsInvalidArgument());
  EXPECT_TRUE(Tokenize("a ! b").status().IsInvalidArgument());
}

TEST(ParserTest, CreateTable) {
  auto stmt = Parse("CREATE TABLE feat (dt DOUBLE, dv DOUBLE, tag BIGINT)");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_EQ(stmt->kind, StatementKind::kCreateTable);
  EXPECT_EQ(stmt->create_table.table, "feat");
  ASSERT_EQ(stmt->create_table.columns.size(), 3u);
  EXPECT_EQ(stmt->create_table.columns[2].type, ColumnType::kInt64);
}

TEST(ParserTest, CreateIndex) {
  auto stmt = Parse("CREATE INDEX pt ON feat (dt, dv)");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->kind, StatementKind::kCreateIndex);
  EXPECT_EQ(stmt->create_index.index, "pt");
  EXPECT_EQ(stmt->create_index.table, "feat");
  EXPECT_EQ(stmt->create_index.columns,
            (std::vector<std::string>{"dt", "dv"}));
}

TEST(ParserTest, InsertMultipleRows) {
  auto stmt = Parse("INSERT INTO t VALUES (1, -2.5), (3, 4)");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->kind, StatementKind::kInsert);
  ASSERT_EQ(stmt->insert.rows.size(), 2u);
  EXPECT_DOUBLE_EQ(stmt->insert.rows[0][1], -2.5);
}

TEST(ParserTest, SelectVariants) {
  auto star = Parse("SELECT * FROM t");
  ASSERT_TRUE(star.ok());
  EXPECT_TRUE(star->select.star);

  auto projected =
      Parse("SELECT a, b FROM t WHERE a <= 5 AND b > 2 ORDER BY a DESC "
            "LIMIT 10;");
  ASSERT_TRUE(projected.ok()) << projected.status().ToString();
  const SelectStmt& select = projected->select;
  EXPECT_EQ(select.columns, (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(select.where.size(), 2u);
  EXPECT_EQ(select.where[0].op, CmpOp::kLe);
  EXPECT_EQ(select.where[1].op, CmpOp::kGt);
  ASSERT_TRUE(select.order_by.has_value());
  EXPECT_FALSE(select.order_by->ascending);
  ASSERT_TRUE(select.limit.has_value());
  EXPECT_EQ(*select.limit, 10u);

  auto count = Parse("SELECT COUNT(*) FROM t WHERE x = 3");
  ASSERT_TRUE(count.ok());
  EXPECT_TRUE(count->select.count);
}

TEST(ParserTest, Errors) {
  EXPECT_TRUE(Parse("").status().IsInvalidArgument());
  EXPECT_TRUE(Parse("SELECT FROM t").status().IsInvalidArgument());
  EXPECT_TRUE(Parse("CREATE VIEW v").status().IsInvalidArgument());
  EXPECT_TRUE(Parse("SELECT * FROM t WHERE a <> 3").status()
                  .IsInvalidArgument());
  EXPECT_TRUE(Parse("SELECT * FROM t extra").status().IsInvalidArgument());
  EXPECT_TRUE(Parse("INSERT INTO t VALUES (1,)").status().IsInvalidArgument());
  EXPECT_TRUE(Parse("SELECT * FROM t LIMIT -1").status().IsInvalidArgument());
}

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = UniqueTestPath("segdiff_sql");
    std::remove(path_.c_str());
    auto db = Database::Open(path_, DatabaseOptions{});
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    engine_ = std::make_unique<Engine>(db_.get());
  }
  void TearDown() override {
    engine_.reset();
    db_.reset();
    std::remove(path_.c_str());
  }

  QueryResult MustExecute(const std::string& statement) {
    auto result = engine_->Execute(statement);
    EXPECT_TRUE(result.ok()) << statement << ": "
                             << result.status().ToString();
    return result.ok() ? std::move(result).value() : QueryResult{};
  }

  std::string path_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<Engine> engine_;
};

TEST_F(EngineTest, EndToEnd) {
  MustExecute("CREATE TABLE f (dt DOUBLE, dv DOUBLE, tag BIGINT)");
  MustExecute("CREATE INDEX pt ON f (dt, dv)");
  for (int i = 0; i < 100; ++i) {
    char sql[128];
    std::snprintf(sql, sizeof(sql), "INSERT INTO f VALUES (%d, %d, %d)", i,
                  50 - i, i);
    EXPECT_EQ(MustExecute(sql).rows_affected, 1u);
  }
  QueryResult all = MustExecute("SELECT COUNT(*) FROM f");
  ASSERT_EQ(all.rows.size(), 1u);
  EXPECT_EQ(all.rows[0][0].i, 100);

  // Range query uses the index (dt has an upper bound).
  QueryResult ranged =
      MustExecute("SELECT dt, dv FROM f WHERE dt <= 10 AND dv <= 45");
  EXPECT_EQ(ranged.access_path, "index_scan(pt)");
  EXPECT_EQ(ranged.rows.size(), 6u);  // dt in [5, 10]

  // Same result via forced table scan semantics (no upper bound on the
  // index's leading column -> seq scan).
  QueryResult scanned =
      MustExecute("SELECT dt, dv FROM f WHERE dv <= 45 AND dv >= 40");
  EXPECT_EQ(scanned.access_path, "seq_scan");
  EXPECT_EQ(scanned.rows.size(), 6u);  // dv in [40,45] -> dt in [5,10]

  // ORDER BY + LIMIT.
  QueryResult top =
      MustExecute("SELECT dt FROM f ORDER BY dt DESC LIMIT 3");
  ASSERT_EQ(top.rows.size(), 3u);
  EXPECT_DOUBLE_EQ(top.rows[0][0].d, 99);
  EXPECT_DOUBLE_EQ(top.rows[2][0].d, 97);

  // SHOW TABLES / DESCRIBE.
  QueryResult tables = MustExecute("SHOW TABLES");
  ASSERT_EQ(tables.rows.size(), 1u);
  EXPECT_EQ(tables.row_labels[0], "f");
  EXPECT_EQ(tables.rows[0][0].i, 100);
  QueryResult described = MustExecute("DESCRIBE f");
  EXPECT_EQ(described.rows.size(), 4u);  // 3 columns + 1 index
}

TEST_F(EngineTest, IndexAndSeqScanAgreeOnRandomData) {
  MustExecute("CREATE TABLE r (a DOUBLE, b DOUBLE)");
  MustExecute("CREATE INDEX ia ON r (a)");
  for (int i = 0; i < 500; ++i) {
    char sql[128];
    std::snprintf(sql, sizeof(sql), "INSERT INTO r VALUES (%f, %f)",
                  (i * 37 % 100) / 3.0, (i * 53 % 100) / 7.0);
    MustExecute(sql);
  }
  // Indexed: upper bound on a.
  QueryResult via_index =
      MustExecute("SELECT a, b FROM r WHERE a <= 20 AND b <= 10");
  EXPECT_EQ(via_index.access_path, "index_scan(ia)");
  // Equivalent without touching a's upper bound trickery: count by scan
  // over b only then filter via a >= ... we instead verify by COUNT with
  // identical predicate (engine picks index again) against a manual
  // seq-scan table without the index.
  MustExecute("CREATE TABLE r2 (a DOUBLE, b DOUBLE)");
  for (int i = 0; i < 500; ++i) {
    char sql[128];
    std::snprintf(sql, sizeof(sql), "INSERT INTO r2 VALUES (%f, %f)",
                  (i * 37 % 100) / 3.0, (i * 53 % 100) / 7.0);
    MustExecute(sql);
  }
  QueryResult via_scan =
      MustExecute("SELECT a, b FROM r2 WHERE a <= 20 AND b <= 10");
  EXPECT_EQ(via_scan.access_path, "seq_scan");
  EXPECT_EQ(via_index.rows.size(), via_scan.rows.size());
}

TEST_F(EngineTest, ErrorsSurface) {
  EXPECT_TRUE(engine_->Execute("SELECT * FROM missing").status().IsNotFound());
  MustExecute("CREATE TABLE t (a DOUBLE)");
  EXPECT_TRUE(
      engine_->Execute("CREATE TABLE t (a DOUBLE)").status().IsAlreadyExists());
  EXPECT_TRUE(
      engine_->Execute("INSERT INTO t VALUES (1, 2)").status()
          .IsInvalidArgument());
  EXPECT_TRUE(
      engine_->Execute("SELECT b FROM t").status().IsNotFound());
  EXPECT_TRUE(engine_->Execute("SELECT * FROM t WHERE b <= 1").status()
                  .IsNotFound());
  MustExecute("CREATE TABLE ti (a BIGINT)");
  EXPECT_TRUE(engine_->Execute("SELECT * FROM ti WHERE a <= 1").status()
                  .IsNotSupported());
}

TEST_F(EngineTest, FormatResult) {
  MustExecute("CREATE TABLE t (a DOUBLE, n BIGINT)");
  MustExecute("INSERT INTO t VALUES (1.5, 7)");
  QueryResult result = MustExecute("SELECT * FROM t");
  const std::string text = FormatResult(result);
  EXPECT_NE(text.find("a | n"), std::string::npos);
  EXPECT_NE(text.find("1.5 | 7"), std::string::npos);
  EXPECT_NE(text.find("(1 rows)"), std::string::npos);

  QueryResult ddl = MustExecute("CREATE INDEX i ON t (a)");
  EXPECT_NE(FormatResult(ddl).find("ok"), std::string::npos);
}

TEST_F(EngineTest, AggregatesAndExplain) {
  MustExecute("CREATE TABLE g (a DOUBLE, b DOUBLE)");
  MustExecute("CREATE INDEX ia ON g (a)");
  for (int i = 1; i <= 10; ++i) {
    char sql[96];
    std::snprintf(sql, sizeof(sql), "INSERT INTO g VALUES (%d, %d)", i,
                  i * i);
    MustExecute(sql);
  }
  EXPECT_DOUBLE_EQ(MustExecute("SELECT MIN(b) FROM g").rows[0][0].d, 1.0);
  EXPECT_DOUBLE_EQ(MustExecute("SELECT MAX(b) FROM g").rows[0][0].d, 100.0);
  EXPECT_DOUBLE_EQ(MustExecute("SELECT SUM(a) FROM g").rows[0][0].d, 55.0);
  EXPECT_DOUBLE_EQ(MustExecute("SELECT AVG(a) FROM g").rows[0][0].d, 5.5);
  // Aggregates respect WHERE and use the index when possible.
  QueryResult filtered = MustExecute("SELECT SUM(b) FROM g WHERE a <= 3");
  EXPECT_EQ(filtered.access_path, "index_scan(ia)");
  EXPECT_DOUBLE_EQ(filtered.rows[0][0].d, 14.0);  // 1 + 4 + 9
  // MIN over an empty set: no rows.
  EXPECT_TRUE(
      MustExecute("SELECT MIN(a) FROM g WHERE a > 100").rows.empty());
  // SUM over an empty set is 0 (SQL would say NULL; we have no NULLs).
  EXPECT_DOUBLE_EQ(
      MustExecute("SELECT SUM(a) FROM g WHERE a > 100").rows[0][0].d, 0.0);
  // Header names the aggregate.
  EXPECT_EQ(MustExecute("SELECT AVG(b) FROM g").columns[0], "avg(b)");

  // EXPLAIN reports the plan without executing.
  QueryResult plan = MustExecute("EXPLAIN SELECT * FROM g WHERE a <= 2");
  ASSERT_EQ(plan.row_labels.size(), 7u);
  EXPECT_NE(plan.row_labels[1].find("index_scan(ia)"), std::string::npos);
  EXPECT_NE(plan.row_labels[3].find("zone map:"), std::string::npos);
  EXPECT_NE(plan.row_labels[4].find("format: row pages="), std::string::npos);
  // A pure row store reports no compression and no segment directory.
  EXPECT_NE(plan.row_labels[5].find("compression: none"), std::string::npos);
  EXPECT_NE(plan.row_labels[6].find("segment dir: none"), std::string::npos);
  plan = MustExecute("EXPLAIN SELECT * FROM g WHERE b >= 5");
  EXPECT_NE(plan.row_labels[1].find("seq_scan"), std::string::npos);
  EXPECT_TRUE(
      engine_->Execute("EXPLAIN DELETE FROM g").status().IsInvalidArgument());
}

TEST_F(EngineTest, DeleteStatement) {
  MustExecute("CREATE TABLE d (a DOUBLE, b DOUBLE)");
  MustExecute("CREATE INDEX ia ON d (a)");
  for (int i = 0; i < 100; ++i) {
    char sql[96];
    std::snprintf(sql, sizeof(sql), "INSERT INTO d VALUES (%d, %d)", i,
                  100 - i);
    MustExecute(sql);
  }
  QueryResult removed = MustExecute("DELETE FROM d WHERE a < 30 AND b > 80");
  EXPECT_EQ(removed.rows_affected, 20u);  // a in [0,19]
  QueryResult rest = MustExecute("SELECT COUNT(*) FROM d");
  EXPECT_EQ(rest.rows[0][0].i, 80);
  // Index still answers range queries after the rewrite.
  QueryResult ranged = MustExecute("SELECT a FROM d WHERE a <= 25");
  EXPECT_EQ(ranged.access_path, "index_scan(ia)");
  EXPECT_EQ(ranged.rows.size(), 6u);  // 20..25
  // Unconditional DELETE empties the table.
  QueryResult all = MustExecute("DELETE FROM d");
  EXPECT_EQ(all.rows_affected, 80u);
  EXPECT_EQ(MustExecute("SELECT COUNT(*) FROM d").rows[0][0].i, 0);
}

TEST_F(EngineTest, DeleteParseAndErrors) {
  auto stmt = sql::Parse("DELETE FROM t WHERE x >= 2");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->kind, StatementKind::kDelete);
  EXPECT_EQ(stmt->del.table, "t");
  ASSERT_EQ(stmt->del.where.size(), 1u);
  EXPECT_TRUE(sql::Parse("DELETE t").status().IsInvalidArgument());
  EXPECT_TRUE(
      engine_->Execute("DELETE FROM missing").status().IsNotFound());
}

TEST_F(EngineTest, PersistsAcrossReopen) {
  MustExecute("CREATE TABLE p (x DOUBLE)");
  MustExecute("INSERT INTO p VALUES (1), (2), (3)");
  ASSERT_TRUE(db_->Checkpoint().ok());
  engine_.reset();
  db_.reset();
  auto db = Database::Open(path_, DatabaseOptions{});
  ASSERT_TRUE(db.ok());
  db_ = std::move(db).value();
  engine_ = std::make_unique<Engine>(db_.get());
  QueryResult count = MustExecute("SELECT COUNT(*) FROM p");
  EXPECT_EQ(count.rows[0][0].i, 3);
}

// Fuzz-ish robustness: random byte strings and random token recombinations
// must never crash the parser — only return error Statuses.
TEST(ParserFuzzTest, RandomInputsNeverCrash) {
  Rng rng(20080325);
  const std::string alphabet =
      "SELECT FROM WHERE AND INSERT INTO VALUES CREATE TABLE INDEX ON "
      "DELETE LIMIT ORDER BY abc xyz 0 1.5 -2 ( ) , * ; = < > <= >= ' ";
  for (int trial = 0; trial < 2000; ++trial) {
    std::string input;
    const int len = static_cast<int>(rng.UniformInt(0, 60));
    for (int i = 0; i < len; ++i) {
      input.push_back(
          alphabet[static_cast<size_t>(rng.UniformInt(
              0, static_cast<int64_t>(alphabet.size() - 1)))]);
    }
    auto result = Parse(input);  // must not crash; status is free to fail
    if (result.ok()) {
      continue;
    }
    EXPECT_TRUE(result.status().IsInvalidArgument())
        << input << " -> " << result.status().ToString();
  }
}

TEST(ParserFuzzTest, TruncationsOfValidStatements) {
  const std::string statements[] = {
      "SELECT dt1, dv1 FROM drop2 WHERE dt1 <= 3600 AND dv1 <= -3 "
      "ORDER BY dt1 LIMIT 5;",
      "CREATE TABLE t (a DOUBLE, b BIGINT)",
      "INSERT INTO t VALUES (1, 2), (3, 4)",
      "DELETE FROM t WHERE a >= 0.5",
  };
  for (const std::string& statement : statements) {
    for (size_t cut = 0; cut < statement.size(); ++cut) {
      auto result = Parse(statement.substr(0, cut));
      // Prefixes are either valid statements or clean parse errors.
      if (!result.ok()) {
        EXPECT_TRUE(result.status().IsInvalidArgument());
      }
    }
    EXPECT_TRUE(Parse(statement).ok()) << statement;
  }
}

}  // namespace
}  // namespace sql
}  // namespace segdiff
