// Tests for the Exh baseline and the naive oracle: Exh must return
// exactly the naive events (it stores every within-window sampled pair).

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "test_paths.h"

#include "segdiff/exh_index.h"
#include "segdiff/naive.h"
#include "ts/generator.h"

namespace segdiff {
namespace {

class ExhTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = UniqueTestPath("segdiff_exh");
    std::remove(path_.c_str());
    CadGeneratorOptions gen;
    gen.num_days = 2;
    gen.cad_events_per_day = 1.0;
    auto data = GenerateCadSeries(gen);
    ASSERT_TRUE(data.ok());
    series_ = std::move(data->series);
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
  Series series_;
};

TEST_F(ExhTest, RowCountMatchesPairCount) {
  ExhOptions options;
  options.window_s = 3600.0;  // 12 samples of history per observation
  auto exh = ExhIndex::Open(path_, options);
  ASSERT_TRUE(exh.ok());
  ASSERT_TRUE((*exh)->IngestSeries(series_).ok());
  // Count expected pairs directly.
  uint64_t expected = 0;
  for (size_t i = 0; i < series_.size(); ++i) {
    for (size_t j = i + 1; j < series_.size(); ++j) {
      if (series_[j].t - series_[i].t > options.window_s) break;
      ++expected;
    }
  }
  EXPECT_EQ((*exh)->GetSizes().feature_rows, expected);
}

TEST_F(ExhTest, MatchesNaiveExactly) {
  ExhOptions options;
  options.window_s = 2 * 3600.0;
  auto exh = ExhIndex::Open(path_, options);
  ASSERT_TRUE(exh.ok());
  ASSERT_TRUE((*exh)->IngestSeries(series_).ok());
  NaiveSearcher naive(series_);
  for (double T : {900.0, 3600.0, 2 * 3600.0}) {
    for (double V : {-1.0, -3.0, -6.0}) {
      auto events = (*exh)->SearchDrops(T, V);
      ASSERT_TRUE(events.ok());
      auto expected = naive.SearchDrops(T, V);
      ASSERT_EQ(events->size(), expected.size()) << "T=" << T << " V=" << V;
      // Both sorted by (t_start, t_end): compare elementwise.
      for (size_t i = 0; i < expected.size(); ++i) {
        EXPECT_DOUBLE_EQ((*events)[i].t_start, expected[i].t_start);
        EXPECT_DOUBLE_EQ((*events)[i].t_end, expected[i].t_end);
        EXPECT_DOUBLE_EQ((*events)[i].dv, expected[i].dv);
      }
    }
    for (double V : {1.0, 3.0}) {
      auto events = (*exh)->SearchJumps(T, V);
      ASSERT_TRUE(events.ok());
      auto expected = naive.SearchJumps(T, V);
      EXPECT_EQ(events->size(), expected.size());
    }
  }
}

TEST_F(ExhTest, IndexAndSeqScanAgree) {
  ExhOptions options;
  options.window_s = 3600.0;
  auto exh = ExhIndex::Open(path_, options);
  ASSERT_TRUE((*exh)->IngestSeries(series_).ok());
  SearchOptions seq;
  seq.mode = QueryMode::kSeqScan;
  SearchOptions idx;
  idx.mode = QueryMode::kIndexScan;
  auto a = (*exh)->SearchDrops(1800, -2.0, seq);
  auto b = (*exh)->SearchDrops(1800, -2.0, idx);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_DOUBLE_EQ((*a)[i].t_start, (*b)[i].t_start);
    EXPECT_DOUBLE_EQ((*a)[i].t_end, (*b)[i].t_end);
  }
}

TEST_F(ExhTest, Validation) {
  ExhOptions bad;
  bad.window_s = 0;
  EXPECT_TRUE(ExhIndex::Open(path_, bad).status().IsInvalidArgument());
  ExhOptions options;
  options.window_s = 3600.0;
  options.build_index = false;
  auto exh = ExhIndex::Open(path_, options);
  ASSERT_TRUE(exh.ok());
  ASSERT_TRUE((*exh)->IngestSeries(series_).ok());
  EXPECT_TRUE((*exh)->SearchDrops(600, 1.0).status().IsInvalidArgument());
  EXPECT_TRUE((*exh)->SearchJumps(600, -1.0).status().IsInvalidArgument());
  EXPECT_TRUE((*exh)->SearchDrops(0, -1.0).status().IsInvalidArgument());
  EXPECT_TRUE(
      (*exh)->SearchDrops(7200.0, -1.0).status().IsInvalidArgument());
  SearchOptions idx;
  idx.mode = QueryMode::kIndexScan;
  EXPECT_TRUE(
      (*exh)->SearchDrops(600, -1.0, idx).status().IsInvalidArgument());
  // kAuto falls back to seq scan without an index.
  SearchOptions automatic;
  automatic.mode = QueryMode::kAuto;
  EXPECT_TRUE((*exh)->SearchDrops(600, -1.0, automatic).ok());
}

TEST_F(ExhTest, ChunkedIngestMatchesOneShot) {
  // Regression: the pair window used to reset on every IngestSeries
  // call, silently dropping every pair that straddles a chunk boundary.
  ExhOptions options;
  options.window_s = 3600.0;
  auto whole = ExhIndex::Open(path_, options);
  ASSERT_TRUE(whole.ok());
  ASSERT_TRUE((*whole)->IngestSeries(series_).ok());

  const std::string chunked_path =
      UniqueTestPath("segdiff_exh_chunked");
  std::remove(chunked_path.c_str());
  auto chunked = ExhIndex::Open(chunked_path, options);
  ASSERT_TRUE(chunked.ok());
  // Uneven chunks, including a chunk much shorter than the window.
  const size_t cuts[] = {3, series_.size() / 3, series_.size() / 3 + 5,
                         series_.size()};
  size_t start = 0;
  for (const size_t end : cuts) {
    Series chunk;
    for (size_t i = start; i < end; ++i) {
      ASSERT_TRUE(chunk.Append(series_[i]).ok());
    }
    ASSERT_TRUE((*chunked)->IngestSeries(chunk).ok());
    start = end;
  }

  EXPECT_EQ((*chunked)->GetSizes().feature_rows,
            (*whole)->GetSizes().feature_rows);
  auto a = (*whole)->SearchDrops(1800.0, -2.0);
  auto b = (*chunked)->SearchDrops(1800.0, -2.0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_DOUBLE_EQ((*a)[i].t_start, (*b)[i].t_start);
    EXPECT_DOUBLE_EQ((*a)[i].t_end, (*b)[i].t_end);
    EXPECT_DOUBLE_EQ((*a)[i].dv, (*b)[i].dv);
  }

  // Re-sending an already-ingested timestamp is rejected, not silently
  // double-counted.
  Series stale;
  ASSERT_TRUE(stale.Append(series_[series_.size() - 1]).ok());
  EXPECT_TRUE((*chunked)->IngestSeries(stale).IsInvalidArgument());
  std::remove(chunked_path.c_str());
}

TEST_F(ExhTest, ColdCachePreservesResults) {
  ExhOptions options;
  options.window_s = 3600.0;
  auto exh = ExhIndex::Open(path_, options);
  ASSERT_TRUE((*exh)->IngestSeries(series_).ok());
  auto warm = (*exh)->SearchDrops(1800, -2.0);
  ASSERT_TRUE(warm.ok());
  ASSERT_TRUE((*exh)->DropCaches().ok());
  auto cold = (*exh)->SearchDrops(1800, -2.0);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(warm->size(), cold->size());
}

TEST(NaiveTest, TinySeriesByHand) {
  Series series;
  ASSERT_TRUE(series.Append({0, 10}).ok());
  ASSERT_TRUE(series.Append({10, 6}).ok());   // drop 4 over 10
  ASSERT_TRUE(series.Append({20, 9}).ok());   // jump 3 over 10
  ASSERT_TRUE(series.Append({30, 2}).ok());   // drop 7 over 10
  NaiveSearcher naive(series);
  // Drops of >= 4 within 10s: (0,10) and (20,30).
  auto drops = naive.SearchDrops(10, -4.0);
  ASSERT_EQ(drops.size(), 2u);
  EXPECT_DOUBLE_EQ(drops[0].t_start, 0);
  EXPECT_DOUBLE_EQ(drops[1].t_start, 20);
  // Within 30s: also (0,30) with -8 and (10,30) with -4.
  drops = naive.SearchDrops(30, -4.0);
  EXPECT_EQ(drops.size(), 4u);
  // Jumps of >= 3 within 10s: (10,20).
  auto jumps = naive.SearchJumps(10, 3.0);
  ASSERT_EQ(jumps.size(), 1u);
  EXPECT_DOUBLE_EQ(jumps[0].t_start, 10);
  EXPECT_DOUBLE_EQ(jumps[0].dv, 3.0);
}

}  // namespace
}  // namespace segdiff
