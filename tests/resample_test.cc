// Tests for resampling and gap handling.

#include <gtest/gtest.h>

#include "ts/generator.h"
#include "ts/resample.h"

namespace segdiff {
namespace {

Series MakeSeries(std::vector<Sample> samples) {
  auto result = Series::FromSamples(std::move(samples));
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

TEST(ResampleTest, RegularGridMatchesModelG) {
  Series series = MakeSeries({{0, 0}, {10, 10}, {20, 0}});
  auto resampled = ResampleRegular(series, 2.5);
  ASSERT_TRUE(resampled.ok());
  ASSERT_EQ(resampled->size(), 9u);  // 0, 2.5, ..., 20
  EXPECT_DOUBLE_EQ((*resampled)[1].v, 2.5);
  EXPECT_DOUBLE_EQ((*resampled)[4].v, 10.0);
  EXPECT_DOUBLE_EQ((*resampled)[8].v, 0.0);
  EXPECT_DOUBLE_EQ(resampled->Stats().min_dt, 2.5);
  EXPECT_DOUBLE_EQ(resampled->Stats().max_dt, 2.5);
}

TEST(ResampleTest, Validation) {
  Series tiny;
  ASSERT_TRUE(tiny.Append({0, 0}).ok());
  EXPECT_TRUE(ResampleRegular(tiny, 1.0).status().IsInvalidArgument());
  Series ok_series = MakeSeries({{0, 0}, {1, 1}});
  EXPECT_TRUE(ResampleRegular(ok_series, 0).status().IsInvalidArgument());
  EXPECT_TRUE(ResampleRegular(ok_series, 1e-10).status().IsInvalidArgument());
}

TEST(FillGapsTest, BridgesOnlyLargeGaps) {
  Series series = MakeSeries({{0, 0}, {10, 10}, {100, 100}});
  auto filled = FillGaps(series, 20.0, 30.0);
  ASSERT_TRUE(filled.ok());
  // Gap 10..100 (90 s) filled at 40, 70; small gap untouched.
  ASSERT_EQ(filled->size(), 5u);
  EXPECT_DOUBLE_EQ((*filled)[2].t, 40.0);
  EXPECT_DOUBLE_EQ((*filled)[2].v, 40.0);
  EXPECT_DOUBLE_EQ((*filled)[3].t, 70.0);
  EXPECT_TRUE(FillGaps(series, -1, 1).status().IsInvalidArgument());
}

TEST(DownsampleTest, MeanPerBucket) {
  Series series =
      MakeSeries({{0, 1}, {1, 3}, {2, 5}, {10, 7}, {11, 9}, {25, 2}});
  auto down = DownsampleMean(series, 10.0);
  ASSERT_TRUE(down.ok());
  ASSERT_EQ(down->size(), 3u);
  EXPECT_DOUBLE_EQ((*down)[0].v, 3.0);  // mean(1,3,5)
  EXPECT_DOUBLE_EQ((*down)[0].t, 5.0);  // bucket center
  EXPECT_DOUBLE_EQ((*down)[1].v, 8.0);  // mean(7,9)
  EXPECT_DOUBLE_EQ((*down)[2].v, 2.0);
  EXPECT_TRUE(DownsampleMean(series, 0).status().IsInvalidArgument());
  Series empty;
  EXPECT_TRUE(DownsampleMean(empty, 10).value().empty());
}

TEST(SplitAtGapsTest, ChunksAtOutages) {
  Series series =
      MakeSeries({{0, 1}, {300, 2}, {600, 3}, {8000, 4}, {8300, 5}});
  auto chunks = SplitAtGaps(series, 600.0);
  ASSERT_EQ(chunks.size(), 2u);
  EXPECT_EQ(chunks[0].size(), 3u);
  EXPECT_EQ(chunks[1].size(), 2u);
  EXPECT_DOUBLE_EQ(chunks[1].front().t, 8000.0);
  // No gaps: one chunk; empty input: none.
  EXPECT_EQ(SplitAtGaps(series, 1e9).size(), 1u);
  EXPECT_TRUE(SplitAtGaps(Series(), 10).empty());
}

TEST(SplitAtGapsTest, RealisticOutageWorkflow) {
  // Generator with aggressive packet loss; split at >2 sample intervals,
  // then every chunk is regular enough to index.
  CadGeneratorOptions gen;
  gen.num_days = 3;
  gen.missing_probability = 0.05;
  auto data = GenerateCadSeries(gen);
  ASSERT_TRUE(data.ok());
  auto chunks = SplitAtGaps(data->series, 650.0);
  size_t total = 0;
  for (const Series& chunk : chunks) {
    total += chunk.size();
    if (chunk.size() >= 2) {
      EXPECT_LE(chunk.Stats().max_dt, 650.0);
    }
  }
  EXPECT_EQ(total, data->series.size());
}

}  // namespace
}  // namespace segdiff
