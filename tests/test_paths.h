// Unique temp paths for test databases.
//
// gtest_discover_tests runs every TEST as its own ctest job, so under
// `ctest -j` two tests of the same fixture execute concurrently in
// separate processes. A fixed per-fixture file name makes them clobber
// each other's database mid-run; deriving the path from the running
// test's full name keeps parallel jobs disjoint.

#ifndef SEGDIFF_TESTS_TEST_PATHS_H_
#define SEGDIFF_TESTS_TEST_PATHS_H_

#include <string>

#include <gtest/gtest.h>

namespace segdiff {

/// "<TempDir>/<stem>_<SuiteName>_<TestName><suffix>", sanitized. Must be
/// called on a test thread (uses the current test's name).
inline std::string UniqueTestPath(const std::string& stem,
                                  const std::string& suffix = ".db") {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  std::string name = std::string(info->test_suite_name()) + "_" + info->name();
  for (char& c : name) {
    if (c == '/' || c == '.') {
      c = '_';
    }
  }
  return testing::TempDir() + "/" + stem + "_" + name + suffix;
}

}  // namespace segdiff

#endif  // SEGDIFF_TESTS_TEST_PATHS_H_
