// Concurrency stress for the sharded buffer pool: many threads fetching
// random pages through a pool smaller than the working set. Checks that
// no pin is lost (DropAll succeeds after the storm), hit + miss counts
// add up, page contents stay intact, and concurrent dirtying flushes
// correctly. Run under SEGDIFF_SANITIZE=thread to verify data-race
// freedom; the `concurrency` ctest label selects these suites.

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "test_paths.h"

#include "storage/buffer_pool.h"
#include "storage/pager.h"

namespace segdiff {
namespace {

constexpr size_t kNumPages = 64;
constexpr size_t kPoolPages = 32;  // half the working set -> evictions
constexpr size_t kNumThreads = 8;
constexpr size_t kFetchesPerThread = 2000;

/// Thread-local xorshift so threads share no RNG state.
uint64_t NextRand(uint64_t* state) {
  uint64_t x = *state;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  return *state = x;
}

// Only the payload (kPageCapacity bytes) belongs to the caller; the
// trailer is the pager's checksum.
void StampPage(char* data, PageId id) {
  std::memset(data, static_cast<int>(id & 0x7f), kPageSize);
  std::memcpy(data, &id, sizeof(id));
}

bool CheckPage(const char* data, PageId id) {
  PageId stored;
  std::memcpy(&stored, data, sizeof(stored));
  if (stored != id) return false;
  for (size_t i = sizeof(stored); i < kPageCapacity; ++i) {
    if (data[i] != static_cast<char>(id & 0x7f)) return false;
  }
  return true;
}

class BufferPoolConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = UniqueTestPath("segdiff_bp_concurrency");
    std::remove(path_.c_str());
    auto pager = Pager::Open(path_, /*create=*/true);
    ASSERT_TRUE(pager.ok()) << pager.status().ToString();
    pager_ = std::move(pager).value();
    char buf[kPageSize];
    for (size_t i = 0; i < kNumPages; ++i) {
      auto id = pager_->AllocatePage();
      ASSERT_TRUE(id.ok());
      pages_.push_back(*id);
      StampPage(buf, *id);
      ASSERT_TRUE(pager_->WritePage(*id, buf).ok());
    }
  }
  void TearDown() override {
    pager_.reset();
    std::remove(path_.c_str());
  }

  std::string path_;
  std::unique_ptr<Pager> pager_;
  std::vector<PageId> pages_;
};

TEST_F(BufferPoolConcurrencyTest, RandomReadStorm) {
  BufferPool pool(pager_.get(), kPoolPages);
  EXPECT_GT(pool.num_shards(), 1u);  // 32 pages stripe into 2 shards
  std::vector<std::thread> threads;
  std::vector<int> bad_reads(kNumThreads, 0);
  for (size_t t = 0; t < kNumThreads; ++t) {
    threads.emplace_back([&, t] {
      uint64_t rng = 0x9e3779b97f4a7c15ull + t;
      for (size_t i = 0; i < kFetchesPerThread; ++i) {
        const PageId id = pages_[NextRand(&rng) % kNumPages];
        auto handle = pool.Fetch(id);
        if (!handle.ok() || !CheckPage(handle->data(), id)) {
          ++bad_reads[t];
          continue;
        }
        if (i % 7 == 0) {
          // Hold a second pin concurrently; both release on scope exit.
          const PageId other = pages_[NextRand(&rng) % kNumPages];
          auto second = pool.Fetch(other);
          if (!second.ok() || !CheckPage(second->data(), other)) {
            ++bad_reads[t];
          }
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  for (size_t t = 0; t < kNumThreads; ++t) {
    EXPECT_EQ(bad_reads[t], 0) << "thread " << t;
  }
  // Every fetch was either a hit or a miss; nothing double-counted.
  // Each iteration does one fetch plus an extra one every 7th.
  const BufferPoolStats stats = pool.stats();
  const uint64_t expected =
      kNumThreads * (kFetchesPerThread + (kFetchesPerThread + 6) / 7);
  EXPECT_EQ(stats.hits + stats.misses, expected);
  EXPECT_GT(stats.misses, 0u);  // pool smaller than working set
  EXPECT_LE(pool.cached_pages(), pool.capacity());
  // No lost pins: DropAll fails if any frame is still pinned.
  ASSERT_TRUE(pool.DropAll().ok());
  EXPECT_EQ(pool.cached_pages(), 0u);
}

TEST_F(BufferPoolConcurrencyTest, ConcurrentWritersFlushCleanly) {
  // Each thread owns a disjoint page slice, so page data is never
  // written concurrently; only the pool's internal state is contended.
  BufferPool pool(pager_.get(), kPoolPages);
  const size_t per_thread = kNumPages / kNumThreads;
  std::vector<std::thread> threads;
  std::vector<int> failures(kNumThreads, 0);
  for (size_t t = 0; t < kNumThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t round = 0; round < 50; ++round) {
        for (size_t k = 0; k < per_thread; ++k) {
          const PageId id = pages_[t * per_thread + k];
          auto handle = pool.Fetch(id);
          if (!handle.ok()) {
            ++failures[t];
            continue;
          }
          handle->data()[kPageCapacity - 1] = static_cast<char>(round);
          handle->MarkDirty();
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  for (size_t t = 0; t < kNumThreads; ++t) {
    EXPECT_EQ(failures[t], 0) << "thread " << t;
  }
  ASSERT_TRUE(pool.DropAll().ok());  // flushes every surviving dirty frame
  // All pages carry the final round stamp, whether it reached disk via
  // eviction writeback or the final flush.
  for (const PageId id : pages_) {
    auto handle = pool.Fetch(id);
    ASSERT_TRUE(handle.ok());
    EXPECT_EQ(handle->data()[kPageCapacity - 1], static_cast<char>(49))
        << "page " << id;
  }
}

TEST_F(BufferPoolConcurrencyTest, SmallPoolsStaySingleShard) {
  BufferPool small(pager_.get(), 4);
  EXPECT_EQ(small.num_shards(), 1u);
  BufferPool large(pager_.get(), 4096);
  EXPECT_EQ(large.num_shards(), BufferPool::kMaxShards);
}

}  // namespace
}  // namespace segdiff
