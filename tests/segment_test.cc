// Tests for segmentation: the O(n) sliding-window segmenter must be
// semantically identical to the textbook recheck-everything version and
// honour the eps/2 bound (paper Lemma 1); bottom-up must honour the same
// bound with fewer or equal segments.

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "segment/bottom_up.h"
#include "segment/pla.h"
#include "segment/sliding_window.h"
#include "ts/generator.h"
#include "ts/interpolate.h"

namespace segdiff {
namespace {

Series MakeSeries(std::vector<Sample> samples) {
  auto result = Series::FromSamples(std::move(samples));
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

/// Reference implementation: grow the window, recomputing the max error
/// of the anchor->candidate line over ALL interior points each step.
std::vector<DataSegment> ReferenceSlidingWindow(const Series& series,
                                                double max_error) {
  std::vector<DataSegment> segments;
  std::vector<Sample> window;
  for (const Sample& sample : series) {
    if (window.empty()) {
      window.push_back(sample);
      continue;
    }
    std::vector<Sample> candidate = window;
    candidate.push_back(sample);
    const Sample& a = candidate.front();
    const Sample& b = candidate.back();
    double err = 0.0;
    for (size_t i = 1; i + 1 < candidate.size(); ++i) {
      const double fitted = Lerp(a, b, candidate[i].t);
      err = std::max(err, std::abs(fitted - candidate[i].v));
    }
    if (err <= max_error) {
      window = std::move(candidate);
    } else {
      segments.push_back(DataSegment{window.front(), window.back()});
      window = {window.back(), sample};
    }
  }
  if (window.size() >= 2) {
    segments.push_back(DataSegment{window.front(), window.back()});
  }
  return segments;
}

TEST(SegmentTest, SlopeRiseDuration) {
  DataSegment segment{{0, 1}, {4, 9}};
  EXPECT_DOUBLE_EQ(segment.Slope(), 2.0);
  EXPECT_DOUBLE_EQ(segment.Rise(), 8.0);
  EXPECT_DOUBLE_EQ(segment.Duration(), 4.0);
  EXPECT_DOUBLE_EQ(segment.ValueAt(2), 5.0);
}

TEST(SegmentTest, Contiguity) {
  DataSegment a{{0, 1}, {2, 3}};
  DataSegment b{{2, 3}, {5, 0}};
  DataSegment c{{2, 4}, {5, 0}};
  EXPECT_TRUE(AreContiguous(a, b));
  EXPECT_FALSE(AreContiguous(a, c));
}

TEST(SlidingWindowTest, CollinearPointsMakeOneSegment) {
  Series series = MakeSeries({{0, 0}, {1, 1}, {2, 2}, {3, 3}, {4, 4}});
  auto pla = SegmentSeriesWithTolerance(series, 0.0);
  ASSERT_TRUE(pla.ok());
  EXPECT_EQ(pla->size(), 1u);
  EXPECT_EQ((*pla)[0].start.t, 0);
  EXPECT_EQ((*pla)[0].end.t, 4);
}

TEST(SlidingWindowTest, ZeroToleranceSplitsAtEveryKink) {
  Series series = MakeSeries({{0, 0}, {1, 1}, {2, 0}, {3, 1}, {4, 0}});
  auto pla = SegmentSeriesWithTolerance(series, 0.0);
  ASSERT_TRUE(pla.ok());
  EXPECT_EQ(pla->size(), 4u);
}

TEST(SlidingWindowTest, EndpointsAreRealObservations) {
  auto data = GenerateCadSeries([] {
    CadGeneratorOptions o;
    o.num_days = 2;
    return o;
  }());
  ASSERT_TRUE(data.ok());
  auto pla = SegmentSeriesWithTolerance(data->series, 0.4);
  ASSERT_TRUE(pla.ok());
  // Every segment endpoint must be an actual sample.
  size_t idx = 0;
  for (const DataSegment& segment : pla->segments()) {
    while (idx < data->series.size() &&
           data->series[idx].t < segment.start.t) {
      ++idx;
    }
    ASSERT_LT(idx, data->series.size());
    EXPECT_EQ(data->series[idx].t, segment.start.t);
    EXPECT_EQ(data->series[idx].v, segment.start.v);
  }
  EXPECT_EQ(pla->segments().back().end.t, data->series.back().t);
}

TEST(SlidingWindowTest, RejectsInvalidInput) {
  Series tiny;
  ASSERT_TRUE(tiny.Append({0, 0}).ok());
  EXPECT_TRUE(
      SegmentSeries(tiny, SegmentationOptions{}).status().IsInvalidArgument());
  Series ok_series = MakeSeries({{0, 0}, {1, 1}});
  SegmentationOptions bad;
  bad.max_error = -1;
  EXPECT_TRUE(SegmentSeries(ok_series, bad).status().IsInvalidArgument());
  EXPECT_TRUE(
      SegmentSeriesWithTolerance(ok_series, -0.5).status().IsInvalidArgument());
}

TEST(SlidingWindowTest, StreamingApiMatchesBatch) {
  auto walk = GenerateRandomWalk(5, 500, 1.0, 0.3);
  ASSERT_TRUE(walk.ok());
  SegmentationOptions options;
  options.max_error = 0.25;
  auto batch = SegmentSeries(*walk, options);
  ASSERT_TRUE(batch.ok());

  std::vector<DataSegment> streamed;
  SlidingWindowSegmenter segmenter(options, [&](const DataSegment& segment) {
    streamed.push_back(segment);
    return Status::OK();
  });
  for (const Sample& sample : *walk) {
    ASSERT_TRUE(segmenter.Add(sample).ok());
  }
  ASSERT_TRUE(segmenter.Finish().ok());
  EXPECT_EQ(segmenter.observations(), walk->size());
  EXPECT_EQ(segmenter.segments_emitted(), streamed.size());
  ASSERT_EQ(streamed.size(), batch->size());
  for (size_t i = 0; i < streamed.size(); ++i) {
    EXPECT_EQ(streamed[i], (*batch)[i]);
  }
}

TEST(SlidingWindowTest, StreamingRejectsMisuse) {
  SlidingWindowSegmenter segmenter(SegmentationOptions{},
                                   [](const DataSegment&) {
                                     return Status::OK();
                                   });
  ASSERT_TRUE(segmenter.Add({0, 0}).ok());
  EXPECT_TRUE(segmenter.Add({0, 1}).IsInvalidArgument());
  EXPECT_TRUE(segmenter.Add({-1, 1}).IsInvalidArgument());
  EXPECT_TRUE(
      segmenter
          .Add({1, std::numeric_limits<double>::quiet_NaN()})
          .IsInvalidArgument());
  ASSERT_TRUE(segmenter.Finish().ok());
  EXPECT_TRUE(segmenter.Finish().IsInvalidArgument());
  EXPECT_TRUE(segmenter.Add({2, 2}).IsInvalidArgument());
}

/// Property sweep: fast segmenter == reference segmenter, and the eps/2
/// bound holds at every sample, over seeds x tolerances.
class SlidingWindowPropertyTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, double>> {};

TEST_P(SlidingWindowPropertyTest, MatchesReferenceAndHonoursBound) {
  const uint64_t seed = std::get<0>(GetParam());
  const double eps = std::get<1>(GetParam());
  auto walk = GenerateRandomWalk(seed, 800, 1.0, 0.4);
  ASSERT_TRUE(walk.ok());

  auto fast = SegmentSeriesWithTolerance(*walk, eps);
  ASSERT_TRUE(fast.ok());
  const auto reference = ReferenceSlidingWindow(*walk, eps / 2.0);
  ASSERT_EQ(fast->size(), reference.size());
  for (size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ((*fast)[i], reference[i]) << "segment " << i;
  }

  // Lemma 1 at every sample...
  auto max_err = fast->MaxAbsErrorOver(*walk);
  ASSERT_TRUE(max_err.ok());
  EXPECT_LE(*max_err, eps / 2.0 + 1e-12);
  // ...and at dense Model-G points between samples.
  ModelGEvaluator eval(*walk);
  for (double t = walk->front().t; t <= walk->back().t; t += 3.7) {
    const double truth = eval.ValueAt(t).value();
    const double fitted = fast->Evaluate(t).value();
    EXPECT_LE(std::abs(fitted - truth), eps / 2.0 + 1e-12) << "t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SlidingWindowPropertyTest,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 5u),
                       ::testing::Values(0.1, 0.2, 0.4, 0.8, 1.0)));

TEST(PlaTest, FromSegmentsValidatesContiguity) {
  std::vector<DataSegment> good = {{{0, 0}, {1, 1}}, {{1, 1}, {2, 0}}};
  EXPECT_TRUE(PiecewiseLinear::FromSegments(good).ok());
  std::vector<DataSegment> gap = {{{0, 0}, {1, 1}}, {{1.5, 1}, {2, 0}}};
  EXPECT_TRUE(PiecewiseLinear::FromSegments(gap).status().IsInvalidArgument());
  std::vector<DataSegment> degenerate = {{{1, 1}, {1, 2}}};
  EXPECT_TRUE(
      PiecewiseLinear::FromSegments(degenerate).status().IsInvalidArgument());
}

TEST(PlaTest, EvaluateAndCompressionRate) {
  std::vector<DataSegment> segments = {{{0, 0}, {2, 4}}, {{2, 4}, {4, 0}}};
  auto pla = PiecewiseLinear::FromSegments(segments);
  ASSERT_TRUE(pla.ok());
  EXPECT_DOUBLE_EQ(pla->Evaluate(1).value(), 2.0);
  EXPECT_DOUBLE_EQ(pla->Evaluate(3).value(), 2.0);
  EXPECT_DOUBLE_EQ(pla->Evaluate(2).value(), 4.0);
  EXPECT_TRUE(pla->Evaluate(-1).status().IsOutOfRange());
  EXPECT_TRUE(pla->Evaluate(5).status().IsOutOfRange());
  EXPECT_DOUBLE_EQ(pla->CompressionRate(10), 5.0);
}

TEST(BottomUpTest, HonoursErrorBound) {
  for (uint64_t seed : {11u, 12u, 13u}) {
    auto walk = GenerateRandomWalk(seed, 500, 1.0, 0.4);
    ASSERT_TRUE(walk.ok());
    SegmentationOptions options;
    options.max_error = 0.2;
    auto pla = BottomUpSegment(*walk, options);
    ASSERT_TRUE(pla.ok());
    auto max_err = pla->MaxAbsErrorOver(*walk);
    ASSERT_TRUE(max_err.ok());
    EXPECT_LE(*max_err, options.max_error + 1e-12);
  }
}

TEST(BottomUpTest, AtLeastAsCompactAsFinestSplit) {
  auto walk = GenerateRandomWalk(21, 400, 1.0, 0.4);
  SegmentationOptions options;
  options.max_error = 0.3;
  auto bottom_up = BottomUpSegment(*walk, options);
  ASSERT_TRUE(bottom_up.ok());
  EXPECT_LT(bottom_up->size(), walk->size() - 1);
  // Typically beats (never dramatically loses to) sliding window.
  auto sliding = SegmentSeries(*walk, options);
  ASSERT_TRUE(sliding.ok());
  EXPECT_LE(bottom_up->size(), sliding->size() * 2);
}

TEST(BottomUpTest, CollinearMergesToOne) {
  Series series = MakeSeries({{0, 0}, {1, 1}, {2, 2}, {3, 3}});
  SegmentationOptions options;
  options.max_error = 0.0;
  auto pla = BottomUpSegment(series, options);
  ASSERT_TRUE(pla.ok());
  EXPECT_EQ(pla->size(), 1u);
}

TEST(BottomUpTest, RejectsInvalidInput) {
  Series tiny;
  ASSERT_TRUE(tiny.Append({0, 0}).ok());
  EXPECT_TRUE(
      BottomUpSegment(tiny, SegmentationOptions{}).status().IsInvalidArgument());
}

}  // namespace
}  // namespace segdiff
