// B+-tree tests: ordering against a std::map reference model, splits,
// range scans, persistence, and structural invariants.

#include <cstdio>
#include <map>
#include <string>

#include <gtest/gtest.h>

#include "test_paths.h"

#include "common/random.h"
#include "index/bplus_tree.h"
#include "storage/pager.h"

namespace segdiff {
namespace {

/// Comparable tuple form of a key for the reference model.
using RefKey = std::tuple<double, double, double, double, uint64_t>;

RefKey ToRef(const IndexKey& key) {
  return {key.vals[0], key.vals[1], key.vals[2], key.vals[3], key.rid};
}

class BPlusTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = UniqueTestPath("segdiff_bptree");
    std::remove(path_.c_str());
    auto pager = Pager::Open(path_, true);
    ASSERT_TRUE(pager.ok());
    pager_ = std::move(pager).value();
    pool_ = std::make_unique<BufferPool>(pager_.get(), 256);
  }
  void TearDown() override {
    pool_.reset();
    pager_.reset();
    std::remove(path_.c_str());
  }

  std::string path_;
  std::unique_ptr<Pager> pager_;
  std::unique_ptr<BufferPool> pool_;
};

TEST_F(BPlusTreeTest, CreateRejectsBadArity) {
  EXPECT_TRUE(BPlusTree::Create(pool_.get(), 0).status().IsInvalidArgument());
  EXPECT_TRUE(BPlusTree::Create(pool_.get(), 5).status().IsInvalidArgument());
}

TEST_F(BPlusTreeTest, EmptyTreeScan) {
  auto tree = BPlusTree::Create(pool_.get(), 2);
  ASSERT_TRUE(tree.ok());
  auto it = tree->SeekFirst();
  ASSERT_TRUE(it.ok());
  EXPECT_FALSE(it->Valid());
  EXPECT_TRUE(tree->CheckInvariants().ok());
}

TEST_F(BPlusTreeTest, InsertAndScanSorted) {
  auto tree = BPlusTree::Create(pool_.get(), 1);
  ASSERT_TRUE(tree.ok());
  Rng rng(3);
  std::map<RefKey, bool> reference;
  for (int i = 0; i < 5000; ++i) {
    IndexKey key;
    key.vals[0] = rng.Uniform(-100, 100);
    key.rid = static_cast<uint64_t>(i);
    ASSERT_TRUE(tree->Insert(key).ok());
    reference[ToRef(key)] = true;
  }
  EXPECT_EQ(tree->entry_count(), 5000u);
  EXPECT_GT(tree->height(), 1);
  ASSERT_TRUE(tree->CheckInvariants().ok());

  auto it = tree->SeekFirst();
  ASSERT_TRUE(it.ok());
  auto ref_it = reference.begin();
  size_t count = 0;
  while (it->Valid()) {
    ASSERT_NE(ref_it, reference.end());
    EXPECT_EQ(it->key().vals[0], std::get<0>(ref_it->first));
    EXPECT_EQ(it->key().rid, std::get<4>(ref_it->first));
    ++ref_it;
    ++count;
    ASSERT_TRUE(it->Next().ok());
  }
  EXPECT_EQ(count, 5000u);
}

TEST_F(BPlusTreeTest, DuplicateKeyRejected) {
  auto tree = BPlusTree::Create(pool_.get(), 2);
  IndexKey key;
  key.vals[0] = 1.0;
  key.vals[1] = 2.0;
  key.rid = 7;
  ASSERT_TRUE(tree->Insert(key).ok());
  EXPECT_TRUE(tree->Insert(key).IsAlreadyExists());
  // Same column values, different rid: allowed (rid is the tiebreaker).
  key.rid = 8;
  EXPECT_TRUE(tree->Insert(key).ok());
  EXPECT_EQ(tree->entry_count(), 2u);
}

TEST_F(BPlusTreeTest, NaNRejected) {
  auto tree = BPlusTree::Create(pool_.get(), 1);
  IndexKey key;
  key.vals[0] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(tree->Insert(key).IsInvalidArgument());
}

TEST_F(BPlusTreeTest, SeekFindsLowerBound) {
  auto tree = BPlusTree::Create(pool_.get(), 1);
  for (int i = 0; i < 100; ++i) {
    IndexKey key;
    key.vals[0] = i * 2.0;  // even numbers 0..198
    key.rid = static_cast<uint64_t>(i);
    ASSERT_TRUE(tree->Insert(key).ok());
  }
  auto it = tree->Seek(IndexKey::LowerBound({51.0}));
  ASSERT_TRUE(it.ok());
  ASSERT_TRUE(it->Valid());
  EXPECT_DOUBLE_EQ(it->key().vals[0], 52.0);
  // Exactly on a key: lands on it (rid 0 lower bound).
  it = tree->Seek(IndexKey::LowerBound({52.0}));
  ASSERT_TRUE(it->Valid());
  EXPECT_DOUBLE_EQ(it->key().vals[0], 52.0);
  // Past the end.
  it = tree->Seek(IndexKey::LowerBound({1000.0}));
  ASSERT_TRUE(it.ok());
  EXPECT_FALSE(it->Valid());
}

TEST_F(BPlusTreeTest, CompositeKeyOrdering) {
  auto tree = BPlusTree::Create(pool_.get(), 2);
  Rng rng(9);
  std::map<RefKey, bool> reference;
  for (int i = 0; i < 3000; ++i) {
    IndexKey key;
    key.vals[0] = rng.UniformInt(0, 20);  // many duplicates in column 0
    key.vals[1] = rng.Uniform(-10, 10);
    key.rid = static_cast<uint64_t>(i);
    ASSERT_TRUE(tree->Insert(key).ok());
    reference[ToRef(key)] = true;
  }
  ASSERT_TRUE(tree->CheckInvariants().ok());
  // Range scan [5, 9] on the leading column matches the reference.
  auto it = tree->Seek(IndexKey::LowerBound({5.0, -1e18}));
  ASSERT_TRUE(it.ok());
  size_t scanned = 0;
  IndexKey prev;
  bool first = true;
  while (it->Valid() && it->key().vals[0] <= 9.0) {
    if (!first) {
      EXPECT_LT(IndexKey::Compare(prev, it->key(), 2), 0);
    }
    prev = it->key();
    first = false;
    ++scanned;
    ASSERT_TRUE(it->Next().ok());
  }
  size_t expected = 0;
  for (const auto& [key, unused] : reference) {
    if (std::get<0>(key) >= 5.0 && std::get<0>(key) <= 9.0) ++expected;
  }
  EXPECT_EQ(scanned, expected);
}

TEST_F(BPlusTreeTest, PersistsAcrossAttach) {
  PageId meta_page;
  {
    auto tree = BPlusTree::Create(pool_.get(), 2);
    ASSERT_TRUE(tree.ok());
    meta_page = tree->meta_page();
    for (int i = 0; i < 2000; ++i) {
      IndexKey key;
      key.vals[0] = static_cast<double>(i % 50);
      key.vals[1] = static_cast<double>(i);
      key.rid = static_cast<uint64_t>(i);
      ASSERT_TRUE(tree->Insert(key).ok());
    }
    ASSERT_TRUE(pool_->FlushAll().ok());
  }
  // Reopen file cold.
  pool_.reset();
  pager_.reset();
  auto pager = Pager::Open(path_, false);
  ASSERT_TRUE(pager.ok());
  pager_ = std::move(pager).value();
  pool_ = std::make_unique<BufferPool>(pager_.get(), 64);
  auto tree = BPlusTree::Attach(pool_.get(), meta_page);
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  EXPECT_EQ(tree->entry_count(), 2000u);
  EXPECT_TRUE(tree->CheckInvariants().ok());
  auto it = tree->SeekFirst();
  size_t count = 0;
  while (it->Valid()) {
    ++count;
    ASSERT_TRUE(it->Next().ok());
  }
  EXPECT_EQ(count, 2000u);
}

TEST_F(BPlusTreeTest, AttachRejectsGarbageMetaPage) {
  auto garbage = pool_->AllocatePinned();
  ASSERT_TRUE(garbage.ok());
  garbage->data()[0] = 99;
  garbage->MarkDirty();
  const PageId page = garbage->page_id();
  garbage->Release();
  EXPECT_TRUE(BPlusTree::Attach(pool_.get(), page).status().IsCorruption());
}

TEST_F(BPlusTreeTest, Arity4DeepTree) {
  auto tree = BPlusTree::Create(pool_.get(), 4);
  ASSERT_TRUE(tree.ok());
  Rng rng(17);
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    IndexKey key;
    for (int c = 0; c < 4; ++c) {
      key.vals[c] = rng.Uniform(-5, 5);
    }
    key.rid = static_cast<uint64_t>(i);
    ASSERT_TRUE(tree->Insert(key).ok());
  }
  EXPECT_EQ(tree->entry_count(), static_cast<uint64_t>(n));
  EXPECT_GE(tree->height(), 2);
  ASSERT_TRUE(tree->CheckInvariants().ok());
  // Full scan is sorted and complete.
  auto it = tree->SeekFirst();
  size_t count = 0;
  IndexKey prev;
  while (it->Valid()) {
    if (count > 0) {
      EXPECT_LT(IndexKey::Compare(prev, it->key(), 4), 0);
    }
    prev = it->key();
    ++count;
    ASSERT_TRUE(it->Next().ok());
  }
  EXPECT_EQ(count, static_cast<size_t>(n));
  EXPECT_GT(tree->SizeBytes(), 0u);
}

TEST_F(BPlusTreeTest, DeleteAgainstReferenceModel) {
  auto tree = BPlusTree::Create(pool_.get(), 1);
  ASSERT_TRUE(tree.ok());
  Rng rng(23);
  std::map<RefKey, bool> reference;
  std::vector<IndexKey> inserted;
  for (int i = 0; i < 3000; ++i) {
    IndexKey key;
    key.vals[0] = rng.Uniform(-50, 50);
    key.rid = static_cast<uint64_t>(i);
    ASSERT_TRUE(tree->Insert(key).ok());
    reference[ToRef(key)] = true;
    inserted.push_back(key);
  }
  // Delete a random half.
  for (size_t i = 0; i < inserted.size(); i += 2) {
    ASSERT_TRUE(tree->Delete(inserted[i]).ok());
    reference.erase(ToRef(inserted[i]));
  }
  EXPECT_EQ(tree->entry_count(), reference.size());
  ASSERT_TRUE(tree->CheckInvariants().ok());
  // Deleting again reports NotFound.
  EXPECT_TRUE(tree->Delete(inserted[0]).IsNotFound());
  // Remaining keys scan in order and match the reference exactly.
  auto it = tree->SeekFirst();
  ASSERT_TRUE(it.ok());
  auto ref_it = reference.begin();
  while (it->Valid()) {
    ASSERT_NE(ref_it, reference.end());
    EXPECT_EQ(it->key().vals[0], std::get<0>(ref_it->first));
    EXPECT_EQ(it->key().rid, std::get<4>(ref_it->first));
    ++ref_it;
    ASSERT_TRUE(it->Next().ok());
  }
  EXPECT_EQ(ref_it, reference.end());
  // Inserting into a drained region still works.
  ASSERT_TRUE(tree->Insert(inserted[0]).ok());
  ASSERT_TRUE(tree->CheckInvariants().ok());
}

TEST_F(BPlusTreeTest, DeleteEveryKeyLeavesEmptyScannableTree) {
  auto tree = BPlusTree::Create(pool_.get(), 1);
  std::vector<IndexKey> keys;
  for (int i = 0; i < 1000; ++i) {
    IndexKey key;
    key.vals[0] = static_cast<double>(i);
    key.rid = static_cast<uint64_t>(i);
    ASSERT_TRUE(tree->Insert(key).ok());
    keys.push_back(key);
  }
  for (const IndexKey& key : keys) {
    ASSERT_TRUE(tree->Delete(key).ok());
  }
  EXPECT_EQ(tree->entry_count(), 0u);
  auto it = tree->SeekFirst();
  ASSERT_TRUE(it.ok());
  EXPECT_FALSE(it->Valid());
  ASSERT_TRUE(tree->CheckInvariants().ok());
}

TEST_F(BPlusTreeTest, SequentialInsertOrderStress) {
  // Ascending and descending inserts exercise both split edges.
  for (bool ascending : {true, false}) {
    auto tree = BPlusTree::Create(pool_.get(), 1);
    ASSERT_TRUE(tree.ok());
    const int n = 4000;
    for (int i = 0; i < n; ++i) {
      IndexKey key;
      key.vals[0] = static_cast<double>(ascending ? i : n - i);
      key.rid = static_cast<uint64_t>(i);
      ASSERT_TRUE(tree->Insert(key).ok());
    }
    ASSERT_TRUE(tree->CheckInvariants().ok());
    auto it = tree->SeekFirst();
    size_t count = 0;
    while (it->Valid()) {
      ++count;
      ASSERT_TRUE(it->Next().ok());
    }
    EXPECT_EQ(count, static_cast<size_t>(n));
  }
}

}  // namespace
}  // namespace segdiff
