// Crash-recovery and corruption-detection harness.
//
// Drives the storage stack through FaultInjectionVfs: torn pages, lost
// unsynced writes, failed fsyncs, dying devices, and flipped bits. The
// contract under test (DESIGN.md §9): after any single fault the store
// either reopens and resumes exactly at its last checkpoint, or reports
// Status::Corruption naming the damaged page — it never crashes, hangs,
// or silently returns wrong results, and a failed open never clobbers
// the on-disk evidence.
//
// The crash-matrix sweep samples its fault points with a seeded RNG;
// set SEGDIFF_FAULT_SEED to explore a different schedule (the default
// keeps CI deterministic).

#include <array>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "test_paths.h"

#include "common/coding.h"
#include "common/crc32c.h"
#include "common/env.h"
#include "common/vfs.h"
#include "query/executor.h"
#include "segdiff/exh_index.h"
#include "segdiff/segdiff_index.h"
#include "storage/buffer_pool.h"
#include "storage/db.h"
#include "storage/fault_vfs.h"
#include "storage/pager.h"
#include "storage/wal.h"
#include "ts/generator.h"

namespace segdiff {
namespace {

// ---------------------------------------------------------------------------
// CRC32C known answers (RFC 3720 test vector) and incremental equivalence.

TEST(Crc32cTest, KnownAnswers) {
  EXPECT_EQ(Crc32c("", 0), 0u);
  const char kNumbers[] = "123456789";
  EXPECT_EQ(Crc32c(kNumbers, 9), 0xE3069283u);
  // 32 zero bytes (iSCSI test vector).
  const char zeros[32] = {0};
  EXPECT_EQ(Crc32c(zeros, sizeof(zeros)), 0x8A9136AAu);
}

TEST(Crc32cTest, ExtendSplitsAreEquivalent) {
  std::string data(1027, '\0');
  std::mt19937_64 rng(42);
  for (char& c : data) {
    c = static_cast<char>(rng());
  }
  const uint32_t whole = Crc32c(data.data(), data.size());
  for (size_t split : {size_t{0}, size_t{1}, size_t{7}, size_t{512},
                       size_t{1026}, data.size()}) {
    uint32_t crc = Crc32cExtend(0, data.data(), split);
    crc = Crc32cExtend(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc, whole) << "split at " << split;
  }
  // The accessor must be callable either way; its value depends on the
  // build's -march flags.
  (void)Crc32cHardwareAccelerated();
}

// ---------------------------------------------------------------------------
// Helpers.

/// Flips one bit of the byte at `offset` in `path` (the classic silent
/// media error).
void FlipByte(const std::string& path, uint64_t offset) {
  auto file = Vfs::Default()->OpenFile(path, /*create=*/false);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  char b = 0;
  ASSERT_TRUE((*file)->Read(offset, 1, &b).ok());
  b ^= 0x40;
  ASSERT_TRUE((*file)->Write(offset, &b, 1).ok());
  ASSERT_TRUE((*file)->Sync().ok());
}

Series MakeSeries(int num_days, uint64_t seed = 20080325) {
  CadGeneratorOptions gen;
  gen.num_days = num_days;
  gen.cad_events_per_day = 1.0;
  gen.seed = seed;
  auto data = GenerateCadSeries(gen);
  EXPECT_TRUE(data.ok()) << data.status().ToString();
  return std::move(data->series);
}

/// Raw records of one table, in heap (= insertion) order.
std::vector<std::string> TableRecords(Database* db, const std::string& name) {
  std::vector<std::string> records;
  auto table = db->GetTable(name);
  EXPECT_TRUE(table.ok()) << table.status().ToString();
  const size_t bytes = (*table)->schema().num_columns() * 8;
  Status scan = (*table)->Scan(
      [&](const char* record, RecordId, bool* keep_going) -> Status {
        *keep_going = true;
        records.emplace_back(record, bytes);
        return Status::OK();
      });
  EXPECT_TRUE(scan.ok()) << scan.ToString();
  return records;
}

const char* const kSegDiffTables[] = {"segments", "drop1", "drop2", "drop3",
                                      "jump1",    "jump2", "jump3"};

void ExpectSameTables(SegDiffIndex* actual, SegDiffIndex* expected) {
  for (const char* name : kSegDiffTables) {
    const std::vector<std::string> a = TableRecords(actual->db(), name);
    const std::vector<std::string> e = TableRecords(expected->db(), name);
    ASSERT_EQ(a.size(), e.size()) << "row count mismatch in " << name;
    for (size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i], e[i]) << "record " << i << " differs in " << name;
    }
  }
}

// ---------------------------------------------------------------------------
// Pager-level detection: flipped bits and torn pages.

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = UniqueTestPath("fault");
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST_F(FaultInjectionTest, SingleByteFlipIsDetectedAndLocated) {
  char buf[kPageSize];
  {
    auto pager = Pager::Open(path_, /*create=*/true);
    ASSERT_TRUE(pager.ok()) << pager.status().ToString();
    auto first = (*pager)->AllocateExtent(4);  // pages 1..4
    ASSERT_TRUE(first.ok());
    for (PageId id = *first; id < *first + 4; ++id) {
      std::memset(buf, static_cast<int>('a' + id), kPageSize);
      ASSERT_TRUE((*pager)->WritePage(id, buf).ok());
    }
    ASSERT_TRUE((*pager)->Sync().ok());
  }
  FlipByte(path_, 2 * kPageSize + 137);  // one bit in page 2's payload

  auto pager = Pager::Open(path_, /*create=*/false);
  ASSERT_TRUE(pager.ok()) << pager.status().ToString();
  Status bad = (*pager)->ReadPage(2, buf);
  ASSERT_TRUE(bad.IsCorruption()) << bad.ToString();
  EXPECT_NE(std::string(bad.message()).find("page 2"), std::string::npos)
      << bad.ToString();
  EXPECT_TRUE((*pager)->ReadPage(1, buf).ok());  // neighbours unaffected
  EXPECT_TRUE((*pager)->ReadPage(3, buf).ok());

  auto report = (*pager)->Scrub();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->pages_checked, (*pager)->page_count());
  EXPECT_EQ(report->pages_unverifiable, 0u);
  ASSERT_EQ(report->corrupt.size(), 1u);
  EXPECT_EQ(report->corrupt[0].page, 2u);
  EXPECT_FALSE(report->clean());

  // Scrub (and the failed read) must not "repair" anything: the flipped
  // byte is evidence. A second scrub sees the same damage.
  auto again = (*pager)->Scrub();
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(again->corrupt.size(), 1u);
}

TEST_F(FaultInjectionTest, TornPageWriteSurfacesAsCorruptionAfterCrash) {
  FaultInjectionVfs vfs;
  char buf[kPageSize];
  {
    auto pager = Pager::Open(path_, /*create=*/true, &vfs);
    ASSERT_TRUE(pager.ok()) << pager.status().ToString();
    auto first = (*pager)->AllocateExtent(3);
    ASSERT_TRUE(first.ok());
    for (PageId id = *first; id < *first + 3; ++id) {
      std::memset(buf, 'o', kPageSize);
      ASSERT_TRUE((*pager)->WritePage(id, buf).ok());
    }
    ASSERT_TRUE((*pager)->Sync().ok());

    // Power cut mid-write: page 2's rewrite persists only 1000 bytes,
    // yet the device reported success. The following Sync makes the torn
    // state the durable state; the crash then prevents any healing
    // rewrite from reaching the disk.
    vfs.SetTornWrite(2 * kPageSize, 1000);
    std::memset(buf, 'n', kPageSize);
    ASSERT_TRUE((*pager)->WritePage(2, buf).ok());
    ASSERT_TRUE((*pager)->Sync().ok());
    ASSERT_TRUE(vfs.Crash().ok());
    // Pager destructor's best-effort header write fails harmlessly here.
  }
  EXPECT_EQ(vfs.counters().torn_writes, 1u);
  vfs.Reset();

  auto pager = Pager::Open(path_, /*create=*/false, &vfs);
  ASSERT_TRUE(pager.ok()) << pager.status().ToString();
  Status torn = (*pager)->ReadPage(2, buf);
  ASSERT_TRUE(torn.IsCorruption()) << torn.ToString();
  // The untouched pages still read back as their old contents.
  ASSERT_TRUE((*pager)->ReadPage(1, buf).ok());
  EXPECT_EQ(buf[0], 'o');
  auto report = (*pager)->Scrub();
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->corrupt.size(), 1u);
  EXPECT_EQ(report->corrupt[0].page, 2u);
}

// Satellite: a dirty page whose eviction write-back fails must stay
// dirty and cached, and the error must reach the caller that forced the
// eviction — not vanish into the LRU.
TEST_F(FaultInjectionTest, DirtyEvictionWritebackFailurePropagates) {
  FaultInjectionVfs vfs;
  auto pager = Pager::Open(path_, /*create=*/true, &vfs);
  ASSERT_TRUE(pager.ok()) << pager.status().ToString();
  auto first = (*pager)->AllocateExtent(20);
  ASSERT_TRUE(first.ok());

  BufferPool pool(pager->get(), 16);  // 16 frames, single shard
  ASSERT_EQ(pool.num_shards(), 1u);
  for (PageId id = *first; id < *first + 16; ++id) {
    auto handle = pool.Fetch(id);
    ASSERT_TRUE(handle.ok());
    std::memset(handle->data(), static_cast<int>(id & 0x7f), kPageCapacity);
    handle->MarkDirty();
  }

  vfs.FailAfterWrites(0);  // the device dies
  auto evicting = pool.Fetch(*first + 16);  // full pool -> must evict
  ASSERT_FALSE(evicting.ok());
  EXPECT_TRUE(evicting.status().IsIOError()) << evicting.status().ToString();
  // The victim was not lost: still cached, still dirty, still evictable.
  EXPECT_EQ(pool.cached_pages(), 16u);

  vfs.FailAfterWrites(-1);  // device back; the retry must succeed
  {
    auto retry = pool.Fetch(*first + 16);
    ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  }
  ASSERT_TRUE(pool.FlushAll().ok());
  ASSERT_TRUE(pool.DropAll().ok());

  // Every dirty page reached disk intact once the device recovered.
  char buf[kPageSize];
  for (PageId id = *first; id < *first + 16; ++id) {
    ASSERT_TRUE((*pager)->ReadPage(id, buf).ok());
    EXPECT_EQ(buf[0], static_cast<char>(id & 0x7f)) << "page " << id;
  }
}

// ---------------------------------------------------------------------------
// Store-level crash recovery.

class CrashRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = UniqueTestPath("crash");
    golden_path_ = UniqueTestPath("crash", "_golden.db");
    std::remove(path_.c_str());
    std::remove((path_ + ".wal").c_str());
    std::remove(golden_path_.c_str());
    std::remove((golden_path_ + ".wal").c_str());
    series_ = MakeSeries(1);
  }
  void TearDown() override {
    std::remove(path_.c_str());
    std::remove((path_ + ".wal").c_str());
    std::remove(golden_path_.c_str());
    std::remove((golden_path_ + ".wal").c_str());
  }

  SegDiffOptions Options(Vfs* vfs) const {
    SegDiffOptions options;
    options.build_indexes = false;  // heap-only stores keep the sweep fast
    options.vfs = vfs;
    return options;
  }

  /// The oracle: the full series ingested with no faults.
  std::unique_ptr<SegDiffIndex> BuildGolden() {
    auto store = SegDiffIndex::Open(golden_path_, Options(nullptr));
    EXPECT_TRUE(store.ok()) << store.status().ToString();
    for (const Sample& s : series_) {
      EXPECT_TRUE((*store)->AppendObservation(s.t, s.v).ok());
    }
    EXPECT_TRUE((*store)->FlushPending().ok());
    return std::move(store).value();
  }

  /// Ingests the series with a checkpoint every `kCheckpointEvery`
  /// observations, stopping at the first error (an injected fault).
  static void IngestUntilFault(SegDiffIndex* store, const Series& series) {
    uint64_t appended = 0;
    for (const Sample& s : series) {
      if (!store->AppendObservation(s.t, s.v).ok()) {
        return;
      }
      if (++appended % kCheckpointEvery == 0 && !store->Checkpoint().ok()) {
        return;
      }
    }
    if (!store->FlushPending().ok()) {
      return;
    }
    Status final_checkpoint = store->Checkpoint();  // may hit the fault
    (void)final_checkpoint;
  }

  /// Reopens after a crash and verifies the recovery contract: the store
  /// either resumes exactly (appending the tail reproduces the golden
  /// tables byte for byte) or reports Corruption. Anything else fails.
  void CheckRecoversOrReportsCorruption(FaultInjectionVfs* vfs,
                                        SegDiffIndex* golden) {
    auto reopened = SegDiffIndex::Open(path_, Options(vfs));
    if (!reopened.ok()) {
      EXPECT_TRUE(reopened.status().IsCorruption())
          << "reopen after crash must resume or report Corruption, got: "
          << reopened.status().ToString();
      return;
    }
    SegDiffIndex* store = reopened->get();
    const uint64_t resumed_at = store->num_observations();
    ASSERT_LE(resumed_at, series_.size());
    for (size_t i = resumed_at; i < series_.size(); ++i) {
      ASSERT_TRUE(store->AppendObservation(series_[i].t, series_[i].v).ok());
    }
    ASSERT_TRUE(store->FlushPending().ok());
    ExpectSameTables(store, golden);
  }

  static constexpr uint64_t kCheckpointEvery = 25;

  std::string path_;
  std::string golden_path_;
  Series series_;
};

TEST_F(CrashRecoveryTest, UnsyncedWritesRollBackToLastCheckpoint) {
  FaultInjectionVfs vfs;
  auto golden = BuildGolden();
  const size_t half = series_.size() / 2;
  // Checkpoint-granular durability is the contract under test, so the
  // WAL is off: with it on, the group-commit flusher races the crash
  // and some prefix of the second half would (correctly!) survive —
  // WalCrashTest owns that contract.
  SegDiffOptions options = Options(&vfs);
  options.wal = false;
  {
    auto store = SegDiffIndex::Open(path_, options);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    for (size_t i = 0; i < half; ++i) {
      ASSERT_TRUE((*store)->AppendObservation(series_[i].t, series_[i].v).ok());
    }
    ASSERT_TRUE((*store)->Checkpoint().ok());
    // The second half is never checkpointed: a crash erases it.
    for (size_t i = half; i < series_.size(); ++i) {
      ASSERT_TRUE((*store)->AppendObservation(series_[i].t, series_[i].v).ok());
    }
    ASSERT_TRUE(vfs.Crash().ok());
  }
  vfs.Reset();

  auto reopened = SegDiffIndex::Open(path_, Options(&vfs));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->num_observations(), half);
  // Appending the lost tail reproduces the golden store exactly.
  for (size_t i = half; i < series_.size(); ++i) {
    ASSERT_TRUE(
        (*reopened)->AppendObservation(series_[i].t, series_[i].v).ok());
  }
  ASSERT_TRUE((*reopened)->FlushPending().ok());
  ExpectSameTables(reopened->get(), golden.get());
}

TEST_F(CrashRecoveryTest, FailedFsyncSurfacesAndStoreRecovers) {
  FaultInjectionVfs vfs;
  auto store = SegDiffIndex::Open(path_, Options(&vfs));
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  for (size_t i = 0; i < 50; ++i) {
    ASSERT_TRUE((*store)->AppendObservation(series_[i].t, series_[i].v).ok());
  }
  vfs.FailAfterSyncs(0);
  Status failed = (*store)->Checkpoint();
  ASSERT_FALSE(failed.ok());
  EXPECT_TRUE(failed.IsIOError()) << failed.ToString();
  // fsync failures must not be swallowed and retried as a false success:
  // once the device recovers, an explicit checkpoint persists everything.
  vfs.FailAfterSyncs(-1);
  ASSERT_TRUE((*store)->Checkpoint().ok());
  ASSERT_TRUE(vfs.Crash().ok());
  store->reset();
  vfs.Reset();

  auto reopened = SegDiffIndex::Open(path_, Options(&vfs));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->num_observations(), 50u);
}

TEST_F(CrashRecoveryTest, CreatedFileSurvivesCrashOnlyAfterDirSync) {
  FaultInjectionVfs vfs;
  // Checkpoint-only durability isolates the directory-entry behavior
  // under test: with the WAL on, the very first group commit fsyncs the
  // directory and the file always survives (see the WAL crash tests).
  SegDiffOptions wal_off = Options(&vfs);
  wal_off.wal = false;
  {
    // Created, written, never checkpointed: the directory entry itself
    // is not durable, so a crash makes the whole file vanish.
    auto store = SegDiffIndex::Open(path_, wal_off);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    for (size_t i = 0; i < 10; ++i) {
      ASSERT_TRUE((*store)->AppendObservation(series_[i].t, series_[i].v).ok());
    }
    ASSERT_TRUE(vfs.Crash().ok());
  }
  vfs.Reset();
  EXPECT_FALSE(vfs.FileExists(path_));

  {
    // Same sequence with a checkpoint: Pager::Sync fsyncs the parent
    // directory after creation, so the file now survives the crash.
    auto store = SegDiffIndex::Open(path_, wal_off);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    for (size_t i = 0; i < 10; ++i) {
      ASSERT_TRUE((*store)->AppendObservation(series_[i].t, series_[i].v).ok());
    }
    ASSERT_TRUE((*store)->Checkpoint().ok());
    EXPECT_GE(vfs.counters().dir_syncs, 1u);
    ASSERT_TRUE(vfs.Crash().ok());
  }
  vfs.Reset();
  ASSERT_TRUE(vfs.FileExists(path_));
  auto reopened = SegDiffIndex::Open(path_, wal_off);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->num_observations(), 10u);
}

// The crash matrix: kill the device after the Nth write (then crash) for
// a seeded sample of N across the whole ingest, and likewise for syncs.
// Every fault point must land in "resumes exactly" or "reports
// Corruption" — nothing else.
TEST_F(CrashRecoveryTest, CrashMatrixWriteFaultSweep) {
  auto golden = BuildGolden();
  FaultInjectionVfs vfs;

  // Dry run: count the total writes a faultless ingest performs.
  {
    auto store = SegDiffIndex::Open(path_, Options(&vfs));
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    IngestUntilFault(store->get(), series_);
  }
  const uint64_t total_writes = vfs.counters().writes;
  ASSERT_GT(total_writes, 0u);

  const uint64_t seed = static_cast<uint64_t>(
      GetEnvInt64("SEGDIFF_FAULT_SEED", 20080325));
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<uint64_t> pick(0, total_writes - 1);
  std::vector<uint64_t> fault_points = {0, 1, total_writes - 1};
  for (int i = 0; i < 9; ++i) {
    fault_points.push_back(pick(rng));
  }

  for (const uint64_t n : fault_points) {
    SCOPED_TRACE("device dies after write " + std::to_string(n) +
                 " (seed " + std::to_string(seed) + ")");
    std::remove(path_.c_str());
    vfs.Reset();
    vfs.FailAfterWrites(static_cast<int64_t>(n));
    {
      auto store = SegDiffIndex::Open(path_, Options(&vfs));
      if (store.ok()) {
        IngestUntilFault(store->get(), series_);
      }
      ASSERT_TRUE(vfs.Crash().ok());
    }
    vfs.Reset();
    if (!vfs.FileExists(path_)) {
      continue;  // crashed before the directory entry was durable
    }
    CheckRecoversOrReportsCorruption(&vfs, golden.get());
  }
}

TEST_F(CrashRecoveryTest, CrashMatrixSyncFaultSweep) {
  auto golden = BuildGolden();
  FaultInjectionVfs vfs;
  {
    auto store = SegDiffIndex::Open(path_, Options(&vfs));
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    IngestUntilFault(store->get(), series_);
  }
  const uint64_t total_syncs = vfs.counters().syncs;
  ASSERT_GT(total_syncs, 0u);

  for (uint64_t n = 0; n < total_syncs; ++n) {
    SCOPED_TRACE("device dies after fsync " + std::to_string(n));
    std::remove(path_.c_str());
    vfs.Reset();
    vfs.FailAfterSyncs(static_cast<int64_t>(n));
    {
      auto store = SegDiffIndex::Open(path_, Options(&vfs));
      if (store.ok()) {
        IngestUntilFault(store->get(), series_);
      }
      ASSERT_TRUE(vfs.Crash().ok());
    }
    vfs.Reset();
    if (!vfs.FileExists(path_)) {
      continue;
    }
    CheckRecoversOrReportsCorruption(&vfs, golden.get());
  }
}

// Compaction through a dying device must fail loudly and leave the
// source byte-for-byte intact; a half-written destination either
// vanishes with the crash (its directory entry was never durable) or
// refuses to open — it can never pass for a healthy store.
TEST_F(CrashRecoveryTest, CrashDuringCompactLeavesSourceIntact) {
  FaultInjectionVfs vfs;
  const std::string dest = path_ + ".compact";
  std::remove(dest.c_str());
  {
    auto store = SegDiffIndex::Open(path_, Options(&vfs));
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    for (size_t i = 0; i < 100; ++i) {
      ASSERT_TRUE((*store)->AppendObservation(series_[i].t, series_[i].v).ok());
    }
    ASSERT_TRUE((*store)->FlushPending().ok());
    ASSERT_TRUE((*store)->Checkpoint().ok());

    vfs.FailAfterWrites(5);  // the device dies a few pages into the copy
    Status compact = (*store)->Compact(dest);
    ASSERT_FALSE(compact.ok());
    EXPECT_TRUE(compact.IsIOError()) << compact.ToString();
    ASSERT_TRUE(vfs.Crash().ok());
  }
  vfs.Reset();

  auto reopened = SegDiffIndex::Open(path_, Options(&vfs));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->num_observations(), 100u);
  EXPECT_TRUE((*reopened)->SearchDrops(3600.0, -3.0).ok());

  if (vfs.FileExists(dest)) {
    SegDiffOptions options = Options(&vfs);
    options.create_if_missing = false;
    auto half = SegDiffIndex::Open(dest, options);
    EXPECT_FALSE(half.ok()) << "half-compacted store opened cleanly";
  }
  std::remove(dest.c_str());
}

// The row->columnar conversion inside CompactInto is the one moment the
// store changes physical format. Sweep device-death points across the
// whole conversion: at every fault point the SOURCE store must reopen
// with its row format intact (same records, searchable), and the
// half-converted destination must either vanish with the crash or
// refuse to open — it can never pass for a healthy columnar store.
TEST_F(CrashRecoveryTest, CrashMatrixCompactConversionSweep) {
  FaultInjectionVfs vfs;
  const std::string dest = path_ + ".columnar";
  std::remove(dest.c_str());

  DatabaseOptions db_options;
  db_options.vfs = &vfs;
  std::vector<std::string> golden_records;
  {
    auto db = Database::Open(path_, db_options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    auto schema = DoubleSchema({"t", "v"});
    ASSERT_TRUE(schema.ok());
    auto table = (*db)->CreateTable("f", *schema);
    ASSERT_TRUE(table.ok());
    double t = 0.0;
    std::mt19937_64 rng(7);
    for (int i = 0; i < 9000; ++i) {
      t += 30.0 + static_cast<double>(rng() % 60);
      ASSERT_TRUE(
          (*table)
              ->InsertDoubles({t, static_cast<double>(rng() % 1600) / 100.0})
              .ok());
    }
    ASSERT_TRUE((*db)->Checkpoint().ok());
    golden_records = TableRecords(db->get(), "f");
  }
  ASSERT_EQ(golden_records.size(), 9000u);

  // Dry run: how many writes does a faultless conversion perform?
  // Count the delta across CompactInto itself — the source database's
  // close-time checkpoint also writes, and those writes are not part of
  // the conversion under test.
  uint64_t total_writes = 0;
  {
    db_options.create_if_missing = false;
    auto db = Database::Open(path_, db_options);
    ASSERT_TRUE(db.ok());
    (*db)->Abandon();
    const uint64_t before = vfs.counters().writes;
    ASSERT_TRUE((*db)->CompactInto(dest).ok());
    total_writes = vfs.counters().writes - before;
  }
  ASSERT_GT(total_writes, 0u);
  {  // the faultless conversion itself must produce a columnar store
    auto converted = Database::Open(dest, db_options);
    ASSERT_TRUE(converted.ok()) << converted.status().ToString();
    auto table = (*converted)->GetTable("f");
    ASSERT_TRUE(table.ok());
    ASSERT_NE((*table)->columnar(), nullptr);
    EXPECT_EQ(TableRecords(converted->get(), "f"), golden_records);
  }
  std::remove(dest.c_str());

  const uint64_t seed =
      static_cast<uint64_t>(GetEnvInt64("SEGDIFF_FAULT_SEED", 20080325));
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<uint64_t> pick(0, total_writes - 1);
  std::vector<uint64_t> fault_points = {0, 1, total_writes / 2,
                                        total_writes - 1};
  for (int i = 0; i < 8; ++i) {
    fault_points.push_back(pick(rng));
  }

  for (const uint64_t n : fault_points) {
    SCOPED_TRACE("device dies after write " + std::to_string(n) +
                 " of the conversion (seed " + std::to_string(seed) + ")");
    std::remove(dest.c_str());
    vfs.Reset();
    Status compact;
    {
      auto db = Database::Open(path_, db_options);
      ASSERT_TRUE(db.ok()) << db.status().ToString();
      vfs.FailAfterWrites(static_cast<int64_t>(n));
      compact = (*db)->CompactInto(dest);
      if (!compact.ok()) {
        EXPECT_TRUE(compact.IsIOError()) << compact.ToString();
      }
      ASSERT_TRUE(vfs.Crash().ok());
    }
    vfs.Reset();

    // The source still opens on the old row format with every record —
    // regardless of where the conversion died.
    auto source = Database::Open(path_, db_options);
    ASSERT_TRUE(source.ok())
        << "source store lost after conversion crash: "
        << source.status().ToString();
    auto table = (*source)->GetTable("f");
    ASSERT_TRUE(table.ok());
    EXPECT_EQ((*table)->columnar(), nullptr)
        << "source must stay row-format";
    EXPECT_EQ(TableRecords(source->get(), "f"), golden_records);
    (*source)->Abandon();

    if (compact.ok()) {
      // The fault point landed past the conversion's last write (write
      // counts shift by a page or two between runs): success means the
      // destination was fully checkpointed, so it must open complete.
      auto done = Database::Open(dest, db_options);
      ASSERT_TRUE(done.ok()) << done.status().ToString();
      auto converted = (*done)->GetTable("f");
      ASSERT_TRUE(converted.ok());
      EXPECT_NE((*converted)->columnar(), nullptr);
      EXPECT_EQ(TableRecords(done->get(), "f"), golden_records);
      continue;
    }

    // The half-written destination never passes for a healthy store.
    if (vfs.FileExists(dest)) {
      auto half = Database::Open(dest, db_options);
      if (half.ok()) {
        // Tolerated only if the crash landed after the conversion was
        // fully durable — then it must be complete and correct.
        EXPECT_EQ(TableRecords(half->get(), "f"), golden_records)
            << "half-converted store opened with wrong contents";
      } else {
        EXPECT_TRUE(half.status().IsCorruption() ||
                    half.status().IsIOError() ||
                    half.status().IsNotFound())
            << half.status().ToString();
      }
    }
  }
  std::remove(dest.c_str());
}

// ---------------------------------------------------------------------------
// Graceful degradation: corruption quarantines the range, search says so.

TEST_F(CrashRecoveryTest, FlippedFeaturePageQuarantinesSearch) {
  PageId victim = kInvalidPageId;
  {
    auto store = SegDiffIndex::Open(path_, Options(nullptr));
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    for (const Sample& s : series_) {
      ASSERT_TRUE((*store)->AppendObservation(s.t, s.v).ok());
    }
    ASSERT_TRUE((*store)->FlushPending().ok());
    auto results = (*store)->SearchDrops(3600.0, -3.0);
    ASSERT_TRUE(results.ok()) << results.status().ToString();

    // Find a heap page of drop1 to damage.
    auto table = (*store)->db()->GetTable("drop1");
    ASSERT_TRUE(table.ok());
    ASSERT_TRUE((*table)
                    ->Scan([&](const char*, RecordId id,
                               bool* keep_going) -> Status {
                      victim = id.page;
                      *keep_going = false;
                      return Status::OK();
                    })
                    .ok());
  }
  ASSERT_NE(victim, kInvalidPageId) << "series produced no drop1 rows";
  FlipByte(path_, victim * kPageSize + 64);

  auto store = SegDiffIndex::Open(path_, Options(nullptr));
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  auto results = (*store)->SearchDrops(3600.0, -3.0);
  ASSERT_FALSE(results.ok()) << "corrupt page returned "
                             << results->size() << " rows";
  EXPECT_TRUE(results.status().IsCorruption());
  const std::string message(results.status().message());
  EXPECT_NE(message.find("quarantined"), std::string::npos) << message;
  EXPECT_NE(message.find("drop1"), std::string::npos) << message;

  // The scrubber maps the damage to the exact page.
  auto report = (*store)->db()->Scrub();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->corrupt.size(), 1u);
  EXPECT_EQ(report->corrupt[0].page, victim);
}

// Zone-map pruning must not mask corruption: a pruned page is still
// fetched — and checksum-verified — by the buffer pool; pruning only
// skips the decode and predicate work. A damaged page therefore fails
// the scan even when its rows could never match the predicate.
TEST_F(FaultInjectionTest, PrunedCorruptPageStillDetected) {
  PageId victim = kInvalidPageId;
  Predicate nothing_matches;
  nothing_matches.And(0, CmpOp::kGe, 1e9);  // beyond every zone's max
  {
    auto db = Database::Open(path_, DatabaseOptions{});
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    auto schema = DoubleSchema({"a", "b"});
    ASSERT_TRUE(schema.ok());
    auto table = (*db)->CreateTable("f", *schema);
    ASSERT_TRUE(table.ok());
    for (int i = 0; i < 2000; ++i) {
      ASSERT_TRUE((*table)
                      ->InsertDoubles({static_cast<double>(i),
                                       static_cast<double>(-i)})
                      .ok());
    }
    ASSERT_TRUE((*table)
                    ->Scan([&](const char*, RecordId id,
                               bool* keep_going) -> Status {
                      victim = id.page;
                      *keep_going = false;
                      return Status::OK();
                    })
                    .ok());
    // Sanity: on the healthy store this query prunes every single page.
    ScanStats stats;
    ASSERT_TRUE(SeqScan(**table, nothing_matches,
                        [](const char*, RecordId) { return Status::OK(); },
                        &stats)
                    .ok());
    ASSERT_EQ(stats.pages_pruned, (*table)->heap_meta().page_count);
    ASSERT_EQ(stats.pages_scanned, 0u);
    ASSERT_TRUE((*db)->Checkpoint().ok());
  }
  ASSERT_NE(victim, kInvalidPageId);
  FlipByte(path_, victim * kPageSize + 200);

  DatabaseOptions options;
  options.create_if_missing = false;
  auto db = Database::Open(path_, options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  (*db)->Abandon();  // keep the evidence on disk
  auto table = (*db)->GetTable("f");
  ASSERT_TRUE(table.ok());
  ASSERT_NE((*table)->zone_map(), nullptr) << "zone map not restored";
  Status status =
      SeqScan(**table, nothing_matches,
              [](const char*, RecordId) { return Status::OK(); }, nullptr);
  ASSERT_TRUE(status.IsCorruption())
      << "pruned scan masked a corrupt page: " << status.ToString();
  EXPECT_NE(std::string(status.message())
                .find("page " + std::to_string(victim)),
            std::string::npos)
      << status.ToString();
}

// ---------------------------------------------------------------------------
// Legacy v1 stores: readable, write-protected, upgraded by compaction.

TEST_F(FaultInjectionTest, LegacyV1OpensReadOnlyAndCompactUpgrades) {
  const std::string dest = path_ + ".compacted";
  std::remove(dest.c_str());
  {
    DatabaseOptions options;
    auto db = Database::Open(path_, options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    auto schema = DoubleSchema({"a", "b"});
    ASSERT_TRUE(schema.ok());
    auto table = (*db)->CreateTable("t", *schema);
    ASSERT_TRUE(table.ok());
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(
          (*table)->InsertDoubles({double(i), double(-i)}).ok());
    }
    ASSERT_TRUE((*db)->Checkpoint().ok());
  }
  // Rewrite the header's version field: the file now claims to be a v1
  // store written before page trailers existed.
  {
    auto file = Vfs::Default()->OpenFile(path_, /*create=*/false);
    ASSERT_TRUE(file.ok());
    const char v1[4] = {1, 0, 0, 0};
    ASSERT_TRUE((*file)->Write(4, v1, 4).ok());
    ASSERT_TRUE((*file)->Sync().ok());
  }

  // Pager level: reads fine, writes refused with actionable advice.
  {
    auto pager = Pager::Open(path_, /*create=*/false);
    ASSERT_TRUE(pager.ok()) << pager.status().ToString();
    EXPECT_EQ((*pager)->format_version(), Pager::kFormatLegacy);
    EXPECT_TRUE((*pager)->read_only());
    char buf[kPageSize];
    EXPECT_TRUE((*pager)->ReadPage(1, buf).ok());
    Status refused = (*pager)->WritePage(1, buf);
    ASSERT_TRUE(refused.IsNotSupported()) << refused.ToString();
    EXPECT_NE(std::string(refused.message()).find("compact"),
              std::string::npos);
    auto report = (*pager)->Scrub();
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report->clean());
    EXPECT_EQ(report->pages_unverifiable, report->pages_checked);
  }

  // Database level: data readable, compaction writes a fresh v2 store.
  {
    DatabaseOptions options;
    options.create_if_missing = false;
    auto db = Database::Open(path_, options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    EXPECT_TRUE((*db)->pager()->read_only());
    EXPECT_EQ(TableRecords(db->get(), "t").size(), 100u);
    ASSERT_TRUE((*db)->CompactInto(dest).ok());
  }
  {
    DatabaseOptions options;
    options.create_if_missing = false;
    auto db = Database::Open(dest, options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    EXPECT_EQ((*db)->pager()->format_version(), Pager::kFormatChecksummed);
    EXPECT_FALSE((*db)->pager()->read_only());
    EXPECT_EQ(TableRecords(db->get(), "t").size(), 100u);
    auto report = (*db)->Scrub();
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report->clean());
    EXPECT_EQ(report->pages_unverifiable, 0u);
  }
  std::remove(dest.c_str());
}

// ---------------------------------------------------------------------------
// WAL crash recovery (DESIGN.md §13): acknowledged group commits survive
// any crash, torn log tails are detected and trimmed, replay is
// idempotent, and searches read consistent snapshots during ingest.

class WalCrashTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = UniqueTestPath("walcrash");
    golden_path_ = UniqueTestPath("walcrash", "_golden.db");
    RemoveStores();
    series_ = MakeSeries(1);
  }
  void TearDown() override { RemoveStores(); }

  void RemoveStores() {
    std::remove(path_.c_str());
    std::remove(Wal::PathFor(path_).c_str());
    std::remove(golden_path_.c_str());
    std::remove(Wal::PathFor(golden_path_).c_str());
  }

  /// WAL on with a zero group-commit window: once FlushPending() returns
  /// OK, everything appended so far must be on stable storage.
  SegDiffOptions Options(Vfs* vfs) const {
    SegDiffOptions options;
    options.build_indexes = false;
    options.vfs = vfs;
    options.wal_group_commit_ms = 0;
    return options;
  }

  /// Ingests `series` with a group commit every kFlushEvery observations
  /// and NO checkpoints — recovery must come from WAL replay alone.
  /// Stops at the first injected fault. Returns the number of
  /// observations covered by the last acknowledged FlushPending().
  ///
  /// FlushPending() finalizes the segmenter's trailing segment, so the
  /// flush schedule is part of the store's logical content; the golden
  /// oracle and every recovery tail must follow the same cadence
  /// (recovery replays logged flush markers to reproduce it).
  static uint64_t IngestWithGroupCommits(SegDiffIndex* store,
                                         const Series& series,
                                         size_t start = 0,
                                         size_t end = static_cast<size_t>(-1)) {
    if (end > series.size()) end = series.size();
    uint64_t acked = start;
    for (size_t i = start; i < end; ++i) {
      if (!store->AppendObservation(series[i].t, series[i].v).ok()) {
        return acked;
      }
      if ((i + 1) % kFlushEvery == 0) {
        if (!store->FlushPending().ok()) {
          return acked;
        }
        acked = i + 1;
      }
    }
    if (store->FlushPending().ok()) {
      acked = end;
    }
    return acked;
  }

  /// The oracle: the full series ingested faultlessly under the same
  /// group-commit cadence as the crash runs.
  std::unique_ptr<SegDiffIndex> BuildGolden() {
    auto store = SegDiffIndex::Open(golden_path_, Options(nullptr));
    EXPECT_TRUE(store.ok()) << store.status().ToString();
    EXPECT_EQ(IngestWithGroupCommits(store->get(), series_), series_.size());
    return std::move(store).value();
  }

  /// The acknowledged-means-durable contract after a crash: nothing past
  /// the last OK FlushPending() may be missing, and appending the
  /// remaining tail (same flush cadence) reproduces the golden tables
  /// byte for byte.
  void CheckNothingAckedWasLost(FaultInjectionVfs* vfs, uint64_t acked,
                                SegDiffIndex* golden) {
    if (!vfs->FileExists(path_)) {
      // The store may vanish in a crash only if no group commit ever
      // acknowledged it (the first commit fsyncs the directory).
      EXPECT_EQ(acked, 0u) << "acknowledged store vanished in the crash";
      return;
    }
    auto reopened = SegDiffIndex::Open(path_, Options(vfs));
    if (!reopened.ok()) {
      EXPECT_EQ(acked, 0u)
          << "store with acknowledged commits failed to reopen: "
          << reopened.status().ToString();
      EXPECT_TRUE(reopened.status().IsCorruption())
          << reopened.status().ToString();
      return;
    }
    SegDiffIndex* store = reopened->get();
    EXPECT_GE(store->num_observations(), acked)
        << "observations acknowledged by FlushPending were lost";
    const uint64_t resumed_at = store->num_observations();
    ASSERT_LE(resumed_at, series_.size());
    ASSERT_EQ(IngestWithGroupCommits(store, series_, resumed_at),
              series_.size());
    ExpectSameTables(store, golden);
  }

  /// Byte-for-byte file copy (the "kill -9 disk state" capture below).
  static void CopyFileBytes(const std::string& from, const std::string& to) {
    std::ifstream in(from, std::ios::binary);
    std::ofstream out(to, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(in.good() && out.good()) << "copy " << from << " -> " << to;
    out << in.rdbuf();
    ASSERT_TRUE(out.good()) << "copy " << from << " -> " << to;
  }

  static constexpr uint64_t kFlushEvery = 20;

  std::string path_;
  std::string golden_path_;
  Series series_;
};

// Crash after the Nth write, for a seeded sample of N: everything the
// store acknowledged before the fault must survive recovery.
TEST_F(WalCrashTest, AckedGroupCommitsSurviveWriteCrashes) {
  auto golden = BuildGolden();
  FaultInjectionVfs vfs;

  // Dry run: count the writes a faultless WAL-backed ingest performs.
  {
    auto store = SegDiffIndex::Open(path_, Options(&vfs));
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    ASSERT_EQ(IngestWithGroupCommits(store->get(), series_), series_.size());
  }
  const uint64_t total_writes = vfs.counters().writes;
  ASSERT_GT(total_writes, 0u);

  const uint64_t seed =
      static_cast<uint64_t>(GetEnvInt64("SEGDIFF_FAULT_SEED", 20080325));
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<uint64_t> pick(0, total_writes - 1);
  std::vector<uint64_t> fault_points = {0, 1, total_writes - 1};
  for (int i = 0; i < 9; ++i) {
    fault_points.push_back(pick(rng));
  }

  for (const uint64_t n : fault_points) {
    SCOPED_TRACE("device dies after write " + std::to_string(n) + " (seed " +
                 std::to_string(seed) + ")");
    std::remove(path_.c_str());
    std::remove(Wal::PathFor(path_).c_str());
    vfs.Reset();
    vfs.FailAfterWrites(static_cast<int64_t>(n));
    uint64_t acked = 0;
    {
      auto store = SegDiffIndex::Open(path_, Options(&vfs));
      if (store.ok()) {
        acked = IngestWithGroupCommits(store->get(), series_);
      }
      ASSERT_TRUE(vfs.Crash().ok());
    }
    vfs.Reset();
    CheckNothingAckedWasLost(&vfs, acked, golden.get());
  }
}

// Same sweep over fsync fault points: a group commit whose fsync failed
// is not acknowledged, so the contract is identical.
TEST_F(WalCrashTest, AckedGroupCommitsSurviveSyncCrashes) {
  auto golden = BuildGolden();
  FaultInjectionVfs vfs;
  {
    auto store = SegDiffIndex::Open(path_, Options(&vfs));
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    ASSERT_EQ(IngestWithGroupCommits(store->get(), series_), series_.size());
  }
  const uint64_t total_syncs = vfs.counters().syncs;
  ASSERT_GT(total_syncs, 0u);

  const uint64_t seed =
      static_cast<uint64_t>(GetEnvInt64("SEGDIFF_FAULT_SEED", 20080325));
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<uint64_t> pick(0, total_syncs - 1);
  std::vector<uint64_t> fault_points = {0, 1, total_syncs - 1};
  for (int i = 0; i < 9; ++i) {
    fault_points.push_back(pick(rng));
  }

  for (const uint64_t n : fault_points) {
    SCOPED_TRACE("device dies after fsync " + std::to_string(n) + " (seed " +
                 std::to_string(seed) + ")");
    std::remove(path_.c_str());
    std::remove(Wal::PathFor(path_).c_str());
    vfs.Reset();
    vfs.FailAfterSyncs(static_cast<int64_t>(n));
    uint64_t acked = 0;
    {
      auto store = SegDiffIndex::Open(path_, Options(&vfs));
      if (store.ok()) {
        acked = IngestWithGroupCommits(store->get(), series_);
      }
      ASSERT_TRUE(vfs.Crash().ok());
    }
    vfs.Reset();
    CheckNothingAckedWasLost(&vfs, acked, golden.get());
  }
}

// A torn tail — a frame half-written when the power died — is trimmed:
// the scrubber reports it (without calling the log corrupt) and recovery
// replays every complete frame before it.
TEST_F(WalCrashTest, TornWalTailIsDetectedAndTrimmed) {
  auto golden = BuildGolden();
  FaultInjectionVfs vfs;
  uint64_t acked = 0;
  {
    auto store = SegDiffIndex::Open(path_, Options(&vfs));
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    // Group-commit half the series (cut at a flush boundary so the
    // cadence matches the golden run), then crash: the log holds the
    // prefix, the data file only the Open-time catalog checkpoint.
    const size_t prefix = (series_.size() / 2 / kFlushEvery) * kFlushEvery;
    ASSERT_GE(prefix, kFlushEvery);
    acked = IngestWithGroupCommits(store->get(), series_, 0, prefix);
    ASSERT_EQ(acked, prefix);
    ASSERT_TRUE(vfs.Crash().ok());
  }
  vfs.Reset();

  // Tear the tail: append a partial frame's worth of garbage.
  const std::string wal_path = Wal::PathFor(path_);
  {
    auto file = Vfs::Default()->OpenFile(wal_path, /*create=*/false);
    ASSERT_TRUE(file.ok()) << file.status().ToString();
    auto size = (*file)->Size();
    ASSERT_TRUE(size.ok());
    const char junk[7] = {'\x13', '\x37', '\x00', '\xff', '\x42', '\x42',
                          '\x42'};
    ASSERT_TRUE((*file)->Write(*size, junk, sizeof(junk)).ok());
  }

  const WalScrubReport torn = Wal::Scrub(Vfs::Default(), path_);
  EXPECT_TRUE(torn.exists);
  EXPECT_FALSE(torn.corrupt) << torn.message;
  EXPECT_TRUE(torn.torn_tail);
  EXPECT_GT(torn.frames, 0u);

  CheckNothingAckedWasLost(&vfs, acked, golden.get());

  // Recovery overwrote the torn bytes; the log is whole again.
  const WalScrubReport healed = Wal::Scrub(Vfs::Default(), path_);
  EXPECT_TRUE(healed.clean()) << healed.message;
  EXPECT_FALSE(healed.torn_tail) << healed.message;
}

// A non-fresh store paired with a log whose generation starts beyond
// the store's applied LSN + 1 — a mismatched or foreign sidecar whose
// earlier generations covered LSNs this data file never applied — is
// refused loudly. Silently adopting it would assume the records in
// (applied, start_lsn) reached the data file.
TEST_F(WalCrashTest, MismatchedWalGenerationIsRefused) {
  {
    auto store = SegDiffIndex::Open(path_, Options(nullptr));
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    ASSERT_EQ(IngestWithGroupCommits(store->get(), series_), series_.size());
  }  // close checkpoints: the store now has a non-zero applied LSN

  // Forge a structurally valid, empty WAL generation starting far past
  // anything this data file applied.
  char header[kWalHeaderSize];
  std::memset(header, 0, sizeof(header));
  EncodeFixed32(header, kWalMagic);
  EncodeFixed32(header + 4, kWalVersion);
  EncodeFixed64(header + 8, uint64_t{1} << 40);  // start_lsn
  EncodeFixed32(header + 24, Crc32c(header, 24));
  {
    std::ofstream out(Wal::PathFor(path_),
                      std::ios::binary | std::ios::trunc);
    out.write(header, sizeof(header));
    ASSERT_TRUE(out.good());
  }

  auto reopened = SegDiffIndex::Open(path_, Options(nullptr));
  ASSERT_FALSE(reopened.ok());
  EXPECT_TRUE(reopened.status().IsCorruption())
      << reopened.status().ToString();

  // The remedy the diagnostic names: remove the stale sidecar.
  std::remove(Wal::PathFor(path_).c_str());
  auto recovered = SegDiffIndex::Open(path_, Options(nullptr));
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ((*recovered)->num_observations(), series_.size());
}

// Replaying the same log twice yields byte-identical tables: recovery
// must be idempotent, and a read-only open (Abandon) must not advance
// the store's on-disk state.
// The opposite crash model from FaultInjectionVfs::Crash(): the process
// dies but every write it issued SURVIVES (kill -9 — the OS page cache
// drains to disk after the process is gone). Simulated by copying the
// db + wal files of a live store mid-ingest: a tiny buffer pool forces
// dirty-page steals, so the copy holds post-checkpoint page writes the
// header and catalog do not describe yet. Recovery must roll those
// pages back to their undo images before logical replay — without
// them, replay double-applies onto the stolen state.
TEST_F(WalCrashTest, PreservedWritesKillCrashModelRecovers) {
  auto golden = BuildGolden();
  SegDiffOptions options = Options(nullptr);
  options.buffer_pool_pages = 8;
  const std::string copy = UniqueTestPath("walcrash", "_copy.db");
  std::remove(copy.c_str());
  std::remove(Wal::PathFor(copy).c_str());
  const size_t kill_at = series_.size() / 2 + 7;  // mid group commit
  uint64_t acked = 0;
  {
    auto store = SegDiffIndex::Open(path_, options);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    // The group-commit cadence without the helper's trailing flush: a
    // flush at kill_at would be a segment boundary golden doesn't have.
    for (size_t i = 0; i < kill_at; ++i) {
      ASSERT_TRUE(
          (*store)->AppendObservation(series_[i].t, series_[i].v).ok());
      if ((i + 1) % kFlushEvery == 0) {
        ASSERT_TRUE((*store)->FlushPending().ok());
        acked = i + 1;
      }
    }
    ASSERT_GT(acked, 0u);
    CopyFileBytes(path_, copy);
    CopyFileBytes(Wal::PathFor(path_), Wal::PathFor(copy));
    // Only the copy "crashed"; the original closes normally below.
  }
  auto reopened = SegDiffIndex::Open(copy, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  SegDiffIndex* store = reopened->get();
  EXPECT_GE(store->num_observations(), acked)
      << "observations acknowledged by FlushPending were lost";
  const uint64_t resumed_at = store->num_observations();
  ASSERT_LE(resumed_at, series_.size());
  ASSERT_EQ(IngestWithGroupCommits(store, series_, resumed_at),
            series_.size());
  ExpectSameTables(store, golden.get());
  std::remove(copy.c_str());
  std::remove(Wal::PathFor(copy).c_str());
}

TEST_F(WalCrashTest, ReplayIsIdempotentByteForByte) {
  FaultInjectionVfs vfs;
  {
    auto store = SegDiffIndex::Open(path_, Options(&vfs));
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    ASSERT_GT(IngestWithGroupCommits(store->get(), series_), 0u);
    ASSERT_TRUE(vfs.Crash().ok());
  }
  vfs.Reset();

  std::vector<std::vector<std::string>> first, second;
  uint64_t first_count = 0, second_count = 0;
  for (int round = 0; round < 2; ++round) {
    auto store = SegDiffIndex::Open(path_, Options(&vfs));
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    std::vector<std::vector<std::string>>& out = round == 0 ? first : second;
    for (const char* name : kSegDiffTables) {
      out.push_back(TableRecords((*store)->db(), name));
    }
    (round == 0 ? first_count : second_count) =
        (*store)->num_observations();
    // Walk away without flushing: replay stays in memory, the disk
    // state (data file AND log) is untouched for the next round.
    (*store)->db()->Abandon();
  }
  EXPECT_EQ(first_count, second_count);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i], second[i])
        << "replay #2 diverged in table " << kSegDiffTables[i];
  }
}

// Searches racing a live writer must read consistent snapshots: every
// concurrent result is a subset of the final serial answer, and once
// ingest finishes the answers match exactly. Run under TSan to verify
// the locking protocol, not just the results.
TEST_F(WalCrashTest, SnapshotSearchesMatchSerialUnderConcurrentIngest) {
  static constexpr double kT = 3600.0;
  static constexpr double kV = -1.0;

  // Serial oracle: same flush cadence, searched with nothing running.
  auto golden = BuildGolden();
  auto expected = golden->SearchDrops(kT, kV);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();
  std::set<std::array<double, 4>> allowed;
  for (const PairId& id : *expected) {
    allowed.insert({id.t_d, id.t_c, id.t_b, id.t_a});
  }

  SegDiffOptions options = Options(nullptr);
  options.build_indexes = true;  // exercise the IndexScan snapshot path
  auto opened = SegDiffIndex::Open(path_, options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  SegDiffIndex* store = opened->get();

  std::atomic<bool> done{false};
  std::atomic<uint64_t> searches{0};
  std::atomic<int> violations{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      const QueryMode kModes[] = {QueryMode::kSeqScan, QueryMode::kIndexScan,
                                  QueryMode::kAuto};
      uint64_t iter = 0;
      while (!done.load(std::memory_order_acquire)) {
        SearchOptions search;
        search.mode = kModes[iter++ % 3];
        search.num_threads = r == 0 ? 2 : 0;  // parallel + serial readers
        SearchStats stats;
        auto result = store->SearchDrops(kT, kV, search, &stats);
        if (!result.ok()) {
          ++violations;
          break;
        }
        ++searches;
        if (stats.snapshot_observations > series_.size()) {
          ++violations;
        }
        for (const PairId& id : *result) {
          if (allowed.find({id.t_d, id.t_c, id.t_b, id.t_a}) ==
              allowed.end()) {
            ++violations;  // a pair the serial oracle never produces
          }
        }
      }
    });
  }

  ASSERT_EQ(IngestWithGroupCommits(store, series_), series_.size());
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) {
    t.join();
  }
  EXPECT_EQ(violations.load(), 0)
      << "a concurrent search returned an error or a phantom pair";
  EXPECT_GT(searches.load(), 0u);

  // Quiesced, the concurrent store answers exactly like the oracle.
  auto final_result = store->SearchDrops(kT, kV);
  ASSERT_TRUE(final_result.ok()) << final_result.status().ToString();
  ASSERT_EQ(final_result->size(), expected->size());
  for (size_t i = 0; i < final_result->size(); ++i) {
    EXPECT_TRUE((*final_result)[i] == (*expected)[i]) << "pair " << i;
  }
}

// The Exh store's variant of the same race: appends materialize pairs
// eagerly, searches walk the (dt, dv) B+-tree, and every concurrent
// IndexScan answer must still be a subset of the final one.
TEST_F(WalCrashTest, ExhSnapshotSearchesAreConsistentUnderIngest) {
  static constexpr double kT = 3600.0;
  static constexpr double kV = -1.0;

  ExhOptions options;
  options.vfs = nullptr;
  options.wal_group_commit_ms = 0;
  auto opened = ExhIndex::Open(path_, options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  ExhIndex* store = opened->get();

  // Exh needs no flush cadence for content: rows appear per append.
  // Golden answer first, computed serially on a throwaway store.
  std::set<std::array<double, 3>> allowed;
  {
    ExhOptions golden_options = options;
    auto golden = ExhIndex::Open(golden_path_, golden_options);
    ASSERT_TRUE(golden.ok()) << golden.status().ToString();
    for (const Sample& s : series_) {
      ASSERT_TRUE((*golden)->AppendObservation(s.t, s.v).ok());
    }
    ASSERT_TRUE((*golden)->FlushPending().ok());
    auto expected = (*golden)->SearchDrops(kT, kV);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    for (const ExhEvent& e : *expected) {
      allowed.insert({e.t_start, e.t_end, e.dv});
    }
  }

  std::atomic<bool> done{false};
  std::atomic<uint64_t> searches{0};
  std::atomic<int> violations{0};
  std::thread reader([&] {
    SearchOptions search;
    search.mode = QueryMode::kIndexScan;
    while (!done.load(std::memory_order_acquire)) {
      auto result = store->SearchDrops(kT, kV, search);
      if (!result.ok()) {
        ++violations;
        break;
      }
      ++searches;
      for (const ExhEvent& e : *result) {
        if (allowed.find({e.t_start, e.t_end, e.dv}) == allowed.end()) {
          ++violations;
        }
      }
    }
  });

  for (size_t i = 0; i < series_.size(); ++i) {
    ASSERT_TRUE(store->AppendObservation(series_[i].t, series_[i].v).ok());
    if ((i + 1) % kFlushEvery == 0) {
      ASSERT_TRUE(store->FlushPending().ok());
    }
  }
  ASSERT_TRUE(store->FlushPending().ok());
  done.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(violations.load(), 0)
      << "a concurrent Exh search returned an error or a phantom event";
  EXPECT_GT(searches.load(), 0u);

  auto final_result = store->SearchDrops(kT, kV);
  ASSERT_TRUE(final_result.ok()) << final_result.status().ToString();
  EXPECT_EQ(final_result->size(), allowed.size());
}

}  // namespace
}  // namespace segdiff
