// Differential test of the SQL engine: random SELECTs (projection,
// conjunctive WHERE, ORDER BY, LIMIT, aggregates) over random data are
// checked against a straightforward in-memory reference evaluator.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "test_paths.h"

#include "common/random.h"
#include "sql/engine.h"

namespace segdiff {
namespace sql {
namespace {

struct RefDb {
  std::vector<std::vector<double>> rows;  // 3 double columns: a, b, c
};

struct RandomQuery {
  std::string text;
  std::vector<WhereClause> where;
  int order_column = -1;  // -1: none
  bool ascending = true;
  int64_t limit = -1;     // -1: none
  Aggregate aggregate = Aggregate::kNone;
  int aggregate_column = 0;
};

bool Passes(const std::vector<double>& row,
            const std::vector<WhereClause>& where) {
  static const char* names[] = {"a", "b", "c"};
  for (const WhereClause& clause : where) {
    int column = 0;
    for (int c = 0; c < 3; ++c) {
      if (clause.column == names[c]) column = c;
    }
    const double v = row[static_cast<size_t>(column)];
    bool ok = true;
    switch (clause.op) {
      case CmpOp::kLt: ok = v < clause.value; break;
      case CmpOp::kLe: ok = v <= clause.value; break;
      case CmpOp::kGt: ok = v > clause.value; break;
      case CmpOp::kGe: ok = v >= clause.value; break;
      case CmpOp::kEq: ok = v == clause.value; break;
    }
    if (!ok) return false;
  }
  return true;
}

RandomQuery MakeQuery(Rng* rng) {
  static const char* names[] = {"a", "b", "c"};
  static const char* ops[] = {"<", "<=", ">", ">=",};
  static const CmpOp op_enums[] = {CmpOp::kLt, CmpOp::kLe, CmpOp::kGt,
                                   CmpOp::kGe};
  RandomQuery query;
  const int agg_pick = static_cast<int>(rng->UniformInt(0, 5));
  std::string select_list;
  if (agg_pick == 1) {
    query.aggregate = Aggregate::kCount;
    select_list = "COUNT(*)";
  } else if (agg_pick == 2) {
    query.aggregate = Aggregate::kSum;
    query.aggregate_column = static_cast<int>(rng->UniformInt(0, 2));
    select_list = std::string("SUM(") + names[query.aggregate_column] + ")";
  } else if (agg_pick == 3) {
    query.aggregate = Aggregate::kAvg;
    query.aggregate_column = static_cast<int>(rng->UniformInt(0, 2));
    select_list = std::string("AVG(") + names[query.aggregate_column] + ")";
  } else {
    select_list = "a, b, c";
  }
  query.text = "SELECT " + select_list + " FROM t";
  const int conjuncts = static_cast<int>(rng->UniformInt(0, 3));
  for (int i = 0; i < conjuncts; ++i) {
    const int column = static_cast<int>(rng->UniformInt(0, 2));
    const int op = static_cast<int>(rng->UniformInt(0, 3));
    const double value = std::round(rng->Uniform(-50, 50));
    WhereClause clause;
    clause.column = names[column];
    clause.op = op_enums[op];
    clause.value = value;
    query.where.push_back(clause);
    query.text += i == 0 ? " WHERE " : " AND ";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s %s %g", names[column], ops[op],
                  value);
    query.text += buf;
  }
  if (query.aggregate == Aggregate::kNone && rng->Bernoulli(0.5)) {
    query.order_column = static_cast<int>(rng->UniformInt(0, 2));
    query.ascending = rng->Bernoulli(0.5);
    query.text += std::string(" ORDER BY ") + names[query.order_column] +
                  (query.ascending ? " ASC" : " DESC");
  }
  // LIMIT without ORDER BY returns an access-path-dependent prefix
  // (legal SQL, but not comparable to a reference), so only combine
  // LIMIT with ORDER BY.
  if (query.order_column >= 0 && rng->Bernoulli(0.4)) {
    query.limit = rng->UniformInt(0, 30);
    query.text += " LIMIT " + std::to_string(query.limit);
  }
  return query;
}

TEST(SqlDifferentialTest, RandomQueriesMatchReference) {
  const std::string path =
      UniqueTestPath("segdiff_sql_differential");
  std::remove(path.c_str());
  auto db = Database::Open(path, DatabaseOptions{});
  ASSERT_TRUE(db.ok());
  Engine engine(db->get());
  ASSERT_TRUE(
      engine.Execute("CREATE TABLE t (a DOUBLE, b DOUBLE, c DOUBLE)").ok());
  ASSERT_TRUE(engine.Execute("CREATE INDEX ia ON t (a, b)").ok());
  ASSERT_TRUE(engine.Execute("CREATE INDEX ib ON t (b)").ok());

  Rng rng(777);
  RefDb reference;
  for (int i = 0; i < 800; ++i) {
    std::vector<double> row = {std::round(rng.Uniform(-60, 60)),
                               std::round(rng.Uniform(-60, 60)),
                               std::round(rng.Uniform(-60, 60))};
    char sql[128];
    std::snprintf(sql, sizeof(sql), "INSERT INTO t VALUES (%g, %g, %g)",
                  row[0], row[1], row[2]);
    ASSERT_TRUE(engine.Execute(sql).ok());
    reference.rows.push_back(std::move(row));
  }

  for (int trial = 0; trial < 300; ++trial) {
    const RandomQuery query = MakeQuery(&rng);
    auto result = engine.Execute(query.text);
    ASSERT_TRUE(result.ok()) << query.text << ": "
                             << result.status().ToString();

    // Reference evaluation.
    std::vector<std::vector<double>> expected;
    for (const auto& row : reference.rows) {
      if (Passes(row, query.where)) {
        expected.push_back(row);
      }
    }

    if (query.aggregate == Aggregate::kCount) {
      ASSERT_EQ(result->rows.size(), 1u) << query.text;
      EXPECT_EQ(result->rows[0][0].i,
                static_cast<int64_t>(expected.size()))
          << query.text;
      continue;
    }
    if (query.aggregate == Aggregate::kSum ||
        query.aggregate == Aggregate::kAvg) {
      double sum = 0;
      for (const auto& row : expected) {
        sum += row[static_cast<size_t>(query.aggregate_column)];
      }
      if (query.aggregate == Aggregate::kAvg && expected.empty()) {
        EXPECT_TRUE(result->rows.empty()) << query.text;
      } else {
        ASSERT_EQ(result->rows.size(), 1u) << query.text;
        const double want = query.aggregate == Aggregate::kSum
                                ? sum
                                : sum / static_cast<double>(expected.size());
        EXPECT_NEAR(result->rows[0][0].d, want, 1e-6) << query.text;
      }
      continue;
    }

    // Row queries: apply ORDER BY/LIMIT to the reference.
    if (query.order_column >= 0) {
      const size_t column = static_cast<size_t>(query.order_column);
      const bool ascending = query.ascending;
      std::stable_sort(expected.begin(), expected.end(),
                       [column, ascending](const auto& x, const auto& y) {
                         return ascending ? x[column] < y[column]
                                          : x[column] > y[column];
                       });
    }
    if (query.limit >= 0 &&
        expected.size() > static_cast<size_t>(query.limit)) {
      expected.resize(static_cast<size_t>(query.limit));
    }
    ASSERT_EQ(result->rows.size(), expected.size()) << query.text;
    auto materialize = [](const std::vector<Row>& rows) {
      std::vector<std::vector<double>> out;
      for (const Row& row : rows) {
        out.push_back({row[0].d, row[1].d, row[2].d});
      }
      return out;
    };
    std::vector<std::vector<double>> actual = materialize(result->rows);
    if (query.order_column >= 0) {
      // Ties may permute (and differ at a LIMIT cut), so compare the
      // ordering key column values positionally.
      const size_t column = static_cast<size_t>(query.order_column);
      for (size_t i = 0; i < actual.size(); ++i) {
        EXPECT_EQ(actual[i][column], expected[i][column])
            << query.text << " row " << i;
      }
    } else {
      // Row order depends on the chosen access path: compare multisets.
      std::sort(actual.begin(), actual.end());
      std::sort(expected.begin(), expected.end());
      EXPECT_EQ(actual, expected) << query.text;
    }
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sql
}  // namespace segdiff
