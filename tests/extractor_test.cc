// Tests for Algorithm 1: windowing, truncation, self pairs, stats.

#include <cmath>

#include <gtest/gtest.h>

#include "feature/extractor.h"
#include "segment/sliding_window.h"
#include "ts/generator.h"

namespace segdiff {
namespace {

PiecewiseLinear MakeChain(std::vector<DataSegment> segments) {
  auto result = PiecewiseLinear::FromSegments(std::move(segments));
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

struct Collected {
  std::vector<PairFeatures> rows;
  ExtractorStats stats;
};

Collected RunExtractor(const PiecewiseLinear& pla, const ExtractorOptions& options) {
  Collected out;
  Status status = ExtractFeatures(
      pla, options,
      [&out](const PairFeatures& row) {
        out.rows.push_back(row);
        return Status::OK();
      },
      &out.stats);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return out;
}

TEST(ExtractorTest, PairsEverySegmentInWindow) {
  // Three contiguous 10s segments, window covers everything.
  PiecewiseLinear pla = MakeChain({{{0, 0}, {10, -5}},
                                   {{10, -5}, {20, 2}},
                                   {{20, 2}, {30, -1}}});
  ExtractorOptions options;
  options.eps = 0.1;
  options.window_s = 100.0;
  Collected out = RunExtractor(pla, options);
  // Cross pairs: (1,2), (1,3), (2,3); self pairs: 3.
  EXPECT_EQ(out.stats.cross_pairs, 3u);
  EXPECT_EQ(out.stats.self_pairs, 3u);
  EXPECT_EQ(out.stats.segments_in, 3u);
}

TEST(ExtractorTest, WindowEvictsOldSegments) {
  // Segments of 10s each; window of 15s: segment i pairs only with i-1
  // (and truncated i-2 when it still overlaps).
  std::vector<DataSegment> segments;
  double v = 0.0;
  for (int i = 0; i < 10; ++i) {
    const double t = i * 10.0;
    const double nv = (i % 2 == 0) ? v - 3 : v + 2;
    segments.push_back({{t, v}, {t + 10, nv}});
    v = nv;
  }
  ExtractorOptions options;
  options.eps = 0.1;
  options.window_s = 15.0;
  Collected out = RunExtractor(MakeChain(segments), options);
  // For segment i (start t=10i), win.start = 10i - 15: segment i-1 fully
  // inside, segment i-2 overlaps by 5s (truncated), older ones evicted.
  // Cross pairs: i=1 pairs 1; i>=2 pair 2 each.
  EXPECT_EQ(out.stats.cross_pairs, 1u + 8u * 2u);
}

TEST(ExtractorTest, TruncationClampsPairIdToWindow) {
  // One long old segment, then a short one far later but with window
  // overlap only over part of the old segment.
  PiecewiseLinear pla = MakeChain({{{0, 0}, {100, 50}},
                                   {{100, 50}, {110, 20}}});
  ExtractorOptions options;
  options.eps = 0.1;
  options.window_s = 30.0;  // win.start for AB = 100 - 30 = 70
  Collected out = RunExtractor(pla, options);
  ASSERT_EQ(out.stats.cross_pairs, 1u);
  bool saw_cross = false;
  for (const PairFeatures& row : out.rows) {
    if (row.self_pair) continue;
    saw_cross = true;
    EXPECT_DOUBLE_EQ(row.id.t_d, 70.0);  // truncated at win.start
    EXPECT_DOUBLE_EQ(row.id.t_c, 100.0);
    EXPECT_DOUBLE_EQ(row.id.t_b, 100.0);
    EXPECT_DOUBLE_EQ(row.id.t_a, 110.0);
    // Corner dt values must reflect the truncation: max dt = 110-70=40.
    for (int i = 0; i < row.corners.count; ++i) {
      EXPECT_LE(row.corners.pts[i].dt, 40.0 + 1e-9);
    }
  }
  EXPECT_TRUE(saw_cross);
}

TEST(ExtractorTest, SelfPairIdsAreSegmentPeriods) {
  PiecewiseLinear pla = MakeChain({{{0, 5}, {10, 1}}});
  ExtractorOptions options;
  options.eps = 0.2;
  options.window_s = 50.0;
  Collected out = RunExtractor(pla, options);
  ASSERT_FALSE(out.rows.empty());
  for (const PairFeatures& row : out.rows) {
    EXPECT_TRUE(row.self_pair);
    EXPECT_DOUBLE_EQ(row.id.t_d, 0.0);
    EXPECT_DOUBLE_EQ(row.id.t_c, 10.0);
    EXPECT_DOUBLE_EQ(row.id.t_b, 0.0);
    EXPECT_DOUBLE_EQ(row.id.t_a, 10.0);
  }
}

TEST(ExtractorTest, DropOnlyModeSkipsJumps) {
  PiecewiseLinear pla = MakeChain({{{0, 0}, {10, -5}}, {{10, -5}, {20, 3}}});
  ExtractorOptions options;
  options.eps = 0.1;
  options.window_s = 100.0;
  options.collect_jumps = false;
  Collected out = RunExtractor(pla, options);
  for (const PairFeatures& row : out.rows) {
    EXPECT_EQ(row.kind, SearchKind::kDrop);
  }
}

TEST(ExtractorTest, NoSelfPairsWhenDisabled) {
  PiecewiseLinear pla = MakeChain({{{0, 0}, {10, -5}}, {{10, -5}, {20, 3}}});
  ExtractorOptions options;
  options.eps = 0.1;
  options.window_s = 100.0;
  options.include_self_pairs = false;
  Collected out = RunExtractor(pla, options);
  EXPECT_EQ(out.stats.self_pairs, 0u);
  for (const PairFeatures& row : out.rows) {
    EXPECT_FALSE(row.self_pair);
  }
}

TEST(ExtractorTest, RejectsBadInput) {
  FeatureExtractor bad_eps(
      [] {
        ExtractorOptions o;
        o.eps = -1;
        return o;
      }(),
      [](const PairFeatures&) { return Status::OK(); });
  EXPECT_TRUE(bad_eps.AddSegment({{0, 0}, {1, 1}}).IsInvalidArgument());

  FeatureExtractor bad_window(
      [] {
        ExtractorOptions o;
        o.window_s = 0;
        return o;
      }(),
      [](const PairFeatures&) { return Status::OK(); });
  EXPECT_TRUE(bad_window.AddSegment({{0, 0}, {1, 1}}).IsInvalidArgument());

  FeatureExtractor extractor(ExtractorOptions{}, [](const PairFeatures&) {
    return Status::OK();
  });
  EXPECT_TRUE(extractor.AddSegment({{1, 0}, {1, 1}}).IsInvalidArgument());
  ASSERT_TRUE(extractor.AddSegment({{0, 0}, {10, 1}}).ok());
  EXPECT_TRUE(extractor.AddSegment({{5, 0}, {15, 1}}).IsInvalidArgument());
}

TEST(ExtractorTest, StatsHistogramsAreConsistent) {
  auto data = GenerateCadSeries([] {
    CadGeneratorOptions o;
    o.num_days = 4;
    return o;
  }());
  ASSERT_TRUE(data.ok());
  auto pla = SegmentSeriesWithTolerance(data->series, 0.2);
  ASSERT_TRUE(pla.ok());
  ExtractorOptions options;
  options.eps = 0.2;
  options.window_s = 4 * 3600.0;
  Collected out = RunExtractor(*pla, options);

  const ExtractorStats& stats = out.stats;
  EXPECT_EQ(stats.segments_in, pla->size());
  // Frontier histogram sums to cross pairs for each kind.
  for (int kind = 0; kind < 2; ++kind) {
    uint64_t total = 0;
    for (int k = 1; k <= 3; ++k) {
      total += stats.frontier_hist[kind][k];
    }
    EXPECT_EQ(total, stats.cross_pairs);
  }
  // Case histogram sums to cross pairs.
  uint64_t case_total = 0;
  for (int c = 1; c <= 6; ++c) {
    case_total += stats.case_hist[c];
  }
  EXPECT_EQ(case_total, stats.cross_pairs);
  // Row/corner counters match what the sink saw.
  EXPECT_EQ(stats.rows_emitted, out.rows.size());
  uint64_t corners = 0;
  for (const PairFeatures& row : out.rows) {
    corners += static_cast<uint64_t>(row.corners.count);
  }
  EXPECT_EQ(stats.corners_emitted, corners);
  // Per-pair, drop corners + jump corners from Table 2 always sum to 4.
  EXPECT_EQ(stats.frontier_hist[0][1] + 2 * stats.frontier_hist[0][2] +
                3 * stats.frontier_hist[0][3] + stats.frontier_hist[1][1] +
                2 * stats.frontier_hist[1][2] + 3 * stats.frontier_hist[1][3],
            4 * stats.cross_pairs);
}

TEST(ExtractorTest, SinkErrorPropagates) {
  FeatureExtractor extractor(ExtractorOptions{}, [](const PairFeatures&) {
    return Status::IOError("sink full");
  });
  // A falling segment always emits a self-pair drop row.
  EXPECT_TRUE(extractor.AddSegment({{0, 5}, {10, 0}}).IsIOError());
}

}  // namespace
}  // namespace segdiff
