// Tests for the query layer: predicates, seq vs index scan equivalence,
// scan statistics, and the planner.

#include <algorithm>
#include <cstdio>
#include <limits>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "test_paths.h"

#include "common/coding.h"
#include "common/random.h"
#include "query/executor.h"
#include "query/planner.h"
#include "query/predicate.h"
#include "storage/db.h"

namespace segdiff {
namespace {

class QueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = UniqueTestPath("segdiff_query");
    std::remove(path_.c_str());
    auto db = Database::Open(path_, DatabaseOptions{});
    ASSERT_TRUE(db.ok());
    db_ = std::move(db).value();
    auto schema = DoubleSchema({"dt", "dv", "tag"});
    ASSERT_TRUE(schema.ok());
    auto table = db_->CreateTable("f", *schema);
    ASSERT_TRUE(table.ok());
    table_ = *table;
    ASSERT_TRUE(table_->CreateIndex("ptdv", {"dt", "dv"}).ok());
    Rng rng(41);
    for (int i = 0; i < 4000; ++i) {
      ASSERT_TRUE(table_
                      ->InsertDoubles({rng.Uniform(0, 100),
                                       rng.Uniform(-10, 10),
                                       static_cast<double>(i)})
                      .ok());
    }
  }
  void TearDown() override {
    db_.reset();
    std::remove(path_.c_str());
  }

  std::string path_;
  std::unique_ptr<Database> db_;
  Table* table_ = nullptr;
};

TEST(PredicateTest, ConditionOps) {
  char record[16];
  EncodeDouble(record, 5.0);
  EncodeDouble(record + 8, -1.0);
  EXPECT_TRUE(EvalCondition({0, CmpOp::kLe, 5.0}, record));
  EXPECT_FALSE(EvalCondition({0, CmpOp::kLt, 5.0}, record));
  EXPECT_TRUE(EvalCondition({0, CmpOp::kGe, 5.0}, record));
  EXPECT_FALSE(EvalCondition({0, CmpOp::kGt, 5.0}, record));
  EXPECT_TRUE(EvalCondition({0, CmpOp::kEq, 5.0}, record));
  EXPECT_TRUE(EvalCondition({1, CmpOp::kLt, 0.0}, record));
}

TEST(PredicateTest, ConjunctionAndResidual) {
  char record[16];
  EncodeDouble(record, 3.0);
  EncodeDouble(record + 8, 4.0);
  Predicate predicate;
  predicate.And(0, CmpOp::kLe, 5.0).And(1, CmpOp::kGe, 4.0);
  EXPECT_TRUE(predicate.Matches(record));
  predicate.AndResidual([](const char* r) {
    return DecodeDoubleColumn(r, 0) + DecodeDoubleColumn(r, 1) > 10.0;
  });
  EXPECT_FALSE(predicate.Matches(record));
  EXPECT_TRUE(Predicate::True().Matches(record));
}

TEST_F(QueryTest, SeqScanMatchesManualFilter) {
  Predicate predicate;
  predicate.And(0, CmpOp::kLe, 30.0).And(1, CmpOp::kLe, -5.0);
  std::set<double> tags;
  ScanStats stats;
  ASSERT_TRUE(SeqScan(*table_, predicate,
                      [&](const char* record, RecordId) {
                        tags.insert(DecodeDoubleColumn(record, 2));
                        return Status::OK();
                      },
                      &stats)
                  .ok());
  // Zone maps may skip pages that cannot match, but every row is either
  // scanned or pruned — never silently dropped.
  EXPECT_EQ(stats.rows_scanned + stats.rows_pruned, 4000u);
  EXPECT_EQ(stats.pages_scanned + stats.pages_pruned,
            table_->heap_meta().page_count);
  EXPECT_EQ(stats.rows_matched, tags.size());
  // Expected selectivity ~ (30/100)*(5/20) = 7.5%; sanity band.
  EXPECT_GT(tags.size(), 150u);
  EXPECT_LT(tags.size(), 450u);
}

TEST_F(QueryTest, IndexScanEqualsSeqScan) {
  for (double T : {5.0, 30.0, 75.0, 150.0}) {
    for (double V : {-8.0, -2.0, 0.0}) {
      Predicate predicate;
      predicate.And(0, CmpOp::kLe, T).And(1, CmpOp::kLe, V);
      std::set<double> seq_tags;
      ASSERT_TRUE(SeqScan(*table_, predicate,
                          [&](const char* record, RecordId) {
                            seq_tags.insert(DecodeDoubleColumn(record, 2));
                            return Status::OK();
                          },
                          nullptr)
                      .ok());
      IndexScanSpec spec;
      auto index = table_->GetIndex("ptdv");
      ASSERT_TRUE(index.ok());
      spec.index = *index;
      spec.lower = IndexKey::LowerBound(
          {-std::numeric_limits<double>::infinity(),
           -std::numeric_limits<double>::infinity()});
      spec.key_continue = [T](const IndexKey& k) { return k.vals[0] <= T; };
      spec.key_filter = [V](const IndexKey& k) { return k.vals[1] <= V; };
      std::set<double> idx_tags;
      ScanStats stats;
      ASSERT_TRUE(IndexScan(*table_, spec, Predicate::True(),
                            [&](const char* record, RecordId) {
                              idx_tags.insert(DecodeDoubleColumn(record, 2));
                              return Status::OK();
                            },
                            &stats)
                      .ok());
      EXPECT_EQ(seq_tags, idx_tags) << "T=" << T << " V=" << V;
      EXPECT_EQ(stats.heap_fetches, idx_tags.size());
      // The scan only walks keys with dt <= T (plus one overshoot).
      EXPECT_LE(stats.index_entries_scanned, 4000u);
    }
  }
}

TEST_F(QueryTest, IndexScanStopsEarly) {
  auto index = table_->GetIndex("ptdv");
  IndexScanSpec spec;
  spec.index = *index;
  spec.lower = IndexKey::LowerBound(
      {-std::numeric_limits<double>::infinity(), 0.0});
  spec.key_continue = [](const IndexKey& k) { return k.vals[0] <= 1.0; };
  ScanStats stats;
  ASSERT_TRUE(IndexScan(*table_, spec, Predicate::True(),
                        [](const char*, RecordId) { return Status::OK(); },
                        &stats)
                  .ok());
  // ~1% of rows have dt <= 1.
  EXPECT_LT(stats.index_entries_scanned, 200u);
}

TEST_F(QueryTest, SeqScanEarlyTermination) {
  int seen = 0;
  Status status = SeqScan(*table_, Predicate::True(),
                          [&](const char*, RecordId) -> Status {
                            if (++seen >= 10) {
                              return Status::Internal("stop");
                            }
                            return Status::OK();
                          },
                          nullptr);
  EXPECT_TRUE(status.IsInternal());
  EXPECT_EQ(seen, 10);
}

TEST_F(QueryTest, IndexScanRequiresIndex) {
  IndexScanSpec spec;  // index left null
  EXPECT_TRUE(IndexScan(*table_, spec, Predicate::True(),
                        [](const char*, RecordId) { return Status::OK(); },
                        nullptr)
                  .IsInvalidArgument());
}

TEST(PlannerTest, PicksIndexForSelectiveQueries) {
  PlanChoice choice =
      ChooseAccessPath(100000, 0.0, 100.0, 2.0, /*index_available=*/true);
  EXPECT_EQ(choice.path, AccessPath::kIndexScan);
  EXPECT_NEAR(choice.estimated_selectivity, 0.02, 1e-9);
}

TEST(PlannerTest, PicksSeqScanForDenseQueries) {
  PlanChoice choice = ChooseAccessPath(100000, 0.0, 100.0, 60.0, true);
  EXPECT_EQ(choice.path, AccessPath::kSeqScan);
  EXPECT_NEAR(choice.estimated_selectivity, 0.6, 1e-9);
}

TEST(PlannerTest, NoIndexMeansSeqScan) {
  PlanChoice choice = ChooseAccessPath(100000, 0.0, 100.0, 0.5, false);
  EXPECT_EQ(choice.path, AccessPath::kSeqScan);
}

TEST(PlannerTest, ClampsAndDegenerates) {
  // Query beyond the data range: selectivity clamps to 1.
  EXPECT_DOUBLE_EQ(
      ChooseAccessPath(10, 0.0, 1.0, 5.0, true).estimated_selectivity, 1.0);
  // Below the range: clamps to 0 -> index.
  EXPECT_EQ(ChooseAccessPath(10, 5.0, 9.0, 4.0, true).path,
            AccessPath::kIndexScan);
  // Single-value column.
  EXPECT_DOUBLE_EQ(
      ChooseAccessPath(10, 3.0, 3.0, 5.0, true).estimated_selectivity, 1.0);
  EXPECT_DOUBLE_EQ(
      ChooseAccessPath(10, 3.0, 3.0, 2.0, true).estimated_selectivity, 0.0);
  // Empty table.
  EXPECT_EQ(ChooseAccessPath(0, 0.0, 1.0, 0.1, true).path,
            AccessPath::kSeqScan);
  // Custom threshold.
  PlannerOptions options;
  options.index_selectivity_threshold = 0.9;
  EXPECT_EQ(ChooseAccessPath(10, 0.0, 100.0, 60.0, true, options).path,
            AccessPath::kIndexScan);
}

TEST(PlannerTest, CostModelPrefersIndexForSparseQueries) {
  TableStatsView stats;
  stats.row_count = 1000000;
  stats.pages_total = 7000;
  stats.pages_after_pruning = 7000;  // nothing prunable
  stats.index_entry_fraction = 0.001;
  stats.heap_fetch_fraction = 0.0005;
  PlanChoice choice = ChooseAccessPath(stats, /*index_available=*/true);
  EXPECT_EQ(choice.path, AccessPath::kIndexScan);
  EXPECT_DOUBLE_EQ(choice.estimated_selectivity, 0.001);
  // Same query, but zone maps already shrink the seq scan to a handful
  // of pages: the sequential side wins outright.
  stats.pages_after_pruning = 40;
  EXPECT_EQ(ChooseAccessPath(stats, true).path, AccessPath::kSeqScan);
}

TEST(PlannerTest, CostModelPrefersSeqScanForDenseQueries) {
  TableStatsView stats;
  stats.row_count = 1000000;
  stats.pages_total = 7000;
  stats.pages_after_pruning = 6500;
  stats.index_entry_fraction = 0.5;
  stats.heap_fetch_fraction = 0.3;  // random fetches dominate
  EXPECT_EQ(ChooseAccessPath(stats, true).path, AccessPath::kSeqScan);
  EXPECT_EQ(ChooseAccessPath(stats, false).path, AccessPath::kSeqScan);
}

TEST(PlannerTest, CostModelRejectsMalformedStats) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  TableStatsView stats;
  stats.row_count = 1000;
  stats.pages_total = 10;
  stats.pages_after_pruning = 10;  // seq cost 10 > index cost ~4
  stats.index_entry_fraction = 0.001;
  stats.heap_fetch_fraction = 0.001;
  ASSERT_EQ(ChooseAccessPath(stats, true).path, AccessPath::kIndexScan);
  TableStatsView bad = stats;
  bad.index_entry_fraction = nan;
  EXPECT_EQ(ChooseAccessPath(bad, true).path, AccessPath::kSeqScan);
  bad = stats;
  bad.heap_fetch_fraction = 1.5;
  EXPECT_EQ(ChooseAccessPath(bad, true).path, AccessPath::kSeqScan);
  bad = stats;
  bad.pages_after_pruning = 11;  // more surviving pages than pages
  EXPECT_EQ(ChooseAccessPath(bad, true).path, AccessPath::kSeqScan);
  bad = stats;
  bad.row_count = 0;
  EXPECT_EQ(ChooseAccessPath(bad, true).path, AccessPath::kSeqScan);
}

TEST(PlannerTest, MalformedStatsFallBackToSeqScan) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  // Inverted range: the stats are inconsistent, so no selectivity
  // estimate is trustworthy; the safe path is the sequential scan.
  PlanChoice inverted = ChooseAccessPath(10, 9.0, 5.0, 7.0, true);
  EXPECT_EQ(inverted.path, AccessPath::kSeqScan);
  EXPECT_DOUBLE_EQ(inverted.estimated_selectivity, 1.0);
  // NaN bounds must not reach the degenerate branch, where a failed
  // comparison would report selectivity 0 and wrongly pick the index.
  EXPECT_EQ(ChooseAccessPath(10, nan, 100.0, 7.0, true).path,
            AccessPath::kSeqScan);
  EXPECT_EQ(ChooseAccessPath(10, 0.0, nan, 7.0, true).path,
            AccessPath::kSeqScan);
  EXPECT_EQ(ChooseAccessPath(10, 0.0, 100.0, nan, true).path,
            AccessPath::kSeqScan);
  EXPECT_EQ(ChooseAccessPath(10, nan, nan, nan, true).path,
            AccessPath::kSeqScan);
  // Zero-width is NOT malformed: still all-or-nothing.
  EXPECT_EQ(ChooseAccessPath(10, 3.0, 3.0, 2.0, true).path,
            AccessPath::kIndexScan);
}

}  // namespace
}  // namespace segdiff
