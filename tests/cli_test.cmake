# End-to-end smoke test of segdiff_cli, driven by ctest:
#   cmake -DCLI=<path-to-segdiff_cli> -DWORK=<scratch-dir> -P cli_test.cmake
# Exercises generate -> segment -> build -> append -> search -> stats ->
# sql -> compact -> verify and checks both exit codes and key output
# markers.

if(NOT DEFINED CLI OR NOT DEFINED WORK)
  message(FATAL_ERROR "pass -DCLI=<binary> -DWORK=<dir>")
endif()

file(MAKE_DIRECTORY ${WORK})
set(CSV ${WORK}/cli_data.csv)
set(CSV2 ${WORK}/cli_more.csv)
set(DB ${WORK}/cli_store.db)
set(SEGMENTS ${WORK}/cli_segments.csv)
set(COMPACT ${WORK}/cli_compact.db)
file(REMOVE ${CSV} ${CSV2} ${DB} ${SEGMENTS} ${COMPACT} ${WORK}/missing.db)

function(run_cli expect_substring)
  execute_process(COMMAND ${CLI} ${ARGN}
                  RESULT_VARIABLE code
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "segdiff_cli ${ARGN} failed (${code}): ${out}${err}")
  endif()
  if(NOT "${expect_substring}" STREQUAL "" AND
     NOT out MATCHES "${expect_substring}")
    message(FATAL_ERROR
            "segdiff_cli ${ARGN}: expected '${expect_substring}' in:\n${out}")
  endif()
endfunction()

run_cli("wrote [0-9]+ observations"
        generate --out ${CSV} --days 5 --seed 42)
run_cli("segments \\(r=" segment --csv ${CSV} --eps 0.2 --out ${SEGMENTS})
run_cli("built .*feature rows"
        build --csv ${CSV} --db ${DB} --eps 0.2 --smooth)
# generate emits an inclusive endpoint sample at t = days * 86400, so the
# second chunk starts a full day later to keep time stamps strictly
# increasing (the gap is legal; an equal time stamp is not).
run_cli("wrote [0-9]+ observations"
        generate --out ${CSV2} --days 3 --seed 42 --start-day 6)
run_cli("appended [0-9]+ observations .*eps=0.2"
        append --csv ${CSV2} --db ${DB} --smooth)
run_cli("periods with a drop" search --db ${DB} --t-hours 1 --v -3)
run_cli("pages: [0-9]+ scanned, [0-9]+ pruned"
        search --db ${DB} --t-hours 1 --v -3 --stats)
run_cli("kernel: " search --db ${DB} --t-hours 1 --v -3 --stats)
run_cli("periods with a jump"
        search --db ${DB} --t-hours 2 --v 2 --jump --mode index)
run_cli("feature rows" stats --db ${DB})
run_cli("count" sql --db ${DB} --query
        "SELECT COUNT(*) FROM drop2 WHERE dt1 <= 3600 AND dv1 <= -3")
run_cli("compacted" compact --db ${DB} --out ${COMPACT})
run_cli("periods with a drop" search --db ${COMPACT} --t-hours 1 --v -3)
run_cli("verify: ok" verify --db ${DB} --scrub)
run_cli("0 corrupt" verify --db ${COMPACT} --scrub)

# Failure paths exit non-zero.
execute_process(COMMAND ${CLI} search --db ${WORK}/missing.db
                RESULT_VARIABLE code OUTPUT_QUIET ERROR_QUIET)
if(code EQUAL 0)
  message(FATAL_ERROR "search on a missing db unexpectedly succeeded")
endif()
execute_process(COMMAND ${CLI} frobnicate
                RESULT_VARIABLE code OUTPUT_QUIET ERROR_QUIET)
if(code EQUAL 0)
  message(FATAL_ERROR "unknown command unexpectedly succeeded")
endif()

file(REMOVE ${CSV} ${CSV2} ${DB} ${SEGMENTS} ${COMPACT})
message(STATUS "segdiff_cli workflow OK")
