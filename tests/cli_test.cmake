# End-to-end smoke test of segdiff_cli, driven by ctest:
#   cmake -DCLI=<path-to-segdiff_cli> -DWORK=<scratch-dir> -P cli_test.cmake
# Exercises generate -> segment -> build -> append -> search -> stats ->
# sql -> compact -> verify and checks both exit codes and key output
# markers; then the transect workflow (build -> search -> stats ->
# verify -> rebalance) including the damaged-transect contract: a
# corrupt sensor store must flip stats/verify to exit 2 with the sensor
# counted in the health block, searches must isolate it with a loud
# warning, and repair must report the unsalvageable store honestly.

if(NOT DEFINED CLI OR NOT DEFINED WORK)
  message(FATAL_ERROR "pass -DCLI=<binary> -DWORK=<dir>")
endif()

file(MAKE_DIRECTORY ${WORK})
set(CSV ${WORK}/cli_data.csv)
set(CSV2 ${WORK}/cli_more.csv)
set(DB ${WORK}/cli_store.db)
set(SEGMENTS ${WORK}/cli_segments.csv)
set(COMPACT ${WORK}/cli_compact.db)
file(REMOVE ${CSV} ${CSV2} ${DB} ${SEGMENTS} ${COMPACT} ${WORK}/missing.db)

function(run_cli expect_substring)
  execute_process(COMMAND ${CLI} ${ARGN}
                  RESULT_VARIABLE code
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "segdiff_cli ${ARGN} failed (${code}): ${out}${err}")
  endif()
  if(NOT "${expect_substring}" STREQUAL "" AND
     NOT out MATCHES "${expect_substring}")
    message(FATAL_ERROR
            "segdiff_cli ${ARGN}: expected '${expect_substring}' in:\n${out}")
  endif()
endfunction()

run_cli("wrote [0-9]+ observations"
        generate --out ${CSV} --days 5 --seed 42)
run_cli("segments \\(r=" segment --csv ${CSV} --eps 0.2 --out ${SEGMENTS})
run_cli("built .*feature rows"
        build --csv ${CSV} --db ${DB} --eps 0.2 --smooth)
# generate emits an inclusive endpoint sample at t = days * 86400, so the
# second chunk starts a full day later to keep time stamps strictly
# increasing (the gap is legal; an equal time stamp is not).
run_cli("wrote [0-9]+ observations"
        generate --out ${CSV2} --days 3 --seed 42 --start-day 6)
run_cli("appended [0-9]+ observations .*eps=0.2"
        append --csv ${CSV2} --db ${DB} --smooth)
run_cli("periods with a drop" search --db ${DB} --t-hours 1 --v -3)
run_cli("pages: [0-9]+ scanned, [0-9]+ pruned"
        search --db ${DB} --t-hours 1 --v -3 --stats)
run_cli("kernel: " search --db ${DB} --t-hours 1 --v -3 --stats)
run_cli("periods with a jump"
        search --db ${DB} --t-hours 2 --v 2 --jump --mode index)
run_cli("feature rows" stats --db ${DB})
run_cli("count" sql --db ${DB} --query
        "SELECT COUNT(*) FROM drop2 WHERE dt1 <= 3600 AND dv1 <= -3")
run_cli("compacted" compact --db ${DB} --out ${COMPACT})
run_cli("periods with a drop" search --db ${COMPACT} --t-hours 1 --v -3)
run_cli("verify: ok" verify --db ${DB} --scrub)
run_cli("0 corrupt" verify --db ${COMPACT} --scrub)

# Like run_cli, but for commands whose exit code is part of the
# contract (verify/stats report damage as 2, transient trouble as 3).
function(run_cli_status expect_code expect_substring)
  execute_process(COMMAND ${CLI} ${ARGN}
                  RESULT_VARIABLE code
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT code EQUAL ${expect_code})
    message(FATAL_ERROR
            "segdiff_cli ${ARGN}: exit ${code}, expected ${expect_code}:"
            "\n${out}${err}")
  endif()
  if(NOT "${expect_substring}" STREQUAL "" AND
     NOT "${out}${err}" MATCHES "${expect_substring}")
    message(FATAL_ERROR
            "segdiff_cli ${ARGN}: expected '${expect_substring}' in:"
            "\n${out}${err}")
  endif()
endfunction()

# Transect workflow: build a small deployment, search it, rebalance it
# onto a new shard width, then damage one sensor store and walk the
# health commands' exit contract (0 healthy / 2 corrupt / 3 transient).
set(TRANSECT ${WORK}/cli_transect)
file(REMOVE_RECURSE ${TRANSECT})
run_cli("built transect .*6 sensors in 3 shards"
        transect build --dir ${TRANSECT} --sensors 6 --days 2
        --shard-sensors 2)
run_cli("periods on [0-9]+ of 6 sensors with a drop"
        transect search --dir ${TRANSECT} --t-hours 1 --v -1)
run_cli("health: *6/6 sensors scanned, 0 corrupt"
        transect stats --dir ${TRANSECT})
run_cli("transect verify: ok" transect verify --dir ${TRANSECT})
run_cli("rebalanced .*: 2 -> 3 sensors per shard \\(2 shards\\)"
        transect rebalance --dir ${TRANSECT} --shard-sensors 3)
run_cli("transect verify: ok" transect verify --dir ${TRANSECT})

# Clobber one sensor store (the rebalanced layout keeps sensor 0 in the
# first generation-3 shard). Header gone => the store cannot open: the
# health commands must say "corrupt" and exit 2, the search must isolate
# the sensor and warn, and repair must admit there is nothing to
# salvage.
set(VICTIM ${TRANSECT}/g3-shard00000/sensor0.db)
if(NOT EXISTS ${VICTIM})
  message(FATAL_ERROR "expected rebalanced store at ${VICTIM}")
endif()
file(COPY_FILE ${VICTIM} ${WORK}/cli_victim_backup.db)
file(WRITE ${VICTIM} "this is not a segdiff store")
run_cli_status(2 "1 corrupt" transect stats --dir ${TRANSECT})
run_cli_status(2 "transect verify: FAILED"
               transect verify --dir ${TRANSECT})
run_cli("WARNING: 1 sensor skipped \\(store would not open\\)"
        transect search --dir ${TRANSECT} --t-hours 1 --v -1)
run_cli_status(2 "6 sensors checked, 0 repaired, 1 failed"
               transect repair --dir ${TRANSECT})

# Restore the store from backup: the transect must scrub clean again.
file(COPY_FILE ${WORK}/cli_victim_backup.db ${VICTIM})
run_cli("transect verify: ok" transect verify --dir ${TRANSECT})
run_cli_status(0 "0 corrupt" transect stats --dir ${TRANSECT})
file(REMOVE ${WORK}/cli_victim_backup.db)
file(REMOVE_RECURSE ${TRANSECT})

# Failure paths exit non-zero.
execute_process(COMMAND ${CLI} search --db ${WORK}/missing.db
                RESULT_VARIABLE code OUTPUT_QUIET ERROR_QUIET)
if(code EQUAL 0)
  message(FATAL_ERROR "search on a missing db unexpectedly succeeded")
endif()
execute_process(COMMAND ${CLI} frobnicate
                RESULT_VARIABLE code OUTPUT_QUIET ERROR_QUIET)
if(code EQUAL 0)
  message(FATAL_ERROR "unknown command unexpectedly succeeded")
endif()

file(REMOVE ${CSV} ${CSV2} ${DB} ${SEGMENTS} ${COMPACT})
message(STATUS "segdiff_cli workflow OK")
