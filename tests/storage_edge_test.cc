// Edge cases of the storage substrate: exact page-fit record sizes,
// LRU victim order, coding round trips, and odd-arity index coverage.

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "test_paths.h"

#include "common/coding.h"
#include "common/random.h"
#include "index/bplus_tree.h"
#include "storage/buffer_pool.h"
#include "storage/heap_file.h"
#include "storage/pager.h"

namespace segdiff {
namespace {

TEST(CodingTest, RoundTrips) {
  char buf[8];
  EncodeFixed32(buf, 0xDEADBEEFu);
  EXPECT_EQ(DecodeFixed32(buf), 0xDEADBEEFu);
  EncodeFixed64(buf, 0x0123456789ABCDEFull);
  EXPECT_EQ(DecodeFixed64(buf), 0x0123456789ABCDEFull);
  EncodeFixed16(buf, 0xBEEF);
  EXPECT_EQ(DecodeFixed16(buf), 0xBEEF);
  for (double v : {-0.0, 1.5e-300, -3.7e300, 42.0}) {
    EncodeDouble(buf, v);
    EXPECT_EQ(DecodeDouble(buf), v);
  }
  // NaN round-trips bit-exactly through the byte copy.
  EncodeDouble(buf, std::numeric_limits<double>::quiet_NaN());
  EXPECT_NE(DecodeDouble(buf), DecodeDouble(buf));  // NaN != NaN
}

class StorageEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = UniqueTestPath("segdiff_storage_edge");
    std::remove(path_.c_str());
    auto pager = Pager::Open(path_, true);
    ASSERT_TRUE(pager.ok());
    pager_ = std::move(pager).value();
  }
  void TearDown() override {
    pager_.reset();
    std::remove(path_.c_str());
  }
  std::string path_;
  std::unique_ptr<Pager> pager_;
};

TEST_F(StorageEdgeTest, HeapRecordExactlyFillsPage) {
  BufferPool pool(pager_.get(), 16);
  // Largest record that fits: one record per page (the checksum trailer
  // comes out of the usable capacity).
  const size_t record_bytes = kPageCapacity - HeapFile::kHeaderBytes;
  auto heap = HeapFile::Create(&pool, record_bytes);
  ASSERT_TRUE(heap.ok());
  EXPECT_EQ(heap->records_per_page(), 1u);
  std::vector<char> record(record_bytes, 'x');
  for (int i = 0; i < 10; ++i) {
    record[0] = static_cast<char>('a' + i);
    ASSERT_TRUE(heap->Append(record.data()).ok());
  }
  EXPECT_EQ(heap->meta().page_count, 10u);
  int seen = 0;
  ASSERT_TRUE(heap->Scan([&](const char* data, RecordId, bool* keep) {
                    *keep = true;
                    EXPECT_EQ(data[0], static_cast<char>('a' + seen));
                    EXPECT_EQ(data[record_bytes - 1], 'x');
                    ++seen;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(seen, 10);
}

TEST_F(StorageEdgeTest, LruEvictsLeastRecentlyUsed) {
  BufferPool pool(pager_.get(), 3);
  PageId pages[4];
  for (int i = 0; i < 3; ++i) {
    auto handle = pool.AllocatePinned();
    ASSERT_TRUE(handle.ok());
    pages[i] = handle->page_id();
  }
  // Touch page 0 so page 1 becomes the LRU victim.
  { auto h = pool.Fetch(pages[0]); ASSERT_TRUE(h.ok()); }
  {
    auto handle = pool.AllocatePinned();  // forces one eviction
    ASSERT_TRUE(handle.ok());
    pages[3] = handle->page_id();
  }
  const uint64_t misses_before = pool.stats().misses;
  { auto h = pool.Fetch(pages[0]); ASSERT_TRUE(h.ok()); }  // still cached
  { auto h = pool.Fetch(pages[2]); ASSERT_TRUE(h.ok()); }  // still cached
  EXPECT_EQ(pool.stats().misses, misses_before);
  { auto h = pool.Fetch(pages[1]); ASSERT_TRUE(h.ok()); }  // was evicted
  EXPECT_EQ(pool.stats().misses, misses_before + 1);
}

TEST_F(StorageEdgeTest, Arity3IndexRangeScan) {
  BufferPool pool(pager_.get(), 256);
  auto tree = BPlusTree::Create(&pool, 3);
  ASSERT_TRUE(tree.ok());
  Rng rng(5);
  int in_range = 0;
  for (int i = 0; i < 5000; ++i) {
    IndexKey key;
    key.vals[0] = rng.UniformInt(0, 9);
    key.vals[1] = rng.Uniform(-1, 1);
    key.vals[2] = rng.Uniform(-1, 1);
    key.rid = static_cast<uint64_t>(i);
    ASSERT_TRUE(tree->Insert(key).ok());
    if (key.vals[0] >= 3 && key.vals[0] <= 5) ++in_range;
  }
  ASSERT_TRUE(tree->CheckInvariants().ok());
  auto it = tree->Seek(IndexKey::LowerBound(
      {3.0, -std::numeric_limits<double>::infinity(),
       -std::numeric_limits<double>::infinity()}));
  ASSERT_TRUE(it.ok());
  int scanned = 0;
  while (it->Valid() && it->key().vals[0] <= 5.0) {
    ++scanned;
    ASSERT_TRUE(it->Next().ok());
  }
  EXPECT_EQ(scanned, in_range);
}

TEST_F(StorageEdgeTest, PagerHeaderSurvivesWithoutExplicitSync) {
  // The destructor persists the page count best-effort.
  {
    BufferPool pool(pager_.get(), 8);
    for (int i = 0; i < 5; ++i) {
      auto handle = pool.AllocatePinned();
      ASSERT_TRUE(handle.ok());
    }
  }
  const uint64_t pages = pager_->page_count();
  pager_.reset();  // destructor writes the header
  auto reopened = Pager::Open(path_, false);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->page_count(), pages);
}

}  // namespace
}  // namespace segdiff
