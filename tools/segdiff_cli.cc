// segdiff_cli: the exploratory command-line tool the paper's biologists
// asked for. Generate or import sensor data, build a SegDiff store, run
// drop/jump searches with different thresholds, inspect store contents
// with SQL, and print storage statistics.
//
// Usage:
//   segdiff_cli generate --out data.csv [--days 30] [--sensor 0]
//                        [--seed 20080325] [--start-day 0] [--smooth]
//   segdiff_cli build    --csv data.csv --db store.db [--eps 0.2]
//                        [--window-hours 8] [--no-index] [--smooth]
//                        [--no-wal] [--wal-window-ms N]
//                        (--no-wal reverts to checkpoint-only
//                         durability; --wal-window-ms sets the
//                         group-commit window — 0 fsyncs every append,
//                         default 1 ms or SEGDIFF_WAL_GROUP_COMMIT_MS)
//   segdiff_cli append   --csv more.csv --db store.db [--smooth]
//                        [--no-wal] [--wal-window-ms N]
//                        (resume ingest into an existing store; picks up
//                         the persisted open segment and build options)
//   segdiff_cli search   --db store.db [--t-hours 1] [--v -3] [--jump]
//                        [--mode seq|index|auto] [--limit 20] [--stats]
//                        [--timeout-ms N] [--max-mem BYTES] [--threads N]
//                        (--timeout-ms bounds the search: past the
//                         deadline it fails with DEADLINE_EXCEEDED;
//                         --max-mem caps result memory — a breached
//                         budget returns the partial results marked
//                         TRUNCATED; --stats additionally prints executor
//                         counters — pages scanned/pruned by the zone
//                         maps, rows scanned/pruned, the active scan
//                         kernel — and the store's governance counters)
//   segdiff_cli stats    --db store.db
//                        (includes the write-ahead log: size, last and
//                         durable LSNs, the applied (checkpoint) LSN,
//                         how many records the last open replayed, and
//                         how many torn-tail bytes it trimmed; plus a
//                         health block — degraded mode, quarantined
//                         pages, buffer-pool read failures)
//   segdiff_cli sql      --db store.db --query "SELECT ..."
//                        [--timeout-ms N]  (statement timeout; the REPL
//                         also accepts SET statement_timeout_ms = N)
//   segdiff_cli segment  --csv data.csv --eps 0.2 --out segments.csv
//                        (export the piecewise linear approximation,
//                         e.g. for plotting the paper's Figure 1 (b))
//   segdiff_cli compact  --db store.db --out compacted.db
//   segdiff_cli repair   --db store.db --out repaired.db
//                        (salvages everything still readable into a
//                         fresh store: corrupt pages and columnar
//                         segments are skipped and counted, every
//                         surviving row is copied. The damaged source
//                         is never written to)
//   segdiff_cli transect build  --dir transect/ --sensors N [--days 7]
//                        [--seed 20080325] [--eps 0.2] [--window-hours 8]
//                        [--shard-sensors K] [--max-open M] [--threads T]
//                        (generates one CAD series per sensor and ingests
//                         them concurrently into a sharded transect:
//                         sensor-id ranges of K sensors per shard
//                         directory (default 256 or
//                         SEGDIFF_SENSORS_PER_SHARD), at most M stores
//                         open at once (default unbounded or
//                         SEGDIFF_MAX_OPEN_STORES))
//   segdiff_cli transect search --dir transect/ [--t-hours 1] [--v -3]
//                        [--jump] [--threads N] [--timeout-ms N]
//                        [--max-open M] [--limit 20] [--stats]
//                        (scatter-gather across all sensors: --threads is
//                         the fan-out width over shards; one shared
//                         deadline governs the whole sweep; --stats adds
//                         executor counters and store-cache behaviour)
//   segdiff_cli transect stats  --dir transect/ [--max-open M]
//                        (shard catalog layout, aggregate sizes, the
//                         open-store cache's counters, and a health
//                         block from a scrub sweep. Exit code follows
//                         verify's contract: 0 healthy, 2 corrupt
//                         sensors, 3 transient I/O)
//   segdiff_cli transect verify --dir transect/ [--max-open M]
//                        [--rate-mbps N]
//                        (walks every sensor store under the LRU cap —
//                         open, health flags, full page scrub — and
//                         prints the aggregate report; --rate-mbps (or
//                         SEGDIFF_SCRUB_RATE_BYTES_PER_SEC) throttles
//                         the sweep so it does not starve serving
//                         searches. Exit: 0 clean, 2 corrupt sensors,
//                         3 sensors unavailable on transient I/O)
//   segdiff_cli transect repair --dir transect/ [--max-open M]
//                        [--rate-mbps N]
//                        (verify + in-place salvage: each damaged store
//                         is repaired into a fresh file that atomically
//                         replaces the original; healthy sensors are
//                         untouched. Exit: 0 all repaired or healthy,
//                         2 some repairs failed)
//   segdiff_cli transect rebalance --dir transect/ --shard-sensors K
//                        (migrates the transect onto K sensors per
//                         shard, crash-safely: a MIGRATION intent
//                         manifest plus per-sensor compacting copies,
//                         committed by an atomic CATALOG swap — a crash
//                         at any point is rolled forward or back on the
//                         next open)
//   segdiff_cli verify   --db store.db [--scrub]
//                        (logical check: every table's scanned row count
//                         matches its heap metadata; --scrub additionally
//                         verifies the checksum of every page in the
//                         file, mapping any damage to exact page numbers,
//                         and walks the write-ahead log frame by frame —
//                         a torn tail is reported but healthy (recovery
//                         trims it). Exit code: 0 healthy, 2 corruption
//                         found, 3 transient I/O errors kept the check
//                         from finishing — retry rather than repair)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "query/scan_kernel.h"
#include "segdiff/segdiff_index.h"
#include "segdiff/transect_index.h"
#include "segment/sliding_window.h"
#include "sql/engine.h"
#include "storage/db.h"
#include "storage/wal.h"
#include "ts/generator.h"
#include "ts/io.h"
#include "ts/smoothing.h"

namespace segdiff {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: segdiff_cli "
               "<generate|build|append|search|stats|sql|segment|compact|"
               "repair|verify|transect> "
               "[--flag value ...]\n"
               "run with a command and no flags to see its options in the "
               "header of tools/segdiff_cli.cc\n");
  return 2;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

/// Minimal --flag value parser ("--jump"-style booleans have no value).
class Flags {
 public:
  static constexpr const char* kBooleanFlags[] = {
      "--jump", "--no-index", "--no-wal", "--smooth", "--scrub", "--stats"};

  Flags(int argc, char** argv, int start) {
    for (int i = start; i < argc; ++i) {
      std::string key = argv[i];
      bool boolean = false;
      for (const char* name : kBooleanFlags) {
        boolean |= key == name;
      }
      if (boolean) {
        values_[key] = "1";
      } else if (i + 1 < argc) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "";
      }
    }
  }

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }
  int GetInt(const std::string& key, int fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atoi(it->second.c_str());
  }
  uint64_t GetUint64(const std::string& key, uint64_t fallback) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    return static_cast<uint64_t>(std::strtoull(it->second.c_str(),
                                               nullptr, 10));
  }
  bool Has(const std::string& key) const { return values_.count(key) != 0; }

 private:
  std::map<std::string, std::string> values_;
};

Result<Series> Smooth(const Series& series) {
  SEGDIFF_ASSIGN_OR_RETURN(Series filtered,
                           HampelFilter(series, HampelOptions{}));
  LoessOptions loess;
  loess.bandwidth_s = 1500.0;
  loess.robust_iterations = 1;
  return RobustLoess(filtered, loess);
}

int CmdGenerate(const Flags& flags) {
  const std::string out = flags.Get("--out", "");
  if (out.empty()) {
    std::fprintf(stderr, "generate: --out is required\n");
    return 2;
  }
  CadGeneratorOptions gen;
  gen.num_days = flags.GetInt("--days", 30);
  gen.sensor_index = flags.GetInt("--sensor", 0);
  gen.seed = static_cast<uint64_t>(flags.GetInt("--seed", 20080325));
  // Later chunks of the same logical deployment start at a later day.
  gen.start_time_s = flags.GetDouble("--start-day", 0.0) * 86400.0;
  auto data = GenerateCadSeries(gen);
  if (!data.ok()) return Fail(data.status());
  Series series = std::move(data->series);
  if (flags.Has("--smooth")) {
    auto smoothed = Smooth(series);
    if (!smoothed.ok()) return Fail(smoothed.status());
    series = std::move(smoothed).value();
  }
  if (Status status = WriteSeriesCsv(series, out); !status.ok()) {
    return Fail(status);
  }
  std::printf("wrote %zu observations (%d days, sensor %d, %zu injected "
              "CAD events) to %s\n",
              series.size(), gen.num_days, gen.sensor_index,
              data->drops.size(), out.c_str());
  return 0;
}

int CmdBuild(const Flags& flags) {
  const std::string csv = flags.Get("--csv", "");
  const std::string db = flags.Get("--db", "");
  if (csv.empty() || db.empty()) {
    std::fprintf(stderr, "build: --csv and --db are required\n");
    return 2;
  }
  auto series = ReadSeriesCsv(csv);
  if (!series.ok()) return Fail(series.status());
  Series input = std::move(series).value();
  if (flags.Has("--smooth")) {
    auto smoothed = Smooth(input);
    if (!smoothed.ok()) return Fail(smoothed.status());
    input = std::move(smoothed).value();
  }
  std::remove(db.c_str());
  SegDiffOptions options;
  options.eps = flags.GetDouble("--eps", 0.2);
  options.window_s = flags.GetDouble("--window-hours", 8.0) * 3600.0;
  options.build_indexes = !flags.Has("--no-index");
  options.wal = !flags.Has("--no-wal");
  options.wal_group_commit_ms =
      static_cast<int64_t>(flags.GetInt("--wal-window-ms", -1));
  auto store = SegDiffIndex::Open(db, options);
  if (!store.ok()) return Fail(store.status());
  if (Status status = (*store)->IngestSeries(input); !status.ok()) {
    return Fail(status);
  }
  if (Status status = (*store)->Checkpoint(); !status.ok()) {
    return Fail(status);
  }
  const SegDiffSizes sizes = (*store)->GetSizes();
  std::printf("built %s: %zu observations -> %llu segments (r=%.2f), "
              "%llu feature rows, %.1f KiB features + %.1f KiB indexes\n",
              db.c_str(), input.size(),
              static_cast<unsigned long long>((*store)->num_segments()),
              static_cast<double>(input.size()) /
                  static_cast<double>((*store)->num_segments()),
              static_cast<unsigned long long>(sizes.feature_rows),
              sizes.feature_bytes / 1024.0, sizes.index_bytes / 1024.0);
  return 0;
}

int CmdAppend(const Flags& flags) {
  const std::string csv = flags.Get("--csv", "");
  const std::string db = flags.Get("--db", "");
  if (csv.empty() || db.empty()) {
    std::fprintf(stderr, "append: --csv and --db are required\n");
    return 2;
  }
  auto series = ReadSeriesCsv(csv);
  if (!series.ok()) return Fail(series.status());
  Series input = std::move(series).value();
  if (flags.Has("--smooth")) {
    auto smoothed = Smooth(input);
    if (!smoothed.ok()) return Fail(smoothed.status());
    input = std::move(smoothed).value();
  }
  SegDiffOptions options;  // eps/window/index are adopted from the store
  options.create_if_missing = false;
  options.wal = !flags.Has("--no-wal");
  options.wal_group_commit_ms =
      static_cast<int64_t>(flags.GetInt("--wal-window-ms", -1));
  auto store = SegDiffIndex::Open(db, options);
  if (!store.ok()) return Fail(store.status());
  const uint64_t before = (*store)->num_observations();
  for (const Sample& sample : input) {
    if (Status status = (*store)->AppendObservation(sample.t, sample.v);
        !status.ok()) {
      return Fail(status);
    }
  }
  if (Status status = (*store)->FlushPending(); !status.ok()) {
    return Fail(status);
  }
  if (Status status = (*store)->Checkpoint(); !status.ok()) {
    return Fail(status);
  }
  const SegDiffSizes sizes = (*store)->GetSizes();
  std::printf("appended %zu observations to %s (%llu total, eps=%g): "
              "%llu segments, %llu feature rows\n",
              input.size(), db.c_str(),
              static_cast<unsigned long long>(before + input.size()),
              (*store)->options().eps,
              static_cast<unsigned long long>((*store)->num_segments()),
              static_cast<unsigned long long>(sizes.feature_rows));
  return 0;
}

int CmdSearch(const Flags& flags) {
  const std::string db = flags.Get("--db", "");
  if (db.empty()) {
    std::fprintf(stderr, "search: --db is required\n");
    return 2;
  }
  const double T = flags.GetDouble("--t-hours", 1.0) * 3600.0;
  const bool jump = flags.Has("--jump");
  const double V = flags.GetDouble("--v", jump ? 3.0 : -3.0);
  SegDiffOptions options;  // thresholds are query-time; defaults suffice
  options.create_if_missing = false;
  auto store = SegDiffIndex::Open(db, options);
  if (!store.ok()) return Fail(store.status());

  SearchOptions search;
  const std::string mode = flags.Get("--mode", "seq");
  if (mode == "index") {
    search.mode = QueryMode::kIndexScan;
  } else if (mode == "auto") {
    search.mode = QueryMode::kAuto;
  } else {
    search.mode = QueryMode::kSeqScan;
  }
  search.deadline_ms = flags.GetUint64("--timeout-ms", 0);
  search.max_result_bytes = flags.GetUint64("--max-mem", 0);
  search.num_threads = static_cast<size_t>(flags.GetInt("--threads", 0));
  SearchStats stats;
  auto results = jump ? (*store)->SearchJumps(T, V, search, &stats)
                      : (*store)->SearchDrops(T, V, search, &stats);
  if (!results.ok()) return Fail(results.status());

  std::printf("%zu periods with a %s of %s%.2f within %.2f h "
              "(%.2f ms, %llu range queries, mode=%s)%s\n",
              results->size(), jump ? "jump" : "drop", jump ? ">= " : "<= ",
              V, T / 3600.0, stats.seconds * 1e3,
              static_cast<unsigned long long>(stats.queries_issued),
              mode.c_str(), stats.truncated ? " TRUNCATED" : "");
  if (stats.partial) {
    std::printf("  WARNING: partial result — %llu quarantined page%s "
                "skipped (>= %llu rows unreadable); run `verify --scrub` "
                "and `repair`\n",
                static_cast<unsigned long long>(stats.scan.pages_quarantined),
                stats.scan.pages_quarantined == 1 ? "" : "s",
                static_cast<unsigned long long>(stats.scan.rows_quarantined));
  }
  if (flags.Has("--stats")) {
    const ScanStats& scan = stats.scan;
    std::printf("  pages: %llu scanned, %llu pruned (zone maps)\n",
                static_cast<unsigned long long>(scan.pages_scanned),
                static_cast<unsigned long long>(scan.pages_pruned));
    std::printf("  rows:  %llu scanned, %llu pruned, %llu matched, "
                "%llu index entries\n",
                static_cast<unsigned long long>(scan.rows_scanned),
                static_cast<unsigned long long>(scan.rows_pruned),
                static_cast<unsigned long long>(scan.rows_matched),
                static_cast<unsigned long long>(scan.index_entries_scanned));
    std::printf("  kernel: %s\n", ActiveScanKernelName());
    const GovernanceCounters gov =
        (*store)->admission_controller()->counters();
    std::printf("  governance: %llu admitted (%llu queued), %llu rejected, "
                "%llu cancelled, %llu deadline-exceeded, %llu truncated\n",
                static_cast<unsigned long long>(gov.admitted),
                static_cast<unsigned long long>(gov.queued),
                static_cast<unsigned long long>(gov.rejected),
                static_cast<unsigned long long>(gov.cancelled),
                static_cast<unsigned long long>(gov.deadline_exceeded),
                static_cast<unsigned long long>(gov.truncated));
    std::printf("  result bytes peak: %llu, admission wait: %.2f ms\n",
                static_cast<unsigned long long>(stats.result_bytes_peak),
                stats.admission_wait_ms);
  }
  const int limit = flags.GetInt("--limit", 20);
  int shown = 0;
  for (const PairId& pair : *results) {
    if (++shown > limit) {
      std::printf("  ... (%zu more; raise --limit)\n",
                  results->size() - static_cast<size_t>(limit));
      break;
    }
    std::printf("  starts in [%.0f, %.0f]  ends in [%.0f, %.0f]\n",
                pair.t_d, pair.t_c, pair.t_b, pair.t_a);
  }
  return 0;
}

int CmdStats(const Flags& flags) {
  const std::string db = flags.Get("--db", "");
  if (db.empty()) {
    std::fprintf(stderr, "stats: --db is required\n");
    return 2;
  }
  SegDiffOptions options;
  options.create_if_missing = false;
  auto store = SegDiffIndex::Open(db, options);
  if (!store.ok()) return Fail(store.status());
  const SegDiffSizes sizes = (*store)->GetSizes();
  std::printf("store: %s\n", db.c_str());
  std::printf("  segments:      %llu\n",
              static_cast<unsigned long long>((*store)->num_segments()));
  std::printf("  feature rows:  %llu\n",
              static_cast<unsigned long long>(sizes.feature_rows));
  std::printf("  feature bytes: %llu\n",
              static_cast<unsigned long long>(sizes.feature_bytes));
  std::printf("  index bytes:   %llu\n",
              static_cast<unsigned long long>(sizes.index_bytes));
  std::printf("  segment dir:   %llu bytes\n",
              static_cast<unsigned long long>(sizes.segment_dir_bytes));
  std::printf("  file bytes:    %llu\n",
              static_cast<unsigned long long>(sizes.file_bytes));
  const WalInfo wal = (*store)->db()->GetWalInfo();
  if (wal.enabled) {
    std::printf("  wal:           %llu bytes, last lsn %llu, durable lsn "
                "%llu, group-commit window %lld ms\n",
                static_cast<unsigned long long>(wal.size_bytes),
                static_cast<unsigned long long>(wal.last_lsn),
                static_cast<unsigned long long>(wal.durable_lsn),
                static_cast<long long>(wal.group_commit_ms));
    std::printf("  checkpoint:    applied lsn %llu; last open replayed "
                "%llu record%s, trimmed %llu torn-tail byte%s\n",
                static_cast<unsigned long long>(wal.applied_lsn),
                static_cast<unsigned long long>(wal.recovered_records),
                wal.recovered_records == 1 ? "" : "s",
                static_cast<unsigned long long>(wal.trimmed_tail_bytes),
                wal.trimmed_tail_bytes == 1 ? "" : "s");
  } else {
    std::printf("  wal:           disabled (checkpoint-only durability); "
                "applied lsn %llu\n",
                static_cast<unsigned long long>(wal.applied_lsn));
  }
  const StoreHealth health = (*store)->db()->GetHealth();
  if (health.degraded) {
    std::printf("  health:        DEGRADED (read-only): %s\n",
                health.degraded_reason.c_str());
  } else {
    std::printf("  health:        ok\n");
  }
  if (health.quarantined_pages > 0 || health.pool_read_failures > 0) {
    std::printf("  quarantine:    %llu page%s unreadable (%llu pool read "
                "failure%s); searches skip them and flag results partial — "
                "run `repair` to salvage into a fresh store\n",
                static_cast<unsigned long long>(health.quarantined_pages),
                health.quarantined_pages == 1 ? "" : "s",
                static_cast<unsigned long long>(health.pool_read_failures),
                health.pool_read_failures == 1 ? "" : "s");
  }
  // Per-table page-format breakdown: compacted stores keep their
  // feature rows in compressed columnar segments; uncompacted (or
  // still-ingesting) tables are pure row format.
  std::printf("  tables (row pages / columnar segments):\n");
  for (const auto& table : (*store)->db()->tables()) {
    const Table::FormatBreakdown b = table->GetFormatBreakdown();
    std::printf("    %-14s row: %llu pages, %llu rows", table->name().c_str(),
                static_cast<unsigned long long>(b.row_pages),
                static_cast<unsigned long long>(b.row_rows));
    if (b.columnar_segments > 0) {
      const double ratio =
          b.columnar_encoded_bytes > 0
              ? static_cast<double>(b.columnar_logical_bytes) /
                    static_cast<double>(b.columnar_encoded_bytes)
              : 0.0;
      std::printf(
          "; columnar: %llu segments, %llu pages, %llu rows, "
          "%llu -> %llu bytes (%.2fx)",
          static_cast<unsigned long long>(b.columnar_segments),
          static_cast<unsigned long long>(b.columnar_pages),
          static_cast<unsigned long long>(b.columnar_rows),
          static_cast<unsigned long long>(b.columnar_logical_bytes),
          static_cast<unsigned long long>(b.columnar_encoded_bytes), ratio);
    }
    std::printf("\n");
  }
  return 0;
}

int CmdSql(const Flags& flags) {
  const std::string db = flags.Get("--db", "");
  if (db.empty()) {
    std::fprintf(stderr, "sql: --db is required\n");
    return 2;
  }
  DatabaseOptions options;
  options.create_if_missing = false;
  auto database = Database::Open(db, options);
  if (!database.ok()) return Fail(database.status());
  sql::Engine engine(database->get());
  engine.set_statement_timeout_ms(flags.GetUint64("--timeout-ms", 0));

  const std::string query = flags.Get("--query", "");
  if (!query.empty()) {
    auto result = engine.Execute(query);
    if (!result.ok()) return Fail(result.status());
    std::fputs(sql::FormatResult(*result).c_str(), stdout);
  } else {
    // REPL: one statement per line; errors don't end the session.
    std::fprintf(stderr, "segdiff sql> (one statement per line; ctrl-d or "
                         "'quit' to exit)\n");
    char buf[4096];
    while (std::fgets(buf, sizeof(buf), stdin) != nullptr) {
      std::string line = buf;
      while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
        line.pop_back();
      }
      if (line.empty()) continue;
      if (line == "quit" || line == "exit") break;
      auto result = engine.Execute(line);
      if (!result.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     result.status().ToString().c_str());
        continue;
      }
      std::fputs(sql::FormatResult(*result).c_str(), stdout);
    }
  }
  if (Status status = (*database)->Checkpoint(); !status.ok()) {
    return Fail(status);
  }
  return 0;
}

int CmdSegment(const Flags& flags) {
  const std::string csv = flags.Get("--csv", "");
  const std::string out = flags.Get("--out", "");
  if (csv.empty() || out.empty()) {
    std::fprintf(stderr, "segment: --csv and --out are required\n");
    return 2;
  }
  auto series = ReadSeriesCsv(csv);
  if (!series.ok()) return Fail(series.status());
  Series input = std::move(series).value();
  if (flags.Has("--smooth")) {
    auto smoothed = Smooth(input);
    if (!smoothed.ok()) return Fail(smoothed.status());
    input = std::move(smoothed).value();
  }
  const double eps = flags.GetDouble("--eps", 0.2);
  auto pla = SegmentSeriesWithTolerance(input, eps);
  if (!pla.ok()) return Fail(pla.status());
  FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    return Fail(Status::IOError("cannot open " + out));
  }
  std::fprintf(f, "# t_start,v_start,t_end,v_end (eps=%g)\n", eps);
  for (const DataSegment& segment : pla->segments()) {
    std::fprintf(f, "%.17g,%.17g,%.17g,%.17g\n", segment.start.t,
                 segment.start.v, segment.end.t, segment.end.v);
  }
  std::fclose(f);
  std::printf("segmented %zu observations into %zu segments (r=%.2f) -> %s\n",
              input.size(), pla->size(),
              pla->CompressionRate(input.size()), out.c_str());
  return 0;
}

int CmdCompact(const Flags& flags) {
  const std::string db = flags.Get("--db", "");
  const std::string out = flags.Get("--out", "");
  if (db.empty() || out.empty()) {
    std::fprintf(stderr, "compact: --db and --out are required\n");
    return 2;
  }
  std::remove(out.c_str());
  DatabaseOptions options;
  options.create_if_missing = false;
  auto database = Database::Open(db, options);
  if (!database.ok()) return Fail(database.status());
  if (Status status = (*database)->CompactInto(out); !status.ok()) {
    return Fail(status);
  }
  auto compacted = Database::Open(out, DatabaseOptions{});
  if (!compacted.ok()) return Fail(compacted.status());
  std::printf("compacted %llu -> %llu bytes (%s -> %s)\n",
              static_cast<unsigned long long>(
                  (*database)->pager()->FileSizeBytes()),
              static_cast<unsigned long long>(
                  (*compacted)->pager()->FileSizeBytes()),
              db.c_str(), out.c_str());
  return 0;
}

int CmdRepair(const Flags& flags) {
  const std::string db = flags.Get("--db", "");
  const std::string out = flags.Get("--out", "");
  if (db.empty() || out.empty()) {
    std::fprintf(stderr, "repair: --db and --out are required\n");
    return 2;
  }
  std::remove(out.c_str());
  std::remove((out + ".wal").c_str());

  RepairReport report;
  Status repaired;
  // Prefer the engine open: it replays the WAL tail and drains the
  // recovered observation backlog, so acknowledged-but-unapplied writes
  // survive into the repaired copy. Abandon the source afterwards —
  // repair must never write to the damaged store.
  SegDiffOptions engine_options;
  engine_options.create_if_missing = false;
  if (auto store = SegDiffIndex::Open(db, engine_options); store.ok()) {
    repaired = (*store)->Repair(out, &report);
    (*store)->db()->Abandon();
  } else {
    // The engine state is unreadable; salvage at the database layer.
    // If even WAL replay fails, retry without it — the data file alone
    // may still hold most of the rows.
    DatabaseOptions raw;
    raw.create_if_missing = false;
    auto database = Database::Open(db, raw);
    if (!database.ok()) {
      raw.replay_wal = false;
      database = Database::Open(db, raw);
    }
    if (!database.ok()) return Fail(database.status());
    (*database)->Abandon();
    repaired = (*database)->Repair(out, &report);
  }
  if (!repaired.ok()) return Fail(repaired);
  std::printf("repaired %s -> %s\n", db.c_str(), out.c_str());
  std::printf("  %llu table%s, %llu row%s salvaged\n",
              static_cast<unsigned long long>(report.tables),
              report.tables == 1 ? "" : "s",
              static_cast<unsigned long long>(report.rows_salvaged),
              report.rows_salvaged == 1 ? "" : "s");
  if (report.pages_skipped > 0 || report.segments_skipped > 0 ||
      report.rows_lost > 0) {
    std::printf("  skipped %llu corrupt page%s and %llu corrupt columnar "
                "segment%s (>= %llu row%s lost)\n",
                static_cast<unsigned long long>(report.pages_skipped),
                report.pages_skipped == 1 ? "" : "s",
                static_cast<unsigned long long>(report.segments_skipped),
                report.segments_skipped == 1 ? "" : "s",
                static_cast<unsigned long long>(report.rows_lost),
                report.rows_lost == 1 ? "" : "s");
  } else {
    std::printf("  nothing was lost\n");
  }
  return 0;
}

/// Verify's exit contract: 2 = the store is damaged (corruption), 3 =
/// transient I/O kept the check from finishing (retry, don't repair),
/// 1 = any other failure.
int VerifyExitCode(const Status& status) {
  if (status.IsTransient()) return 3;
  if (status.IsCorruption()) return 2;
  return 1;
}

/// Deployment-level knobs shared by the transect subcommands.
TransectOptions TransectFlags(const Flags& flags) {
  TransectOptions options;
  options.store.eps = flags.GetDouble("--eps", 0.2);
  options.store.window_s = flags.GetDouble("--window-hours", 8.0) * 3600.0;
  options.store.build_indexes = !flags.Has("--no-index");
  options.store.wal = !flags.Has("--no-wal");
  // Every open store owns its own buffer pool; transects keep them
  // small so a wide-open cache stays in memory budget.
  options.store.buffer_pool_pages = 128;
  options.sensors_per_shard = flags.GetInt("--shard-sensors", 0);
  options.max_open_stores =
      static_cast<size_t>(flags.GetInt("--max-open", 0));
  return options;
}

void PrintCacheStats(const TransectIndex& transect) {
  const StoreLruStats cache = transect.store_stats();
  std::printf("  store cache: %zu open (peak %zu), %llu opens, "
              "%llu evictions, %llu hits\n",
              cache.open, cache.peak_open,
              static_cast<unsigned long long>(cache.opens),
              static_cast<unsigned long long>(cache.evictions),
              static_cast<unsigned long long>(cache.hits));
  if (cache.eviction_failures > 0) {
    std::printf("  WARNING: %llu eviction checkpoint failure%s (surfaced "
                "on the affected sensors' next use)\n",
                static_cast<unsigned long long>(cache.eviction_failures),
                cache.eviction_failures == 1 ? "" : "s");
  }
}

/// One line per recorded sweep issue (both sweeps cap their lists; the
/// counters above them stay exact).
void PrintSweepIssues(const std::vector<TransectSensorIssue>& issues) {
  for (const TransectSensorIssue& issue : issues) {
    std::printf("  sensor %-5d %s%s\n", issue.sensor,
                issue.corrupt ? "CORRUPT: "
                              : (issue.transient ? "UNAVAILABLE: " : ""),
                issue.message.c_str());
  }
}

int CmdTransectBuild(const Flags& flags) {
  const std::string dir = flags.Get("--dir", "");
  const int sensors = flags.GetInt("--sensors", 0);
  if (dir.empty() || sensors <= 0) {
    std::fprintf(stderr,
                 "transect build: --dir and --sensors are required\n");
    return 2;
  }
  auto transect = TransectIndex::Open(dir, sensors, TransectFlags(flags));
  if (!transect.ok()) return Fail(transect.status());

  CadGeneratorOptions gen;
  gen.num_days = flags.GetInt("--days", 7);
  gen.seed = static_cast<uint64_t>(flags.GetInt("--seed", 20080325));
  auto data = GenerateCadTransect(gen, sensors);
  if (!data.ok()) return Fail(data.status());
  std::vector<Series> all_series;
  uint64_t observations = 0;
  for (auto& sensor : *data) {
    observations += sensor.series.size();
    all_series.push_back(std::move(sensor.series));
  }
  const size_t threads =
      static_cast<size_t>(flags.GetInt("--threads", 4));
  if (Status status = (*transect)->IngestAllSensors(all_series, threads);
      !status.ok()) {
    return Fail(status);
  }
  if (Status status = (*transect)->Checkpoint(); !status.ok()) {
    return Fail(status);
  }
  auto sizes = (*transect)->GetSizes();
  if (!sizes.ok()) return Fail(sizes.status());
  std::printf("built transect %s: %d sensors in %zu shards, %llu "
              "observations, %llu feature rows, %.1f MiB on disk\n",
              dir.c_str(), sensors, (*transect)->catalog().shard_count(),
              static_cast<unsigned long long>(observations),
              static_cast<unsigned long long>(sizes->feature_rows),
              sizes->file_bytes / (1024.0 * 1024.0));
  PrintCacheStats(**transect);
  return 0;
}

int CmdTransectSearch(const Flags& flags) {
  const std::string dir = flags.Get("--dir", "");
  if (dir.empty()) {
    std::fprintf(stderr, "transect search: --dir is required\n");
    return 2;
  }
  TransectOptions options = TransectFlags(flags);
  options.store.create_if_missing = false;
  // 0 sensors: adopt the catalog's persisted count.
  auto transect = TransectIndex::Open(dir, flags.GetInt("--sensors", 0),
                                      options);
  if (!transect.ok()) return Fail(transect.status());

  const double T = flags.GetDouble("--t-hours", 1.0) * 3600.0;
  const bool jump = flags.Has("--jump");
  const double V = flags.GetDouble("--v", jump ? 3.0 : -3.0);
  SearchOptions search;
  search.deadline_ms = flags.GetUint64("--timeout-ms", 0);
  search.num_threads = static_cast<size_t>(flags.GetInt("--threads", 4));
  TransectSearchStats stats;
  auto hits = jump ? (*transect)->SearchJumps(T, V, search, &stats)
                   : (*transect)->SearchDrops(T, V, search, &stats);
  if (!hits.ok()) return Fail(hits.status());

  int sensors_hit = 0;
  int last_sensor = -1;
  for (const TransectHit& hit : *hits) {
    if (hit.sensor != last_sensor) {
      ++sensors_hit;
      last_sensor = hit.sensor;
    }
  }
  std::printf("%zu periods on %d of %d sensors with a %s of %s%.2f within "
              "%.2f h (%.2f ms wall, fan-out %zu)%s\n",
              hits->size(), sensors_hit, (*transect)->sensor_count(),
              jump ? "jump" : "drop", jump ? ">= " : "<= ", V, T / 3600.0,
              stats.seconds * 1e3, search.num_threads,
              stats.truncated ? " TRUNCATED" : "");
  if (stats.partial) {
    std::printf("  WARNING: partial result — %llu quarantined page%s "
                "skipped (>= %llu rows unreadable); run `transect verify` "
                "and `transect repair` to diagnose and salvage\n",
                static_cast<unsigned long long>(stats.scan.pages_quarantined),
                stats.scan.pages_quarantined == 1 ? "" : "s",
                static_cast<unsigned long long>(stats.scan.rows_quarantined));
  }
  if (stats.sensors_failed > 0 || stats.sensors_skipped > 0) {
    std::printf("  WARNING: %llu sensor%s skipped (store would not open) "
                "and %llu failed mid-search — their periods are missing "
                "from the result\n",
                static_cast<unsigned long long>(stats.sensors_skipped),
                stats.sensors_skipped == 1 ? "" : "s",
                static_cast<unsigned long long>(stats.sensors_failed));
    for (const TransectSensorFailure& failure : stats.failures) {
      std::printf("    sensor %-5d %s\n", failure.sensor,
                  failure.status.ToString().c_str());
    }
  }
  if (stats.sensors_degraded > 0) {
    std::printf("  note: %llu sensor%s answered in degraded (read-only) "
                "mode\n",
                static_cast<unsigned long long>(stats.sensors_degraded),
                stats.sensors_degraded == 1 ? "" : "s");
  }
  if (flags.Has("--stats")) {
    std::printf("  pages: %llu scanned, %llu pruned; rows: %llu scanned, "
                "%llu matched; %llu range queries\n",
                static_cast<unsigned long long>(stats.scan.pages_scanned),
                static_cast<unsigned long long>(stats.scan.pages_pruned),
                static_cast<unsigned long long>(stats.scan.rows_scanned),
                static_cast<unsigned long long>(stats.scan.rows_matched),
                static_cast<unsigned long long>(stats.queries_issued));
    PrintCacheStats(**transect);
  }
  const int limit = flags.GetInt("--limit", 20);
  int shown = 0;
  for (const TransectHit& hit : *hits) {
    if (++shown > limit) {
      std::printf("  ... (%zu more; raise --limit)\n",
                  hits->size() - static_cast<size_t>(limit));
      break;
    }
    std::printf("  sensor %-5d starts in [%.0f, %.0f]  ends in [%.0f, "
                "%.0f]\n",
                hit.sensor, hit.pair.t_d, hit.pair.t_c, hit.pair.t_b,
                hit.pair.t_a);
  }
  return 0;
}

int CmdTransectStats(const Flags& flags) {
  const std::string dir = flags.Get("--dir", "");
  if (dir.empty()) {
    std::fprintf(stderr, "transect stats: --dir is required\n");
    return 2;
  }
  TransectOptions options = TransectFlags(flags);
  options.store.create_if_missing = false;
  auto transect = TransectIndex::Open(dir, 0, options);
  if (!transect.ok()) return Fail(transect.status());
  const ShardCatalog& catalog = (*transect)->catalog();
  std::printf("transect: %s\n", dir.c_str());
  std::printf("  sensors:       %d in %zu shards (%d per shard)\n",
              catalog.sensor_count(), catalog.shard_count(),
              catalog.sensors_per_shard());
  // Sizes open every store, so a damaged sensor fails them — keep going
  // and let the health sweep below name the culprit and set the exit
  // code.
  auto sizes = (*transect)->GetSizes();
  if (sizes.ok()) {
    std::printf("  feature rows:  %llu\n",
                static_cast<unsigned long long>(sizes->feature_rows));
    std::printf("  feature bytes: %llu\n",
                static_cast<unsigned long long>(sizes->feature_bytes));
    std::printf("  index bytes:   %llu\n",
                static_cast<unsigned long long>(sizes->index_bytes));
    std::printf("  file bytes:    %llu\n",
                static_cast<unsigned long long>(sizes->file_bytes));
  } else {
    std::printf("  sizes:         unavailable (%s)\n",
                sizes.status().ToString().c_str());
  }
  PrintCacheStats(**transect);

  // Health block: a full scrub sweep, reported with verify's exit
  // contract so scripts can branch on damaged vs. flaky transects.
  auto health = (*transect)->Verify();
  if (!health.ok()) {
    Fail(health.status());
    return VerifyExitCode(health.status());
  }
  std::printf("  health:        %d/%d sensors scanned, %d corrupt, "
              "%d degraded, %d unavailable, %llu quarantined page%s\n",
              health->sensors_scanned, health->sensors_total,
              health->sensors_corrupt, health->sensors_degraded,
              health->sensors_unavailable,
              static_cast<unsigned long long>(health->quarantined_pages),
              health->quarantined_pages == 1 ? "" : "s");
  PrintSweepIssues(health->issues);
  if (health->sensors_corrupt > 0) return 2;
  if (health->sensors_unavailable > 0) return 3;
  return 0;
}

/// Bytes/sec sweep throttle from --rate-mbps (0 = the
/// SEGDIFF_SCRUB_RATE_BYTES_PER_SEC environment knob, then unlimited).
TransectVerifyOptions SweepFlags(const Flags& flags) {
  TransectVerifyOptions options;
  options.rate_limit_bytes_per_sec = static_cast<uint64_t>(
      flags.GetDouble("--rate-mbps", 0.0) * 1024.0 * 1024.0);
  return options;
}

int CmdTransectVerify(const Flags& flags) {
  const std::string dir = flags.Get("--dir", "");
  if (dir.empty()) {
    std::fprintf(stderr, "transect verify: --dir is required\n");
    return 2;
  }
  TransectOptions options = TransectFlags(flags);
  options.store.create_if_missing = false;
  auto transect = TransectIndex::Open(dir, 0, options);
  if (!transect.ok()) {
    Fail(transect.status());
    return VerifyExitCode(transect.status());
  }
  auto report = (*transect)->Verify(SweepFlags(flags));
  if (!report.ok()) {
    Fail(report.status());
    return VerifyExitCode(report.status());
  }
  std::printf("transect verify: %d/%d sensors scanned, %llu pages checked "
              "(%.1f MiB)\n",
              report->sensors_scanned, report->sensors_total,
              static_cast<unsigned long long>(report->pages_checked),
              report->bytes_scanned / (1024.0 * 1024.0));
  std::printf("  %d corrupt, %d degraded, %d unavailable; %llu corrupt "
              "page%s, %llu quarantined\n",
              report->sensors_corrupt, report->sensors_degraded,
              report->sensors_unavailable,
              static_cast<unsigned long long>(report->pages_corrupt),
              report->pages_corrupt == 1 ? "" : "s",
              static_cast<unsigned long long>(report->quarantined_pages));
  PrintSweepIssues(report->issues);
  if (report->sensors_corrupt > 0) {
    std::printf("transect verify: FAILED — run `transect repair`\n");
    return 2;
  }
  if (report->sensors_unavailable > 0) {
    std::printf("transect verify: INCOMPLETE (transient I/O — retry)\n");
    return 3;
  }
  std::printf("transect verify: ok\n");
  return 0;
}

int CmdTransectRepair(const Flags& flags) {
  const std::string dir = flags.Get("--dir", "");
  if (dir.empty()) {
    std::fprintf(stderr, "transect repair: --dir is required\n");
    return 2;
  }
  TransectOptions options = TransectFlags(flags);
  options.store.create_if_missing = false;
  auto transect = TransectIndex::Open(dir, 0, options);
  if (!transect.ok()) {
    Fail(transect.status());
    return VerifyExitCode(transect.status());
  }
  auto report = (*transect)->RepairAll(SweepFlags(flags));
  if (!report.ok()) {
    Fail(report.status());
    return VerifyExitCode(report.status());
  }
  std::printf("transect repair: %d sensors checked, %d repaired, %d "
              "failed\n",
              report->sensors_checked, report->sensors_repaired,
              report->sensors_failed);
  if (report->sensors_repaired > 0) {
    std::printf("  salvaged %llu row%s; skipped %llu corrupt page%s and "
                "%llu corrupt segment%s (>= %llu row%s lost)\n",
                static_cast<unsigned long long>(report->totals.rows_salvaged),
                report->totals.rows_salvaged == 1 ? "" : "s",
                static_cast<unsigned long long>(report->totals.pages_skipped),
                report->totals.pages_skipped == 1 ? "" : "s",
                static_cast<unsigned long long>(
                    report->totals.segments_skipped),
                report->totals.segments_skipped == 1 ? "" : "s",
                static_cast<unsigned long long>(report->totals.rows_lost),
                report->totals.rows_lost == 1 ? "" : "s");
  }
  PrintSweepIssues(report->issues);
  return report->sensors_failed > 0 ? 2 : 0;
}

int CmdTransectRebalance(const Flags& flags) {
  const std::string dir = flags.Get("--dir", "");
  const int sensors_per_shard = flags.GetInt("--shard-sensors", 0);
  if (dir.empty() || sensors_per_shard <= 0) {
    std::fprintf(stderr,
                 "transect rebalance: --dir and --shard-sensors are "
                 "required\n");
    return 2;
  }
  TransectOptions options = TransectFlags(flags);
  options.store.create_if_missing = false;
  options.sensors_per_shard = 0;  // adopt the persisted layout on open
  auto transect = TransectIndex::Open(dir, 0, options);
  if (!transect.ok()) return Fail(transect.status());
  const int before = (*transect)->catalog().sensors_per_shard();
  if (Status status = (*transect)->Rebalance(sensors_per_shard);
      !status.ok()) {
    return Fail(status);
  }
  std::printf("rebalanced %s: %d -> %d sensors per shard (%zu shards)\n",
              dir.c_str(), before,
              (*transect)->catalog().sensors_per_shard(),
              (*transect)->catalog().shard_count());
  return 0;
}

int CmdTransect(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: segdiff_cli transect "
                 "<build|search|stats|verify|repair|rebalance> "
                 "--dir DIR [--flag value ...]\n");
    return 2;
  }
  const std::string action = argv[2];
  const Flags flags(argc, argv, 3);
  if (action == "build") return CmdTransectBuild(flags);
  if (action == "search") return CmdTransectSearch(flags);
  if (action == "stats") return CmdTransectStats(flags);
  if (action == "verify") return CmdTransectVerify(flags);
  if (action == "repair") return CmdTransectRepair(flags);
  if (action == "rebalance") return CmdTransectRebalance(flags);
  std::fprintf(stderr, "transect: unknown action '%s'\n", action.c_str());
  return 2;
}

int CmdVerify(const Flags& flags) {
  const std::string db = flags.Get("--db", "");
  if (db.empty()) {
    std::fprintf(stderr, "verify: --db is required\n");
    return 2;
  }
  DatabaseOptions options;
  options.create_if_missing = false;
  auto database = Database::Open(db, options);
  if (!database.ok()) {
    Fail(database.status());
    return VerifyExitCode(database.status());
  }
  // Verification is strictly read-only: closing must not rewrite even
  // the header of a store we just diagnosed as damaged (WAL replay at
  // open touched only in-memory state; Abandon discards it).
  (*database)->Abandon();
  const Pager* pager = (*database)->pager();
  std::printf("store: %s (format v%u%s)\n", db.c_str(),
              pager->format_version(),
              pager->read_only() ? ", legacy read-only" : "");

  // Logical check: each table's heap metadata agrees with what a full
  // scan actually returns (a torn append would break this).
  int failures = 0;
  int transient_failures = 0;
  for (const auto& table : (*database)->tables()) {
    uint64_t scanned = 0;
    Status scan = table->Scan(
        [&scanned](const char*, RecordId, bool* keep_going) -> Status {
          *keep_going = true;
          ++scanned;
          return Status::OK();
        });
    if (!scan.ok()) {
      std::printf("  table %-10s UNREADABLE: %s\n", table->name().c_str(),
                  scan.ToString().c_str());
      if (scan.IsTransient()) {
        ++transient_failures;
      } else {
        ++failures;
      }
    } else if (scanned != table->row_count()) {
      std::printf("  table %-10s BAD: scanned %llu rows, metadata says "
                  "%llu\n",
                  table->name().c_str(),
                  static_cast<unsigned long long>(scanned),
                  static_cast<unsigned long long>(table->row_count()));
      ++failures;
    } else {
      std::printf("  table %-10s ok (%llu rows)\n", table->name().c_str(),
                  static_cast<unsigned long long>(scanned));
    }
  }

  if (flags.Has("--scrub")) {
    auto report = (*database)->Scrub();
    if (!report.ok()) {
      Fail(report.status());
      return VerifyExitCode(report.status());
    }
    std::printf("scrub: %llu pages checked, %llu unverifiable (legacy), "
                "%zu corrupt\n",
                static_cast<unsigned long long>(report->pages_checked),
                static_cast<unsigned long long>(report->pages_unverifiable),
                report->corrupt.size());
    for (const ScrubIssue& issue : report->corrupt) {
      std::printf("  page %llu: %s\n",
                  static_cast<unsigned long long>(issue.page),
                  issue.message.c_str());
      ++failures;
    }
    if (report->pages_unverifiable > 0) {
      std::printf("  note: legacy v1 pages have no checksums; compact the "
                  "store to upgrade\n");
    }
    // The write-ahead log is part of the store: walk every frame. A torn
    // tail is healthy (an interrupted group commit; recovery trims it),
    // but a bad header or a mid-log CRC mismatch is damage.
    const WalScrubReport wal =
        Wal::Scrub((*database)->pager()->vfs(), db);
    if (!wal.exists) {
      std::printf("wal scrub: no log (checkpoint-only store)\n");
    } else {
      std::printf("wal scrub: %llu bytes, %llu frames (lsn %llu..%llu)\n",
                  static_cast<unsigned long long>(wal.bytes),
                  static_cast<unsigned long long>(wal.frames),
                  static_cast<unsigned long long>(wal.start_lsn),
                  static_cast<unsigned long long>(wal.last_lsn));
      if (wal.torn_tail) {
        std::printf("  torn tail: %llu byte%s past the last valid frame "
                    "(healthy — trimmed on next open)\n",
                    static_cast<unsigned long long>(wal.torn_tail_bytes),
                    wal.torn_tail_bytes == 1 ? "" : "s");
      }
      if (wal.corrupt) {
        std::printf("  wal CORRUPT: %s\n", wal.message.c_str());
        ++failures;
      }
    }
  }

  if (failures > 0) {
    std::printf("verify: FAILED (%d problem%s)\n", failures,
                failures == 1 ? "" : "s");
    return 2;
  }
  if (transient_failures > 0) {
    std::printf("verify: INCOMPLETE (%d transient I/O failure%s — retry)\n",
                transient_failures, transient_failures == 1 ? "" : "s");
    return 3;
  }
  std::printf("verify: ok\n");
  return 0;
}

int Run(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  const std::string command = argv[1];
  const Flags flags(argc, argv, 2);
  if (command == "generate") return CmdGenerate(flags);
  if (command == "build") return CmdBuild(flags);
  if (command == "append") return CmdAppend(flags);
  if (command == "search") return CmdSearch(flags);
  if (command == "stats") return CmdStats(flags);
  if (command == "sql") return CmdSql(flags);
  if (command == "segment") return CmdSegment(flags);
  if (command == "compact") return CmdCompact(flags);
  if (command == "repair") return CmdRepair(flags);
  if (command == "verify") return CmdVerify(flags);
  if (command == "transect") return CmdTransect(argc, argv);
  return Usage();
}

}  // namespace
}  // namespace segdiff

int main(int argc, char** argv) { return segdiff::Run(argc, argv); }
