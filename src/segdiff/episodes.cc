#include "segdiff/episodes.h"

#include <algorithm>

namespace segdiff {

std::vector<Episode> CoalesceEpisodes(const std::vector<PairId>& pairs,
                                      double max_gap_s) {
  std::vector<Episode> episodes;
  if (pairs.empty()) {
    return episodes;
  }
  std::vector<PairId> sorted = pairs;
  std::sort(sorted.begin(), sorted.end(),
            [](const PairId& a, const PairId& b) {
              if (a.t_d != b.t_d) return a.t_d < b.t_d;
              return a.t_a < b.t_a;
            });
  Episode current{sorted[0].t_d, sorted[0].t_a, 1};
  for (size_t i = 1; i < sorted.size(); ++i) {
    const PairId& pair = sorted[i];
    if (pair.t_d <= current.t_end + max_gap_s) {
      current.t_end = std::max(current.t_end, pair.t_a);
      ++current.pair_count;
    } else {
      episodes.push_back(current);
      current = Episode{pair.t_d, pair.t_a, 1};
    }
  }
  episodes.push_back(current);
  return episodes;
}

}  // namespace segdiff
