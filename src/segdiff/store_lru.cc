#include "segdiff/store_lru.h"

#include <algorithm>
#include <utility>

#include "segdiff/segdiff_index.h"

namespace segdiff {

StoreLru::Handle& StoreLru::Handle::operator=(Handle&& other) noexcept {
  if (this != &other) {
    Reset();
    cache_ = other.cache_;
    sensor_ = other.sensor_;
    store_ = other.store_;
    other.cache_ = nullptr;
    other.sensor_ = -1;
    other.store_ = nullptr;
  }
  return *this;
}

void StoreLru::Handle::Reset() {
  if (cache_ != nullptr) {
    cache_->Release(sensor_);
    cache_ = nullptr;
    sensor_ = -1;
    store_ = nullptr;
  }
}

StoreLru::StoreLru(size_t max_open, Factory factory)
    : max_open_(max_open), factory_(std::move(factory)) {}

StoreLru::~StoreLru() {
  // No Handles may be outstanding here; store destructors persist their
  // own state on close.
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

Result<StoreLru::Handle> StoreLru::Acquire(int sensor) {
  std::unique_lock<std::mutex> lock(mu_);
  {
    // Deliver the sensor's sticky eviction error before anything else:
    // its last checkpoint-and-close failed, so the caller must learn
    // that durability is behind before touching the store again. The
    // record clears on delivery — the retry Acquire proceeds normally
    // (reopen replays the WAL, so no acknowledged data is missing).
    auto sticky = eviction_errors_.find(sensor);
    if (sticky != eviction_errors_.end()) {
      Status status = std::move(sticky->second);
      eviction_errors_.erase(sticky);
      return status;
    }
  }
  for (;;) {
    auto it = entries_.find(sensor);
    if (it != entries_.end()) {
      Entry& entry = it->second;
      if (entry.busy) {
        // Another thread is opening (or evict-closing) this sensor:
        // wait for it to settle rather than racing a second open of
        // the same store file.
        settled_.wait(lock);
        continue;
      }
      if (entry.in_lru) {
        lru_.erase(entry.lru_pos);
        entry.in_lru = false;
      }
      ++entry.pins;
      ++hits_;
      return Handle(this, sensor, entry.store.get());
    }

    if (max_open_ == 0 || open_count_ < max_open_) {
      break;  // capacity free: reserve below and open outside the lock
    }

    if (!lru_.empty()) {
      // Evict the coldest unpinned store: checkpoint + close outside
      // the lock, with the entry left busy so a concurrent Acquire of
      // the victim waits instead of opening the file a second time.
      const int victim = lru_.front();
      lru_.pop_front();
      Entry& ventry = entries_.at(victim);
      ventry.in_lru = false;
      ventry.busy = true;
      std::unique_ptr<SegDiffIndex> store = std::move(ventry.store);
      lock.unlock();
      Status checkpoint_status = store->Checkpoint();
      store.reset();
      lock.lock();
      entries_.erase(victim);
      --open_count_;
      ++evictions_;
      settled_.notify_all();
      if (!checkpoint_status.ok()) {
        // Not this caller's error: the victim is an unrelated sensor.
        // Record it sticky so the next Acquire of the *victim* (or a
        // TakeEvictionErrors sweep) surfaces it, and keep going — the
        // WAL still holds the victim's acknowledged data, so the only
        // thing lost is the checkpoint, which the reopen redoes.
        ++eviction_failures_;
        eviction_errors_[victim] = checkpoint_status.WithMessage(
            "eviction checkpoint failed for sensor " +
            std::to_string(victim) + ": " +
            std::string(checkpoint_status.message()));
      }
      continue;  // a racer may take the freed slot; the loop re-checks
    }

    // Full and everything is pinned or mid-open: wait for a pin to
    // drop. Callers hold at most one Handle each, so some pin always
    // drops eventually.
    settled_.wait(lock);
  }

  // Reserve the slot, then open outside the lock so a slow cold open
  // does not serialize hits on other sensors.
  Entry& entry = entries_[sensor];
  entry.busy = true;
  ++open_count_;
  peak_open_ = std::max(peak_open_, open_count_);
  lock.unlock();

  Result<std::unique_ptr<SegDiffIndex>> opened = factory_(sensor);

  lock.lock();
  if (!opened.ok()) {
    entries_.erase(sensor);
    --open_count_;
    settled_.notify_all();
    return opened.status();
  }
  Entry& settled = entries_.at(sensor);
  settled.store = std::move(opened).value();
  settled.busy = false;
  settled.pins = 1;
  ++opens_;
  settled_.notify_all();
  return Handle(this, sensor, settled.store.get());
}

Status StoreLru::Evict(int sensor) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    auto it = entries_.find(sensor);
    if (it == entries_.end()) {
      // Not resident: deliver a pending sticky error (the caller asked
      // about exactly this sensor) or succeed trivially.
      auto sticky = eviction_errors_.find(sensor);
      if (sticky != eviction_errors_.end()) {
        Status status = std::move(sticky->second);
        eviction_errors_.erase(sticky);
        return status;
      }
      return Status::OK();
    }
    Entry& entry = it->second;
    if (entry.busy || entry.pins > 0) {
      // Mid-open, mid-evict, or pinned elsewhere: wait. The caller must
      // not hold its own Handle on this sensor, or this never settles.
      settled_.wait(lock);
      continue;
    }
    if (entry.in_lru) {
      lru_.erase(entry.lru_pos);
      entry.in_lru = false;
    }
    entry.busy = true;
    std::unique_ptr<SegDiffIndex> store = std::move(entry.store);
    lock.unlock();
    Status checkpoint_status = store->Checkpoint();
    store.reset();
    lock.lock();
    entries_.erase(sensor);
    --open_count_;
    ++evictions_;
    if (!checkpoint_status.ok()) {
      ++eviction_failures_;
    }
    settled_.notify_all();
    // Direct caller gets the error directly — no sticky detour.
    return checkpoint_status;
  }
}

std::vector<std::pair<int, Status>> StoreLru::TakeEvictionErrors() {
  std::vector<std::pair<int, Status>> errors;
  std::lock_guard<std::mutex> lock(mu_);
  errors.reserve(eviction_errors_.size());
  for (auto& [sensor, status] : eviction_errors_) {
    errors.emplace_back(sensor, std::move(status));
  }
  eviction_errors_.clear();
  std::sort(errors.begin(), errors.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return errors;
}

void StoreLru::Release(int sensor) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = entries_.at(sensor);
  --entry.pins;
  if (entry.pins == 0) {
    entry.lru_pos = lru_.insert(lru_.end(), sensor);
    entry.in_lru = true;
  }
  settled_.notify_all();
}

std::vector<int> StoreLru::OpenSensors() const {
  std::vector<int> sensors;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sensors.reserve(entries_.size());
    for (const auto& kv : entries_) {
      if (!kv.second.busy) {
        sensors.push_back(kv.first);
      }
    }
  }
  std::sort(sensors.begin(), sensors.end());
  return sensors;
}

StoreLruStats StoreLru::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  StoreLruStats stats;
  stats.open = open_count_;
  stats.peak_open = peak_open_;
  stats.opens = opens_;
  stats.evictions = evictions_;
  stats.hits = hits_;
  stats.eviction_failures = eviction_failures_;
  return stats;
}

}  // namespace segdiff
