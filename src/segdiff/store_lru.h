// StoreLru: bounded cache of open per-sensor SegDiff stores.
//
// A 100k-sensor transect cannot keep 100k stores open at once — each
// open store owns a buffer pool, a WAL handle, and file descriptors. The
// LRU opens stores lazily through a caller-supplied factory and keeps at
// most `max_open` of them resident; acquiring a store when the cache is
// full first evicts the coldest *unpinned* store (checkpointing it so no
// durable state is lost, then closing it). Closing and reopening a store
// is transparent to ingest and search: SegDiffIndex persists its
// segmenter and extractor state, so a store resumes byte-identically.
//
// Pinning: Acquire returns an RAII Handle that pins the store for its
// lifetime. A pinned store is never evicted, so an in-flight search can
// not lose its store mid-scan. When every resident store is pinned and
// the cache is full, Acquire blocks until a pin drops — therefore each
// worker thread must hold at most one Handle at a time, and `max_open`
// must be at least the number of concurrently pinning threads, or the
// fan-out can deadlock (TransectIndex enforces both).
//
// Thread-safe. Factory opens and eviction checkpoints run outside the
// cache lock, so slow store IO never blocks hits on other sensors; a
// concurrent Acquire of a store that is mid-open waits for that open
// instead of opening the file twice.

#ifndef SEGDIFF_SEGDIFF_STORE_LRU_H_
#define SEGDIFF_SEGDIFF_STORE_LRU_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.h"

namespace segdiff {

class SegDiffIndex;

/// Point-in-time view of the cache's behaviour, for benchmarks and the
/// CLI `transect stats` command.
struct StoreLruStats {
  size_t open = 0;        ///< stores currently resident
  size_t peak_open = 0;   ///< high-water mark of resident stores
  uint64_t opens = 0;     ///< factory invocations (cold misses)
  uint64_t evictions = 0; ///< checkpoint-and-close cycles
  uint64_t hits = 0;      ///< Acquires served by a resident store
  /// Eviction-time Checkpoint failures (e.g. ENOSPC). Each is also
  /// recorded as a sticky per-sensor error surfaced by the next
  /// Acquire of that sensor or by TakeEvictionErrors().
  uint64_t eviction_failures = 0;
};

class StoreLru {
 public:
  using Factory =
      std::function<Result<std::unique_ptr<SegDiffIndex>>(int sensor)>;

  /// Pinned reference to an open store. The store stays resident until
  /// the last Handle to it is destroyed (or moved-from).
  class Handle {
   public:
    Handle() = default;
    Handle(Handle&& other) noexcept { *this = std::move(other); }
    Handle& operator=(Handle&& other) noexcept;
    ~Handle() { Reset(); }

    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;

    SegDiffIndex* get() const { return store_; }
    SegDiffIndex* operator->() const { return store_; }
    SegDiffIndex& operator*() const { return *store_; }
    explicit operator bool() const { return store_ != nullptr; }

    /// Drops the pin early.
    void Reset();

   private:
    friend class StoreLru;
    Handle(StoreLru* cache, int sensor, SegDiffIndex* store)
        : cache_(cache), sensor_(sensor), store_(store) {}

    StoreLru* cache_ = nullptr;
    int sensor_ = -1;
    SegDiffIndex* store_ = nullptr;
  };

  /// `max_open` = 0 means unbounded (every store stays open once
  /// touched). `factory` opens the store for one sensor; it is invoked
  /// without the cache lock held.
  StoreLru(size_t max_open, Factory factory);

  /// Destroys every resident store (SegDiffIndex close persists its own
  /// state). All Handles must have been released.
  ~StoreLru();

  StoreLru(const StoreLru&) = delete;
  StoreLru& operator=(const StoreLru&) = delete;

  /// Pins sensor's store, opening it (and evicting the coldest unpinned
  /// store when full) as needed. Blocks while the cache is full of
  /// pinned stores. Fails with the factory's error, or with the
  /// sensor's own sticky eviction error (below) — losing a store's
  /// durability silently is worse than failing the acquire loudly.
  ///
  /// An eviction-time Checkpoint failure does NOT fail the Acquire that
  /// triggered the eviction (the victim is an unrelated sensor); it is
  /// recorded against the *victim* and returned — once — by the next
  /// Acquire of that victim, whose caller is the one that can retry the
  /// flush. TakeEvictionErrors() drains the same records in bulk for
  /// maintenance sweeps.
  Result<Handle> Acquire(int sensor);

  /// Closes `sensor`'s store (checkpointing it first) and returns the
  /// checkpoint status, waiting for outstanding pins to drop. A store
  /// that is not resident is OK. Used by repair — the store file is
  /// about to be replaced — and by rebalance teardown. The caller must
  /// not hold a Handle on `sensor` (self-deadlock).
  Status Evict(int sensor);

  /// Drains the sticky eviction-failure records: every (sensor, status)
  /// whose eviction-time Checkpoint failed and has not yet been
  /// surfaced through Acquire. The records are cleared — each failure
  /// is reported exactly once.
  std::vector<std::pair<int, Status>> TakeEvictionErrors();

  /// Sensors with a resident store right now (sorted ascending, so
  /// maintenance sweeps visit stores in deterministic order).
  std::vector<int> OpenSensors() const;

  size_t max_open() const { return max_open_; }
  StoreLruStats stats() const;

 private:
  struct Entry {
    std::unique_ptr<SegDiffIndex> store;
    int pins = 0;
    /// Reserved: the store is being opened (or evict-closed) outside
    /// the lock; waiters block until it settles.
    bool busy = false;
    std::list<int>::iterator lru_pos;  ///< valid only when pins == 0
    bool in_lru = false;
  };

  void Release(int sensor);

  const size_t max_open_;
  const Factory factory_;

  mutable std::mutex mu_;
  std::condition_variable settled_;  ///< pins dropped / opens finished
  std::unordered_map<int, Entry> entries_;
  /// Unpinned resident stores, coldest first. Entries hold their own
  /// position so a hit unlinks in O(1).
  std::list<int> lru_;
  size_t open_count_ = 0;  ///< resident + reserved (mid-open) stores
  size_t peak_open_ = 0;
  uint64_t opens_ = 0;
  uint64_t evictions_ = 0;
  uint64_t hits_ = 0;
  uint64_t eviction_failures_ = 0;
  /// Sticky per-sensor eviction-checkpoint errors, pending delivery.
  std::unordered_map<int, Status> eviction_errors_;
};

}  // namespace segdiff

#endif  // SEGDIFF_SEGDIFF_STORE_LRU_H_
