// SegDiffIndex: the paper's framework end to end.
//
// Ingest: series -> sliding-window segmentation (max error eps/2)
//         -> Algorithm 1 feature extraction -> minidb feature tables.
// Search: drop/jump queries (T, V) -> point + line range queries
//         (Section 4.4) over the feature tables, by sequential scan or
//         B+-tree index scan -> deduplicated segment-pair results.
//
// Storage layout (one minidb file):
//   segments                 (t_s, v_s, t_e, v_e)     the segment directory
//   drop1|drop2|drop3        feature rows with 1/2/3 stored corners
//   jump1|jump2|jump3        likewise for jump search
// A k-corner feature row is [dt1, dv1, ..., dtk, dvk, t_d, t_c, t_b]
// (t_a is re-derived from the segment directory). Indexes per Section
// 4.4: a (dt_j, dv_j) B+-tree per corner (point queries) and a
// (dt_j, dv_j, dt_{j+1}, dv_{j+1}) B+-tree per frontier edge (line
// queries) — 9 indexes per search kind.

#ifndef SEGDIFF_SEGDIFF_SEGDIFF_INDEX_H_
#define SEGDIFF_SEGDIFF_SEGDIFF_INDEX_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/admission.h"
#include "common/governance.h"
#include "common/result.h"
#include "feature/extractor.h"
#include "feature/sink.h"
#include "query/executor.h"
#include "segment/sliding_window.h"
#include "storage/db.h"
#include "ts/series.h"

namespace segdiff {

/// Build-time configuration of a SegDiff store.
struct SegDiffOptions {
  double eps = 0.2;            ///< user error tolerance (degrees C in the paper)
  double window_s = 28800.0;   ///< w: longest supported T (8 h default)
  bool collect_drops = true;
  bool collect_jumps = true;
  bool build_indexes = true;   ///< build the Section 4.4 B+-trees
  bool create_if_missing = true;  ///< false: only open an existing store
  size_t buffer_pool_pages = 4096;
  /// Simulated storage read latency (cold-cache experiments); 0 = off.
  uint64_t sim_seq_read_ns = 0;
  uint64_t sim_random_read_ns = 0;
  /// File system the store's IO goes through (nullptr = default POSIX
  /// Vfs; non-owning). Fault-injection tests substitute their own.
  Vfs* vfs = nullptr;
  /// Verify page checksums on read (see DatabaseOptions).
  bool verify_checksums = true;
  /// Write-ahead logging: every appended observation is redo-logged and
  /// group-committed, so a crash loses at most the tail after the last
  /// group commit. false reverts to checkpoint-only durability (an
  /// unclean shutdown loses everything since the last Checkpoint).
  bool wal = true;
  /// Group-commit window in milliseconds; 0 = fsync every append; -1 =
  /// the SEGDIFF_WAL_GROUP_COMMIT_MS environment variable (default 1).
  int64_t wal_group_commit_ms = -1;
  /// Admission-control limits for this store's query entry points
  /// (defaults auto-size to the machine; see AdmissionOptions).
  AdmissionOptions admission;
};

/// How a search executes its range queries.
enum class QueryMode : unsigned char {
  kSeqScan = 0,   ///< paper's "sequential scan"
  kIndexScan = 1, ///< paper's "using indexes"
  kAuto = 2,      ///< planner picks per point/line query
};

/// Per-search knobs.
struct SearchOptions {
  QueryMode mode = QueryMode::kSeqScan;
  /// Paper semantics issue one range query per stored corner/edge (each
  /// its own scan). `fused_scan` instead evaluates all of a table's
  /// conditions in a single pass — an optimization the ablation bench
  /// quantifies. Only affects kSeqScan.
  bool fused_scan = false;
  /// Intra-query parallelism. 0 or 1 executes everything serially on the
  /// calling thread, preserving the paper's single-threaded semantics.
  /// >= 2 runs the search's independent range queries concurrently on a
  /// worker pool (fused and Exh scans are instead partitioned across the
  /// workers by heap page). Results and SearchStats are identical to the
  /// serial path; only wall-clock time changes. Requests > 1 are clamped
  /// to the store's AdmissionOptions::max_threads_per_query.
  size_t num_threads = 0;

  // Governance (see DESIGN.md §11). All default to "ungoverned".

  /// Relative deadline: the search fails with DeadlineExceeded within
  /// one page of work once `deadline_ms` ms have elapsed. 0 = none.
  uint64_t deadline_ms = 0;
  /// Absolute deadline, combined (earlier wins) with `deadline_ms`.
  /// Lets a driver spread one budget across several searches
  /// (TransectIndex::SearchAll).
  Deadline deadline;
  /// Cooperative cancel: obtain from a CancellationSource and Cancel()
  /// from any thread; the search fails with Status::Cancelled within one
  /// page of work.
  CancellationToken cancel;
  /// Cap on result-set memory. On breach the search returns the pairs
  /// found so far with SearchStats::truncated set — or, when the caller
  /// passed no SearchStats out-param (nowhere to surface the flag),
  /// fails with ResourceExhausted instead. Never silent. 0 = unlimited.
  uint64_t max_result_bytes = 0;
  /// Admission scheduling class (see QueryPriority).
  QueryPriority priority = QueryPriority::kNormal;
};

/// Execution report for one search.
struct SearchStats {
  ScanStats scan;
  uint64_t queries_issued = 0;
  uint64_t pairs_returned = 0;
  double seconds = 0.0;
  /// Observation count frozen with the search's snapshot: the search
  /// sees exactly the features derived from the first
  /// `snapshot_observations` observations, no matter how much ingest
  /// runs concurrently (differential tests key on this).
  uint64_t snapshot_observations = 0;
  /// The result set was cut short by SearchOptions::max_result_bytes;
  /// pairs_returned counts only what was kept.
  bool truncated = false;
  /// The store has quarantined (checksum-failed) pages in the searched
  /// range: the scan routed around them, so pairs whose feature rows
  /// lived there are missing. scan.pages_quarantined/rows_quarantined
  /// size the hole. Only possible when the caller passed a SearchStats
  /// out-param — without one there is nowhere to surface the flag, and
  /// the search fails with a quarantined-range Corruption error instead.
  /// Never set together with a clean bill: partial == false means the
  /// result is complete over the snapshot.
  bool partial = false;
  /// High-water mark of result-set bytes across all of the search's
  /// threads (tracked even without a budget).
  uint64_t result_bytes_peak = 0;
  /// Time spent queued in admission control before executing.
  double admission_wait_ms = 0.0;
};

/// Space usage (paper Section 6 metrics).
struct SegDiffSizes {
  uint64_t feature_bytes = 0;   ///< heap pages of the 6 feature tables
  uint64_t feature_rows = 0;
  uint64_t index_bytes = 0;     ///< B+-tree pages over feature tables
  uint64_t segment_dir_bytes = 0;
  uint64_t file_bytes = 0;      ///< whole database file
};

/// Rewrites a Corruption status coming out of a table scan into a
/// "quarantined range" error naming the store object (`what`), keeping
/// the underlying page diagnosis and adding remediation advice. Every
/// other status passes through unchanged. Used by the search paths so a
/// checksum-failed page surfaces as a clear, actionable error — never as
/// a partial result set.
Status QuarantineScanError(Status status, const std::string& what);

class SegDiffIndex : public FeatureSink {
 public:
  /// Creates (or opens) the store backing file at `path`. Reopened
  /// stores resume appending exactly where ingest left off: the open
  /// segment, the extractor's pair window, and the build parameters
  /// (eps, window, collected kinds) are persisted in the store and
  /// restored here — persisted build parameters take precedence over
  /// the corresponding fields of `options`. Stores written before state
  /// persistence existed are reconstructed from their segment directory
  /// (resuming at the last flushed segment boundary).
  static Result<std::unique_ptr<SegDiffIndex>> Open(
      const std::string& path, const SegDiffOptions& options);

  /// Saves ingest state into the database before the database handle
  /// checkpoints itself on destruction.
  ~SegDiffIndex() override;

  /// Feeds one observation through the streaming pipeline (segmenter ->
  /// segment directory + extractor -> feature tables). Features of the
  /// open trailing segment become searchable when the segment closes —
  /// naturally or via FlushPending(). In WAL mode the observation is
  /// logged before any page is touched; it is acknowledged durable at
  /// the next group commit. Safe to call concurrently with searches
  /// (which read snapshots); appends themselves are serialized.
  Status AppendObservation(double t, double v) override;

  /// Emits the open trailing segment (if any) and continues the next
  /// segment anchored at its endpoint, so the approximation stays
  /// contiguous. After this, every appended observation is searchable —
  /// and, in WAL mode, durable: FlushPending closes the group-commit
  /// window before returning (acknowledged means durable).
  Status FlushPending() override;

  /// Segments and extracts `series`, appending features; equivalent to
  /// AppendSeries + FlushPending. May be called repeatedly with later
  /// series chunks (time stamps must keep increasing); each call
  /// finalizes its own trailing segment, and the next chunk continues
  /// from the finalized endpoint.
  Status IngestSeries(const Series& series) override;

  /// Drop search: all segment pairs whose parallelogram indicates an
  /// event with 0 < dt <= T and dv <= V (V < 0). Sorted, deduplicated.
  Result<std::vector<PairId>> SearchDrops(double T, double V,
                                          const SearchOptions& options = {},
                                          SearchStats* stats = nullptr);

  /// Jump search (V > 0), symmetric.
  Result<std::vector<PairId>> SearchJumps(double T, double V,
                                          const SearchOptions& options = {},
                                          SearchStats* stats = nullptr);

  /// Persists everything (catalog, pages, header).
  Status Checkpoint();

  /// Checkpoint then evict the buffer pool: cold-cache experiments.
  Status DropCaches();

  /// Saves ingest state, then rewrites the store into a fresh file at
  /// `destination_path` (Database::CompactInto). Prefer this over
  /// db()->CompactInto(): it guarantees the compacted store's ingest
  /// blob is consistent with its tables, so it reopens as a valid
  /// resume point.
  Status Compact(const std::string& destination_path);

  /// Salvages everything still readable into a fresh store at
  /// `destination_path` (Database::Repair): corrupt pages and segments
  /// are skipped and accounted in `report`, surviving rows are copied
  /// and indexes rebuilt. The source store is not modified. The copied
  /// ingest blob reflects the current pipeline state, so the repaired
  /// store reopens as a valid resume point.
  Status Repair(const std::string& destination_path, RepairReport* report);

  SegDiffSizes GetSizes() const;
  const ExtractorStats& extractor_stats() const;
  uint64_t num_observations() const override { return observations_; }
  uint64_t num_segments() const;
  const SegDiffOptions& options() const { return options_; }
  Database* db() { return db_.get(); }

  /// The store's admission gate: governance counters for --stats, plus
  /// direct access for tests and front-ends (e.g. to hold slots or
  /// inspect queue depth). Searches are admitted through it implicitly.
  AdmissionController* admission_controller() { return &admission_; }

 private:
  SegDiffIndex(SegDiffOptions options);

  /// Everything fallible in Open: database, tables, restored state, and
  /// the streaming pipeline. On failure the instance may be partially
  /// built; Open marks the database handle to not checkpoint on close.
  Status OpenImpl(const std::string& path);
  Status InitTables();
  Status WriteFeatureRow(const PairFeatures& row);
  /// One completed segment from the segmenter: segment directory row +
  /// in-memory directory + extractor.
  Status OnSegment(const DataSegment& segment);
  /// Serializes segmenter + extractor + counters into the database's
  /// catalog meta blob (persisted at the next checkpoint).
  void SaveIngestState();
  /// Restores ingest state on reopen: from the meta blob when present,
  /// otherwise reconstructed from the segment directory (legacy stores).
  Status RestoreIngestState();
  /// Lazily creates (or resizes) the worker pool backing parallel
  /// searches: `num_threads - 1` workers, since the calling thread
  /// participates in every ParallelFor. Thread-safe; while any search is
  /// using the pool a size mismatch reuses the existing pool instead of
  /// resizing under it.
  ThreadPool* EnsurePool(size_t num_threads);
  void ReleasePool();
  /// Governance shell: validates, admits, builds the QueryContext and
  /// budget, delegates to SearchImpl, then applies the truncation
  /// contract and folds the outcome into the governance counters.
  Result<std::vector<PairId>> Search(SearchKind kind, double T, double V,
                                     const SearchOptions& options,
                                     SearchStats* stats);
  /// Plans and runs the range-query tasks against `snapshot`, appending
  /// raw (un-deduped) matches to `results`. On a memory-budget breach,
  /// whatever the tasks collected stays in `results` for the shell's
  /// truncation path. With `allow_partial` the scans route around
  /// quarantined pages (counting them in `local->scan`) instead of
  /// failing; the shell sets SearchStats::partial from those counters.
  Status SearchImpl(SearchKind kind, double T, double V,
                    const SearchOptions& options, size_t num_threads,
                    ThreadPool* pool, const QueryContext& ctx,
                    const DatabaseSnapshot& snapshot, bool allow_partial,
                    std::vector<PairId>* results, SearchStats* local);
  /// Replays the WAL's recovered observation backlog through the ingest
  /// pipeline (under Wal::Suspend): every acknowledged observation a
  /// crash interrupted lands back in the feature tables.
  Status DrainRecoveredOps();
  Status EnsureSegmentDirectory();
  /// Builds any missing zone maps for the kind's feature tables (legacy
  /// stores); fresh tables maintain theirs incrementally on insert.
  /// Must run before a search fans out to worker threads.
  Status EnsureZoneMaps(SearchKind kind);

  SegDiffOptions options_;
  std::unique_ptr<Database> db_;
  Table* segments_table_ = nullptr;
  Table* feature_tables_[2][3] = {{nullptr, nullptr, nullptr},
                                  {nullptr, nullptr, nullptr}};

  std::unique_ptr<FeatureExtractor> extractor_;
  std::unique_ptr<SlidingWindowSegmenter> segmenter_;
  /// Restored state parked between RestoreIngestState and pipeline
  /// construction in Open (the pipeline needs the adopted options).
  std::unique_ptr<ExtractorState> restored_extractor_;
  std::unique_ptr<SegmenterState> restored_segmenter_;
  std::unique_ptr<ThreadPool> pool_;  ///< parallel-search workers
  std::mutex pool_mu_;                ///< guards pool_ + pool_users_
  size_t pool_users_ = 0;             ///< searches currently on the pool
  AdmissionController admission_;
  /// Serializes writers (appends, flushes, checkpoints) against each
  /// other and against snapshot creation, so searches can run fully
  /// concurrently with ingest. Lock order: ingest_mu_ before lazy_mu_.
  std::mutex ingest_mu_;
  /// Serializes the lazy first-search initialisation (zone-map builds,
  /// segment-directory load) and guards segment_dir_, which ingest
  /// keeps appending to while searches resolve t_a from it.
  std::mutex lazy_mu_;
  uint64_t observations_ = 0;
  /// Set only when Open fully succeeded; the destructor saves ingest
  /// state (which dereferences the pipeline) only for opened instances.
  bool opened_ = false;

  /// t_start -> t_end of every segment, for materializing t_a.
  std::unordered_map<double, double> segment_dir_;
  bool segment_dir_fresh_ = false;

  std::vector<double> row_buf_;
};

}  // namespace segdiff

#endif  // SEGDIFF_SEGDIFF_SEGDIFF_INDEX_H_
