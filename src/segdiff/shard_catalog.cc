#include "segdiff/shard_catalog.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <utility>

#include "common/coding.h"
#include "common/crc32c.h"

namespace segdiff {
namespace {

// Manifest layout (little-endian, CRC32C-framed):
//   [0,8)   magic "SDSHRD01" (version in the last two bytes)
//   [8,12)  u32 sensor_count
//   [12,16) u32 sensors_per_shard
//   [16,20) u32 shard_count
//   then per shard: u32 first_sensor, u32 sensor_count,
//                   u16 dir_len, dir bytes
//   trailing u32: CRC32C of every preceding byte
constexpr char kMagic[8] = {'S', 'D', 'S', 'H', 'R', 'D', '0', '1'};
constexpr size_t kHeaderSize = 20;

// Migration manifest layout (little-endian, CRC32C-framed):
//   [0,8)   magic "SDMIG001"
//   [8,12)  u32 source catalog length
//   [12,16) u32 target catalog length
//   source catalog bytes (a full CRC-framed ShardCatalog::Encode blob)
//   target catalog bytes
//   trailing u32: CRC32C of every preceding byte
constexpr char kMigrationMagic[8] = {'S', 'D', 'M', 'I', 'G', '0', '0', '1'};
constexpr size_t kMigrationHeaderSize = 16;

std::string ManifestPath(const std::string& root) {
  return root + "/" + ShardCatalog::kManifestName;
}

std::string MigrationPath(const std::string& root) {
  return root + "/" + MigrationManifest::kFileName;
}

Status CorruptManifest(const std::string& path, const std::string& why) {
  return Status::Corruption("shard catalog " + path + ": " + why);
}

/// Write-temp-then-rename: `raw` lands at `path` atomically. A crash
/// before the rename leaves at worst a stale `path.tmp` (overwritten by
/// the next save); a crash after it leaves the complete new file. The
/// final SyncDir makes the swap durable.
Status AtomicWriteFile(Vfs* vfs, const std::string& path,
                       const std::string& raw) {
  const std::string tmp = path + ".tmp";
  Status status;
  {
    Result<std::unique_ptr<RandomAccessFile>> file =
        vfs->OpenFile(tmp, /*create=*/true);
    if (!file.ok()) {
      return file.status();
    }
    status = (*file)->Write(0, raw.data(), raw.size());
    if (status.ok()) status = (*file)->Truncate(raw.size());
    if (status.ok()) status = (*file)->Sync();
  }
  if (status.ok()) status = vfs->Rename(tmp, path);
  if (!status.ok()) {
    // Don't leave the torn temp behind. Best effort: if the device is
    // gone this fails too, and open-time recovery sweeps the stale tmp.
    (void)vfs->RemoveFile(tmp);
    return status;
  }
  return vfs->SyncDir(path);
}

/// Reads a whole manifest-sized file into memory.
Result<std::string> ReadFile(Vfs* vfs, const std::string& path) {
  SEGDIFF_ASSIGN_OR_RETURN(std::unique_ptr<RandomAccessFile> file,
                           vfs->OpenFile(path, /*create=*/false));
  SEGDIFF_ASSIGN_OR_RETURN(const uint64_t size, file->Size());
  std::string raw(size, '\0');
  if (size > 0) {
    SEGDIFF_RETURN_IF_ERROR(file->Read(0, raw.size(), raw.data()));
  }
  return raw;
}

}  // namespace

constexpr const char* ShardCatalog::kManifestName;
constexpr const char* MigrationManifest::kFileName;

ShardCatalog ShardCatalog::Place(int sensor_count, int sensors_per_shard,
                                 bool flat,
                                 const std::string& dir_prefix) {
  ShardCatalog catalog;
  catalog.sensor_count_ = sensor_count;
  catalog.sensors_per_shard_ =
      sensors_per_shard > 0 ? sensors_per_shard : sensor_count;
  if (catalog.sensors_per_shard_ <= 0) {
    catalog.sensors_per_shard_ = 1;
  }
  for (int first = 0; first < sensor_count;
       first += catalog.sensors_per_shard_) {
    ShardInfo info;
    info.first_sensor = first;
    info.sensor_count =
        std::min(catalog.sensors_per_shard_, sensor_count - first);
    if (!flat) {
      char seq[8];
      std::snprintf(seq, sizeof(seq), "%05zu", catalog.shards_.size());
      info.dir = dir_prefix + seq;
    }
    catalog.shards_.push_back(std::move(info));
  }
  return catalog;
}

Result<ShardCatalog> ShardCatalog::Decode(const char* data, size_t size,
                                          const std::string& what) {
  if (size < kHeaderSize + 4) {
    return CorruptManifest(what, "truncated (" + std::to_string(size) +
                                     " bytes)");
  }
  const uint32_t stored_crc = DecodeFixed32(data + size - 4);
  const uint32_t actual_crc = Crc32c(data, size - 4);
  if (stored_crc != actual_crc) {
    return CorruptManifest(what, "checksum mismatch");
  }
  if (std::memcmp(data, kMagic, sizeof(kMagic)) != 0) {
    return CorruptManifest(what, "bad magic or unsupported version");
  }

  ShardCatalog catalog;
  catalog.sensor_count_ = static_cast<int>(DecodeFixed32(data + 8));
  catalog.sensors_per_shard_ = static_cast<int>(DecodeFixed32(data + 12));
  const uint32_t shard_count = DecodeFixed32(data + 16);
  if (catalog.sensor_count_ < 0 || catalog.sensors_per_shard_ <= 0) {
    return CorruptManifest(what, "invalid header counts");
  }

  size_t pos = kHeaderSize;
  const size_t end = size - 4;
  int next_sensor = 0;
  for (uint32_t i = 0; i < shard_count; ++i) {
    if (pos + 10 > end) {
      return CorruptManifest(what, "shard entry overruns file");
    }
    ShardInfo info;
    info.first_sensor = static_cast<int>(DecodeFixed32(data + pos));
    info.sensor_count = static_cast<int>(DecodeFixed32(data + pos + 4));
    const uint16_t dir_len = DecodeFixed16(data + pos + 8);
    pos += 10;
    if (pos + dir_len > end) {
      return CorruptManifest(what, "shard directory name overruns file");
    }
    info.dir.assign(data + pos, dir_len);
    pos += dir_len;
    // The shard ranges must partition [0, sensor_count) in order —
    // anything else would silently drop or double-search sensors.
    if (info.first_sensor != next_sensor || info.sensor_count <= 0) {
      return CorruptManifest(
          what, "shard ranges do not partition the sensor space");
    }
    next_sensor += info.sensor_count;
    catalog.shards_.push_back(std::move(info));
  }
  if (pos != end) {
    return CorruptManifest(what, "trailing bytes after shard entries");
  }
  if (next_sensor != catalog.sensor_count_) {
    return CorruptManifest(what,
                           "shard ranges do not cover all sensors");
  }
  return catalog;
}

std::string ShardCatalog::Encode() const {
  std::string raw(kHeaderSize, '\0');
  std::memcpy(raw.data(), kMagic, sizeof(kMagic));
  EncodeFixed32(raw.data() + 8, static_cast<uint32_t>(sensor_count_));
  EncodeFixed32(raw.data() + 12, static_cast<uint32_t>(sensors_per_shard_));
  EncodeFixed32(raw.data() + 16, static_cast<uint32_t>(shards_.size()));
  for (const ShardInfo& info : shards_) {
    char entry[10];
    EncodeFixed32(entry, static_cast<uint32_t>(info.first_sensor));
    EncodeFixed32(entry + 4, static_cast<uint32_t>(info.sensor_count));
    EncodeFixed16(entry + 8, static_cast<uint16_t>(info.dir.size()));
    raw.append(entry, sizeof(entry));
    raw.append(info.dir);
  }
  char crc[4];
  EncodeFixed32(crc, Crc32c(raw.data(), raw.size()));
  raw.append(crc, sizeof(crc));
  return raw;
}

Result<ShardCatalog> ShardCatalog::Load(Vfs* vfs, const std::string& root) {
  const std::string path = ManifestPath(root);
  if (!vfs->FileExists(path)) {
    return Status::NotFound("no shard catalog: " + path);
  }
  SEGDIFF_ASSIGN_OR_RETURN(const std::string raw, ReadFile(vfs, path));
  return Decode(raw.data(), raw.size(), path);
}

Status ShardCatalog::Save(Vfs* vfs, const std::string& root) const {
  return AtomicWriteFile(vfs, ManifestPath(root), Encode());
}

std::string ShardCatalog::ShardDirPath(const std::string& root,
                                       size_t index) const {
  const ShardInfo& info = shards_[index];
  if (info.dir.empty()) {
    return root;
  }
  return root + "/" + info.dir;
}

std::string ShardCatalog::StorePath(const std::string& root,
                                    int sensor) const {
  return ShardDirPath(root, ShardOf(sensor)) + "/sensor" +
         std::to_string(sensor) + ".db";
}

Result<MigrationManifest> MigrationManifest::Load(Vfs* vfs,
                                                  const std::string& root) {
  const std::string path = MigrationPath(root);
  if (!vfs->FileExists(path)) {
    return Status::NotFound("no migration manifest: " + path);
  }
  SEGDIFF_ASSIGN_OR_RETURN(const std::string raw, ReadFile(vfs, path));
  auto corrupt = [&](const std::string& why) {
    return Status::Corruption("migration manifest " + path + ": " + why);
  };
  if (raw.size() < kMigrationHeaderSize + 4) {
    return corrupt("truncated (" + std::to_string(raw.size()) + " bytes)");
  }
  const uint32_t stored_crc = DecodeFixed32(raw.data() + raw.size() - 4);
  if (stored_crc != Crc32c(raw.data(), raw.size() - 4)) {
    return corrupt("checksum mismatch");
  }
  if (std::memcmp(raw.data(), kMigrationMagic, sizeof(kMigrationMagic)) !=
      0) {
    return corrupt("bad magic or unsupported version");
  }
  const uint64_t source_len = DecodeFixed32(raw.data() + 8);
  const uint64_t target_len = DecodeFixed32(raw.data() + 12);
  if (kMigrationHeaderSize + source_len + target_len + 4 != raw.size()) {
    return corrupt("embedded catalog lengths overrun file");
  }
  MigrationManifest manifest;
  SEGDIFF_ASSIGN_OR_RETURN(
      manifest.source,
      ShardCatalog::Decode(raw.data() + kMigrationHeaderSize, source_len,
                           path + " (source)"));
  SEGDIFF_ASSIGN_OR_RETURN(
      manifest.target,
      ShardCatalog::Decode(raw.data() + kMigrationHeaderSize + source_len,
                           target_len, path + " (target)"));
  return manifest;
}

Status MigrationManifest::Save(Vfs* vfs, const std::string& root) const {
  const std::string source_raw = source.Encode();
  const std::string target_raw = target.Encode();
  std::string raw(kMigrationHeaderSize, '\0');
  std::memcpy(raw.data(), kMigrationMagic, sizeof(kMigrationMagic));
  EncodeFixed32(raw.data() + 8, static_cast<uint32_t>(source_raw.size()));
  EncodeFixed32(raw.data() + 12, static_cast<uint32_t>(target_raw.size()));
  raw += source_raw;
  raw += target_raw;
  char crc[4];
  EncodeFixed32(crc, Crc32c(raw.data(), raw.size()));
  raw.append(crc, sizeof(crc));
  return AtomicWriteFile(vfs, MigrationPath(root), raw);
}

Status MigrationManifest::Remove(Vfs* vfs, const std::string& root) {
  const std::string path = MigrationPath(root);
  Status status = vfs->RemoveFile(path);
  if (status.IsNotFound()) {
    return Status::OK();
  }
  SEGDIFF_RETURN_IF_ERROR(status);
  return vfs->SyncDir(path);
}

}  // namespace segdiff
