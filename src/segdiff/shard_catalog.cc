#include "segdiff/shard_catalog.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <utility>

#include "common/coding.h"
#include "common/crc32c.h"

namespace segdiff {
namespace {

// Manifest layout (little-endian, CRC32C-framed):
//   [0,8)   magic "SDSHRD01" (version in the last two bytes)
//   [8,12)  u32 sensor_count
//   [12,16) u32 sensors_per_shard
//   [16,20) u32 shard_count
//   then per shard: u32 first_sensor, u32 sensor_count,
//                   u16 dir_len, dir bytes
//   trailing u32: CRC32C of every preceding byte
constexpr char kMagic[8] = {'S', 'D', 'S', 'H', 'R', 'D', '0', '1'};
constexpr size_t kHeaderSize = 20;

std::string ManifestPath(const std::string& root) {
  return root + "/" + ShardCatalog::kManifestName;
}

Status CorruptManifest(const std::string& path, const std::string& why) {
  return Status::Corruption("shard catalog " + path + ": " + why);
}

}  // namespace

constexpr const char* ShardCatalog::kManifestName;

ShardCatalog ShardCatalog::Place(int sensor_count, int sensors_per_shard,
                                 bool flat) {
  ShardCatalog catalog;
  catalog.sensor_count_ = sensor_count;
  catalog.sensors_per_shard_ =
      sensors_per_shard > 0 ? sensors_per_shard : sensor_count;
  if (catalog.sensors_per_shard_ <= 0) {
    catalog.sensors_per_shard_ = 1;
  }
  for (int first = 0; first < sensor_count;
       first += catalog.sensors_per_shard_) {
    ShardInfo info;
    info.first_sensor = first;
    info.sensor_count =
        std::min(catalog.sensors_per_shard_, sensor_count - first);
    if (!flat) {
      char name[16];
      std::snprintf(name, sizeof(name), "shard%05zu", catalog.shards_.size());
      info.dir = name;
    }
    catalog.shards_.push_back(std::move(info));
  }
  return catalog;
}

Result<ShardCatalog> ShardCatalog::Load(Vfs* vfs, const std::string& root) {
  const std::string path = ManifestPath(root);
  if (!vfs->FileExists(path)) {
    return Status::NotFound("no shard catalog: " + path);
  }
  SEGDIFF_ASSIGN_OR_RETURN(std::unique_ptr<RandomAccessFile> file,
                           vfs->OpenFile(path, /*create=*/false));
  SEGDIFF_ASSIGN_OR_RETURN(const uint64_t size, file->Size());
  if (size < kHeaderSize + 4) {
    return CorruptManifest(path, "truncated (" + std::to_string(size) +
                                     " bytes)");
  }
  std::string raw(size, '\0');
  SEGDIFF_RETURN_IF_ERROR(file->Read(0, raw.size(), raw.data()));

  const uint32_t stored_crc = DecodeFixed32(raw.data() + raw.size() - 4);
  const uint32_t actual_crc = Crc32c(raw.data(), raw.size() - 4);
  if (stored_crc != actual_crc) {
    return CorruptManifest(path, "checksum mismatch");
  }
  if (std::memcmp(raw.data(), kMagic, sizeof(kMagic)) != 0) {
    return CorruptManifest(path, "bad magic or unsupported version");
  }

  ShardCatalog catalog;
  catalog.sensor_count_ = static_cast<int>(DecodeFixed32(raw.data() + 8));
  catalog.sensors_per_shard_ =
      static_cast<int>(DecodeFixed32(raw.data() + 12));
  const uint32_t shard_count = DecodeFixed32(raw.data() + 16);
  if (catalog.sensor_count_ < 0 || catalog.sensors_per_shard_ <= 0) {
    return CorruptManifest(path, "invalid header counts");
  }

  size_t pos = kHeaderSize;
  const size_t end = raw.size() - 4;
  int next_sensor = 0;
  for (uint32_t i = 0; i < shard_count; ++i) {
    if (pos + 10 > end) {
      return CorruptManifest(path, "shard entry overruns file");
    }
    ShardInfo info;
    info.first_sensor = static_cast<int>(DecodeFixed32(raw.data() + pos));
    info.sensor_count = static_cast<int>(DecodeFixed32(raw.data() + pos + 4));
    const uint16_t dir_len = DecodeFixed16(raw.data() + pos + 8);
    pos += 10;
    if (pos + dir_len > end) {
      return CorruptManifest(path, "shard directory name overruns file");
    }
    info.dir.assign(raw.data() + pos, dir_len);
    pos += dir_len;
    // The shard ranges must partition [0, sensor_count) in order —
    // anything else would silently drop or double-search sensors.
    if (info.first_sensor != next_sensor || info.sensor_count <= 0) {
      return CorruptManifest(
          path, "shard ranges do not partition the sensor space");
    }
    next_sensor += info.sensor_count;
    catalog.shards_.push_back(std::move(info));
  }
  if (pos != end) {
    return CorruptManifest(path, "trailing bytes after shard entries");
  }
  if (next_sensor != catalog.sensor_count_) {
    return CorruptManifest(path,
                           "shard ranges do not cover all sensors");
  }
  return catalog;
}

Status ShardCatalog::Save(Vfs* vfs, const std::string& root) const {
  std::string raw(kHeaderSize, '\0');
  std::memcpy(raw.data(), kMagic, sizeof(kMagic));
  EncodeFixed32(raw.data() + 8, static_cast<uint32_t>(sensor_count_));
  EncodeFixed32(raw.data() + 12, static_cast<uint32_t>(sensors_per_shard_));
  EncodeFixed32(raw.data() + 16, static_cast<uint32_t>(shards_.size()));
  for (const ShardInfo& info : shards_) {
    char entry[10];
    EncodeFixed32(entry, static_cast<uint32_t>(info.first_sensor));
    EncodeFixed32(entry + 4, static_cast<uint32_t>(info.sensor_count));
    EncodeFixed16(entry + 8, static_cast<uint16_t>(info.dir.size()));
    raw.append(entry, sizeof(entry));
    raw.append(info.dir);
  }
  char crc[4];
  EncodeFixed32(crc, Crc32c(raw.data(), raw.size()));
  raw.append(crc, sizeof(crc));

  const std::string path = ManifestPath(root);
  SEGDIFF_ASSIGN_OR_RETURN(std::unique_ptr<RandomAccessFile> file,
                           vfs->OpenFile(path, /*create=*/true));
  SEGDIFF_RETURN_IF_ERROR(file->Write(0, raw.data(), raw.size()));
  SEGDIFF_RETURN_IF_ERROR(file->Truncate(raw.size()));
  SEGDIFF_RETURN_IF_ERROR(file->Sync());
  return vfs->SyncDir(path);
}

std::string ShardCatalog::ShardDirPath(const std::string& root,
                                       size_t index) const {
  const ShardInfo& info = shards_[index];
  if (info.dir.empty()) {
    return root;
  }
  return root + "/" + info.dir;
}

std::string ShardCatalog::StorePath(const std::string& root,
                                    int sensor) const {
  return ShardDirPath(root, ShardOf(sensor)) + "/sensor" +
         std::to_string(sensor) + ".db";
}

}  // namespace segdiff
