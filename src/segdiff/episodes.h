// Result post-processing for exploration.
//
// A single physical event (one cold-air-drainage night, say) is usually
// returned as many overlapping segment pairs — the paper's Figure 1 (c)
// shows one such pair. CoalesceEpisodes merges overlapping pairs into
// maximal episodes so a user sees "8 events", not "571 pairs"; Refine*
// then recovers the exact extremal event inside a pair (or episode span)
// from the original series, completing the drill-down loop the paper
// describes ("biologists can further explore the characteristics of
// data collected in these periods").

#ifndef SEGDIFF_SEGDIFF_EPISODES_H_
#define SEGDIFF_SEGDIFF_EPISODES_H_

#include <vector>

#include "common/result.h"
#include "feature/schema.h"
#include "ts/series.h"

namespace segdiff {

/// A maximal run of overlapping result pairs.
struct Episode {
  double t_begin = 0.0;  ///< earliest t_d among merged pairs
  double t_end = 0.0;    ///< latest t_a among merged pairs
  size_t pair_count = 0;
};

/// Merges pairs whose [t_d, t_a] spans overlap (or lie within
/// `max_gap_s` of each other) into episodes, ordered by time.
std::vector<Episode> CoalesceEpisodes(const std::vector<PairId>& pairs,
                                      double max_gap_s = 0.0);

}  // namespace segdiff

#endif  // SEGDIFF_SEGDIFF_EPISODES_H_
