#include "segdiff/segdiff_index.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <utility>

#include "common/bytes.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "query/planner.h"
#include "query/predicate.h"
#include "query/scan_kernel.h"

namespace segdiff {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Catalog meta blob holding the resumable ingest state.
constexpr char kIngestStateKey[] = "segdiff.ingest";
constexpr uint32_t kIngestStateMagic = 0x5347494E;  // "SGIN"
constexpr uint32_t kIngestStateVersion = 1;

std::string FeatureTableName(SearchKind kind, int corner_count) {
  std::string name(SearchKindName(kind));
  name.push_back(static_cast<char>('0' + corner_count));
  return name;
}

/// Column index of corner j's dt (j is 1-based).
size_t DtCol(int j) { return 2 * static_cast<size_t>(j - 1); }
/// Column index of corner j's dv.
size_t DvCol(int j) { return 2 * static_cast<size_t>(j - 1) + 1; }

/// Pair key columns of a k-corner feature table.
size_t TdCol(int k) { return 2 * static_cast<size_t>(k); }
size_t TcCol(int k) { return 2 * static_cast<size_t>(k) + 1; }
size_t TbCol(int k) { return 2 * static_cast<size_t>(k) + 2; }

/// One point or line range query against a feature table (Section 4.4).
struct RangeQuery {
  bool is_line = false;
  int corner = 1;  ///< point: corner j; line: edge (j, j+1)
};

/// Estimated fraction of rows satisfying `cond`, assuming a uniform
/// distribution over the column's zone-map-observed [lo, hi]. A NaN
/// query bound propagates into the result, which the cost-based planner
/// rejects (falling back to the sequential scan).
double ConditionFraction(const ZoneMap::ColumnRange& range,
                         const ColumnCondition& cond) {
  if (!(range.lo <= range.hi)) {
    return 1.0;  // column never observed: no evidence to plan on
  }
  const double width = range.hi - range.lo;
  switch (cond.op) {
    case CmpOp::kLt:
    case CmpOp::kLe:
      if (width <= 0.0) {
        return cond.value >= range.lo ? 1.0 : 0.0;
      }
      return std::clamp((cond.value - range.lo) / width, 0.0, 1.0);
    case CmpOp::kGt:
    case CmpOp::kGe:
      if (width <= 0.0) {
        return cond.value <= range.lo ? 1.0 : 0.0;
      }
      return std::clamp((range.hi - cond.value) / width, 0.0, 1.0);
    case CmpOp::kEq:
      return (cond.value >= range.lo && cond.value <= range.hi) ? 0.1 : 0.0;
  }
  return 1.0;
}

bool PairIdLess(const PairId& a, const PairId& b) {
  if (a.t_d != b.t_d) return a.t_d < b.t_d;
  if (a.t_c != b.t_c) return a.t_c < b.t_c;
  return a.t_b < b.t_b;
}
bool PairIdKeyEq(const PairId& a, const PairId& b) {
  return a.t_d == b.t_d && a.t_c == b.t_c && a.t_b == b.t_b;
}

}  // namespace

Status QuarantineScanError(Status status, const std::string& what) {
  if (status.ok() || !status.IsCorruption()) {
    return status;
  }
  return Status::Corruption(
      "quarantined range: " + what + " has unreadable pages [" +
      std::string(status.message()) +
      "]; run `segdiff_cli verify --scrub` to map the damage, then "
      "rebuild or compact from a healthy replica");
}

SegDiffIndex::SegDiffIndex(SegDiffOptions options)
    : options_(std::move(options)), admission_(options_.admission) {}

Result<std::unique_ptr<SegDiffIndex>> SegDiffIndex::Open(
    const std::string& path, const SegDiffOptions& options) {
  if (options.eps < 0.0) {
    return Status::InvalidArgument("eps must be >= 0");
  }
  if (options.window_s <= 0.0) {
    return Status::InvalidArgument("window_s must be positive");
  }
  std::unique_ptr<SegDiffIndex> index(new SegDiffIndex(options));
  Status status = index->OpenImpl(path);
  if (!status.ok()) {
    // A failed open must not mutate the store: the destructor will not
    // save (default/partial) ingest state over the persisted blob, and
    // the abandoned database handle neither checkpoints nor flushes on
    // close — the files stay as they were, recovery still possible.
    if (index->db_ != nullptr) {
      index->db_->Abandon();
    }
    return status;
  }
  index->opened_ = true;
  return index;
}

Status SegDiffIndex::OpenImpl(const std::string& path) {
  DatabaseOptions db_options;
  db_options.buffer_pool_pages = options_.buffer_pool_pages;
  db_options.create_if_missing = options_.create_if_missing;
  db_options.sim_seq_read_ns = options_.sim_seq_read_ns;
  db_options.sim_random_read_ns = options_.sim_random_read_ns;
  db_options.vfs = options_.vfs;
  db_options.verify_checksums = options_.verify_checksums;
  db_options.wal = options_.wal;
  db_options.wal_group_commit_ms = options_.wal_group_commit_ms;
  // Engine stores log the observation stream, not the rows it fans out
  // into: one kObservation record redoes the whole pipeline step
  // (segment row + up to 6 feature rows + index inserts) on replay.
  db_options.wal_observation_log = true;
  SEGDIFF_ASSIGN_OR_RETURN(db_, Database::Open(path, db_options));
  SEGDIFF_RETURN_IF_ERROR(InitTables());
  SEGDIFF_RETURN_IF_ERROR(RestoreIngestState());

  // Streaming pipeline: segmenter -> segment directory + extractor ->
  // feature tables. Built after RestoreIngestState so a reopened store's
  // adopted build parameters (eps, window, collected kinds) apply.
  ExtractorOptions extractor_options;
  extractor_options.eps = options_.eps;
  extractor_options.window_s = options_.window_s;
  extractor_options.collect_drops = options_.collect_drops;
  extractor_options.collect_jumps = options_.collect_jumps;
  extractor_ = std::make_unique<FeatureExtractor>(
      extractor_options,
      [this](const PairFeatures& row) { return WriteFeatureRow(row); });
  SegmentationOptions seg_options;
  seg_options.max_error = options_.eps / 2.0;
  segmenter_ = std::make_unique<SlidingWindowSegmenter>(
      seg_options,
      [this](const DataSegment& segment) { return OnSegment(segment); });
  if (restored_extractor_ != nullptr) {
    SEGDIFF_RETURN_IF_ERROR(extractor_->RestoreState(*restored_extractor_));
    restored_extractor_.reset();
  }
  if (restored_segmenter_ != nullptr) {
    SEGDIFF_RETURN_IF_ERROR(segmenter_->RestoreState(*restored_segmenter_));
    restored_segmenter_.reset();
  }
  return DrainRecoveredOps();
}

Status SegDiffIndex::DrainRecoveredOps() {
  if (!db_->HasRecoveredOps()) {
    return Status::OK();
  }
  std::vector<WalRecord> ops = db_->TakeRecoveredOps();
  // Replay through the normal pipeline, suspended so nothing is logged
  // twice. The restored ingest-state blob is checkpoint-consistent with
  // the tables (SaveIngestState never WAL-logs it), so the backlog
  // normally applies in full; any observation the restored state does
  // already cover (e.g. a legacy store upgraded mid-stream) is rejected
  // by the segmenter's strictly-increasing-timestamp rule and skipped,
  // which keeps the replay idempotent.
  Wal::Suspend suspend(db_->wal());
  for (const WalRecord& op : ops) {
    if (op.type == WalRecordType::kFlush) {
      SEGDIFF_RETURN_IF_ERROR(segmenter_->Flush());
      continue;
    }
    SEGDIFF_ASSIGN_OR_RETURN(WalObservation obs,
                             DecodeWalObservation(op.payload));
    Status status = segmenter_->Add(Sample{obs.t, obs.v});
    if (status.IsInvalidArgument()) {
      continue;  // already absorbed before the crash
    }
    SEGDIFF_RETURN_IF_ERROR(status);
    ++observations_;
  }
  return Status::OK();
}

SegDiffIndex::~SegDiffIndex() {
  // Only a fully-opened index has a pipeline to save; after a failed
  // Open, segmenter_/extractor_ may be null and the persisted state must
  // stay whatever it was (db_'s destructor also skips its checkpoint).
  if (opened_) {
    SaveIngestState();  // db_'s destructor checkpoints the catalog
  }
}

Status SegDiffIndex::InitTables() {
  // CreateTable checkpoints the catalog (so WAL-logged rows always find
  // their table on replay), which means a crash while a fresh store was
  // being laid out can leave a durable PREFIX of the tables. Creation is
  // therefore written to be idempotent: every table and index is
  // ensured individually, so reopening a torn store finishes the job.
  const bool fresh = db_->tables().empty();
  auto ensure_table = [this](const std::string& name,
                             TableSchema schema) -> Result<Table*> {
    Result<Table*> existing = db_->GetTable(name);
    if (existing.ok() || !existing.status().IsNotFound()) {
      return existing;
    }
    return db_->CreateTable(name, std::move(schema));
  };
  SEGDIFF_ASSIGN_OR_RETURN(TableSchema seg_schema,
                           DoubleSchema({"t_s", "v_s", "t_e", "v_e"}));
  SEGDIFF_ASSIGN_OR_RETURN(segments_table_,
                           ensure_table("segments", std::move(seg_schema)));
  // Whether indexes exist is a property of the store, not of this Open
  // call: adopt it from the first feature table so resumed appends keep
  // the attached indexes fed. A store still mid-creation (some tables
  // missing) keeps the requested option instead.
  {
    Result<Table*> first = db_->GetTable(FeatureTableName(SearchKind::kDrop, 1));
    if (first.ok()) {
      options_.build_indexes = !(*first)->indexes().empty();
    } else if (!first.status().IsNotFound()) {
      return first.status();
    }
  }
  for (SearchKind kind : {SearchKind::kDrop, SearchKind::kJump}) {
    for (int k = 1; k <= 3; ++k) {
      std::vector<std::string> columns;
      for (int j = 1; j <= k; ++j) {
        columns.push_back("dt" + std::to_string(j));
        columns.push_back("dv" + std::to_string(j));
      }
      columns.push_back("td");
      columns.push_back("tc");
      columns.push_back("tb");
      SEGDIFF_ASSIGN_OR_RETURN(TableSchema schema, DoubleSchema(columns));
      SEGDIFF_ASSIGN_OR_RETURN(
          Table * table,
          ensure_table(FeatureTableName(kind, k), std::move(schema)));
      feature_tables_[static_cast<int>(kind)][k - 1] = table;
      if (options_.build_indexes) {
        auto ensure_index = [&table](const std::string& name,
                                     std::vector<std::string> cols) -> Status {
          if (table->GetIndex(name).ok()) {
            return Status::OK();
          }
          return table->CreateIndex(name, std::move(cols)).status();
        };
        for (int j = 1; j <= k; ++j) {
          SEGDIFF_RETURN_IF_ERROR(ensure_index(
              "pt" + std::to_string(j),
              {"dt" + std::to_string(j), "dv" + std::to_string(j)}));
        }
        for (int j = 1; j < k; ++j) {
          SEGDIFF_RETURN_IF_ERROR(ensure_index(
              "ln" + std::to_string(j),
              {"dt" + std::to_string(j), "dv" + std::to_string(j),
               "dt" + std::to_string(j + 1), "dv" + std::to_string(j + 1)}));
        }
      }
    }
  }
  segment_dir_fresh_ = fresh;
  return Status::OK();
}

Status SegDiffIndex::WriteFeatureRow(const PairFeatures& row) {
  const int k = row.corners.count;
  if (k < 1 || k > 3) {
    return Status::Internal("feature row with bad corner count");
  }
  Table* table = feature_tables_[static_cast<int>(row.kind)][k - 1];
  row_buf_.clear();
  for (int i = 0; i < k; ++i) {
    row_buf_.push_back(row.corners.pts[i].dt);
    row_buf_.push_back(row.corners.pts[i].dv);
  }
  row_buf_.push_back(row.id.t_d);
  row_buf_.push_back(row.id.t_c);
  row_buf_.push_back(row.id.t_b);
  // Table::InsertDoubles also folds the row into the table's zone map,
  // so the per-page stats the planner and pruned scans use stay current
  // with every flushed feature.
  return table->InsertDoubles(row_buf_).status();
}

Status SegDiffIndex::OnSegment(const DataSegment& segment) {
  SEGDIFF_RETURN_IF_ERROR(segments_table_
                              ->InsertDoubles({segment.start.t, segment.start.v,
                                               segment.end.t, segment.end.v})
                              .status());
  {
    // Searches resolve t_a from segment_dir_ while ingest appends to it.
    std::lock_guard<std::mutex> lock(lazy_mu_);
    segment_dir_[segment.start.t] = segment.end.t;
  }
  return extractor_->AddSegment(segment);
}

Status SegDiffIndex::AppendObservation(double t, double v) {
  std::lock_guard<std::mutex> lock(ingest_mu_);
  Status status = [&]() -> Status {
    if (db_->degraded()) {
      // Fail fast with the recorded reason instead of tearing further
      // state; searches keep running off the durable prefix.
      return Status::NoSpace("store is degraded (read-only): " +
                             db_->GetHealth().degraded_reason);
    }
    if (db_->wal() != nullptr) {
      // WAL-before-data: the redo record is in the log (buffered for the
      // next group commit) before the pipeline touches any page.
      SEGDIFF_RETURN_IF_ERROR(db_->wal()->AppendObservation(t, v).status());
    }
    SEGDIFF_RETURN_IF_ERROR(segmenter_->Add(Sample{t, v}));
    ++observations_;
    return Status::OK();
  }();
  if (!status.ok()) {
    // A no-space failure flips the store into degraded read-only mode;
    // the observation was not acknowledged and will not be partially
    // visible (WAL-before-data keeps replay consistent).
    db_->NoteStorageFailure(status);
  }
  return status;
}

Status SegDiffIndex::FlushPending() {
  std::lock_guard<std::mutex> lock(ingest_mu_);
  Status status = [&]() -> Status {
    Wal* wal = db_->wal();
    if (wal != nullptr) {
      SEGDIFF_RETURN_IF_ERROR(wal->AppendFlushMarker().status());
    }
    SEGDIFF_RETURN_IF_ERROR(segmenter_->Flush());
    if (wal != nullptr) {
      // Acknowledged means durable: everything appended so far survives a
      // crash from here on. State is saved first so an auto-checkpoint
      // (which truncates the log) leaves a consistent resume point.
      SaveIngestState();
      SEGDIFF_RETURN_IF_ERROR(wal->Sync());
      SEGDIFF_RETURN_IF_ERROR(db_->MaybeAutoCheckpoint());
    }
    return Status::OK();
  }();
  if (!status.ok()) {
    db_->NoteStorageFailure(status);
  }
  return status;
}

Status SegDiffIndex::IngestSeries(const Series& series) {
  if (series.size() < 2) {
    return Status::InvalidArgument("series must have at least 2 samples");
  }
  return FeatureSink::IngestSeries(series);
}

void SegDiffIndex::SaveIngestState() {
  const SegmenterState seg = segmenter_->SaveState();
  const ExtractorState ext = extractor_->SaveState();
  ByteWriter w;
  w.U32(kIngestStateMagic);
  w.U32(kIngestStateVersion);
  w.F64(options_.eps);
  w.F64(options_.window_s);
  w.U8(options_.collect_drops ? 1 : 0);
  w.U8(options_.collect_jumps ? 1 : 0);
  w.U64(observations_);
  w.U8(seg.has_anchor ? 1 : 0);
  w.U8(seg.has_endpoint ? 1 : 0);
  w.U8(seg.finished ? 1 : 0);
  w.F64(seg.anchor.t);
  w.F64(seg.anchor.v);
  w.F64(seg.endpoint.t);
  w.F64(seg.endpoint.v);
  w.F64(seg.slope_lo);
  w.F64(seg.slope_hi);
  w.U64(seg.observations);
  w.U64(seg.segments_emitted);
  w.F64(ext.last_end_t);
  w.U8(ext.has_last ? 1 : 0);
  w.U64(ext.stats.segments_in);
  w.U64(ext.stats.cross_pairs);
  w.U64(ext.stats.self_pairs);
  w.U64(ext.stats.rows_emitted);
  w.U64(ext.stats.corners_emitted);
  for (int kind = 0; kind < 2; ++kind) {
    for (int k = 0; k < 4; ++k) {
      w.U64(ext.stats.frontier_hist[kind][k]);
    }
  }
  for (int c = 0; c < 7; ++c) {
    w.U64(ext.stats.case_hist[c]);
  }
  w.U32(static_cast<uint32_t>(ext.window.size()));
  for (const DataSegment& segment : ext.window) {
    w.F64(segment.start.t);
    w.F64(segment.start.v);
    w.F64(segment.end.t);
    w.F64(segment.end.v);
  }
  // Suspended: the blob must reach the catalog only via Checkpoint,
  // which flushes the tables it describes in the same operation. A
  // kPutMeta WAL record would let recovery restore a pipeline state
  // newer than the checkpointed tables and then skip re-deriving (via
  // DrainRecoveredOps) exactly the rows that reverted with the data
  // file. The state is redundant with the observation log, so losing
  // the un-checkpointed blob costs nothing.
  Wal::Suspend suspend(db_->wal());
  // Suspended appends are no-ops, so this PutMeta cannot fail.
  (void)db_->PutMeta(kIngestStateKey, w.Take());
}

Status SegDiffIndex::RestoreIngestState() {
  auto blob = db_->GetMeta(kIngestStateKey);
  if (!blob.ok()) {
    if (!blob.status().IsNotFound()) {
      return blob.status();
    }
    // Legacy store (written before ingest-state persistence) or fresh
    // database. Non-empty legacy stores always ended with a flushed
    // trailing segment, so the resumable state is reconstructible from
    // the segment directory: replay the chain into the extractor's pair
    // window (with the standard eviction rule) and anchor the segmenter
    // at the last emitted endpoint. Lifetime counters are unknowable and
    // restart at zero.
    if (segments_table_ == nullptr || segments_table_->row_count() == 0) {
      return Status::OK();
    }
    auto extractor = std::make_unique<ExtractorState>();
    auto segmenter = std::make_unique<SegmenterState>();
    std::deque<DataSegment> window;
    // The reconstruction assumes the scan yields segments in temporal
    // (insertion) order — the anchor and pair window come from the last
    // rows seen. Validate the chain instead of trusting it: a violated
    // order would silently corrupt the resume point.
    double prev_end_t = -kInf;
    SEGDIFF_RETURN_IF_ERROR(segments_table_->Scan(
        [&](const char* record, RecordId, bool* keep_going) -> Status {
          *keep_going = true;
          DataSegment segment;
          segment.start.t = DecodeDoubleColumn(record, 0);
          segment.start.v = DecodeDoubleColumn(record, 1);
          segment.end.t = DecodeDoubleColumn(record, 2);
          segment.end.v = DecodeDoubleColumn(record, 3);
          if (!(segment.start.t < segment.end.t) ||
              segment.start.t < prev_end_t) {
            return Status::Corruption(
                "segment directory is not a temporal segment chain");
          }
          prev_end_t = segment.end.t;
          const double win_start = segment.start.t - options_.window_s;
          while (!window.empty() && window.front().end.t <= win_start) {
            window.pop_front();
          }
          window.push_back(segment);
          return Status::OK();
        }));
    extractor->window.assign(window.begin(), window.end());
    extractor->last_end_t = window.back().end.t;
    extractor->has_last = true;
    extractor->stats.segments_in = segments_table_->row_count();
    segmenter->has_anchor = true;
    segmenter->anchor = window.back().end;
    segmenter->segments_emitted = segments_table_->row_count();
    restored_extractor_ = std::move(extractor);
    restored_segmenter_ = std::move(segmenter);
    return Status::OK();
  }

  ByteReader r(*blob);
  SEGDIFF_ASSIGN_OR_RETURN(uint32_t magic, r.U32());
  SEGDIFF_ASSIGN_OR_RETURN(uint32_t version, r.U32());
  if (magic != kIngestStateMagic || version != kIngestStateVersion) {
    return Status::Corruption("bad segdiff ingest-state blob");
  }
  // Build parameters are properties of the store, not of this Open call.
  SEGDIFF_ASSIGN_OR_RETURN(options_.eps, r.F64());
  SEGDIFF_ASSIGN_OR_RETURN(options_.window_s, r.F64());
  SEGDIFF_ASSIGN_OR_RETURN(uint8_t collect_drops, r.U8());
  SEGDIFF_ASSIGN_OR_RETURN(uint8_t collect_jumps, r.U8());
  options_.collect_drops = collect_drops != 0;
  options_.collect_jumps = collect_jumps != 0;
  SEGDIFF_ASSIGN_OR_RETURN(observations_, r.U64());

  auto segmenter = std::make_unique<SegmenterState>();
  SEGDIFF_ASSIGN_OR_RETURN(uint8_t has_anchor, r.U8());
  SEGDIFF_ASSIGN_OR_RETURN(uint8_t has_endpoint, r.U8());
  SEGDIFF_ASSIGN_OR_RETURN(uint8_t finished, r.U8());
  segmenter->has_anchor = has_anchor != 0;
  segmenter->has_endpoint = has_endpoint != 0;
  segmenter->finished = finished != 0;
  SEGDIFF_ASSIGN_OR_RETURN(segmenter->anchor.t, r.F64());
  SEGDIFF_ASSIGN_OR_RETURN(segmenter->anchor.v, r.F64());
  SEGDIFF_ASSIGN_OR_RETURN(segmenter->endpoint.t, r.F64());
  SEGDIFF_ASSIGN_OR_RETURN(segmenter->endpoint.v, r.F64());
  SEGDIFF_ASSIGN_OR_RETURN(segmenter->slope_lo, r.F64());
  SEGDIFF_ASSIGN_OR_RETURN(segmenter->slope_hi, r.F64());
  SEGDIFF_ASSIGN_OR_RETURN(segmenter->observations, r.U64());
  SEGDIFF_ASSIGN_OR_RETURN(segmenter->segments_emitted, r.U64());

  auto extractor = std::make_unique<ExtractorState>();
  SEGDIFF_ASSIGN_OR_RETURN(extractor->last_end_t, r.F64());
  SEGDIFF_ASSIGN_OR_RETURN(uint8_t has_last, r.U8());
  extractor->has_last = has_last != 0;
  SEGDIFF_ASSIGN_OR_RETURN(extractor->stats.segments_in, r.U64());
  SEGDIFF_ASSIGN_OR_RETURN(extractor->stats.cross_pairs, r.U64());
  SEGDIFF_ASSIGN_OR_RETURN(extractor->stats.self_pairs, r.U64());
  SEGDIFF_ASSIGN_OR_RETURN(extractor->stats.rows_emitted, r.U64());
  SEGDIFF_ASSIGN_OR_RETURN(extractor->stats.corners_emitted, r.U64());
  for (int kind = 0; kind < 2; ++kind) {
    for (int k = 0; k < 4; ++k) {
      SEGDIFF_ASSIGN_OR_RETURN(extractor->stats.frontier_hist[kind][k],
                               r.U64());
    }
  }
  for (int c = 0; c < 7; ++c) {
    SEGDIFF_ASSIGN_OR_RETURN(extractor->stats.case_hist[c], r.U64());
  }
  SEGDIFF_ASSIGN_OR_RETURN(uint32_t window_size, r.U32());
  extractor->window.reserve(window_size);
  for (uint32_t i = 0; i < window_size; ++i) {
    DataSegment segment;
    SEGDIFF_ASSIGN_OR_RETURN(segment.start.t, r.F64());
    SEGDIFF_ASSIGN_OR_RETURN(segment.start.v, r.F64());
    SEGDIFF_ASSIGN_OR_RETURN(segment.end.t, r.F64());
    SEGDIFF_ASSIGN_OR_RETURN(segment.end.v, r.F64());
    extractor->window.push_back(segment);
  }
  restored_segmenter_ = std::move(segmenter);
  restored_extractor_ = std::move(extractor);
  return Status::OK();
}

Status SegDiffIndex::EnsureSegmentDirectory() {
  {
    // Fast path: once fresh, OnSegment keeps the directory current
    // incrementally (under lazy_mu_), so no rebuild is ever needed.
    std::lock_guard<std::mutex> lock(lazy_mu_);
    if (segment_dir_fresh_) {
      return Status::OK();
    }
  }
  // Rebuild (reopened or cache-dropped store): block ingest so the live
  // scan plus the rebuilt map form one atomic state — a segment emitted
  // mid-rebuild could otherwise vanish from the directory. Lock order:
  // ingest_mu_ before lazy_mu_, as everywhere.
  std::lock_guard<std::mutex> ingest_lock(ingest_mu_);
  std::lock_guard<std::mutex> lock(lazy_mu_);
  if (segment_dir_fresh_) {
    return Status::OK();  // another search rebuilt it while we waited
  }
  segment_dir_.clear();
  SEGDIFF_RETURN_IF_ERROR(QuarantineScanError(
      segments_table_->Scan(
          [this](const char* record, RecordId, bool* keep_going) -> Status {
            *keep_going = true;
            segment_dir_[DecodeDoubleColumn(record, 0)] =
                DecodeDoubleColumn(record, 2);
            return Status::OK();
          }),
      "the segment directory"));
  segment_dir_fresh_ = true;
  return Status::OK();
}

Status SegDiffIndex::EnsureZoneMaps(SearchKind kind) {
  // Legacy stores build zone maps lazily here; serialize against both
  // concurrent first searches (the build) and ingest (the attach would
  // race OnAppend). Fresh stores hit only the is-attached check.
  std::lock_guard<std::mutex> ingest_lock(ingest_mu_);
  std::lock_guard<std::mutex> lock(lazy_mu_);
  for (int k = 1; k <= 3; ++k) {
    Table* table = feature_tables_[static_cast<int>(kind)][k - 1];
    SEGDIFF_RETURN_IF_ERROR(QuarantineScanError(
        table->EnsureZoneMap(),
        "feature table '" + table->name() + "'"));
  }
  return Status::OK();
}

Result<std::vector<PairId>> SegDiffIndex::SearchDrops(
    double T, double V, const SearchOptions& options, SearchStats* stats) {
  if (!(V < 0.0)) {
    return Status::InvalidArgument("drop search requires V < 0");
  }
  return Search(SearchKind::kDrop, T, V, options, stats);
}

Result<std::vector<PairId>> SegDiffIndex::SearchJumps(
    double T, double V, const SearchOptions& options, SearchStats* stats) {
  if (!(V > 0.0)) {
    return Status::InvalidArgument("jump search requires V > 0");
  }
  return Search(SearchKind::kJump, T, V, options, stats);
}

ThreadPool* SegDiffIndex::EnsurePool(size_t num_threads) {
  const size_t workers = num_threads - 1;
  std::lock_guard<std::mutex> lock(pool_mu_);
  // Resizing destroys the pool (joining its workers), so it is only safe
  // when no other search holds it; concurrent searches with a different
  // num_threads simply share the existing pool — ParallelFor spreads
  // over whatever workers exist plus the calling thread, so only the
  // parallelism degree differs, never the results.
  if (pool_ == nullptr ||
      (pool_->size() != workers && pool_users_ == 0)) {
    pool_ = std::make_unique<ThreadPool>(workers);
  }
  ++pool_users_;
  return pool_.get();
}

void SegDiffIndex::ReleasePool() {
  std::lock_guard<std::mutex> lock(pool_mu_);
  --pool_users_;
}

Result<std::vector<PairId>> SegDiffIndex::Search(SearchKind kind, double T,
                                                 double V,
                                                 const SearchOptions& options,
                                                 SearchStats* stats) {
  if (!(T > 0.0)) {
    return Status::InvalidArgument("T must be positive");
  }
  if (T > options_.window_s) {
    return Status::InvalidArgument(
        "T exceeds the configured window w; rebuild with a larger window");
  }
  Stopwatch stopwatch;
  SearchStats local;

  // Governance shell: one context shared by every thread of this search,
  // one budget charged by result growth, one admission slot held for the
  // query's whole execution.
  MemoryBudget budget(options.max_result_bytes);
  QueryContext ctx;
  ctx.cancel = options.cancel;
  ctx.deadline = options.deadline_ms > 0
                     ? Deadline::Earlier(options.deadline,
                                         Deadline::AfterMillis(
                                             options.deadline_ms))
                     : options.deadline;
  ctx.budget = &budget;

  Stopwatch admission_watch;
  Result<AdmissionController::Ticket> ticket =
      admission_.Admit(ctx, options.priority);
  if (!ticket.ok()) {
    admission_.RecordOutcome(ticket.status(), 0, false);
    return ticket.status();
  }
  local.admission_wait_ms = admission_watch.ElapsedMillis();

  // 0/1 stays serial (paper semantics); explicit parallelism is clamped
  // by the store's per-query worker limit.
  const size_t num_threads = options.num_threads <= 1
                                 ? options.num_threads
                                 : admission_.ClampThreads(
                                       options.num_threads);
  ThreadPool* pool = num_threads > 1 ? EnsurePool(num_threads) : nullptr;

  // Freeze the view this search reads: taken between ingest operations
  // (under ingest_mu_), so it is a consistent cut of every table, and
  // the search needs no further coordination with concurrent appends.
  DatabaseSnapshot snapshot;
  {
    std::lock_guard<std::mutex> lock(ingest_mu_);
    snapshot = db_->CreateSnapshot();
    local.snapshot_observations = observations_;
  }

  // With a stats out-param the search degrades gracefully over
  // quarantined pages (routing around them, flagging the result
  // partial); without one there is nowhere to surface the flag, so
  // corruption stays a hard error.
  const bool allow_partial = stats != nullptr;
  std::vector<PairId> results;
  Status run = SearchImpl(kind, T, V, options, num_threads, pool, ctx,
                          snapshot, allow_partial, &results, &local);
  if (pool != nullptr) {
    ReleasePool();
  }

  bool truncated = false;
  if (!run.ok()) {
    if (run.IsResourceExhausted() && budget.breached() && stats != nullptr) {
      // Budget breach degrades gracefully: keep the pairs collected so
      // far and flag the cut. Without a stats out-param there is nowhere
      // to surface the flag, so fail instead — never a silent cut.
      truncated = true;
    } else {
      admission_.RecordOutcome(run, budget.peak(),
                               run.IsResourceExhausted() &&
                                   budget.breached());
      return run;
    }
  }

  // Union of all queries: dedupe on (t_d, t_c, t_b).
  std::sort(results.begin(), results.end(), PairIdLess);
  results.erase(std::unique(results.begin(), results.end(), PairIdKeyEq),
                results.end());

  // Materialize t_a from the segment directory. Every pair came from
  // the snapshot, so its segment is in the directory (which only grows
  // under concurrent ingest — lookups happen under lazy_mu_ because
  // OnSegment inserts while we read).
  Status fin = EnsureSegmentDirectory();
  if (fin.ok()) {
    std::lock_guard<std::mutex> lock(lazy_mu_);
    for (PairId& id : results) {
      auto it = segment_dir_.find(id.t_b);
      if (it == segment_dir_.end()) {
        fin = Status::Corruption("feature row references unknown segment");
        break;
      }
      id.t_a = it->second;
    }
  }
  if (!fin.ok()) {
    admission_.RecordOutcome(fin, budget.peak(), false);
    return fin;
  }

  local.pairs_returned = results.size();
  local.truncated = truncated;
  local.partial = local.scan.pages_quarantined > 0 ||
                  local.scan.rows_quarantined > 0;
  local.result_bytes_peak = budget.peak();
  local.seconds = stopwatch.ElapsedSeconds();
  admission_.RecordOutcome(Status::OK(), budget.peak(), truncated);
  if (stats != nullptr) {
    *stats = local;
  }
  return results;
}

Status SegDiffIndex::SearchImpl(SearchKind kind, double T, double V,
                                const SearchOptions& options,
                                size_t num_threads, ThreadPool* pool,
                                const QueryContext& ctx,
                                const DatabaseSnapshot& snapshot,
                                bool allow_partial,
                                std::vector<PairId>* results,
                                SearchStats* local) {
  const bool drop = kind == SearchKind::kDrop;

  // Everything that lazily mutates index state happens before any task
  // can run on a worker thread; the tasks themselves are read-only.
  // Zone maps drive both page pruning inside the sequential scans and
  // the kAuto cost model; legacy stores build theirs here, once.
  SEGDIFF_RETURN_IF_ERROR(EnsureZoneMaps(kind));

  // Executor-level governance: every scan below checks `ctx` at page
  // granularity (and the index walks every kGovernanceCheckInterval
  // entries). Every scan and index descent reads the search's frozen
  // snapshot, never the moving live tables.
  SeqScanOptions scan_options;
  scan_options.context = &ctx;
  scan_options.snapshot = &snapshot;
  scan_options.skip_quarantined = allow_partial;

  // Builds the paper's predicate for one query, for sequential scans.
  auto make_predicate = [drop, T, V](const RangeQuery& query) {
    Predicate predicate;
    if (!query.is_line) {
      predicate.And(DtCol(query.corner), CmpOp::kLe, T);
      predicate.And(DvCol(query.corner), drop ? CmpOp::kLe : CmpOp::kGe,
                    V);
      return predicate;
    }
    const size_t dt1 = DtCol(query.corner);
    const size_t dv1 = DvCol(query.corner);
    const size_t dt2 = DtCol(query.corner + 1);
    const size_t dv2 = DvCol(query.corner + 1);
    predicate.And(dt1, CmpOp::kLe, T);
    predicate.And(dv1, drop ? CmpOp::kGt : CmpOp::kLt, V);
    predicate.And(dt2, CmpOp::kGt, T);
    predicate.And(dv2, drop ? CmpOp::kLt : CmpOp::kGt, V);
    predicate.AndResidual([=](const char* record) {
      const double a_dt = DecodeDoubleColumn(record, dt1);
      const double a_dv = DecodeDoubleColumn(record, dv1);
      const double b_dt = DecodeDoubleColumn(record, dt2);
      const double b_dv = DecodeDoubleColumn(record, dv2);
      if (b_dt <= a_dt) {
        return false;
      }
      const double at_T = a_dv + (b_dv - a_dv) / (b_dt - a_dt) * (T - a_dt);
      return drop ? at_T <= V : at_T >= V;
    });
    return predicate;
  };

  // One executable unit: a fused whole-table pass, or a single
  // point/line range query with its access path already resolved.
  struct QueryTask {
    int k = 1;
    Table* table = nullptr;
    bool fused = false;
    RangeQuery query;
    QueryMode mode = QueryMode::kSeqScan;
  };
  std::vector<QueryTask> tasks;
  for (int k = 1; k <= 3; ++k) {
    Table* table = feature_tables_[static_cast<int>(kind)][k - 1];
    // Row counts, page counts, and zone maps all come from the frozen
    // view: concurrent ingest must affect neither the plan nor the
    // result. Columnar segments are immutable, so the live directory is
    // the snapshot directory.
    const TableSnapshotView* view = snapshot.TableView(table->name());
    if (view == nullptr) {
      return Status::Internal("search snapshot does not cover table '" +
                              table->name() + "'");
    }
    const ColumnStore* columnar = table->columnar();
    const uint64_t snap_rows =
        view->heap_meta.record_count +
        (columnar != nullptr ? columnar->row_count() : 0);
    if (snap_rows == 0) {
      continue;
    }
    if (options.mode == QueryMode::kSeqScan && options.fused_scan) {
      tasks.push_back(QueryTask{k, table, true, RangeQuery{},
                                QueryMode::kSeqScan});
      continue;
    }
    std::vector<RangeQuery> queries;
    for (int j = 1; j <= k; ++j) {
      queries.push_back(RangeQuery{false, j});
    }
    for (int j = 1; j < k; ++j) {
      queries.push_back(RangeQuery{true, j});
    }
    for (const RangeQuery& query : queries) {
      QueryMode mode = options.mode;
      if (mode == QueryMode::kIndexScan && !options_.build_indexes) {
        return Status::InvalidArgument(
            "index scan requested but indexes were not built");
      }
      if (mode == QueryMode::kAuto) {
        const ZoneMap* zone_map = view->zone_map.get();
        if (zone_map == nullptr && columnar == nullptr) {
          mode = QueryMode::kSeqScan;  // no stats: always-correct default
        } else {
          // Price the sequential side at what the pruned scan will
          // actually evaluate — heap pages surviving the zone map plus
          // columnar pages surviving the segment directory — and the
          // index side from real per-column ranges over both formats.
          const Predicate predicate = make_predicate(query);
          TableStatsView stats_view;
          stats_view.row_count = snap_rows;
          stats_view.pages_total = view->heap_meta.page_count;
          stats_view.pages_after_pruning = 0;
          if (zone_map != nullptr) {
            const ZoneSurvey survey =
                SurveyZones(*zone_map, predicate.conditions());
            // Pages without a zone (e.g. crash-recovered tails) cannot
            // be pruned; keep them on the sequential side's bill.
            stats_view.pages_after_pruning =
                survey.zones_surviving +
                (stats_view.pages_total > survey.zones_total
                     ? stats_view.pages_total - survey.zones_total
                     : 0);
          } else {
            stats_view.pages_after_pruning = stats_view.pages_total;
          }
          if (columnar != nullptr) {
            const ColumnarSurvey survey =
                SurveyColumnarSegments(*columnar, predicate.conditions());
            stats_view.pages_total += survey.pages_total;
            stats_view.pages_after_pruning += survey.pages_surviving;
            const uint64_t col_rows = columnar->row_count();
            if (stats_view.row_count > 0) {
              stats_view.random_fetch_cost_scale =
                  (static_cast<double>(stats_view.row_count - col_rows) +
                   kColumnarFetchCostScale * static_cast<double>(col_rows)) /
                  static_cast<double>(stats_view.row_count);
            }
          }
          // Per-column global ranges merged across formats.
          auto global_range = [&](size_t column) {
            ZoneMap::ColumnRange range{1.0, -1.0, false};
            if (zone_map != nullptr) {
              range = zone_map->GlobalRange(column);
            }
            if (columnar != nullptr) {
              const ZoneMap::ColumnRange cr =
                  ColumnarGlobalRange(*columnar, column);
              if (cr.lo <= cr.hi) {
                if (range.lo <= range.hi) {
                  range.lo = std::min(range.lo, cr.lo);
                  range.hi = std::max(range.hi, cr.hi);
                } else {
                  range.lo = cr.lo;
                  range.hi = cr.hi;
                }
              }
              range.has_nan = range.has_nan || cr.has_nan;
            }
            return range;
          };
          stats_view.index_entry_fraction = ConditionFraction(
              global_range(predicate.conditions().front().column),
              predicate.conditions().front());
          stats_view.heap_fetch_fraction = 1.0;
          for (const ColumnCondition& cond : predicate.conditions()) {
            stats_view.heap_fetch_fraction *=
                ConditionFraction(global_range(cond.column), cond);
          }
          const PlanChoice choice =
              ChooseAccessPath(stats_view, options_.build_indexes);
          mode = choice.path == AccessPath::kIndexScan ? QueryMode::kIndexScan
                                                       : QueryMode::kSeqScan;
        }
      }
      tasks.push_back(QueryTask{k, table, false, query, mode});
    }
  }

  // Runs one task, collecting matches into `out` (private to the task)
  // and execution counters into `scan`. Fused tasks may additionally
  // partition their single pass across the pool by heap page.
  auto run_task = [&](const QueryTask& task, std::vector<PairId>* out,
                      ScanStats* scan) -> Status {
    const int k = task.k;
    MemoryBudget* budget = ctx.budget;
    const RowCallback collect = [out, k, budget](const char* record,
                                                 RecordId) -> Status {
      // Result-set growth is what the memory budget charges; a breach
      // aborts this task (and, via the shared budget, every sibling).
      if (budget != nullptr && !budget->Charge(sizeof(PairId))) {
        return budget->Exceeded();
      }
      PairId id;
      id.t_d = DecodeDoubleColumn(record, TdCol(k));
      id.t_c = DecodeDoubleColumn(record, TcCol(k));
      id.t_b = DecodeDoubleColumn(record, TbCol(k));
      id.t_a = 0.0;  // resolved after dedup
      out->push_back(id);
      return Status::OK();
    };
    if (task.fused) {
      // One pass evaluating the OR of every query's conditions.
      std::vector<RangeQuery> queries;
      for (int j = 1; j <= k; ++j) {
        queries.push_back(RangeQuery{false, j});
      }
      for (int j = 1; j < k; ++j) {
        queries.push_back(RangeQuery{true, j});
      }
      std::vector<Predicate> predicates;
      predicates.reserve(queries.size());
      for (const RangeQuery& query : queries) {
        predicates.push_back(make_predicate(query));
      }
      Predicate fused;
      fused.AndResidual([&predicates](const char* record) {
        for (const Predicate& p : predicates) {
          if (p.Matches(record)) {
            return true;
          }
        }
        return false;
      });
      if (pool == nullptr) {
        return SeqScan(*task.table, fused, collect, scan, scan_options);
      }
      std::vector<std::vector<PairId>> partition_out(num_threads);
      Status status = ParallelSeqScan(
          *task.table, fused, pool, num_threads,
          [&partition_out, k, budget](size_t p) -> RowCallback {
            std::vector<PairId>* sink = &partition_out[p];
            return [sink, k, budget](const char* record,
                                     RecordId) -> Status {
              if (budget != nullptr && !budget->Charge(sizeof(PairId))) {
                return budget->Exceeded();
              }
              PairId id;
              id.t_d = DecodeDoubleColumn(record, TdCol(k));
              id.t_c = DecodeDoubleColumn(record, TcCol(k));
              id.t_b = DecodeDoubleColumn(record, TbCol(k));
              id.t_a = 0.0;
              sink->push_back(id);
              return Status::OK();
            };
          },
          scan, scan_options);
      // Merge even on failure: a budget-truncated search keeps what the
      // partitions collected before the breach.
      for (const std::vector<PairId>& part : partition_out) {
        out->insert(out->end(), part.begin(), part.end());
      }
      return status;
    }
    if (task.mode == QueryMode::kSeqScan) {
      return SeqScan(*task.table, make_predicate(task.query), collect, scan,
                     scan_options);
    }
    // Index scan: all conditions evaluate on the key; the heap fetch
    // only materializes the pair id.
    IndexScanSpec spec;
    spec.context = &ctx;
    spec.snapshot = &snapshot;
    spec.skip_quarantined = allow_partial;
    const std::string index_name =
        (task.query.is_line ? "ln" : "pt") + std::to_string(task.query.corner);
    SEGDIFF_ASSIGN_OR_RETURN(BPlusTree * tree,
                             task.table->GetIndex(index_name));
    spec.index = tree;
    spec.lower = IndexKey::LowerBound({-kInf, -kInf, -kInf, -kInf});
    spec.key_continue = [T](const IndexKey& key) { return key.vals[0] <= T; };
    if (!task.query.is_line) {
      spec.key_filter = [drop, V](const IndexKey& key) {
        return drop ? key.vals[1] <= V : key.vals[1] >= V;
      };
    } else {
      spec.key_filter = [drop, T, V](const IndexKey& key) {
        const double a_dt = key.vals[0];
        const double a_dv = key.vals[1];
        const double b_dt = key.vals[2];
        const double b_dv = key.vals[3];
        const bool ends_outside = drop
                                      ? (a_dv > V && b_dv < V)
                                      : (a_dv < V && b_dv > V);
        if (!ends_outside || !(b_dt > T) || b_dt <= a_dt) {
          return false;
        }
        const double at_T =
            a_dv + (b_dv - a_dv) / (b_dt - a_dt) * (T - a_dt);
        return drop ? at_T <= V : at_T >= V;
      };
    }
    return IndexScan(*task.table, spec, Predicate::True(), collect, scan);
  };

  local->queries_issued = tasks.size();
  if (pool == nullptr || tasks.size() <= 1 ||
      (options.mode == QueryMode::kSeqScan && options.fused_scan)) {
    // Serial task loop. Fused tasks still fan out internally when a pool
    // exists (table-at-a-time with partitioned passes avoids nesting
    // task- and partition-level parallelism).
    for (const QueryTask& task : tasks) {
      SEGDIFF_RETURN_IF_ERROR(QuarantineScanError(
          run_task(task, results, &local->scan),
          "feature table '" + task.table->name() + "'"));
    }
    return Status::OK();
  }
  // Concurrent point/line queries: each task gets a private result
  // vector and ScanStats, merged in task order so stats totals match
  // the serial path exactly (satellite: stats correctness). The
  // governed ParallelFor stops claiming tasks once the context fires;
  // in-flight tasks stop at their own page-level checks.
  std::vector<std::vector<PairId>> task_out(tasks.size());
  std::vector<ScanStats> task_scan(tasks.size());
  Status status = pool->ParallelFor(tasks.size(), &ctx,
                                    [&](size_t i) -> Status {
                                      return QuarantineScanError(
                                          run_task(tasks[i], &task_out[i],
                                                   &task_scan[i]),
                                          "feature table '" +
                                              tasks[i].table->name() + "'");
                                    });
  // Merge even on failure (see partition merge above).
  for (size_t i = 0; i < tasks.size(); ++i) {
    local->scan.Add(task_scan[i]);
    results->insert(results->end(), task_out[i].begin(), task_out[i].end());
  }
  return status;
}

Status SegDiffIndex::Checkpoint() {
  std::lock_guard<std::mutex> lock(ingest_mu_);
  SaveIngestState();
  return db_->Checkpoint();
}

Status SegDiffIndex::Compact(const std::string& destination_path) {
  std::lock_guard<std::mutex> lock(ingest_mu_);
  SaveIngestState();  // the copied ingest blob must reflect the tables
  return db_->CompactInto(destination_path);
}

Status SegDiffIndex::Repair(const std::string& destination_path,
                            RepairReport* report) {
  std::lock_guard<std::mutex> lock(ingest_mu_);
  // Best-effort: on a degraded store PutMeta is gated, so the copied
  // blob is the last one saved — the WAL backlog (already replayed at
  // Open) covers the difference.
  SaveIngestState();
  return db_->Repair(destination_path, report);
}

Status SegDiffIndex::DropCaches() {
  std::lock_guard<std::mutex> ingest_lock(ingest_mu_);
  {
    std::lock_guard<std::mutex> lock(lazy_mu_);
    segment_dir_.clear();
    segment_dir_fresh_ = false;  // force re-read through the (cold) pool
  }
  SaveIngestState();
  return db_->DropCaches();
}

SegDiffSizes SegDiffIndex::GetSizes() const {
  SegDiffSizes sizes;
  for (int kind = 0; kind < 2; ++kind) {
    for (int k = 1; k <= 3; ++k) {
      const Table* table = feature_tables_[kind][k - 1];
      sizes.feature_bytes += table->DataSizeBytes();
      sizes.feature_rows += table->row_count();
      sizes.index_bytes += table->IndexSizeBytes();
    }
  }
  sizes.segment_dir_bytes = segments_table_->DataSizeBytes();
  sizes.file_bytes = db_->SizeStats().file_bytes;
  return sizes;
}

const ExtractorStats& SegDiffIndex::extractor_stats() const {
  return extractor_->stats();
}

uint64_t SegDiffIndex::num_segments() const {
  return segments_table_->row_count();
}

}  // namespace segdiff
