#include "segdiff/exh_index.h"

#include <algorithm>
#include <limits>

#include "common/bytes.h"
#include "common/stopwatch.h"
#include "query/planner.h"
#include "query/predicate.h"
#include "query/scan_kernel.h"
#include "storage/snapshot.h"
#include "storage/wal.h"

namespace segdiff {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Catalog meta blob holding the resumable ingest state.
constexpr char kIngestStateKey[] = "exh.ingest";
constexpr uint32_t kIngestStateMagic = 0x4558494E;  // "EXIN"
constexpr uint32_t kIngestStateVersion = 1;

}  // namespace

ExhIndex::ExhIndex(ExhOptions options)
    : options_(options), admission_(options_.admission) {}

Result<std::unique_ptr<ExhIndex>> ExhIndex::Open(const std::string& path,
                                                 const ExhOptions& options) {
  if (options.window_s <= 0.0) {
    return Status::InvalidArgument("window_s must be positive");
  }
  std::unique_ptr<ExhIndex> index(new ExhIndex(options));
  Status status = index->OpenImpl(path);
  if (!status.ok()) {
    // A failed open must not mutate the store: the destructor will not
    // save (default/partial) ingest state over the persisted blob, and
    // abandoning the database handle discards its dirty pages instead
    // of checkpointing them on close.
    if (index->db_ != nullptr) {
      index->db_->Abandon();
    }
    return status;
  }
  index->opened_ = true;
  return index;
}

Status ExhIndex::OpenImpl(const std::string& path) {
  DatabaseOptions db_options;
  db_options.buffer_pool_pages = options_.buffer_pool_pages;
  db_options.sim_seq_read_ns = options_.sim_seq_read_ns;
  db_options.sim_random_read_ns = options_.sim_random_read_ns;
  db_options.vfs = options_.vfs;
  db_options.verify_checksums = options_.verify_checksums;
  db_options.wal = options_.wal;
  db_options.wal_group_commit_ms = options_.wal_group_commit_ms;
  // Appends log the observation itself as the redo record; the pair
  // rows derived from it are re-derived on replay, not logged.
  db_options.wal_observation_log = true;
  SEGDIFF_ASSIGN_OR_RETURN(db_, Database::Open(path, db_options));
  if (db_->tables().empty()) {
    SEGDIFF_ASSIGN_OR_RETURN(TableSchema schema,
                             DoubleSchema({"dt", "dv", "t"}));
    SEGDIFF_ASSIGN_OR_RETURN(table_, db_->CreateTable("exh", schema));
    if (options_.build_index) {
      SEGDIFF_RETURN_IF_ERROR(
          table_->CreateIndex("ptdv", {"dt", "dv"}).status());
    }
  } else {
    SEGDIFF_ASSIGN_OR_RETURN(table_, db_->GetTable("exh"));
    options_.build_index = !table_->indexes().empty();
  }
  SEGDIFF_RETURN_IF_ERROR(RestoreIngestState());
  return DrainRecoveredOps();
}

Status ExhIndex::DrainRecoveredOps() {
  if (!db_->HasRecoveredOps()) {
    return Status::OK();
  }
  std::vector<WalRecord> ops = db_->TakeRecoveredOps();
  // Replay through the normal append path, suspended so nothing is
  // logged twice; see SegDiffIndex::DrainRecoveredOps for why already-
  // absorbed observations are skipped rather than treated as errors.
  // kFlush is a no-op for Exh: pairs materialize eagerly on append.
  Wal::Suspend suspend(db_->wal());
  for (const WalRecord& op : ops) {
    if (op.type == WalRecordType::kFlush) {
      continue;
    }
    SEGDIFF_ASSIGN_OR_RETURN(WalObservation obs,
                             DecodeWalObservation(op.payload));
    Status status = AppendObservation(obs.t, obs.v);
    if (status.IsInvalidArgument()) {
      continue;  // already absorbed before the crash
    }
    SEGDIFF_RETURN_IF_ERROR(status);
  }
  return Status::OK();
}

ExhIndex::~ExhIndex() {
  // Only a fully-opened index saves state: after a failed Open the
  // window is default/partially restored, and writing it back would
  // destroy the persisted resume point (and mask the corruption).
  if (opened_) {
    SaveIngestState();  // db_'s destructor checkpoints the catalog
  }
}

Status ExhIndex::AppendObservation(double t, double v) {
  std::lock_guard<std::mutex> lock(ingest_mu_);
  Status status = [&]() -> Status {
    if (db_->degraded()) {
      // Degraded stores are read-only: fail fast with the original cause
      // instead of burning retries against a full disk.
      return Status::NoSpace("store is degraded (read-only): " +
                             db_->GetHealth().degraded_reason);
    }
    // window_ persists across calls (and reopens): an append boundary
    // must not lose the pairs between the retained tail and this
    // observation.
    if (!window_.empty() && t <= window_.back().t) {
      return Status::InvalidArgument(
          "chunked ingest requires strictly increasing time stamps");
    }
    // WAL before data: the observation is the redo record for every pair
    // row inserted below (a sticky log failure surfaces at the sync).
    if (db_->wal() != nullptr) {
      (void)db_->wal()->AppendObservation(t, v);
    }
    while (!window_.empty() && t - window_.front().t > options_.window_s) {
      window_.pop_front();
    }
    for (const Sample& earlier : window_) {
      SEGDIFF_RETURN_IF_ERROR(
          table_->InsertDoubles({t - earlier.t, v - earlier.v, earlier.t})
              .status());
    }
    window_.push_back(Sample{t, v});
    ++observations_;
    return Status::OK();
  }();
  if (!status.ok()) {
    db_->NoteStorageFailure(status);  // no-space flips degraded mode
  }
  return status;
}

Status ExhIndex::FlushPending() {
  std::lock_guard<std::mutex> lock(ingest_mu_);
  Status status = [&]() -> Status {
    Wal* wal = db_->wal();
    if (wal == nullptr) {
      return Status::OK();  // every pair row is already in the table
    }
    // Exh has no buffered pending state, so the marker only delimits the
    // replay boundary; the sync is the durability point (acknowledged
    // means durable). State is saved first so an auto-checkpoint (which
    // truncates the log) leaves a consistent resume point.
    SEGDIFF_RETURN_IF_ERROR(wal->AppendFlushMarker().status());
    SaveIngestState();
    SEGDIFF_RETURN_IF_ERROR(wal->Sync());
    return db_->MaybeAutoCheckpoint();
  }();
  if (!status.ok()) {
    db_->NoteStorageFailure(status);
  }
  return status;
}

void ExhIndex::SaveIngestState() {
  ByteWriter w;
  w.U32(kIngestStateMagic);
  w.U32(kIngestStateVersion);
  w.F64(options_.window_s);
  w.U64(observations_);
  w.U32(static_cast<uint32_t>(window_.size()));
  for (const Sample& sample : window_) {
    w.F64(sample.t);
    w.F64(sample.v);
  }
  // Suspended: the blob reaches the catalog only via Checkpoint (see
  // SegDiffIndex::SaveIngestState — a WAL-logged blob would make
  // recovery skip re-deriving rows that reverted with the data file).
  Wal::Suspend suspend(db_->wal());
  // Suspended appends are no-ops, so this PutMeta cannot fail.
  (void)db_->PutMeta(kIngestStateKey, w.Take());
}

Status ExhIndex::RestoreIngestState() {
  auto blob = db_->GetMeta(kIngestStateKey);
  if (!blob.ok()) {
    // Legacy or fresh store: appends start with an empty window.
    return blob.status().IsNotFound() ? Status::OK() : blob.status();
  }
  ByteReader r(*blob);
  SEGDIFF_ASSIGN_OR_RETURN(uint32_t magic, r.U32());
  SEGDIFF_ASSIGN_OR_RETURN(uint32_t version, r.U32());
  if (magic != kIngestStateMagic || version != kIngestStateVersion) {
    return Status::Corruption("bad exh ingest-state blob");
  }
  // The window length is a property of the store, not of this Open call.
  SEGDIFF_ASSIGN_OR_RETURN(options_.window_s, r.F64());
  SEGDIFF_ASSIGN_OR_RETURN(observations_, r.U64());
  SEGDIFF_ASSIGN_OR_RETURN(uint32_t count, r.U32());
  window_.clear();
  for (uint32_t i = 0; i < count; ++i) {
    Sample sample;
    SEGDIFF_ASSIGN_OR_RETURN(sample.t, r.F64());
    SEGDIFF_ASSIGN_OR_RETURN(sample.v, r.F64());
    if (!window_.empty() && sample.t <= window_.back().t) {
      return Status::Corruption("exh ingest-state window out of order");
    }
    window_.push_back(sample);
  }
  return Status::OK();
}

ThreadPool* ExhIndex::EnsurePool(size_t num_threads) {
  const size_t workers = num_threads - 1;  // the caller participates
  std::lock_guard<std::mutex> lock(pool_mu_);
  // Resize only when idle; concurrent searches share the existing pool
  // (see SegDiffIndex::EnsurePool).
  if (pool_ == nullptr ||
      (pool_->size() != workers && pool_users_ == 0)) {
    pool_ = std::make_unique<ThreadPool>(workers);
  }
  ++pool_users_;
  return pool_.get();
}

void ExhIndex::ReleasePool() {
  std::lock_guard<std::mutex> lock(pool_mu_);
  --pool_users_;
}

Result<std::vector<ExhEvent>> ExhIndex::SearchDrops(
    double T, double V, const SearchOptions& options, SearchStats* stats) {
  if (!(V < 0.0)) {
    return Status::InvalidArgument("drop search requires V < 0");
  }
  return Search(true, T, V, options, stats);
}

Result<std::vector<ExhEvent>> ExhIndex::SearchJumps(
    double T, double V, const SearchOptions& options, SearchStats* stats) {
  if (!(V > 0.0)) {
    return Status::InvalidArgument("jump search requires V > 0");
  }
  return Search(false, T, V, options, stats);
}

Result<std::vector<ExhEvent>> ExhIndex::Search(bool drop, double T, double V,
                                               const SearchOptions& options,
                                               SearchStats* stats) {
  if (!(T > 0.0)) {
    return Status::InvalidArgument("T must be positive");
  }
  if (T > options_.window_s) {
    return Status::InvalidArgument("T exceeds the configured window w");
  }
  Stopwatch stopwatch;
  SearchStats local;

  // Governance shell — mirrors SegDiffIndex::Search.
  MemoryBudget budget(options.max_result_bytes);
  QueryContext ctx;
  ctx.cancel = options.cancel;
  ctx.deadline = options.deadline_ms > 0
                     ? Deadline::Earlier(options.deadline,
                                         Deadline::AfterMillis(
                                             options.deadline_ms))
                     : options.deadline;
  ctx.budget = &budget;

  Stopwatch admission_watch;
  Result<AdmissionController::Ticket> ticket =
      admission_.Admit(ctx, options.priority);
  if (!ticket.ok()) {
    admission_.RecordOutcome(ticket.status(), 0, false);
    return ticket.status();
  }
  local.admission_wait_ms = admission_watch.ElapsedMillis();

  const size_t num_threads = options.num_threads <= 1
                                 ? options.num_threads
                                 : admission_.ClampThreads(
                                       options.num_threads);

  // Freeze the point-in-time view the whole search reads. Created under
  // ingest_mu_ so it lands on an append boundary: it sees exactly the
  // pair rows of the first snapshot_observations observations.
  DatabaseSnapshot snapshot;
  {
    std::lock_guard<std::mutex> lock(ingest_mu_);
    snapshot = db_->CreateSnapshot();
    local.snapshot_observations = observations_;
  }

  // Callers that pass a stats out-param can observe the partial flag, so
  // quarantined pages degrade to a flagged partial result; stats-less
  // callers keep the hard error (see SegDiffIndex::Search).
  const bool allow_partial = stats != nullptr;

  std::vector<ExhEvent> events;
  Status run = SearchScan(drop, T, V, options, num_threads, ctx, snapshot,
                          allow_partial, &events, &local);

  bool truncated = false;
  if (!run.ok()) {
    if (run.IsResourceExhausted() && budget.breached() && stats != nullptr) {
      truncated = true;  // graceful: keep the flagged partial result
    } else {
      admission_.RecordOutcome(run, budget.peak(),
                               run.IsResourceExhausted() &&
                                   budget.breached());
      return run;
    }
  }

  std::sort(events.begin(), events.end(),
            [](const ExhEvent& a, const ExhEvent& b) {
              if (a.t_start != b.t_start) return a.t_start < b.t_start;
              return a.t_end < b.t_end;
            });
  local.pairs_returned = events.size();
  local.truncated = truncated;
  local.partial = local.scan.pages_quarantined > 0 ||
                  local.scan.rows_quarantined > 0;
  local.result_bytes_peak = budget.peak();
  local.seconds = stopwatch.ElapsedSeconds();
  admission_.RecordOutcome(Status::OK(), budget.peak(), truncated);
  if (stats != nullptr) {
    *stats = local;
  }
  return events;
}

Status ExhIndex::SearchScan(bool drop, double T, double V,
                            const SearchOptions& options, size_t num_threads,
                            const QueryContext& ctx,
                            const DatabaseSnapshot& snapshot,
                            bool allow_partial,
                            std::vector<ExhEvent>* events,
                            SearchStats* local) {
  MemoryBudget* budget = ctx.budget;
  const RowCallback collect = [events, budget](const char* record,
                                               RecordId) -> Status {
    if (budget != nullptr && !budget->Charge(sizeof(ExhEvent))) {
      return budget->Exceeded();
    }
    ExhEvent event;
    event.dv = DecodeDoubleColumn(record, 1);
    event.t_start = DecodeDoubleColumn(record, 2);
    event.t_end = event.t_start + DecodeDoubleColumn(record, 0);
    events->push_back(event);
    return Status::OK();
  };

  // Zone maps feed both the pruned sequential scan and the kAuto cost
  // model; legacy stores build theirs here, once. The attach mutates the
  // live table, so writers are excluded too (ingest_mu_ before lazy_mu_)
  // — the map becomes visible to later snapshots; this search's
  // (earlier) snapshot scans unpruned, which is correct, just slower.
  {
    std::lock_guard<std::mutex> ingest_lock(ingest_mu_);
    std::lock_guard<std::mutex> lock(lazy_mu_);
    SEGDIFF_RETURN_IF_ERROR(QuarantineScanError(table_->EnsureZoneMap(),
                                                "the exh pair table"));
  }

  const TableSnapshotView* snap_view = snapshot.TableView(table_->name());
  if (snap_view == nullptr) {
    return Status::Internal("snapshot is missing the exh pair table");
  }

  SeqScanOptions scan_options;
  scan_options.context = &ctx;
  scan_options.snapshot = &snapshot;
  scan_options.skip_quarantined = allow_partial;

  Predicate predicate;
  predicate.And(0, CmpOp::kLe, T);
  predicate.And(1, drop ? CmpOp::kLe : CmpOp::kGe, V);

  QueryMode mode = options.mode;
  if (mode == QueryMode::kAuto) {
    // Plan from the snapshot's statistics, not the live table's — the
    // scan below reads the snapshot, so the cost model must describe it.
    const ZoneMap* zone_map = snap_view->zone_map.get();
    const ColumnStore* columnar = table_->columnar();
    if (!options_.build_index || zone_map == nullptr) {
      mode = QueryMode::kSeqScan;
    } else {
      const ZoneSurvey survey = SurveyZones(*zone_map, predicate.conditions());
      TableStatsView view;
      view.row_count = snap_view->heap_meta.record_count +
                       (columnar != nullptr ? columnar->row_count() : 0);
      view.pages_total = snap_view->heap_meta.page_count;
      view.pages_after_pruning =
          survey.zones_surviving + (view.pages_total > survey.zones_total
                                        ? view.pages_total - survey.zones_total
                                        : 0);
      // Merge per-column ranges across formats: compacted stores hold
      // their rows in columnar segments whose statistics live in the
      // segment directory, not the heap zone map.
      auto merge = [](ZoneMap::ColumnRange a, const ZoneMap::ColumnRange& b) {
        if (b.lo <= b.hi) {
          if (a.lo <= a.hi) {
            a.lo = std::min(a.lo, b.lo);
            a.hi = std::max(a.hi, b.hi);
          } else {
            a.lo = b.lo;
            a.hi = b.hi;
          }
        }
        a.has_nan = a.has_nan || b.has_nan;
        return a;
      };
      ZoneMap::ColumnRange dt = zone_map->GlobalRange(0);
      ZoneMap::ColumnRange dv = zone_map->GlobalRange(1);
      if (columnar != nullptr) {
        const ColumnarSurvey col_survey =
            SurveyColumnarSegments(*columnar, predicate.conditions());
        view.pages_total += col_survey.pages_total;
        view.pages_after_pruning += col_survey.pages_surviving;
        const uint64_t col_rows = columnar->row_count();
        if (view.row_count > 0) {
          view.random_fetch_cost_scale =
              (static_cast<double>(view.row_count - col_rows) +
               kColumnarFetchCostScale * static_cast<double>(col_rows)) /
              static_cast<double>(view.row_count);
        }
        dt = merge(dt, ColumnarGlobalRange(*columnar, 0));
        dv = merge(dv, ColumnarGlobalRange(*columnar, 1));
      }
      auto le_fraction = [](const ZoneMap::ColumnRange& r, double hi) {
        if (!(r.lo <= r.hi)) return 1.0;
        if (r.hi <= r.lo) return hi >= r.lo ? 1.0 : 0.0;
        return std::clamp((hi - r.lo) / (r.hi - r.lo), 0.0, 1.0);
      };
      auto ge_fraction = [](const ZoneMap::ColumnRange& r, double lo) {
        if (!(r.lo <= r.hi)) return 1.0;
        if (r.hi <= r.lo) return lo <= r.lo ? 1.0 : 0.0;
        return std::clamp((r.hi - lo) / (r.hi - r.lo), 0.0, 1.0);
      };
      view.index_entry_fraction = le_fraction(dt, T);
      view.heap_fetch_fraction =
          view.index_entry_fraction *
          (drop ? le_fraction(dv, V) : ge_fraction(dv, V));
      const PlanChoice choice = ChooseAccessPath(view, options_.build_index);
      mode = choice.path == AccessPath::kIndexScan ? QueryMode::kIndexScan
                                                   : QueryMode::kSeqScan;
    }
  }
  ++local->queries_issued;
  if (mode == QueryMode::kSeqScan) {
    if (num_threads > 1) {
      // Partition the single range query's scan across the pool; events
      // are re-sorted by the shell, so per-partition collection order is
      // irrelevant to the result.
      std::vector<std::vector<ExhEvent>> partition_out(num_threads);
      ThreadPool* pool = EnsurePool(num_threads);
      Status status = QuarantineScanError(
          ParallelSeqScan(
              *table_, predicate, pool, num_threads,
              [&partition_out, budget](size_t p) -> RowCallback {
                std::vector<ExhEvent>* sink = &partition_out[p];
                return [sink, budget](const char* record,
                                      RecordId) -> Status {
                  if (budget != nullptr &&
                      !budget->Charge(sizeof(ExhEvent))) {
                    return budget->Exceeded();
                  }
                  ExhEvent event;
                  event.dv = DecodeDoubleColumn(record, 1);
                  event.t_start = DecodeDoubleColumn(record, 2);
                  event.t_end = event.t_start + DecodeDoubleColumn(record, 0);
                  sink->push_back(event);
                  return Status::OK();
                };
              },
              &local->scan, scan_options),
          "the exh pair table");
      ReleasePool();
      // Merge even on failure: a budget-truncated search keeps what the
      // partitions collected before the breach.
      for (const std::vector<ExhEvent>& part : partition_out) {
        events->insert(events->end(), part.begin(), part.end());
      }
      return status;
    }
    return QuarantineScanError(
        SeqScan(*table_, predicate, collect, &local->scan, scan_options),
        "the exh pair table");
  }
  if (!options_.build_index) {
    return Status::InvalidArgument(
        "index scan requested but the index was not built");
  }
  SEGDIFF_ASSIGN_OR_RETURN(BPlusTree * tree, table_->GetIndex("ptdv"));
  IndexScanSpec spec;
  spec.context = &ctx;
  spec.snapshot = &snapshot;
  spec.skip_quarantined = allow_partial;
  spec.index = tree;
  spec.lower = IndexKey::LowerBound({-kInf, -kInf});
  spec.key_continue = [T](const IndexKey& key) { return key.vals[0] <= T; };
  spec.key_filter = [drop, V](const IndexKey& key) {
    return drop ? key.vals[1] <= V : key.vals[1] >= V;
  };
  return QuarantineScanError(
      IndexScan(*table_, spec, Predicate::True(), collect, &local->scan),
      "the exh pair table");
}

Status ExhIndex::Checkpoint() {
  std::lock_guard<std::mutex> lock(ingest_mu_);
  SaveIngestState();
  return db_->Checkpoint();
}

Status ExhIndex::Compact(const std::string& destination_path) {
  std::lock_guard<std::mutex> lock(ingest_mu_);
  SaveIngestState();  // the copied ingest blob must reflect the table
  return db_->CompactInto(destination_path);
}

Status ExhIndex::Repair(const std::string& destination_path,
                        RepairReport* report) {
  std::lock_guard<std::mutex> lock(ingest_mu_);
  // Best effort: on a degraded store PutMeta is gated, so the blob in
  // the catalog stays whatever was last saved — still a valid (if
  // stale) resume point for the repaired copy.
  SaveIngestState();
  return db_->Repair(destination_path, report);
}

Status ExhIndex::DropCaches() {
  std::lock_guard<std::mutex> lock(ingest_mu_);
  SaveIngestState();
  return db_->DropCaches();
}

ExhSizes ExhIndex::GetSizes() const {
  ExhSizes sizes;
  sizes.feature_bytes = table_->DataSizeBytes();
  sizes.feature_rows = table_->row_count();
  sizes.index_bytes = table_->IndexSizeBytes();
  sizes.file_bytes = db_->SizeStats().file_bytes;
  return sizes;
}

}  // namespace segdiff
