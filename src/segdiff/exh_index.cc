#include "segdiff/exh_index.h"

#include <algorithm>
#include <limits>

#include "common/stopwatch.h"
#include "query/predicate.h"

namespace segdiff {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

ExhIndex::ExhIndex(ExhOptions options) : options_(options) {}

Result<std::unique_ptr<ExhIndex>> ExhIndex::Open(const std::string& path,
                                                 const ExhOptions& options) {
  if (options.window_s <= 0.0) {
    return Status::InvalidArgument("window_s must be positive");
  }
  std::unique_ptr<ExhIndex> index(new ExhIndex(options));
  DatabaseOptions db_options;
  db_options.buffer_pool_pages = options.buffer_pool_pages;
  db_options.sim_seq_read_ns = options.sim_seq_read_ns;
  db_options.sim_random_read_ns = options.sim_random_read_ns;
  SEGDIFF_ASSIGN_OR_RETURN(index->db_, Database::Open(path, db_options));
  if (index->db_->tables().empty()) {
    SEGDIFF_ASSIGN_OR_RETURN(TableSchema schema,
                             DoubleSchema({"dt", "dv", "t"}));
    SEGDIFF_ASSIGN_OR_RETURN(index->table_,
                             index->db_->CreateTable("exh", schema));
    if (options.build_index) {
      SEGDIFF_RETURN_IF_ERROR(
          index->table_->CreateIndex("ptdv", {"dt", "dv"}).status());
    }
  } else {
    SEGDIFF_ASSIGN_OR_RETURN(index->table_, index->db_->GetTable("exh"));
  }
  return index;
}

Status ExhIndex::IngestSeries(const Series& series) {
  std::deque<Sample> window;
  for (const Sample& sample : series) {
    while (!window.empty() &&
           sample.t - window.front().t > options_.window_s) {
      window.pop_front();
    }
    for (const Sample& earlier : window) {
      SEGDIFF_RETURN_IF_ERROR(
          table_
              ->InsertDoubles(
                  {sample.t - earlier.t, sample.v - earlier.v, earlier.t})
              .status());
    }
    window.push_back(sample);
    ++observations_;
  }
  return Status::OK();
}

Result<std::vector<ExhEvent>> ExhIndex::SearchDrops(
    double T, double V, const SearchOptions& options, SearchStats* stats) {
  if (!(V < 0.0)) {
    return Status::InvalidArgument("drop search requires V < 0");
  }
  return Search(true, T, V, options, stats);
}

Result<std::vector<ExhEvent>> ExhIndex::SearchJumps(
    double T, double V, const SearchOptions& options, SearchStats* stats) {
  if (!(V > 0.0)) {
    return Status::InvalidArgument("jump search requires V > 0");
  }
  return Search(false, T, V, options, stats);
}

Result<std::vector<ExhEvent>> ExhIndex::Search(bool drop, double T, double V,
                                               const SearchOptions& options,
                                               SearchStats* stats) {
  if (!(T > 0.0)) {
    return Status::InvalidArgument("T must be positive");
  }
  if (T > options_.window_s) {
    return Status::InvalidArgument("T exceeds the configured window w");
  }
  Stopwatch stopwatch;
  SearchStats local;
  std::vector<ExhEvent> events;
  const RowCallback collect = [&](const char* record, RecordId) -> Status {
    ExhEvent event;
    event.dv = DecodeDoubleColumn(record, 1);
    event.t_start = DecodeDoubleColumn(record, 2);
    event.t_end = event.t_start + DecodeDoubleColumn(record, 0);
    events.push_back(event);
    return Status::OK();
  };

  QueryMode mode = options.mode;
  if (mode == QueryMode::kAuto) {
    mode = options_.build_index ? QueryMode::kIndexScan : QueryMode::kSeqScan;
  }
  ++local.queries_issued;
  if (mode == QueryMode::kSeqScan) {
    Predicate predicate;
    predicate.And(0, CmpOp::kLe, T);
    predicate.And(1, drop ? CmpOp::kLe : CmpOp::kGe, V);
    SEGDIFF_RETURN_IF_ERROR(SeqScan(*table_, predicate, collect, &local.scan));
  } else {
    if (!options_.build_index) {
      return Status::InvalidArgument(
          "index scan requested but the index was not built");
    }
    SEGDIFF_ASSIGN_OR_RETURN(BPlusTree * tree, table_->GetIndex("ptdv"));
    IndexScanSpec spec;
    spec.index = tree;
    spec.lower = IndexKey::LowerBound({-kInf, -kInf});
    spec.key_continue = [T](const IndexKey& key) { return key.vals[0] <= T; };
    spec.key_filter = [drop, V](const IndexKey& key) {
      return drop ? key.vals[1] <= V : key.vals[1] >= V;
    };
    SEGDIFF_RETURN_IF_ERROR(
        IndexScan(*table_, spec, Predicate::True(), collect, &local.scan));
  }

  std::sort(events.begin(), events.end(),
            [](const ExhEvent& a, const ExhEvent& b) {
              if (a.t_start != b.t_start) return a.t_start < b.t_start;
              return a.t_end < b.t_end;
            });
  local.pairs_returned = events.size();
  local.seconds = stopwatch.ElapsedSeconds();
  if (stats != nullptr) {
    *stats = local;
  }
  return events;
}

Status ExhIndex::Checkpoint() { return db_->Checkpoint(); }

Status ExhIndex::DropCaches() { return db_->DropCaches(); }

ExhSizes ExhIndex::GetSizes() const {
  ExhSizes sizes;
  sizes.feature_bytes = table_->DataSizeBytes();
  sizes.feature_rows = table_->row_count();
  sizes.index_bytes = table_->IndexSizeBytes();
  sizes.file_bytes = db_->SizeStats().file_bytes;
  return sizes;
}

}  // namespace segdiff
