#include "segdiff/verify.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "ts/interpolate.h"

namespace segdiff {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Candidate time points inside [lo, hi]: the interval ends plus every
/// sample strictly inside.
std::vector<double> Candidates(const Series& series, double lo, double hi) {
  std::vector<double> out;
  if (lo > hi) {
    return out;
  }
  out.push_back(lo);
  const auto& samples = series.samples();
  auto it = std::upper_bound(
      samples.begin(), samples.end(), lo,
      [](double t, const Sample& s) { return t < s.t; });
  for (; it != samples.end() && it->t < hi; ++it) {
    out.push_back(it->t);
  }
  if (hi > lo) {
    out.push_back(hi);
  }
  return out;
}

/// Computes the extremum of v(t'') - v(t') over the pair's feasible set,
/// tracking the achieving event. `minimize` selects min (drop) vs max
/// (jump).
Result<RefinedEvent> ExtremumDeltaV(const Series& series, const PairId& pair,
                                    double T, bool minimize) {
  if (series.size() < 2) {
    return Status::InvalidArgument("series too small");
  }
  const double span_lo = series.front().t;
  const double span_hi = series.back().t;
  const double a_lo = std::max(pair.t_d, span_lo);
  const double a_hi = std::min(pair.t_c, span_hi);
  const double b_lo = std::max(pair.t_b, span_lo);
  const double b_hi = std::min(pair.t_a, span_hi);
  RefinedEvent best;
  best.dv = minimize ? kInf : -kInf;
  if (a_lo > a_hi || b_lo > b_hi) {
    return best;
  }

  ModelGEvaluator eval(series);
  const std::vector<double> starts = Candidates(series, a_lo, a_hi);
  const std::vector<double> ends = Candidates(series, b_lo, b_hi);

  auto improve = [&](double dv, double t_start, double t_end) {
    if (minimize ? dv < best.dv : dv > best.dv) {
      best.feasible = true;
      best.dv = dv;
      best.t_start = t_start;
      best.t_end = t_end;
    }
  };
  auto consider = [&](double t_start, double t_end) -> Status {
    const double dt = t_end - t_start;
    if (dt < 0.0 || dt > T) {
      return Status::OK();
    }
    if (dt == 0.0) {
      // Events with dt -> 0+ approach dv = 0; treat 0 as attainable in
      // the limit so boundary cases do not report spurious violations.
      improve(0.0, t_start, t_end);
      return Status::OK();
    }
    SEGDIFF_ASSIGN_OR_RETURN(double v_start, eval.ValueAt(t_start));
    SEGDIFF_ASSIGN_OR_RETURN(double v_end, eval.ValueAt(t_end));
    improve(v_end - v_start, t_start, t_end);
    return Status::OK();
  };

  // Vertex pairs (breakpoint, breakpoint): v is piecewise linear, so with
  // the coupling constraint dt <= T the extremum is at such a vertex or
  // on the dt == T boundary anchored at a breakpoint (handled below).
  for (double t_start : starts) {
    // Only ends in [t_start, t_start + T] are feasible.
    auto first = std::lower_bound(ends.begin(), ends.end(), t_start);
    for (auto it = first; it != ends.end() && *it <= t_start + T; ++it) {
      SEGDIFF_RETURN_IF_ERROR(consider(t_start, *it));
    }
    const double capped = t_start + T;
    if (capped >= b_lo && capped <= b_hi) {
      SEGDIFF_RETURN_IF_ERROR(consider(t_start, capped));
    }
  }
  for (double t_end : ends) {
    const double anchored = t_end - T;
    if (anchored >= a_lo && anchored <= a_hi) {
      SEGDIFF_RETURN_IF_ERROR(consider(anchored, t_end));
    }
  }
  return best;
}

}  // namespace

Result<double> MinDeltaVInPair(const Series& series, const PairId& pair,
                               double T) {
  SEGDIFF_ASSIGN_OR_RETURN(RefinedEvent event,
                           ExtremumDeltaV(series, pair, T, /*minimize=*/true));
  return event.dv;
}

Result<double> MaxDeltaVInPair(const Series& series, const PairId& pair,
                               double T) {
  SEGDIFF_ASSIGN_OR_RETURN(
      RefinedEvent event, ExtremumDeltaV(series, pair, T, /*minimize=*/false));
  return event.dv;
}

Result<RefinedEvent> RefineDrop(const Series& series, const PairId& pair,
                                double T) {
  return ExtremumDeltaV(series, pair, T, /*minimize=*/true);
}

Result<RefinedEvent> RefineJump(const Series& series, const PairId& pair,
                                double T) {
  return ExtremumDeltaV(series, pair, T, /*minimize=*/false);
}

bool PairCoversEvent(const PairId& pair, const NaiveEvent& event) {
  return pair.t_d <= event.t_start && event.t_start <= pair.t_c &&
         pair.t_b <= event.t_end && event.t_end <= pair.t_a;
}

CoverageReport CheckCoverage(const std::vector<NaiveEvent>& events,
                             const std::vector<PairId>& pairs) {
  CoverageReport report;
  report.events = events.size();

  std::vector<PairId> by_tb = pairs;
  std::sort(by_tb.begin(), by_tb.end(),
            [](const PairId& a, const PairId& b) { return a.t_b < b.t_b; });
  double max_ab_span = 0.0;
  for (const PairId& pair : by_tb) {
    max_ab_span = std::max(max_ab_span, pair.t_a - pair.t_b);
  }

  for (const NaiveEvent& event : events) {
    // Any covering pair has t_b <= t_end <= t_a <= t_b + max_ab_span.
    auto hi = std::upper_bound(
        by_tb.begin(), by_tb.end(), event.t_end,
        [](double t, const PairId& p) { return t < p.t_b; });
    bool covered = false;
    for (auto it = hi; it != by_tb.begin();) {
      --it;
      if (it->t_b < event.t_end - max_ab_span) {
        break;
      }
      if (PairCoversEvent(*it, event)) {
        covered = true;
        break;
      }
    }
    if (covered) {
      ++report.covered;
    } else {
      report.missing.push_back(event);
    }
  }
  return report;
}

Result<std::vector<PairId>> FindToleranceViolations(
    const Series& series, const std::vector<PairId>& pairs, double T,
    double V, double eps, SearchKind kind) {
  constexpr double kSlack = 1e-9;
  std::vector<PairId> violations;
  for (const PairId& pair : pairs) {
    if (kind == SearchKind::kDrop) {
      SEGDIFF_ASSIGN_OR_RETURN(double min_dv, MinDeltaVInPair(series, pair, T));
      if (!(min_dv <= V + 2.0 * eps + kSlack)) {
        violations.push_back(pair);
      }
    } else {
      SEGDIFF_ASSIGN_OR_RETURN(double max_dv, MaxDeltaVInPair(series, pair, T));
      if (!(max_dv >= V - 2.0 * eps - kSlack)) {
        violations.push_back(pair);
      }
    }
  }
  return violations;
}

}  // namespace segdiff
