#include "segdiff/naive.h"

namespace segdiff {

std::vector<NaiveEvent> NaiveSearcher::Search(bool drop, double T,
                                              double V) const {
  std::vector<NaiveEvent> events;
  const size_t n = series_.size();
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double dt = series_[j].t - series_[i].t;
      if (dt > T) {
        break;
      }
      const double dv = series_[j].v - series_[i].v;
      if (drop ? dv <= V : dv >= V) {
        events.push_back(NaiveEvent{series_[i].t, series_[j].t, dv});
      }
    }
  }
  return events;
}

std::vector<NaiveEvent> NaiveSearcher::SearchDrops(double T, double V) const {
  return Search(true, T, V);
}

std::vector<NaiveEvent> NaiveSearcher::SearchJumps(double T, double V) const {
  return Search(false, T, V);
}

}  // namespace segdiff
