// ShardCatalog: the persistent manifest mapping sensor-id ranges to
// shard directories of a sharded TransectIndex deployment.
//
// A transect root directory holds one CATALOG file plus one
// subdirectory per shard; each shard directory holds the per-sensor
// SegDiff stores of a contiguous sensor-id range. Placement is
// consistent: sensor k always lives in shard k / sensors_per_shard, so
// routing a query needs no lookup table beyond the manifest. The
// manifest is versioned and CRC32C-framed — a torn or bit-rotted
// catalog surfaces as a loud Corruption naming the file, never as a
// silently mis-routed search.
//
// Legacy flat layouts (pre-sharding: sensor<k>.db directly under the
// root) are adopted on first open by writing a manifest whose shard
// directories are all "" — the ranges still partition the sensor space
// for scatter-gather fan-out, but every store path resolves into the
// root, so existing data keeps working unchanged.

#ifndef SEGDIFF_SEGDIFF_SHARD_CATALOG_H_
#define SEGDIFF_SEGDIFF_SHARD_CATALOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/vfs.h"

namespace segdiff {

/// One contiguous sensor-id range and the directory (relative to the
/// transect root; "" = the root itself) holding its stores.
struct ShardInfo {
  int first_sensor = 0;
  int sensor_count = 0;
  std::string dir;
};

class ShardCatalog {
 public:
  /// Name of the manifest file under the transect root.
  static constexpr const char* kManifestName = "CATALOG";

  /// An empty catalog (no sensors); placeholder until Place/Load.
  ShardCatalog() = default;

  /// Consistent placement: `sensor_count` sensors split into
  /// ceil(n / sensors_per_shard) contiguous ranges named
  /// <dir_prefix>00000, <dir_prefix>00001, ... With `flat` every
  /// range's dir is "" (legacy adoption of a pre-sharding directory).
  /// Rebalance targets pass a generation-tagged prefix ("g<sps>-shard")
  /// so a half-built new layout can never collide with the live one.
  static ShardCatalog Place(int sensor_count, int sensors_per_shard,
                            bool flat = false,
                            const std::string& dir_prefix = "shard");

  /// Reads and verifies the manifest at `<root>/CATALOG`. NotFound when
  /// no manifest exists; Corruption (loud, naming the file) on a bad
  /// magic, version, CRC, or an inconsistent range partition.
  static Result<ShardCatalog> Load(Vfs* vfs, const std::string& root);

  /// Writes the manifest atomically: the framed bytes go to
  /// `<root>/CATALOG.tmp` (fsynced), which then renames over
  /// `<root>/CATALOG` and the directory is synced — a crash at any
  /// point leaves either the old manifest or the new one, never a torn
  /// file that bricks the transect on reopen.
  Status Save(Vfs* vfs, const std::string& root) const;

  /// The CRC32C-framed manifest bytes / their verifying parser.
  /// Factored out so MigrationManifest can embed whole catalogs;
  /// `what` names the container in Corruption messages.
  std::string Encode() const;
  static Result<ShardCatalog> Decode(const char* data, size_t size,
                                     const std::string& what);

  int sensor_count() const { return sensor_count_; }
  int sensors_per_shard() const { return sensors_per_shard_; }
  size_t shard_count() const { return shards_.size(); }
  const ShardInfo& shard(size_t index) const { return shards_[index]; }

  /// The shard holding `sensor` (consistent placement; sensor must be
  /// in [0, sensor_count)).
  size_t ShardOf(int sensor) const {
    return static_cast<size_t>(sensor / sensors_per_shard_);
  }

  /// Absolute directory of one shard ("" entries resolve to the root).
  std::string ShardDirPath(const std::string& root, size_t index) const;

  /// Absolute path of one sensor's store file.
  std::string StorePath(const std::string& root, int sensor) const;

 private:
  int sensor_count_ = 0;
  int sensors_per_shard_ = 0;
  std::vector<ShardInfo> shards_;
};

/// MigrationManifest: the crash-safety intent record of an online
/// rebalance (TransectIndex::Rebalance). Written atomically to
/// `<root>/MIGRATION` *before* the first byte of the new layout exists;
/// removed only after the layout swap is complete and the losing side
/// is garbage-collected. Its presence at open time means a rebalance
/// was cut down mid-flight, and the embedded source/target catalogs
/// say exactly which two layouts could exist on disk:
///   - live CATALOG == target  -> the swap committed; finish the
///     garbage collection of the source layout (roll forward).
///   - live CATALOG == source  -> the swap never happened; delete the
///     half-built target layout (roll back).
/// Either way exactly one authoritative layout remains.
struct MigrationManifest {
  /// Name of the intent file under the transect root.
  static constexpr const char* kFileName = "MIGRATION";

  ShardCatalog source;  ///< the live layout when the rebalance started
  ShardCatalog target;  ///< the layout being built

  /// Reads and verifies `<root>/MIGRATION`. NotFound when no migration
  /// is in flight; Corruption on a bad magic, CRC, or embedded catalog.
  static Result<MigrationManifest> Load(Vfs* vfs, const std::string& root);

  /// Writes the manifest atomically (tmp + rename + dir sync), like
  /// ShardCatalog::Save.
  Status Save(Vfs* vfs, const std::string& root) const;

  /// Deletes `<root>/MIGRATION` and syncs the directory; deleting an
  /// absent manifest is OK (removal must be idempotent across repeated
  /// crash-recovery passes).
  static Status Remove(Vfs* vfs, const std::string& root);
};

}  // namespace segdiff

#endif  // SEGDIFF_SEGDIFF_SHARD_CATALOG_H_
