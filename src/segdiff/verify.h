// Verification of the paper's quality guarantees (Theorem 1) against a
// concrete series: coverage of true events (no false negatives) and the
// 2-eps tolerance of returned pairs (bounded false positives).

#ifndef SEGDIFF_SEGDIFF_VERIFY_H_
#define SEGDIFF_SEGDIFF_VERIFY_H_

#include <vector>

#include "common/result.h"
#include "feature/schema.h"
#include "segdiff/naive.h"
#include "ts/series.h"

namespace segdiff {

/// Exact extremum of dv = v(t'') - v(t') over Model G with
/// t' in [pair.t_d, pair.t_c], t'' in [pair.t_b, pair.t_a], and
/// 0 < t'' - t' <= T. Returns +inf (MinDeltaV) / -inf (MaxDeltaV) when no
/// feasible (t', t'') exists. Exact because v is piecewise linear: the
/// extremum is attained with both ends at sample points, interval
/// endpoints, or on the dt == T constraint anchored at such a point.
Result<double> MinDeltaVInPair(const Series& series, const PairId& pair,
                               double T);
Result<double> MaxDeltaVInPair(const Series& series, const PairId& pair,
                               double T);

/// Whether the true event (t_start, t_end) is covered by `pair`:
/// t_start in [t_d, t_c] and t_end in [t_b, t_a].
bool PairCoversEvent(const PairId& pair, const NaiveEvent& event);

/// Coverage of a set of true events by a set of returned pairs.
struct CoverageReport {
  size_t events = 0;
  size_t covered = 0;
  std::vector<NaiveEvent> missing;

  bool AllCovered() const { return covered == events; }
};

CoverageReport CheckCoverage(const std::vector<NaiveEvent>& events,
                             const std::vector<PairId>& pairs);

/// Lemma 5 check for drop search: every returned pair contains an event
/// with dv <= V + 2*eps within (0, T]. Returns the ids of violating
/// pairs (empty == guarantee holds).
Result<std::vector<PairId>> FindToleranceViolations(
    const Series& series, const std::vector<PairId>& pairs, double T,
    double V, double eps, SearchKind kind);

/// The exact extremal event inside a returned pair, for drill-down
/// after a search: where precisely the steepest drop (largest jump)
/// happened and how big it was.
struct RefinedEvent {
  bool feasible = false;  ///< false when the pair admits no 0 < dt <= T
  double t_start = 0.0;
  double t_end = 0.0;
  double dv = 0.0;
};

/// Arg-min of dv over the pair's feasible events (Model G).
Result<RefinedEvent> RefineDrop(const Series& series, const PairId& pair,
                                double T);
/// Arg-max of dv over the pair's feasible events.
Result<RefinedEvent> RefineJump(const Series& series, const PairId& pair,
                                double T);

}  // namespace segdiff

#endif  // SEGDIFF_SEGDIFF_VERIFY_H_
