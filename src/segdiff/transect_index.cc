#include "segdiff/transect_index.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "common/env.h"
#include "common/thread_pool.h"

namespace segdiff {
namespace {

/// Folds one search's stats into a running total. Only deterministic
/// fields matter for the serial/parallel differential: the integer and
/// bool fields are associative sums/ORs, so folding per-shard partials
/// in shard order gives the same totals as the flat serial loop. The
/// wall-clock doubles (seconds, admission_wait_ms) are additive too but
/// naturally vary run to run.
void FoldStats(const SearchStats& one, SearchStats* total) {
  total->scan.Add(one.scan);
  total->queries_issued += one.queries_issued;
  total->seconds += one.seconds;
  total->snapshot_observations += one.snapshot_observations;
  total->truncated = total->truncated || one.truncated;
  total->partial = total->partial || one.partial;
  total->result_bytes_peak =
      std::max(total->result_bytes_peak, one.result_bytes_peak);
  total->admission_wait_ms += one.admission_wait_ms;
}

}  // namespace

Result<std::unique_ptr<TransectIndex>> TransectIndex::Open(
    const std::string& directory, int sensor_count,
    const SegDiffOptions& options) {
  TransectOptions transect_options;
  transect_options.store = options;
  return Open(directory, sensor_count, transect_options);
}

Result<std::unique_ptr<TransectIndex>> TransectIndex::Open(
    const std::string& directory, int sensor_count,
    const TransectOptions& options) {
  Vfs* vfs = options.store.vfs != nullptr ? options.store.vfs : Vfs::Default();
  SEGDIFF_RETURN_IF_ERROR(vfs->MakeDir(directory));

  std::unique_ptr<TransectIndex> transect(new TransectIndex());
  transect->directory_ = directory;
  transect->store_options_ = options.store;

  Result<ShardCatalog> loaded = ShardCatalog::Load(vfs, directory);
  if (loaded.ok()) {
    if (sensor_count > 0 && sensor_count != loaded->sensor_count()) {
      return Status::InvalidArgument(
          "transect " + directory + " holds " +
          std::to_string(loaded->sensor_count()) + " sensors, not " +
          std::to_string(sensor_count));
    }
    transect->catalog_ = std::move(loaded).value();
  } else if (loaded.status().IsNotFound()) {
    if (sensor_count <= 0) {
      return Status::InvalidArgument("sensor_count must be positive");
    }
    int sensors_per_shard = options.sensors_per_shard;
    if (sensors_per_shard <= 0) {
      sensors_per_shard = static_cast<int>(
          GetEnvInt64("SEGDIFF_SENSORS_PER_SHARD", 256));
    }
    if (sensors_per_shard <= 0) {
      sensors_per_shard = 256;
    }
    // A pre-sharding flat directory is adopted in place: same ranges
    // for fan-out, but every store path stays in the root.
    const bool flat = vfs->FileExists(directory + "/sensor0.db");
    transect->catalog_ =
        ShardCatalog::Place(sensor_count, sensors_per_shard, flat);
    for (size_t i = 0; i < transect->catalog_.shard_count(); ++i) {
      if (!transect->catalog_.shard(i).dir.empty()) {
        SEGDIFF_RETURN_IF_ERROR(
            vfs->MakeDir(transect->catalog_.ShardDirPath(directory, i)));
      }
    }
    SEGDIFF_RETURN_IF_ERROR(transect->catalog_.Save(vfs, directory));
  } else {
    return loaded.status();  // Corruption stays loud
  }

  size_t max_open = options.max_open_stores;
  if (max_open == 0) {
    const int64_t from_env = GetEnvInt64("SEGDIFF_MAX_OPEN_STORES", 0);
    max_open = from_env > 0 ? static_cast<size_t>(from_env) : 0;
  }
  TransectIndex* raw = transect.get();
  transect->stores_ = std::make_unique<StoreLru>(
      max_open, [raw](int s) -> Result<std::unique_ptr<SegDiffIndex>> {
        return SegDiffIndex::Open(
            raw->catalog_.StorePath(raw->directory_, s), raw->store_options_);
      });
  return transect;
}

TransectIndex::~TransectIndex() = default;

Status TransectIndex::IngestSensorSeries(int sensor, const Series& series) {
  if (sensor < 0 || sensor >= sensor_count()) {
    return Status::InvalidArgument("sensor index out of range");
  }
  SEGDIFF_ASSIGN_OR_RETURN(StoreLru::Handle store, stores_->Acquire(sensor));
  SEGDIFF_RETURN_IF_ERROR(store->IngestSeries(series));
  // IngestSeries finalizes its own trailing segment, so the sensor has
  // nothing pending anymore.
  std::lock_guard<std::mutex> lock(dirty_mu_);
  dirty_.erase(sensor);
  return Status::OK();
}

Status TransectIndex::AppendSensorObservation(int sensor, double t,
                                              double v) {
  if (sensor < 0 || sensor >= sensor_count()) {
    return Status::InvalidArgument("sensor index out of range");
  }
  SEGDIFF_ASSIGN_OR_RETURN(StoreLru::Handle store, stores_->Acquire(sensor));
  SEGDIFF_RETURN_IF_ERROR(store->AppendObservation(t, v));
  std::lock_guard<std::mutex> lock(dirty_mu_);
  dirty_.insert(sensor);
  return Status::OK();
}

Status TransectIndex::FlushAllPending() {
  std::vector<int> dirty;
  {
    std::lock_guard<std::mutex> lock(dirty_mu_);
    dirty.assign(dirty_.begin(), dirty_.end());
  }
  std::sort(dirty.begin(), dirty.end());
  auto flush_one = [&](size_t i) -> Status {
    const int sensor = dirty[i];
    SEGDIFF_ASSIGN_OR_RETURN(StoreLru::Handle store,
                             stores_->Acquire(sensor));
    SEGDIFF_RETURN_IF_ERROR(store->FlushPending());
    std::lock_guard<std::mutex> lock(dirty_mu_);
    dirty_.erase(sensor);
    return Status::OK();
  };
  const size_t threads = MaintenanceThreads(dirty.size());
  if (threads < 2) {
    for (size_t i = 0; i < dirty.size(); ++i) {
      SEGDIFF_RETURN_IF_ERROR(flush_one(i));
    }
    return Status::OK();
  }
  ThreadPool* pool = EnsurePool(threads);
  // ParallelFor keeps the first error (FirstErrorCollector) and skips
  // remaining sensors; still-dirty sensors stay tracked for the retry.
  Status status = pool->ParallelFor(dirty.size(), flush_one);
  ReleasePool();
  return status;
}

Status TransectIndex::IngestAllSensors(const std::vector<Series>& all_series,
                                       size_t num_threads) {
  if (all_series.size() != static_cast<size_t>(sensor_count())) {
    return Status::InvalidArgument(
        "IngestAllSensors needs exactly one series per sensor");
  }
  if (num_threads <= 1) {
    for (int s = 0; s < sensor_count(); ++s) {
      SEGDIFF_RETURN_IF_ERROR(IngestSensorSeries(s, all_series[s]));
    }
    return Status::OK();
  }
  // Each task touches exactly one store, so per-sensor pipelines never
  // share mutable state; the pool only parallelizes across sensors.
  // Each worker pins one store at a time, so even a tiny LRU throttles
  // rather than deadlocks.
  ThreadPool* pool = EnsurePool(num_threads);
  Status status =
      pool->ParallelFor(all_series.size(), [&](size_t s) -> Status {
        return IngestSensorSeries(static_cast<int>(s), all_series[s]);
      });
  ReleasePool();
  return status;
}

template <typename SearchFn>
Result<std::vector<TransectHit>> TransectIndex::SearchAll(
    const SearchOptions& options, const SearchFn& search,
    SearchStats* stats) {
  // One deadline for the whole transect: the relative budget converts to
  // an absolute deadline once, so N sensors share it instead of each
  // starting a fresh deadline_ms clock.
  SearchOptions per_sensor = options;
  if (options.deadline_ms > 0) {
    per_sensor.deadline = Deadline::Earlier(
        options.deadline, Deadline::AfterMillis(options.deadline_ms));
    per_sensor.deadline_ms = 0;
  }
  // At transect level num_threads is the scatter-gather width; the
  // per-store searches run single-threaded so the fan-out, not nested
  // pools, uses the machine.
  per_sensor.num_threads = 0;
  QueryContext ctx;
  ctx.cancel = per_sensor.cancel;
  ctx.deadline = per_sensor.deadline;

  const size_t shard_count = catalog_.shard_count();
  size_t fan_out = std::min(options.num_threads, shard_count);
  if (stores_->max_open() != 0) {
    // Each worker (including the caller) pins at most one store, so a
    // fan-out wider than the cache would only make workers queue on
    // Acquire.
    fan_out = std::min(fan_out, stores_->max_open());
  }

  // Scatter: each shard builds an independent partial — its hits
  // already in (sensor, pair) order because sensors are scanned
  // ascending and each store returns sorted pairs.
  struct ShardPartial {
    std::vector<TransectHit> hits;
    SearchStats stats;
  };
  ThreadPool* pool = fan_out >= 2 ? EnsurePool(fan_out) : nullptr;
  std::vector<ShardPartial> partials;
  Status status = ParallelMap(
      pool, shard_count, &ctx, &partials,
      [&](size_t shard, ShardPartial* out) -> Status {
        const ShardInfo& info = catalog_.shard(shard);
        const int last = info.first_sensor + info.sensor_count;
        for (int s = info.first_sensor; s < last; ++s) {
          // Sensor-boundary check point, in addition to the
          // page-granular checks inside each store's search.
          SEGDIFF_RETURN_IF_ERROR(ctx.Check());
          SEGDIFF_ASSIGN_OR_RETURN(StoreLru::Handle store,
                                   stores_->Acquire(s));
          SearchStats one;
          SEGDIFF_ASSIGN_OR_RETURN(std::vector<PairId> pairs,
                                   search(store.get(), per_sensor, &one));
          for (const PairId& pair : pairs) {
            out->hits.push_back(TransectHit{s, pair});
          }
          FoldStats(one, &out->stats);
        }
        return Status::OK();
      });
  if (pool != nullptr) {
    ReleasePool();
  }
  if (!status.ok()) {
    return status;
  }

  // Gather: fold partials in shard index order — the merge is
  // deterministic no matter which worker finished first, and equals the
  // serial loop's output byte for byte.
  std::vector<TransectHit> hits;
  SearchStats total;
  for (ShardPartial& partial : partials) {
    hits.insert(hits.end(), partial.hits.begin(), partial.hits.end());
    FoldStats(partial.stats, &total);
  }
  total.pairs_returned = hits.size();
  if (stats != nullptr) {
    *stats = total;
  }
  return hits;
}

Result<std::vector<TransectHit>> TransectIndex::SearchDrops(
    double T, double V, const SearchOptions& options, SearchStats* stats) {
  return SearchAll(
      options,
      [&](SegDiffIndex* store, const SearchOptions& per_sensor,
          SearchStats* one) {
        return store->SearchDrops(T, V, per_sensor, one);
      },
      stats);
}

Result<std::vector<TransectHit>> TransectIndex::SearchJumps(
    double T, double V, const SearchOptions& options, SearchStats* stats) {
  return SearchAll(
      options,
      [&](SegDiffIndex* store, const SearchOptions& per_sensor,
          SearchStats* one) {
        return store->SearchJumps(T, V, per_sensor, one);
      },
      stats);
}

Result<StoreLru::Handle> TransectIndex::sensor(int index) {
  if (index < 0 || index >= sensor_count()) {
    return Status::InvalidArgument("sensor index out of range");
  }
  return stores_->Acquire(index);
}

Status TransectIndex::Checkpoint() {
  // Only resident stores can have unpersisted state: eviction
  // checkpoints a store before closing it, and untouched stores were
  // never opened.
  const std::vector<int> open = stores_->OpenSensors();
  auto checkpoint_one = [&](size_t i) -> Status {
    SEGDIFF_ASSIGN_OR_RETURN(StoreLru::Handle store,
                             stores_->Acquire(open[i]));
    return store->Checkpoint();
  };
  const size_t threads = MaintenanceThreads(open.size());
  if (threads < 2) {
    for (size_t i = 0; i < open.size(); ++i) {
      SEGDIFF_RETURN_IF_ERROR(checkpoint_one(i));
    }
    return Status::OK();
  }
  ThreadPool* pool = EnsurePool(threads);
  Status status = pool->ParallelFor(open.size(), checkpoint_one);
  ReleasePool();
  return status;
}

Status TransectIndex::DropCaches() {
  const std::vector<int> open = stores_->OpenSensors();
  for (int s : open) {
    SEGDIFF_ASSIGN_OR_RETURN(StoreLru::Handle store, stores_->Acquire(s));
    SEGDIFF_RETURN_IF_ERROR(store->DropCaches());
  }
  return Status::OK();
}

Result<TransectSizes> TransectIndex::GetSizes() {
  // Per-shard partial sums merged in shard order: integer sums, so the
  // parallel sweep equals the serial one exactly.
  const size_t shard_count = catalog_.shard_count();
  const size_t threads = MaintenanceThreads(shard_count);
  ThreadPool* pool = threads >= 2 ? EnsurePool(threads) : nullptr;
  std::vector<TransectSizes> partials;
  Status status = ParallelMap(
      pool, shard_count, nullptr, &partials,
      [&](size_t shard, TransectSizes* out) -> Status {
        const ShardInfo& info = catalog_.shard(shard);
        const int last = info.first_sensor + info.sensor_count;
        for (int s = info.first_sensor; s < last; ++s) {
          SEGDIFF_ASSIGN_OR_RETURN(StoreLru::Handle store,
                                   stores_->Acquire(s));
          const SegDiffSizes one = store->GetSizes();
          out->feature_bytes += one.feature_bytes;
          out->feature_rows += one.feature_rows;
          out->index_bytes += one.index_bytes;
          out->file_bytes += one.file_bytes;
        }
        return Status::OK();
      });
  if (pool != nullptr) {
    ReleasePool();
  }
  if (!status.ok()) {
    return status;
  }
  TransectSizes sizes;
  for (const TransectSizes& one : partials) {
    sizes.feature_bytes += one.feature_bytes;
    sizes.feature_rows += one.feature_rows;
    sizes.index_bytes += one.index_bytes;
    sizes.file_bytes += one.file_bytes;
  }
  return sizes;
}

ThreadPool* TransectIndex::EnsurePool(size_t num_threads) {
  const size_t workers = num_threads - 1;
  std::lock_guard<std::mutex> lock(pool_mu_);
  // Resizing destroys the pool (joining its workers), so it is only safe
  // when no other fan-out holds it; concurrent users with a different
  // width simply share the existing pool — ParallelFor spreads over
  // whatever workers exist plus the calling thread, so only the
  // parallelism degree differs, never the results.
  if (pool_ == nullptr || (pool_->size() != workers && pool_users_ == 0)) {
    pool_ = std::make_unique<ThreadPool>(workers);
  }
  ++pool_users_;
  return pool_.get();
}

void TransectIndex::ReleasePool() {
  std::lock_guard<std::mutex> lock(pool_mu_);
  --pool_users_;
}

size_t TransectIndex::MaintenanceThreads(size_t items) const {
  size_t threads = std::thread::hardware_concurrency();
  if (threads < 2) {
    threads = 2;  // stores sleep on IO; overlap helps even on one core
  }
  threads = std::min<size_t>(threads, 8);
  threads = std::min(threads, items);
  if (stores_->max_open() != 0) {
    threads = std::min(threads, stores_->max_open());
  }
  return threads;
}

}  // namespace segdiff
