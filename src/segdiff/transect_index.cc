#include "segdiff/transect_index.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <string>
#include <thread>
#include <unordered_set>
#include <utility>

#include "common/env.h"
#include "common/thread_pool.h"
#include "storage/db.h"
#include "storage/pager.h"
#include "storage/wal.h"

namespace segdiff {
namespace {

/// Folds one search's stats into a running total. Only deterministic
/// fields matter for the serial/parallel differential: the integer and
/// bool fields are associative sums/ORs, so folding per-shard partials
/// in shard order gives the same totals as the flat serial loop. The
/// wall-clock doubles (seconds, admission_wait_ms) are additive too but
/// naturally vary run to run.
void FoldStats(const SearchStats& one, SearchStats* total) {
  total->scan.Add(one.scan);
  total->queries_issued += one.queries_issued;
  total->seconds += one.seconds;
  total->snapshot_observations += one.snapshot_observations;
  total->truncated = total->truncated || one.truncated;
  total->partial = total->partial || one.partial;
  total->result_bytes_peak =
      std::max(total->result_bytes_peak, one.result_bytes_peak);
  total->admission_wait_ms += one.admission_wait_ms;
}

/// The transect-level fold: base stats plus the fault-isolation ledger.
/// Failure records merge in shard order and stay capped, so the
/// counters are exact and the records deterministic.
void FoldTransectStats(const TransectSearchStats& one,
                       TransectSearchStats* total) {
  FoldStats(one, total);
  total->sensors_searched += one.sensors_searched;
  total->sensors_failed += one.sensors_failed;
  total->sensors_skipped += one.sensors_skipped;
  total->sensors_degraded += one.sensors_degraded;
  for (const TransectSensorFailure& failure : one.failures) {
    if (total->failures.size() < TransectSearchStats::kMaxFailureRecords) {
      total->failures.push_back(failure);
    }
  }
}

/// Which per-sensor failures a stats-carrying search may isolate: the
/// store is damaged or its IO failed. Governance and programming errors
/// (deadline, cancellation, budget, bad arguments) abort the fan-out —
/// skipping sensors would silently misreport a governed search as a
/// partial one.
bool IsolableFailure(const Status& status) {
  return status.IsCorruption() || status.IsIOError() || status.IsNotFound();
}

void RecordFailure(TransectSearchStats* stats, int sensor,
                   const Status& status, bool skipped) {
  if (skipped) {
    ++stats->sensors_skipped;
  } else {
    ++stats->sensors_failed;
  }
  stats->partial = true;
  if (stats->failures.size() < TransectSearchStats::kMaxFailureRecords) {
    stats->failures.push_back(TransectSensorFailure{sensor, status});
  }
}

Status IgnoreNotFound(Status status) {
  if (status.IsNotFound()) {
    return Status::OK();
  }
  return status;
}

/// Deletes one sensor store file and its WAL sidecar; absent files are
/// fine (GC must be idempotent across repeated recovery passes).
Status RemoveStoreFiles(Vfs* vfs, const std::string& path) {
  SEGDIFF_RETURN_IF_ERROR(IgnoreNotFound(vfs->RemoveFile(path)));
  return IgnoreNotFound(vfs->RemoveFile(Wal::PathFor(path)));
}

/// Does `name` look like a shard directory this module could have
/// created — "shard<5 digits>" (Place's default) or
/// "g<digits>-shard<5 digits>" (a rebalance generation)? The orphan GC
/// only ever deletes names matching this shape, so user files sitting
/// next to the CATALOG are never at risk.
bool LooksLikeShardDir(const std::string& name) {
  size_t digits = std::string::npos;
  if (name.compare(0, 5, "shard") == 0) {
    digits = 5;
  } else if (!name.empty() && name[0] == 'g') {
    size_t i = 1;
    while (i < name.size() &&
           std::isdigit(static_cast<unsigned char>(name[i])) != 0) {
      ++i;
    }
    if (i > 1 && name.compare(i, 6, "-shard") == 0) {
      digits = i + 6;
    }
  }
  if (digits == std::string::npos || name.size() != digits + 5) {
    return false;
  }
  for (size_t i = digits; i < name.size(); ++i) {
    if (std::isdigit(static_cast<unsigned char>(name[i])) == 0) {
      return false;
    }
  }
  return true;
}

/// Resolves the sweep rate limit: the explicit option wins, then the
/// SEGDIFF_SCRUB_RATE_BYTES_PER_SEC environment knob; 0 = unlimited.
uint64_t ResolveScrubRate(const TransectVerifyOptions& options) {
  if (options.rate_limit_bytes_per_sec > 0) {
    return options.rate_limit_bytes_per_sec;
  }
  const int64_t from_env = GetEnvInt64("SEGDIFF_SCRUB_RATE_BYTES_PER_SEC", 0);
  return from_env > 0 ? static_cast<uint64_t>(from_env) : 0;
}

/// Sleeps just long enough that `bytes` read since `start` stay under
/// `rate` bytes/sec. Coarse (per-sensor granularity) by design: the
/// point is to keep a background sweep from saturating the disk, not to
/// shape traffic precisely.
void ThrottleSweep(uint64_t rate, uint64_t bytes,
                   std::chrono::steady_clock::time_point start) {
  if (rate == 0 || bytes == 0) {
    return;
  }
  const double budget_s =
      static_cast<double>(bytes) / static_cast<double>(rate);
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (budget_s > elapsed_s) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(budget_s - elapsed_s));
  }
}

}  // namespace

Result<std::unique_ptr<TransectIndex>> TransectIndex::Open(
    const std::string& directory, int sensor_count,
    const SegDiffOptions& options) {
  TransectOptions transect_options;
  transect_options.store = options;
  return Open(directory, sensor_count, transect_options);
}

Result<std::unique_ptr<TransectIndex>> TransectIndex::Open(
    const std::string& directory, int sensor_count,
    const TransectOptions& options) {
  Vfs* vfs = options.store.vfs != nullptr ? options.store.vfs : Vfs::Default();
  SEGDIFF_RETURN_IF_ERROR(vfs->MakeDir(directory));

  std::unique_ptr<TransectIndex> transect(new TransectIndex());
  transect->directory_ = directory;
  transect->store_options_ = options.store;

  Result<ShardCatalog> loaded = ShardCatalog::Load(vfs, directory);
  if (loaded.ok()) {
    if (sensor_count > 0 && sensor_count != loaded->sensor_count()) {
      return Status::InvalidArgument(
          "transect " + directory + " holds " +
          std::to_string(loaded->sensor_count()) + " sensors, not " +
          std::to_string(sensor_count));
    }
    transect->catalog_ = std::move(loaded).value();
    // Finish (or undo) a rebalance the previous process did not
    // survive; afterwards exactly one layout exists on disk.
    SEGDIFF_RETURN_IF_ERROR(
        RecoverMigration(vfs, directory, transect->catalog_));
  } else if (loaded.status().IsNotFound()) {
    if (vfs->FileExists(directory + "/" + MigrationManifest::kFileName)) {
      // The intent record survived but the catalog did not — there is
      // no authoritative layout to recover toward, so refuse loudly
      // rather than guess (CATALOG is written before the first store
      // and swapped atomically, so this never arises from a crash).
      return Status::Corruption(
          "transect " + directory +
          ": MIGRATION manifest present but no CATALOG");
    }
    if (sensor_count <= 0) {
      return Status::InvalidArgument("sensor_count must be positive");
    }
    int sensors_per_shard = options.sensors_per_shard;
    if (sensors_per_shard <= 0) {
      sensors_per_shard = static_cast<int>(
          GetEnvInt64("SEGDIFF_SENSORS_PER_SHARD", 256));
    }
    if (sensors_per_shard <= 0) {
      sensors_per_shard = 256;
    }
    // A pre-sharding flat directory is adopted in place: same ranges
    // for fan-out, but every store path stays in the root.
    const bool flat = vfs->FileExists(directory + "/sensor0.db");
    transect->catalog_ =
        ShardCatalog::Place(sensor_count, sensors_per_shard, flat);
    for (size_t i = 0; i < transect->catalog_.shard_count(); ++i) {
      if (!transect->catalog_.shard(i).dir.empty()) {
        SEGDIFF_RETURN_IF_ERROR(
            vfs->MakeDir(transect->catalog_.ShardDirPath(directory, i)));
      }
    }
    SEGDIFF_RETURN_IF_ERROR(transect->catalog_.Save(vfs, directory));
  } else {
    return loaded.status();  // Corruption stays loud
  }

  size_t max_open = options.max_open_stores;
  if (max_open == 0) {
    const int64_t from_env = GetEnvInt64("SEGDIFF_MAX_OPEN_STORES", 0);
    max_open = from_env > 0 ? static_cast<size_t>(from_env) : 0;
  }
  TransectIndex* raw = transect.get();
  transect->stores_ = std::make_unique<StoreLru>(
      max_open, [raw](int s) -> Result<std::unique_ptr<SegDiffIndex>> {
        return SegDiffIndex::Open(
            raw->catalog_.StorePath(raw->directory_, s), raw->store_options_);
      });
  return transect;
}

TransectIndex::~TransectIndex() = default;

Status TransectIndex::RecoverMigration(Vfs* vfs, const std::string& directory,
                                       const ShardCatalog& live) {
  // A crash (or dead device) between an atomic save's write and rename
  // leaves a stale `.tmp` behind that nothing will ever read — sweep
  // both candidates up front, whatever the manifest says.
  SEGDIFF_RETURN_IF_ERROR(IgnoreNotFound(vfs->RemoveFile(
      directory + "/" + std::string(ShardCatalog::kManifestName) + ".tmp")));
  SEGDIFF_RETURN_IF_ERROR(IgnoreNotFound(vfs->RemoveFile(
      directory + "/" + std::string(MigrationManifest::kFileName) + ".tmp")));
  Result<MigrationManifest> manifest = MigrationManifest::Load(vfs, directory);
  if (manifest.status().IsNotFound()) {
    return Status::OK();  // no rebalance was in flight
  }
  if (!manifest.ok()) {
    if (manifest.status().IsCorruption()) {
      // The intent record is torn (crash mid-save of the manifest
      // itself, before any target byte existed). The CATALOG is still
      // the single source of truth: drop the unreadable intent and
      // sweep any shard-shaped directories it might have referenced.
      SEGDIFF_RETURN_IF_ERROR(MigrationManifest::Remove(vfs, directory));
      return GcOrphanDirs(vfs, directory, live);
    }
    return manifest.status();
  }
  const std::string live_raw = live.Encode();
  if (live_raw == manifest->target.Encode()) {
    // The atomic catalog swap committed before the crash: roll forward
    // by finishing the source layout's garbage collection.
    SEGDIFF_RETURN_IF_ERROR(
        GcLayout(vfs, directory, manifest->source, manifest->target));
  } else if (live_raw == manifest->source.Encode()) {
    // The swap never happened: roll back by deleting the half-built
    // target layout.
    SEGDIFF_RETURN_IF_ERROR(
        GcLayout(vfs, directory, manifest->target, manifest->source));
  } else {
    // Three distinct layouts cannot exist: the manifest is removed
    // before a new rebalance starts and the catalog only ever swaps
    // between its two embedded states.
    return Status::Corruption(
        "migration manifest in " + directory +
        " matches neither the live catalog's source nor target layout");
  }
  return MigrationManifest::Remove(vfs, directory);
}

Status TransectIndex::GcLayout(Vfs* vfs, const std::string& directory,
                               const ShardCatalog& doomed,
                               const ShardCatalog& keep) {
  std::unordered_set<std::string> keep_paths;
  for (int s = 0; s < keep.sensor_count(); ++s) {
    keep_paths.insert(keep.StorePath(directory, s));
  }
  for (int s = 0; s < doomed.sensor_count(); ++s) {
    const std::string path = doomed.StorePath(directory, s);
    if (keep_paths.count(path) != 0) {
      continue;  // flat layouts can share paths with their successor
    }
    SEGDIFF_RETURN_IF_ERROR(RemoveStoreFiles(vfs, path));
  }
  std::unordered_set<std::string> keep_dirs;
  for (size_t i = 0; i < keep.shard_count(); ++i) {
    keep_dirs.insert(keep.shard(i).dir);
  }
  std::unordered_set<std::string> visited;
  for (size_t i = 0; i < doomed.shard_count(); ++i) {
    const std::string& dir = doomed.shard(i).dir;
    if (dir.empty() || keep_dirs.count(dir) != 0 ||
        !visited.insert(dir).second) {
      continue;
    }
    const std::string full = directory + "/" + dir;
    // A crash can leave strays (repair temps, half-copied stores) in a
    // doomed directory; everything in it belongs to the doomed layout.
    Result<std::vector<std::string>> entries = vfs->ListDir(full);
    if (entries.status().IsNotFound()) {
      continue;  // an earlier recovery pass already removed it
    }
    SEGDIFF_RETURN_IF_ERROR(entries.status());
    for (const std::string& name : *entries) {
      SEGDIFF_RETURN_IF_ERROR(
          IgnoreNotFound(vfs->RemoveFile(full + "/" + name)));
    }
    SEGDIFF_RETURN_IF_ERROR(IgnoreNotFound(vfs->RemoveDir(full)));
  }
  return vfs->SyncDir(directory + "/" + ShardCatalog::kManifestName);
}

Status TransectIndex::GcOrphanDirs(Vfs* vfs, const std::string& directory,
                                   const ShardCatalog& live) {
  std::unordered_set<std::string> live_dirs;
  for (size_t i = 0; i < live.shard_count(); ++i) {
    live_dirs.insert(live.shard(i).dir);
  }
  SEGDIFF_ASSIGN_OR_RETURN(const std::vector<std::string> entries,
                           vfs->ListDir(directory));
  for (const std::string& name : entries) {
    if (name == std::string(ShardCatalog::kManifestName) + ".tmp" ||
        name == std::string(MigrationManifest::kFileName) + ".tmp") {
      SEGDIFF_RETURN_IF_ERROR(
          IgnoreNotFound(vfs->RemoveFile(directory + "/" + name)));
      continue;
    }
    if (!LooksLikeShardDir(name) || live_dirs.count(name) != 0) {
      continue;
    }
    const std::string full = directory + "/" + name;
    Result<std::vector<std::string>> children = vfs->ListDir(full);
    if (!children.ok()) {
      continue;  // a plain file that merely looks like a shard dir
    }
    for (const std::string& child : *children) {
      SEGDIFF_RETURN_IF_ERROR(
          IgnoreNotFound(vfs->RemoveFile(full + "/" + child)));
    }
    SEGDIFF_RETURN_IF_ERROR(IgnoreNotFound(vfs->RemoveDir(full)));
  }
  return vfs->SyncDir(directory + "/" + ShardCatalog::kManifestName);
}

Status TransectIndex::IngestSensorSeries(int sensor, const Series& series) {
  std::shared_lock<std::shared_mutex> layout_lock(layout_mu_);
  if (rebalancing_.load(std::memory_order_acquire)) {
    return Status::ResourceExhausted(
        "transect is rebalancing; ingest is paused — retry shortly");
  }
  if (sensor < 0 || sensor >= catalog_.sensor_count()) {
    return Status::InvalidArgument("sensor index out of range");
  }
  SEGDIFF_ASSIGN_OR_RETURN(StoreLru::Handle store, stores_->Acquire(sensor));
  SEGDIFF_RETURN_IF_ERROR(store->IngestSeries(series));
  // IngestSeries finalizes its own trailing segment, so the sensor has
  // nothing pending anymore.
  std::lock_guard<std::mutex> lock(dirty_mu_);
  dirty_.erase(sensor);
  return Status::OK();
}

Status TransectIndex::AppendSensorObservation(int sensor, double t,
                                              double v) {
  std::shared_lock<std::shared_mutex> layout_lock(layout_mu_);
  if (rebalancing_.load(std::memory_order_acquire)) {
    return Status::ResourceExhausted(
        "transect is rebalancing; ingest is paused — retry shortly");
  }
  if (sensor < 0 || sensor >= catalog_.sensor_count()) {
    return Status::InvalidArgument("sensor index out of range");
  }
  SEGDIFF_ASSIGN_OR_RETURN(StoreLru::Handle store, stores_->Acquire(sensor));
  SEGDIFF_RETURN_IF_ERROR(store->AppendObservation(t, v));
  std::lock_guard<std::mutex> lock(dirty_mu_);
  dirty_.insert(sensor);
  return Status::OK();
}

Status TransectIndex::FlushAllPending() {
  std::shared_lock<std::shared_mutex> layout_lock(layout_mu_);
  // Surface sticky eviction-checkpoint failures here too: re-mark the
  // victims dirty so this sweep retries them through a fresh open (the
  // WAL still holds their acknowledged data), and report the first
  // failure once even when the retry succeeds — the caller asked for
  // "everything durable" and deserves to know a checkpoint was lost.
  Status eviction_error;
  for (auto& [sensor, status] : stores_->TakeEvictionErrors()) {
    {
      std::lock_guard<std::mutex> lock(dirty_mu_);
      dirty_.insert(sensor);
    }
    if (eviction_error.ok()) {
      eviction_error = std::move(status);
    }
  }
  std::vector<int> dirty;
  {
    std::lock_guard<std::mutex> lock(dirty_mu_);
    dirty.assign(dirty_.begin(), dirty_.end());
  }
  std::sort(dirty.begin(), dirty.end());
  auto flush_one = [&](size_t i) -> Status {
    const int sensor = dirty[i];
    SEGDIFF_ASSIGN_OR_RETURN(StoreLru::Handle store,
                             stores_->Acquire(sensor));
    SEGDIFF_RETURN_IF_ERROR(store->FlushPending());
    std::lock_guard<std::mutex> lock(dirty_mu_);
    dirty_.erase(sensor);
    return Status::OK();
  };
  const size_t threads = MaintenanceThreads(dirty.size());
  Status status;
  if (threads < 2) {
    for (size_t i = 0; i < dirty.size() && status.ok(); ++i) {
      status = flush_one(i);
    }
  } else {
    ThreadPool* pool = EnsurePool(threads);
    // ParallelFor keeps the first error (FirstErrorCollector) and skips
    // remaining sensors; still-dirty sensors stay tracked for the retry.
    status = pool->ParallelFor(dirty.size(), flush_one);
    ReleasePool();
  }
  if (!status.ok()) {
    return status;
  }
  return eviction_error;
}

Status TransectIndex::IngestAllSensors(const std::vector<Series>& all_series,
                                       size_t num_threads) {
  if (all_series.size() != static_cast<size_t>(sensor_count())) {
    return Status::InvalidArgument(
        "IngestAllSensors needs exactly one series per sensor");
  }
  if (num_threads <= 1) {
    for (int s = 0; s < sensor_count(); ++s) {
      SEGDIFF_RETURN_IF_ERROR(IngestSensorSeries(s, all_series[s]));
    }
    return Status::OK();
  }
  // Each task touches exactly one store, so per-sensor pipelines never
  // share mutable state; the pool only parallelizes across sensors.
  // Each worker pins one store at a time, so even a tiny LRU throttles
  // rather than deadlocks.
  ThreadPool* pool = EnsurePool(num_threads);
  Status status =
      pool->ParallelFor(all_series.size(), [&](size_t s) -> Status {
        return IngestSensorSeries(static_cast<int>(s), all_series[s]);
      });
  ReleasePool();
  return status;
}

template <typename SearchFn>
Result<std::vector<TransectHit>> TransectIndex::SearchAll(
    const SearchOptions& options, const SearchFn& search,
    TransectSearchStats* stats) {
  std::shared_lock<std::shared_mutex> layout_lock(layout_mu_);
  // One deadline for the whole transect: the relative budget converts to
  // an absolute deadline once, so N sensors share it instead of each
  // starting a fresh deadline_ms clock.
  SearchOptions per_sensor = options;
  if (options.deadline_ms > 0) {
    per_sensor.deadline = Deadline::Earlier(
        options.deadline, Deadline::AfterMillis(options.deadline_ms));
    per_sensor.deadline_ms = 0;
  }
  // At transect level num_threads is the scatter-gather width; the
  // per-store searches run single-threaded so the fan-out, not nested
  // pools, uses the machine.
  per_sensor.num_threads = 0;
  QueryContext ctx;
  ctx.cancel = per_sensor.cancel;
  ctx.deadline = per_sensor.deadline;

  const size_t shard_count = catalog_.shard_count();
  size_t fan_out = std::min(options.num_threads, shard_count);
  if (stores_->max_open() != 0) {
    // Each worker (including the caller) pins at most one store, so a
    // fan-out wider than the cache would only make workers queue on
    // Acquire.
    fan_out = std::min(fan_out, stores_->max_open());
  }

  // A stats out-param opts into fault isolation: damaged sensors are
  // skipped and accounted instead of failing the whole fan-out.
  const bool isolate = stats != nullptr;

  // Scatter: each shard builds an independent partial — its hits
  // already in (sensor, pair) order because sensors are scanned
  // ascending and each store returns sorted pairs.
  struct ShardPartial {
    std::vector<TransectHit> hits;
    TransectSearchStats stats;
  };
  ThreadPool* pool = fan_out >= 2 ? EnsurePool(fan_out) : nullptr;
  std::vector<ShardPartial> partials;
  Status status = ParallelMap(
      pool, shard_count, &ctx, &partials,
      [&](size_t shard, ShardPartial* out) -> Status {
        const ShardInfo& info = catalog_.shard(shard);
        const int last = info.first_sensor + info.sensor_count;
        for (int s = info.first_sensor; s < last; ++s) {
          // Sensor-boundary check point, in addition to the
          // page-granular checks inside each store's search.
          SEGDIFF_RETURN_IF_ERROR(ctx.Check());
          Result<StoreLru::Handle> acquired = stores_->Acquire(s);
          if (!acquired.ok()) {
            if (!isolate || !IsolableFailure(acquired.status())) {
              return acquired.status();
            }
            RecordFailure(&out->stats, s, acquired.status(),
                          /*skipped=*/true);
            continue;
          }
          StoreLru::Handle store = std::move(acquired).value();
          SearchStats one;
          Result<std::vector<PairId>> pairs =
              search(store.get(), per_sensor, &one);
          if (!pairs.ok()) {
            if (!isolate || !IsolableFailure(pairs.status())) {
              return pairs.status();
            }
            RecordFailure(&out->stats, s, pairs.status(),
                          /*skipped=*/false);
            continue;
          }
          for (const PairId& pair : *pairs) {
            out->hits.push_back(TransectHit{s, pair});
          }
          FoldStats(one, &out->stats);
          ++out->stats.sensors_searched;
          if (isolate && store->db()->GetHealth().degraded) {
            // Degraded stores still serve reads; their hits are in the
            // result, the flag just tells the caller writes are failing.
            ++out->stats.sensors_degraded;
          }
        }
        return Status::OK();
      });
  if (pool != nullptr) {
    ReleasePool();
  }
  if (!status.ok()) {
    return status;
  }

  // Gather: fold partials in shard index order — the merge is
  // deterministic no matter which worker finished first, and equals the
  // serial loop's output byte for byte.
  std::vector<TransectHit> hits;
  TransectSearchStats total;
  for (ShardPartial& partial : partials) {
    hits.insert(hits.end(), partial.hits.begin(), partial.hits.end());
    FoldTransectStats(partial.stats, &total);
  }
  total.pairs_returned = hits.size();
  if (stats != nullptr) {
    *stats = std::move(total);
  }
  return hits;
}

Result<std::vector<TransectHit>> TransectIndex::SearchDrops(
    double T, double V, const SearchOptions& options,
    TransectSearchStats* stats) {
  return SearchAll(
      options,
      [&](SegDiffIndex* store, const SearchOptions& per_sensor,
          SearchStats* one) {
        return store->SearchDrops(T, V, per_sensor, one);
      },
      stats);
}

Result<std::vector<TransectHit>> TransectIndex::SearchJumps(
    double T, double V, const SearchOptions& options,
    TransectSearchStats* stats) {
  return SearchAll(
      options,
      [&](SegDiffIndex* store, const SearchOptions& per_sensor,
          SearchStats* one) {
        return store->SearchJumps(T, V, per_sensor, one);
      },
      stats);
}

Status TransectIndex::Rebalance(int new_sensors_per_shard) {
  if (new_sensors_per_shard <= 0) {
    return Status::InvalidArgument("sensors_per_shard must be positive");
  }
  std::lock_guard<std::mutex> maintenance(maintenance_mu_);
  {
    std::shared_lock<std::shared_mutex> layout_lock(layout_mu_);
    if (new_sensors_per_shard == catalog_.sensors_per_shard()) {
      return Status::OK();  // already laid out this way
    }
  }
  if (rebalancing_.exchange(true)) {
    return Status::ResourceExhausted("a rebalance is already running");
  }
  struct ClearFlag {
    std::atomic<bool>* flag;
    ~ClearFlag() { flag->store(false); }
  } clear_flag{&rebalancing_};

  // Quiesce ingest: writers check rebalancing_ under the shared layout
  // lock, so after this brief exclusive acquisition every in-flight
  // append has finished and every later one bounces — the copies below
  // see a frozen data set (searches keep running throughout).
  { std::unique_lock<std::shared_mutex> barrier(layout_mu_); }

  Vfs* const vfs = this->vfs();

  // Pending sticky eviction errors are moot: every sensor is about to
  // be rewritten into fresh files from its live, WAL-replayed state.
  (void)stores_->TakeEvictionErrors();

  ShardCatalog source;
  ShardCatalog target;
  {
    std::shared_lock<std::shared_mutex> layout_lock(layout_mu_);
    source = catalog_;
    // Generation-tagged directories ("g<sps>-shard00000", ...) so a
    // half-built target can never collide with the live layout.
    target = ShardCatalog::Place(
        catalog_.sensor_count(), new_sensors_per_shard, /*flat=*/false,
        "g" + std::to_string(new_sensors_per_shard) + "-shard");
  }

  // Declare intent first: from here until the manifest is removed, a
  // crash at any point is recovered by the next Open — rolled forward
  // past the commit below, rolled back before it.
  MigrationManifest manifest;
  manifest.source = source;
  manifest.target = target;
  SEGDIFF_RETURN_IF_ERROR(manifest.Save(vfs, directory_));

  auto abort = [&](Status status) {
    // Best-effort rollback: tear down the half-built target and drop
    // the intent so the live layout stays the only one. If the
    // teardown itself fails (e.g. the fault that aborted us persists),
    // Open-time recovery finishes the rollback from the manifest.
    if (GcLayout(vfs, directory_, target, source).ok()) {
      (void)MigrationManifest::Remove(vfs, directory_);
    }
    return status;
  };

  for (size_t i = 0; i < target.shard_count(); ++i) {
    Status made = vfs->MakeDir(target.ShardDirPath(directory_, i));
    if (!made.ok()) {
      return abort(made);
    }
  }
  Status synced =
      vfs->SyncDir(directory_ + "/" + ShardCatalog::kManifestName);
  if (!synced.ok()) {
    return abort(synced);
  }

  // Copy every sensor into the new layout. Compact saves the source's
  // ingest state first, so un-flushed streaming pipelines resume
  // exactly where they left off inside the copy; CompactInto inherits
  // the Vfs and syncs the destination file.
  const int sensors = source.sensor_count();
  auto copy_one = [&](size_t i) -> Status {
    const int s = static_cast<int>(i);
    const std::string dest = target.StorePath(directory_, s);
    // A previously failed attempt may have left a partial copy here.
    SEGDIFF_RETURN_IF_ERROR(RemoveStoreFiles(vfs, dest));
    std::shared_lock<std::shared_mutex> layout_lock(layout_mu_);
    SEGDIFF_ASSIGN_OR_RETURN(StoreLru::Handle store, stores_->Acquire(s));
    SEGDIFF_RETURN_IF_ERROR(store->Compact(dest));
    return vfs->SyncDir(dest);
  };
  const size_t threads = MaintenanceThreads(static_cast<size_t>(sensors));
  Status copied;
  if (threads < 2) {
    for (int s = 0; s < sensors && copied.ok(); ++s) {
      copied = copy_one(static_cast<size_t>(s));
    }
  } else {
    ThreadPool* pool = EnsurePool(threads);
    copied = pool->ParallelFor(static_cast<size_t>(sensors), copy_one);
    ReleasePool();
  }
  if (!copied.ok()) {
    return abort(copied);
  }

  // Commit: under the exclusive layout lock no search holds a store
  // pinned, so close every resident store (its file is about to stop
  // being the layout), then atomically swap the CATALOG. The swap is
  // the single point of no return — before it a crash rolls back,
  // after it a crash rolls forward.
  {
    std::unique_lock<std::shared_mutex> layout_lock(layout_mu_);
    for (int s : stores_->OpenSensors()) {
      (void)stores_->Evict(s);  // the copies already hold this state
    }
    (void)stores_->TakeEvictionErrors();
    Status committed = target.Save(vfs, directory_);
    if (!committed.ok()) {
      layout_lock.unlock();
      return abort(committed);
    }
    catalog_ = target;  // the open-factory resolves paths through this
  }
  Status cleaned = GcLayout(vfs, directory_, source, target);
  if (cleaned.ok()) {
    cleaned = MigrationManifest::Remove(vfs, directory_);
  }
  if (!cleaned.ok()) {
    // The rebalance itself committed; only the old generation's
    // teardown is unfinished, and the surviving manifest makes the
    // next Open complete it.
    return cleaned.WithMessage(
        "rebalance committed, but cleaning up the old layout failed (the "
        "next Open finishes it): " + std::string(cleaned.message()));
  }
  return Status::OK();
}

Result<TransectHealthReport> TransectIndex::Verify(
    const TransectVerifyOptions& options) {
  std::lock_guard<std::mutex> maintenance(maintenance_mu_);
  const uint64_t rate = ResolveScrubRate(options);
  TransectHealthReport report;
  {
    std::shared_lock<std::shared_mutex> layout_lock(layout_mu_);
    report.sensors_total = catalog_.sensor_count();
  }
  const auto start = std::chrono::steady_clock::now();
  auto add_issue = [&](int sensor, bool corrupt, bool transient,
                       std::string message) {
    if (report.issues.size() < TransectHealthReport::kMaxIssueRecords) {
      report.issues.push_back(
          TransectSensorIssue{sensor, corrupt, transient,
                              std::move(message)});
    }
  };
  for (int s = 0; s < report.sensors_total; ++s) {
    bool scanned = true;
    {
      std::shared_lock<std::shared_mutex> layout_lock(layout_mu_);
      Result<StoreLru::Handle> acquired = stores_->Acquire(s);
      if (!acquired.ok()) {
        // Transient IO means "retry the sweep"; anything else that
        // keeps a store closed counts as damage.
        const Status& status = acquired.status();
        const bool transient = status.IsTransient();
        if (transient) {
          ++report.sensors_unavailable;
        } else {
          ++report.sensors_corrupt;
        }
        add_issue(s, !transient, transient,
                  "store did not open: " + std::string(status.message()));
        continue;
      }
      StoreLru::Handle store = std::move(acquired).value();
      const StoreHealth health = store->db()->GetHealth();
      if (health.degraded) {
        ++report.sensors_degraded;
        add_issue(s, false, false,
                  "degraded (read-only): " + health.degraded_reason);
      }
      report.quarantined_pages += health.quarantined_pages;
      report.bytes_scanned += store->GetSizes().file_bytes;
      if (options.scrub) {
        Result<ScrubReport> scrubbed = store->db()->Scrub();
        if (!scrubbed.ok()) {
          const Status& status = scrubbed.status();
          const bool transient = status.IsTransient();
          if (transient) {
            ++report.sensors_unavailable;
          } else {
            ++report.sensors_corrupt;
          }
          add_issue(s, !transient, transient,
                    "scrub failed: " + std::string(status.message()));
          scanned = false;
        } else {
          report.pages_checked += scrubbed->pages_checked;
          report.pages_unverifiable += scrubbed->pages_unverifiable;
          if (!scrubbed->clean()) {
            ++report.sensors_corrupt;
            report.pages_corrupt += scrubbed->corrupt.size();
            add_issue(s, true, false,
                      std::to_string(scrubbed->corrupt.size()) +
                          " corrupt page(s), first: " +
                          scrubbed->corrupt.front().message);
          }
        }
      }
    }
    if (scanned) {
      ++report.sensors_scanned;
    }
    ThrottleSweep(rate, report.bytes_scanned, start);
  }
  return report;
}

Result<TransectRepairReport> TransectIndex::RepairAll(
    const TransectVerifyOptions& options) {
  std::lock_guard<std::mutex> maintenance(maintenance_mu_);
  const uint64_t rate = ResolveScrubRate(options);
  TransectRepairReport report;
  int sensors = 0;
  {
    std::shared_lock<std::shared_mutex> layout_lock(layout_mu_);
    sensors = catalog_.sensor_count();
  }
  const auto start = std::chrono::steady_clock::now();
  for (int s = 0; s < sensors; ++s) {
    SEGDIFF_RETURN_IF_ERROR(RepairSensor(s, &report));
    ThrottleSweep(rate, report.bytes_scanned, start);
  }
  return report;
}

Status TransectIndex::RepairSensor(int sensor,
                                   TransectRepairReport* report) {
  ++report->sensors_checked;
  auto add_issue = [&](bool corrupt, bool transient, std::string message) {
    if (report->issues.size() < TransectHealthReport::kMaxIssueRecords) {
      report->issues.push_back(
          TransectSensorIssue{sensor, corrupt, transient,
                              std::move(message)});
    }
  };

  // Diagnose under the shared lock: searches keep serving while the
  // healthy majority of the transect is swept.
  bool damaged = false;
  {
    std::shared_lock<std::shared_mutex> layout_lock(layout_mu_);
    Result<StoreLru::Handle> acquired = stores_->Acquire(sensor);
    if (!acquired.ok()) {
      const Status& status = acquired.status();
      if (status.IsTransient()) {
        // IO flakiness, not damage: salvaging now could lose rows a
        // retry would have kept. Report and leave the store alone.
        ++report->sensors_failed;
        add_issue(false, true,
                  "store unavailable: " + std::string(status.message()));
        return Status::OK();
      }
      damaged = true;
    } else {
      StoreLru::Handle store = std::move(acquired).value();
      const StoreHealth health = store->db()->GetHealth();
      report->bytes_scanned += store->GetSizes().file_bytes;
      Result<ScrubReport> scrubbed = store->db()->Scrub();
      if (!scrubbed.ok()) {
        if (scrubbed.status().IsTransient()) {
          ++report->sensors_failed;
          add_issue(false, true,
                    "scrub failed: " +
                        std::string(scrubbed.status().message()));
          return Status::OK();
        }
        damaged = true;
      } else {
        // A degraded flag or quarantined pages also warrant a rewrite:
        // the salvaged copy starts clean on fresh, writable pages.
        damaged = !scrubbed->clean() || health.quarantined_pages > 0 ||
                  health.degraded;
      }
    }
  }
  if (!damaged) {
    return Status::OK();
  }

  // Salvage and swap under the exclusive lock: nothing may search or
  // append to this (damaged) sensor while its file is replaced, and
  // the brief outage only spans the one store's copy.
  Vfs* const vfs = this->vfs();
  std::string path;
  RepairReport one;
  Status repaired;
  std::string tmp;
  {
    std::unique_lock<std::shared_mutex> layout_lock(layout_mu_);
    path = catalog_.StorePath(directory_, sensor);
    tmp = path + ".repair";
    repaired = RemoveStoreFiles(vfs, tmp);  // stale leftovers
    if (repaired.ok()) {
      // Inner scope: the pin must drop before the Evict below, or the
      // eviction would wait on our own handle forever.
      Result<StoreLru::Handle> acquired = stores_->Acquire(sensor);
      if (acquired.ok()) {
        // Engine-level repair: the WAL already replayed into the live
        // state, so acknowledged-but-unapplied writes survive the copy.
        repaired = (*acquired)->Repair(tmp, &one);
      } else {
        // The store will not open; salvage at the database layer. If
        // even WAL replay fails, retry without it — the data file
        // alone may still hold most of the rows.
        DatabaseOptions raw;
        raw.create_if_missing = false;
        raw.buffer_pool_pages = store_options_.buffer_pool_pages;
        raw.vfs = store_options_.vfs;
        raw.verify_checksums = store_options_.verify_checksums;
        Result<std::unique_ptr<Database>> database =
            Database::Open(path, raw);
        if (!database.ok()) {
          raw.replay_wal = false;
          database = Database::Open(path, raw);
        }
        if (!database.ok()) {
          repaired = database.status();
        } else {
          (*database)->Abandon();  // never write back to the damaged file
          repaired = (*database)->Repair(tmp, &one);
        }
      }
    }
    if (repaired.ok()) {
      (void)stores_->Evict(sensor);  // its file is about to be replaced
      // The old WAL must never replay into the salvaged file (its
      // records belong to the old pages); what it covered is already
      // in the copy or counted as salvage loss.
      repaired = IgnoreNotFound(vfs->RemoveFile(Wal::PathFor(path)));
      if (repaired.ok()) {
        repaired = vfs->Rename(tmp, path);
      }
      if (repaired.ok()) {
        repaired = vfs->SyncDir(path);
      }
    }
  }
  if (!repaired.ok()) {
    (void)RemoveStoreFiles(vfs, tmp);
    ++report->sensors_failed;
    add_issue(repaired.IsCorruption(), repaired.IsTransient(),
              "repair failed: " + std::string(repaired.message()));
    return Status::OK();
  }
  ++report->sensors_repaired;
  report->totals.tables += one.tables;
  report->totals.rows_salvaged += one.rows_salvaged;
  report->totals.pages_skipped += one.pages_skipped;
  report->totals.segments_skipped += one.segments_skipped;
  report->totals.rows_lost += one.rows_lost;
  add_issue(true, false,
            "repaired: " + std::to_string(one.rows_salvaged) +
                " row(s) salvaged, " + std::to_string(one.rows_lost) +
                " lost");
  return Status::OK();
}

Result<StoreLru::Handle> TransectIndex::sensor(int index) {
  std::shared_lock<std::shared_mutex> layout_lock(layout_mu_);
  if (index < 0 || index >= catalog_.sensor_count()) {
    return Status::InvalidArgument("sensor index out of range");
  }
  return stores_->Acquire(index);
}

Status TransectIndex::Checkpoint() {
  std::shared_lock<std::shared_mutex> layout_lock(layout_mu_);
  // Only resident stores can have unpersisted state: eviction
  // checkpoints a store before closing it, and untouched stores were
  // never opened.
  const std::vector<int> open = stores_->OpenSensors();
  auto checkpoint_one = [&](size_t i) -> Status {
    SEGDIFF_ASSIGN_OR_RETURN(StoreLru::Handle store,
                             stores_->Acquire(open[i]));
    return store->Checkpoint();
  };
  const size_t threads = MaintenanceThreads(open.size());
  if (threads < 2) {
    for (size_t i = 0; i < open.size(); ++i) {
      SEGDIFF_RETURN_IF_ERROR(checkpoint_one(i));
    }
    return Status::OK();
  }
  ThreadPool* pool = EnsurePool(threads);
  Status status = pool->ParallelFor(open.size(), checkpoint_one);
  ReleasePool();
  return status;
}

Status TransectIndex::DropCaches() {
  std::shared_lock<std::shared_mutex> layout_lock(layout_mu_);
  const std::vector<int> open = stores_->OpenSensors();
  for (int s : open) {
    SEGDIFF_ASSIGN_OR_RETURN(StoreLru::Handle store, stores_->Acquire(s));
    SEGDIFF_RETURN_IF_ERROR(store->DropCaches());
  }
  return Status::OK();
}

Result<TransectSizes> TransectIndex::GetSizes() {
  std::shared_lock<std::shared_mutex> layout_lock(layout_mu_);
  // Per-shard partial sums merged in shard order: integer sums, so the
  // parallel sweep equals the serial one exactly.
  const size_t shard_count = catalog_.shard_count();
  const size_t threads = MaintenanceThreads(shard_count);
  ThreadPool* pool = threads >= 2 ? EnsurePool(threads) : nullptr;
  std::vector<TransectSizes> partials;
  Status status = ParallelMap(
      pool, shard_count, nullptr, &partials,
      [&](size_t shard, TransectSizes* out) -> Status {
        const ShardInfo& info = catalog_.shard(shard);
        const int last = info.first_sensor + info.sensor_count;
        for (int s = info.first_sensor; s < last; ++s) {
          SEGDIFF_ASSIGN_OR_RETURN(StoreLru::Handle store,
                                   stores_->Acquire(s));
          const SegDiffSizes one = store->GetSizes();
          out->feature_bytes += one.feature_bytes;
          out->feature_rows += one.feature_rows;
          out->index_bytes += one.index_bytes;
          out->file_bytes += one.file_bytes;
        }
        return Status::OK();
      });
  if (pool != nullptr) {
    ReleasePool();
  }
  if (!status.ok()) {
    return status;
  }
  TransectSizes sizes;
  for (const TransectSizes& one : partials) {
    sizes.feature_bytes += one.feature_bytes;
    sizes.feature_rows += one.feature_rows;
    sizes.index_bytes += one.index_bytes;
    sizes.file_bytes += one.file_bytes;
  }
  return sizes;
}

ThreadPool* TransectIndex::EnsurePool(size_t num_threads) {
  const size_t workers = num_threads - 1;
  std::lock_guard<std::mutex> lock(pool_mu_);
  // Resizing destroys the pool (joining its workers), so it is only safe
  // when no other fan-out holds it; concurrent users with a different
  // width simply share the existing pool — ParallelFor spreads over
  // whatever workers exist plus the calling thread, so only the
  // parallelism degree differs, never the results.
  if (pool_ == nullptr || (pool_->size() != workers && pool_users_ == 0)) {
    pool_ = std::make_unique<ThreadPool>(workers);
  }
  ++pool_users_;
  return pool_.get();
}

void TransectIndex::ReleasePool() {
  std::lock_guard<std::mutex> lock(pool_mu_);
  --pool_users_;
}

size_t TransectIndex::MaintenanceThreads(size_t items) const {
  size_t threads = std::thread::hardware_concurrency();
  if (threads < 2) {
    threads = 2;  // stores sleep on IO; overlap helps even on one core
  }
  threads = std::min<size_t>(threads, 8);
  threads = std::min(threads, items);
  if (stores_->max_open() != 0) {
    threads = std::min(threads, stores_->max_open());
  }
  return threads;
}

}  // namespace segdiff
