#include "segdiff/transect_index.h"

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/thread_pool.h"

namespace segdiff {

Result<std::unique_ptr<TransectIndex>> TransectIndex::Open(
    const std::string& directory, int sensor_count,
    const SegDiffOptions& options) {
  if (sensor_count <= 0) {
    return Status::InvalidArgument("sensor_count must be positive");
  }
  if (::mkdir(directory.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IOError("mkdir " + directory + ": " +
                           std::strerror(errno));
  }
  std::unique_ptr<TransectIndex> transect(new TransectIndex());
  transect->sensors_.reserve(static_cast<size_t>(sensor_count));
  for (int s = 0; s < sensor_count; ++s) {
    const std::string path =
        directory + "/sensor" + std::to_string(s) + ".db";
    SEGDIFF_ASSIGN_OR_RETURN(std::unique_ptr<SegDiffIndex> store,
                             SegDiffIndex::Open(path, options));
    transect->sensors_.push_back(std::move(store));
  }
  return transect;
}

Status TransectIndex::IngestSensorSeries(int sensor, const Series& series) {
  if (sensor < 0 || sensor >= sensor_count()) {
    return Status::InvalidArgument("sensor index out of range");
  }
  return sensors_[static_cast<size_t>(sensor)]->IngestSeries(series);
}

Status TransectIndex::AppendSensorObservation(int sensor, double t, double v) {
  if (sensor < 0 || sensor >= sensor_count()) {
    return Status::InvalidArgument("sensor index out of range");
  }
  return sensors_[static_cast<size_t>(sensor)]->AppendObservation(t, v);
}

Status TransectIndex::FlushAllPending() {
  for (auto& store : sensors_) {
    SEGDIFF_RETURN_IF_ERROR(store->FlushPending());
  }
  return Status::OK();
}

Status TransectIndex::IngestAllSensors(const std::vector<Series>& all_series,
                                       size_t num_threads) {
  if (all_series.size() != static_cast<size_t>(sensor_count())) {
    return Status::InvalidArgument(
        "IngestAllSensors needs exactly one series per sensor");
  }
  if (num_threads <= 1) {
    for (int s = 0; s < sensor_count(); ++s) {
      SEGDIFF_RETURN_IF_ERROR(IngestSensorSeries(s, all_series[s]));
    }
    return Status::OK();
  }
  // Each task touches exactly one store, so per-sensor pipelines never
  // share mutable state; the pool only parallelizes across sensors.
  const size_t workers = num_threads - 1;  // the caller participates
  if (ingest_pool_ == nullptr || ingest_pool_->size() != workers) {
    ingest_pool_ = std::make_unique<ThreadPool>(workers);
  }
  return ingest_pool_->ParallelFor(
      all_series.size(), [&](size_t s) -> Status {
        return sensors_[s]->IngestSeries(all_series[s]);
      });
}

template <typename SearchFn>
Result<std::vector<TransectHit>> TransectIndex::SearchAll(
    const SearchOptions& options, const SearchFn& search,
    SearchStats* stats) {
  // One deadline for the whole transect: the relative budget converts to
  // an absolute deadline once, so N sensors share it instead of each
  // starting a fresh deadline_ms clock.
  SearchOptions per_sensor = options;
  if (options.deadline_ms > 0) {
    per_sensor.deadline = Deadline::Earlier(
        options.deadline, Deadline::AfterMillis(options.deadline_ms));
    per_sensor.deadline_ms = 0;
  }
  QueryContext ctx;
  ctx.cancel = per_sensor.cancel;
  ctx.deadline = per_sensor.deadline;

  std::vector<TransectHit> hits;
  SearchStats total;
  for (int s = 0; s < sensor_count(); ++s) {
    // Sensor-boundary check point, in addition to the page-granular
    // checks inside each store's search.
    SEGDIFF_RETURN_IF_ERROR(ctx.Check());
    SearchStats one;
    SEGDIFF_ASSIGN_OR_RETURN(
        std::vector<PairId> pairs,
        search(sensors_[static_cast<size_t>(s)].get(), per_sensor, &one));
    for (const PairId& pair : pairs) {
      hits.push_back(TransectHit{s, pair});
    }
    total.scan.Add(one.scan);
    total.queries_issued += one.queries_issued;
    total.seconds += one.seconds;
    // max_result_bytes governs each sensor's search independently; the
    // aggregate just reports that some sensor was cut.
    total.truncated = total.truncated || one.truncated;
    total.result_bytes_peak =
        std::max(total.result_bytes_peak, one.result_bytes_peak);
    total.admission_wait_ms += one.admission_wait_ms;
  }
  total.pairs_returned = hits.size();
  if (stats != nullptr) {
    *stats = total;
  }
  return hits;
}

Result<std::vector<TransectHit>> TransectIndex::SearchDrops(
    double T, double V, const SearchOptions& options, SearchStats* stats) {
  return SearchAll(
      options,
      [&](SegDiffIndex* store, const SearchOptions& per_sensor,
          SearchStats* one) {
        return store->SearchDrops(T, V, per_sensor, one);
      },
      stats);
}

Result<std::vector<TransectHit>> TransectIndex::SearchJumps(
    double T, double V, const SearchOptions& options, SearchStats* stats) {
  return SearchAll(
      options,
      [&](SegDiffIndex* store, const SearchOptions& per_sensor,
          SearchStats* one) {
        return store->SearchJumps(T, V, per_sensor, one);
      },
      stats);
}

Result<SegDiffIndex*> TransectIndex::sensor(int index) const {
  if (index < 0 || index >= sensor_count()) {
    return Status::InvalidArgument("sensor index out of range");
  }
  return sensors_[static_cast<size_t>(index)].get();
}

Status TransectIndex::Checkpoint() {
  for (auto& store : sensors_) {
    SEGDIFF_RETURN_IF_ERROR(store->Checkpoint());
  }
  return Status::OK();
}

Status TransectIndex::DropCaches() {
  for (auto& store : sensors_) {
    SEGDIFF_RETURN_IF_ERROR(store->DropCaches());
  }
  return Status::OK();
}

TransectSizes TransectIndex::GetSizes() const {
  TransectSizes sizes;
  for (const auto& store : sensors_) {
    const SegDiffSizes one = store->GetSizes();
    sizes.feature_bytes += one.feature_bytes;
    sizes.feature_rows += one.feature_rows;
    sizes.index_bytes += one.index_bytes;
    sizes.file_bytes += one.file_bytes;
  }
  return sizes;
}

}  // namespace segdiff
