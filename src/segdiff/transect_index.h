// TransectIndex: SegDiff over a whole sensor deployment.
//
// The paper's system indexes 25 sensors along a canyon transect and
// reports that "SegDiff can return results for all sensors within 10
// seconds" (Section 6.3). This facade scales that idea from 25 sensors
// to 100k+: one SegDiff store per sensor, grouped into shard
// directories by a persistent ShardCatalog, opened lazily through a
// bounded StoreLru, and searched by parallel scatter-gather — each
// shard scans its sensors independently and the per-shard partial
// results merge deterministically into (sensor, pair) order, so the
// parallel fan-out returns byte-identical hits and (wall-clock fields
// aside) byte-identical SearchStats to the serial loop. See DESIGN.md
// §15.

#ifndef SEGDIFF_SEGDIFF_TRANSECT_INDEX_H_
#define SEGDIFF_SEGDIFF_TRANSECT_INDEX_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "segdiff/segdiff_index.h"
#include "segdiff/shard_catalog.h"
#include "segdiff/store_lru.h"

namespace segdiff {

/// A search hit attributed to a sensor.
struct TransectHit {
  int sensor = 0;
  PairId pair;

  friend bool operator==(const TransectHit& a, const TransectHit& b) {
    return a.sensor == b.sensor && a.pair == b.pair;
  }
};

/// Aggregate sizes across all sensors.
struct TransectSizes {
  uint64_t feature_bytes = 0;
  uint64_t feature_rows = 0;
  uint64_t index_bytes = 0;
  uint64_t file_bytes = 0;
};

/// Deployment-level configuration on top of the per-store options.
struct TransectOptions {
  /// Options applied to every per-sensor store. For large transects,
  /// size store.buffer_pool_pages down (each open store owns its own
  /// pool) — the 4096-page per-store default is tuned for a handful of
  /// stores, not 100k.
  SegDiffOptions store;
  /// Sensors per shard directory (consistent placement). <= 0 reads
  /// SEGDIFF_SENSORS_PER_SHARD, default 256. Fixed at catalog creation;
  /// reopens adopt the persisted value.
  int sensors_per_shard = 0;
  /// Max per-sensor stores open at once; the StoreLru evicts
  /// (checkpoint + close) the coldest unpinned store beyond this. 0
  /// reads SEGDIFF_MAX_OPEN_STORES, default unbounded.
  size_t max_open_stores = 0;
};

class TransectIndex {
 public:
  /// Opens a transect rooted at `directory` (created if missing).
  /// First open writes the shard catalog and creates the shard
  /// directories; reopens load the catalog (Corruption if it fails
  /// verification) and require `sensor_count` to match it (<= 0 adopts
  /// the persisted count). A pre-sharding flat directory (sensor<k>.db
  /// directly under the root) is adopted in place. Stores themselves
  /// open lazily, on first touch.
  static Result<std::unique_ptr<TransectIndex>> Open(
      const std::string& directory, int sensor_count,
      const TransectOptions& options);

  /// Back-compat convenience: per-store options only, deployment knobs
  /// from the environment / defaults.
  static Result<std::unique_ptr<TransectIndex>> Open(
      const std::string& directory, int sensor_count,
      const SegDiffOptions& options);

  ~TransectIndex();

  /// Ingests a series for one sensor (0-based).
  Status IngestSensorSeries(int sensor, const Series& series);

  /// Appends one observation to one sensor's streaming pipeline
  /// (0-based); see SegDiffIndex::AppendObservation.
  Status AppendSensorObservation(int sensor, double t, double v);

  /// Flushes the open trailing segment of every sensor appended to
  /// since its last flush (tracked across LRU evictions — an evicted
  /// store reopens and resumes exactly where it left off). Flushes run
  /// in parallel on the shared pool; the first error wins.
  Status FlushAllPending();

  /// Ingests one series per sensor (`all_series.size()` must equal
  /// sensor_count()). With `num_threads` >= 2 the per-sensor ingests run
  /// concurrently on a worker pool — the stores are independent, so the
  /// result is identical to the serial loop; only wall-clock changes.
  Status IngestAllSensors(const std::vector<Series>& all_series,
                          size_t num_threads = 0);

  /// Searches every sensor; hits are ordered by (sensor, pair).
  ///
  /// SearchOptions::num_threads here is the scatter-gather fan-out
  /// width: shards are searched concurrently on the shared pool (each
  /// store's own search runs single-threaded), clamped to the shard
  /// count and to max_open_stores so a worker never blocks on a pin it
  /// cannot get. A relative deadline_ms converts to one absolute
  /// deadline shared by the whole fan-out, and cancel/deadline are
  /// checked at every sensor boundary in every shard, so a governed
  /// search stops promptly everywhere. Hits and the deterministic
  /// SearchStats fields are byte-identical to the serial (num_threads
  /// <= 1) path; only seconds/admission_wait_ms vary.
  Result<std::vector<TransectHit>> SearchDrops(
      double T, double V, const SearchOptions& options = {},
      SearchStats* stats = nullptr);
  Result<std::vector<TransectHit>> SearchJumps(
      double T, double V, const SearchOptions& options = {},
      SearchStats* stats = nullptr);

  /// Per-sensor access (e.g. for drill-down after a transect-wide hit).
  /// The returned handle pins the store open; hold it only as long as
  /// needed so the LRU can recycle the slot.
  Result<StoreLru::Handle> sensor(int index);

  int sensor_count() const { return catalog_.sensor_count(); }
  const ShardCatalog& catalog() const { return catalog_; }

  /// Store-cache behaviour (resident/peak counts, opens, evictions).
  StoreLruStats store_stats() const { return stores_->stats(); }

  /// Checkpoints every currently-open store, in parallel on the shared
  /// pool (evicted stores were checkpointed on close; untouched stores
  /// have nothing to persist).
  Status Checkpoint();
  Status DropCaches();

  /// Aggregate sizes over all sensors. Opens every store (through the
  /// LRU, so peak residency stays bounded) — O(sensor_count) IO.
  Result<TransectSizes> GetSizes();

 private:
  TransectIndex() = default;

  /// Scatter-gather core shared by SearchDrops/SearchJumps. Each shard
  /// produces an independent partial (hits in (sensor, pair) order plus
  /// folded stats); partials merge in shard index order, so the fold is
  /// identical no matter which worker finished first.
  template <typename SearchFn>
  Result<std::vector<TransectHit>> SearchAll(const SearchOptions& options,
                                             const SearchFn& search,
                                             SearchStats* stats);

  /// Lazily creates (or resizes) the shared fan-out pool; same
  /// discipline as SegDiffIndex::EnsurePool (`num_threads - 1` workers,
  /// the caller participates; concurrent users share whatever exists).
  ThreadPool* EnsurePool(size_t num_threads);
  void ReleasePool();

  /// Fan-out width for maintenance sweeps (flush, checkpoint, sizes):
  /// enough workers to overlap store IO, bounded by the cache capacity
  /// and the number of items.
  size_t MaintenanceThreads(size_t items) const;

  std::string directory_;
  SegDiffOptions store_options_;
  ShardCatalog catalog_;
  /// Declared after the fields the open-factory captures, before the
  /// pool: destroyed first, while directory_/options_/catalog_ are
  /// still alive.
  std::unique_ptr<StoreLru> stores_;

  std::unique_ptr<ThreadPool> pool_;  ///< shared fan-out workers
  std::mutex pool_mu_;                ///< guards pool_ + pool_users_
  size_t pool_users_ = 0;

  /// Sensors with appends since their last flush; survives LRU
  /// eviction of the store (close persists segmenter state, not the
  /// FlushPending contract).
  std::mutex dirty_mu_;
  std::unordered_set<int> dirty_;
};

}  // namespace segdiff

#endif  // SEGDIFF_SEGDIFF_TRANSECT_INDEX_H_
