// TransectIndex: SegDiff over a whole sensor deployment.
//
// The paper's system indexes 25 sensors along a canyon transect and
// reports that "SegDiff can return results for all sensors within 10
// seconds" (Section 6.3). This facade manages one SegDiff store per
// sensor under a common directory and fans searches out across them.

#ifndef SEGDIFF_SEGDIFF_TRANSECT_INDEX_H_
#define SEGDIFF_SEGDIFF_TRANSECT_INDEX_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "segdiff/segdiff_index.h"

namespace segdiff {

/// A search hit attributed to a sensor.
struct TransectHit {
  int sensor = 0;
  PairId pair;

  friend bool operator==(const TransectHit& a, const TransectHit& b) {
    return a.sensor == b.sensor && a.pair == b.pair;
  }
};

/// Aggregate sizes across all sensors.
struct TransectSizes {
  uint64_t feature_bytes = 0;
  uint64_t feature_rows = 0;
  uint64_t index_bytes = 0;
  uint64_t file_bytes = 0;
};

class TransectIndex {
 public:
  /// Opens (creating as needed) `sensor_count` per-sensor stores named
  /// sensor<k>.db under `directory` (created if missing).
  static Result<std::unique_ptr<TransectIndex>> Open(
      const std::string& directory, int sensor_count,
      const SegDiffOptions& options);

  /// Ingests a series for one sensor (0-based).
  Status IngestSensorSeries(int sensor, const Series& series);

  /// Appends one observation to one sensor's streaming pipeline
  /// (0-based); see SegDiffIndex::AppendObservation.
  Status AppendSensorObservation(int sensor, double t, double v);

  /// Flushes every sensor's open trailing segment.
  Status FlushAllPending();

  /// Ingests one series per sensor (`all_series.size()` must equal
  /// sensor_count()). With `num_threads` >= 2 the per-sensor ingests run
  /// concurrently on a worker pool — the stores are independent, so the
  /// result is identical to the serial loop; only wall-clock changes.
  Status IngestAllSensors(const std::vector<Series>& all_series,
                          size_t num_threads = 0);

  /// Searches every sensor; hits are ordered by (sensor, pair).
  Result<std::vector<TransectHit>> SearchDrops(
      double T, double V, const SearchOptions& options = {},
      SearchStats* stats = nullptr);
  Result<std::vector<TransectHit>> SearchJumps(
      double T, double V, const SearchOptions& options = {},
      SearchStats* stats = nullptr);

  /// Per-sensor access (e.g. for drill-down after a transect-wide hit).
  Result<SegDiffIndex*> sensor(int index) const;
  int sensor_count() const { return static_cast<int>(sensors_.size()); }

  Status Checkpoint();
  Status DropCaches();
  TransectSizes GetSizes() const;

 private:
  TransectIndex() = default;

  /// Fans one search out across every sensor. A relative deadline
  /// (deadline_ms) is converted to a single absolute deadline up front —
  /// the whole transect shares one budget instead of every sensor
  /// getting a fresh one — and cancel/deadline are also checked between
  /// sensors so a governed search stops promptly at sensor boundaries.
  template <typename SearchFn>
  Result<std::vector<TransectHit>> SearchAll(const SearchOptions& options,
                                             const SearchFn& search,
                                             SearchStats* stats);

  std::vector<std::unique_ptr<SegDiffIndex>> sensors_;
  std::unique_ptr<ThreadPool> ingest_pool_;  ///< parallel-ingest workers
};

}  // namespace segdiff

#endif  // SEGDIFF_SEGDIFF_TRANSECT_INDEX_H_
