// TransectIndex: SegDiff over a whole sensor deployment.
//
// The paper's system indexes 25 sensors along a canyon transect and
// reports that "SegDiff can return results for all sensors within 10
// seconds" (Section 6.3). This facade scales that idea from 25 sensors
// to 100k+: one SegDiff store per sensor, grouped into shard
// directories by a persistent ShardCatalog, opened lazily through a
// bounded StoreLru, and searched by parallel scatter-gather — each
// shard scans its sensors independently and the per-shard partial
// results merge deterministically into (sensor, pair) order, so the
// parallel fan-out returns byte-identical hits and (wall-clock fields
// aside) byte-identical SearchStats to the serial loop. See DESIGN.md
// §15.
//
// The transect is also self-healing (DESIGN.md §16): searches with a
// TransectSearchStats out-param isolate per-sensor failures instead of
// aborting the fan-out, Rebalance() migrates the deployment onto a new
// sensors_per_shard crash-safely behind a MIGRATION intent manifest,
// and Verify()/RepairAll() sweep every sensor for an aggregate health
// report and in-place salvage.

#ifndef SEGDIFF_SEGDIFF_TRANSECT_INDEX_H_
#define SEGDIFF_SEGDIFF_TRANSECT_INDEX_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "segdiff/segdiff_index.h"
#include "segdiff/shard_catalog.h"
#include "segdiff/store_lru.h"

namespace segdiff {

/// A search hit attributed to a sensor.
struct TransectHit {
  int sensor = 0;
  PairId pair;

  friend bool operator==(const TransectHit& a, const TransectHit& b) {
    return a.sensor == b.sensor && a.pair == b.pair;
  }
};

/// Aggregate sizes across all sensors.
struct TransectSizes {
  uint64_t feature_bytes = 0;
  uint64_t feature_rows = 0;
  uint64_t index_bytes = 0;
  uint64_t file_bytes = 0;
};

/// One sensor's failure inside a fault-isolated fan-out or sweep.
struct TransectSensorFailure {
  int sensor = 0;
  Status status;
};

/// Transect-level search stats: the folded per-store SearchStats plus
/// the fault-isolation ledger. Passing one of these to
/// SearchDrops/SearchJumps *opts into* per-sensor fault isolation: a
/// sensor whose store cannot open or whose search fails with an IO or
/// corruption error is skipped, counted here, and the result is flagged
/// `partial` — the other 99.99% of the transect still answers
/// (mirroring the per-store quarantine semantics). Without a stats
/// out-param there is nowhere to surface the hole, so the search keeps
/// the strict contract and fails loudly on the first damaged sensor.
/// Governance errors (deadline, cancellation, budget) are never
/// isolated — they abort the whole fan-out either way.
struct TransectSearchStats : SearchStats {
  /// Cap on `failures` records; the counters keep exact totals.
  static constexpr size_t kMaxFailureRecords = 16;

  uint64_t sensors_searched = 0;  ///< stores that answered
  uint64_t sensors_failed = 0;    ///< opened, but the search errored
  uint64_t sensors_skipped = 0;   ///< store could not open at all
  /// Stores that answered while in degraded (read-only) mode; their
  /// results are included — degraded stores still serve reads.
  uint64_t sensors_degraded = 0;
  /// First kMaxFailureRecords failures in sensor order (skips and
  /// search errors alike), for diagnostics without unbounded memory.
  std::vector<TransectSensorFailure> failures;
};

/// Knobs for the Verify/RepairAll sweeps.
struct TransectVerifyOptions {
  /// Walk every page checksum (and count quarantined/corrupt pages).
  /// Off: only open each store and collect its health flags.
  bool scrub = true;
  /// Soft ceiling on sweep read throughput, so a background scrub does
  /// not starve serving searches. 0 reads SEGDIFF_SCRUB_RATE_BYTES_PER_SEC
  /// from the environment; 0 there too means unlimited.
  uint64_t rate_limit_bytes_per_sec = 0;
};

/// One unhealthy sensor found by a sweep.
struct TransectSensorIssue {
  int sensor = 0;
  bool corrupt = false;    ///< damage (checksum/corruption class)
  bool transient = false;  ///< IO kept the check from finishing
  std::string message;
};

/// Aggregate health of a whole transect (Verify).
struct TransectHealthReport {
  /// Cap on `issues` records; the counters keep exact totals.
  static constexpr size_t kMaxIssueRecords = 32;

  int sensors_total = 0;
  int sensors_scanned = 0;      ///< opened and checked end to end
  int sensors_corrupt = 0;      ///< damaged (open failure or bad pages)
  int sensors_degraded = 0;     ///< serving read-only after a write error
  int sensors_unavailable = 0;  ///< transient IO; retry the sweep
  uint64_t pages_checked = 0;
  uint64_t pages_corrupt = 0;
  uint64_t pages_unverifiable = 0;  ///< legacy v1 pages, no checksums
  uint64_t quarantined_pages = 0;   ///< poisoned by earlier reads
  uint64_t bytes_scanned = 0;
  std::vector<TransectSensorIssue> issues;

  /// Healthy enough to trust search results end to end.
  bool clean() const {
    return sensors_corrupt == 0 && sensors_unavailable == 0;
  }
};

/// Aggregate result of a RepairAll sweep.
struct TransectRepairReport {
  int sensors_checked = 0;
  int sensors_repaired = 0;  ///< salvaged and swapped in place
  int sensors_failed = 0;    ///< repair itself failed; store left as-is
  uint64_t bytes_scanned = 0;
  RepairReport totals;       ///< summed over all repaired sensors
  std::vector<TransectSensorIssue> issues;  ///< capped like Verify's
};

/// Deployment-level configuration on top of the per-store options.
struct TransectOptions {
  /// Options applied to every per-sensor store. For large transects,
  /// size store.buffer_pool_pages down (each open store owns its own
  /// pool) — the 4096-page per-store default is tuned for a handful of
  /// stores, not 100k.
  SegDiffOptions store;
  /// Sensors per shard directory (consistent placement). <= 0 reads
  /// SEGDIFF_SENSORS_PER_SHARD, default 256. Fixed at catalog creation;
  /// reopens adopt the persisted value.
  int sensors_per_shard = 0;
  /// Max per-sensor stores open at once; the StoreLru evicts
  /// (checkpoint + close) the coldest unpinned store beyond this. 0
  /// reads SEGDIFF_MAX_OPEN_STORES, default unbounded.
  size_t max_open_stores = 0;
};

class TransectIndex {
 public:
  /// Opens a transect rooted at `directory` (created if missing).
  /// First open writes the shard catalog and creates the shard
  /// directories; reopens load the catalog (Corruption if it fails
  /// verification) and require `sensor_count` to match it (<= 0 adopts
  /// the persisted count). A pre-sharding flat directory (sensor<k>.db
  /// directly under the root) is adopted in place. Stores themselves
  /// open lazily, on first touch.
  static Result<std::unique_ptr<TransectIndex>> Open(
      const std::string& directory, int sensor_count,
      const TransectOptions& options);

  /// Back-compat convenience: per-store options only, deployment knobs
  /// from the environment / defaults.
  static Result<std::unique_ptr<TransectIndex>> Open(
      const std::string& directory, int sensor_count,
      const SegDiffOptions& options);

  ~TransectIndex();

  /// Ingests a series for one sensor (0-based).
  Status IngestSensorSeries(int sensor, const Series& series);

  /// Appends one observation to one sensor's streaming pipeline
  /// (0-based); see SegDiffIndex::AppendObservation.
  Status AppendSensorObservation(int sensor, double t, double v);

  /// Flushes the open trailing segment of every sensor appended to
  /// since its last flush (tracked across LRU evictions — an evicted
  /// store reopens and resumes exactly where it left off). Flushes run
  /// in parallel on the shared pool; the first error wins.
  Status FlushAllPending();

  /// Ingests one series per sensor (`all_series.size()` must equal
  /// sensor_count()). With `num_threads` >= 2 the per-sensor ingests run
  /// concurrently on a worker pool — the stores are independent, so the
  /// result is identical to the serial loop; only wall-clock changes.
  Status IngestAllSensors(const std::vector<Series>& all_series,
                          size_t num_threads = 0);

  /// Searches every sensor; hits are ordered by (sensor, pair).
  ///
  /// SearchOptions::num_threads here is the scatter-gather fan-out
  /// width: shards are searched concurrently on the shared pool (each
  /// store's own search runs single-threaded), clamped to the shard
  /// count and to max_open_stores so a worker never blocks on a pin it
  /// cannot get. A relative deadline_ms converts to one absolute
  /// deadline shared by the whole fan-out, and cancel/deadline are
  /// checked at every sensor boundary in every shard, so a governed
  /// search stops promptly everywhere. Hits and the deterministic
  /// stats fields are byte-identical to the serial (num_threads
  /// <= 1) path; only seconds/admission_wait_ms vary.
  ///
  /// With `stats`, per-sensor failures are isolated instead of fatal —
  /// see TransectSearchStats. Without, the first failure aborts.
  Result<std::vector<TransectHit>> SearchDrops(
      double T, double V, const SearchOptions& options = {},
      TransectSearchStats* stats = nullptr);
  Result<std::vector<TransectHit>> SearchJumps(
      double T, double V, const SearchOptions& options = {},
      TransectSearchStats* stats = nullptr);

  /// Migrates the deployment onto `new_sensors_per_shard` crash-safely,
  /// while searches keep serving (ingest pauses with ResourceExhausted
  /// for the duration). The sequence — intent MIGRATION manifest, new
  /// generation-tagged shard dirs, per-sensor CompactInto copies, fsync,
  /// atomic CATALOG swap, old-layout garbage collection, manifest
  /// removal — is resumable: a crash at any write/mkdir/fsync point is
  /// rolled forward or back by the next Open, leaving exactly one
  /// authoritative layout. Same value as the current layout is a no-op.
  Status Rebalance(int new_sensors_per_shard);

  /// Walks every sensor (under the LRU cap, optionally rate-limited)
  /// and aggregates store health: scrub results, degraded flags,
  /// quarantined pages. Never modifies anything. Per-sensor problems
  /// land in the report, not in the return status — only infrastructure
  /// failures (e.g. the catalog itself) fail the sweep.
  Result<TransectHealthReport> Verify(
      const TransectVerifyOptions& options = {});

  /// Verify + in-place salvage: every damaged sensor store is repaired
  /// into a fresh file (Database::Repair salvage semantics: corrupt
  /// pages/segments skipped and accounted) which atomically replaces
  /// the original. Healthy sensors are untouched.
  Result<TransectRepairReport> RepairAll(
      const TransectVerifyOptions& options = {});

  /// Per-sensor access (e.g. for drill-down after a transect-wide hit).
  /// The returned handle pins the store open; hold it only as long as
  /// needed so the LRU can recycle the slot.
  Result<StoreLru::Handle> sensor(int index);

  int sensor_count() const { return catalog_.sensor_count(); }
  const ShardCatalog& catalog() const { return catalog_; }

  /// Store-cache behaviour (resident/peak counts, opens, evictions).
  StoreLruStats store_stats() const { return stores_->stats(); }

  /// Checkpoints every currently-open store, in parallel on the shared
  /// pool (evicted stores were checkpointed on close; untouched stores
  /// have nothing to persist).
  Status Checkpoint();
  Status DropCaches();

  /// Aggregate sizes over all sensors. Opens every store (through the
  /// LRU, so peak residency stays bounded) — O(sensor_count) IO.
  Result<TransectSizes> GetSizes();

 private:
  TransectIndex() = default;

  /// Scatter-gather core shared by SearchDrops/SearchJumps. Each shard
  /// produces an independent partial (hits in (sensor, pair) order plus
  /// folded stats); partials merge in shard index order, so the fold is
  /// identical no matter which worker finished first.
  template <typename SearchFn>
  Result<std::vector<TransectHit>> SearchAll(const SearchOptions& options,
                                             const SearchFn& search,
                                             TransectSearchStats* stats);

  /// Open-time crash recovery: if a MIGRATION manifest exists, finish
  /// (catalog already swapped: garbage-collect the source layout) or
  /// undo (catalog still the source: delete the half-built target) the
  /// interrupted rebalance, then remove the manifest. A corrupt
  /// manifest falls back to pattern-based orphan-directory GC — the
  /// CATALOG stays the single source of truth throughout.
  static Status RecoverMigration(Vfs* vfs, const std::string& directory,
                                 const ShardCatalog& live);

  /// Deletes every store file (and WAL sidecar) of `doomed`'s layout
  /// and removes its now-empty shard directories. Paths shared with
  /// `keep` are left alone; missing files are fine (idempotent across
  /// repeated recovery passes).
  static Status GcLayout(Vfs* vfs, const std::string& directory,
                         const ShardCatalog& doomed,
                         const ShardCatalog& keep);

  /// Backstop GC: removes shard-shaped directories under the root that
  /// the live catalog does not reference, plus stale manifest temp
  /// files. Used when the migration manifest itself is unreadable.
  static Status GcOrphanDirs(Vfs* vfs, const std::string& directory,
                             const ShardCatalog& live);

  /// One sensor's slice of a RepairAll sweep: scrub, and if damaged,
  /// salvage into a fresh store file that atomically replaces the
  /// original (the store is evicted from the LRU around the swap).
  Status RepairSensor(int sensor, TransectRepairReport* report);

  /// The Vfs all transect-level IO goes through.
  Vfs* vfs() const {
    return store_options_.vfs != nullptr ? store_options_.vfs
                                         : Vfs::Default();
  }

  /// Lazily creates (or resizes) the shared fan-out pool; same
  /// discipline as SegDiffIndex::EnsurePool (`num_threads - 1` workers,
  /// the caller participates; concurrent users share whatever exists).
  ThreadPool* EnsurePool(size_t num_threads);
  void ReleasePool();

  /// Fan-out width for maintenance sweeps (flush, checkpoint, sizes):
  /// enough workers to overlap store IO, bounded by the cache capacity
  /// and the number of items.
  size_t MaintenanceThreads(size_t items) const;

  std::string directory_;
  SegDiffOptions store_options_;
  ShardCatalog catalog_;
  /// Declared after the fields the open-factory captures, before the
  /// pool: destroyed first, while directory_/options_/catalog_ are
  /// still alive.
  std::unique_ptr<StoreLru> stores_;

  /// Guards the (catalog_, stores_) pair as a unit. Shared: everything
  /// that routes through the layout (search, ingest, sweeps). Exclusive:
  /// the brief windows that replace it — the rebalance commit+GC and a
  /// repair's store-file swap. Holders of a shared lock may hold
  /// StoreLru Handles; nothing may hold a Handle across an exclusive
  /// acquisition (the swap destroys the cache).
  mutable std::shared_mutex layout_mu_;
  /// One rebalance at a time; ingest fails fast while it runs.
  std::atomic<bool> rebalancing_{false};
  /// Serializes Verify/RepairAll/Rebalance against each other.
  std::mutex maintenance_mu_;

  std::unique_ptr<ThreadPool> pool_;  ///< shared fan-out workers
  std::mutex pool_mu_;                ///< guards pool_ + pool_users_
  size_t pool_users_ = 0;

  /// Sensors with appends since their last flush; survives LRU
  /// eviction of the store (close persists segmenter state, not the
  /// FlushPending contract).
  std::mutex dirty_mu_;
  std::unordered_set<int> dirty_;
};

}  // namespace segdiff

#endif  // SEGDIFF_SEGDIFF_TRANSECT_INDEX_H_
