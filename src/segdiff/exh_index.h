// Exh: the paper's exhaustive baseline.
//
// Stores one row (dt, dv, t_anchor) for EVERY ordered pair of sampled
// observations whose gap is within the window w, in one table with an
// optional (dt, dv) B+-tree. A drop search is the single range query
// dt <= T AND dv <= V. Space is O(n * n_w) — the cost the paper's
// SegDiff design eliminates.

#ifndef SEGDIFF_SEGDIFF_EXH_INDEX_H_
#define SEGDIFF_SEGDIFF_EXH_INDEX_H_

#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/admission.h"
#include "common/governance.h"
#include "common/result.h"
#include "feature/sink.h"
#include "query/executor.h"
#include "segdiff/segdiff_index.h"
#include "storage/db.h"
#include "ts/series.h"

namespace segdiff {

struct ExhOptions {
  double window_s = 28800.0;  ///< w (same default as SegDiff)
  bool build_index = true;
  size_t buffer_pool_pages = 4096;
  /// Simulated storage read latency (cold-cache experiments); 0 = off.
  uint64_t sim_seq_read_ns = 0;
  uint64_t sim_random_read_ns = 0;
  /// File system the store's IO goes through (nullptr = default POSIX
  /// Vfs; non-owning). Fault-injection tests substitute their own.
  Vfs* vfs = nullptr;
  /// Verify page checksums on read (see DatabaseOptions).
  bool verify_checksums = true;
  /// Write-ahead logging (see SegDiffOptions::wal).
  bool wal = true;
  /// Group-commit window in ms (see SegDiffOptions::wal_group_commit_ms).
  int64_t wal_group_commit_ms = -1;
  /// Admission-control limits for this store's query entry points.
  AdmissionOptions admission;
};

/// One matching event (pair of sampled observations).
struct ExhEvent {
  double t_start = 0.0;
  double t_end = 0.0;
  double dv = 0.0;
};

struct ExhSizes {
  uint64_t feature_bytes = 0;
  uint64_t feature_rows = 0;
  uint64_t index_bytes = 0;
  uint64_t file_bytes = 0;
};

class ExhIndex : public FeatureSink {
 public:
  /// Opens (creating if missing) the Exh store at `path`. Reopened
  /// stores resume appending: the trailing sample window and the build
  /// window are persisted in the store and restored here, persisted
  /// parameters taking precedence over `options`. Legacy stores (written
  /// before state persistence) reopen query-only-equivalent: appends
  /// start a fresh window, so pairs spanning the reopen gap are lost.
  static Result<std::unique_ptr<ExhIndex>> Open(const std::string& path,
                                                const ExhOptions& options);

  /// Saves ingest state into the database before the database handle
  /// checkpoints itself on destruction.
  ~ExhIndex() override;

  /// Appends one observation: inserts a (dt, dv, t) row for every
  /// retained earlier sample within the window. Rows are immediately
  /// searchable; there is no buffered pending state. In WAL mode the
  /// observation is logged first and acknowledged durable at the next
  /// group commit. Safe to call concurrently with searches.
  Status AppendObservation(double t, double v) override;

  /// Exh materializes every pair eagerly in AppendObservation, so this
  /// only enforces the durability boundary: in WAL mode it closes the
  /// group-commit window (acknowledged means durable) and may
  /// auto-checkpoint a grown log.
  Status FlushPending() override;

  /// Appends all within-window pairs of `series`. May be called
  /// repeatedly with later series chunks (time stamps must keep
  /// increasing); the trailing window of samples is carried across calls
  /// so chunked and one-shot ingest produce identical tables (mirroring
  /// SegDiffIndex's chunked-ingest contract).
  Status IngestSeries(const Series& series) override {
    return FeatureSink::IngestSeries(series);
  }

  Result<std::vector<ExhEvent>> SearchDrops(double T, double V,
                                            const SearchOptions& options = {},
                                            SearchStats* stats = nullptr);
  Result<std::vector<ExhEvent>> SearchJumps(double T, double V,
                                            const SearchOptions& options = {},
                                            SearchStats* stats = nullptr);

  Status Checkpoint();
  Status DropCaches();

  /// Saves ingest state, then rewrites the store into a fresh file at
  /// `destination_path` (Database::CompactInto). Prefer this over
  /// db()->CompactInto(): it guarantees the compacted store's ingest
  /// blob is consistent with its table, so it reopens as a valid
  /// resume point.
  Status Compact(const std::string& destination_path);

  /// Salvages everything still readable into a fresh store at
  /// `destination_path` (see SegDiffIndex::Repair).
  Status Repair(const std::string& destination_path, RepairReport* report);

  ExhSizes GetSizes() const;
  uint64_t num_observations() const override { return observations_; }
  const ExhOptions& options() const { return options_; }
  Database* db() { return db_.get(); }

  /// The store's admission gate (see SegDiffIndex::admission_controller).
  AdmissionController* admission_controller() { return &admission_; }

 private:
  explicit ExhIndex(ExhOptions options);
  /// Everything fallible in Open: database, table, restored state. On
  /// failure the instance may be partially built; Open marks the
  /// database handle to not checkpoint on close.
  Status OpenImpl(const std::string& path);
  /// Governance shell around SearchScan (admission, deadline/cancel
  /// context, budget truncation contract — see SegDiffIndex::Search).
  Result<std::vector<ExhEvent>> Search(bool drop, double T, double V,
                                       const SearchOptions& options,
                                       SearchStats* stats);
  /// Plans and runs the single range query against `snapshot`,
  /// appending raw matches to `events` (kept on a budget breach for the
  /// shell's truncation path).
  Status SearchScan(bool drop, double T, double V,
                    const SearchOptions& options, size_t num_threads,
                    const QueryContext& ctx,
                    const DatabaseSnapshot& snapshot, bool allow_partial,
                    std::vector<ExhEvent>* events, SearchStats* local);
  /// Replays the WAL's recovered observation backlog through the append
  /// path (under Wal::Suspend); see SegDiffIndex::DrainRecoveredOps.
  Status DrainRecoveredOps();
  ThreadPool* EnsurePool(size_t num_threads);
  void ReleasePool();
  /// Serializes the trailing sample window + counters into the
  /// database's catalog meta blob (persisted at the next checkpoint).
  void SaveIngestState();
  /// Restores ingest state on reopen, adopting persisted build
  /// parameters; silently absent for legacy stores.
  Status RestoreIngestState();

  ExhOptions options_;
  std::unique_ptr<Database> db_;
  Table* table_ = nullptr;
  std::unique_ptr<ThreadPool> pool_;  ///< parallel-search workers
  std::mutex pool_mu_;                ///< guards pool_ + pool_users_
  size_t pool_users_ = 0;
  AdmissionController admission_;
  /// Serializes writers (appends, checkpoints) against each other and
  /// against snapshot creation; searches read snapshots and never take
  /// it while scanning. Lock order: ingest_mu_ before lazy_mu_.
  std::mutex ingest_mu_;
  /// Serializes the lazy zone-map build on first search.
  std::mutex lazy_mu_;
  /// Trailing `window_s` of already-ingested samples, so pairs spanning
  /// chunk boundaries are not dropped on the next IngestSeries call.
  std::deque<Sample> window_;
  uint64_t observations_ = 0;
  /// Set only when Open fully succeeded; the destructor saves ingest
  /// state only for opened instances so a failed open never overwrites
  /// the persisted resume point.
  bool opened_ = false;
};

}  // namespace segdiff

#endif  // SEGDIFF_SEGDIFF_EXH_INDEX_H_
