// Naive ground-truth searcher: enumerates true events directly from the
// series. Quadratic-in-window and index-free; exists as the correctness
// oracle for tests and verification, and as the cost yardstick the
// paper's introduction motivates against.

#ifndef SEGDIFF_SEGDIFF_NAIVE_H_
#define SEGDIFF_SEGDIFF_NAIVE_H_

#include <vector>

#include "ts/series.h"

namespace segdiff {

/// A true event between two sampled observations.
struct NaiveEvent {
  double t_start = 0.0;
  double t_end = 0.0;
  double dv = 0.0;
};

/// All sampled-observation pairs with 0 < dt <= T and dv <= V (drops) or
/// dv >= V (jumps). These are true events under Model G (a subset of all
/// G events, sufficient as a no-false-negative witness set).
class NaiveSearcher {
 public:
  /// `series` must outlive the searcher.
  explicit NaiveSearcher(const Series& series) : series_(series) {}

  std::vector<NaiveEvent> SearchDrops(double T, double V) const;
  std::vector<NaiveEvent> SearchJumps(double T, double V) const;

 private:
  std::vector<NaiveEvent> Search(bool drop, double T, double V) const;

  const Series& series_;
};

}  // namespace segdiff

#endif  // SEGDIFF_SEGDIFF_NAIVE_H_
