#include "ts/series.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

namespace segdiff {
namespace {

Status ValidateSample(const Sample& sample) {
  if (!std::isfinite(sample.t) || !std::isfinite(sample.v)) {
    return Status::InvalidArgument("sample has non-finite time or value");
  }
  return Status::OK();
}

}  // namespace

Result<Series> Series::FromSamples(std::vector<Sample> samples) {
  Series series;
  series.samples_.reserve(samples.size());
  for (const Sample& sample : samples) {
    SEGDIFF_RETURN_IF_ERROR(series.Append(sample));
  }
  return series;
}

Status Series::Append(Sample sample) {
  SEGDIFF_RETURN_IF_ERROR(ValidateSample(sample));
  if (!samples_.empty() && sample.t <= samples_.back().t) {
    return Status::InvalidArgument(
        "time stamps must be strictly increasing: " +
        std::to_string(sample.t) + " after " +
        std::to_string(samples_.back().t));
  }
  samples_.push_back(sample);
  return Status::OK();
}

double Series::Duration() const {
  if (samples_.size() < 2) {
    return 0.0;
  }
  return samples_.back().t - samples_.front().t;
}

Series Series::Slice(double t_lo, double t_hi) const {
  Series out;
  auto lower = std::lower_bound(
      samples_.begin(), samples_.end(), t_lo,
      [](const Sample& s, double t) { return s.t < t; });
  for (auto it = lower; it != samples_.end() && it->t <= t_hi; ++it) {
    out.samples_.push_back(*it);
  }
  return out;
}

SeriesStats Series::Stats() const {
  SeriesStats stats;
  stats.count = samples_.size();
  if (samples_.empty()) {
    return stats;
  }
  stats.min_v = std::numeric_limits<double>::infinity();
  stats.max_v = -std::numeric_limits<double>::infinity();
  stats.min_dt = std::numeric_limits<double>::infinity();
  stats.max_dt = 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < samples_.size(); ++i) {
    stats.min_v = std::min(stats.min_v, samples_[i].v);
    stats.max_v = std::max(stats.max_v, samples_[i].v);
    sum += samples_[i].v;
    if (i > 0) {
      const double dt = samples_[i].t - samples_[i - 1].t;
      stats.min_dt = std::min(stats.min_dt, dt);
      stats.max_dt = std::max(stats.max_dt, dt);
    }
  }
  if (samples_.size() < 2) {
    stats.min_dt = 0.0;
    stats.max_dt = 0.0;
  }
  stats.mean_v = sum / static_cast<double>(samples_.size());
  return stats;
}

}  // namespace segdiff
