// Synthetic workload generators.
//
// The paper evaluates on the James Reserve Cold Air Drainage (CAD)
// transect: 25 sensors sampling air temperature every 5 minutes for a
// year, where CAD events are sharp early-morning temperature drops
// (>= 3 degC within 1 hour). That data set is not public, so
// GenerateCadSeries synthesizes a statistically comparable series:
// seasonal trend + diurnal cycle + AR(1) noise + injected CAD drop events
// + occasional spike anomalies and missing samples. Injected events are
// reported back to the caller so tests can measure recall exactly.

#ifndef SEGDIFF_TS_GENERATOR_H_
#define SEGDIFF_TS_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "ts/series.h"

namespace segdiff {

/// One injected cold-air-drainage drop event (ground truth).
struct InjectedDrop {
  double t_start = 0.0;     ///< when the temperature starts falling
  double t_bottom = 0.0;    ///< when the minimum is reached
  double t_recovered = 0.0; ///< when the pre-event level is restored
  double magnitude_c = 0.0; ///< total drop in degrees Celsius (positive)
};

/// Parameters of the synthetic CAD transect generator.
struct CadGeneratorOptions {
  uint64_t seed = 20080325;       ///< EDBT'08 opening day
  int num_days = 30;
  double sample_interval_s = 300.0;  ///< 5 minutes, as at James Reserve
  double start_time_s = 0.0;

  double base_temp_c = 12.0;
  double seasonal_amplitude_c = 9.0;   ///< annual cycle peak-to-mean
  double diurnal_amplitude_c = 5.5;    ///< daily cycle peak-to-mean
  double ar1_phi = 0.95;               ///< noise autocorrelation
  double ar1_sigma_c = 0.08;           ///< noise innovation stddev

  double cad_events_per_day = 0.6;     ///< expected injected drops per day
  double cad_min_magnitude_c = 3.0;
  double cad_max_magnitude_c = 12.0;
  double cad_min_drop_s = 900.0;       ///< 15 minutes
  double cad_max_drop_s = 4200.0;      ///< 70 minutes
  double cad_min_recovery_s = 3600.0;
  double cad_max_recovery_s = 10800.0;
  double cad_window_start_h = 2.0;     ///< events start between 02:00 ...
  double cad_window_end_h = 6.0;       ///< ... and 06:00 local time

  double missing_probability = 0.002;  ///< chance a sample is dropped
  double spike_probability = 0.0;      ///< chance a sample is an anomaly
  double spike_magnitude_c = 10.0;

  /// Sensor index along the canyon transect (0..24 in the paper). Offsets
  /// the base temperature, CAD magnitude, and phase slightly per sensor.
  int sensor_index = 0;
};

/// A generated series plus its ground-truth injected events.
struct CadSeries {
  Series series;
  std::vector<InjectedDrop> drops;
};

/// Generates one sensor's series. Fails with InvalidArgument on
/// non-positive horizon/sampling or inverted magnitude/duration ranges.
Result<CadSeries> GenerateCadSeries(const CadGeneratorOptions& options);

/// Generates the whole transect: `sensor_count` series with per-sensor
/// offsets derived from `options` (options.sensor_index is overridden).
Result<std::vector<CadSeries>> GenerateCadTransect(
    const CadGeneratorOptions& options, int sensor_count);

/// Parameters for a jump-heavy price-like series (used by the finance
/// example to exercise jump search).
struct FinanceGeneratorOptions {
  uint64_t seed = 7;
  int num_points = 20000;
  double sample_interval_s = 60.0;
  double initial_price = 100.0;
  double drift_per_step = 0.0001;
  double volatility = 0.05;
  double jump_probability = 0.001;   ///< per-step chance of a price jump
  double jump_min = 1.0;
  double jump_max = 8.0;
};

/// Random-walk price series with occasional upward/downward jumps.
Result<Series> GenerateFinanceSeries(const FinanceGeneratorOptions& options);

/// Pure random walk (Gaussian increments), handy for property tests.
Result<Series> GenerateRandomWalk(uint64_t seed, int num_points,
                                  double sample_interval_s, double sigma);

}  // namespace segdiff

#endif  // SEGDIFF_TS_GENERATOR_H_
