// Data Generating Model G (paper Definition 1): values between consecutive
// samples are the linear interpolation of those samples.

#ifndef SEGDIFF_TS_INTERPOLATE_H_
#define SEGDIFF_TS_INTERPOLATE_H_

#include "common/result.h"
#include "ts/series.h"

namespace segdiff {

/// Linear interpolation between two points; `t` must lie in [a.t, b.t]
/// with a.t < b.t (a.t == b.t returns a.v).
double Lerp(const Sample& a, const Sample& b, double t);

/// Evaluates Model G at time `t`. Fails with OutOfRange when `t` is outside
/// [front().t, back().t] or the series is empty.
Result<double> ModelGValueAt(const Series& series, double t);

/// Random access evaluator over a series with O(log n) seek and O(1)
/// sequential advance; used by the naive oracle and verification code.
class ModelGEvaluator {
 public:
  /// `series` must outlive the evaluator.
  explicit ModelGEvaluator(const Series& series);

  /// Value at `t`; OutOfRange outside the series' time span.
  Result<double> ValueAt(double t);

  double t_min() const;
  double t_max() const;

 private:
  const Series& series_;
  size_t hint_ = 0;  ///< index of the segment [hint_, hint_+1] last used
};

}  // namespace segdiff

#endif  // SEGDIFF_TS_INTERPOLATE_H_
