#include "ts/generator.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"

namespace segdiff {
namespace {

constexpr double kSecondsPerDay = 86400.0;
constexpr double kSecondsPerYear = 365.0 * kSecondsPerDay;
constexpr double kTwoPi = 2.0 * 3.14159265358979323846;

Status ValidateCadOptions(const CadGeneratorOptions& o) {
  if (o.num_days <= 0) {
    return Status::InvalidArgument("num_days must be positive");
  }
  if (o.sample_interval_s <= 0.0) {
    return Status::InvalidArgument("sample_interval_s must be positive");
  }
  if (o.cad_min_magnitude_c > o.cad_max_magnitude_c ||
      o.cad_min_magnitude_c < 0.0) {
    return Status::InvalidArgument("invalid CAD magnitude range");
  }
  if (o.cad_min_drop_s > o.cad_max_drop_s || o.cad_min_drop_s <= 0.0) {
    return Status::InvalidArgument("invalid CAD drop duration range");
  }
  if (o.cad_min_recovery_s > o.cad_max_recovery_s ||
      o.cad_min_recovery_s <= 0.0) {
    return Status::InvalidArgument("invalid CAD recovery duration range");
  }
  if (o.cad_window_start_h < 0.0 || o.cad_window_end_h > 24.0 ||
      o.cad_window_start_h >= o.cad_window_end_h) {
    return Status::InvalidArgument("invalid CAD time-of-day window");
  }
  if (o.missing_probability < 0.0 || o.missing_probability >= 1.0 ||
      o.spike_probability < 0.0 || o.spike_probability >= 1.0) {
    return Status::InvalidArgument("probabilities must be in [0, 1)");
  }
  return Status::OK();
}

/// Smooth 0->1 ramp (cubic smoothstep); drops look rounded, not angular.
double SmoothStep(double x) {
  x = std::clamp(x, 0.0, 1.0);
  return x * x * (3.0 - 2.0 * x);
}

/// Additive temperature contribution of one CAD event at time t: 0 before
/// t_start, falls to -magnitude at t_bottom, linearly recovers to 0 at
/// t_recovered.
double CadEventDelta(const InjectedDrop& drop, double t) {
  if (t <= drop.t_start || t >= drop.t_recovered) {
    return 0.0;
  }
  if (t <= drop.t_bottom) {
    const double x = (t - drop.t_start) / (drop.t_bottom - drop.t_start);
    return -drop.magnitude_c * SmoothStep(x);
  }
  const double x =
      (t - drop.t_bottom) / (drop.t_recovered - drop.t_bottom);
  return -drop.magnitude_c * (1.0 - x);
}

}  // namespace

Result<CadSeries> GenerateCadSeries(const CadGeneratorOptions& options) {
  SEGDIFF_RETURN_IF_ERROR(ValidateCadOptions(options));
  // Distinct sensors on the transect get distinct, deterministic streams.
  Rng rng(options.seed + 0x9E37u * static_cast<uint64_t>(
                              options.sensor_index + 1));

  // Sensors lower in the canyon are colder and experience stronger CAD
  // events; the phase lag models the cold air flowing down the transect.
  const double sensor_offset_c = -0.4 * options.sensor_index;
  const double sensor_cad_gain =
      1.0 + 0.03 * options.sensor_index;
  const double sensor_phase_s = 60.0 * options.sensor_index;

  CadSeries out;

  // Schedule CAD events first so the main loop can sum their deltas.
  for (int day = 0; day < options.num_days; ++day) {
    if (!rng.Bernoulli(std::min(1.0, options.cad_events_per_day))) {
      continue;
    }
    InjectedDrop drop;
    const double day_start =
        options.start_time_s + day * kSecondsPerDay;
    drop.t_start = day_start +
                   rng.Uniform(options.cad_window_start_h * 3600.0,
                               options.cad_window_end_h * 3600.0) +
                   sensor_phase_s;
    const double drop_duration =
        rng.Uniform(options.cad_min_drop_s, options.cad_max_drop_s);
    const double recovery_duration = rng.Uniform(
        options.cad_min_recovery_s, options.cad_max_recovery_s);
    drop.t_bottom = drop.t_start + drop_duration;
    drop.t_recovered = drop.t_bottom + recovery_duration;
    drop.magnitude_c = sensor_cad_gain *
                       rng.Uniform(options.cad_min_magnitude_c,
                                   options.cad_max_magnitude_c);
    out.drops.push_back(drop);
  }

  const auto num_samples = static_cast<int64_t>(
      options.num_days * kSecondsPerDay / options.sample_interval_s);
  double noise = 0.0;
  const double stationary_sigma =
      options.ar1_sigma_c /
      std::sqrt(std::max(1e-12, 1.0 - options.ar1_phi * options.ar1_phi));
  noise = rng.Gaussian(0.0, stationary_sigma);

  for (int64_t i = 0; i <= num_samples; ++i) {
    const double t = options.start_time_s + i * options.sample_interval_s;
    noise = options.ar1_phi * noise +
            rng.Gaussian(0.0, options.ar1_sigma_c);
    if (rng.Bernoulli(options.missing_probability)) {
      continue;  // sensor dropped this packet
    }

    const double seasonal =
        options.seasonal_amplitude_c *
        std::sin(kTwoPi * (t / kSecondsPerYear) - kTwoPi / 4.0);
    // Diurnal minimum just before dawn (~05:00), maximum mid-afternoon.
    const double hour_angle = kTwoPi * (t / kSecondsPerDay) - kTwoPi * 0.65;
    const double diurnal = options.diurnal_amplitude_c * std::sin(hour_angle);

    double value = options.base_temp_c + sensor_offset_c + seasonal +
                   diurnal + noise;
    for (const InjectedDrop& drop : out.drops) {
      value += CadEventDelta(drop, t);
    }
    if (options.spike_probability > 0.0 &&
        rng.Bernoulli(options.spike_probability)) {
      value += (rng.Bernoulli(0.5) ? 1.0 : -1.0) *
               rng.Uniform(0.5 * options.spike_magnitude_c,
                           options.spike_magnitude_c);
    }
    SEGDIFF_RETURN_IF_ERROR(out.series.Append({t, value}));
  }
  return out;
}

Result<std::vector<CadSeries>> GenerateCadTransect(
    const CadGeneratorOptions& options, int sensor_count) {
  if (sensor_count <= 0) {
    return Status::InvalidArgument("sensor_count must be positive");
  }
  std::vector<CadSeries> transect;
  transect.reserve(static_cast<size_t>(sensor_count));
  for (int sensor = 0; sensor < sensor_count; ++sensor) {
    CadGeneratorOptions per_sensor = options;
    per_sensor.sensor_index = sensor;
    SEGDIFF_ASSIGN_OR_RETURN(CadSeries one, GenerateCadSeries(per_sensor));
    transect.push_back(std::move(one));
  }
  return transect;
}

Result<Series> GenerateFinanceSeries(
    const FinanceGeneratorOptions& options) {
  if (options.num_points <= 0 || options.sample_interval_s <= 0.0) {
    return Status::InvalidArgument("invalid finance generator options");
  }
  Rng rng(options.seed);
  Series series;
  double price = options.initial_price;
  for (int i = 0; i < options.num_points; ++i) {
    price += options.drift_per_step + rng.Gaussian(0.0, options.volatility);
    if (rng.Bernoulli(options.jump_probability)) {
      const double jump = rng.Uniform(options.jump_min, options.jump_max);
      price += rng.Bernoulli(0.5) ? jump : -jump;
    }
    price = std::max(price, 0.01);
    SEGDIFF_RETURN_IF_ERROR(
        series.Append({i * options.sample_interval_s, price}));
  }
  return series;
}

Result<Series> GenerateRandomWalk(uint64_t seed, int num_points,
                                  double sample_interval_s, double sigma) {
  if (num_points <= 0 || sample_interval_s <= 0.0 || sigma < 0.0) {
    return Status::InvalidArgument("invalid random walk options");
  }
  Rng rng(seed);
  Series series;
  double value = 0.0;
  for (int i = 0; i < num_points; ++i) {
    value += rng.Gaussian(0.0, sigma);
    SEGDIFF_RETURN_IF_ERROR(series.Append({i * sample_interval_s, value}));
  }
  return series;
}

}  // namespace segdiff
