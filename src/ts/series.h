// Time-series container: strictly increasing time stamps, double values.
//
// All times in the library are seconds (double). The paper's sensor data
// samples air temperature every 5 minutes (300 s); query/window parameters
// given in hours are converted by callers (see benchutil/workload.h).

#ifndef SEGDIFF_TS_SERIES_H_
#define SEGDIFF_TS_SERIES_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace segdiff {

/// One observation (t_i, v_i).
struct Sample {
  double t = 0.0;
  double v = 0.0;

  friend bool operator==(const Sample& a, const Sample& b) {
    return a.t == b.t && a.v == b.v;
  }
};

/// Summary statistics of a series' values.
struct SeriesStats {
  double min_v = 0.0;
  double max_v = 0.0;
  double mean_v = 0.0;
  double min_dt = 0.0;   ///< smallest gap between consecutive samples
  double max_dt = 0.0;   ///< largest gap between consecutive samples
  size_t count = 0;
};

/// An ordered sequence of samples with strictly increasing time stamps.
class Series {
 public:
  Series() = default;

  /// Builds a series from samples; fails with InvalidArgument if time
  /// stamps are not strictly increasing or any value is non-finite.
  static Result<Series> FromSamples(std::vector<Sample> samples);

  /// Appends one sample; fails if `sample.t` does not exceed the last time
  /// stamp or the value is non-finite.
  Status Append(Sample sample);

  bool empty() const { return samples_.empty(); }
  size_t size() const { return samples_.size(); }
  const Sample& operator[](size_t i) const { return samples_[i]; }
  const Sample& front() const { return samples_.front(); }
  const Sample& back() const { return samples_.back(); }
  const std::vector<Sample>& samples() const { return samples_; }

  std::vector<Sample>::const_iterator begin() const {
    return samples_.begin();
  }
  std::vector<Sample>::const_iterator end() const { return samples_.end(); }

  /// Total covered time, back().t - front().t; 0 for fewer than 2 samples.
  double Duration() const;

  /// Returns the sub-series of samples with t in [t_lo, t_hi].
  Series Slice(double t_lo, double t_hi) const;

  /// Computes value/gap statistics; count==0 for an empty series.
  SeriesStats Stats() const;

 private:
  std::vector<Sample> samples_;
};

}  // namespace segdiff

#endif  // SEGDIFF_TS_SERIES_H_
