// Series serialization: CSV (t,v per line, '#' comments) and a compact
// binary format with magic/version header.

#ifndef SEGDIFF_TS_IO_H_
#define SEGDIFF_TS_IO_H_

#include <string>

#include "common/result.h"
#include "ts/series.h"

namespace segdiff {

/// Writes "t,v" lines preceded by a "# segdiff-series v1" header comment.
Status WriteSeriesCsv(const Series& series, const std::string& path);

/// Reads a CSV written by WriteSeriesCsv (or any "t,v" file; blank lines
/// and '#' comments ignored). Fails with Corruption on malformed rows.
Result<Series> ReadSeriesCsv(const std::string& path);

/// Writes the binary format: magic, version, count, then packed samples.
Status WriteSeriesBinary(const Series& series, const std::string& path);

/// Reads the binary format; verifies magic/version/length.
Result<Series> ReadSeriesBinary(const std::string& path);

}  // namespace segdiff

#endif  // SEGDIFF_TS_IO_H_
