#include "ts/resample.h"

#include <cmath>

#include "ts/interpolate.h"

namespace segdiff {

Result<Series> ResampleRegular(const Series& series, double interval_s) {
  if (series.size() < 2) {
    return Status::InvalidArgument("need at least 2 samples to resample");
  }
  if (interval_s <= 0.0) {
    return Status::InvalidArgument("interval_s must be positive");
  }
  ModelGEvaluator eval(series);
  Series out;
  const double t0 = series.front().t;
  const double t1 = series.back().t;
  // Guard against grids that would explode memory.
  if ((t1 - t0) / interval_s > 1e8) {
    return Status::InvalidArgument("resample grid too fine");
  }
  for (int64_t i = 0;; ++i) {
    const double t = t0 + static_cast<double>(i) * interval_s;
    if (t > t1) {
      break;
    }
    SEGDIFF_ASSIGN_OR_RETURN(double v, eval.ValueAt(t));
    SEGDIFF_RETURN_IF_ERROR(out.Append({t, v}));
  }
  return out;
}

Result<Series> FillGaps(const Series& series, double max_gap_s,
                        double interval_s) {
  if (max_gap_s <= 0.0 || interval_s <= 0.0) {
    return Status::InvalidArgument("gap and interval must be positive");
  }
  Series out;
  for (size_t i = 0; i < series.size(); ++i) {
    if (i > 0) {
      const Sample& prev = series[i - 1];
      const Sample& next = series[i];
      const double gap = next.t - prev.t;
      if (gap > max_gap_s) {
        const auto steps = static_cast<int64_t>(gap / interval_s);
        for (int64_t k = 1; k <= steps; ++k) {
          const double t = prev.t + static_cast<double>(k) * interval_s;
          if (t >= next.t) {
            break;
          }
          SEGDIFF_RETURN_IF_ERROR(out.Append({t, Lerp(prev, next, t)}));
        }
      }
    }
    SEGDIFF_RETURN_IF_ERROR(out.Append(series[i]));
  }
  return out;
}

Result<Series> DownsampleMean(const Series& series, double bucket_s) {
  if (bucket_s <= 0.0) {
    return Status::InvalidArgument("bucket_s must be positive");
  }
  Series out;
  if (series.empty()) {
    return out;
  }
  const double t0 = series.front().t;
  int64_t current_bucket = 0;
  double sum = 0.0;
  size_t count = 0;
  auto flush = [&]() -> Status {
    if (count == 0) {
      return Status::OK();
    }
    const double center =
        t0 + (static_cast<double>(current_bucket) + 0.5) * bucket_s;
    Status status = out.Append({center, sum / static_cast<double>(count)});
    sum = 0.0;
    count = 0;
    return status;
  };
  for (const Sample& sample : series) {
    const auto bucket =
        static_cast<int64_t>(std::floor((sample.t - t0) / bucket_s));
    if (bucket != current_bucket) {
      SEGDIFF_RETURN_IF_ERROR(flush());
      current_bucket = bucket;
    }
    sum += sample.v;
    ++count;
  }
  SEGDIFF_RETURN_IF_ERROR(flush());
  return out;
}

std::vector<Series> SplitAtGaps(const Series& series, double max_gap_s) {
  std::vector<Series> chunks;
  Series current;
  for (size_t i = 0; i < series.size(); ++i) {
    if (i > 0 && series[i].t - series[i - 1].t > max_gap_s &&
        !current.empty()) {
      chunks.push_back(std::move(current));
      current = Series();
    }
    // Append cannot fail here: source samples are already valid/ordered.
    Status status = current.Append(series[i]);
    (void)status;
  }
  if (!current.empty()) {
    chunks.push_back(std::move(current));
  }
  return chunks;
}

}  // namespace segdiff
