// Resampling and gap handling.
//
// Model G (linear interpolation) is the paper's semantics BETWEEN normal
// samples, but real deployments lose packets and go dark for hours;
// interpolating straight across an outage invents events. These
// utilities let an application regularize its feed and split it at
// outages before indexing each contiguous stretch.

#ifndef SEGDIFF_TS_RESAMPLE_H_
#define SEGDIFF_TS_RESAMPLE_H_

#include <vector>

#include "common/result.h"
#include "ts/series.h"

namespace segdiff {

/// Resamples onto the regular grid {t0, t0 + interval, ...} spanning the
/// input, evaluating Model G at each grid point. Fails on series with
/// fewer than 2 samples or non-positive interval.
Result<Series> ResampleRegular(const Series& series, double interval_s);

/// Returns the input with every gap larger than `max_gap_s` bridged by
/// Model-G samples every `interval_s` (original samples are kept).
Result<Series> FillGaps(const Series& series, double max_gap_s,
                        double interval_s);

/// Mean-aggregates samples into buckets of `bucket_s` seconds anchored
/// at the first sample; each bucket yields one sample at its center.
/// Empty buckets produce no sample.
Result<Series> DownsampleMean(const Series& series, double bucket_s);

/// Splits the series into maximal chunks whose internal gaps are all
/// <= max_gap_s. Index each chunk separately instead of letting Model G
/// interpolate across sensor outages.
std::vector<Series> SplitAtGaps(const Series& series, double max_gap_s);

}  // namespace segdiff

#endif  // SEGDIFF_TS_RESAMPLE_H_
