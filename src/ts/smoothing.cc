#include "ts/smoothing.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace segdiff {
namespace {

constexpr double kMadToSigma = 1.4826;  // consistency factor for Gaussians

double MedianInPlace(std::vector<double>* values) {
  const size_t n = values->size();
  auto mid = values->begin() + static_cast<std::ptrdiff_t>(n / 2);
  std::nth_element(values->begin(), mid, values->end());
  double median = *mid;
  if (n % 2 == 0) {
    auto below = std::max_element(values->begin(), mid);
    median = 0.5 * (median + *below);
  }
  return median;
}

double Tricube(double u) {
  const double a = 1.0 - std::abs(u) * std::abs(u) * std::abs(u);
  return a <= 0.0 ? 0.0 : a * a * a;
}

double Bisquare(double u) {
  const double a = 1.0 - u * u;
  return a <= 0.0 ? 0.0 : a * a;
}

}  // namespace

Result<Series> HampelFilter(const Series& series,
                            const HampelOptions& options,
                            size_t* replaced_count) {
  if (options.window_radius == 0) {
    return Status::InvalidArgument("window_radius must be positive");
  }
  if (options.n_sigmas <= 0.0) {
    return Status::InvalidArgument("n_sigmas must be positive");
  }
  size_t replaced = 0;
  std::vector<Sample> out(series.begin(), series.end());
  std::vector<double> window;
  std::vector<double> deviations;
  const size_t n = series.size();
  for (size_t i = 0; i < n; ++i) {
    const size_t lo = i >= options.window_radius
                          ? i - options.window_radius
                          : 0;
    const size_t hi = std::min(n - 1, i + options.window_radius);
    window.clear();
    for (size_t j = lo; j <= hi; ++j) {
      window.push_back(series[j].v);
    }
    const double median = MedianInPlace(&window);
    deviations.clear();
    for (size_t j = lo; j <= hi; ++j) {
      deviations.push_back(std::abs(series[j].v - median));
    }
    const double mad = MedianInPlace(&deviations);
    const double threshold = options.n_sigmas * kMadToSigma * mad;
    if (std::abs(series[i].v - median) > threshold) {
      out[i].v = median;
      ++replaced;
    }
  }
  if (replaced_count != nullptr) {
    *replaced_count = replaced;
  }
  return Series::FromSamples(std::move(out));
}

Result<Series> MovingAverage(const Series& series, size_t window_radius) {
  std::vector<Sample> out(series.begin(), series.end());
  const size_t n = series.size();
  // Prefix sums keep the filter O(n) regardless of radius.
  std::vector<double> prefix(n + 1, 0.0);
  for (size_t i = 0; i < n; ++i) {
    prefix[i + 1] = prefix[i] + series[i].v;
  }
  for (size_t i = 0; i < n; ++i) {
    const size_t lo = i >= window_radius ? i - window_radius : 0;
    const size_t hi = std::min(n - 1, i + window_radius);
    out[i].v = (prefix[hi + 1] - prefix[lo]) /
               static_cast<double>(hi - lo + 1);
  }
  return Series::FromSamples(std::move(out));
}

Result<Series> RobustLoess(const Series& series,
                           const LoessOptions& options) {
  if (options.bandwidth_s <= 0.0) {
    return Status::InvalidArgument("bandwidth_s must be positive");
  }
  if (options.robust_iterations < 0) {
    return Status::InvalidArgument("robust_iterations must be >= 0");
  }
  const size_t n = series.size();
  std::vector<Sample> out(series.begin(), series.end());
  if (n < 3) {
    return Series::FromSamples(std::move(out));
  }

  std::vector<double> robustness(n, 1.0);
  std::vector<double> fitted(n, 0.0);

  for (int pass = 0; pass <= options.robust_iterations; ++pass) {
    size_t window_lo = 0;
    for (size_t i = 0; i < n; ++i) {
      const double t0 = series[i].t;
      while (window_lo < n &&
             series[window_lo].t < t0 - options.bandwidth_s) {
        ++window_lo;
      }
      // Weighted least squares of v on (t - t0) over the window.
      double sw = 0.0, swx = 0.0, swy = 0.0, swxx = 0.0, swxy = 0.0;
      for (size_t j = window_lo;
           j < n && series[j].t <= t0 + options.bandwidth_s; ++j) {
        const double x = series[j].t - t0;
        const double w =
            Tricube(x / options.bandwidth_s) * robustness[j];
        if (w <= 0.0) {
          continue;
        }
        sw += w;
        swx += w * x;
        swy += w * series[j].v;
        swxx += w * x * x;
        swxy += w * x * series[j].v;
      }
      if (sw <= 0.0) {
        fitted[i] = series[i].v;
        continue;
      }
      const double denom = sw * swxx - swx * swx;
      if (std::abs(denom) < 1e-12 * std::max(1.0, sw * swxx)) {
        fitted[i] = swy / sw;  // degenerate window: weighted mean
      } else {
        const double slope = (sw * swxy - swx * swy) / denom;
        const double intercept = (swy - slope * swx) / sw;
        fitted[i] = intercept;  // evaluated at x = 0, i.e. t = t0
      }
    }

    if (pass == options.robust_iterations) {
      break;
    }
    // Bisquare robustness weights from the residuals' MAD.
    std::vector<double> abs_residuals(n);
    for (size_t i = 0; i < n; ++i) {
      abs_residuals[i] = std::abs(series[i].v - fitted[i]);
    }
    std::vector<double> copy = abs_residuals;
    const double mad = MedianInPlace(&copy);
    const double scale = std::max(6.0 * mad, 1e-9);
    for (size_t i = 0; i < n; ++i) {
      robustness[i] = Bisquare(abs_residuals[i] / scale);
    }
  }

  for (size_t i = 0; i < n; ++i) {
    out[i].v = fitted[i];
  }
  return Series::FromSamples(std::move(out));
}

}  // namespace segdiff
