#include "ts/io.h"

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <vector>

#include "common/coding.h"

namespace segdiff {
namespace {

constexpr uint32_t kBinaryMagic = 0x53474453;  // "SGDS"
constexpr uint32_t kBinaryVersion = 1;

/// RAII FILE* wrapper.
class File {
 public:
  File(const std::string& path, const char* mode)
      : file_(std::fopen(path.c_str(), mode)) {}
  ~File() {
    if (file_ != nullptr) {
      std::fclose(file_);
    }
  }
  File(const File&) = delete;
  File& operator=(const File&) = delete;

  bool ok() const { return file_ != nullptr; }
  std::FILE* get() const { return file_; }

 private:
  std::FILE* file_;
};

Status OpenError(const std::string& path) {
  return Status::IOError("cannot open " + path + ": " +
                         std::strerror(errno));
}

}  // namespace

Status WriteSeriesCsv(const Series& series, const std::string& path) {
  File file(path, "w");
  if (!file.ok()) {
    return OpenError(path);
  }
  if (std::fprintf(file.get(), "# segdiff-series v1\n") < 0) {
    return Status::IOError("write failed: " + path);
  }
  for (const Sample& sample : series) {
    if (std::fprintf(file.get(), "%.17g,%.17g\n", sample.t, sample.v) < 0) {
      return Status::IOError("write failed: " + path);
    }
  }
  return Status::OK();
}

Result<Series> ReadSeriesCsv(const std::string& path) {
  File file(path, "r");
  if (!file.ok()) {
    return OpenError(path);
  }
  Series series;
  char line[256];
  int line_number = 0;
  while (std::fgets(line, sizeof(line), file.get()) != nullptr) {
    ++line_number;
    const char* p = line;
    while (*p == ' ' || *p == '\t') {
      ++p;
    }
    if (*p == '#' || *p == '\n' || *p == '\0' || *p == '\r') {
      continue;
    }
    double t = 0.0;
    double v = 0.0;
    if (std::sscanf(p, "%lf,%lf", &t, &v) != 2) {
      return Status::Corruption("malformed CSV row at " + path + ":" +
                                std::to_string(line_number));
    }
    Status append = series.Append({t, v});
    if (!append.ok()) {
      return Status::Corruption("bad sample at " + path + ":" +
                                std::to_string(line_number) + ": " +
                                append.ToString());
    }
  }
  return series;
}

Status WriteSeriesBinary(const Series& series, const std::string& path) {
  File file(path, "wb");
  if (!file.ok()) {
    return OpenError(path);
  }
  char header[16];
  EncodeFixed32(header, kBinaryMagic);
  EncodeFixed32(header + 4, kBinaryVersion);
  EncodeFixed64(header + 8, series.size());
  if (std::fwrite(header, 1, sizeof(header), file.get()) != sizeof(header)) {
    return Status::IOError("write failed: " + path);
  }
  std::vector<char> buf(series.size() * 16);
  for (size_t i = 0; i < series.size(); ++i) {
    EncodeDouble(buf.data() + i * 16, series[i].t);
    EncodeDouble(buf.data() + i * 16 + 8, series[i].v);
  }
  if (!buf.empty() &&
      std::fwrite(buf.data(), 1, buf.size(), file.get()) != buf.size()) {
    return Status::IOError("write failed: " + path);
  }
  return Status::OK();
}

Result<Series> ReadSeriesBinary(const std::string& path) {
  File file(path, "rb");
  if (!file.ok()) {
    return OpenError(path);
  }
  char header[16];
  if (std::fread(header, 1, sizeof(header), file.get()) != sizeof(header)) {
    return Status::Corruption("truncated header: " + path);
  }
  if (DecodeFixed32(header) != kBinaryMagic) {
    return Status::Corruption("bad magic: " + path);
  }
  if (DecodeFixed32(header + 4) != kBinaryVersion) {
    return Status::Corruption("unsupported version: " + path);
  }
  const uint64_t count = DecodeFixed64(header + 8);
  std::vector<char> buf(count * 16);
  if (!buf.empty() &&
      std::fread(buf.data(), 1, buf.size(), file.get()) != buf.size()) {
    return Status::Corruption("truncated body: " + path);
  }
  Series series;
  for (uint64_t i = 0; i < count; ++i) {
    Status append = series.Append({DecodeDouble(buf.data() + i * 16),
                                   DecodeDouble(buf.data() + i * 16 + 8)});
    if (!append.ok()) {
      return Status::Corruption("bad sample in " + path + ": " +
                                append.ToString());
    }
  }
  return series;
}

}  // namespace segdiff
