#include "ts/interpolate.h"

#include <algorithm>

namespace segdiff {

double Lerp(const Sample& a, const Sample& b, double t) {
  if (b.t == a.t) {
    return a.v;
  }
  return a.v + (b.v - a.v) / (b.t - a.t) * (t - a.t);
}

Result<double> ModelGValueAt(const Series& series, double t) {
  ModelGEvaluator eval(series);
  return eval.ValueAt(t);
}

ModelGEvaluator::ModelGEvaluator(const Series& series) : series_(series) {}

double ModelGEvaluator::t_min() const {
  return series_.empty() ? 0.0 : series_.front().t;
}

double ModelGEvaluator::t_max() const {
  return series_.empty() ? 0.0 : series_.back().t;
}

Result<double> ModelGEvaluator::ValueAt(double t) {
  if (series_.empty()) {
    return Status::OutOfRange("empty series");
  }
  if (t < series_.front().t || t > series_.back().t) {
    return Status::OutOfRange("t outside series span");
  }
  if (series_.size() == 1) {
    return series_[0].v;
  }
  // Fast path: sequential access advances the hint.
  if (hint_ + 1 >= series_.size() || t < series_[hint_].t ||
      t > series_[hint_ + 1].t) {
    if (hint_ + 2 < series_.size() && t >= series_[hint_ + 1].t &&
        t <= series_[hint_ + 2].t) {
      ++hint_;
    } else {
      const auto& samples = series_.samples();
      auto it = std::upper_bound(
          samples.begin(), samples.end(), t,
          [](double value, const Sample& s) { return value < s.t; });
      size_t idx = static_cast<size_t>(it - samples.begin());
      if (idx > 0) {
        --idx;
      }
      if (idx + 1 >= samples.size()) {
        idx = samples.size() - 2;
      }
      hint_ = idx;
    }
  }
  return Lerp(series_[hint_], series_[hint_ + 1], t);
}

}  // namespace segdiff
