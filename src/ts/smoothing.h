// Robust smoothing preprocessors.
//
// The paper preprocesses the CAD data with "a smoothing method with robust
// weights so that anomalies are removed" (Section 6). We provide the
// standard toolbox: a Hampel outlier filter, a moving average, and robust
// LOESS (locally weighted linear regression with bisquare robustness
// iterations, as in Cleveland's lowess).

#ifndef SEGDIFF_TS_SMOOTHING_H_
#define SEGDIFF_TS_SMOOTHING_H_

#include <cstddef>

#include "common/result.h"
#include "ts/series.h"

namespace segdiff {

/// Hampel filter: replaces any sample farther than
/// `n_sigmas * 1.4826 * MAD` from the window median by that median.
/// `window_radius` counts samples on each side.
struct HampelOptions {
  size_t window_radius = 5;
  double n_sigmas = 3.0;
};

/// Returns the filtered series (same time stamps) and, via
/// `replaced_count`, how many samples were altered (may be nullptr).
Result<Series> HampelFilter(const Series& series, const HampelOptions& options,
                            size_t* replaced_count = nullptr);

/// Centered moving average over `window_radius` samples each side.
Result<Series> MovingAverage(const Series& series, size_t window_radius);

/// Robust LOESS options. `bandwidth_s` is the half-width of the local
/// regression window in seconds; `robust_iterations` bisquare reweighting
/// passes (0 == plain LOESS).
struct LoessOptions {
  double bandwidth_s = 3600.0;
  int robust_iterations = 2;
};

/// Locally weighted linear regression with tricube kernel weights and
/// optional bisquare robustness iterations. Keeps the input time stamps.
Result<Series> RobustLoess(const Series& series, const LoessOptions& options);

}  // namespace segdiff

#endif  // SEGDIFF_TS_SMOOTHING_H_
