#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "common/env.h"

namespace segdiff {
namespace {

std::atomic<int> g_min_level{-1};  // -1 == uninitialized

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

LogLevel MinLogLevel() {
  int level = g_min_level.load(std::memory_order_relaxed);
  if (level < 0) {
    level = static_cast<int>(
        GetEnvInt64("SEGDIFF_LOG_LEVEL", static_cast<int>(LogLevel::kWarn)));
    if (level < 0 || level > 3) {
      level = static_cast<int>(LogLevel::kWarn);
    }
    g_min_level.store(level, std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(level);
}

void SetMinLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(MinLogLevel())) {
    return;
  }
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), file, line,
               message.c_str());
}

void FatalMessage(const char* file, int line, const std::string& message) {
  std::fprintf(stderr, "[FATAL %s:%d] %s\n", file, line, message.c_str());
  std::abort();
}

}  // namespace segdiff
