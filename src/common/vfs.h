// Vfs: the virtual file system every byte of database IO goes through.
//
// The Pager (and anything else touching store files) performs its IO via
// a Vfs instance instead of raw syscalls, so that
//   - short reads/writes and EINTR are retried in exactly one place
//     (PosixVfs), instead of ad hoc at every call site, and
//   - tests can substitute a FaultInjectionVfs (storage/fault_vfs.h)
//     that drops unsynced writes, tears pages, or fails the Nth
//     fsync/read/write to exercise crash recovery.
//
// Vfs instances are non-owning dependencies: callers keep them alive for
// the lifetime of every file opened through them. Vfs::Default() returns
// a process-wide PosixVfs singleton.

#ifndef SEGDIFF_COMMON_VFS_H_
#define SEGDIFF_COMMON_VFS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"

namespace segdiff {

/// One open file supporting positional (seek-free) IO. Read/Write
/// transfer exactly `n` bytes or fail: partial transfers and EINTR are
/// handled inside the implementation, never surfaced to callers.
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;

  /// Reads exactly `n` bytes at `offset` into `buf`. Hitting EOF before
  /// `n` bytes is an IOError ("short read").
  virtual Status Read(uint64_t offset, size_t n, char* buf) = 0;

  /// Writes exactly `n` bytes from `buf` at `offset`, extending the file
  /// as needed.
  virtual Status Write(uint64_t offset, const char* buf, size_t n) = 0;

  /// Truncates (or extends with zeros) to `size` bytes.
  virtual Status Truncate(uint64_t size) = 0;

  /// Flushes file data and metadata to stable storage (fsync).
  virtual Status Sync() = 0;

  /// Current size in bytes.
  virtual Result<uint64_t> Size() = 0;
};

/// Factory for RandomAccessFiles plus the directory-level operations
/// durability needs.
class Vfs {
 public:
  virtual ~Vfs() = default;

  /// Opens `path` for read/write, creating it when `create` is true and
  /// it does not exist. The special path ":memory:" returns an anonymous
  /// memory-backed file (memfd) that disappears on close; it requires
  /// `create` and never touches the file system.
  virtual Result<std::unique_ptr<RandomAccessFile>> OpenFile(
      const std::string& path, bool create) = 0;

  /// Fsyncs the directory containing `path`, making a preceding file
  /// creation durable (some file systems lose the directory entry of a
  /// freshly created file on crash unless its parent is synced).
  virtual Status SyncDir(const std::string& path) = 0;

  /// Creates directory `path` (one level; parents must exist).
  /// Idempotent: an already-existing directory is OK, so callers need no
  /// exists-then-create dance. Routed through the Vfs so fault-injection
  /// tests cover directory creation like every other IO path.
  virtual Status MakeDir(const std::string& path) = 0;

  virtual bool FileExists(const std::string& path) = 0;

  /// Deletes `path`; NotFound if it does not exist.
  virtual Status RemoveFile(const std::string& path) = 0;

  /// Atomically replaces `to` with `from` (POSIX rename semantics: `to`
  /// is overwritten if it exists, and observers see either the old or
  /// the new file, never a mix). The write-then-rename idiom behind
  /// every manifest swap: durability of the rename itself still needs a
  /// SyncDir on the parent.
  virtual Status Rename(const std::string& from, const std::string& to) = 0;

  /// Names (not paths) of the entries in directory `path`, excluding
  /// "." and "..", in unspecified order. NotFound when the directory
  /// does not exist.
  virtual Result<std::vector<std::string>> ListDir(
      const std::string& path) = 0;

  /// Removes the (empty) directory `path`; NotFound if it does not
  /// exist. Used by orphan-layout garbage collection after a rebalance.
  virtual Status RemoveDir(const std::string& path) = 0;

  /// The process-wide POSIX-backed instance.
  static Vfs* Default();
};

/// Bounded-exponential-backoff schedule for transient IO failures
/// (Status::IsTransient()): attempt, sleep, double, capped. Permanent
/// and no-space failures are never retried — retrying a full disk or a
/// checksum mismatch only hides the problem from the caller.
struct RetryPolicy {
  int max_attempts = 4;             ///< total tries, including the first
  uint64_t initial_backoff_us = 100;
  uint64_t max_backoff_us = 5000;   ///< cap for the doubling backoff

  /// The backoff to sleep after attempt `attempt` (0-based) failed.
  uint64_t BackoffUs(int attempt) const;
};

/// Wraps `file` so Read/Write/Sync retry transient failures under
/// `policy`. All other operations (Truncate, Size) pass straight
/// through, as do permanent, no-space, and exhausted-retry errors. The
/// storage layer wraps its data and log files with this; tests drive it
/// via FaultInjectionVfs's transient-fault modes.
std::unique_ptr<RandomAccessFile> WithRetry(
    std::unique_ptr<RandomAccessFile> file,
    const RetryPolicy& policy = RetryPolicy());

}  // namespace segdiff

#endif  // SEGDIFF_COMMON_VFS_H_
