// Minimal leveled logging and invariant-check macros.
//
// SEGDIFF_CHECK* abort on violation in all build types: storage-engine
// invariants (page bounds, tree ordering) must never be silently ignored.

#ifndef SEGDIFF_COMMON_LOGGING_H_
#define SEGDIFF_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace segdiff {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Minimum level that is emitted; configurable via SEGDIFF_LOG_LEVEL
/// (0=debug .. 3=error). Defaults to kWarn so tests/benches stay quiet.
LogLevel MinLogLevel();
void SetMinLogLevel(LogLevel level);

/// Writes one formatted line to stderr if `level >= MinLogLevel()`.
void LogMessage(LogLevel level, const char* file, int line,
                const std::string& message);

/// Aborts the process after logging `message` with source location.
[[noreturn]] void FatalMessage(const char* file, int line,
                               const std::string& message);

namespace internal {

/// Stream collector used by the logging macros.
class LogStream {
 public:
  LogStream(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogStream() { LogMessage(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

class FatalStream {
 public:
  FatalStream(const char* file, int line) : file_(file), line_(line) {}
  [[noreturn]] ~FatalStream() { FatalMessage(file_, line_, stream_.str()); }

  template <typename T>
  FatalStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace segdiff

#define SEGDIFF_LOG(level)                                            \
  ::segdiff::internal::LogStream(::segdiff::LogLevel::k##level, __FILE__, \
                                 __LINE__)

#define SEGDIFF_CHECK(cond)                                   \
  if (cond) {                                                 \
  } else /* NOLINT */                                         \
    ::segdiff::internal::FatalStream(__FILE__, __LINE__)      \
        << "Check failed: " #cond " "

#define SEGDIFF_CHECK_OK(expr)                                 \
  do {                                                         \
    ::segdiff::Status _segdiff_check_status__ = (expr);        \
    SEGDIFF_CHECK(_segdiff_check_status__.ok())                \
        << _segdiff_check_status__.ToString();                 \
  } while (false)

#define SEGDIFF_CHECK_EQ(a, b) SEGDIFF_CHECK((a) == (b)) << (a) << " vs " << (b) << " "
#define SEGDIFF_CHECK_NE(a, b) SEGDIFF_CHECK((a) != (b))
#define SEGDIFF_CHECK_LT(a, b) SEGDIFF_CHECK((a) < (b)) << (a) << " vs " << (b) << " "
#define SEGDIFF_CHECK_LE(a, b) SEGDIFF_CHECK((a) <= (b)) << (a) << " vs " << (b) << " "
#define SEGDIFF_CHECK_GT(a, b) SEGDIFF_CHECK((a) > (b)) << (a) << " vs " << (b) << " "
#define SEGDIFF_CHECK_GE(a, b) SEGDIFF_CHECK((a) >= (b)) << (a) << " vs " << (b) << " "

#endif  // SEGDIFF_COMMON_LOGGING_H_
