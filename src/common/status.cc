#include "common/status.h"

namespace segdiff {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out(StatusCodeName(code()));
  out += ": ";
  out += rep_->message;
  if (rep_->error_class == ErrorClass::kTransient) {
    out += " [transient]";
  } else if (rep_->error_class == ErrorClass::kNoSpace) {
    out += " [no-space]";
  }
  return out;
}

}  // namespace segdiff
