// Result<T>: value-or-Status, the StatusOr idiom.

#ifndef SEGDIFF_COMMON_RESULT_H_
#define SEGDIFF_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace segdiff {

/// Holds either a value of type T or a non-OK Status describing why the
/// value could not be produced. Accessing value() on an error aborts in
/// debug builds (undefined in release), so callers must check ok() first
/// or use SEGDIFF_ASSIGN_OR_RETURN.
template <typename T>
class Result {
 public:
  /// Constructs an errored result. `status` must be non-OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!status_.ok() && "Result constructed from OK status");
  }
  /// Constructs a successful result holding `value`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Returns the value or `fallback` when errored.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace segdiff

/// Evaluates `expr` (a Result<T>); on error returns its Status, otherwise
/// assigns the value into `lhs`.
#define SEGDIFF_ASSIGN_OR_RETURN(lhs, expr)       \
  auto SEGDIFF_CONCAT_(_res_, __LINE__) = (expr); \
  if (!SEGDIFF_CONCAT_(_res_, __LINE__).ok()) {   \
    return SEGDIFF_CONCAT_(_res_, __LINE__).status(); \
  }                                               \
  lhs = std::move(SEGDIFF_CONCAT_(_res_, __LINE__)).value()

#define SEGDIFF_CONCAT_INNER_(a, b) a##b
#define SEGDIFF_CONCAT_(a, b) SEGDIFF_CONCAT_INNER_(a, b)

#endif  // SEGDIFF_COMMON_RESULT_H_
