// Bounds-checked byte-buffer serialization for small metadata blobs
// (ingest state, catalog auxiliary payloads). Little endian, mirroring
// the fixed-width helpers in common/coding.h.

#ifndef SEGDIFF_COMMON_BYTES_H_
#define SEGDIFF_COMMON_BYTES_H_

#include <cstdint>
#include <string>

#include "common/coding.h"
#include "common/result.h"

namespace segdiff {

/// Append-only builder for a serialized blob.
class ByteWriter {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) {
    char buf[4];
    EncodeFixed32(buf, v);
    out_.append(buf, 4);
  }
  void U64(uint64_t v) {
    char buf[8];
    EncodeFixed64(buf, v);
    out_.append(buf, 8);
  }
  void F64(double v) {
    char buf[8];
    EncodeDouble(buf, v);
    out_.append(buf, 8);
  }

  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Sequential reader over a serialized blob; every read is bounds
/// checked and fails with Corruption on truncation.
class ByteReader {
 public:
  ByteReader(const char* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::string& blob)
      : ByteReader(blob.data(), blob.size()) {}

  Result<uint8_t> U8() {
    SEGDIFF_RETURN_IF_ERROR(Need(1));
    return static_cast<uint8_t>(data_[pos_++]);
  }
  Result<uint32_t> U32() {
    SEGDIFF_RETURN_IF_ERROR(Need(4));
    const uint32_t v = DecodeFixed32(data_ + pos_);
    pos_ += 4;
    return v;
  }
  Result<uint64_t> U64() {
    SEGDIFF_RETURN_IF_ERROR(Need(8));
    const uint64_t v = DecodeFixed64(data_ + pos_);
    pos_ += 8;
    return v;
  }
  Result<double> F64() {
    SEGDIFF_RETURN_IF_ERROR(Need(8));
    const double v = DecodeDouble(data_ + pos_);
    pos_ += 8;
    return v;
  }

  bool exhausted() const { return pos_ == size_; }

 private:
  Status Need(size_t n) {
    if (pos_ + n > size_) {
      return Status::Corruption("serialized blob truncated");
    }
    return Status::OK();
  }

  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace segdiff

#endif  // SEGDIFF_COMMON_BYTES_H_
