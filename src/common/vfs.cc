#include "common/vfs.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

namespace segdiff {
namespace {

Status Errno(const std::string& what, const std::string& path) {
  std::string msg = what + " " + path + ": " + std::strerror(errno);
  // Classify the errno so upper layers can react: no-space flips the
  // store into degraded mode, transient failures go through the bounded
  // retry policy below. Everything else stays permanent.
  switch (errno) {
    case ENOSPC:
#ifdef EDQUOT
    case EDQUOT:
#endif
      return Status::NoSpace(std::move(msg));
    case EAGAIN:
    case EBUSY:
    case ETIMEDOUT:
    case ENOMEM:
      return Status::TransientIOError(std::move(msg));
    default:
      return Status::IOError(std::move(msg));
  }
}

/// Directory part of `path` ("." when there is none).
std::string DirName(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) {
    return ".";
  }
  if (slash == 0) {
    return "/";
  }
  return path.substr(0, slash);
}

class PosixFile : public RandomAccessFile {
 public:
  PosixFile(std::string path, int fd) : path_(std::move(path)), fd_(fd) {}

  ~PosixFile() override {
    if (fd_ >= 0) {
      ::close(fd_);
    }
  }

  Status Read(uint64_t offset, size_t n, char* buf) override {
    size_t done = 0;
    while (done < n) {
      const ssize_t got = ::pread(fd_, buf + done, n - done,
                                  static_cast<off_t>(offset + done));
      if (got < 0) {
        if (errno == EINTR) {
          continue;  // interrupted mid-transfer: retry the remainder
        }
        return Errno("pread", path_);
      }
      if (got == 0) {
        return Status::IOError("short read (EOF at " +
                               std::to_string(offset + done) + ", wanted " +
                               std::to_string(n) + " bytes at " +
                               std::to_string(offset) + "): " + path_);
      }
      done += static_cast<size_t>(got);
    }
    return Status::OK();
  }

  Status Write(uint64_t offset, const char* buf, size_t n) override {
    size_t done = 0;
    while (done < n) {
      const ssize_t put = ::pwrite(fd_, buf + done, n - done,
                                   static_cast<off_t>(offset + done));
      if (put < 0) {
        if (errno == EINTR) {
          continue;
        }
        return Errno("pwrite", path_);
      }
      done += static_cast<size_t>(put);
    }
    return Status::OK();
  }

  Status Truncate(uint64_t size) override {
    if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
      return Errno("ftruncate", path_);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) {
      return Errno("fsync", path_);
    }
    return Status::OK();
  }

  Result<uint64_t> Size() override {
    struct stat st;
    if (::fstat(fd_, &st) != 0) {
      return Errno("fstat", path_);
    }
    return static_cast<uint64_t>(st.st_size);
  }

 private:
  std::string path_;
  int fd_;
};

class PosixVfs : public Vfs {
 public:
  Result<std::unique_ptr<RandomAccessFile>> OpenFile(const std::string& path,
                                                     bool create) override {
    int fd = -1;
    if (path == ":memory:") {
      if (!create) {
        return Status::InvalidArgument(
            ":memory: databases are always created fresh");
      }
      fd = static_cast<int>(::syscall(SYS_memfd_create, "segdiff-memdb", 0u));
      if (fd < 0) {
        return Errno("memfd_create", path);
      }
    } else {
      int flags = O_RDWR;
      if (create) {
        flags |= O_CREAT;
      }
      do {
        fd = ::open(path.c_str(), flags, 0644);
      } while (fd < 0 && errno == EINTR);
      if (fd < 0) {
        return Errno("open", path);
      }
    }
    return std::unique_ptr<RandomAccessFile>(
        std::make_unique<PosixFile>(path, fd));
  }

  Status SyncDir(const std::string& path) override {
    if (path == ":memory:") {
      return Status::OK();  // no directory entry to persist
    }
    const std::string dir = DirName(path);
    int fd;
    do {
      fd = ::open(dir.c_str(), O_RDONLY);
    } while (fd < 0 && errno == EINTR);
    if (fd < 0) {
      return Errno("open (dir)", dir);
    }
    Status status;
    if (::fsync(fd) != 0) {
      // Some file systems refuse fsync on directories; that is not a
      // durability failure the caller can act on, so only real errors
      // (EIO, EBADF) propagate.
      if (errno == EIO || errno == EBADF) {
        status = Errno("fsync (dir)", dir);
      }
    }
    ::close(fd);
    return status;
  }

  Status MakeDir(const std::string& path) override {
    if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
      return Errno("mkdir", path);
    }
    return Status::OK();
  }

  bool FileExists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) {
      if (errno == ENOENT) {
        return Status::NotFound("no such file: " + path);
      }
      return Errno("unlink", path);
    }
    return Status::OK();
  }

  Status Rename(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      if (errno == ENOENT) {
        return Status::NotFound("rename source missing: " + from);
      }
      return Errno("rename", from + " -> " + to);
    }
    return Status::OK();
  }

  Result<std::vector<std::string>> ListDir(const std::string& path) override {
    DIR* dir = ::opendir(path.c_str());
    if (dir == nullptr) {
      if (errno == ENOENT) {
        return Status::NotFound("no such directory: " + path);
      }
      return Errno("opendir", path);
    }
    std::vector<std::string> names;
    for (;;) {
      errno = 0;
      struct dirent* entry = ::readdir(dir);
      if (entry == nullptr) {
        const int saved = errno;
        ::closedir(dir);
        if (saved != 0) {
          errno = saved;
          return Errno("readdir", path);
        }
        return names;
      }
      const std::string name = entry->d_name;
      if (name != "." && name != "..") {
        names.push_back(name);
      }
    }
  }

  Status RemoveDir(const std::string& path) override {
    if (::rmdir(path.c_str()) != 0) {
      if (errno == ENOENT) {
        return Status::NotFound("no such directory: " + path);
      }
      return Errno("rmdir", path);
    }
    return Status::OK();
  }
};

/// RandomAccessFile decorator retrying transient failures with bounded
/// exponential backoff. Only Read/Write/Sync retry: those are the
/// operations whose transient failure modes (EAGAIN-style errnos, a
/// device momentarily resetting) heal on their own.
class RetryingFile : public RandomAccessFile {
 public:
  RetryingFile(std::unique_ptr<RandomAccessFile> base, RetryPolicy policy)
      : base_(std::move(base)), policy_(policy) {}

  Status Read(uint64_t offset, size_t n, char* buf) override {
    return Retry([&] { return base_->Read(offset, n, buf); });
  }
  Status Write(uint64_t offset, const char* buf, size_t n) override {
    return Retry([&] { return base_->Write(offset, buf, n); });
  }
  Status Sync() override {
    return Retry([&] { return base_->Sync(); });
  }
  Status Truncate(uint64_t size) override { return base_->Truncate(size); }
  Result<uint64_t> Size() override { return base_->Size(); }

 private:
  template <typename Op>
  Status Retry(const Op& op) {
    Status status = op();
    for (int attempt = 0; !status.ok() && status.IsTransient() &&
                          attempt + 1 < policy_.max_attempts;
         ++attempt) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(policy_.BackoffUs(attempt)));
      status = op();
    }
    return status;
  }

  std::unique_ptr<RandomAccessFile> base_;
  const RetryPolicy policy_;
};

}  // namespace

uint64_t RetryPolicy::BackoffUs(int attempt) const {
  uint64_t backoff = initial_backoff_us;
  for (int i = 0; i < attempt && backoff < max_backoff_us; ++i) {
    backoff *= 2;
  }
  return backoff < max_backoff_us ? backoff : max_backoff_us;
}

std::unique_ptr<RandomAccessFile> WithRetry(
    std::unique_ptr<RandomAccessFile> file, const RetryPolicy& policy) {
  if (file == nullptr || policy.max_attempts <= 1) {
    return file;
  }
  return std::make_unique<RetryingFile>(std::move(file), policy);
}

Vfs* Vfs::Default() {
  static PosixVfs* posix = new PosixVfs();  // leaked: process lifetime
  return posix;
}

}  // namespace segdiff
