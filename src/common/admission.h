// AdmissionController: bounds how many queries run (and wait) at once.
//
// A semaphore with a bounded FIFO wait queue. Queries that find a free
// slot start immediately; otherwise they join the queue and block until
// they reach the head and a slot frees. When the queue itself is full
// the query is refused *fast* with Status::ResourceExhausted and a
// retry-after hint — under overload, fast rejection beats unbounded
// queueing (the client can back off; a queued query just grows tail
// latency for everyone).
//
// Waiting is a poll-wait (<= kAdmissionPollMillis per sleep) so a queued
// query still notices its own cancellation or deadline and leaves the
// queue promptly; mid-queue abandonment is why waiters live in an
// ordered set rather than a plain counter — the head is always the
// smallest live sequence number, whoever gave up in between.
//
// The controller also clamps per-query worker fan-out (ClampThreads) and
// aggregates GovernanceCounters for the --stats surface.

#ifndef SEGDIFF_COMMON_ADMISSION_H_
#define SEGDIFF_COMMON_ADMISSION_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <set>

#include "common/governance.h"
#include "common/result.h"
#include "common/status.h"

namespace segdiff {

/// Upper bound on one sleep while queued for admission; the waiter
/// re-checks its cancellation token and deadline at least this often.
constexpr uint64_t kAdmissionPollMillis = 10;

struct AdmissionOptions {
  /// Queries allowed to execute concurrently. 0 = auto:
  /// max(4, 2 x hardware_concurrency).
  size_t max_concurrent = 0;
  /// Queries allowed to wait for a slot (normal priority). 0 = auto:
  /// 2 x max_concurrent. High-priority queries get twice this bound.
  size_t max_queue = 0;
  /// Per-query worker-thread clamp. 0 = auto: hardware_concurrency.
  size_t max_threads_per_query = 0;
  /// Disables gating entirely (counters still accumulate). For embedded
  /// single-tenant use and benchmarks of the ungoverned path.
  bool unlimited = false;
};

/// Monotonic tallies of admission and query outcomes, surfaced next to
/// ScanStats under --stats. Snapshot via AdmissionController::counters().
struct GovernanceCounters {
  uint64_t admitted = 0;           ///< queries that got a slot
  uint64_t queued = 0;             ///< of those, how many had to wait
  uint64_t rejected = 0;           ///< refused: queue full
  uint64_t cancelled = 0;          ///< finished with Status::Cancelled
  uint64_t deadline_exceeded = 0;  ///< finished with DeadlineExceeded
  uint64_t truncated = 0;          ///< results cut by a memory budget
  uint64_t peak_result_bytes = 0;  ///< largest single-query result peak
};

class AdmissionController {
 public:
  /// RAII admission slot: releasing (destruction) frees the slot and
  /// wakes the head of the wait queue. Default-constructed tickets are
  /// empty (not admitted); moved-from tickets release nothing.
  class Ticket {
   public:
    Ticket() = default;
    ~Ticket() { Release(); }

    Ticket(Ticket&& other) noexcept : controller_(other.controller_) {
      other.controller_ = nullptr;
    }
    Ticket& operator=(Ticket&& other) noexcept {
      if (this != &other) {
        Release();
        controller_ = other.controller_;
        other.controller_ = nullptr;
      }
      return *this;
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;

    bool admitted() const { return controller_ != nullptr; }
    void Release();

   private:
    friend class AdmissionController;
    explicit Ticket(AdmissionController* controller)
        : controller_(controller) {}

    AdmissionController* controller_ = nullptr;
  };

  explicit AdmissionController(AdmissionOptions options = {});

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Blocks until a slot is free (FIFO among waiters) or fails:
  ///  - ResourceExhausted immediately when the wait queue is full,
  ///  - Cancelled / DeadlineExceeded if `ctx` fires while queued.
  Result<Ticket> Admit(const QueryContext& ctx,
                       QueryPriority priority = QueryPriority::kNormal);

  /// Caps a query's requested worker count at max_threads_per_query
  /// (requested 0 means "as many as allowed"). Always >= 1.
  size_t ClampThreads(size_t requested) const;

  /// Folds a finished query's terminal status and memory high-water mark
  /// into the counters. Call exactly once per Admit, success or not.
  void RecordOutcome(const Status& status, uint64_t result_bytes_peak,
                     bool truncated);

  GovernanceCounters counters() const;
  size_t active() const;
  size_t waiting() const;

  /// The options after 0 = auto resolution.
  const AdmissionOptions& resolved_options() const { return opts_; }

 private:
  void ReleaseSlot();

  AdmissionOptions opts_;  ///< resolved: no zeros remain

  mutable std::mutex mu_;
  std::condition_variable slot_free_;
  size_t active_ = 0;
  uint64_t next_seq_ = 0;
  std::set<uint64_t> waiters_;  ///< live waiter seqs; head = *begin()
  GovernanceCounters counters_;
};

}  // namespace segdiff

#endif  // SEGDIFF_COMMON_ADMISSION_H_
