// Environment-variable configuration helpers.

#ifndef SEGDIFF_COMMON_ENV_H_
#define SEGDIFF_COMMON_ENV_H_

#include <cstdint>
#include <string>

namespace segdiff {

/// Returns the integer value of environment variable `name`, or
/// `default_value` when unset or unparsable.
int64_t GetEnvInt64(const char* name, int64_t default_value);

/// Returns the double value of environment variable `name`, or
/// `default_value` when unset or unparsable.
double GetEnvDouble(const char* name, double default_value);

/// Returns the string value of environment variable `name`, or
/// `default_value` when unset.
std::string GetEnvString(const char* name, const std::string& default_value);

}  // namespace segdiff

#endif  // SEGDIFF_COMMON_ENV_H_
