#include "common/thread_pool.h"

#include <memory>

#include "common/logging.h"

namespace segdiff {

ThreadPool::ThreadPool(size_t num_threads) {
  SEGDIFF_CHECK_GE(num_threads, size_t{1});
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      // Drain remaining tasks even when stopping, so Submit-then-destroy
      // still runs every task exactly once.
      if (tasks_.empty()) {
        return;
      }
      task = std::move(tasks_.front());
      tasks_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (tasks_.empty() && in_flight_ == 0) {
        all_idle_.notify_all();
      }
    }
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    tasks_.push_back(std::move(task));
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_idle_.wait(lock, [this] { return tasks_.empty() && in_flight_ == 0; });
}

Status ThreadPool::ParallelFor(size_t n,
                               const std::function<Status(size_t)>& fn) {
  return ParallelFor(n, /*ctx=*/nullptr, fn);
}

Status ThreadPool::ParallelFor(size_t n, const QueryContext* ctx,
                               const std::function<Status(size_t)>& fn) {
  if (n == 0) {
    return Status::OK();
  }
  // All claim/completion bookkeeping lives behind one mutex: iterations
  // are coarse (a whole scan or partition each), so contention on the
  // claim path is irrelevant next to the work itself. Helpers enqueued
  // here may run after ParallelFor returns (once every iteration is
  // claimed there is nothing left for them); the shared_ptr keeps the
  // state — including the copied fn — alive for those stragglers, and a
  // failed claim never touches fn.
  struct ForState {
    std::function<Status(size_t)> fn;
    const QueryContext* ctx = nullptr;
    size_t n = 0;
    size_t next = 0;     ///< first unclaimed iteration (== n: none left)
    size_t running = 0;  ///< claimed iterations still executing
    FirstErrorCollector errors;
    std::mutex mu;
    std::condition_variable cv;
  };
  auto state = std::make_shared<ForState>();
  state->fn = fn;
  state->ctx = ctx;
  state->n = n;
  auto run = [state] {
    for (;;) {
      size_t i;
      {
        std::unique_lock<std::mutex> lock(state->mu);
        if (state->next >= state->n) {
          return;
        }
        i = state->next++;
        ++state->running;
      }
      // Claim-time governance: a cancelled/expired query stops spawning
      // iterations here; iterations already running hit the same context
      // inside fn and unwind on their own. The caller's ctx is only
      // dereferenced while this thread holds a claimed iteration
      // (running > 0), which ParallelFor's exit condition forbids after
      // it returns — a straggler helper that finds no work left bails
      // out above without ever touching the (possibly dead) context.
      Status status;
      if (state->ctx != nullptr) {
        status = state->ctx->Check();
      }
      if (status.ok()) {
        status = state->fn(i);
      }
      state->errors.Record(std::move(status));
      {
        std::unique_lock<std::mutex> lock(state->mu);
        if (state->errors.failed()) {
          state->next = state->n;  // cancel unclaimed iterations
        }
        --state->running;
        if (state->next >= state->n && state->running == 0) {
          state->cv.notify_all();
        }
      }
    }
  };
  const size_t helpers = std::min(n - 1, workers_.size());
  for (size_t i = 0; i < helpers; ++i) {
    Submit(run);
  }
  run();  // the calling thread participates, so progress never stalls
  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&state] {
    return state->next >= state->n && state->running == 0;
  });
  return state->errors.status();
}

}  // namespace segdiff
