// Status: lightweight error propagation without exceptions.
//
// Follows the RocksDB/Arrow convention: functions that can fail return a
// Status (or a Result<T>, see common/result.h) instead of throwing. The
// empty (OK) state carries no allocation.

#ifndef SEGDIFF_COMMON_STATUS_H_
#define SEGDIFF_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace segdiff {

/// Error category for a failed operation.
enum class StatusCode : unsigned char {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kIOError,
  kCorruption,
  kNotSupported,
  kOutOfRange,
  kInternal,
  kCancelled,          ///< the caller cooperatively cancelled the operation
  kDeadlineExceeded,   ///< the operation ran past its deadline
  kResourceExhausted,  ///< an admission/memory budget refused the operation
};

/// Returns a stable human-readable name for a status code.
std::string_view StatusCodeName(StatusCode code);

/// Orthogonal failure class: how a caller should react to the error,
/// independent of what went wrong (the StatusCode). Retry loops key off
/// kTransient; allocation paths key off kNoSpace to flip the store into
/// read-only degraded mode instead of erroring every future write.
enum class ErrorClass : unsigned char {
  kPermanent = 0,  ///< retrying cannot help (the default)
  kTransient,      ///< the same operation may succeed if retried
  kNoSpace,        ///< the device is full (ENOSPC/EDQUOT); writes must stop
};

/// Result of an operation that can fail. Cheap to move; OK status does not
/// allocate. Non-OK status carries a code and a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(const Status& other)
      : rep_(other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr) {}
  Status& operator=(const Status& other) {
    if (this != &other) {
      rep_ = other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr;
    }
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  /// An IO failure worth retrying (EAGAIN-style errno, injected
  /// transient fault): same code as IOError, ErrorClass::kTransient.
  static Status TransientIOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg), ErrorClass::kTransient);
  }
  /// The device is out of space (ENOSPC/EDQUOT or an injected disk-full
  /// fault): same code as IOError, ErrorClass::kNoSpace.
  static Status NoSpace(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg), ErrorClass::kNoSpace);
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const {
    return code() == StatusCode::kAlreadyExists;
  }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsNotSupported() const { return code() == StatusCode::kNotSupported; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }

  ErrorClass error_class() const {
    return rep_ ? rep_->error_class : ErrorClass::kPermanent;
  }
  /// Retrying the failed operation may succeed.
  bool IsTransient() const {
    return error_class() == ErrorClass::kTransient;
  }
  /// The device is full; further writes are pointless until space frees.
  bool IsNoSpace() const { return error_class() == ErrorClass::kNoSpace; }

  /// Message carried by a non-OK status; empty for OK.
  std::string_view message() const {
    return rep_ ? std::string_view(rep_->message) : std::string_view();
  }

  /// A status with the same code and error class but a new message —
  /// for wrapping layers that add context without laundering a
  /// transient/no-space failure into a permanent one.
  Status WithMessage(std::string msg) const {
    if (ok()) {
      return Status();
    }
    return Status(rep_->code, std::move(msg), rep_->error_class);
  }

  /// "OK" or "<CodeName>: <message>" (" [transient]" / " [no-space]"
  /// appended for classified errors).
  std::string ToString() const;

 private:
  struct Rep {
    StatusCode code;
    std::string message;
    ErrorClass error_class = ErrorClass::kPermanent;
  };

  Status(StatusCode code, std::string msg,
         ErrorClass error_class = ErrorClass::kPermanent)
      : rep_(std::make_unique<Rep>(Rep{code, std::move(msg), error_class})) {}

  std::unique_ptr<Rep> rep_;  // nullptr == OK
};

}  // namespace segdiff

/// Propagates a non-OK Status from the current function.
#define SEGDIFF_RETURN_IF_ERROR(expr)             \
  do {                                            \
    ::segdiff::Status _segdiff_status__ = (expr); \
    if (!_segdiff_status__.ok()) {                \
      return _segdiff_status__;                   \
    }                                             \
  } while (false)

#endif  // SEGDIFF_COMMON_STATUS_H_
