// Fixed-size worker pool for intra-query parallelism.
//
// The pool is created once with N workers and destroyed deterministically:
// the destructor stops intake, drains queued tasks, and joins every
// worker. ParallelFor is the primary API — it dynamically load-balances
// iterations over the workers *and* the calling thread, so it completes
// even when every worker is busy (nested ParallelFor from a worker
// thread is therefore safe, if rarely useful).

#ifndef SEGDIFF_COMMON_THREAD_POOL_H_
#define SEGDIFF_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace segdiff {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding tasks and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.size(); }

  /// Enqueues `task` for execution by some worker.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  /// Invokes `fn(i)` for every i in [0, n), spread across the workers and
  /// the calling thread. Blocks until all iterations finish. On error the
  /// remaining iterations are skipped and the first error (by completion
  /// order) is returned.
  Status ParallelFor(size_t n, const std::function<Status(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable task_ready_;   ///< workers wait here for tasks
  std::condition_variable all_idle_;     ///< Wait() waits here
  std::deque<std::function<void()>> tasks_;
  size_t in_flight_ = 0;  ///< tasks dequeued but not yet finished
  bool stop_ = false;
};

}  // namespace segdiff

#endif  // SEGDIFF_COMMON_THREAD_POOL_H_
