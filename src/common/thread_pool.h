// Fixed-size worker pool for intra-query parallelism.
//
// The pool is created once with N workers and destroyed deterministically:
// the destructor stops intake, drains queued tasks, and joins every
// worker. ParallelFor is the primary API — it dynamically load-balances
// iterations over the workers *and* the calling thread, so it completes
// even when every worker is busy (nested ParallelFor from a worker
// thread is therefore safe, if rarely useful).

#ifndef SEGDIFF_COMMON_THREAD_POOL_H_
#define SEGDIFF_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/governance.h"
#include "common/status.h"

namespace segdiff {

/// First-error-wins capture for fan-out work: every worker Records its
/// Status, and only the first non-OK one (by completion order) is kept.
/// This is the single error-propagation idiom for pool fan-outs —
/// ParallelFor is built on it, and ad-hoc fan-outs (Submit + Wait) should
/// use it too rather than hand-rolling a mutex + Status pair.
class FirstErrorCollector {
 public:
  /// Keeps `status` if it is the first non-OK status recorded.
  void Record(Status status) {
    if (status.ok()) {
      return;
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (first_.ok()) {
      first_ = std::move(status);
    }
  }

  bool failed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return !first_.ok();
  }

  /// OK if nothing failed, else the first recorded error.
  Status status() const {
    std::lock_guard<std::mutex> lock(mu_);
    return first_;
  }

 private:
  mutable std::mutex mu_;
  Status first_;
};

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding tasks and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.size(); }

  /// Enqueues `task` for execution by some worker.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  /// Invokes `fn(i)` for every i in [0, n), spread across the workers and
  /// the calling thread. Blocks until all iterations finish. On error the
  /// remaining iterations are skipped and the first error (by completion
  /// order) is returned.
  Status ParallelFor(size_t n, const std::function<Status(size_t)>& fn);

  /// Governed variant: additionally checks `ctx` (may be null) before
  /// every iteration claim, so a cancelled or expired query stops
  /// fanning out new iterations immediately — already-running iterations
  /// still finish (they observe the same context at their own page-level
  /// check points and unwind through their Status path).
  Status ParallelFor(size_t n, const QueryContext* ctx,
                     const std::function<Status(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable task_ready_;   ///< workers wait here for tasks
  std::condition_variable all_idle_;     ///< Wait() waits here
  std::deque<std::function<void()>> tasks_;
  size_t in_flight_ = 0;  ///< tasks dequeued but not yet finished
  bool stop_ = false;
};

/// Fan-out with ordered result collection: invokes `fn(i, &(*out)[i])`
/// for every i in [0, n), each iteration writing only its own
/// pre-allocated slot — so no aggregation lock is needed and the
/// collected results are in index order no matter which worker finished
/// first (deterministic merges fold `*out` front to back afterwards).
/// With a null `pool` the iterations run serially on the calling thread
/// (same slots, same order); `ctx` may be null for ungoverned fan-outs.
/// On error the first failure (by completion order) is returned and
/// `*out` slots of unfinished iterations keep their default-constructed
/// value — callers must not use `*out` after a failure.
template <typename T, typename Fn>
Status ParallelMap(ThreadPool* pool, size_t n, const QueryContext* ctx,
                   std::vector<T>* out, const Fn& fn) {
  out->clear();
  out->resize(n);
  if (pool == nullptr) {
    for (size_t i = 0; i < n; ++i) {
      if (ctx != nullptr) {
        Status status = ctx->Check();
        if (!status.ok()) {
          return status;
        }
      }
      Status status = fn(i, &(*out)[i]);
      if (!status.ok()) {
        return status;
      }
    }
    return Status::OK();
  }
  return pool->ParallelFor(
      n, ctx, [&](size_t i) -> Status { return fn(i, &(*out)[i]); });
}

}  // namespace segdiff

#endif  // SEGDIFF_COMMON_THREAD_POOL_H_
