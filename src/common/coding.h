// Fixed-width little-endian encoding for on-disk records and index keys.

#ifndef SEGDIFF_COMMON_CODING_H_
#define SEGDIFF_COMMON_CODING_H_

#include <cstdint>
#include <cstring>

namespace segdiff {

inline void EncodeFixed32(char* dst, uint32_t value) {
  std::memcpy(dst, &value, sizeof(value));
}

inline uint32_t DecodeFixed32(const char* src) {
  uint32_t value;
  std::memcpy(&value, src, sizeof(value));
  return value;
}

inline void EncodeFixed64(char* dst, uint64_t value) {
  std::memcpy(dst, &value, sizeof(value));
}

inline uint64_t DecodeFixed64(const char* src) {
  uint64_t value;
  std::memcpy(&value, src, sizeof(value));
  return value;
}

inline void EncodeDouble(char* dst, double value) {
  std::memcpy(dst, &value, sizeof(value));
}

inline double DecodeDouble(const char* src) {
  double value;
  std::memcpy(&value, src, sizeof(value));
  return value;
}

inline void EncodeFixed16(char* dst, uint16_t value) {
  std::memcpy(dst, &value, sizeof(value));
}

inline uint16_t DecodeFixed16(const char* src) {
  uint16_t value;
  std::memcpy(&value, src, sizeof(value));
  return value;
}

}  // namespace segdiff

#endif  // SEGDIFF_COMMON_CODING_H_
