#include "common/governance.h"

#include <limits>
#include <string>

namespace segdiff {

double Deadline::remaining_millis() const {
  if (infinite()) {
    return std::numeric_limits<double>::infinity();
  }
  return std::chrono::duration<double, std::milli>(at_ - Clock::now())
      .count();
}

bool MemoryBudget::Charge(uint64_t bytes) {
  const uint64_t now = used_.fetch_add(bytes, std::memory_order_relaxed) +
                       bytes;
  if (limit_ != 0 && now > limit_) {
    used_.fetch_sub(bytes, std::memory_order_relaxed);
    breached_.store(true, std::memory_order_relaxed);
    return false;
  }
  uint64_t peak = peak_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_.compare_exchange_weak(peak, now,
                                      std::memory_order_relaxed)) {
  }
  return true;
}

Status MemoryBudget::Exceeded() const {
  return Status::ResourceExhausted(
      "result memory budget exceeded (max_result_bytes=" +
      std::to_string(limit_) + ")");
}

}  // namespace segdiff
