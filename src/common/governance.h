// Query-governance primitives: deadlines, cooperative cancellation, and
// memory budgets.
//
// A production store serving concurrent traffic needs every long-running
// loop to be stoppable: a pathological corner query (tiny eps, huge T,
// near-full-table parallelogram overlap) must not pin workers and memory
// indefinitely. The contract here is *cooperative*, page-granular
// cancellation: executors call QueryContext::Check() once per heap page
// (and every kGovernanceCheckInterval B+-tree entries), so any query
// stops within one page of work and unwinds through the normal Status
// path — RAII page pins, partition-private sinks, and pool tasks all
// release cleanly.
//
// All types are cheap to copy/share and safe to use from every worker
// thread of one query.

#ifndef SEGDIFF_COMMON_GOVERNANCE_H_
#define SEGDIFF_COMMON_GOVERNANCE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

#include "common/status.h"

namespace segdiff {

/// How often cooperative checks fire inside entry-at-a-time loops that
/// have no natural page boundary (B+-tree range walks): every N entries.
constexpr uint64_t kGovernanceCheckInterval = 128;

/// How often page-granular scans re-read the monotonic clock for the
/// deadline check: every N pages. The cancellation flag is still checked
/// on every page (one relaxed atomic load); only the comparatively
/// expensive clock read is amortized. N pages bounds deadline staleness
/// to a few microseconds of in-memory work or a handful of I/Os — far
/// inside the one-deadline-of-slack the CLI/SQL surfaces promise.
constexpr uint64_t kDeadlineCheckPageInterval = 8;

/// A monotonic-clock deadline. Default-constructed deadlines are
/// infinite (never expire), so ungoverned callers pay only a branch.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  Deadline() = default;  ///< infinite

  static Deadline Infinite() { return Deadline(); }

  /// Expires `ms` milliseconds from now (0 = already expired).
  static Deadline AfterMillis(uint64_t ms) {
    return Deadline(Clock::now() + std::chrono::milliseconds(ms));
  }

  /// The earlier of two deadlines (infinite is the identity).
  static Deadline Earlier(const Deadline& a, const Deadline& b) {
    return a.at_ <= b.at_ ? a : b;
  }

  bool infinite() const { return at_ == Clock::time_point::max(); }
  bool expired() const { return !infinite() && Clock::now() >= at_; }

  /// Milliseconds until expiry: +inf when infinite, <= 0 when expired.
  double remaining_millis() const;

  Clock::time_point time_point() const { return at_; }

 private:
  explicit Deadline(Clock::time_point at) : at_(at) {}

  Clock::time_point at_ = Clock::time_point::max();
};

/// Read side of a cancellation flag. Default-constructed tokens can
/// never be cancelled; real ones come from a CancellationSource and
/// share its atomic flag, so cancelling is visible to every thread of
/// the query immediately.
class CancellationToken {
 public:
  CancellationToken() = default;  ///< never cancelled

  bool cancelled() const {
    return flag_ != nullptr && flag_->load(std::memory_order_relaxed);
  }

 private:
  friend class CancellationSource;
  explicit CancellationToken(std::shared_ptr<const std::atomic<bool>> flag)
      : flag_(std::move(flag)) {}

  std::shared_ptr<const std::atomic<bool>> flag_;
};

/// Write side: the caller (CLI signal handler, server front-end, test)
/// holds the source and hands tokens to queries.
class CancellationSource {
 public:
  CancellationSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void Cancel() { flag_->store(true, std::memory_order_relaxed); }
  bool cancelled() const { return flag_->load(std::memory_order_relaxed); }
  CancellationToken token() const { return CancellationToken(flag_); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Tracks bytes charged by result-set growth across all threads of one
/// query. limit 0 = unlimited (still tracks usage/peak, so governance
/// counters can report peak bytes even for unbudgeted queries). A failed
/// Charge latches `breached`, which the search drivers translate into
/// explicit truncation — never a silently shortened result.
class MemoryBudget {
 public:
  MemoryBudget() = default;  ///< unlimited
  explicit MemoryBudget(uint64_t limit_bytes) : limit_(limit_bytes) {}

  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  /// Adds `bytes`; false when the charge would exceed the limit (the
  /// charge is not applied, and `breached()` latches true).
  bool Charge(uint64_t bytes);

  void Release(uint64_t bytes) {
    used_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  uint64_t limit() const { return limit_; }
  bool unlimited() const { return limit_ == 0; }
  uint64_t used() const { return used_.load(std::memory_order_relaxed); }
  uint64_t peak() const { return peak_.load(std::memory_order_relaxed); }
  bool breached() const { return breached_.load(std::memory_order_relaxed); }

  /// The ResourceExhausted status a breach surfaces as.
  Status Exceeded() const;

 private:
  uint64_t limit_ = 0;  ///< 0 = unlimited
  std::atomic<uint64_t> used_{0};
  std::atomic<uint64_t> peak_{0};
  std::atomic<bool> breached_{false};
};

/// Scheduling class for admission control. High-priority queries get a
/// deeper admission queue (they are refused later under overload); they
/// do not jump ahead of already-queued work — the wait queue stays FIFO
/// so no query starves.
enum class QueryPriority {
  kNormal = 0,
  kHigh,
};

/// Everything a cooperative check point needs, bundled so executors
/// thread one pointer. Null context (the default everywhere) means
/// ungoverned: zero checks, zero overhead beyond a branch.
struct QueryContext {
  CancellationToken cancel;
  Deadline deadline;                   ///< infinite by default
  MemoryBudget* budget = nullptr;      ///< non-owning; may be null

  /// OK to keep going; Cancelled or DeadlineExceeded to stop. Called at
  /// page granularity — an atomic load plus (when a deadline is set) one
  /// clock read. Inline so the all-clear path costs a couple of loads.
  Status Check() const {
    if (cancel.cancelled()) {
      return Status::Cancelled("query cancelled by caller");
    }
    if (deadline.expired()) {
      return Status::DeadlineExceeded("query deadline exceeded");
    }
    return Status::OK();
  }
};

}  // namespace segdiff

#endif  // SEGDIFF_COMMON_GOVERNANCE_H_
