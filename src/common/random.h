// Deterministic pseudo-random generation for workloads and tests.
//
// xoshiro256** seeded via SplitMix64. All synthetic data in the repo is
// produced through Rng so experiments are reproducible bit-for-bit given
// the same seed.

#ifndef SEGDIFF_COMMON_RANDOM_H_
#define SEGDIFF_COMMON_RANDOM_H_

#include <cmath>
#include <cstdint>

namespace segdiff {

/// xoshiro256** generator with convenience distributions.
class Rng {
 public:
  /// Seeds the state deterministically from `seed` via SplitMix64.
  explicit Rng(uint64_t seed = 0xC0FFEE1234ABCDEFull) {
    uint64_t x = seed;
    for (auto& word : state_) {
      word = SplitMix64(&x);
    }
  }

  /// Uniform 64-bit value.
  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t UniformU64(uint64_t n) { return NextU64() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    UniformU64(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Standard normal via Box-Muller (one value per call; the pair's second
  /// value is cached).
  double Gaussian() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = 0.0;
    do {
      u1 = NextDouble();
    } while (u1 <= 1e-300);
    const double u2 = NextDouble();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * 3.14159265358979323846 * u2;
    cached_ = radius * std::sin(angle);
    has_cached_ = true;
    return radius * std::cos(angle);
  }

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t SplitMix64(uint64_t* x) {
    uint64_t z = (*x += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
  bool has_cached_ = false;
  double cached_ = 0.0;
};

}  // namespace segdiff

#endif  // SEGDIFF_COMMON_RANDOM_H_
