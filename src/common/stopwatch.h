// Wall-clock timing helper for benches.

#ifndef SEGDIFF_COMMON_STOPWATCH_H_
#define SEGDIFF_COMMON_STOPWATCH_H_

#include <chrono>

namespace segdiff {

/// Measures elapsed wall time; starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the measurement window.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace segdiff

#endif  // SEGDIFF_COMMON_STOPWATCH_H_
