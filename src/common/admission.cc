#include "common/admission.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>

namespace segdiff {

namespace {

size_t HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : static_cast<size_t>(hw);
}

}  // namespace

AdmissionController::AdmissionController(AdmissionOptions options)
    : opts_(options) {
  if (opts_.max_concurrent == 0) {
    opts_.max_concurrent = std::max<size_t>(4, 2 * HardwareThreads());
  }
  if (opts_.max_queue == 0) {
    opts_.max_queue = 2 * opts_.max_concurrent;
  }
  if (opts_.max_threads_per_query == 0) {
    opts_.max_threads_per_query = HardwareThreads();
  }
}

void AdmissionController::Ticket::Release() {
  if (controller_ != nullptr) {
    controller_->ReleaseSlot();
    controller_ = nullptr;
  }
}

Result<AdmissionController::Ticket> AdmissionController::Admit(
    const QueryContext& ctx, QueryPriority priority) {
  SEGDIFF_RETURN_IF_ERROR(ctx.Check());

  std::unique_lock<std::mutex> lock(mu_);
  if (opts_.unlimited) {
    ++active_;
    ++counters_.admitted;
    return Ticket(this);
  }

  // Fast path: a free slot and nobody queued ahead of us.
  if (waiters_.empty() && active_ < opts_.max_concurrent) {
    ++active_;
    ++counters_.admitted;
    return Ticket(this);
  }

  // High priority buys a deeper queue (refused later under overload),
  // not a place at its head: the wait itself stays strictly FIFO.
  const size_t queue_bound = priority == QueryPriority::kHigh
                                 ? 2 * opts_.max_queue
                                 : opts_.max_queue;
  if (waiters_.size() >= queue_bound) {
    ++counters_.rejected;
    // Rough hint: every queued query ahead of the caller must drain
    // through a slot; assume one poll interval each.
    const uint64_t retry_ms =
        kAdmissionPollMillis *
        (1 + waiters_.size() / std::max<size_t>(1, opts_.max_concurrent));
    return Status::ResourceExhausted(
        "admission queue full (" + std::to_string(waiters_.size()) + "/" +
        std::to_string(queue_bound) + " waiting, " +
        std::to_string(active_) + " running); retry after ~" +
        std::to_string(retry_ms) + " ms");
  }

  const uint64_t seq = next_seq_++;
  waiters_.insert(seq);
  ++counters_.queued;
  for (;;) {
    // FIFO: only the live waiter with the smallest seq may take a slot.
    // Abandoned waiters erase themselves, so head-of-line is always the
    // oldest query still willing to wait.
    if (*waiters_.begin() == seq && active_ < opts_.max_concurrent) {
      waiters_.erase(seq);
      ++active_;
      ++counters_.admitted;
      // The next-oldest waiter may now be head of line.
      slot_free_.notify_all();
      return Ticket(this);
    }
    Status live = ctx.Check();
    if (!live.ok()) {
      waiters_.erase(seq);
      slot_free_.notify_all();
      return live;
    }
    // Bounded sleep so cancellation/deadline is noticed even if no slot
    // ever frees (e.g. a stuck query holding the last slot).
    auto poll = std::chrono::milliseconds(kAdmissionPollMillis);
    if (!ctx.deadline.infinite()) {
      const auto until_deadline =
          ctx.deadline.time_point() - Deadline::Clock::now();
      if (until_deadline < poll) {
        poll = std::max(
            std::chrono::milliseconds(1),
            std::chrono::duration_cast<std::chrono::milliseconds>(
                until_deadline));
      }
    }
    slot_free_.wait_for(lock, poll);
  }
}

void AdmissionController::ReleaseSlot() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    --active_;
  }
  slot_free_.notify_all();
}

size_t AdmissionController::ClampThreads(size_t requested) const {
  if (opts_.unlimited) {
    return std::max<size_t>(1, requested);
  }
  if (requested == 0) {
    return opts_.max_threads_per_query;
  }
  return std::max<size_t>(1,
                          std::min(requested, opts_.max_threads_per_query));
}

void AdmissionController::RecordOutcome(const Status& status,
                                        uint64_t result_bytes_peak,
                                        bool truncated) {
  std::unique_lock<std::mutex> lock(mu_);
  if (status.IsCancelled()) {
    ++counters_.cancelled;
  } else if (status.IsDeadlineExceeded()) {
    ++counters_.deadline_exceeded;
  }
  if (truncated) {
    ++counters_.truncated;
  }
  counters_.peak_result_bytes =
      std::max(counters_.peak_result_bytes, result_bytes_peak);
}

GovernanceCounters AdmissionController::counters() const {
  std::unique_lock<std::mutex> lock(mu_);
  return counters_;
}

size_t AdmissionController::active() const {
  std::unique_lock<std::mutex> lock(mu_);
  return active_;
}

size_t AdmissionController::waiting() const {
  std::unique_lock<std::mutex> lock(mu_);
  return waiters_.size();
}

}  // namespace segdiff
