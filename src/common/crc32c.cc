#include "common/crc32c.h"

#include <array>

#if defined(__SSE4_2__)
#include <nmmintrin.h>
#endif

namespace segdiff {
namespace {

// Software path: slicing-by-4 over tables generated at static-init time
// from the reflected Castagnoli polynomial. Roughly 1 byte/cycle —
// plenty for 8 KiB pages — and has no build-flag requirements.
constexpr uint32_t kPolyReflected = 0x82F63B78u;

struct Tables {
  std::array<std::array<uint32_t, 256>, 4> t;

  Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? kPolyReflected : 0u);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xFFu];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xFFu];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xFFu];
    }
  }
};

const Tables& GetTables() {
  static const Tables tables;
  return tables;
}

[[maybe_unused]] uint32_t ExtendSoftware(uint32_t crc, const unsigned char* p,
                                         size_t n) {
  const Tables& tables = GetTables();
  while (n >= 4) {
    crc ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
    crc = tables.t[3][crc & 0xFFu] ^ tables.t[2][(crc >> 8) & 0xFFu] ^
          tables.t[1][(crc >> 16) & 0xFFu] ^ tables.t[0][crc >> 24];
    p += 4;
    n -= 4;
  }
  while (n > 0) {
    crc = tables.t[0][(crc ^ *p) & 0xFFu] ^ (crc >> 8);
    ++p;
    --n;
  }
  return crc;
}

#if defined(__SSE4_2__)
uint32_t ExtendHardware(uint32_t crc, const unsigned char* p, size_t n) {
  while (n >= 8) {
    uint64_t v;
    __builtin_memcpy(&v, p, 8);
    crc = static_cast<uint32_t>(_mm_crc32_u64(crc, v));
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    crc = _mm_crc32_u8(crc, *p);
    ++p;
    --n;
  }
  return crc;
}
#endif

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const char* data, size_t n) {
  const unsigned char* p = reinterpret_cast<const unsigned char*>(data);
  crc = ~crc;
#if defined(__SSE4_2__)
  crc = ExtendHardware(crc, p, n);
#else
  crc = ExtendSoftware(crc, p, n);
#endif
  return ~crc;
}

bool Crc32cHardwareAccelerated() {
#if defined(__SSE4_2__)
  return true;
#else
  return false;
#endif
}

}  // namespace segdiff
