// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78): the
// checksum guarding every on-disk page (see storage/pager.cc). Chosen
// over plain CRC32 for its better error-detection properties on storage
// workloads and for hardware support (SSE4.2 crc32 instruction) when the
// build targets it.

#ifndef SEGDIFF_COMMON_CRC32C_H_
#define SEGDIFF_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace segdiff {

/// Extends `crc` with `data[0, n)`. Pass the return value of a previous
/// call to checksum data in chunks.
uint32_t Crc32cExtend(uint32_t crc, const char* data, size_t n);

/// CRC32C of `data[0, n)`.
inline uint32_t Crc32c(const char* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

/// Whether this build uses the SSE4.2 hardware crc32 instruction.
bool Crc32cHardwareAccelerated();

}  // namespace segdiff

#endif  // SEGDIFF_COMMON_CRC32C_H_
