#include "storage/table.h"

#include <utility>

#include "common/coding.h"
#include "storage/snapshot.h"
#include "storage/wal.h"

namespace segdiff {

Table::Table(BufferPool* pool, std::string name, TableSchema schema,
             HeapFile heap)
    : pool_(pool),
      name_(std::move(name)),
      schema_(std::move(schema)),
      heap_(std::make_unique<HeapFile>(heap)),
      encode_buf_(schema_.RowBytes()) {}

Result<std::unique_ptr<Table>> Table::Create(BufferPool* pool,
                                             std::string name,
                                             TableSchema schema) {
  SEGDIFF_ASSIGN_OR_RETURN(HeapFile heap,
                           HeapFile::Create(pool, schema.RowBytes()));
  std::unique_ptr<Table> table(
      new Table(pool, std::move(name), std::move(schema), heap));
  if (ZoneMap::SupportsSchema(table->schema_)) {
    table->zone_map_ = std::make_unique<ZoneMap>(table->schema_.num_columns());
  }
  return table;
}

Result<std::unique_ptr<Table>> Table::Attach(BufferPool* pool,
                                             std::string name,
                                             TableSchema schema,
                                             const HeapFileMeta& heap_meta,
                                             ColumnStoreMeta columnar) {
  SEGDIFF_ASSIGN_OR_RETURN(
      HeapFile heap, HeapFile::Attach(pool, schema.RowBytes(), heap_meta));
  std::unique_ptr<Table> table(
      new Table(pool, std::move(name), std::move(schema), heap));
  if (!columnar.segments.empty()) {
    if (!ZoneMap::SupportsSchema(table->schema_)) {
      return Status::Corruption(
          "catalog records columnar segments for an unsupported schema");
    }
    table->columnar_ = std::make_unique<ColumnStore>(
        pool, table->schema_.num_columns(), std::move(columnar));
  }
  return table;
}

Result<IndexKey> Table::MakeKey(const TableIndex& index, const char* record,
                                RecordId rid) const {
  IndexKey key;
  for (size_t i = 0; i < index.key_columns.size(); ++i) {
    key.vals[i] = DecodeDoubleColumn(record, index.key_columns[i]);
  }
  key.rid = rid.Pack();
  return key;
}

Result<RecordId> Table::Insert(const Row& row) {
  SEGDIFF_RETURN_IF_ERROR(EncodeRow(schema_, row, encode_buf_.data()));
  return InsertEncoded(encode_buf_.data());
}

Result<RecordId> Table::InsertDoubles(const std::vector<double>& values) {
  if (values.size() != schema_.num_columns()) {
    return Status::InvalidArgument("row arity mismatch");
  }
  for (size_t i = 0; i < values.size(); ++i) {
    EncodeDouble(encode_buf_.data() + 8 * i, values[i]);
  }
  return InsertEncoded(encode_buf_.data());
}

Result<RecordId> Table::InsertEncoded(const char* record) {
  // WAL-before-data: the redo record (keyed by the row's ordinal, which
  // makes replay idempotent) is logged before any page is touched, so a
  // stolen page can never outrun the log.
  Wal* wal = pool_->wal();
  if (wal != nullptr && wal->logs_rows()) {
    SEGDIFF_RETURN_IF_ERROR(
        wal->AppendRowAppend(name_, row_count(), record, schema_.RowBytes())
            .status());
  }
  SEGDIFF_ASSIGN_OR_RETURN(RecordId rid, heap_->Append(record));
  if (zone_map_ != nullptr) {
    zone_map_->OnAppend(rid, record);
  }
  for (TableIndex& index : indexes_) {
    SEGDIFF_ASSIGN_OR_RETURN(IndexKey key, MakeKey(index, record, rid));
    SEGDIFF_RETURN_IF_ERROR(index.tree->Insert(key));
  }
  return rid;
}

Result<HeapFile> Table::FrozenHeap(const DatabaseSnapshot& snapshot) const {
  const TableSnapshotView* view = snapshot.TableView(name_);
  if (view == nullptr) {
    return Status::InvalidArgument("table not covered by snapshot: " + name_);
  }
  return HeapFile::Attach(pool_, schema_.RowBytes(), view->heap_meta);
}

Status Table::Scan(const HeapFile::ScanFn& fn,
                   const DatabaseSnapshot* snapshot,
                   const CorruptPageSkipper* skip) const {
  if (columnar_ != nullptr) {
    // Columnar segments are immutable once written, so snapshot scans
    // read them directly.
    bool keep_going = true;
    SEGDIFF_RETURN_IF_ERROR(ScanColumnar(fn, &keep_going));
    if (!keep_going) {
      return Status::OK();
    }
  }
  if (snapshot == nullptr) {
    return heap_->Scan(fn, nullptr, skip);
  }
  SEGDIFF_ASSIGN_OR_RETURN(HeapFile frozen, FrozenHeap(*snapshot));
  return frozen.Scan(fn, snapshot->pool_snapshot(), skip);
}

Status Table::ScanSalvage(const HeapFile::ScanFn& fn,
                          SalvageStats* stats) const {
  bool keep_going = true;
  if (columnar_ != nullptr) {
    // Per-segment tolerance: a corrupt segment (any of its pages fails
    // its checksum, or its directory fails to parse) is dropped whole —
    // segments are decoded as a unit, so there is no finer grain to
    // salvage at.
    const size_t ncols = schema_.num_columns();
    std::vector<double> values;
    std::vector<char> record(schema_.RowBytes());
    for (size_t s = 0; s < columnar_->segment_count() && keep_going; ++s) {
      const ColumnSegmentInfo& info = columnar_->meta().segments[s];
      Result<ColumnSegmentHandle> opened = columnar_->OpenSegment(s);
      Status decode_status = opened.status();
      if (opened.ok()) {
        ColumnSegmentHandle handle = std::move(opened).value();
        const size_t rows = handle.rows();
        values.resize(ncols * rows);
        decode_status = Status::OK();
        for (size_t c = 0; c < ncols && decode_status.ok(); ++c) {
          decode_status = handle.DecodeColumn(c, values.data() + c * rows);
        }
        if (decode_status.ok()) {
          const PageId first = handle.first_page();
          for (size_t r = 0; r < rows && keep_going; ++r) {
            for (size_t c = 0; c < ncols; ++c) {
              EncodeDouble(record.data() + c * 8, values[c * rows + r]);
            }
            SEGDIFF_RETURN_IF_ERROR(
                fn(record.data(), RecordId{first, static_cast<uint32_t>(r)},
                   &keep_going));
          }
          continue;
        }
      }
      if (!decode_status.IsCorruption()) {
        return decode_status;
      }
      ++stats->segments_skipped;
      stats->rows_lost += info.rows;
    }
    if (!keep_going) {
      return Status::OK();
    }
  }
  CorruptPageSkipper skipper;
  skipper.on_skip = [&](PageId page, uint64_t lost) {
    stats->pages_skipped += page != kInvalidPageId ? 1 : 0;
    stats->rows_lost += lost;
  };
  return heap_->Scan(fn, nullptr, &skipper);
}

Status Table::ScanColumnar(const HeapFile::ScanFn& fn,
                           bool* keep_going) const {
  const size_t ncols = schema_.num_columns();
  std::vector<double> values;
  std::vector<char> record(schema_.RowBytes());
  for (size_t s = 0; s < columnar_->segment_count() && *keep_going; ++s) {
    SEGDIFF_ASSIGN_OR_RETURN(ColumnSegmentHandle handle,
                             columnar_->OpenSegment(s));
    const size_t rows = handle.rows();
    values.resize(ncols * rows);
    for (size_t c = 0; c < ncols; ++c) {
      SEGDIFF_RETURN_IF_ERROR(
          handle.DecodeColumn(c, values.data() + c * rows));
    }
    const PageId first = handle.first_page();
    for (size_t r = 0; r < rows && *keep_going; ++r) {
      for (size_t c = 0; c < ncols; ++c) {
        EncodeDouble(record.data() + c * 8, values[c * rows + r]);
      }
      SEGDIFF_RETURN_IF_ERROR(
          fn(record.data(), RecordId{first, static_cast<uint32_t>(r)},
             keep_going));
    }
  }
  return Status::OK();
}

Status Table::AppendColumnarSegment(const char* records, size_t rows) {
  if (!ZoneMap::SupportsSchema(schema_)) {
    return Status::NotSupported(
        "columnar segments require an all-double schema of at most " +
        std::to_string(ZoneMap::kMaxColumns) + " columns");
  }
  if (heap_->meta().record_count != 0) {
    return Status::InvalidArgument(
        "columnar segments must precede row-format appends");
  }
  if (!indexes_.empty()) {
    return Status::InvalidArgument(
        "columnar segments must be appended before indexes exist");
  }
  if (columnar_ == nullptr) {
    columnar_ =
        std::make_unique<ColumnStore>(pool_, schema_.num_columns());
  }
  return columnar_->AppendSegment(records, rows);
}

Table::FormatBreakdown Table::GetFormatBreakdown() const {
  FormatBreakdown breakdown;
  breakdown.row_pages = heap_->meta().page_count;
  breakdown.row_rows = heap_->meta().record_count;
  breakdown.row_bytes = heap_->SizeBytes();
  if (columnar_ != nullptr) {
    breakdown.columnar_segments = columnar_->segment_count();
    breakdown.columnar_pages = columnar_->page_count();
    breakdown.columnar_rows = columnar_->row_count();
    breakdown.columnar_encoded_bytes = columnar_->encoded_bytes();
    breakdown.columnar_logical_bytes = columnar_->LogicalBytes();
  }
  return breakdown;
}

Result<std::vector<PageId>> Table::HeapPageIds(
    const DatabaseSnapshot* snapshot, const CorruptPageSkipper* skip) const {
  if (snapshot == nullptr) {
    return heap_->CollectPageIds(nullptr, skip);
  }
  SEGDIFF_ASSIGN_OR_RETURN(HeapFile frozen, FrozenHeap(*snapshot));
  return frozen.CollectPageIds(snapshot->pool_snapshot(), skip);
}

Status Table::ScanPages(const std::vector<PageId>& pages,
                        uint64_t first_page_index, const HeapFile::ScanFn& fn,
                        const DatabaseSnapshot* snapshot,
                        const CorruptPageSkipper* skip) const {
  if (snapshot == nullptr) {
    return heap_->ScanPages(pages, first_page_index, fn, nullptr, skip);
  }
  SEGDIFF_ASSIGN_OR_RETURN(HeapFile frozen, FrozenHeap(*snapshot));
  return frozen.ScanPages(pages, first_page_index, fn,
                          snapshot->pool_snapshot(), skip);
}

Status Table::ScanPageData(const HeapFile::PageDataFn& fn,
                           const DatabaseSnapshot* snapshot,
                           const CorruptPageSkipper* skip) const {
  if (snapshot == nullptr) {
    return heap_->ScanPageData(fn, nullptr, skip);
  }
  SEGDIFF_ASSIGN_OR_RETURN(HeapFile frozen, FrozenHeap(*snapshot));
  return frozen.ScanPageData(fn, snapshot->pool_snapshot(), skip);
}

Status Table::ScanPagesData(const std::vector<PageId>& pages,
                            uint64_t first_page_index,
                            const HeapFile::PageDataFn& fn,
                            const DatabaseSnapshot* snapshot,
                            const CorruptPageSkipper* skip) const {
  if (snapshot == nullptr) {
    return heap_->ScanPagesData(pages, first_page_index, fn, nullptr, skip);
  }
  SEGDIFF_ASSIGN_OR_RETURN(HeapFile frozen, FrozenHeap(*snapshot));
  return frozen.ScanPagesData(pages, first_page_index, fn,
                              snapshot->pool_snapshot(), skip);
}

bool Table::AttachZoneMap(ZoneMap map) {
  if (map.num_columns() != schema_.num_columns() ||
      map.total_rows() != heap_->meta().record_count ||
      map.zone_count() > heap_->meta().page_count) {
    return false;  // stale or foreign map; pruning with it would be unsafe
  }
  zone_map_ = std::make_unique<ZoneMap>(std::move(map));
  return true;
}

Status Table::EnsureZoneMap() {
  if (zone_map_ != nullptr || !ZoneMap::SupportsSchema(schema_)) {
    return Status::OK();
  }
  auto map = std::make_unique<ZoneMap>(schema_.num_columns());
  SEGDIFF_RETURN_IF_ERROR(heap_->Scan(
      [&](const char* record, RecordId rid, bool* keep_going) -> Status {
        *keep_going = true;
        map->OnAppend(rid, record);
        return Status::OK();
      }));
  zone_map_ = std::move(map);
  return Status::OK();
}

Result<Row> Table::ReadRow(RecordId id) const {
  std::vector<char> buf(schema_.RowBytes());
  SEGDIFF_RETURN_IF_ERROR(ReadRecord(id, buf.data()));
  return DecodeRow(schema_, buf.data());
}

Status Table::ReadRecord(RecordId id, char* buf,
                         const DatabaseSnapshot* snapshot) const {
  if (columnar_ != nullptr && columnar_->FindSegment(id.page) !=
                                  ColumnStore::npos) {
    return columnar_->ReadRow(id, buf);
  }
  return heap_->ReadRecord(
      id, buf, snapshot == nullptr ? nullptr : snapshot->pool_snapshot());
}

Result<BPlusTree*> Table::CreateIndex(
    const std::string& index_name,
    const std::vector<std::string>& columns) {
  if (columns.empty() ||
      columns.size() > static_cast<size_t>(kMaxIndexArity)) {
    return Status::InvalidArgument("index needs 1..4 key columns");
  }
  for (const TableIndex& index : indexes_) {
    if (index.name == index_name) {
      return Status::AlreadyExists("index exists: " + index_name);
    }
  }
  TableIndex index;
  index.name = index_name;
  for (const std::string& column : columns) {
    SEGDIFF_ASSIGN_OR_RETURN(size_t idx, schema_.ColumnIndex(column));
    if (schema_.column(idx).type != ColumnType::kDouble) {
      return Status::InvalidArgument("index columns must be kDouble");
    }
    index.key_columns.push_back(idx);
  }
  SEGDIFF_ASSIGN_OR_RETURN(
      BPlusTree tree,
      BPlusTree::Create(pool_, static_cast<int>(columns.size())));
  index.tree = std::make_unique<BPlusTree>(std::move(tree));

  // Back-fill from existing rows — the full table scan, so columnar
  // rows (with their {segment, row} record ids) are indexed too.
  Status backfill = Scan(
      [&](const char* record, RecordId rid, bool* keep_going) -> Status {
        *keep_going = true;
        SEGDIFF_ASSIGN_OR_RETURN(IndexKey key, MakeKey(index, record, rid));
        return index.tree->Insert(key);
      });
  SEGDIFF_RETURN_IF_ERROR(backfill);
  indexes_.push_back(std::move(index));
  return indexes_.back().tree.get();
}

Status Table::AttachIndex(const std::string& index_name,
                          std::vector<size_t> key_columns,
                          PageId meta_page) {
  SEGDIFF_ASSIGN_OR_RETURN(BPlusTree tree,
                           BPlusTree::Attach(pool_, meta_page));
  TableIndex index;
  index.name = index_name;
  index.key_columns = std::move(key_columns);
  index.tree = std::make_unique<BPlusTree>(std::move(tree));
  indexes_.push_back(std::move(index));
  return Status::OK();
}

Result<BPlusTree*> Table::GetIndex(const std::string& index_name) const {
  for (const TableIndex& index : indexes_) {
    if (index.name == index_name) {
      return index.tree.get();
    }
  }
  return Status::NotFound("no such index: " + index_name);
}

Result<uint64_t> Table::DeleteWhere(const Predicate& predicate) {
  // The rewrite's internal appends are not independently redoable (the
  // survivors land in a heap the catalog does not reference yet), so
  // they are not logged; the caller must checkpoint right after, which
  // makes the new heap durable atomically with the catalog that points
  // at it. A crash before that checkpoint recovers the pre-delete state.
  Wal::Suspend suspend_wal(pool_->wal());
  SEGDIFF_ASSIGN_OR_RETURN(HeapFile fresh,
                           HeapFile::Create(pool_, schema_.RowBytes()));
  uint64_t removed = 0;
  std::unique_ptr<ZoneMap> fresh_map;
  if (ZoneMap::SupportsSchema(schema_)) {
    fresh_map = std::make_unique<ZoneMap>(schema_.num_columns());
  }
  // Copy survivors into the fresh heap. The full table scan covers the
  // columnar segments too: a delete rewrites the whole table back to
  // row format (deletes are rare in the feature workload; the next
  // compaction re-converts), and the superseded segment pages become
  // file garbage exactly like superseded heap pages.
  SEGDIFF_RETURN_IF_ERROR(Scan(
      [&](const char* record, RecordId, bool* keep_going) -> Status {
        *keep_going = true;
        if (predicate.Matches(record)) {
          ++removed;
          return Status::OK();
        }
        SEGDIFF_ASSIGN_OR_RETURN(RecordId rid, fresh.Append(record));
        if (fresh_map != nullptr) {
          fresh_map->OnAppend(rid, record);
        }
        return Status::OK();
      }));
  // Rebuild every index over the fresh heap.
  std::vector<TableIndex> rebuilt;
  rebuilt.reserve(indexes_.size());
  for (const TableIndex& old_index : indexes_) {
    TableIndex index;
    index.name = old_index.name;
    index.key_columns = old_index.key_columns;
    SEGDIFF_ASSIGN_OR_RETURN(
        BPlusTree tree,
        BPlusTree::Create(pool_,
                          static_cast<int>(index.key_columns.size())));
    index.tree = std::make_unique<BPlusTree>(std::move(tree));
    SEGDIFF_RETURN_IF_ERROR(fresh.Scan(
        [&](const char* record, RecordId rid, bool* keep_going) -> Status {
          *keep_going = true;
          SEGDIFF_ASSIGN_OR_RETURN(IndexKey key, MakeKey(index, record, rid));
          return index.tree->Insert(key);
        }));
    rebuilt.push_back(std::move(index));
  }
  *heap_ = fresh;
  columnar_.reset();
  zone_map_ = std::move(fresh_map);
  indexes_ = std::move(rebuilt);
  return removed;
}

uint64_t Table::IndexSizeBytes() const {
  uint64_t total = 0;
  for (const TableIndex& index : indexes_) {
    total += index.tree->SizeBytes();
  }
  return total;
}

}  // namespace segdiff
