#include "storage/heap_file.h"

#include <cstring>

#include "common/coding.h"

namespace segdiff {
namespace {

PageId PageNext(const char* page) { return DecodeFixed64(page); }
void SetPageNext(char* page, PageId next) { EncodeFixed64(page, next); }
uint16_t PageCount(const char* page) { return DecodeFixed16(page + 8); }
void SetPageCount(char* page, uint16_t count) {
  EncodeFixed16(page + 8, count);
}

}  // namespace

HeapFile::HeapFile(BufferPool* pool, size_t record_bytes,
                   const HeapFileMeta& meta)
    : pool_(pool),
      allocator_(pool->pager()),
      record_bytes_(record_bytes),
      records_per_page_((kPageCapacity - kHeaderBytes) / record_bytes),
      meta_(meta) {}

Result<HeapFile> HeapFile::Create(BufferPool* pool, size_t record_bytes) {
  if (record_bytes == 0 || record_bytes > kPageCapacity - kHeaderBytes) {
    return Status::InvalidArgument("record size does not fit a page");
  }
  // The first page (and its extent) is allocated lazily by the first
  // Append: an empty heap occupies zero pages, so tables whose rows all
  // live in columnar segments carry no heap slack.
  return HeapFile(pool, record_bytes, HeapFileMeta{});
}

Result<HeapFile> HeapFile::Attach(BufferPool* pool, size_t record_bytes,
                                  const HeapFileMeta& meta) {
  if (record_bytes == 0 || record_bytes > kPageCapacity - kHeaderBytes) {
    return Status::InvalidArgument("record size does not fit a page");
  }
  if ((meta.first_page == kInvalidPageId) !=
      (meta.last_page == kInvalidPageId)) {
    return Status::InvalidArgument("heap file meta has invalid pages");
  }
  if (meta.first_page == kInvalidPageId &&
      (meta.record_count != 0 || meta.page_count != 0)) {
    return Status::InvalidArgument("pageless heap file meta claims rows");
  }
  return HeapFile(pool, record_bytes, meta);
}

uint16_t HeapFile::PageRecordCount(uint64_t page_index) const {
  const uint64_t before = page_index * records_per_page_;
  if (before >= meta_.record_count) {
    return 0;
  }
  const uint64_t rest = meta_.record_count - before;
  return static_cast<uint16_t>(
      rest < records_per_page_ ? rest : records_per_page_);
}

Result<RecordId> HeapFile::Append(const char* record) {
  if (meta_.last_page == kInvalidPageId) {
    SEGDIFF_ASSIGN_OR_RETURN(PageId first, allocator_.Allocate());
    SEGDIFF_ASSIGN_OR_RETURN(PageHandle fresh, pool_->PinFresh(first));
    SetPageNext(fresh.data(), kInvalidPageId);
    SetPageCount(fresh.data(), 0);
    fresh.MarkDirty();
    meta_.first_page = first;
    meta_.last_page = first;
    meta_.page_count = 1;
  }
  SEGDIFF_ASSIGN_OR_RETURN(PageHandle page, pool_->FetchMut(meta_.last_page));
  // The tail slot comes from the meta, not the page header: a stolen
  // tail page can persist post-checkpoint rows across a crash, and WAL
  // replay must overwrite those slots in place, not append after them.
  uint64_t count =
      meta_.record_count - (meta_.page_count - 1) * records_per_page_;
  if (count >= records_per_page_) {
    // Tail page full: chain a new page from this heap's extents.
    SEGDIFF_ASSIGN_OR_RETURN(PageId fresh_id, allocator_.Allocate());
    SEGDIFF_ASSIGN_OR_RETURN(PageHandle fresh, pool_->PinFresh(fresh_id));
    SetPageNext(fresh.data(), kInvalidPageId);
    SetPageCount(fresh.data(), 0);
    fresh.MarkDirty();
    SetPageNext(page.data(), fresh.page_id());
    page.MarkDirty();
    meta_.last_page = fresh.page_id();
    ++meta_.page_count;
    page = std::move(fresh);
    count = 0;
  }
  char* slot =
      page.data() + kHeaderBytes + static_cast<size_t>(count) * record_bytes_;
  std::memcpy(slot, record, record_bytes_);
  SetPageCount(page.data(), static_cast<uint16_t>(count + 1));
  page.MarkDirty();
  ++meta_.record_count;
  return RecordId{page.page_id(), static_cast<uint32_t>(count)};
}

Status HeapFile::SkipCorruptChainPage(const Status& error, PageId* current,
                                      uint64_t index,
                                      const CorruptPageSkipper* skip) const {
  if (skip == nullptr || !error.IsCorruption()) {
    return error;
  }
  if (skip->on_skip) {
    skip->on_skip(*current, PageRecordCount(index));
  }
  // Best-effort chain continuation: the next pointer lives in the first
  // 8 bytes of the corrupt page, and a flipped bit elsewhere in the
  // payload leaves it intact — a raw (unverified) read recovers it.
  std::vector<char> raw(kPageSize);
  PageId next = kInvalidPageId;
  if (pool_->pager()->ReadPageRaw(*current, raw.data()).ok()) {
    next = PageNext(raw.data());
  }
  // An untrustworthy pointer (self-loop, past end of file — which also
  // covers kInvalidPageId) ends the walk; the rest of the chain is
  // unreachable and its records are reported as lost.
  if (next == *current || next >= pool_->pager()->page_count()) {
    next = kInvalidPageId;
  }
  if (next == kInvalidPageId && index + 1 < meta_.page_count) {
    const uint64_t reached = (index + 1) * records_per_page_;
    if (skip->on_skip && meta_.record_count > reached) {
      skip->on_skip(kInvalidPageId, meta_.record_count - reached);
    }
  }
  *current = next;
  return Status::OK();
}

Status HeapFile::Scan(const ScanFn& fn, const PoolSnapshot* snap,
                      const CorruptPageSkipper* skip) const {
  PageId current = meta_.first_page;
  uint64_t index = 0;
  bool keep_going = true;
  while (current != kInvalidPageId && index < meta_.page_count && keep_going) {
    Result<PageHandle> page = pool_->Fetch(current, snap);
    if (!page.ok()) {
      SEGDIFF_RETURN_IF_ERROR(
          SkipCorruptChainPage(page.status(), &current, index, skip));
      ++index;
      continue;
    }
    const uint16_t count = PageRecordCount(index);
    const char* base = (*page).data() + kHeaderBytes;
    for (uint16_t slot = 0; slot < count && keep_going; ++slot) {
      SEGDIFF_RETURN_IF_ERROR(
          fn(base + static_cast<size_t>(slot) * record_bytes_,
             RecordId{current, slot}, &keep_going));
    }
    current = PageNext((*page).data());
    ++index;
  }
  return Status::OK();
}

Status HeapFile::ScanPageData(const PageDataFn& fn, const PoolSnapshot* snap,
                              const CorruptPageSkipper* skip) const {
  PageId current = meta_.first_page;
  uint64_t index = 0;
  bool keep_going = true;
  while (current != kInvalidPageId && index < meta_.page_count && keep_going) {
    Result<PageHandle> page = pool_->Fetch(current, snap);
    if (!page.ok()) {
      SEGDIFF_RETURN_IF_ERROR(
          SkipCorruptChainPage(page.status(), &current, index, skip));
      ++index;
      continue;
    }
    SEGDIFF_RETURN_IF_ERROR(fn(current, (*page).data() + kHeaderBytes,
                               PageRecordCount(index), &keep_going));
    current = PageNext((*page).data());
    ++index;
  }
  return Status::OK();
}

Status HeapFile::ScanPagesData(const std::vector<PageId>& pages,
                               uint64_t first_page_index, const PageDataFn& fn,
                               const PoolSnapshot* snap,
                               const CorruptPageSkipper* skip) const {
  bool keep_going = true;
  for (size_t i = 0; i < pages.size(); ++i) {
    if (!keep_going || first_page_index + i >= meta_.page_count) {
      break;
    }
    Result<PageHandle> page = pool_->Fetch(pages[i], snap);
    if (!page.ok()) {
      if (skip == nullptr || !page.status().IsCorruption()) {
        return page.status();
      }
      // Pre-collected ids: the chain is already resolved, so a corrupt
      // page costs only its own records.
      if (skip->on_skip) {
        skip->on_skip(pages[i], PageRecordCount(first_page_index + i));
      }
      continue;
    }
    SEGDIFF_RETURN_IF_ERROR(fn(pages[i], (*page).data() + kHeaderBytes,
                               PageRecordCount(first_page_index + i),
                               &keep_going));
  }
  return Status::OK();
}

Result<std::vector<PageId>> HeapFile::CollectPageIds(
    const PoolSnapshot* snap, const CorruptPageSkipper* skip) const {
  std::vector<PageId> pages;
  pages.reserve(meta_.page_count);
  PageId current = meta_.first_page;
  while (current != kInvalidPageId && pages.size() < meta_.page_count) {
    pages.push_back(current);
    Result<PageHandle> page = pool_->Fetch(current, snap);
    if (!page.ok()) {
      // The corrupt page keeps its slot in the list (the consuming scan
      // reports it when its own fetch fails); only the chain recovery —
      // and any unreachable-remainder report — happens here. on_skip is
      // suppressed for the page itself to avoid double counting.
      CorruptPageSkipper remainder_only;
      if (skip != nullptr) {
        remainder_only.on_skip = [&](PageId p, uint64_t lost) {
          if (p == kInvalidPageId && skip->on_skip) {
            skip->on_skip(p, lost);
          }
        };
      }
      SEGDIFF_RETURN_IF_ERROR(SkipCorruptChainPage(
          page.status(), &current, pages.size() - 1,
          skip != nullptr ? &remainder_only : nullptr));
      continue;
    }
    current = PageNext((*page).data());
  }
  return pages;
}

Status HeapFile::ScanPages(const std::vector<PageId>& pages,
                           uint64_t first_page_index, const ScanFn& fn,
                           const PoolSnapshot* snap,
                           const CorruptPageSkipper* skip) const {
  bool keep_going = true;
  for (size_t i = 0; i < pages.size(); ++i) {
    if (!keep_going || first_page_index + i >= meta_.page_count) {
      break;
    }
    Result<PageHandle> page = pool_->Fetch(pages[i], snap);
    if (!page.ok()) {
      if (skip == nullptr || !page.status().IsCorruption()) {
        return page.status();
      }
      if (skip->on_skip) {
        skip->on_skip(pages[i], PageRecordCount(first_page_index + i));
      }
      continue;
    }
    const uint16_t count = PageRecordCount(first_page_index + i);
    const char* base = (*page).data() + kHeaderBytes;
    for (uint16_t slot = 0; slot < count && keep_going; ++slot) {
      SEGDIFF_RETURN_IF_ERROR(
          fn(base + static_cast<size_t>(slot) * record_bytes_,
             RecordId{pages[i], slot}, &keep_going));
    }
  }
  return Status::OK();
}

Status HeapFile::ReadRecord(RecordId id, char* buf,
                            const PoolSnapshot* snap) const {
  SEGDIFF_ASSIGN_OR_RETURN(PageHandle page, pool_->Fetch(id.page, snap));
  const uint16_t count = PageCount(page.data());
  if (id.slot >= count) {
    return Status::NotFound("record slot out of range");
  }
  std::memcpy(buf,
              page.data() + kHeaderBytes +
                  static_cast<size_t>(id.slot) * record_bytes_,
              record_bytes_);
  return Status::OK();
}

}  // namespace segdiff
