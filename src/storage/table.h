// Table: a schema + heap file + any number of B+-tree secondary indexes.

#ifndef SEGDIFF_STORAGE_TABLE_H_
#define SEGDIFF_STORAGE_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "index/bplus_tree.h"
#include "query/predicate.h"
#include "storage/column_page.h"
#include "storage/heap_file.h"
#include "storage/record.h"
#include "storage/zone_map.h"

namespace segdiff {

class DatabaseSnapshot;

/// One secondary index: key = the listed double columns, in order,
/// with the record id appended as tiebreaker.
struct TableIndex {
  std::string name;
  std::vector<size_t> key_columns;
  std::unique_ptr<BPlusTree> tree;
};

/// Table with a dual-format data layout: an optional run of immutable
/// compressed columnar segments (produced by compaction-time conversion,
/// holding the oldest rows) followed by the append-only row heap. Insert
/// maintains every index and always lands in the heap; scans stream the
/// columnar segments first, then the heap, so visit order is insertion
/// order regardless of format.
class Table {
 public:
  /// Creates a fresh table (allocates its heap file).
  static Result<std::unique_ptr<Table>> Create(BufferPool* pool,
                                               std::string name,
                                               TableSchema schema);

  /// Attaches to an existing table (plus its columnar portion, if the
  /// catalog recorded one).
  static Result<std::unique_ptr<Table>> Attach(BufferPool* pool,
                                               std::string name,
                                               TableSchema schema,
                                               const HeapFileMeta& heap_meta,
                                               ColumnStoreMeta columnar = {});

  const std::string& name() const { return name_; }
  const TableSchema& schema() const { return schema_; }

  /// Inserts a typed row; updates all indexes. When the buffer pool
  /// carries a WAL that logs rows, the encoded row is logged (with its
  /// ordinal) before any page is touched — WAL-before-data.
  Result<RecordId> Insert(const Row& row);

  /// Hot path for all-double tables: skips Value boxing.
  Result<RecordId> InsertDoubles(const std::vector<double>& values);

  /// Inserts an already-encoded record (schema().RowBytes() bytes):
  /// the common tail of Insert/InsertDoubles, and the WAL replay path
  /// (replay runs it with logging suspended, reproducing the original
  /// append byte for byte).
  Result<RecordId> InsertEncoded(const char* record);

  /// Raw scan over encoded records in insertion order: columnar
  /// segments (materialized row by row), then the heap. A non-null
  /// `snapshot` (see storage/snapshot.h) reads the frozen point-in-time
  /// state instead of the live table — same for every scan/read below.
  /// A non-null `skip` (heap_file.h) routes around corrupt heap pages
  /// instead of failing (columnar corruption still fails this scan;
  /// ScanSalvage covers both formats).
  Status Scan(const HeapFile::ScanFn& fn,
              const DatabaseSnapshot* snapshot = nullptr,
              const CorruptPageSkipper* skip = nullptr) const;

  /// Heap page ids in storage order (for partitioned parallel scans).
  Result<std::vector<PageId>> HeapPageIds(
      const DatabaseSnapshot* snapshot = nullptr,
      const CorruptPageSkipper* skip = nullptr) const;

  /// Raw scan restricted to the given heap pages — a contiguous slice
  /// of HeapPageIds() starting at chain position `first_page_index`
  /// (which per-page record counts are derived from).
  Status ScanPages(const std::vector<PageId>& pages,
                   uint64_t first_page_index, const HeapFile::ScanFn& fn,
                   const DatabaseSnapshot* snapshot = nullptr,
                   const CorruptPageSkipper* skip = nullptr) const;

  /// Page-at-a-time scans over the whole chain / the given pages; the
  /// batched executors decode each page's records in one shot.
  Status ScanPageData(const HeapFile::PageDataFn& fn,
                      const DatabaseSnapshot* snapshot = nullptr,
                      const CorruptPageSkipper* skip = nullptr) const;
  Status ScanPagesData(const std::vector<PageId>& pages,
                       uint64_t first_page_index,
                       const HeapFile::PageDataFn& fn,
                       const DatabaseSnapshot* snapshot = nullptr,
                       const CorruptPageSkipper* skip = nullptr) const;

  /// Accounting for ScanSalvage: what could not be read.
  struct SalvageStats {
    uint64_t pages_skipped = 0;    ///< corrupt heap pages routed around
    uint64_t rows_lost = 0;        ///< records on skipped pages/segments
    uint64_t segments_skipped = 0; ///< corrupt columnar segments dropped
  };

  /// Best-effort full scan for repair: visits every record that can
  /// still be read — corrupt columnar segments are dropped whole (their
  /// rows counted in `stats`), corrupt heap pages are skipped with
  /// chain recovery — and never fails on corruption. Non-corruption
  /// errors (I/O) still fail the scan.
  Status ScanSalvage(const HeapFile::ScanFn& fn, SalvageStats* stats) const;

  /// Materializes the row at `id`.
  Result<Row> ReadRow(RecordId id) const;

  /// Copies the encoded record at `id` into `buf` (schema().RowBytes()).
  /// Resolves both heap record ids and columnar ids ({segment first
  /// page, row index}), so index scans work across both formats.
  Status ReadRecord(RecordId id, char* buf,
                    const DatabaseSnapshot* snapshot = nullptr) const;

  /// The table's columnar portion, or nullptr (pure row format).
  const ColumnStore* columnar() const { return columnar_.get(); }

  /// Appends `rows` row-major encoded records as one compressed
  /// columnar segment — the compaction-time conversion path. Only legal
  /// on an all-double schema of at most ZoneMap::kMaxColumns columns,
  /// before any heap rows or indexes exist (so scan order stays
  /// insertion order and indexes never miss rows).
  Status AppendColumnarSegment(const char* records, size_t rows);

  /// Per-format storage accounting for stats/EXPLAIN surfaces.
  struct FormatBreakdown {
    uint64_t row_pages = 0;
    uint64_t row_rows = 0;
    uint64_t row_bytes = 0;  ///< on-disk heap bytes (pages x page size)
    uint64_t columnar_segments = 0;
    uint64_t columnar_pages = 0;
    uint64_t columnar_rows = 0;
    uint64_t columnar_encoded_bytes = 0;  ///< compressed payload bytes
    uint64_t columnar_logical_bytes = 0;  ///< same rows in row format
  };
  FormatBreakdown GetFormatBreakdown() const;

  /// Adds an empty index over the named columns (all kDouble, at most
  /// kMaxIndexArity) and back-fills it from existing rows.
  Result<BPlusTree*> CreateIndex(const std::string& index_name,
                                 const std::vector<std::string>& columns);

  /// Attaches an existing index (catalog restart path).
  Status AttachIndex(const std::string& index_name,
                     std::vector<size_t> key_columns, PageId meta_page);

  /// The named index, or NotFound.
  Result<BPlusTree*> GetIndex(const std::string& index_name) const;

  /// Deletes every row matching `predicate` by rewriting the heap file
  /// and rebuilding all indexes (a compaction-style delete: simple,
  /// crash-safe at checkpoint granularity, and appropriate for the
  /// rare-delete feature workload; superseded pages become file garbage
  /// until the store is rebuilt). Returns the number of rows removed.
  Result<uint64_t> DeleteWhere(const Predicate& predicate);

  /// The table's zone map, or nullptr (unsupported schema, or a legacy
  /// store whose map has not been rebuilt yet — call EnsureZoneMap).
  const ZoneMap* zone_map() const { return zone_map_.get(); }

  /// Adopts a zone map restored from the catalog. Rejects (drops) maps
  /// inconsistent with the heap — wrong arity or row count — since a
  /// stale map could prune live pages; the caller falls back to
  /// EnsureZoneMap. Returns whether the map was adopted.
  bool AttachZoneMap(ZoneMap map);

  /// Builds the zone map from a full heap scan when the schema supports
  /// one and it is missing (legacy stores / rejected blobs). No-op when
  /// already present or unsupported.
  Status EnsureZoneMap();

  /// Discards the zone map (scans stop pruning until EnsureZoneMap).
  /// Tests use this to exercise the legacy-store path; losing a map is
  /// always safe — it is derived data.
  void DetachZoneMap() { zone_map_.reset(); }

  const std::vector<TableIndex>& indexes() const { return indexes_; }
  uint64_t row_count() const {
    return heap_->meta().record_count +
           (columnar_ != nullptr ? columnar_->row_count() : 0);
  }
  /// Data bytes only (heap + columnar pages): the paper's "feature
  /// size". Compression shrinks this directly.
  uint64_t DataSizeBytes() const {
    return heap_->SizeBytes() +
           (columnar_ != nullptr ? columnar_->page_count() * kPageSize : 0);
  }
  /// Index bytes; data + index = the paper's "disk size".
  uint64_t IndexSizeBytes() const;
  const HeapFileMeta& heap_meta() const { return heap_->meta(); }

 private:
  Table(BufferPool* pool, std::string name, TableSchema schema,
        HeapFile heap);

  Result<IndexKey> MakeKey(const TableIndex& index, const char* record,
                           RecordId rid) const;

  /// Visits the columnar rows in segment order (clears *keep_going on
  /// early stop, like HeapFile::Scan's callback contract).
  Status ScanColumnar(const HeapFile::ScanFn& fn, bool* keep_going) const;

  /// A throwaway HeapFile over this table's frozen meta in `snapshot`
  /// (InvalidArgument when the snapshot predates the table).
  Result<HeapFile> FrozenHeap(const DatabaseSnapshot& snapshot) const;

  BufferPool* pool_;
  std::string name_;
  TableSchema schema_;
  std::unique_ptr<HeapFile> heap_;
  std::unique_ptr<ColumnStore> columnar_;
  std::unique_ptr<ZoneMap> zone_map_;
  std::vector<TableIndex> indexes_;
  std::vector<char> encode_buf_;
};

}  // namespace segdiff

#endif  // SEGDIFF_STORAGE_TABLE_H_
