// Write-ahead log: redo records framed with CRC32C, fsynced in group-
// commit batches, replayed by Database::Open after a crash.
//
// One WAL file sits beside each database file (`<path>.wal`), written
// through the same Vfs so fault injection covers it. Layout:
//
//   header (32 B): magic "SDWL" | version u32 | start_lsn u64 |
//                  reserved u64 | crc32c(header[0,24)) | pad
//   frame:         lsn u64 | payload_len u32 | type u8 | payload |
//                  crc32c(frame[0, 13+payload_len))
//
// LSNs are assigned by a monotone counter that never runs backwards
// over the life of a store; within one WAL generation (between Resets)
// frame LSNs are consecutive from start_lsn, which the scanner uses as
// a validity check. The scan stops at the first short, gapped, or
// CRC-failed frame: a torn tail is the normal shape of a crash, never
// an error (frames past the tear were never acknowledged).
//
// Record kinds:
//   kObservation  one FeatureSink::AppendObservation(t, v) — the
//                 logical redo unit for engine stores (SegDiff/Exh),
//                 replayed by re-running the ingest pipeline.
//   kFlush        a FlushPending boundary, so replay reproduces the
//                 segment-flush state byte-identically.
//   kRowAppend    one Table::Insert for raw (non-engine) databases:
//                 table name, the row's ordinal, encoded row bytes.
//                 The ordinal makes replay idempotent — a row already
//                 present (ordinal < row_count) is skipped.
//   kUndoImage    the page's PRIOR on-disk content, logged before the
//                 buffer pool steals (writes back) a dirty page between
//                 checkpoints. Recovery applies the OLDEST image of
//                 each page first, rolling stolen pages back to their
//                 checkpoint-era content so logical replay starts from
//                 an exact checkpoint state — required when a crash
//                 preserves unsynced writes (OS kill, power loss after
//                 the page cache drained).
//   kPutMeta /    catalog meta-blob updates (engine ingest state), so
//   kEraseMeta    recovery restores blobs written after the checkpoint.
//
// Durability contract: Append* buffers the record; it becomes durable
// at the next group-commit flush (every `group_commit_ms`, or
// immediately when the window is 0), or when Sync()/EnsureDurable()
// forces one. A failed flush is sticky: once the log cannot be made
// durable, every later append is refused rather than falsely
// acknowledged.
//
// Checkpoints call Reset(applied_lsn + 1): truncate to an empty
// generation whose start_lsn records that everything below it is in
// the data file.

#ifndef SEGDIFF_STORAGE_WAL_H_
#define SEGDIFF_STORAGE_WAL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/vfs.h"

namespace segdiff {

inline constexpr size_t kWalHeaderSize = 32;
inline constexpr size_t kWalFrameHeaderSize = 13;  ///< lsn + len + type
inline constexpr size_t kWalFrameOverhead = kWalFrameHeaderSize + 4;
inline constexpr uint32_t kWalMagic = 0x4C574453u;  ///< "SDWL"
inline constexpr uint32_t kWalVersion = 1;
/// Upper bound on a single frame payload (sanity check while scanning;
/// the largest real payload is a page image plus a small header).
inline constexpr uint32_t kWalMaxPayload = 1u << 24;

enum class WalRecordType : uint8_t {
  kObservation = 1,
  kFlush = 2,
  kRowAppend = 3,
  kUndoImage = 4,
  kPutMeta = 5,
  kEraseMeta = 6,
};

/// One recovered redo record.
struct WalRecord {
  uint64_t lsn = 0;
  WalRecordType type = WalRecordType::kObservation;
  std::string payload;
};

/// Decoded payload forms (see the Append* builders in wal.cc).
struct WalObservation {
  double t = 0.0;
  double v = 0.0;
};
struct WalRowAppend {
  std::string table;
  uint64_t ordinal = 0;  ///< row_count at append time
  std::string row;       ///< encoded row bytes
};
struct WalUndoImage {
  uint64_t page_id = 0;
  std::string image;  ///< kPageCapacity bytes (trailer is the pager's)
};
struct WalMetaUpdate {
  std::string name;
  std::string blob;
};

Result<WalObservation> DecodeWalObservation(const std::string& payload);
Result<WalRowAppend> DecodeWalRowAppend(const std::string& payload);
Result<WalUndoImage> DecodeWalUndoImage(const std::string& payload);
Result<WalMetaUpdate> DecodeWalPutMeta(const std::string& payload);
Result<std::string> DecodeWalEraseMeta(const std::string& payload);

struct WalOptions {
  /// Group-commit window in milliseconds. 0 flushes (write + fsync)
  /// synchronously inside every append; > 0 batches appends and a
  /// background flusher makes them durable at most this much later.
  int64_t group_commit_ms = 1;
};

/// Durability-side counters (bench_ingest's fsyncs-per-append metric).
struct WalStats {
  uint64_t appends = 0;        ///< records appended
  uint64_t fsyncs = 0;         ///< file Sync() calls issued
  uint64_t bytes_written = 0;  ///< frame bytes written to the file
  uint64_t group_commits = 0;  ///< flushes that covered >= 2 records
};

/// Read-only health report for one WAL file (verify --scrub).
struct WalScrubReport {
  bool exists = false;
  bool corrupt = false;  ///< unusable header — recovery would refuse it
  bool torn_tail = false;  ///< trailing bytes past the last valid frame
  uint64_t torn_tail_bytes = 0;  ///< how many trailing bytes are torn
  uint64_t bytes = 0;
  uint64_t frames = 0;     ///< valid frames
  uint64_t start_lsn = 0;  ///< header start LSN
  uint64_t last_lsn = 0;   ///< last valid frame LSN (0 if none)
  std::string message;     ///< diagnosis when corrupt or torn

  bool clean() const { return !corrupt; }
};

class Wal {
 public:
  /// The WAL file that belongs to the database at `db_path`.
  static std::string PathFor(const std::string& db_path) {
    return db_path + ".wal";
  }

  /// Opens the log beside `db_path` without creating it: a failed
  /// Database::Open must stay side-effect-free, so the file is created
  /// lazily on the first flush. An existing file is scanned; frames
  /// with lsn >= `min_next_lsn` (the pager's applied LSN + 1) become
  /// the recovered tail, frames below it are already in the data file
  /// and are skipped. A torn tail is trimmed (the byte count is
  /// surfaced via trimmed_tail_bytes(), never silently discarded); a
  /// corrupt header is a loud Corruption (the log may hold
  /// acknowledged data that cannot be read back).
  static Result<std::unique_ptr<Wal>> Open(Vfs* vfs,
                                           const std::string& db_path,
                                           const WalOptions& options,
                                           uint64_t min_next_lsn);

  ~Wal();
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// The records recovered at Open that still need replay, in LSN
  /// order. Consumed by Database::Open's recovery pass.
  std::vector<WalRecord> TakeRecoveredRecords() {
    return std::move(recovered_);
  }

  // Append one record; returns its LSN (0 when suspended — nothing was
  // logged). Buffered until the next group commit unless the window is
  // 0 (synchronous flush before returning).
  Result<uint64_t> AppendObservation(double t, double v);
  Result<uint64_t> AppendFlushMarker();
  Result<uint64_t> AppendRowAppend(const std::string& table,
                                   uint64_t ordinal, const char* row,
                                   size_t row_len);
  Result<uint64_t> AppendUndoImage(uint64_t page_id, const char* data,
                                   size_t n);
  Result<uint64_t> AppendPutMeta(const std::string& name,
                                 const std::string& blob);
  Result<uint64_t> AppendEraseMeta(const std::string& name);

  /// Forces buffered records to disk (write + fsync). No-op when
  /// everything appended is already durable.
  Status Sync();

  /// Sync(), but skipped when `lsn` is already durable (or 0).
  Status EnsureDurable(uint64_t lsn);

  /// Starts a fresh empty generation after a checkpoint: truncates the
  /// file, stamps a header with `new_start_lsn`, fsyncs. The LSN
  /// counter itself never rewinds.
  Status Reset(uint64_t new_start_lsn);

  /// Final flush + flusher shutdown. Idempotent; the destructor calls
  /// it best-effort.
  Status Close();

  uint64_t last_lsn() const { return buffered_lsn_.load(); }
  uint64_t durable_lsn() const { return durable_lsn_.load(); }
  uint64_t start_lsn() const { return start_lsn_.load(); }
  /// Torn-tail bytes found (and scheduled for trimming) at Open: bytes
  /// past the last valid frame. Those frames were never acknowledged —
  /// trimming them is correct — but the count is reported (stats, scrub)
  /// so a crash's footprint is visible instead of silently vanishing.
  uint64_t trimmed_tail_bytes() const { return trimmed_tail_bytes_; }
  /// Bytes the log occupies (durable tail + buffered records).
  uint64_t SizeBytes() const;
  WalStats stats() const;
  int64_t group_commit_ms() const { return window_ms_; }

  /// Whether Table::Insert should log kRowAppend records. Engine
  /// stores log kObservation instead (the observation is the redo
  /// unit; the rows it fans out into are deterministic), so they turn
  /// row logging off.
  bool logs_rows() const { return logs_rows_; }
  void set_logs_rows(bool v) { logs_rows_ = v; }

  /// RAII append suppressor: while alive, every Append* is a no-op
  /// returning LSN 0. Recovery drains recovered observations through
  /// the normal ingest path under one of these, so replay does not
  /// re-log what the WAL already holds.
  class Suspend {
   public:
    explicit Suspend(Wal* wal) : wal_(wal) {
      if (wal_) wal_->suspend_count_.fetch_add(1);
    }
    ~Suspend() {
      if (wal_) wal_->suspend_count_.fetch_sub(1);
    }
    Suspend(const Suspend&) = delete;
    Suspend& operator=(const Suspend&) = delete;

   private:
    Wal* wal_;
  };

  /// Read-only scan of the WAL beside `db_path` (verify --scrub).
  static WalScrubReport Scrub(Vfs* vfs, const std::string& db_path);

 private:
  Wal(Vfs* vfs, std::string path, const WalOptions& options);

  /// `even_suspended` bypasses Suspend: physical undo images must be
  /// logged even while replay suppresses logical re-logging.
  Status AppendRecord(WalRecordType type, const char* payload, size_t n,
                      uint64_t* lsn, bool even_suspended = false);
  /// Writes pending bytes + fsyncs; sticky on failure. Requires mu_
  /// (held by `lock`), but releases it for the duration of the file
  /// write and fsync so concurrent Append* calls buffer into the next
  /// batch instead of stalling behind the sync; `flushing_` serializes
  /// overlapping flushers and keeps the tail single-writer.
  Status FlushLocked(std::unique_lock<std::mutex>& lock);
  /// Opens/creates the file and settles header/truncation. Requires mu_.
  Status EnsureFileLocked();
  void FlusherLoop();

  Vfs* vfs_;
  const std::string path_;
  const int64_t window_ms_;
  bool logs_rows_ = true;
  std::atomic<int> suspend_count_{0};

  mutable std::mutex mu_;
  std::unique_ptr<RandomAccessFile> file_;  ///< null until first flush
  bool file_fresh_ = true;   ///< header must be (re)written on flush
  bool need_dir_sync_ = false;
  uint64_t truncate_to_ = 0;  ///< trim torn tail before first write
  bool need_truncate_ = false;
  uint64_t trimmed_tail_bytes_ = 0;  ///< torn bytes found at Open
  uint64_t tail_offset_ = 0;  ///< file offset past the last flushed frame
  std::string pending_;       ///< encoded frames awaiting flush
  uint64_t pending_records_ = 0;
  bool flushing_ = false;      ///< a flusher holds the file tail (mu_ dropped)
  uint64_t inflight_bytes_ = 0;  ///< batch bytes being flushed right now
  uint64_t next_lsn_ = 1;
  std::atomic<uint64_t> start_lsn_{1};
  std::atomic<uint64_t> buffered_lsn_{0};  ///< last assigned LSN
  std::atomic<uint64_t> durable_lsn_{0};   ///< last fsynced LSN
  Status flush_error_;  ///< sticky: set by the first failed flush
  WalStats stats_;

  std::vector<WalRecord> recovered_;

  std::condition_variable cv_;
  bool stop_flusher_ = false;
  std::thread flusher_;
};

}  // namespace segdiff

#endif  // SEGDIFF_STORAGE_WAL_H_
