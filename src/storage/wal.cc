#include "storage/wal.h"

#include <chrono>
#include <cstring>
#include <utility>

#include "common/coding.h"
#include "common/crc32c.h"

namespace segdiff {

namespace {

void EncodeWalHeader(char* buf, uint64_t start_lsn) {
  std::memset(buf, 0, kWalHeaderSize);
  EncodeFixed32(buf, kWalMagic);
  EncodeFixed32(buf + 4, kWalVersion);
  EncodeFixed64(buf + 8, start_lsn);
  EncodeFixed64(buf + 16, 0);  // reserved
  EncodeFixed32(buf + 24, Crc32c(buf, 24));
}

/// Everything a forward scan of a WAL file learns.
struct WalScanResult {
  bool exists = false;
  bool header_ok = false;
  /// File too short to hold a header: a crash tore the creation; safe
  /// to treat as empty (nothing was ever acknowledged from it).
  bool short_header = false;
  uint64_t start_lsn = 0;
  uint64_t file_size = 0;
  uint64_t valid_end = 0;  ///< offset just past the last valid frame
  uint64_t last_lsn = 0;   ///< 0 when no valid frames
  std::vector<WalRecord> records;
  std::string error;  ///< header diagnosis when !header_ok
};

Status ScanWalFile(Vfs* vfs, const std::string& path, WalScanResult* out) {
  *out = WalScanResult();
  if (!vfs->FileExists(path)) return Status::OK();
  out->exists = true;
  SEGDIFF_ASSIGN_OR_RETURN(auto file, vfs->OpenFile(path, /*create=*/false));
  SEGDIFF_ASSIGN_OR_RETURN(uint64_t size, file->Size());
  out->file_size = size;
  if (size < kWalHeaderSize) {
    out->short_header = true;
    out->error = "WAL shorter than its header (torn creation)";
    return Status::OK();
  }
  std::string data(size, '\0');
  SEGDIFF_RETURN_IF_ERROR(file->Read(0, size, data.data()));

  if (DecodeFixed32(data.data()) != kWalMagic) {
    out->error = "bad WAL magic";
    return Status::OK();
  }
  uint32_t version = DecodeFixed32(data.data() + 4);
  if (version != kWalVersion) {
    out->error = "unsupported WAL version " + std::to_string(version);
    return Status::OK();
  }
  if (DecodeFixed32(data.data() + 24) != Crc32c(data.data(), 24)) {
    out->error = "WAL header checksum mismatch";
    return Status::OK();
  }
  out->header_ok = true;
  out->start_lsn = DecodeFixed64(data.data() + 8);
  out->valid_end = kWalHeaderSize;

  // Frames are consecutive from start_lsn within a generation; any
  // break (short frame, gap, oversized length, bad CRC) is the torn
  // tail — stop there.
  uint64_t expected_lsn = out->start_lsn;
  uint64_t off = kWalHeaderSize;
  while (off + kWalFrameOverhead <= size) {
    const char* frame = data.data() + off;
    uint64_t lsn = DecodeFixed64(frame);
    uint32_t len = DecodeFixed32(frame + 8);
    if (lsn != expected_lsn || len > kWalMaxPayload) break;
    uint64_t frame_size = kWalFrameOverhead + len;
    if (off + frame_size > size) break;
    uint32_t crc = DecodeFixed32(frame + kWalFrameHeaderSize + len);
    if (crc != Crc32c(frame, kWalFrameHeaderSize + len)) break;
    uint8_t raw_type = static_cast<uint8_t>(frame[12]);
    if (raw_type < static_cast<uint8_t>(WalRecordType::kObservation) ||
        raw_type > static_cast<uint8_t>(WalRecordType::kEraseMeta)) {
      break;
    }
    WalRecord rec;
    rec.lsn = lsn;
    rec.type = static_cast<WalRecordType>(raw_type);
    rec.payload.assign(frame + kWalFrameHeaderSize, len);
    out->records.push_back(std::move(rec));
    out->last_lsn = lsn;
    off += frame_size;
    out->valid_end = off;
    ++expected_lsn;
  }
  return Status::OK();
}

}  // namespace

Result<WalObservation> DecodeWalObservation(const std::string& payload) {
  if (payload.size() != 16) {
    return Status::Corruption("WAL observation record has bad size");
  }
  WalObservation obs;
  obs.t = DecodeDouble(payload.data());
  obs.v = DecodeDouble(payload.data() + 8);
  return obs;
}

Result<WalRowAppend> DecodeWalRowAppend(const std::string& payload) {
  if (payload.size() < 10) {
    return Status::Corruption("WAL row-append record truncated");
  }
  uint16_t name_len = DecodeFixed16(payload.data());
  if (payload.size() < 10u + name_len) {
    return Status::Corruption("WAL row-append record truncated");
  }
  WalRowAppend row;
  row.table.assign(payload.data() + 2, name_len);
  row.ordinal = DecodeFixed64(payload.data() + 2 + name_len);
  row.row.assign(payload.data() + 10 + name_len,
                 payload.size() - 10 - name_len);
  return row;
}

Result<WalUndoImage> DecodeWalUndoImage(const std::string& payload) {
  if (payload.size() < 8) {
    return Status::Corruption("WAL undo-image record truncated");
  }
  WalUndoImage image;
  image.page_id = DecodeFixed64(payload.data());
  image.image.assign(payload.data() + 8, payload.size() - 8);
  return image;
}

Result<WalMetaUpdate> DecodeWalPutMeta(const std::string& payload) {
  if (payload.size() < 2) {
    return Status::Corruption("WAL put-meta record truncated");
  }
  uint16_t name_len = DecodeFixed16(payload.data());
  if (payload.size() < 2u + name_len) {
    return Status::Corruption("WAL put-meta record truncated");
  }
  WalMetaUpdate update;
  update.name.assign(payload.data() + 2, name_len);
  update.blob.assign(payload.data() + 2 + name_len,
                     payload.size() - 2 - name_len);
  return update;
}

Result<std::string> DecodeWalEraseMeta(const std::string& payload) {
  if (payload.size() < 2) {
    return Status::Corruption("WAL erase-meta record truncated");
  }
  uint16_t name_len = DecodeFixed16(payload.data());
  if (payload.size() != 2u + name_len) {
    return Status::Corruption("WAL erase-meta record truncated");
  }
  return std::string(payload.data() + 2, name_len);
}

Wal::Wal(Vfs* vfs, std::string path, const WalOptions& options)
    : vfs_(vfs), path_(std::move(path)), window_ms_(options.group_commit_ms) {}

Result<std::unique_ptr<Wal>> Wal::Open(Vfs* vfs, const std::string& db_path,
                                       const WalOptions& options,
                                       uint64_t min_next_lsn) {
  if (vfs == nullptr) vfs = Vfs::Default();
  auto wal = std::unique_ptr<Wal>(new Wal(vfs, PathFor(db_path), options));

  WalScanResult scan;
  SEGDIFF_RETURN_IF_ERROR(ScanWalFile(vfs, wal->path_, &scan));
  if (scan.exists && !scan.header_ok && !scan.short_header) {
    // The log may hold acknowledged records we cannot read back;
    // silently dropping it would be silent data loss.
    return Status::Corruption(
        "WAL " + wal->path_ + " is unreadable (" + scan.error +
        "); if the log is known stale, remove the file and reopen");
  }

  uint64_t next = min_next_lsn > 0 ? min_next_lsn : 1;
  if (scan.exists && scan.header_ok && min_next_lsn > 1 &&
      scan.start_lsn > min_next_lsn) {
    // A non-fresh data file (it has applied LSNs) paired with a log
    // whose generation starts beyond applied + 1: earlier generations
    // covered LSNs this data file never applied — a mismatched or
    // foreign sidecar. Adopting it would silently assume the records
    // in (applied, start_lsn) reached the data file; refuse loudly,
    // like the unreadable-header case.
    return Status::Corruption(
        "WAL " + wal->path_ + " starts at LSN " +
        std::to_string(scan.start_lsn) +
        " but the data file has only applied through LSN " +
        std::to_string(min_next_lsn - 1) +
        " (mismatched or foreign log); if the log is known stale, remove "
        "the file and reopen");
  }
  if (scan.exists && scan.header_ok) {
    // Keep the handle; the torn tail (if any) is trimmed before the
    // first flush write — Open itself must not modify the file.
    SEGDIFF_ASSIGN_OR_RETURN(wal->file_,
                             vfs->OpenFile(wal->path_, /*create=*/false));
    wal->file_ = WithRetry(std::move(wal->file_));
    wal->file_fresh_ = false;
    wal->tail_offset_ = scan.valid_end;
    if (scan.valid_end < scan.file_size) {
      wal->need_truncate_ = true;
      wal->truncate_to_ = scan.valid_end;
      // Never trimmed silently: the count surfaces in WalInfo/stats so
      // an operator can see that a crash tore off unacknowledged frames.
      wal->trimmed_tail_bytes_ = scan.file_size - scan.valid_end;
    }
    wal->start_lsn_.store(scan.start_lsn);
    if (scan.last_lsn + 1 > next) next = scan.last_lsn + 1;
    if (scan.start_lsn > next) next = scan.start_lsn;
    for (auto& rec : scan.records) {
      if (rec.lsn >= min_next_lsn) wal->recovered_.push_back(std::move(rec));
    }
  } else {
    // Missing (or torn-creation) file: created lazily on first flush.
    wal->start_lsn_.store(next);
    if (scan.exists) {
      wal->file_fresh_ = true;
      wal->need_truncate_ = true;
      wal->truncate_to_ = 0;
      wal->trimmed_tail_bytes_ = scan.file_size;  // torn creation
    }
  }
  wal->next_lsn_ = next;
  wal->buffered_lsn_.store(next - 1);
  wal->durable_lsn_.store(next - 1);

  if (wal->window_ms_ > 0) {
    wal->flusher_ = std::thread([w = wal.get()] { w->FlusherLoop(); });
  }
  return wal;
}

Wal::~Wal() { Close(); }

Status Wal::Close() {
  if (flusher_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_flusher_ = true;
    }
    cv_.notify_all();
    flusher_.join();
  }
  std::unique_lock<std::mutex> lock(mu_);
  while (flushing_) cv_.wait(lock);
  if (pending_.empty()) return flush_error_;
  return FlushLocked(lock);
}

void Wal::FlusherLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_flusher_) {
    cv_.wait_for(lock, std::chrono::milliseconds(window_ms_));
    if (stop_flusher_) break;
    if (!pending_.empty() && flush_error_.ok()) {
      FlushLocked(lock);  // sticky error is surfaced to the next append
    }
  }
}

Status Wal::EnsureFileLocked() {
  if (file_ == nullptr) {
    SEGDIFF_ASSIGN_OR_RETURN(file_, vfs_->OpenFile(path_, /*create=*/true));
    file_ = WithRetry(std::move(file_));
    need_dir_sync_ = true;
  }
  if (need_truncate_) {
    SEGDIFF_RETURN_IF_ERROR(file_->Truncate(truncate_to_));
    need_truncate_ = false;
    if (truncate_to_ < kWalHeaderSize) file_fresh_ = true;
  }
  if (file_fresh_) {
    char header[kWalHeaderSize];
    EncodeWalHeader(header, start_lsn_.load());
    SEGDIFF_RETURN_IF_ERROR(file_->Write(0, header, kWalHeaderSize));
    tail_offset_ = kWalHeaderSize;
    file_fresh_ = false;
  }
  return Status::OK();
}

Status Wal::FlushLocked(std::unique_lock<std::mutex>& lock) {
  // One flusher owns the file tail at a time. Waiting also covers the
  // common Sync/EnsureDurable case where the in-flight batch holds the
  // caller's LSN: once it publishes, the early return below fires.
  while (flushing_) cv_.wait(lock);
  if (flush_error_.ok() && pending_.empty() &&
      durable_lsn_.load() == buffered_lsn_.load()) {
    return Status::OK();
  }
  // A prior failure does not bar a foreground retry: the unflushed
  // frames are still in pending_ and tail_offset_ was not advanced, so
  // re-writing and re-syncing the same bytes (overwriting any partial
  // tail the failure left) restores durability without ever having
  // falsely acknowledged anything — every failed flush was reported.
  Status st = EnsureFileLocked();
  std::string batch;
  uint64_t batch_records = 0;
  uint64_t batch_last_lsn = 0;
  if (st.ok()) {
    // Swap the batch out and do the write + fsync without the mutex:
    // concurrent appends buffer into the (now empty) pending_ and are
    // picked up by the next group commit instead of blocking for the
    // full sync.
    batch.swap(pending_);
    batch_records = pending_records_;
    pending_records_ = 0;
    batch_last_lsn = buffered_lsn_.load();
    const uint64_t write_off = tail_offset_;
    const bool dir_sync = need_dir_sync_;
    flushing_ = true;
    inflight_bytes_ = batch.size();
    lock.unlock();
    if (!batch.empty()) {
      st = file_->Write(write_off, batch.data(), batch.size());
    }
    if (st.ok()) st = file_->Sync();
    if (st.ok() && dir_sync) st = vfs_->SyncDir(path_);
    lock.lock();
    flushing_ = false;
    inflight_bytes_ = 0;
    if (st.ok() && dir_sync) need_dir_sync_ = false;
  }
  if (!st.ok()) {
    // Put the unflushed batch back in front of whatever was appended
    // while the mutex was dropped, so a foreground retry re-writes
    // exactly the same bytes at the same offset.
    if (!batch.empty()) pending_.insert(0, batch);
    pending_records_ += batch_records;
    // Sticky until a flush succeeds: while durability is broken no new
    // append may be buffered as if it could still become durable (the
    // background flusher never retries; only explicit Sync/EnsureDurable
    // calls do, and they surface every failure to the caller).
    // WithMessage keeps the error class: a no-space flush failure must
    // reach Database as no-space so it can flip into degraded mode
    // instead of treating a full disk as a permanently broken device.
    flush_error_ = st.WithMessage("WAL flush failed (" + path_ +
                                  "): " + st.ToString());
    cv_.notify_all();
    return flush_error_;
  }
  flush_error_ = Status::OK();
  ++stats_.fsyncs;
  if (batch_records >= 2) ++stats_.group_commits;
  stats_.bytes_written += batch.size();
  tail_offset_ += batch.size();
  durable_lsn_.store(batch_last_lsn);
  cv_.notify_all();
  return Status::OK();
}

Status Wal::AppendRecord(WalRecordType type, const char* payload, size_t n,
                         uint64_t* lsn, bool even_suspended) {
  *lsn = 0;
  if (!even_suspended && suspend_count_.load() > 0) return Status::OK();
  std::unique_lock<std::mutex> lock(mu_);
  if (!flush_error_.ok()) return flush_error_;
  uint64_t assigned = next_lsn_++;
  size_t base = pending_.size();
  pending_.resize(base + kWalFrameOverhead + n);
  char* frame = pending_.data() + base;
  EncodeFixed64(frame, assigned);
  EncodeFixed32(frame + 8, static_cast<uint32_t>(n));
  frame[12] = static_cast<char>(type);
  if (n > 0) std::memcpy(frame + kWalFrameHeaderSize, payload, n);
  EncodeFixed32(frame + kWalFrameHeaderSize + n,
                Crc32c(frame, kWalFrameHeaderSize + n));
  buffered_lsn_.store(assigned);
  ++stats_.appends;
  ++pending_records_;
  if (window_ms_ <= 0) {
    Status st = FlushLocked(lock);
    if (!st.ok()) return st;
  }
  *lsn = assigned;
  return Status::OK();
}

Result<uint64_t> Wal::AppendObservation(double t, double v) {
  char payload[16];
  EncodeDouble(payload, t);
  EncodeDouble(payload + 8, v);
  uint64_t lsn = 0;
  SEGDIFF_RETURN_IF_ERROR(AppendRecord(WalRecordType::kObservation, payload,
                                       sizeof(payload), &lsn));
  return lsn;
}

Result<uint64_t> Wal::AppendFlushMarker() {
  uint64_t lsn = 0;
  SEGDIFF_RETURN_IF_ERROR(
      AppendRecord(WalRecordType::kFlush, nullptr, 0, &lsn));
  return lsn;
}

Result<uint64_t> Wal::AppendRowAppend(const std::string& table,
                                      uint64_t ordinal, const char* row,
                                      size_t row_len) {
  if (table.size() > UINT16_MAX) {
    return Status::InvalidArgument("table name too long for WAL record");
  }
  std::string payload(10 + table.size() + row_len, '\0');
  EncodeFixed16(payload.data(), static_cast<uint16_t>(table.size()));
  std::memcpy(payload.data() + 2, table.data(), table.size());
  EncodeFixed64(payload.data() + 2 + table.size(), ordinal);
  if (row_len > 0) {
    std::memcpy(payload.data() + 10 + table.size(), row, row_len);
  }
  uint64_t lsn = 0;
  SEGDIFF_RETURN_IF_ERROR(AppendRecord(WalRecordType::kRowAppend,
                                       payload.data(), payload.size(), &lsn));
  return lsn;
}

Result<uint64_t> Wal::AppendUndoImage(uint64_t page_id, const char* data,
                                      size_t n) {
  std::string payload(8 + n, '\0');
  EncodeFixed64(payload.data(), page_id);
  std::memcpy(payload.data() + 8, data, n);
  uint64_t lsn = 0;
  // Physical undo must be logged even while replay suspends logical
  // logging: a steal during the recovery drain overwrites on-disk bytes
  // exactly like any other steal.
  SEGDIFF_RETURN_IF_ERROR(AppendRecord(WalRecordType::kUndoImage,
                                       payload.data(), payload.size(), &lsn,
                                       /*even_suspended=*/true));
  return lsn;
}

Result<uint64_t> Wal::AppendPutMeta(const std::string& name,
                                    const std::string& blob) {
  if (name.size() > UINT16_MAX) {
    return Status::InvalidArgument("meta name too long for WAL record");
  }
  std::string payload(2 + name.size() + blob.size(), '\0');
  EncodeFixed16(payload.data(), static_cast<uint16_t>(name.size()));
  std::memcpy(payload.data() + 2, name.data(), name.size());
  std::memcpy(payload.data() + 2 + name.size(), blob.data(), blob.size());
  uint64_t lsn = 0;
  SEGDIFF_RETURN_IF_ERROR(AppendRecord(WalRecordType::kPutMeta,
                                       payload.data(), payload.size(), &lsn));
  return lsn;
}

Result<uint64_t> Wal::AppendEraseMeta(const std::string& name) {
  if (name.size() > UINT16_MAX) {
    return Status::InvalidArgument("meta name too long for WAL record");
  }
  std::string payload(2 + name.size(), '\0');
  EncodeFixed16(payload.data(), static_cast<uint16_t>(name.size()));
  std::memcpy(payload.data() + 2, name.data(), name.size());
  uint64_t lsn = 0;
  SEGDIFF_RETURN_IF_ERROR(AppendRecord(WalRecordType::kEraseMeta,
                                       payload.data(), payload.size(), &lsn));
  return lsn;
}

Status Wal::Sync() {
  std::unique_lock<std::mutex> lock(mu_);
  return FlushLocked(lock);
}

Status Wal::EnsureDurable(uint64_t lsn) {
  if (lsn == 0 || lsn <= durable_lsn_.load()) return Status::OK();
  return Sync();
}

Status Wal::Reset(uint64_t new_start_lsn) {
  std::unique_lock<std::mutex> lock(mu_);
  // An in-flight group commit owns the file tail; truncating under it
  // would corrupt the log.
  while (flushing_) cv_.wait(lock);
  if (!flush_error_.ok()) return flush_error_;
  if (!pending_.empty()) {
    return Status::Internal("WAL reset with unflushed records");
  }
  start_lsn_.store(new_start_lsn);
  if (new_start_lsn > next_lsn_) next_lsn_ = new_start_lsn;
  if (file_ == nullptr) {
    // Never materialized: nothing on disk to truncate.
    file_fresh_ = true;
    return Status::OK();
  }
  Status st = file_->Truncate(0);
  if (st.ok()) {
    char header[kWalHeaderSize];
    EncodeWalHeader(header, new_start_lsn);
    st = file_->Write(0, header, kWalHeaderSize);
  }
  if (st.ok()) st = file_->Sync();
  if (!st.ok()) {
    flush_error_ = st.WithMessage("WAL reset failed (" + path_ +
                                  "): " + st.ToString());
    return flush_error_;
  }
  ++stats_.fsyncs;
  need_truncate_ = false;
  file_fresh_ = false;
  tail_offset_ = kWalHeaderSize;
  return Status::OK();
}

uint64_t Wal::SizeBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr && pending_.empty() && inflight_bytes_ == 0) return 0;
  uint64_t base = file_ == nullptr ? kWalHeaderSize : tail_offset_;
  // An in-flight batch sits in neither tail_offset_ nor pending_.
  return base + inflight_bytes_ + pending_.size();
}

WalStats Wal::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

WalScrubReport Wal::Scrub(Vfs* vfs, const std::string& db_path) {
  if (vfs == nullptr) vfs = Vfs::Default();
  WalScrubReport report;
  WalScanResult scan;
  Status st = ScanWalFile(vfs, PathFor(db_path), &scan);
  if (!st.ok()) {
    report.exists = true;
    report.corrupt = true;
    report.message = st.ToString();
    return report;
  }
  report.exists = scan.exists;
  if (!scan.exists) return report;
  report.bytes = scan.file_size;
  if (scan.short_header) {
    // Nothing acknowledged can live in a header-less file; recovery
    // treats it as empty.
    report.torn_tail = true;
    report.torn_tail_bytes = scan.file_size;
    report.message = scan.error;
    return report;
  }
  if (!scan.header_ok) {
    report.corrupt = true;
    report.message = scan.error;
    return report;
  }
  report.frames = scan.records.size();
  report.start_lsn = scan.start_lsn;
  report.last_lsn = scan.last_lsn;
  if (scan.valid_end < scan.file_size) {
    report.torn_tail = true;
    report.torn_tail_bytes = scan.file_size - scan.valid_end;
    report.message =
        "torn tail: " + std::to_string(report.torn_tail_bytes) +
        " trailing bytes past the last valid frame (trimmed on next open)";
  }
  return report;
}

}  // namespace segdiff
