// FaultInjectionVfs: a Vfs wrapper that simulates storage failures and
// crashes, for the crash-recovery harness (tests/fault_injection_test.cc)
// and for reproducing reported corruption.
//
// Fault model (deterministic, schedule set by the test):
//   - Nth-operation failures: FailAfterWrites/Reads/Syncs(n) make the
//     (n+1)th subsequent operation of that kind — and every one after
//     it — return an injected IOError, like a device that went away.
//   - Torn writes: SetTornWrite(offset, keep) makes the next write
//     covering file offset `offset` persist only its first `keep` bytes
//     and report success — a torn page, detectable only by checksum.
//   - Crash(): reverts every file to its state at the last successful
//     Sync (unsynced writes are lost; files whose parent directory was
//     never synced after creation disappear entirely) and fails all
//     further IO until Reset(). Destroy store objects after Crash() —
//     their best-effort close-time writes fail harmlessly — then Reset()
//     and reopen to observe what a real power cut would have left.
//
// Counters record every operation that reached the wrapper, so tests can
// both assert IO behaviour ("the fix added exactly one directory sync")
// and enumerate fault points for exhaustive crash matrices.
//
// All methods are thread-safe. The per-operation hot path (counters,
// countdown faults, crashed flag) is lock-free so a parallel scan's
// worker threads do not serialize on the wrapper, and the Nth-operation
// countdowns decrement with a CAS loop so exactly one operation observes
// the 0 -> fail transition no matter how many threads race. The mutex
// only guards cold multi-field state (file snapshots, torn writes).

#ifndef SEGDIFF_STORAGE_FAULT_VFS_H_
#define SEGDIFF_STORAGE_FAULT_VFS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/vfs.h"

namespace segdiff {

class FaultInjectionVfs : public Vfs {
 public:
  struct Counters {
    uint64_t reads = 0;
    uint64_t writes = 0;
    uint64_t syncs = 0;
    uint64_t dir_syncs = 0;
    uint64_t mkdirs = 0;
    uint64_t renames = 0;
    uint64_t removes = 0;
    uint64_t read_bytes = 0;
    uint64_t written_bytes = 0;
    uint64_t injected_failures = 0;
    uint64_t torn_writes = 0;
    uint64_t transient_failures = 0;  ///< injected transient-class errors
    uint64_t no_space_failures = 0;   ///< injected disk-full errors
  };

  /// Wraps `base` (nullptr = the default POSIX Vfs); `base` must outlive
  /// this instance.
  explicit FaultInjectionVfs(Vfs* base = nullptr);
  ~FaultInjectionVfs() override;

  Result<std::unique_ptr<RandomAccessFile>> OpenFile(const std::string& path,
                                                     bool create) override;
  Status SyncDir(const std::string& path) override;
  Status MakeDir(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Status RemoveFile(const std::string& path) override;
  /// Atomic like the base rename. Crash model: the rename is treated as
  /// durable once performed (ordered metadata, journaling-FS style) —
  /// the moved file's synced snapshot travels to the new name, so a
  /// later Crash() rolls its *contents* back but never splits one file
  /// into two. FailAfterRenames schedules injected failures, which
  /// leave both names exactly as they were (the atomicity contract).
  Status Rename(const std::string& from, const std::string& to) override;
  Result<std::vector<std::string>> ListDir(const std::string& path) override;
  Status RemoveDir(const std::string& path) override;

  /// The next `n` writes succeed; every write after them fails with an
  /// injected IOError. Negative disables.
  void FailAfterWrites(int64_t n);
  void FailAfterReads(int64_t n);
  void FailAfterSyncs(int64_t n);
  void FailAfterMkdirs(int64_t n);
  void FailAfterRenames(int64_t n);

  /// The next write covering absolute file offset `offset` (in any
  /// file) persists only its first `keep_bytes` bytes, then reports
  /// success. One-shot.
  void SetTornWrite(uint64_t offset, size_t keep_bytes);

  /// The next `n` read/write/sync operations (combined, in arrival
  /// order) each fail with a TRANSIENT-classified IOError, then the
  /// device heals — the deterministic driver for the retry policy in
  /// common/vfs. 0 disables.
  void InjectTransientFailures(int64_t n);

  /// Seeded probabilistic transient faults: each read/write/sync fails
  /// with a transient IOError with probability `per_mille`/1000. The
  /// decision for the k-th operation depends only on (seed, k), so a
  /// given seed reproduces the same fault schedule. 0 disables.
  void SetTransientFaultRate(uint64_t seed, uint32_t per_mille);

  /// Simulated disk capacity: writes may extend files by at most
  /// `bytes` more bytes in total; a write that would grow a file past
  /// the remaining budget fails with a NO-SPACE-classified error and
  /// persists nothing. In-place rewrites of existing bytes stay free,
  /// so checkpoints of already-allocated pages still succeed — the
  /// behaviour of a full disk. Negative disables (the default).
  void SetDiskBudgetBytes(int64_t bytes);

  /// Simulated power cut: every tracked file reverts to its contents at
  /// its last successful Sync(); files created since their directory was
  /// last synced are deleted outright. All subsequent IO through this
  /// Vfs fails until Reset().
  Status Crash();

  /// Clears the crashed flag, all fault schedules, and counters.
  /// Synced-state snapshots are re-seeded from the files' current
  /// contents on their next open.
  void Reset();

  Counters counters() const;

 private:
  friend class FaultFile;

  struct FileState {
    std::string synced;     ///< contents at last successful Sync
    bool synced_valid = false;  ///< snapshot taken (else: unknown/created)
    /// Created through this Vfs and parent directory not yet synced: a
    /// crash deletes the file.
    bool creation_pending_dir_sync = false;
  };

  /// Decrements a countdown fault (CAS loop: exactly one racing
  /// operation takes each remaining slot); true = this operation must
  /// fail. At 0 the countdown is sticky — every caller fails.
  bool ShouldFail(std::atomic<int64_t>* countdown);

  /// True when this operation must fail with a transient error: either
  /// a remaining InjectTransientFailures slot (claimed by CAS, exactly
  /// `n` operations fail) or a seeded-rate hit.
  bool ShouldFailTransient();

  Vfs* base_;
  /// Guards files_ and the torn-write schedule; never taken on the
  /// read/write/sync fast path unless a torn write is armed.
  mutable std::mutex mu_;
  std::atomic<bool> crashed_{false};
  std::atomic<int64_t> fail_writes_after_{-1};
  std::atomic<int64_t> fail_reads_after_{-1};
  std::atomic<int64_t> fail_syncs_after_{-1};
  std::atomic<int64_t> fail_mkdirs_after_{-1};
  std::atomic<int64_t> fail_renames_after_{-1};
  std::atomic<bool> torn_armed_{false};
  uint64_t torn_offset_ = 0;      ///< guarded by mu_
  size_t torn_keep_bytes_ = 0;    ///< guarded by mu_
  /// Transient-fault schedule: a one-shot countdown (CAS-claimed) plus
  /// a seeded per-operation failure rate.
  std::atomic<int64_t> transient_remaining_{0};
  std::atomic<uint64_t> transient_seed_{0};
  std::atomic<uint32_t> transient_per_mille_{0};
  std::atomic<uint64_t> transient_op_seq_{0};
  /// Remaining file-growth budget in bytes; negative = unlimited.
  std::atomic<int64_t> disk_budget_{-1};
  struct AtomicCounters {
    std::atomic<uint64_t> reads{0};
    std::atomic<uint64_t> writes{0};
    std::atomic<uint64_t> syncs{0};
    std::atomic<uint64_t> dir_syncs{0};
    std::atomic<uint64_t> mkdirs{0};
    std::atomic<uint64_t> renames{0};
    std::atomic<uint64_t> removes{0};
    std::atomic<uint64_t> read_bytes{0};
    std::atomic<uint64_t> written_bytes{0};
    std::atomic<uint64_t> injected_failures{0};
    std::atomic<uint64_t> torn_writes{0};
    std::atomic<uint64_t> transient_failures{0};
    std::atomic<uint64_t> no_space_failures{0};
  };
  AtomicCounters counters_;
  std::map<std::string, FileState> files_;  ///< guarded by mu_
};

}  // namespace segdiff

#endif  // SEGDIFF_STORAGE_FAULT_VFS_H_
