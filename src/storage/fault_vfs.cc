#include "storage/fault_vfs.h"

#include <algorithm>
#include <utility>

namespace segdiff {
namespace {

std::string DirOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) {
    return ".";
  }
  if (slash == 0) {
    return "/";
  }
  return path.substr(0, slash);
}

Status Injected(const char* what) {
  return Status::IOError(std::string("injected fault: ") + what);
}

Status Crashed() {
  return Status::IOError("simulated crash: file system unavailable");
}

/// SplitMix64: a tiny, high-quality mixer — the per-operation fault
/// decision must depend only on (seed, operation index) so a schedule
/// replays identically across runs and thread interleavings of the
/// same operation sequence.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

/// Wraps one open file; all fault decisions live in the owning Vfs so a
/// schedule spans every file of a store. Namespace-scoped (not
/// anonymous) to match the friend declaration in fault_vfs.h.
class FaultFile : public RandomAccessFile {
 public:
  FaultFile(FaultInjectionVfs* vfs, std::string path,
            std::unique_ptr<RandomAccessFile> base)
      : vfs_(vfs), path_(std::move(path)), base_(std::move(base)) {}

  Status Read(uint64_t offset, size_t n, char* buf) override;
  Status Write(uint64_t offset, const char* buf, size_t n) override;
  Status Truncate(uint64_t size) override { return base_->Truncate(size); }
  Status Sync() override;
  Result<uint64_t> Size() override { return base_->Size(); }

 private:
  FaultInjectionVfs* vfs_;
  std::string path_;
  std::unique_ptr<RandomAccessFile> base_;
};

FaultInjectionVfs::FaultInjectionVfs(Vfs* base)
    : base_(base != nullptr ? base : Vfs::Default()) {}

FaultInjectionVfs::~FaultInjectionVfs() = default;

bool FaultInjectionVfs::ShouldFail(std::atomic<int64_t>* countdown) {
  int64_t remaining = countdown->load(std::memory_order_relaxed);
  for (;;) {
    if (remaining < 0) {
      return false;
    }
    if (remaining == 0) {
      // Sticky: the device stays failed until Reset(). Not decremented,
      // so every subsequent caller lands here too.
      counters_.injected_failures.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    // Claim one of the remaining successful slots. On a lost race,
    // `remaining` reloads and we retry, so exactly `n` operations
    // succeed regardless of thread interleaving.
    if (countdown->compare_exchange_weak(remaining, remaining - 1,
                                         std::memory_order_relaxed)) {
      return false;
    }
  }
}

Status FaultFile::Read(uint64_t offset, size_t n, char* buf) {
  if (vfs_->crashed_.load(std::memory_order_acquire)) {
    return Crashed();
  }
  if (vfs_->ShouldFail(&vfs_->fail_reads_after_)) {
    return Injected("read failure");
  }
  if (vfs_->ShouldFailTransient()) {
    return Status::TransientIOError("injected fault: transient read failure");
  }
  vfs_->counters_.reads.fetch_add(1, std::memory_order_relaxed);
  vfs_->counters_.read_bytes.fetch_add(n, std::memory_order_relaxed);
  return base_->Read(offset, n, buf);
}

Status FaultFile::Write(uint64_t offset, const char* buf, size_t n) {
  if (vfs_->crashed_.load(std::memory_order_acquire)) {
    return Crashed();
  }
  if (vfs_->ShouldFail(&vfs_->fail_writes_after_)) {
    return Injected("write failure");
  }
  if (vfs_->ShouldFailTransient()) {
    return Status::TransientIOError("injected fault: transient write failure");
  }
  if (vfs_->disk_budget_.load(std::memory_order_relaxed) >= 0) {
    // Growth-based accounting: only bytes that extend the file consume
    // budget, so rewriting an already-allocated page stays free — a
    // full disk still accepts in-place page writes and fsyncs, which is
    // exactly what lets a degraded store keep its acknowledged data
    // durable.
    auto size = base_->Size();
    if (!size.ok()) {
      return size.status();
    }
    const int64_t growth =
        offset + n > *size ? static_cast<int64_t>(offset + n - *size) : 0;
    if (growth > 0) {
      int64_t budget = vfs_->disk_budget_.load(std::memory_order_relaxed);
      for (;;) {
        if (budget < 0) {
          break;  // raced with a disabling SetDiskBudgetBytes
        }
        if (budget < growth) {
          vfs_->counters_.no_space_failures.fetch_add(
              1, std::memory_order_relaxed);
          return Status::NoSpace("injected fault: disk full (" +
                                 std::to_string(growth) + " bytes wanted, " +
                                 std::to_string(budget) + " left)");
        }
        if (vfs_->disk_budget_.compare_exchange_weak(
                budget, budget - growth, std::memory_order_relaxed)) {
          break;
        }
      }
    }
  }
  vfs_->counters_.writes.fetch_add(1, std::memory_order_relaxed);
  vfs_->counters_.written_bytes.fetch_add(n, std::memory_order_relaxed);
  size_t write_n = n;
  if (vfs_->torn_armed_.load(std::memory_order_acquire)) {
    // Cold path: only an armed torn write pays for the lock (the
    // offset/keep pair is multi-field state the flag alone can't carry).
    std::lock_guard<std::mutex> lock(vfs_->mu_);
    if (vfs_->torn_armed_.load(std::memory_order_relaxed) &&
        offset <= vfs_->torn_offset_ && vfs_->torn_offset_ < offset + n) {
      // Tear: persist only a prefix, then report success — exactly what
      // a power cut mid-sector-train leaves behind.
      write_n = std::min(n, vfs_->torn_keep_bytes_);
      vfs_->torn_armed_.store(false, std::memory_order_release);
      vfs_->counters_.torn_writes.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (write_n == 0) {
    return Status::OK();
  }
  Status status = base_->Write(offset, buf, write_n);
  if (status.ok() && write_n < n) {
    return Status::OK();  // torn write still "succeeds"
  }
  return status;
}

Status FaultFile::Sync() {
  if (vfs_->crashed_.load(std::memory_order_acquire)) {
    return Crashed();
  }
  if (vfs_->ShouldFail(&vfs_->fail_syncs_after_)) {
    return Injected("fsync failure");
  }
  if (vfs_->ShouldFailTransient()) {
    return Status::TransientIOError("injected fault: transient fsync failure");
  }
  vfs_->counters_.syncs.fetch_add(1, std::memory_order_relaxed);
  SEGDIFF_RETURN_IF_ERROR(base_->Sync());
  // Successful sync: snapshot the durable state a crash would roll back
  // to. Reading the file back is O(file size), fine at test scale.
  SEGDIFF_ASSIGN_OR_RETURN(uint64_t size, base_->Size());
  std::string contents(size, '\0');
  if (size > 0) {
    SEGDIFF_RETURN_IF_ERROR(base_->Read(0, size, contents.data()));
  }
  std::lock_guard<std::mutex> lock(vfs_->mu_);
  FaultInjectionVfs::FileState& state = vfs_->files_[path_];
  state.synced = std::move(contents);
  state.synced_valid = true;
  return Status::OK();
}

Result<std::unique_ptr<RandomAccessFile>> FaultInjectionVfs::OpenFile(
    const std::string& path, bool create) {
  if (crashed_.load(std::memory_order_acquire)) {
    return Crashed();
  }
  if (path == ":memory:") {
    // Anonymous memory files have no crash state worth modelling.
    return base_->OpenFile(path, create);
  }
  const bool existed = base_->FileExists(path);
  SEGDIFF_ASSIGN_OR_RETURN(std::unique_ptr<RandomAccessFile> file,
                           base_->OpenFile(path, create));
  std::string initial;
  if (existed) {
    // Pre-existing contents count as durable: they survived whatever
    // made them, so a simulated crash rolls back no further than this.
    SEGDIFF_ASSIGN_OR_RETURN(uint64_t size, file->Size());
    initial.resize(size);
    if (size > 0) {
      SEGDIFF_RETURN_IF_ERROR(file->Read(0, size, initial.data()));
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  FileState& state = files_[path];
  if (!state.synced_valid) {
    state.synced = std::move(initial);
    state.synced_valid = true;
    state.creation_pending_dir_sync = !existed;
  }
  return std::unique_ptr<RandomAccessFile>(
      std::make_unique<FaultFile>(this, path, std::move(file)));
}

Status FaultInjectionVfs::SyncDir(const std::string& path) {
  if (crashed_.load(std::memory_order_acquire)) {
    return Crashed();
  }
  counters_.dir_syncs.fetch_add(1, std::memory_order_relaxed);
  SEGDIFF_RETURN_IF_ERROR(base_->SyncDir(path));
  std::lock_guard<std::mutex> lock(mu_);
  const std::string dir = DirOf(path);
  for (auto& [file_path, state] : files_) {
    if (DirOf(file_path) == dir) {
      state.creation_pending_dir_sync = false;
    }
  }
  return Status::OK();
}

Status FaultInjectionVfs::MakeDir(const std::string& path) {
  if (crashed_.load(std::memory_order_acquire)) {
    return Crashed();
  }
  counters_.mkdirs.fetch_add(1, std::memory_order_relaxed);
  if (ShouldFail(&fail_mkdirs_after_)) {
    return Status::IOError("injected mkdir failure: " + path);
  }
  return base_->MakeDir(path);
}

bool FaultInjectionVfs::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Status FaultInjectionVfs::RemoveFile(const std::string& path) {
  if (crashed_.load(std::memory_order_acquire)) {
    return Crashed();
  }
  counters_.removes.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    files_.erase(path);
  }
  return base_->RemoveFile(path);
}

Status FaultInjectionVfs::Rename(const std::string& from,
                                 const std::string& to) {
  if (crashed_.load(std::memory_order_acquire)) {
    return Crashed();
  }
  counters_.renames.fetch_add(1, std::memory_order_relaxed);
  if (ShouldFail(&fail_renames_after_)) {
    // Atomic contract: a failed rename leaves both names untouched.
    return Status::IOError("injected rename failure: " + from + " -> " + to);
  }
  SEGDIFF_RETURN_IF_ERROR(base_->Rename(from, to));
  std::lock_guard<std::mutex> lock(mu_);
  // The snapshot travels with the file; whatever occupied `to` is gone
  // for good (rename replaced it on the real file system too).
  auto it = files_.find(from);
  if (it != files_.end()) {
    FileState state = std::move(it->second);
    files_.erase(it);
    // Renames are modelled as immediately durable (ordered-metadata
    // journaling): a crash rolls back contents, not the name change.
    state.creation_pending_dir_sync = false;
    files_[to] = std::move(state);
  } else {
    files_.erase(to);
  }
  return Status::OK();
}

Result<std::vector<std::string>> FaultInjectionVfs::ListDir(
    const std::string& path) {
  if (crashed_.load(std::memory_order_acquire)) {
    return Crashed();
  }
  return base_->ListDir(path);
}

Status FaultInjectionVfs::RemoveDir(const std::string& path) {
  if (crashed_.load(std::memory_order_acquire)) {
    return Crashed();
  }
  counters_.removes.fetch_add(1, std::memory_order_relaxed);
  return base_->RemoveDir(path);
}

void FaultInjectionVfs::FailAfterWrites(int64_t n) {
  fail_writes_after_.store(n, std::memory_order_relaxed);
}

void FaultInjectionVfs::FailAfterReads(int64_t n) {
  fail_reads_after_.store(n, std::memory_order_relaxed);
}

void FaultInjectionVfs::FailAfterSyncs(int64_t n) {
  fail_syncs_after_.store(n, std::memory_order_relaxed);
}

void FaultInjectionVfs::FailAfterMkdirs(int64_t n) {
  fail_mkdirs_after_.store(n, std::memory_order_relaxed);
}

void FaultInjectionVfs::FailAfterRenames(int64_t n) {
  fail_renames_after_.store(n, std::memory_order_relaxed);
}

bool FaultInjectionVfs::ShouldFailTransient() {
  int64_t remaining = transient_remaining_.load(std::memory_order_relaxed);
  while (remaining > 0) {
    // Claim one failure slot; exactly `n` operations fail no matter how
    // many threads race (mirrors ShouldFail, but counts down to healthy
    // instead of sticking at dead).
    if (transient_remaining_.compare_exchange_weak(
            remaining, remaining - 1, std::memory_order_relaxed)) {
      counters_.transient_failures.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  const uint32_t per_mille =
      transient_per_mille_.load(std::memory_order_relaxed);
  if (per_mille > 0) {
    const uint64_t op =
        transient_op_seq_.fetch_add(1, std::memory_order_relaxed);
    const uint64_t seed = transient_seed_.load(std::memory_order_relaxed);
    if (Mix64(seed ^ (op + 1)) % 1000 < per_mille) {
      counters_.transient_failures.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void FaultInjectionVfs::InjectTransientFailures(int64_t n) {
  transient_remaining_.store(n > 0 ? n : 0, std::memory_order_relaxed);
}

void FaultInjectionVfs::SetTransientFaultRate(uint64_t seed,
                                              uint32_t per_mille) {
  transient_seed_.store(seed, std::memory_order_relaxed);
  transient_op_seq_.store(0, std::memory_order_relaxed);
  transient_per_mille_.store(per_mille > 1000 ? 1000 : per_mille,
                             std::memory_order_relaxed);
}

void FaultInjectionVfs::SetDiskBudgetBytes(int64_t bytes) {
  disk_budget_.store(bytes, std::memory_order_relaxed);
}

void FaultInjectionVfs::SetTornWrite(uint64_t offset, size_t keep_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  torn_offset_ = offset;
  torn_keep_bytes_ = keep_bytes;
  torn_armed_.store(true, std::memory_order_release);
}

Status FaultInjectionVfs::Crash() {
  // Snapshot the revert work under the lock, then do base IO unlocked
  // (base files are independent of our mutex, but keep it simple and
  // safe against concurrent FaultFile calls, which now all fail fast).
  std::map<std::string, FileState> files;
  {
    std::lock_guard<std::mutex> lock(mu_);
    crashed_.store(true, std::memory_order_release);
    files = files_;
  }
  Status first_error;
  for (const auto& [path, state] : files) {
    Status status;
    if (state.creation_pending_dir_sync) {
      // The directory entry was never made durable: the file is gone.
      status = base_->RemoveFile(path);
      if (status.IsNotFound()) {
        status = Status::OK();
      }
    } else if (state.synced_valid) {
      auto file = base_->OpenFile(path, /*create=*/true);
      if (!file.ok()) {
        status = file.status();
      } else {
        status = (*file)->Truncate(state.synced.size());
        if (status.ok() && !state.synced.empty()) {
          status =
              (*file)->Write(0, state.synced.data(), state.synced.size());
        }
      }
    }
    if (!status.ok() && first_error.ok()) {
      first_error = status;
    }
  }
  return first_error;
}

void FaultInjectionVfs::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  crashed_.store(false, std::memory_order_release);
  fail_writes_after_.store(-1, std::memory_order_relaxed);
  fail_reads_after_.store(-1, std::memory_order_relaxed);
  fail_syncs_after_.store(-1, std::memory_order_relaxed);
  fail_mkdirs_after_.store(-1, std::memory_order_relaxed);
  fail_renames_after_.store(-1, std::memory_order_relaxed);
  torn_armed_.store(false, std::memory_order_release);
  transient_remaining_.store(0, std::memory_order_relaxed);
  transient_per_mille_.store(0, std::memory_order_relaxed);
  transient_seed_.store(0, std::memory_order_relaxed);
  transient_op_seq_.store(0, std::memory_order_relaxed);
  disk_budget_.store(-1, std::memory_order_relaxed);
  counters_.reads.store(0, std::memory_order_relaxed);
  counters_.writes.store(0, std::memory_order_relaxed);
  counters_.syncs.store(0, std::memory_order_relaxed);
  counters_.dir_syncs.store(0, std::memory_order_relaxed);
  counters_.mkdirs.store(0, std::memory_order_relaxed);
  counters_.renames.store(0, std::memory_order_relaxed);
  counters_.removes.store(0, std::memory_order_relaxed);
  counters_.read_bytes.store(0, std::memory_order_relaxed);
  counters_.written_bytes.store(0, std::memory_order_relaxed);
  counters_.injected_failures.store(0, std::memory_order_relaxed);
  counters_.torn_writes.store(0, std::memory_order_relaxed);
  counters_.transient_failures.store(0, std::memory_order_relaxed);
  counters_.no_space_failures.store(0, std::memory_order_relaxed);
  files_.clear();
}

FaultInjectionVfs::Counters FaultInjectionVfs::counters() const {
  Counters snapshot;
  snapshot.reads = counters_.reads.load(std::memory_order_relaxed);
  snapshot.writes = counters_.writes.load(std::memory_order_relaxed);
  snapshot.syncs = counters_.syncs.load(std::memory_order_relaxed);
  snapshot.dir_syncs = counters_.dir_syncs.load(std::memory_order_relaxed);
  snapshot.mkdirs = counters_.mkdirs.load(std::memory_order_relaxed);
  snapshot.renames = counters_.renames.load(std::memory_order_relaxed);
  snapshot.removes = counters_.removes.load(std::memory_order_relaxed);
  snapshot.read_bytes =
      counters_.read_bytes.load(std::memory_order_relaxed);
  snapshot.written_bytes =
      counters_.written_bytes.load(std::memory_order_relaxed);
  snapshot.injected_failures =
      counters_.injected_failures.load(std::memory_order_relaxed);
  snapshot.torn_writes =
      counters_.torn_writes.load(std::memory_order_relaxed);
  snapshot.transient_failures =
      counters_.transient_failures.load(std::memory_order_relaxed);
  snapshot.no_space_failures =
      counters_.no_space_failures.load(std::memory_order_relaxed);
  return snapshot;
}

}  // namespace segdiff
