#include "storage/fault_vfs.h"

#include <algorithm>
#include <utility>

namespace segdiff {
namespace {

std::string DirOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) {
    return ".";
  }
  if (slash == 0) {
    return "/";
  }
  return path.substr(0, slash);
}

Status Injected(const char* what) {
  return Status::IOError(std::string("injected fault: ") + what);
}

Status Crashed() {
  return Status::IOError("simulated crash: file system unavailable");
}

}  // namespace

/// Wraps one open file; all fault decisions live in the owning Vfs so a
/// schedule spans every file of a store. Namespace-scoped (not
/// anonymous) to match the friend declaration in fault_vfs.h.
class FaultFile : public RandomAccessFile {
 public:
  FaultFile(FaultInjectionVfs* vfs, std::string path,
            std::unique_ptr<RandomAccessFile> base)
      : vfs_(vfs), path_(std::move(path)), base_(std::move(base)) {}

  Status Read(uint64_t offset, size_t n, char* buf) override;
  Status Write(uint64_t offset, const char* buf, size_t n) override;
  Status Truncate(uint64_t size) override { return base_->Truncate(size); }
  Status Sync() override;
  Result<uint64_t> Size() override { return base_->Size(); }

 private:
  FaultInjectionVfs* vfs_;
  std::string path_;
  std::unique_ptr<RandomAccessFile> base_;
};

FaultInjectionVfs::FaultInjectionVfs(Vfs* base)
    : base_(base != nullptr ? base : Vfs::Default()) {}

FaultInjectionVfs::~FaultInjectionVfs() = default;

bool FaultInjectionVfs::ShouldFail(int64_t* countdown) {
  if (*countdown < 0) {
    return false;
  }
  if (*countdown == 0) {
    ++counters_.injected_failures;
    return true;  // sticky: the device stays failed until Reset()
  }
  --*countdown;
  return false;
}

Status FaultFile::Read(uint64_t offset, size_t n, char* buf) {
  {
    std::lock_guard<std::mutex> lock(vfs_->mu_);
    if (vfs_->crashed_) {
      return Crashed();
    }
    if (vfs_->ShouldFail(&vfs_->fail_reads_after_)) {
      return Injected("read failure");
    }
    ++vfs_->counters_.reads;
    vfs_->counters_.read_bytes += n;
  }
  return base_->Read(offset, n, buf);
}

Status FaultFile::Write(uint64_t offset, const char* buf, size_t n) {
  size_t write_n = n;
  {
    std::lock_guard<std::mutex> lock(vfs_->mu_);
    if (vfs_->crashed_) {
      return Crashed();
    }
    if (vfs_->ShouldFail(&vfs_->fail_writes_after_)) {
      return Injected("write failure");
    }
    ++vfs_->counters_.writes;
    vfs_->counters_.written_bytes += n;
    if (vfs_->torn_armed_ && offset <= vfs_->torn_offset_ &&
        vfs_->torn_offset_ < offset + n) {
      // Tear: persist only a prefix, then report success — exactly what
      // a power cut mid-sector-train leaves behind.
      write_n = std::min(n, vfs_->torn_keep_bytes_);
      vfs_->torn_armed_ = false;
      ++vfs_->counters_.torn_writes;
    }
  }
  if (write_n == 0) {
    return Status::OK();
  }
  Status status = base_->Write(offset, buf, write_n);
  if (status.ok() && write_n < n) {
    return Status::OK();  // torn write still "succeeds"
  }
  return status;
}

Status FaultFile::Sync() {
  {
    std::lock_guard<std::mutex> lock(vfs_->mu_);
    if (vfs_->crashed_) {
      return Crashed();
    }
    if (vfs_->ShouldFail(&vfs_->fail_syncs_after_)) {
      return Injected("fsync failure");
    }
    ++vfs_->counters_.syncs;
  }
  SEGDIFF_RETURN_IF_ERROR(base_->Sync());
  // Successful sync: snapshot the durable state a crash would roll back
  // to. Reading the file back is O(file size), fine at test scale.
  SEGDIFF_ASSIGN_OR_RETURN(uint64_t size, base_->Size());
  std::string contents(size, '\0');
  if (size > 0) {
    SEGDIFF_RETURN_IF_ERROR(base_->Read(0, size, contents.data()));
  }
  std::lock_guard<std::mutex> lock(vfs_->mu_);
  FaultInjectionVfs::FileState& state = vfs_->files_[path_];
  state.synced = std::move(contents);
  state.synced_valid = true;
  return Status::OK();
}

Result<std::unique_ptr<RandomAccessFile>> FaultInjectionVfs::OpenFile(
    const std::string& path, bool create) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (crashed_) {
      return Crashed();
    }
  }
  if (path == ":memory:") {
    // Anonymous memory files have no crash state worth modelling.
    return base_->OpenFile(path, create);
  }
  const bool existed = base_->FileExists(path);
  SEGDIFF_ASSIGN_OR_RETURN(std::unique_ptr<RandomAccessFile> file,
                           base_->OpenFile(path, create));
  std::string initial;
  if (existed) {
    // Pre-existing contents count as durable: they survived whatever
    // made them, so a simulated crash rolls back no further than this.
    SEGDIFF_ASSIGN_OR_RETURN(uint64_t size, file->Size());
    initial.resize(size);
    if (size > 0) {
      SEGDIFF_RETURN_IF_ERROR(file->Read(0, size, initial.data()));
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  FileState& state = files_[path];
  if (!state.synced_valid) {
    state.synced = std::move(initial);
    state.synced_valid = true;
    state.creation_pending_dir_sync = !existed;
  }
  return std::unique_ptr<RandomAccessFile>(
      std::make_unique<FaultFile>(this, path, std::move(file)));
}

Status FaultInjectionVfs::SyncDir(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (crashed_) {
      return Crashed();
    }
    ++counters_.dir_syncs;
  }
  SEGDIFF_RETURN_IF_ERROR(base_->SyncDir(path));
  std::lock_guard<std::mutex> lock(mu_);
  const std::string dir = DirOf(path);
  for (auto& [file_path, state] : files_) {
    if (DirOf(file_path) == dir) {
      state.creation_pending_dir_sync = false;
    }
  }
  return Status::OK();
}

bool FaultInjectionVfs::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Status FaultInjectionVfs::RemoveFile(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (crashed_) {
      return Crashed();
    }
    files_.erase(path);
  }
  return base_->RemoveFile(path);
}

void FaultInjectionVfs::FailAfterWrites(int64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  fail_writes_after_ = n;
}

void FaultInjectionVfs::FailAfterReads(int64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  fail_reads_after_ = n;
}

void FaultInjectionVfs::FailAfterSyncs(int64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  fail_syncs_after_ = n;
}

void FaultInjectionVfs::SetTornWrite(uint64_t offset, size_t keep_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  torn_armed_ = true;
  torn_offset_ = offset;
  torn_keep_bytes_ = keep_bytes;
}

Status FaultInjectionVfs::Crash() {
  // Snapshot the revert work under the lock, then do base IO unlocked
  // (base files are independent of our mutex, but keep it simple and
  // safe against concurrent FaultFile calls, which now all fail fast).
  std::map<std::string, FileState> files;
  {
    std::lock_guard<std::mutex> lock(mu_);
    crashed_ = true;
    files = files_;
  }
  Status first_error;
  for (const auto& [path, state] : files) {
    Status status;
    if (state.creation_pending_dir_sync) {
      // The directory entry was never made durable: the file is gone.
      status = base_->RemoveFile(path);
      if (status.IsNotFound()) {
        status = Status::OK();
      }
    } else if (state.synced_valid) {
      auto file = base_->OpenFile(path, /*create=*/true);
      if (!file.ok()) {
        status = file.status();
      } else {
        status = (*file)->Truncate(state.synced.size());
        if (status.ok() && !state.synced.empty()) {
          status =
              (*file)->Write(0, state.synced.data(), state.synced.size());
        }
      }
    }
    if (!status.ok() && first_error.ok()) {
      first_error = status;
    }
  }
  return first_error;
}

void FaultInjectionVfs::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  crashed_ = false;
  fail_writes_after_ = -1;
  fail_reads_after_ = -1;
  fail_syncs_after_ = -1;
  torn_armed_ = false;
  counters_ = Counters();
  files_.clear();
}

FaultInjectionVfs::Counters FaultInjectionVfs::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

}  // namespace segdiff
