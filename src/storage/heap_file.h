// Heap file: an append-only chain of pages holding fixed-width records.
//
// Data page layout:
//   [ 0..7  ] next page id (kInvalidPageId at tail)
//   [ 8..9  ] record count in this page
//   [10..15 ] reserved
//   [16..   ] records, record_bytes each (up to kPageCapacity; the
//             trailing kPageTrailerBytes belong to the pager's checksum)
//
// Scans stream pages in chain order; point reads resolve a RecordId.
//
// The HeapFileMeta is authoritative over the page headers. Pages fill
// strictly in order, so the i-th page of the chain holds
// min(records_per_page, record_count - i * records_per_page) records;
// scans derive counts from that and bound the chain walk by
// meta.page_count rather than trusting on-page state. Two situations
// make the distinction matter:
//   - snapshot reads: a scan over a frozen HeapFileMeta (plus a pool
//     snapshot for page contents) sees exactly the snapshot's rows even
//     while a writer keeps appending to the live tail;
//   - crash recovery: a dirty tail page stolen to disk between
//     checkpoints can persist more rows (and a further chain) than the
//     checkpointed catalog records; deriving from the meta masks those
//     phantom rows, and Append overwrites them slot by slot during WAL
//     replay, reproducing the pre-crash bytes exactly.

#ifndef SEGDIFF_STORAGE_HEAP_FILE_H_
#define SEGDIFF_STORAGE_HEAP_FILE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/result.h"
#include "storage/buffer_pool.h"
#include "storage/extent.h"
#include "storage/page.h"

namespace segdiff {

/// Persistent position of a heap file, as stored in the catalog.
struct HeapFileMeta {
  PageId first_page = kInvalidPageId;
  PageId last_page = kInvalidPageId;
  uint64_t record_count = 0;
  uint64_t page_count = 0;
};

/// Routing around corrupt pages, for partial-result scans and repair
/// salvage. When passed to a scan, a page whose fetch fails its
/// checksum is reported through `on_skip` and the scan continues —
/// recovering the chain's next pointer from the page's raw bytes where
/// possible — instead of failing the whole scan. Non-corruption errors
/// still fail. `lost_records` is how many records the skipped page
/// logically held; a call with `page == kInvalidPageId` reports an
/// unreachable chain remainder (the corrupt page's next pointer could
/// not be trusted) rather than a single page.
struct CorruptPageSkipper {
  std::function<void(PageId page, uint64_t lost_records)> on_skip;
};

/// Access object over one heap file. Cheap to construct; all state that
/// must survive restarts lives in HeapFileMeta (persisted by the
/// catalog). Snapshot scans exploit the cheapness: they attach a
/// throwaway HeapFile over the frozen meta and read through the pool
/// snapshot passed to the scan methods.
class HeapFile {
 public:
  static constexpr size_t kHeaderBytes = 16;

  /// Creates a fresh, empty heap file. No pages are allocated until the
  /// first Append, so empty heaps (fresh tables, fully columnar tables)
  /// occupy zero file space.
  static Result<HeapFile> Create(BufferPool* pool, size_t record_bytes);

  /// Attaches to an existing heap file described by `meta`.
  static Result<HeapFile> Attach(BufferPool* pool, size_t record_bytes,
                                 const HeapFileMeta& meta);

  /// Appends one record (record_bytes bytes); returns its id. The
  /// append slot comes from the meta, not the tail page header, so
  /// replay after a crash overwrites any phantom rows in place.
  Result<RecordId> Append(const char* record);

  /// Visits records in storage order. The callback sets `*keep_going` to
  /// false to stop early. `snap` (nullable) reads page contents as of a
  /// pool snapshot — pair it with a frozen meta.
  using ScanFn =
      std::function<Status(const char* record, RecordId id, bool* keep_going)>;
  Status Scan(const ScanFn& fn, const PoolSnapshot* snap = nullptr,
              const CorruptPageSkipper* skip = nullptr) const;

  /// Copies the record at `id` into `buf` (record_bytes bytes).
  Status ReadRecord(RecordId id, char* buf,
                    const PoolSnapshot* snap = nullptr) const;

  /// Page ids of the chain in storage order, by walking the next
  /// pointers (bounded by meta.page_count). The walk touches every page
  /// header (one pool fetch per page), so callers partitioning a scan
  /// should reuse the result.
  /// With a skipper, a corrupt chain page's id is still included (the
  /// consuming scan reports it when its own fetch fails); only an
  /// unreachable remainder is reported here, since no partition would
  /// ever see those pages.
  Result<std::vector<PageId>> CollectPageIds(
      const PoolSnapshot* snap = nullptr,
      const CorruptPageSkipper* skip = nullptr) const;

  /// Scans only `pages` (a contiguous slice of CollectPageIds() whose
  /// first element sits at chain position `first_page_index`), in the
  /// given order. `keep_going = false` stops this partition.
  Status ScanPages(const std::vector<PageId>& pages, uint64_t first_page_index,
                   const ScanFn& fn, const PoolSnapshot* snap = nullptr,
                   const CorruptPageSkipper* skip = nullptr) const;

  /// Page-at-a-time scan: the callback sees each page's record area
  /// (`records` = first record, `count` records of record_bytes each)
  /// while the page stays pinned, so batched executors can evaluate a
  /// whole page without per-record dispatch. Every page is fetched
  /// through the buffer pool — and therefore checksum-verified — even
  /// when the callback then decides to skip it (zone-map pruning must
  /// not mask corruption).
  using PageDataFn = std::function<Status(PageId page, const char* records,
                                          uint16_t count, bool* keep_going)>;
  Status ScanPageData(const PageDataFn& fn, const PoolSnapshot* snap = nullptr,
                      const CorruptPageSkipper* skip = nullptr) const;
  Status ScanPagesData(const std::vector<PageId>& pages,
                       uint64_t first_page_index, const PageDataFn& fn,
                       const PoolSnapshot* snap = nullptr,
                       const CorruptPageSkipper* skip = nullptr) const;

  const HeapFileMeta& meta() const { return meta_; }
  size_t record_bytes() const { return record_bytes_; }
  size_t records_per_page() const { return records_per_page_; }
  uint64_t SizeBytes() const { return meta_.page_count * kPageSize; }

 private:
  HeapFile(BufferPool* pool, size_t record_bytes, const HeapFileMeta& meta);

  /// Records held by the page at chain position `page_index`, derived
  /// from the meta (pages fill strictly in order).
  uint16_t PageRecordCount(uint64_t page_index) const;

  /// Handles a failed fetch of chain page `*current` at chain position
  /// `index`. With a skipper and a Corruption error: reports the loss,
  /// recovers the next pointer from the page's raw on-disk bytes (page
  /// headers often survive a payload flip), validates it, and stores it
  /// in `*current` — kInvalidPageId, plus a report of the unreachable
  /// remainder, when the pointer cannot be trusted. Without a skipper,
  /// or for non-corruption errors, returns the error unchanged.
  Status SkipCorruptChainPage(const Status& error, PageId* current,
                              uint64_t index,
                              const CorruptPageSkipper* skip) const;

  BufferPool* pool_;
  ExtentAllocator allocator_;
  size_t record_bytes_;
  size_t records_per_page_;
  HeapFileMeta meta_;
};

}  // namespace segdiff

#endif  // SEGDIFF_STORAGE_HEAP_FILE_H_
