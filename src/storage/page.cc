#include "storage/page.h"

// Header-only declarations; this translation unit anchors the header.
