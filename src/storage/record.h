// Typed schemas and fixed-width row encoding.
//
// minidb rows are fixed-width: every column is 8 bytes (double or
// int64), so records never fragment and page capacity is static. That
// matches the workload — every feature table the paper defines holds
// time spans, value differences, and time stamps.

#ifndef SEGDIFF_STORAGE_RECORD_H_
#define SEGDIFF_STORAGE_RECORD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace segdiff {

enum class ColumnType : unsigned char { kDouble = 0, kInt64 = 1 };

/// Column definition: a name unique within its schema, and a type.
struct Column {
  std::string name;
  ColumnType type = ColumnType::kDouble;
};

/// A typed cell.
struct Value {
  ColumnType type = ColumnType::kDouble;
  double d = 0.0;
  int64_t i = 0;

  static Value Double(double v) {
    Value value;
    value.type = ColumnType::kDouble;
    value.d = v;
    return value;
  }
  static Value Int64(int64_t v) {
    Value value;
    value.type = ColumnType::kInt64;
    value.i = v;
    return value;
  }
};

using Row = std::vector<Value>;

/// Ordered list of columns; validates name uniqueness.
class TableSchema {
 public:
  static Result<TableSchema> Create(std::vector<Column> columns);

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of the named column, or NotFound.
  Result<size_t> ColumnIndex(const std::string& name) const;

  /// Bytes per encoded row: 8 * num_columns().
  size_t RowBytes() const { return 8 * columns_.size(); }

 private:
  std::vector<Column> columns_;
};

/// Builds an all-double schema from column names (the common case here).
Result<TableSchema> DoubleSchema(const std::vector<std::string>& names);

/// Builds an all-double row.
Row DoubleRow(const std::vector<double>& values);

/// Encodes `row` (which must match `schema` in arity and types) into
/// `dst` (schema.RowBytes() bytes).
Status EncodeRow(const TableSchema& schema, const Row& row, char* dst);

/// Decodes a row previously encoded with the same schema.
Row DecodeRow(const TableSchema& schema, const char* src);

/// Decodes only the double value of column `i` without materializing the
/// row (hot path for predicate evaluation; the column must be kDouble).
double DecodeDoubleColumn(const char* src, size_t i);

}  // namespace segdiff

#endif  // SEGDIFF_STORAGE_RECORD_H_
