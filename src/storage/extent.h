// Extent allocator: hands out pages for one storage object (heap file
// or B+-tree) from contiguous runs so that object's pages cluster on
// disk. Without this, interleaved growth of a table and its indexes
// turns "sequential" scans into random IO.

#ifndef SEGDIFF_STORAGE_EXTENT_H_
#define SEGDIFF_STORAGE_EXTENT_H_

#include <algorithm>
#include <cstddef>

#include "common/result.h"
#include "storage/page.h"
#include "storage/pager.h"

namespace segdiff {

/// Per-object page allocator. Extents grow geometrically (4 pages
/// doubling to 64) so small objects waste little file space while large
/// ones stay contiguous. Not persisted: after reopen the first
/// allocation simply starts a fresh extent at end of file (at most one
/// partially used extent of slack per object per session).
class ExtentAllocator {
 public:
  static constexpr size_t kInitialExtentPages = 4;   // 32 KiB
  static constexpr size_t kMaxExtentPages = 64;      // 512 KiB

  explicit ExtentAllocator(Pager* pager,
                           size_t max_extent_pages = kMaxExtentPages)
      : pager_(pager), max_extent_pages_(max_extent_pages) {}

  /// Returns the next page of the current extent, starting a new extent
  /// when exhausted. Pages are already zeroed on disk.
  Result<PageId> Allocate() {
    if (remaining_ == 0) {
      SEGDIFF_ASSIGN_OR_RETURN(next_,
                               pager_->AllocateExtent(next_extent_pages_));
      remaining_ = next_extent_pages_;
      next_extent_pages_ = std::min(next_extent_pages_ * 2,
                                    max_extent_pages_);
    }
    --remaining_;
    return next_++;
  }

 private:
  Pager* pager_;
  size_t max_extent_pages_;
  size_t next_extent_pages_ = kInitialExtentPages;
  PageId next_ = kInvalidPageId;
  size_t remaining_ = 0;
};

}  // namespace segdiff

#endif  // SEGDIFF_STORAGE_EXTENT_H_
