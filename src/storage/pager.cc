#include "storage/pager.h"

#include <time.h>

#include <chrono>
#include <cstdio>
#include <cstring>

#include "common/coding.h"
#include "common/crc32c.h"

namespace segdiff {
namespace {

constexpr uint32_t kFileMagic = 0x4D494442;    // "MIDB"
constexpr uint32_t kTrailerMagic = 0x50474353;  // "PGCS"

/// Computes and stores the trailer of a page about to be written.
void StampTrailer(char* page) {
  EncodeFixed32(page + kPageCapacity, Crc32c(page, kPageCapacity));
  EncodeFixed32(page + kPageCapacity + 4, kTrailerMagic);
}

Status ReadOnlyError(const std::string& path) {
  return Status::NotSupported(
      "legacy v1 store is read-only (no page checksums): " + path +
      "; compact it to upgrade to the checksummed v2 format");
}

}  // namespace

Result<std::unique_ptr<Pager>> Pager::Open(const std::string& path,
                                           bool create, Vfs* vfs) {
  if (vfs == nullptr) {
    vfs = Vfs::Default();
  }
  const bool existed = path != ":memory:" && vfs->FileExists(path);
  SEGDIFF_ASSIGN_OR_RETURN(std::unique_ptr<RandomAccessFile> file,
                           vfs->OpenFile(path, create));
  // Transient failures (device momentarily resetting) retry with bounded
  // backoff instead of failing the page IO outright; permanent and
  // no-space errors pass straight through.
  file = WithRetry(std::move(file));
  SEGDIFF_ASSIGN_OR_RETURN(uint64_t size, file->Size());
  if (size == 0) {
    // Fresh file: write the (checksummed, v2) header page.
    std::unique_ptr<Pager> pager(new Pager(path, std::move(file), 1,
                                           kFormatChecksummed, vfs,
                                           /*created=*/!existed));
    Status status = pager->WriteHeader();
    if (!status.ok()) {
      return status;
    }
    return pager;
  }
  if (size < kPageSize) {
    return Status::Corruption("file smaller than the header page: " + path);
  }
  // A non-page-aligned tail is tolerated: a crash mid-WritePage can leave
  // a torn partial page at the end of the file, but only past the header's
  // page count (checked below) — recovery never reads it and the next
  // extension overwrites it.
  char header[kPageSize];
  SEGDIFF_RETURN_IF_ERROR(file->Read(0, kPageSize, header));
  if (DecodeFixed32(header) != kFileMagic) {
    return Status::Corruption("bad magic: " + path);
  }
  const uint32_t version = DecodeFixed32(header + 4);
  if (version != kFormatLegacy && version != kFormatChecksummed) {
    return Status::Corruption("unsupported version " +
                              std::to_string(version) + ": " + path);
  }
  const uint64_t page_count = DecodeFixed64(header + 8);
  if (page_count * kPageSize > size) {
    return Status::Corruption("header page count exceeds file: " + path);
  }
  std::unique_ptr<Pager> pager(
      new Pager(path, std::move(file), page_count, version, vfs,
                /*created=*/false));
  if (version == kFormatChecksummed) {
    SEGDIFF_RETURN_IF_ERROR(pager->VerifyPageBuffer(0, header));
  }
  // Pre-WAL v2 files carry zeros here, which reads back as "nothing
  // applied" — exactly right.
  pager->applied_lsn_.store(DecodeFixed64(header + 16));
  return pager;
}

Pager::~Pager() {
  if (file_ != nullptr && !read_only()) {
    // Best-effort header persistence on close.
    WriteHeader();
  }
}

void Pager::SetSimulatedReadLatency(uint64_t seq_ns, uint64_t random_ns) {
  sim_seq_read_ns_ = seq_ns;
  sim_random_read_ns_ = random_ns;
}

Status Pager::VerifyPageBuffer(PageId id, const char* buf) const {
  const uint32_t magic = DecodeFixed32(buf + kPageCapacity + 4);
  if (magic != kTrailerMagic) {
    return Status::Corruption("page " + std::to_string(id) + " of " + path_ +
                              " has no valid trailer (torn or zeroed page)");
  }
  const uint32_t stored = DecodeFixed32(buf + kPageCapacity);
  const uint32_t computed = Crc32c(buf, kPageCapacity);
  if (stored != computed) {
    char detail[64];
    std::snprintf(detail, sizeof(detail), " (stored 0x%08x, computed 0x%08x)",
                  stored, computed);
    return Status::Corruption("checksum mismatch on page " +
                              std::to_string(id) + " of " + path_ + detail);
  }
  return Status::OK();
}

Status Pager::ReadPage(PageId id, char* buf) {
  if (id >= page_count_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("read past end of file: page " +
                                   std::to_string(id));
  }
  if (sim_seq_read_ns_ != 0 || sim_random_read_ns_ != 0) {
    // With concurrent readers the "previous read" is whichever thread
    // read last — exactly how a shared disk head behaves.
    const PageId prev = last_read_page_.load(std::memory_order_relaxed);
    const bool sequential = prev != kInvalidPageId && id == prev + 1;
    const uint64_t ns = sequential ? sim_seq_read_ns_ : sim_random_read_ns_;
    if (ns >= 100000) {
      const timespec delay{static_cast<time_t>(ns / 1000000000ull),
                           static_cast<long>(ns % 1000000000ull)};
      ::nanosleep(&delay, nullptr);
    } else if (ns > 0) {
      // Spin for sub-100us delays; nanosleep overshoots badly there.
      const auto until =
          std::chrono::steady_clock::now() + std::chrono::nanoseconds(ns);
      while (std::chrono::steady_clock::now() < until) {
      }
    }
  }
  last_read_page_.store(id, std::memory_order_relaxed);
  SEGDIFF_RETURN_IF_ERROR(file_->Read(id * kPageSize, kPageSize, buf));
  if (format_version_ == kFormatChecksummed && verify_checksums_) {
    Status status = VerifyPageBuffer(id, buf);
    if (status.IsCorruption()) {
      // Remember the bad page: scans that opt into partial results route
      // around quarantined ranges instead of failing the whole query.
      QuarantinePage(id);
    }
    return status;
  }
  return Status::OK();
}

void Pager::QuarantinePage(PageId id) {
  std::lock_guard<std::mutex> lock(quarantine_mu_);
  quarantined_.insert(id);
}

bool Pager::IsQuarantined(PageId id) const {
  std::lock_guard<std::mutex> lock(quarantine_mu_);
  return quarantined_.count(id) != 0;
}

std::vector<PageId> Pager::QuarantinedPages() const {
  std::lock_guard<std::mutex> lock(quarantine_mu_);
  return std::vector<PageId>(quarantined_.begin(), quarantined_.end());
}

uint64_t Pager::quarantined_count() const {
  std::lock_guard<std::mutex> lock(quarantine_mu_);
  return quarantined_.size();
}

Status Pager::ReadPageRaw(PageId id, char* buf) {
  if (id >= page_count_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("read past end of file: page " +
                                   std::to_string(id));
  }
  return file_->Read(id * kPageSize, kPageSize, buf);
}

Status Pager::WritePage(PageId id, const char* buf) {
  if (read_only()) {
    return ReadOnlyError(path_);
  }
  if (id >= page_count_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("write past end of file: page " +
                                   std::to_string(id));
  }
  // Stamp the trailer into a private copy: `buf` (typically a pinned
  // buffer-pool frame) stays logically const and concurrent readers of
  // the frame never observe a half-written trailer.
  char page[kPageSize];
  std::memcpy(page, buf, kPageCapacity);
  StampTrailer(page);
  return file_->Write(id * kPageSize, page, kPageSize);
}

Result<PageId> Pager::AllocatePage() { return AllocateExtent(1); }

Result<PageId> Pager::AllocateExtent(size_t n) {
  if (n == 0) {
    return Status::InvalidArgument("empty extent");
  }
  if (read_only()) {
    return ReadOnlyError(path_);
  }
  std::lock_guard<std::mutex> lock(alloc_mu_);
  const PageId id = page_count_.load(std::memory_order_relaxed);
  // Zero pages with valid trailers: a page that is allocated, counted by
  // a later checkpoint, but never written still verifies on read.
  std::vector<char> zero(n * kPageSize, 0);
  StampTrailer(zero.data());
  for (size_t i = 1; i < n; ++i) {
    std::memcpy(zero.data() + i * kPageSize + kPageCapacity,
                zero.data() + kPageCapacity, kPageTrailerBytes);
  }
  Status status = file_->Write(id * kPageSize, zero.data(), zero.size());
  if (!status.ok()) {
    // No-space (or any failed) extension must not leave a half-grown
    // file: page_count_ never advanced, so readers cannot see the new
    // pages, and truncating back discards whatever partial extent the
    // failed write may have persisted. The store stays exactly as it
    // was — acked data remains durable and readable.
    file_->Truncate(id * kPageSize);  // best-effort; count is authoritative
    return status;
  }
  page_count_.store(id + n, std::memory_order_release);
  return id;
}

Status Pager::WriteHeader() {
  if (read_only()) {
    return ReadOnlyError(path_);
  }
  char header[kPageSize];
  std::memset(header, 0, sizeof(header));
  EncodeFixed32(header, kFileMagic);
  EncodeFixed32(header + 4, format_version_);
  EncodeFixed64(header + 8, page_count_.load());
  EncodeFixed64(header + 16, applied_lsn_.load());
  StampTrailer(header);
  return file_->Write(0, header, kPageSize);
}

Status Pager::Sync() {
  SEGDIFF_RETURN_IF_ERROR(WriteHeader());
  SEGDIFF_RETURN_IF_ERROR(file_->Sync());
  if (needs_dir_sync_) {
    // First sync after creating the file: persist the directory entry
    // too, or a crash here could lose the whole store on some file
    // systems even though the data was fsynced.
    SEGDIFF_RETURN_IF_ERROR(vfs_->SyncDir(path_));
    needs_dir_sync_ = false;
  }
  return Status::OK();
}

Result<ScrubReport> Pager::Scrub() {
  ScrubReport report;
  const uint64_t count = page_count_.load(std::memory_order_acquire);
  std::vector<char> buf(kPageSize);
  for (PageId id = 0; id < count; ++id) {
    ++report.pages_checked;
    Status status = file_->Read(id * kPageSize, kPageSize, buf.data());
    if (status.ok() && format_version_ == kFormatChecksummed) {
      status = VerifyPageBuffer(id, buf.data());
    } else if (status.ok()) {
      ++report.pages_unverifiable;  // legacy v1: nothing to verify against
    }
    if (!status.ok()) {
      report.corrupt.push_back(ScrubIssue{id, status.ToString()});
      QuarantinePage(id);
    }
  }
  return report;
}

}  // namespace segdiff
