#include "storage/pager.h"

#include <fcntl.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <vector>

#include "common/coding.h"

namespace segdiff {
namespace {

constexpr uint32_t kFileMagic = 0x4D494442;  // "MIDB"
constexpr uint32_t kFileVersion = 1;

Status Errno(const std::string& what, const std::string& path) {
  return Status::IOError(what + " " + path + ": " + std::strerror(errno));
}

}  // namespace

Result<std::unique_ptr<Pager>> Pager::Open(const std::string& path,
                                           bool create) {
  int fd = -1;
  if (path == ":memory:") {
    if (!create) {
      return Status::InvalidArgument(
          ":memory: databases are always created fresh");
    }
    fd = static_cast<int>(::syscall(SYS_memfd_create, "segdiff-memdb", 0u));
    if (fd < 0) {
      return Errno("memfd_create", path);
    }
  } else {
    int flags = O_RDWR;
    if (create) {
      flags |= O_CREAT;
    }
    fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) {
      return Errno("open", path);
    }
  }
  const off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    ::close(fd);
    return Errno("lseek", path);
  }
  if (size == 0) {
    // Fresh file: write the header page.
    std::unique_ptr<Pager> pager(new Pager(path, fd, 1));
    Status status = pager->WriteHeader();
    if (!status.ok()) {
      return status;
    }
    return pager;
  }
  if (size % static_cast<off_t>(kPageSize) != 0) {
    ::close(fd);
    return Status::Corruption("file size not page-aligned: " + path);
  }
  char header[kPageSize];
  const ssize_t got = ::pread(fd, header, kPageSize, 0);
  if (got != static_cast<ssize_t>(kPageSize)) {
    ::close(fd);
    return Status::Corruption("short header read: " + path);
  }
  if (DecodeFixed32(header) != kFileMagic) {
    ::close(fd);
    return Status::Corruption("bad magic: " + path);
  }
  if (DecodeFixed32(header + 4) != kFileVersion) {
    ::close(fd);
    return Status::Corruption("unsupported version: " + path);
  }
  const uint64_t page_count = DecodeFixed64(header + 8);
  if (page_count * kPageSize > static_cast<uint64_t>(size)) {
    ::close(fd);
    return Status::Corruption("header page count exceeds file: " + path);
  }
  return std::unique_ptr<Pager>(new Pager(path, fd, page_count));
}

Pager::~Pager() {
  if (fd_ >= 0) {
    // Best-effort header persistence on close.
    WriteHeader();
    ::close(fd_);
  }
}

void Pager::SetSimulatedReadLatency(uint64_t seq_ns, uint64_t random_ns) {
  sim_seq_read_ns_ = seq_ns;
  sim_random_read_ns_ = random_ns;
}

Status Pager::ReadPage(PageId id, char* buf) {
  if (id >= page_count_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("read past end of file: page " +
                                   std::to_string(id));
  }
  if (sim_seq_read_ns_ != 0 || sim_random_read_ns_ != 0) {
    // With concurrent readers the "previous read" is whichever thread
    // read last — exactly how a shared disk head behaves.
    const PageId prev = last_read_page_.load(std::memory_order_relaxed);
    const bool sequential = prev != kInvalidPageId && id == prev + 1;
    const uint64_t ns = sequential ? sim_seq_read_ns_ : sim_random_read_ns_;
    if (ns >= 100000) {
      const timespec delay{static_cast<time_t>(ns / 1000000000ull),
                           static_cast<long>(ns % 1000000000ull)};
      ::nanosleep(&delay, nullptr);
    } else if (ns > 0) {
      // Spin for sub-100us delays; nanosleep overshoots badly there.
      const auto until =
          std::chrono::steady_clock::now() + std::chrono::nanoseconds(ns);
      while (std::chrono::steady_clock::now() < until) {
      }
    }
  }
  last_read_page_.store(id, std::memory_order_relaxed);
  const ssize_t got =
      ::pread(fd_, buf, kPageSize, static_cast<off_t>(id * kPageSize));
  if (got != static_cast<ssize_t>(kPageSize)) {
    return Errno("pread", path_);
  }
  return Status::OK();
}

Status Pager::WritePage(PageId id, const char* buf) {
  if (id >= page_count_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("write past end of file: page " +
                                   std::to_string(id));
  }
  const ssize_t put =
      ::pwrite(fd_, buf, kPageSize, static_cast<off_t>(id * kPageSize));
  if (put != static_cast<ssize_t>(kPageSize)) {
    return Errno("pwrite", path_);
  }
  return Status::OK();
}

Result<PageId> Pager::AllocatePage() { return AllocateExtent(1); }

Result<PageId> Pager::AllocateExtent(size_t n) {
  if (n == 0) {
    return Status::InvalidArgument("empty extent");
  }
  std::lock_guard<std::mutex> lock(alloc_mu_);
  const PageId id = page_count_.load(std::memory_order_relaxed);
  std::vector<char> zero(n * kPageSize, 0);
  const ssize_t put = ::pwrite(fd_, zero.data(), zero.size(),
                               static_cast<off_t>(id * kPageSize));
  if (put != static_cast<ssize_t>(zero.size())) {
    return Errno("pwrite (allocate)", path_);
  }
  page_count_.store(id + n, std::memory_order_release);
  return id;
}

Status Pager::WriteHeader() {
  char header[kPageSize];
  std::memset(header, 0, sizeof(header));
  EncodeFixed32(header, kFileMagic);
  EncodeFixed32(header + 4, kFileVersion);
  EncodeFixed64(header + 8, page_count_.load());
  const ssize_t put = ::pwrite(fd_, header, kPageSize, 0);
  if (put != static_cast<ssize_t>(kPageSize)) {
    return Errno("pwrite (header)", path_);
  }
  return Status::OK();
}

Status Pager::Sync() {
  SEGDIFF_RETURN_IF_ERROR(WriteHeader());
  if (::fsync(fd_) != 0) {
    return Errno("fsync", path_);
  }
  return Status::OK();
}

}  // namespace segdiff
