// Fixed-size pages: the unit of disk IO and buffering in minidb.

#ifndef SEGDIFF_STORAGE_PAGE_H_
#define SEGDIFF_STORAGE_PAGE_H_

#include <cstddef>
#include <cstdint>

namespace segdiff {

/// Page size in bytes. 8 KiB, a common database default.
constexpr size_t kPageSize = 8192;

/// Every page ends in a trailer the pager owns (file format v2):
///   [kPageCapacity + 0 .. +3]  CRC32C of bytes [0, kPageCapacity)
///   [kPageCapacity + 4 .. +7]  trailer magic (distinguishes "no
///                              trailer" from "payload corrupted")
/// Page users (heap files, B+-tree nodes, the catalog chain) may only
/// touch the first kPageCapacity bytes; the pager stamps the trailer on
/// every write and verifies it on every read. Legacy v1 files have no
/// trailers and open read-only (see storage/pager.h).
constexpr size_t kPageTrailerBytes = 8;
constexpr size_t kPageCapacity = kPageSize - kPageTrailerBytes;

/// Identifies a page within a database file. Page 0 is the file header,
/// page 1 the catalog root; data pages start at 2.
using PageId = uint64_t;

constexpr PageId kInvalidPageId = ~0ull;

/// Identifies a record: page plus slot within the page.
struct RecordId {
  PageId page = kInvalidPageId;
  uint32_t slot = 0;

  /// Packs into 64 bits (page ids stay far below 2^40 in practice).
  uint64_t Pack() const { return (page << 20) | (slot & 0xFFFFFu); }
  static RecordId Unpack(uint64_t packed) {
    return RecordId{packed >> 20, static_cast<uint32_t>(packed & 0xFFFFFu)};
  }

  friend bool operator==(const RecordId& a, const RecordId& b) {
    return a.page == b.page && a.slot == b.slot;
  }
};

}  // namespace segdiff

#endif  // SEGDIFF_STORAGE_PAGE_H_
