// Compressed columnar segments for kDouble feature tables.
//
// A columnar segment holds up to kMaxSegmentRows rows of an all-double
// table in column-major compressed form. Each column is encoded with
// whichever of these schemes is smallest while staying bit-exact:
//
//   kForPacked    frame-of-reference: values quantize exactly onto a
//                 decimal grid (v * 10^s integral), stored as bit-packed
//                 offsets from the column minimum. Segment times and
//                 time spans land here (sample cadence => a coarse grid).
//   kDeltaPacked  delta encoding on the same quantized integers; wins
//                 when the column is monotone or slowly varying (the
//                 segment directory's time columns).
//   kXor          Gorilla-style XOR of consecutive IEEE-754 bit
//                 patterns with leading-zero/significant-bit headers;
//                 handles arbitrary doubles (including NaN payloads,
//                 infinities and -0.0) bit-exactly.
//   kRaw          verbatim little-endian doubles; the fallback when XOR
//                 expands (adversarially random mantissas).
//
// Every decode reproduces the exact bit pattern that was encoded, so
// row-format and columnar scans return byte-identical records.
//
// The segment header carries per-column zone statistics (min/max over
// non-NaN values plus a per-column NaN mask), computed at encode time,
// so scans prune whole segments without decoding them. Segments are
// laid out over ordinary pager pages (16-byte chain header + payload),
// which keeps the pager's CRC32C trailers — and therefore
// `verify --scrub` and the fault matrix — in force for columnar data.
//
// The write path stays on the row format: segments are only produced by
// CompactInto-style conversion of sealed row pages, and appends after
// conversion land in the table's row-format heap tail.

#ifndef SEGDIFF_STORAGE_COLUMN_PAGE_H_
#define SEGDIFF_STORAGE_COLUMN_PAGE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace segdiff {

enum class ColumnEncoding : uint8_t {
  kRaw = 0,
  kForPacked = 1,
  kDeltaPacked = 2,
  kXor = 3,
};

/// Name for --stats output ("raw", "for", "delta", "xor").
const char* ColumnEncodingName(ColumnEncoding encoding);

/// Persistent directory entry for one segment (catalog v3). Carries the
/// segment's zone statistics so scans prune and planners survey without
/// touching the segment's pages (the same stats live in the segment
/// header; these are the catalog's copy).
struct ColumnSegmentInfo {
  PageId first_page = kInvalidPageId;
  uint32_t rows = 0;
  uint32_t pages = 0;
  uint64_t encoded_bytes = 0;
  uint32_t nan_mask = 0;    ///< bit c set: column c holds at least one NaN
  std::vector<double> min;  ///< per column, over non-NaN values
  std::vector<double> max;  ///< min[c] > max[c] when column c is all-NaN
};

/// Persistent position of a table's columnar portion.
struct ColumnStoreMeta {
  std::vector<ColumnSegmentInfo> segments;
  uint64_t row_count = 0;
  uint64_t page_count = 0;
  uint64_t encoded_bytes = 0;
};

/// Parsed per-column header of one segment.
struct ColumnDirEntry {
  ColumnEncoding encoding = ColumnEncoding::kRaw;
  uint8_t scale_log10 = 0;   ///< values were scaled by 10^s before packing
  uint16_t bit_width = 0;    ///< packed width (kForPacked/kDeltaPacked)
  uint32_t payload_bytes = 0;
  int64_t base = 0;          ///< frame of reference / first delta value
  double min = 0.0;          ///< over non-NaN values; min > max when none
  double max = 0.0;
  uint64_t payload_offset = 0;  ///< from blob start (computed at parse)
};

/// Encodes `rows` row-major fixed-width records (`num_columns` doubles
/// each) into one segment blob. `rows` must be in [1, kMaxSegmentRows].
std::string EncodeColumnSegment(const char* records, size_t num_columns,
                                size_t rows);

/// Sequential decoder over one encoded column. Decode/Skip advance the
/// cursor; total Decode+Skip counts must not exceed the segment's rows.
class ColumnCursor {
 public:
  ColumnCursor() = default;
  ColumnCursor(const ColumnDirEntry* dir, const char* payload, size_t rows);

  /// Decodes the next `n` values into `out`.
  void Decode(size_t n, double* out);

  /// Advances past `n` values without materializing them. O(1) for
  /// kForPacked and kRaw; O(n) walk for kDeltaPacked and kXor (both
  /// carry running state).
  void Skip(size_t n);

  size_t position() const { return pos_; }

 private:
  void DecodePacked(size_t n, double* out);
  void DecodeXor(size_t n, double* out);

  const ColumnDirEntry* dir_ = nullptr;
  const char* payload_ = nullptr;
  size_t rows_ = 0;
  size_t pos_ = 0;        ///< values consumed so far
  uint64_t bit_pos_ = 0;  ///< packed/xor read position in bits
  int64_t prev_int_ = 0;  ///< running value (delta encoding)
  uint64_t prev_bits_ = 0;  ///< previous IEEE bit pattern (xor encoding)
};

/// Parsed view over one segment whose pages have been fetched (and
/// therefore checksum-verified) through the buffer pool. Column payloads
/// are assembled lazily: a scan that only touches the predicate's
/// columns never copies — or decodes — the others.
class ColumnSegmentHandle {
 public:
  static Result<ColumnSegmentHandle> Open(BufferPool* pool,
                                          const ColumnSegmentInfo& info);

  size_t rows() const { return rows_; }
  size_t num_columns() const { return dir_.size(); }
  uint32_t nan_mask() const { return nan_mask_; }
  bool has_nan(size_t c) const { return (nan_mask_ >> c) & 1u; }
  const ColumnDirEntry& column(size_t c) const { return dir_[c]; }
  PageId first_page() const { return info_.first_page; }
  const ColumnSegmentInfo& info() const { return info_; }

  /// Cursor over column `c` (assembles the payload on first use).
  Result<ColumnCursor> OpenColumn(size_t c);

  /// Decodes all rows of column `c` into `out` (rows() doubles).
  Status DecodeColumn(size_t c, double* out);

  /// Materializes one row into `record` (num_columns() doubles). Point
  /// reads; scans should use cursors instead.
  Status ReadRow(size_t row, char* record);

 private:
  ColumnSegmentHandle() = default;

  /// Contiguous bytes of column `c`'s payload, assembled into this
  /// handle's scratch on first use (copying only that column's encoded
  /// bytes — a fraction of the logical column size).
  Result<const char*> ColumnPayload(size_t c);

  BufferPool* pool_ = nullptr;
  ColumnSegmentInfo info_;
  std::vector<PageId> pages_;  ///< chain in order (all checksum-verified)
  std::vector<uint16_t> page_bytes_;  ///< payload bytes per chain page
  size_t rows_ = 0;
  uint32_t nan_mask_ = 0;
  std::vector<ColumnDirEntry> dir_;
  std::string header_buf_;                ///< copied header bytes
  std::vector<std::string> col_scratch_;  ///< per-column assembled payloads
};

/// A table's columnar portion: an ordered list of immutable segments.
/// Row addressing: RecordId{segment.first_page, row index within the
/// segment} — stable across reopen because the directory is persisted.
class ColumnStore {
 public:
  /// Upper bound on rows per segment. Large enough to amortize headers
  /// and give the bit-packed encodings long runs; small enough that one
  /// decoded segment (all columns) stays cache-friendly and a point
  /// read's sequential decode stays cheap. Must stay below 2^20 so the
  /// row index fits RecordId::Pack's slot field.
  static constexpr size_t kMaxSegmentRows = 4096;

  /// Fresh, empty columnar portion.
  ColumnStore(BufferPool* pool, size_t num_columns);

  /// Attaches to segments recorded in the catalog.
  ColumnStore(BufferPool* pool, size_t num_columns, ColumnStoreMeta meta);

  const ColumnStoreMeta& meta() const { return meta_; }
  size_t num_columns() const { return num_columns_; }
  size_t segment_count() const { return meta_.segments.size(); }
  uint64_t row_count() const { return meta_.row_count; }
  uint64_t page_count() const { return meta_.page_count; }
  uint64_t encoded_bytes() const { return meta_.encoded_bytes; }
  /// Bytes the same rows occupy in the row format.
  uint64_t LogicalBytes() const {
    return meta_.row_count * num_columns_ * 8;
  }

  /// Encodes `rows` row-major records as one segment and appends it.
  Status AppendSegment(const char* records, size_t rows);

  /// Opens segment `idx` for scanning (fetches + verifies its pages).
  Result<ColumnSegmentHandle> OpenSegment(size_t idx) const;

  /// Segment index owning `first_page`, or npos.
  static constexpr size_t npos = static_cast<size_t>(-1);
  size_t FindSegment(PageId first_page) const;

  /// Point read of the row addressed by `id` into `record`
  /// (num_columns() doubles). Caches the last decoded segment, so index
  /// scans that fetch several rows of one segment pay one decode.
  Status ReadRow(RecordId id, char* record) const;

 private:
  struct DecodedSegment {
    PageId first_page = kInvalidPageId;
    size_t rows = 0;
    std::vector<double> values;  ///< columns x rows, column-major
  };

  BufferPool* pool_;
  size_t num_columns_;
  ColumnStoreMeta meta_;
  std::unordered_map<PageId, size_t> by_first_page_;
  mutable std::mutex cache_mu_;
  mutable std::shared_ptr<DecodedSegment> cache_;
};

}  // namespace segdiff

#endif  // SEGDIFF_STORAGE_COLUMN_PAGE_H_
