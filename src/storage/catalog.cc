#include "storage/catalog.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/coding.h"

namespace segdiff {
namespace {

constexpr PageId kCatalogRootPage = 1;
constexpr uint32_t kCatalogMagic = 0x43544C47;  // "CTLG"
constexpr uint32_t kCatalogVersion = 3;  ///< v2: meta blobs; v3: columnar
constexpr size_t kChainHeaderBytes = 16;
constexpr size_t kChainPayloadBytes = kPageCapacity - kChainHeaderBytes;

void AppendU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}
void AppendU16(std::string* out, uint16_t v) {
  char buf[2];
  EncodeFixed16(buf, v);
  out->append(buf, 2);
}
void AppendU32(std::string* out, uint32_t v) {
  char buf[4];
  EncodeFixed32(buf, v);
  out->append(buf, 4);
}
void AppendU64(std::string* out, uint64_t v) {
  char buf[8];
  EncodeFixed64(buf, v);
  out->append(buf, 8);
}
void AppendStr(std::string* out, const std::string& s) {
  AppendU16(out, static_cast<uint16_t>(s.size()));
  out->append(s);
}
void AppendF64(std::string* out, double v) {
  char buf[8];
  EncodeDouble(buf, v);
  out->append(buf, 8);
}

/// Bounds-checked reader over the catalog payload.
class Reader {
 public:
  Reader(const char* data, size_t size) : data_(data), size_(size) {}

  Status Need(size_t n) {
    if (pos_ + n > size_) {
      return Status::Corruption("catalog payload truncated");
    }
    return Status::OK();
  }
  Result<uint8_t> U8() {
    SEGDIFF_RETURN_IF_ERROR(Need(1));
    return static_cast<uint8_t>(data_[pos_++]);
  }
  Result<uint16_t> U16() {
    SEGDIFF_RETURN_IF_ERROR(Need(2));
    uint16_t v = DecodeFixed16(data_ + pos_);
    pos_ += 2;
    return v;
  }
  Result<uint32_t> U32() {
    SEGDIFF_RETURN_IF_ERROR(Need(4));
    uint32_t v = DecodeFixed32(data_ + pos_);
    pos_ += 4;
    return v;
  }
  Result<uint64_t> U64() {
    SEGDIFF_RETURN_IF_ERROR(Need(8));
    uint64_t v = DecodeFixed64(data_ + pos_);
    pos_ += 8;
    return v;
  }
  Result<double> F64() {
    SEGDIFF_RETURN_IF_ERROR(Need(8));
    double v = DecodeDouble(data_ + pos_);
    pos_ += 8;
    return v;
  }
  Result<std::string> Str() {
    SEGDIFF_ASSIGN_OR_RETURN(uint16_t len, U16());
    return Bytes(len);
  }
  Result<std::string> Bytes(size_t len) {
    SEGDIFF_RETURN_IF_ERROR(Need(len));
    std::string s(data_ + pos_, len);
    pos_ += len;
    return s;
  }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace

Status WriteCatalog(BufferPool* pool, const CatalogData& catalog) {
  const std::vector<TableMeta>& tables = catalog.tables;
  std::string payload;
  AppendU32(&payload, kCatalogMagic);
  AppendU32(&payload, kCatalogVersion);
  AppendU32(&payload, static_cast<uint32_t>(tables.size()));
  for (const TableMeta& table : tables) {
    AppendStr(&payload, table.name);
    AppendU16(&payload, static_cast<uint16_t>(table.schema.num_columns()));
    for (const Column& column : table.schema.columns()) {
      AppendStr(&payload, column.name);
      AppendU8(&payload, static_cast<uint8_t>(column.type));
    }
    AppendU64(&payload, table.heap.first_page);
    AppendU64(&payload, table.heap.last_page);
    AppendU64(&payload, table.heap.record_count);
    AppendU64(&payload, table.heap.page_count);
    AppendU16(&payload, static_cast<uint16_t>(table.indexes.size()));
    for (const IndexMeta& index : table.indexes) {
      AppendStr(&payload, index.name);
      AppendU8(&payload, static_cast<uint8_t>(index.key_columns.size()));
      for (size_t column : index.key_columns) {
        AppendU16(&payload, static_cast<uint16_t>(column));
      }
      AppendU64(&payload, index.meta_page);
    }
    // Columnar segment directory (v3). Zone stats are serialized at the
    // table's full arity so pruning needs no segment IO after reopen.
    const size_t ncols = table.schema.num_columns();
    AppendU32(&payload,
              static_cast<uint32_t>(table.columnar.segments.size()));
    for (const ColumnSegmentInfo& segment : table.columnar.segments) {
      AppendU64(&payload, segment.first_page);
      AppendU32(&payload, segment.rows);
      AppendU32(&payload, segment.pages);
      AppendU64(&payload, segment.encoded_bytes);
      AppendU32(&payload, segment.nan_mask);
      for (size_t c = 0; c < ncols; ++c) {
        AppendF64(&payload, c < segment.min.size() ? segment.min[c] : 0.0);
        AppendF64(&payload, c < segment.max.size() ? segment.max[c] : -1.0);
      }
    }
  }
  AppendU32(&payload, static_cast<uint32_t>(catalog.blobs.size()));
  for (const auto& [name, blob] : catalog.blobs) {
    AppendStr(&payload, name);
    AppendU32(&payload, static_cast<uint32_t>(blob.size()));
    payload.append(blob);
  }

  // Spill the payload over the chain, reusing pages already in the chain.
  size_t offset = 0;
  PageId current = kCatalogRootPage;
  for (;;) {
    SEGDIFF_ASSIGN_OR_RETURN(PageHandle page, pool->FetchMut(current));
    const size_t chunk =
        std::min(kChainPayloadBytes, payload.size() - offset);
    EncodeFixed32(page.data() + 8, static_cast<uint32_t>(chunk));
    if (chunk > 0) {
      std::memcpy(page.data() + kChainHeaderBytes, payload.data() + offset,
                  chunk);
    }
    offset += chunk;
    PageId next = DecodeFixed64(page.data());
    if (offset >= payload.size()) {
      // Terminate here; any longer previous chain is abandoned in place
      // (pages are not reclaimed; catalogs only grow in practice).
      EncodeFixed64(page.data(), kInvalidPageId);
      page.MarkDirty();
      break;
    }
    if (next == kInvalidPageId || next == 0) {
      SEGDIFF_ASSIGN_OR_RETURN(PageHandle fresh, pool->AllocatePinned());
      next = fresh.page_id();
      EncodeFixed64(fresh.data(), kInvalidPageId);
      fresh.MarkDirty();
    }
    EncodeFixed64(page.data(), next);
    page.MarkDirty();
    current = next;
  }
  return Status::OK();
}

Result<CatalogData> ReadCatalog(BufferPool* pool) {
  std::string payload;
  PageId current = kCatalogRootPage;
  while (current != kInvalidPageId && current != 0) {
    SEGDIFF_ASSIGN_OR_RETURN(PageHandle page, pool->Fetch(current));
    const uint32_t chunk = DecodeFixed32(page.data() + 8);
    if (chunk > kChainPayloadBytes) {
      return Status::Corruption("catalog chunk too large");
    }
    payload.append(page.data() + kChainHeaderBytes, chunk);
    current = DecodeFixed64(page.data());
  }
  CatalogData catalog;
  std::vector<TableMeta>& tables = catalog.tables;
  if (payload.size() < 12) {
    return catalog;  // fresh database
  }
  Reader reader(payload.data(), payload.size());
  SEGDIFF_ASSIGN_OR_RETURN(uint32_t magic, reader.U32());
  if (magic != kCatalogMagic) {
    return Status::Corruption("bad catalog magic");
  }
  SEGDIFF_ASSIGN_OR_RETURN(uint32_t version, reader.U32());
  if (version < 1 || version > kCatalogVersion) {
    return Status::Corruption("unsupported catalog version");
  }
  SEGDIFF_ASSIGN_OR_RETURN(uint32_t table_count, reader.U32());
  for (uint32_t t = 0; t < table_count; ++t) {
    TableMeta meta;
    SEGDIFF_ASSIGN_OR_RETURN(meta.name, reader.Str());
    SEGDIFF_ASSIGN_OR_RETURN(uint16_t ncols, reader.U16());
    std::vector<Column> columns;
    for (uint16_t c = 0; c < ncols; ++c) {
      Column column;
      SEGDIFF_ASSIGN_OR_RETURN(column.name, reader.Str());
      SEGDIFF_ASSIGN_OR_RETURN(uint8_t type, reader.U8());
      if (type > 1) {
        return Status::Corruption("bad column type");
      }
      column.type = static_cast<ColumnType>(type);
      columns.push_back(std::move(column));
    }
    SEGDIFF_ASSIGN_OR_RETURN(meta.schema,
                             TableSchema::Create(std::move(columns)));
    SEGDIFF_ASSIGN_OR_RETURN(meta.heap.first_page, reader.U64());
    SEGDIFF_ASSIGN_OR_RETURN(meta.heap.last_page, reader.U64());
    SEGDIFF_ASSIGN_OR_RETURN(meta.heap.record_count, reader.U64());
    SEGDIFF_ASSIGN_OR_RETURN(meta.heap.page_count, reader.U64());
    SEGDIFF_ASSIGN_OR_RETURN(uint16_t nindexes, reader.U16());
    for (uint16_t i = 0; i < nindexes; ++i) {
      IndexMeta index;
      SEGDIFF_ASSIGN_OR_RETURN(index.name, reader.Str());
      SEGDIFF_ASSIGN_OR_RETURN(uint8_t idx_cols, reader.U8());
      for (uint8_t k = 0; k < idx_cols; ++k) {
        SEGDIFF_ASSIGN_OR_RETURN(uint16_t col, reader.U16());
        index.key_columns.push_back(col);
      }
      SEGDIFF_ASSIGN_OR_RETURN(index.meta_page, reader.U64());
      meta.indexes.push_back(std::move(index));
    }
    if (version >= 3) {
      SEGDIFF_ASSIGN_OR_RETURN(uint32_t nsegments, reader.U32());
      const size_t seg_cols = meta.schema.num_columns();
      for (uint32_t s = 0; s < nsegments; ++s) {
        ColumnSegmentInfo segment;
        SEGDIFF_ASSIGN_OR_RETURN(segment.first_page, reader.U64());
        SEGDIFF_ASSIGN_OR_RETURN(segment.rows, reader.U32());
        SEGDIFF_ASSIGN_OR_RETURN(segment.pages, reader.U32());
        SEGDIFF_ASSIGN_OR_RETURN(segment.encoded_bytes, reader.U64());
        SEGDIFF_ASSIGN_OR_RETURN(segment.nan_mask, reader.U32());
        segment.min.resize(seg_cols);
        segment.max.resize(seg_cols);
        for (size_t c = 0; c < seg_cols; ++c) {
          SEGDIFF_ASSIGN_OR_RETURN(segment.min[c], reader.F64());
          SEGDIFF_ASSIGN_OR_RETURN(segment.max[c], reader.F64());
        }
        meta.columnar.row_count += segment.rows;
        meta.columnar.page_count += segment.pages;
        meta.columnar.encoded_bytes += segment.encoded_bytes;
        meta.columnar.segments.push_back(std::move(segment));
      }
    }
    tables.push_back(std::move(meta));
  }
  if (version >= 2) {
    SEGDIFF_ASSIGN_OR_RETURN(uint32_t blob_count, reader.U32());
    for (uint32_t b = 0; b < blob_count; ++b) {
      SEGDIFF_ASSIGN_OR_RETURN(std::string name, reader.Str());
      SEGDIFF_ASSIGN_OR_RETURN(uint32_t length, reader.U32());
      SEGDIFF_ASSIGN_OR_RETURN(std::string blob, reader.Bytes(length));
      catalog.blobs[std::move(name)] = std::move(blob);
    }
  }
  return catalog;
}

}  // namespace segdiff
