// Catalog: persistent table/index metadata.
//
// Serialized into a page chain rooted at page 1 on Checkpoint(); read at
// Open(). Format (little endian, packed into the chain payload):
//   u32 table_count
//   per table: str name | u16 ncols | per col: (str name, u8 type)
//              | heap meta (first, last, records, pages: u64 x 4)
//              | u16 nindexes
//              | per index: str name | u8 ncols | u16 col_idx... | u64 meta
// where str = u16 length + bytes.

#ifndef SEGDIFF_STORAGE_CATALOG_H_
#define SEGDIFF_STORAGE_CATALOG_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "storage/buffer_pool.h"
#include "storage/heap_file.h"
#include "storage/record.h"

namespace segdiff {

/// Plain serialized form of one index.
struct IndexMeta {
  std::string name;
  std::vector<size_t> key_columns;
  PageId meta_page = kInvalidPageId;
};

/// Plain serialized form of one table.
struct TableMeta {
  std::string name;
  TableSchema schema;
  HeapFileMeta heap;
  std::vector<IndexMeta> indexes;
};

/// Writes the catalog payload into the chain rooted at page 1, allocating
/// continuation pages as needed (pages are reused across checkpoints).
Status WriteCatalog(BufferPool* pool, const std::vector<TableMeta>& tables);

/// Reads the catalog; an all-zero page 1 yields an empty list (fresh db).
Result<std::vector<TableMeta>> ReadCatalog(BufferPool* pool);

}  // namespace segdiff

#endif  // SEGDIFF_STORAGE_CATALOG_H_
